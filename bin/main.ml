(* daec — the command-line driver.

     daec list                                  # benchmark kernels
     daec analyze --kernel bfs                  # LoD report (§4)
     daec analyze file.ir
     daec compile --kernel hist --mode spec     # print AGU/CU slices
     daec compile file.ir --mode dae
     daec run --kernel hist --arch spec         # simulate + verify
     daec run --kernel bfs --all --sq 8         # all four architectures
     daec run --kernel thr --req-fifo 2 --val-fifo 2 --stv-fifo 2
     daec stats --kernel bfs --arch dae --arch spec   # stall attribution
     daec stats --kernel bfs --json             # machine-readable stats
     daec trace --kernel thr --out thr.json     # Perfetto timeline JSON
     daec check --kernel bfs --mode both        # soundness checker
     daec check --all-kernels                   # gate the whole suite
     daec leak --kernel spmv --witness          # speculative-leakage report
     daec leak --suite quick --arch dae --arch spec --json
     daec size --kernel hist --mode both        # channel sizing report
     daec size --all-kernels --json             # machine-readable sweep
     daec partition --kernel mm                 # N-way address-stream DAG
     daec partition --all-kernels --max-units 3
     daec partition --kernel spmv --dot         # cluster DAG as graphviz
     daec sweep --grid quick                    # memoized capacity DSE
     daec sweep --suite quick --expect out.txt  # deterministic point dump
     daec cache stats                           # on-disk result cache
     daec cache clear

   Files use the textual IR grammar printed by the compiler itself (see
   examples/quickstart.exe output or lib/ir/parser.ml). *)

open Cmdliner

let kernels () = Dae_workloads.Kernels.paper_suite ()

let load_func ~file ~kernel =
  match (file, kernel) with
  | Some path, None ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    Ok (Dae_ir.Parser.parse src, None)
  | None, Some name -> (
    match Dae_workloads.Kernels.by_name (kernels ()) name with
    | Some k -> Ok (k.Dae_workloads.Kernels.build (), Some k)
    | None ->
      Error
        (Fmt.str "unknown kernel %s (try `daec list')" name))
  | Some _, Some _ -> Error "give either a file or --kernel, not both"
  | None, None -> Error "give an IR file or --kernel NAME"

(* --- JSON ------------------------------------------------------------------- *)

(* One tiny emitter shared by `stats --json` and `leak --json`, so the two
   machine-readable outputs cannot drift apart in escaping or layout. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec pp ppf = function
    | Null -> Fmt.pf ppf "null"
    | Bool b -> Fmt.pf ppf "%b" b
    | Int i -> Fmt.pf ppf "%d" i
    | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
    | List l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ",") pp) l
    | Obj kvs ->
      Fmt.pf ppf "{%a}"
        Fmt.(
          list ~sep:(any ",") (fun ppf (k, v) ->
              pf ppf "\"%s\":%a" (escape k) pp v))
        kvs
end

(* --- common arguments ------------------------------------------------------ *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Textual IR file.")

let kernel_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "k"; "kernel" ] ~docv:"NAME" ~doc:"Benchmark kernel name.")

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("dae", Dae_core.Pipeline.Dae); ("spec", Dae_core.Pipeline.Spec) ])
        Dae_core.Pipeline.Spec
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"dae (no speculation) or spec.")

let arch_conv =
  Arg.enum
    [ ("sta", Dae_sim.Machine.Sta); ("dae", Dae_sim.Machine.Dae);
      ("spec", Dae_sim.Machine.Spec); ("oracle", Dae_sim.Machine.Oracle) ]

let archs_arg =
  Arg.(value & opt_all arch_conv [] & info [ "a"; "arch" ] ~docv:"ARCH"
         ~doc:"Architecture: sta, dae, spec or oracle (repeatable).")

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Run all four architectures.")

let sq_arg =
  Arg.(value & opt int Dae_sim.Config.default.Dae_sim.Config.store_queue_size
       & info [ "sq" ] ~doc:"Store queue size.")

let lq_arg =
  Arg.(value & opt int Dae_sim.Config.default.Dae_sim.Config.load_queue_size
       & info [ "lq" ] ~doc:"Load queue size.")

let fifo_lat_arg =
  Arg.(value & opt int Dae_sim.Config.default.Dae_sim.Config.fifo_latency
       & info [ "fifo-latency" ] ~doc:"Channel latency in cycles.")

let req_fifo_arg =
  Arg.(
    value
    & opt int Dae_sim.Config.default.Dae_sim.Config.request_fifo_capacity
    & info [ "req-fifo" ] ~docv:"N"
        ~doc:"AGU->DU request channel capacity (load and store).")

let val_fifo_arg =
  Arg.(
    value
    & opt int Dae_sim.Config.default.Dae_sim.Config.value_fifo_capacity
    & info [ "val-fifo" ] ~docv:"N"
        ~doc:"DU->unit load-value channel capacity.")

let stv_fifo_arg =
  Arg.(
    value
    & opt int Dae_sim.Config.default.Dae_sim.Config.store_value_fifo_capacity
    & info [ "stv-fifo" ] ~docv:"N"
        ~doc:"CU->DU store-value/poison channel capacity.")

let jobs_arg =
  Arg.(value & opt int (Dae_sim.Runner.default_domains ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Simulate the selected architectures on up to $(docv) \
                 domains (default: the machine's recommended domain \
                 count).")

(* memory hierarchy: --mem picks the model, the geometry flags refine it
   (they are ignored under scratchpad, like the seed behaved) *)
let mem_arg =
  Arg.(
    value
    & opt (enum [ ("scratchpad", `Scratchpad); ("cache", `Cache) ]) `Scratchpad
    & info [ "mem" ] ~docv:"MODEL"
        ~doc:
          "Memory model: scratchpad (fixed-latency, the paper's baseline) \
           or cache (banked non-blocking cache over a DRAM backend; see \
           the --cache-* / --dram-* flags).")

let geom_default = Dae_sim.Config.default_geom
let dram_default = Dae_sim.Config.default_dram

let cache_banks_arg =
  Arg.(value & opt int geom_default.Dae_sim.Config.banks
       & info [ "cache-banks" ] ~docv:"N" ~doc:"Cache banks (lines interleave by modulo).")

let cache_sets_arg =
  Arg.(value & opt int geom_default.Dae_sim.Config.sets
       & info [ "cache-sets" ] ~docv:"N" ~doc:"Sets per cache bank.")

let cache_ways_arg =
  Arg.(value & opt int geom_default.Dae_sim.Config.ways
       & info [ "cache-ways" ] ~docv:"N" ~doc:"Associativity per set.")

let cache_line_arg =
  Arg.(value & opt int geom_default.Dae_sim.Config.line_words
       & info [ "cache-line" ] ~docv:"W" ~doc:"Cache line size in words.")

let cache_hit_arg =
  Arg.(value & opt int geom_default.Dae_sim.Config.hit_latency
       & info [ "cache-hit-latency" ] ~docv:"CYCLES"
           ~doc:"Cache hit latency in cycles.")

let mshrs_arg =
  Arg.(value & opt int geom_default.Dae_sim.Config.mshrs
       & info [ "mshrs" ] ~docv:"N"
           ~doc:"Miss-status holding registers per bank (outstanding \
                 misses; a full bank refuses further misses).")

let dram_banks_arg =
  Arg.(value & opt int dram_default.Dae_sim.Config.dram_banks
       & info [ "dram-banks" ] ~docv:"N" ~doc:"DRAM banks.")

let dram_row_arg =
  Arg.(value & opt int dram_default.Dae_sim.Config.row_words
       & info [ "dram-row" ] ~docv:"W" ~doc:"DRAM row-buffer size in words.")

let dram_hit_arg =
  Arg.(value & opt int dram_default.Dae_sim.Config.t_row_hit
       & info [ "dram-row-hit" ] ~docv:"CYCLES"
           ~doc:"DRAM access latency on a row-buffer hit.")

let dram_miss_arg =
  Arg.(value & opt int dram_default.Dae_sim.Config.t_row_miss
       & info [ "dram-row-miss" ] ~docv:"CYCLES"
           ~doc:"DRAM access latency on a row-buffer miss \
                 (precharge + activate).")

let dram_bus_arg =
  Arg.(value & opt int dram_default.Dae_sim.Config.t_bus
       & info [ "dram-bus" ] ~docv:"CYCLES"
           ~doc:"DRAM data-bus occupancy per transfer.")

let hierarchy_of ~mem ~cb ~cs ~cw ~cl ~ch ~cm ~db ~dr ~dh ~dm ~du =
  match mem with
  | `Scratchpad -> Dae_sim.Config.Scratchpad
  | `Cache ->
    Dae_sim.Config.Hierarchy
      {
        Dae_sim.Config.banks = cb;
        sets = cs;
        ways = cw;
        line_words = cl;
        hit_latency = ch;
        mshrs = cm;
        dram =
          {
            Dae_sim.Config.dram_banks = db;
            row_words = dr;
            t_row_hit = dh;
            t_row_miss = dm;
            t_bus = du;
          };
      }

(* one term folding the twelve flags into a Config.hierarchy *)
let hierarchy_term =
  Term.(
    const
      (fun mem cb cs cw cl ch cm db dr dh dm du ->
        hierarchy_of ~mem ~cb ~cs ~cw ~cl ~ch ~cm ~db ~dr ~dh ~dm ~du)
    $ mem_arg $ cache_banks_arg $ cache_sets_arg $ cache_ways_arg
    $ cache_line_arg $ cache_hit_arg $ mshrs_arg $ dram_banks_arg
    $ dram_row_arg $ dram_hit_arg $ dram_miss_arg $ dram_bus_arg)

let cfg_of ?(hierarchy = Dae_sim.Config.Scratchpad) ~sq ~lq ~fifo_lat
    ~req_fifo ~val_fifo ~stv_fifo () =
  let cfg =
    {
      Dae_sim.Config.default with
      Dae_sim.Config.store_queue_size = sq;
      load_queue_size = lq;
      fifo_latency = fifo_lat;
      request_fifo_capacity = req_fifo;
      value_fifo_capacity = val_fifo;
      store_value_fifo_capacity = stv_fifo;
      hierarchy;
    }
  in
  match Dae_sim.Config.validate cfg with
  | () -> cfg
  | exception Invalid_argument e ->
    Fmt.epr "invalid configuration: %s@." e;
    exit 2

let scheduler_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("wheel", Dae_sim.Timing.Event_wheel);
             ("calendar", Dae_sim.Timing.Seed_calendar) ])
        Dae_sim.Timing.Event_wheel
    & info [ "scheduler" ] ~docv:"SCHED"
        ~doc:"Timing-engine stall scheduler: wheel (the incremental event \
              wheel, default) or calendar (the seed clear-and-rescan \
              reference). Bit-identical results — the CI determinism \
              check diffs the two.")

let cache_dir_arg =
  Arg.(value & opt string Dae_sim.Cache.default_dir
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Result cache directory (default: _daec_cache).")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the on-disk result cache: every point re-times.")

let pick_archs ~archs ~all =
  if all then
    [ Dae_sim.Machine.Sta; Dae_sim.Machine.Dae; Dae_sim.Machine.Spec;
      Dae_sim.Machine.Oracle ]
  else if archs = [] then [ Dae_sim.Machine.Spec ]
  else archs

(* --- list ------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (k : Dae_workloads.Kernels.t) ->
        Fmt.pr "%-6s %s@." k.Dae_workloads.Kernels.name
          k.Dae_workloads.Kernels.description)
      (kernels ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark kernels.")
    Term.(const run $ const ())

(* --- analyze ------------------------------------------------------------------ *)

let analyze_cmd =
  let run file kernel =
    match load_func ~file ~kernel with
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
    | Ok (f, _) ->
      Fmt.pr "%a@." Dae_ir.Printer.pp_func f;
      let lod = Dae_core.Lod.analyze f in
      Fmt.pr "%a" Dae_core.Lod.pp lod;
      if Dae_core.Lod.has_data_lod lod then
        Fmt.pr
          "note: data LoD present — those operations stay synchronized@.";
      if lod.Dae_core.Lod.chain_heads <> [] then
        Fmt.pr "speculation will hoist requests to: %a@."
          Fmt.(list ~sep:(any ", ") (fun ppf b -> pf ppf "bb%d" b))
          lod.Dae_core.Lod.chain_heads
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the loss-of-decoupling analysis (paper §4).")
    Term.(const run $ file_arg $ kernel_arg)

(* --- compile ------------------------------------------------------------------- *)

let compile_cmd =
  let run file kernel mode no_merge fold if_convert phi_select licm backend =
    match load_func ~file ~kernel with
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
    | Ok (f, _) ->
      let p = Dae_core.Pipeline.compile ~mode ~merge:(not no_merge) f in
      let post (g : Dae_ir.Func.t) =
        if fold then
          Fmt.pr "; %s: %d constant folds@." g.Dae_ir.Func.name
            (Dae_ir.Const_fold.run g);
        if if_convert then
          Fmt.pr "; %s: %d diamonds flattened@." g.Dae_ir.Func.name
            (Dae_ir.If_convert.run g);
        if phi_select then
          Fmt.pr "; %s: %d phis converted to selects@." g.Dae_ir.Func.name
            (Dae_ir.Phi_to_select.run g);
        if licm then
          Fmt.pr "; %s: %d loop-invariant instrs hoisted@." g.Dae_ir.Func.name
            (Dae_ir.Licm.run g);
        if fold || if_convert || phi_select || licm then
          Dae_ir.Verify.check_exn g
      in
      post p.Dae_core.Pipeline.agu;
      post p.Dae_core.Pipeline.cu;
      (match backend with
      | `Ir ->
        Fmt.pr "; == AGU ==@.%a@." Dae_ir.Printer.pp_func
          p.Dae_core.Pipeline.agu;
        Fmt.pr "; == CU ==@.%a@." Dae_ir.Printer.pp_func p.Dae_core.Pipeline.cu
      | `Dot ->
        Fmt.pr "%a@.%a@." Dae_ir.Dot.pp p.Dae_core.Pipeline.agu Dae_ir.Dot.pp
          p.Dae_core.Pipeline.cu
      | `Desc -> Fmt.pr "%a@." Dae_core.Desc_backend.pp
                   (Dae_core.Desc_backend.lower p)
      | `Cgra -> Fmt.pr "%a@." Dae_core.Cgra_backend.pp
                   (Dae_core.Cgra_backend.lower p));
      Fmt.pr "; %a@." Dae_core.Pipeline.pp_summary p
  in
  let no_merge =
    Arg.(value & flag & info [ "no-merge" ] ~doc:"Disable poison-block merging (§5.3).")
  in
  let fold =
    Arg.(value & flag & info [ "fold" ] ~doc:"Run constant folding on the slices.")
  in
  let if_convert =
    Arg.(value & flag & info [ "if-convert" ]
           ~doc:"Flatten pure diamonds in the slices (partial if-conversion).")
  in
  let phi_select =
    Arg.(value & flag & info [ "phi-select" ]
           ~doc:"Convert eligible φs to selects (§5.4).")
  in
  let licm =
    Arg.(value & flag & info [ "licm" ]
           ~doc:"Hoist loop-invariant pure instructions to preheaders.")
  in
  let backend =
    Arg.(
      value
      & opt
          (enum
             [ ("ir", `Ir); ("desc", `Desc); ("cgra", `Cgra); ("dot", `Dot) ])
          `Ir
      & info [ "b"; "backend" ] ~docv:"BACKEND"
          ~doc:
            "Output form: ir (textual IR), desc (§7.1 prefetcher ISA), cgra \
             (§7.2 stream dataflow) or dot (graphviz).")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Decouple (and optionally speculate) a kernel; print the slices.")
    Term.(
      const run $ file_arg $ kernel_arg $ mode_arg $ no_merge $ fold
      $ if_convert $ phi_select $ licm $ backend)

(* --- run ----------------------------------------------------------------------- *)

let run_cmd =
  let run file kernel archs all sq lq fifo_lat req_fifo val_fifo stv_fifo
      hierarchy jobs scheduler =
    match load_func ~file ~kernel with
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
    | Ok (_, None) ->
      Fmt.epr "run needs --kernel (files carry no input data)@.";
      exit 2
    | Ok (_, Some k) ->
      let cfg =
        cfg_of ~hierarchy ~sq ~lq ~fifo_lat ~req_fifo ~val_fifo ~stv_fifo ()
      in
      let archs = pick_archs ~archs ~all in
      Fmt.pr "%s: %s  (%a)@." k.Dae_workloads.Kernels.name
        k.Dae_workloads.Kernels.description Dae_sim.Config.pp cfg;
      (* the per-arch runs are independent: fan them over the domain pool
         (each worker rebuilds the IR and memory image from the kernel) *)
      Dae_sim.Runner.map_list ~domains:jobs
        ~f:(fun arch ->
          let r =
            Dae_sim.Machine.simulate ~cfg ~scheduler arch
              (k.Dae_workloads.Kernels.build ())
              ~invocations:(k.Dae_workloads.Kernels.invocations ())
              ~mem:(k.Dae_workloads.Kernels.init_mem ())
          in
          let verdict =
            match k.Dae_workloads.Kernels.check r.Dae_sim.Machine.memory with
            | Ok () -> "ok"
            | Error _ -> "WRONG RESULT"
          in
          (arch, r, verdict))
        archs
      |> List.iter (fun (arch, r, verdict) ->
             Fmt.pr
               "  %-7s %9d cycles  misspec %5.1f%%  area %6d ALMs  check: %s@."
               (Dae_sim.Machine.arch_name arch)
               r.Dae_sim.Machine.cycles
               (100. *. r.Dae_sim.Machine.misspec_rate)
               r.Dae_sim.Machine.area.Dae_sim.Area.total verdict)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a kernel and verify against its reference.")
    Term.(
      const run $ file_arg $ kernel_arg $ archs_arg $ all_arg $ sq_arg
      $ lq_arg $ fifo_lat_arg $ req_fifo_arg $ val_fifo_arg $ stv_fifo_arg
      $ hierarchy_term $ jobs_arg $ scheduler_arg)

(* --- stats --------------------------------------------------------------------- *)

let stats_json ~kernel ~cfg (arch, (r : Dae_sim.Machine.result)) =
  Json.Obj
    [
      ("kernel", Json.Str kernel);
      ("arch", Json.Str (Dae_sim.Machine.arch_name arch));
      ("config", Json.Str (Dae_sim.Config.key cfg));
      ("cycles", Json.Int r.Dae_sim.Machine.cycles);
      ("invocations", Json.Int r.Dae_sim.Machine.invocations);
      ("killed_stores", Json.Int r.Dae_sim.Machine.killed_stores);
      ("committed_stores", Json.Int r.Dae_sim.Machine.committed_stores);
      ( "units",
        Json.Obj
          (List.map
             (fun (unit, t) ->
               ( unit,
                 Json.Obj
                   (List.map
                      (fun (cause, n) -> (cause, Json.Int n))
                      (Dae_sim.Stats.to_list t)) ))
             r.Dae_sim.Machine.stats) );
    ]

let stats_cmd =
  let run file kernel archs all sq lq fifo_lat req_fifo val_fifo stv_fifo
      hierarchy jobs scheduler json =
    match load_func ~file ~kernel with
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
    | Ok (_, None) ->
      Fmt.epr "stats needs --kernel (files carry no input data)@.";
      exit 2
    | Ok (_, Some k) ->
      let cfg =
        cfg_of ~hierarchy ~sq ~lq ~fifo_lat ~req_fifo ~val_fifo ~stv_fifo ()
      in
      let archs = pick_archs ~archs ~all in
      if not json then
        Fmt.pr "%s: %s  (%a)@." k.Dae_workloads.Kernels.name
          k.Dae_workloads.Kernels.description Dae_sim.Config.pp cfg;
      let results =
        Dae_sim.Runner.map_list ~domains:jobs
          ~f:(fun arch ->
            ( arch,
              Dae_sim.Machine.simulate ~cfg ~scheduler arch
                (k.Dae_workloads.Kernels.build ())
                ~invocations:(k.Dae_workloads.Kernels.invocations ())
                ~mem:(k.Dae_workloads.Kernels.init_mem ()) ))
          archs
      in
      if json then
        Fmt.pr "%a@." Json.pp
          (Json.List
             (List.map
                (stats_json ~kernel:k.Dae_workloads.Kernels.name ~cfg)
                results))
      else
        List.iter
          (fun (arch, r) ->
            Fmt.pr "@.%s: %d cycles over %d invocation%s@."
              (Dae_sim.Machine.arch_name arch)
              r.Dae_sim.Machine.cycles r.Dae_sim.Machine.invocations
              (if r.Dae_sim.Machine.invocations = 1 then "" else "s");
            Fmt.pr "%a" Dae_sim.Machine.pp_stats r)
          results
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one JSON object per architecture (cycles, \
                   invocations, store verdicts and the per-unit stall \
                   partition) instead of the table.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Simulate a kernel and print the per-unit stall attribution \
          (each unit's causes partition its total cycles).")
    Term.(
      const run $ file_arg $ kernel_arg $ archs_arg $ all_arg $ sq_arg
      $ lq_arg $ fifo_lat_arg $ req_fifo_arg $ val_fifo_arg $ stv_fifo_arg
      $ hierarchy_term $ jobs_arg $ scheduler_arg $ json_arg)

(* --- trace --------------------------------------------------------------------- *)

let trace_cmd =
  let run file kernel arch sq lq fifo_lat req_fifo val_fifo stv_fifo
      hierarchy out =
    match load_func ~file ~kernel with
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
    | Ok (_, None) ->
      Fmt.epr "trace needs --kernel (files carry no input data)@.";
      exit 2
    | Ok (_, Some k) ->
      if arch = Dae_sim.Machine.Sta then begin
        Fmt.epr
          "trace needs a decoupled architecture (dae, spec or oracle)@.";
        exit 2
      end;
      let cfg =
        cfg_of ~hierarchy ~sq ~lq ~fifo_lat ~req_fifo ~val_fifo ~stv_fifo ()
      in
      let r =
        Dae_sim.Machine.simulate ~cfg ~collect:true arch
          (k.Dae_workloads.Kernels.build ())
          ~invocations:(k.Dae_workloads.Kernels.invocations ())
          ~mem:(k.Dae_workloads.Kernels.init_mem ())
      in
      Dae_sim.Trace_export.write_file ~path:out
        ~kernel:k.Dae_workloads.Kernels.name r;
      if out <> "-" then
        Fmt.pr
          "%s: wrote %s (%s, %d cycles, %d invocations; open in \
           ui.perfetto.dev or chrome://tracing)@."
          k.Dae_workloads.Kernels.name out
          (Dae_sim.Machine.arch_name arch)
          r.Dae_sim.Machine.cycles r.Dae_sim.Machine.invocations
  in
  let arch_arg =
    Arg.(value & opt arch_conv Dae_sim.Machine.Spec
         & info [ "a"; "arch" ] ~docv:"ARCH"
             ~doc:"Architecture: dae, spec or oracle.")
  in
  let out_arg =
    Arg.(value & opt string "-"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Output path for the timeline JSON (default: stdout).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Simulate a kernel and export a Chrome-tracing/Perfetto timeline \
          (unit occupancy slices plus channel-depth counter tracks).")
    Term.(
      const run $ file_arg $ kernel_arg $ arch_arg $ sq_arg $ lq_arg
      $ fifo_lat_arg $ req_fifo_arg $ val_fifo_arg $ stv_fifo_arg
      $ hierarchy_term $ out_arg)

(* --- check --------------------------------------------------------------------- *)

let diag_json (d : Dae_analysis.Diag.t) =
  let module Diag = Dae_analysis.Diag in
  Json.Obj
    ([
       ("severity", Json.Str (Diag.severity_name d.Diag.sev));
       ("analysis", Json.Str (Diag.analysis_name d.Diag.analysis));
       ("slice", Json.Str (Diag.slice_name d.Diag.slice));
     ]
    @ (match d.Diag.block with
      | Some b -> [ ("block", Json.Int b) ]
      | None -> [])
    @ (match d.Diag.edge with
      | Some (a, b) -> [ ("edge", Json.List [ Json.Int a; Json.Int b ]) ]
      | None -> [])
    @ (match d.Diag.mem with Some m -> [ ("mem", Json.Int m) ] | None -> [])
    @ (match d.Diag.arr with Some a -> [ ("arr", Json.Str a) ] | None -> [])
    @ [ ("msg", Json.Str d.Diag.msg) ])

let check_cmd =
  let modes_of = function
    | `Dae -> [ Dae_core.Pipeline.Dae ]
    | `Spec -> [ Dae_core.Pipeline.Spec ]
    | `Both -> [ Dae_core.Pipeline.Dae; Dae_core.Pipeline.Spec ]
  in
  let mode_name = function
    | Dae_core.Pipeline.Dae -> "dae"
    | Dae_core.Pipeline.Spec -> "spec"
  in
  let run file kernel all_kernels mode path_limit verbose json =
    let errs = ref 0 and warns = ref 0 in
    let n_targets = ref 0 in
    let json_items = ref [] in
    let process name f =
      incr n_targets;
      List.iter
        (fun mode ->
          match
            Dae_core.Pipeline.compile ~mode ~check:true (Dae_ir.Func.clone f)
          with
          | exception Dae_core.Pipeline.Compile_error e ->
            incr errs;
            if json then
              json_items :=
                Json.Obj
                  [
                    ("kernel", Json.Str name);
                    ("mode", Json.Str (mode_name mode));
                    ("compile_error", Json.Str e);
                  ]
                :: !json_items
            else
              Fmt.pr "%s (%s): compile error@.  %s@." name (mode_name mode) e
          | p ->
            let ds = Dae_analysis.Checker.run ~path_limit p in
            errs := !errs + Dae_analysis.Diag.errors ds;
            warns := !warns + Dae_analysis.Diag.warnings ds;
            if json then
              json_items :=
                Json.Obj
                  [
                    ("kernel", Json.Str name);
                    ("mode", Json.Str (mode_name mode));
                    ("errors", Json.Int (Dae_analysis.Diag.errors ds));
                    ("warnings", Json.Int (Dae_analysis.Diag.warnings ds));
                    ("diagnostics", Json.List (List.map diag_json ds));
                  ]
                :: !json_items
            else begin
              let shown =
                if verbose then ds
                else
                  List.filter
                    (fun d ->
                      d.Dae_analysis.Diag.sev <> Dae_analysis.Diag.Info)
                    ds
              in
              Fmt.pr "%s (%s): %a" name (mode_name mode)
                Dae_analysis.Diag.pp_report shown
            end)
        (modes_of mode)
    in
    let dispatched =
      if all_kernels then
        Dae_workloads.Kernels.suite_iter (fun k ->
            process k.Dae_workloads.Kernels.name
              (k.Dae_workloads.Kernels.build ()))
      else
        match load_func ~file ~kernel with
        | Error e -> Error e
        | Ok (f, Some k) -> Ok (process k.Dae_workloads.Kernels.name f)
        | Ok (f, None) -> Ok (process f.Dae_ir.Func.name f)
    in
    (match dispatched with
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
    | Ok () -> ());
    if json then Fmt.pr "%a@." Json.pp (Json.List (List.rev !json_items))
    else if !n_targets > 1 then
      Fmt.pr "total: %d error(s), %d warning(s)@." !errs !warns;
    if !errs > 0 then exit 1
  in
  let all_kernels_arg =
    Arg.(value & flag
         & info [ "all-kernels" ] ~doc:"Check every benchmark kernel.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("dae", `Dae); ("spec", `Spec); ("both", `Both) ]) `Both
      & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"dae, spec or both (default).")
  in
  let path_limit_arg =
    Arg.(value & opt int Dae_core.Poison.default_path_limit
         & info [ "path-limit" ] ~docv:"N"
             ~doc:"Path-enumeration budget for the segment and Algorithm 2 \
                   universes (overruns degrade to warnings).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ]
           ~doc:"Also print info-level diagnostics.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one JSON object per kernel and mode (error and \
                   warning counts plus every diagnostic, including \
                   info-level) instead of the report.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify the decoupling protocol of compiled slices: \
          channel balance (§3.2), poison coverage (§5.2) and LoD residue \
          (§5.1). Exits 1 when any error-level diagnostic is found.")
    Term.(
      const run $ file_arg $ kernel_arg $ all_kernels_arg $ mode_arg
      $ path_limit_arg $ verbose_arg $ json_arg)

(* --- leak ---------------------------------------------------------------------- *)

let leak_cmd =
  let module Taint = Dae_analysis.Taint in
  let module Leak = Dae_analysis.Leak in
  let site_json (s : Taint.site) =
    Json.Obj
      [
        ("kind", Json.Str (Taint.site_kind_name s.Taint.s_kind));
        ("unit", Json.Str (Dae_sim.Trace.unit_name s.Taint.s_unit));
        ("block", Json.Int s.Taint.s_block);
        ("arr", Json.Str s.Taint.s_arr);
        ("mem", Json.Int s.Taint.s_mem);
        ("speculative", Json.Bool s.Taint.s_speculative);
      ]
  in
  let outcome_json = function
    | Leak.Cycles c -> Json.Int c
    | Leak.Deadlock -> Json.Str "deadlock"
  in
  let witness_json (w : Leak.witness) =
    Json.Obj
      [
        ("arr", Json.Str w.Leak.w_arr);
        ("idx", Json.Int w.Leak.w_idx);
        ("base", Json.Int w.Leak.w_base);
        ("flip", Json.Int w.Leak.w_flip);
        ("digest_differs", Json.Bool w.Leak.w_digest_differs);
        ( "divergences",
          Json.List
            (List.map
               (fun (d : Leak.divergence) ->
                 Json.Obj
                   [
                     ("config", Json.Str d.Leak.d_cfg);
                     ("base", outcome_json d.Leak.d_base);
                     ("flip", outcome_json d.Leak.d_flip);
                     ("cycles_differ", Json.Bool d.Leak.d_cycles_differ);
                     ("stalls_differ", Json.Bool d.Leak.d_stats_differ);
                   ])
               w.Leak.w_divs) );
      ]
  in
  let search_json (r : Leak.t) =
    Json.Obj
      [
        ("reads", Json.Int r.Leak.l_reads);
        ("candidates", Json.Int r.Leak.l_candidates);
        ("probed", Json.Int r.Leak.l_probed);
        ("skipped", Json.Int r.Leak.l_skipped);
        ("witnesses", Json.List (List.map witness_json r.Leak.l_witnesses));
      ]
  in
  let mode_of_arch = function
    | Dae_sim.Machine.Dae -> Some Dae_core.Pipeline.Dae
    | Dae_sim.Machine.Spec | Dae_sim.Machine.Oracle ->
      Some Dae_core.Pipeline.Spec
    | Dae_sim.Machine.Sta -> None
  in
  let run suite kernel_names archs witness budget json hierarchy =
    let archs =
      if archs = [] then [ Dae_sim.Machine.Spec ]
      else if List.mem Dae_sim.Machine.Sta archs then begin
        Fmt.epr "leak needs a decoupled architecture (dae, spec or oracle)@.";
        exit 2
      end
      else archs
    in
    (* --mem cache (and the geometry flags) customize the hierarchy probe
       point; the scratchpad baseline is always probed alongside it *)
    let points =
      match hierarchy with
      | Dae_sim.Config.Scratchpad -> Leak.default_points
      | Dae_sim.Config.Hierarchy _ ->
        [
          ("scratchpad", Dae_sim.Config.default);
          ("cache", { Dae_sim.Config.default with Dae_sim.Config.hierarchy });
        ]
    in
    let failed = ref false in
    let json_items = ref [] in
    let census =
      Dae_workloads.Kernels.suite_iter ~suite ~only:kernel_names
        (fun (k : Dae_workloads.Kernels.t) ->
        let name = k.Dae_workloads.Kernels.name in
        List.iter
          (fun arch ->
            let mode =
              match mode_of_arch arch with
              | Some m -> m
              | None -> assert false
            in
            let mode_name = Dae_sim.Machine.arch_name arch in
            match
              Dae_core.Pipeline.compile ~mode
                (k.Dae_workloads.Kernels.build ())
            with
            | exception Dae_core.Pipeline.Compile_error e ->
              failed := true;
              Fmt.epr "%s (%s): compile error@.  %s@." name mode_name e
            | p ->
              let t = Taint.analyze p in
              let search =
                if witness then
                  match
                    Leak.search ~budget ~points arch
                      (k.Dae_workloads.Kernels.build ())
                      ~invocations:(k.Dae_workloads.Kernels.invocations ())
                      ~mem:(k.Dae_workloads.Kernels.init_mem ())
                  with
                  | r -> Some (Ok r)
                  | exception e -> Some (Error (Printexc.to_string e))
                else None
              in
              if json then
                json_items :=
                  Json.Obj
                    ([
                       ("kernel", Json.Str name);
                       ("arch", Json.Str mode_name);
                       ("clean", Json.Bool (Taint.clean t));
                       ( "sources",
                         Json.List (List.map (fun m -> Json.Int m) t.Taint.sources)
                       );
                       ( "tainted_arrays",
                         Json.List
                           (List.map (fun a -> Json.Str a) t.Taint.tainted_arrays)
                       );
                       ("sites", Json.List (List.map site_json t.Taint.sites));
                     ]
                    @
                    match search with
                    | None -> []
                    | Some (Ok r) -> [ ("witness_search", search_json r) ]
                    | Some (Error e) ->
                      [ ("witness_search_error", Json.Str e) ])
                  :: !json_items
              else begin
                Fmt.pr "== %s (%s) ==@.%a" name mode_name Taint.pp t;
                (match search with
                | None -> ()
                | Some (Ok r) -> Fmt.pr "%a" Leak.pp r
                | Some (Error e) ->
                  failed := true;
                  Fmt.pr "witness search FAILED: %s@." e);
                Fmt.pr "@."
              end)
          archs)
    in
    (match census with
    | Ok () -> ()
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2);
    if json then
      Fmt.pr "%a@." Json.pp (Json.List (List.rev !json_items));
    if !failed then exit 1
  in
  let suite_arg =
    Arg.(
      value
      & opt (enum [ ("quick", `Quick); ("paper", `Paper) ]) `Quick
      & info [ "suite" ] ~docv:"SUITE"
          ~doc:"Workload sizes: quick (test suite) or paper (Table 1).")
  in
  let kernels_arg =
    Arg.(value & opt_all string []
         & info [ "k"; "kernel" ] ~docv:"NAME"
             ~doc:"Restrict to this kernel (repeatable; default: all).")
  in
  let archs_arg =
    Arg.(value & opt_all arch_conv []
         & info [ "a"; "arch" ] ~docv:"ARCH"
             ~doc:"Architecture: dae, spec or oracle (repeatable; default \
                   spec).")
  in
  let witness_arg =
    Arg.(value & flag
         & info [ "witness" ]
             ~doc:"Also search for dynamic interference witnesses: flip one \
                   architecturally dead cell at a time and replay through \
                   the re-timing engine at the scratchpad and cache \
                   configuration points.")
  in
  let budget_arg =
    Arg.(value & opt int 8
         & info [ "budget" ] ~docv:"N"
             ~doc:"Candidate cells to probe per kernel and architecture.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one JSON object per kernel and architecture.")
  in
  Cmd.v
    (Cmd.info "leak"
       ~doc:
         "Speculative-leakage analysis: statically taint values loaded by \
          hoisted (pre-guard) requests, flag every tainted address, branch \
          condition or produced value (the places a secret can reach the \
          memory ports, the schedule or the channels), and optionally \
          confirm with timing-interference witnesses under --witness. \
          Exits 1 only on compile or witness-search failure — leaks found \
          are a report, not an error.")
    Term.(
      const run $ suite_arg $ kernels_arg $ archs_arg $ witness_arg
      $ budget_arg $ json_arg $ hierarchy_term)

(* --- size ---------------------------------------------------------------------- *)

(* `size --json` on the shared emitter: same shape the sizing analyzer's
   report describes (verdict, critical channel, bound coefficients,
   per-channel depth/rate table). *)
let sizing_json ~kernel ~mode (sz : Dae_analysis.Sizing.t) =
  let module Sizing = Dae_analysis.Sizing in
  let module Channel = Dae_analysis.Channel in
  let chan_json (s : Sizing.sized) =
    Json.Obj
      [
        ("name", Json.Str (Channel.name s.Sizing.sz_chan.Channel.kind));
        ("knob", Json.Str (Channel.knob s.Sizing.sz_chan.Channel.kind));
        ("configured", Json.Int s.Sizing.sz_configured);
        ("min_depth", Json.Int s.Sizing.sz_min);
        ("matched_depth", Json.Int s.Sizing.sz_matched);
        ("rate_lo", Json.Int s.Sizing.sz_chan.Channel.rate.Channel.lo);
        ("rate_hi", Json.Int s.Sizing.sz_chan.Channel.rate.Channel.hi);
        ("spec_hi", Json.Int s.Sizing.sz_chan.Channel.rate.Channel.spec_hi);
        ("kill_hi", Json.Int s.Sizing.sz_chan.Channel.rate.Channel.kill_hi);
      ]
  in
  Json.Obj
    ([
       ("kernel", Json.Str kernel);
       ("mode", Json.Str mode);
       ( "verdict",
         Json.Str
           (match sz.Sizing.verdict with
           | Sizing.Deadlock_free -> "deadlock-free"
           | Sizing.Deadlock _ -> "deadlock") );
       ( "critical",
         match sz.Sizing.critical with
         | Some k -> Json.Str (Channel.name k)
         | None -> Json.Null );
       ("bound_per_event", Json.Int sz.Sizing.bound_per_event);
       ("bound_fill", Json.Int sz.Sizing.bound_fill);
       ( "min_depths",
         Json.Obj
           (List.map
              (fun (s : Sizing.sized) ->
                (Channel.name s.Sizing.sz_chan.Channel.kind,
                 Json.Int s.Sizing.sz_min))
              sz.Sizing.channels) );
       ("channels", Json.List (List.map chan_json sz.Sizing.channels));
     ]
    @
    match sz.Sizing.verdict with
    | Sizing.Deadlock cycles ->
      [ ("deadlock_cycles", Json.List (List.map (fun c -> Json.Str c) cycles)) ]
    | Sizing.Deadlock_free -> [])

(* memoized outcome of the min-1 boundary probe (see validate_sim) *)
type probe_outcome =
  | P_cycles of int
  | P_deadlock of string
  | P_rejected of string

let size_cmd =
  let modes_of = function
    | `Dae -> [ Dae_core.Pipeline.Dae ]
    | `Spec -> [ Dae_core.Pipeline.Spec ]
    | `Both -> [ Dae_core.Pipeline.Dae; Dae_core.Pipeline.Spec ]
  in
  let mode_name = function
    | Dae_core.Pipeline.Dae -> "dae"
    | Dae_core.Pipeline.Spec -> "spec"
  in
  (* Optional cross-validation against the simulator: the analyzer's
     minimum depths must complete within the predicted cycle bound, and
     the critical channel at minimum-1 must be rejected by
     Config.validate and then (validation off) either trip the dynamic
     deadlock detector or run no faster than the minimum. Both probes
     ride the re-timing engine: the functional execution runs (lazily) at
     most once and each boundary configuration only replays the stored
     traces. Probe outcomes are memoized in the on-disk result cache —
     keyed by plan digest × base/probe configurations × path budget — so
     a warm `size --validate` prints the same report without executing a
     single instruction. *)
  let validate_sim ~cache ~cfg ~path_limit ~mode
      (k : Dae_workloads.Kernels.t) (sz : Dae_analysis.Sizing.t) : bool =
    let arch =
      match mode with
      | Dae_core.Pipeline.Dae -> Dae_sim.Machine.Dae
      | Dae_core.Pipeline.Spec -> Dae_sim.Machine.Spec
    in
    let plan =
      Dae_sim.Retime.plan arch (k.Dae_workloads.Kernels.build ())
    in
    let prepared =
      lazy
        (Dae_sim.Retime.prepare plan
           ~invocations:(k.Dae_workloads.Kernels.invocations ())
           ~mem:(k.Dae_workloads.Kernels.init_mem ()))
    in
    let simulate ?(validate = true) ~collect cfg =
      Dae_sim.Retime.simulate ~validate ~collect ~cfg (Lazy.force prepared)
    in
    let vkey sub cfg' =
      Dae_sim.Cache.key
        [
          Dae_sim.Cache.version;
          "size-validate/1";
          sub;
          Dae_sim.Retime.plan_digest plan;
          "paper/" ^ k.Dae_workloads.Kernels.name;
          string_of_int path_limit;
          Dae_sim.Config.key cfg;
          Dae_sim.Config.key cfg';
        ]
    in
    let ok = ref true in
    let min_cfg = sz.Dae_analysis.Sizing.min_cfg in
    (let key = vkey "min" min_cfg in
     let outcome =
       match (Dae_sim.Cache.find cache key : (int * int) option) with
       | Some cb -> Ok cb
       | None -> (
         match simulate ~collect:true min_cfg with
         | r ->
           let b =
             Dae_analysis.Sizing.bound_of_timelines sz
               r.Dae_sim.Machine.timelines
           in
           let cb = (r.Dae_sim.Machine.cycles, b) in
           Dae_sim.Cache.store ~kind:"size-validate" cache key cb;
           Ok cb
         | exception e -> Error e)
     in
     match outcome with
     | Ok (cycles, b) ->
       let fits = cycles <= b in
       if not fits then ok := false;
       Fmt.pr "  sim at min depths: %d cycles (bound %d) %s@." cycles b
         (if fits then "ok" else "EXCEEDS BOUND")
     | Error e ->
       ok := false;
       Fmt.pr "  sim at min depths: FAILED (%s)@." (Printexc.to_string e));
    (match Dae_analysis.Sizing.critical_decrement sz with
    | None -> ()
    | Some (kind, probe_cfg) -> (
      let cname = Dae_analysis.Channel.name kind in
      let key = vkey "probe" probe_cfg in
      let outcome =
        match (Dae_sim.Cache.find cache key : probe_outcome option) with
        | Some o -> Ok o
        | None -> (
          let keep o =
            Dae_sim.Cache.store ~kind:"size-validate" cache key o;
            Ok o
          in
          match simulate ~validate:false ~collect:false probe_cfg with
          | r -> keep (P_cycles r.Dae_sim.Machine.cycles)
          | exception Dae_sim.Timing.Deadlock msg -> keep (P_deadlock msg)
          | exception Invalid_argument msg -> keep (P_rejected msg)
          | exception e -> Error e)
      in
      match outcome with
      | Ok (P_cycles c) ->
        Fmt.pr "  sim at %s min-1: %d cycles (no deadlock: stall shifts)@."
          cname c
      | Ok (P_deadlock msg) ->
        Fmt.pr "  sim at %s min-1: dynamic deadlock reproduced (%s)@." cname
          msg
      | Ok (P_rejected msg) ->
        Fmt.pr "  sim at %s min-1: rejected (%s)@." cname msg
      | Error e ->
        ok := false;
        Fmt.pr "  sim at %s min-1: unexpected failure (%s)@." cname
          (Printexc.to_string e)));
    !ok
  in
  let run file kernel all_kernels mode json validate sq lq fifo_lat req_fifo
      val_fifo stv_fifo hierarchy no_cache cache_dir path_limit =
    let cfg =
      cfg_of ~hierarchy ~sq ~lq ~fifo_lat ~req_fifo ~val_fifo ~stv_fifo ()
    in
    let cache =
      if no_cache then Dae_sim.Cache.disabled ()
      else Dae_sim.Cache.create ~dir:cache_dir ()
    in
    let failed = ref false in
    let json_items = ref [] in
    let process name f krec =
      List.iter
        (fun mode ->
          match Dae_core.Pipeline.compile ~mode (Dae_ir.Func.clone f) with
          | exception Dae_core.Pipeline.Compile_error e ->
            failed := true;
            Fmt.epr "%s (%s): compile error@.  %s@." name (mode_name mode) e
          | p -> (
            match Dae_analysis.Sizing.analyze ~path_limit ~cfg p with
            | Error (b : Dae_analysis.Segments.budget) ->
              failed := true;
              Fmt.epr
                "%s (%s): sizing skipped — %d blocks explored from bb%d \
                 exceed the segment budget of %d@."
                name (mode_name mode) b.Dae_analysis.Segments.explored
                b.Dae_analysis.Segments.start b.Dae_analysis.Segments.limit
            | Ok sz ->
              if json then
                json_items :=
                  sizing_json ~kernel:name ~mode:(mode_name mode) sz
                  :: !json_items
              else begin
                Fmt.pr "%s (%s): %a" name (mode_name mode)
                  Dae_analysis.Sizing.pp sz;
                match krec with
                | Some k when validate ->
                  if not (validate_sim ~cache ~cfg ~path_limit ~mode k sz)
                  then failed := true
                | _ -> ()
              end;
              if Dae_analysis.Sizing.deadlocks sz then failed := true))
        (modes_of mode)
    in
    let dispatched =
      if all_kernels then
        Dae_workloads.Kernels.suite_iter (fun k ->
            process k.Dae_workloads.Kernels.name
              (k.Dae_workloads.Kernels.build ())
              (Some k))
      else
        match load_func ~file ~kernel with
        | Error e -> Error e
        | Ok (f, Some k) -> Ok (process k.Dae_workloads.Kernels.name f (Some k))
        | Ok (f, None) -> Ok (process f.Dae_ir.Func.name f None)
    in
    (match dispatched with
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
    | Ok () -> ());
    if json then Fmt.pr "%a@." Json.pp (Json.List (List.rev !json_items));
    if !failed then exit 1
  in
  let all_kernels_arg =
    Arg.(value & flag
         & info [ "all-kernels" ] ~doc:"Size every benchmark kernel.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("dae", `Dae); ("spec", `Spec); ("both", `Both) ]) `Both
      & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"dae, spec or both (default).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit one JSON object per kernel and mode.")
  in
  let validate_arg =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Cross-validate against the simulator: run at the \
                   computed minimum depths (must meet the cycle bound) and \
                   at minimum-1 on the critical channel (must deadlock, be \
                   rejected, or stall harder). Needs --kernel data.")
  in
  let path_limit_arg =
    Arg.(value & opt int Dae_core.Poison.default_path_limit
         & info [ "path-limit" ] ~docv:"N"
             ~doc:"Path-enumeration budget for the segment universe.")
  in
  Cmd.v
    (Cmd.info "size"
       ~doc:
         "Statically size the inter-unit channels: minimum safe and \
          slack-matched depth per channel, deadlock-freedom proof for the \
          given capacities, and the predicted dominant Fifo_full channel. \
          Exits 1 on a provable deadlock.")
    Term.(
      const run $ file_arg $ kernel_arg $ all_kernels_arg $ mode_arg
      $ json_arg $ validate_arg $ sq_arg $ lq_arg $ fifo_lat_arg
      $ req_fifo_arg $ val_fifo_arg $ stv_fifo_arg $ hierarchy_term
      $ no_cache_arg $ cache_dir_arg $ path_limit_arg)

(* --- partition ----------------------------------------------------------------- *)

let partition_cmd =
  let module Partition = Dae_analysis.Partition in
  let cluster_json (c : Partition.cluster) =
    Json.Obj
      [
        ("unit", Json.Int c.Partition.cl_unit);
        ("name", Json.Str (Partition.unit_name c.Partition.cl_unit));
        ( "arrays",
          Json.List (List.map (fun a -> Json.Str a) c.Partition.cl_arrays) );
        ("loads", Json.Int c.Partition.cl_loads);
        ("stores", Json.Int c.Partition.cl_stores);
        ("traffic", Json.Int c.Partition.cl_traffic);
        ("mlp", Json.Int c.Partition.cl_streams);
      ]
  in
  let edge_json (e : Partition.edge) =
    Json.Obj
      [
        ("src", Json.Int e.Partition.e_src);
        ("dst", Json.Int e.Partition.e_dst);
        ("kind", Json.Str (Partition.edge_kind_name e.Partition.e_kind));
        ("src_arr", Json.Str e.Partition.e_src_arr);
        ("dst_arr", Json.Str e.Partition.e_dst_arr);
      ]
  in
  let run file kernel all_kernels max_units json dot =
    let failed = ref false in
    let json_items = ref [] in
    let process name f =
      let pa = Partition.analyze ?max_units (Dae_ir.Func.clone f) in
      if dot then Fmt.pr "%a" Partition.pp_dot pa
      else begin
        (* re-verify the emitted DAG end to end: compile under the
           assignment, then run the generalized soundness checker and the
           sizing analyzer over the N-way pipeline *)
        let verify =
          match
            Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Dae
              ~partition:pa.Partition.assignment (Dae_ir.Func.clone f)
          with
          | exception Dae_core.Pipeline.Compile_error e -> Error e
          | p ->
            Ok
              ( Dae_analysis.Checker.run p,
                Dae_analysis.Sizing.analyze ~cfg:Dae_sim.Config.default p )
        in
        if json then
          json_items :=
            Json.Obj
              ([
                 ("kernel", Json.Str name);
                 ("n_units", Json.Int (List.length pa.Partition.clusters));
                 ("n_arrays", Json.Int pa.Partition.n_arrays);
                 ( "clusters",
                   Json.List (List.map cluster_json pa.Partition.clusters) );
                 ("edges", Json.List (List.map edge_json pa.Partition.edges));
               ]
              @
              match verify with
              | Error e ->
                failed := true;
                [ ("compile_error", Json.Str e) ]
              | Ok (ds, sz) ->
                let errs = Dae_analysis.Diag.errors ds in
                if errs > 0 then failed := true;
                [
                  ("check_errors", Json.Int errs);
                  ("check_warnings", Json.Int (Dae_analysis.Diag.warnings ds));
                  ("diagnostics", Json.List (List.map diag_json ds));
                  ( "sizing",
                    match sz with
                    | Error _ -> Json.Str "skipped"
                    | Ok sz ->
                      if Dae_analysis.Sizing.deadlocks sz then begin
                        failed := true;
                        Json.Str "deadlock"
                      end
                      else Json.Str "deadlock-free" );
                ])
            :: !json_items
        else begin
          Fmt.pr "%s: %a" name Partition.pp pa;
          match verify with
          | Error e ->
            failed := true;
            Fmt.pr "  compile error: %s@." e
          | Ok (ds, sz) ->
            let errs = Dae_analysis.Diag.errors ds in
            if errs > 0 then failed := true;
            Fmt.pr "  check (dae): %d error(s), %d warning(s)@." errs
              (Dae_analysis.Diag.warnings ds);
            List.iter
              (fun d ->
                if d.Dae_analysis.Diag.sev <> Dae_analysis.Diag.Info then
                  Fmt.pr "    %a@." Dae_analysis.Diag.pp d)
              ds;
            (match sz with
            | Error (b : Dae_analysis.Segments.budget) ->
              Fmt.pr "  sizing (dae): skipped (segment budget %d exceeded)@."
                b.Dae_analysis.Segments.limit
            | Ok sz ->
              if Dae_analysis.Sizing.deadlocks sz then begin
                failed := true;
                Fmt.pr "  sizing (dae): DEADLOCK at default depths@."
              end
              else Fmt.pr "  sizing (dae): deadlock-free at default depths@.")
        end
      end
    in
    let dispatched =
      if all_kernels then
        Dae_workloads.Kernels.suite_iter (fun k ->
            process k.Dae_workloads.Kernels.name
              (k.Dae_workloads.Kernels.build ()))
      else
        match load_func ~file ~kernel with
        | Error e -> Error e
        | Ok (f, Some k) -> Ok (process k.Dae_workloads.Kernels.name f)
        | Ok (f, None) -> Ok (process f.Dae_ir.Func.name f)
    in
    (match dispatched with
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
    | Ok () -> ());
    if json then Fmt.pr "%a@." Json.pp (Json.List (List.rev !json_items));
    if !failed then exit 1
  in
  let all_kernels_arg =
    Arg.(value & flag
         & info [ "all-kernels" ] ~doc:"Partition every benchmark kernel.")
  in
  let max_units_arg =
    Arg.(value & opt (some int) None
         & info [ "max-units" ] ~docv:"N"
             ~doc:"Cap the access-unit count: over budget, the two \
                   lightest-traffic clusters merge repeatedly. 1 recovers \
                   the classic single-AGU split.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one JSON object per kernel (clusters, edges and \
                   the verification verdicts).")
  in
  let dot_arg =
    Arg.(value & flag
         & info [ "dot" ]
             ~doc:"Emit the cluster DAG as graphviz instead of the report \
                   (skips the compile/check/size verification).")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:
         "Statically partition a kernel's address streams into an N-way \
          access-unit DAG: cluster loads/stores by array and \
          address-dataflow reachability, report per-unit traffic and MLP, \
          then re-verify the emitted assignment with the soundness checker \
          and the channel-sizing analyzer. Exits 1 when verification \
          fails.")
    Term.(
      const run $ file_arg $ kernel_arg $ all_kernels_arg $ max_units_arg
      $ json_arg $ dot_arg)

(* --- sweep --------------------------------------------------------------------- *)

let sweep_cmd =
  let run suite kernel_names archs grid hierarchy jobs no_cache cache_dir
      check no_sizing_check expect min_hit_rate quiet =
    let suite_name, suite_kernels =
      match suite with
      | `Quick -> ("quick", Dae_workloads.Kernels.test_suite ())
      | `Paper -> ("paper", Dae_workloads.Kernels.paper_suite ())
    in
    let selected =
      if kernel_names = [] then suite_kernels
      else
        List.filter
          (fun (k : Dae_workloads.Kernels.t) ->
            List.mem k.Dae_workloads.Kernels.name kernel_names)
          suite_kernels
    in
    if selected = [] then begin
      Fmt.epr "no kernels selected (try `daec list')@.";
      exit 2
    end;
    let workloads =
      List.map (Dae_dse.Sweep.workload_of_kernel ~suite:suite_name) selected
    in
    let archs =
      if archs = [] then
        [ Dae_sim.Machine.Dae; Dae_sim.Machine.Spec; Dae_sim.Machine.Oracle ]
      else archs
    in
    let axes =
      match grid with
      | `Default -> Dae_dse.Sweep.default_axes
      | `Quick -> Dae_dse.Sweep.quick_axes
      | `Hierarchy -> Dae_dse.Sweep.hierarchy_axes
    in
    let cache =
      if no_cache then Dae_sim.Cache.disabled ()
      else Dae_sim.Cache.create ~dir:cache_dir ()
    in
    (* the hierarchy is not a swept axis: it joins the base config, so the
       whole grid re-times under the selected memory model (and the cache
       keys pick it up through Config.key) *)
    let base = { Dae_sim.Config.default with Dae_sim.Config.hierarchy } in
    Dae_sim.Config.validate base;
    let result =
      Dae_dse.Sweep.run ~domains:jobs ~base ~check
        ~sizing_check:(not no_sizing_check) ~cache ~axes ~archs workloads
    in
    (match expect with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      List.iter
        (fun p -> Printf.fprintf oc "%s\n" (Fmt.str "%a" Dae_dse.Sweep.pp_point p))
        result.Dae_dse.Sweep.points;
      close_out oc);
    let s = result.Dae_dse.Sweep.summary in
    if not quiet then Fmt.pr "%a@." Dae_dse.Sweep.pp_summary s;
    let failed = ref false in
    List.iter
      (fun e ->
        failed := true;
        Fmt.epr "cross-check FAILED: %s@." e)
      s.Dae_dse.Sweep.sm_check_failures;
    List.iter
      (fun e ->
        failed := true;
        Fmt.epr "sizing violation: %s@." e)
      s.Dae_dse.Sweep.sm_sizing_violations;
    (match min_hit_rate with
    | Some r when s.Dae_dse.Sweep.sm_hit_rate < r ->
      failed := true;
      Fmt.epr "cache hit rate %.1f%% below required %.1f%%@."
        (100. *. s.Dae_dse.Sweep.sm_hit_rate)
        (100. *. r)
    | _ -> ());
    if !failed then exit 1
  in
  let suite_arg =
    Arg.(
      value
      & opt (enum [ ("quick", `Quick); ("paper", `Paper) ]) `Quick
      & info [ "suite" ] ~docv:"SUITE"
          ~doc:"Workload sizes: quick (test suite) or paper (Table 1).")
  in
  let kernels_arg =
    Arg.(value & opt_all string []
         & info [ "k"; "kernel" ] ~docv:"NAME"
             ~doc:"Restrict to this kernel (repeatable; default: all).")
  in
  let grid_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("default", `Default); ("quick", `Quick);
               ("hierarchy", `Hierarchy) ])
          `Default
      & info [ "grid" ] ~docv:"GRID"
          ~doc:"Configuration grid: default (648 capacity points per \
                kernel and architecture), quick (12, the CI grid) or \
                hierarchy (25 memory-system points at pinned capacities — \
                the scratchpad anchor plus cache banks/ways/MSHRs crossed \
                with a healthy and a starved DRAM model; the whole grid \
                shares one functional execution per kernel and \
                architecture).")
  in
  let check_arg =
    Arg.(value & opt int 1
         & info [ "check" ] ~docv:"N"
             ~doc:"Sampled equivalence audits per (kernel, arch) job: \
                   re-run the fused co-simulation at $(docv) swept \
                   configurations and require bit-identical cycles and \
                   stall partitions. 0 disables.")
  in
  let no_sizing_check_arg =
    Arg.(value & flag
         & info [ "no-sizing-check" ]
             ~doc:"Skip cross-validating swept deadlocks against the \
                   static sizing analyzer's minimum depths.")
  in
  let expect_arg =
    Arg.(value & opt (some string) None
         & info [ "expect" ] ~docv:"FILE"
             ~doc:"Write one deterministic line per point (kernel, arch, \
                   config, outcome) to $(docv) — diffable across cold and \
                   warm sweeps.")
  in
  let min_hit_rate_arg =
    Arg.(value & opt (some float) None
         & info [ "min-hit-rate" ] ~docv:"R"
             ~doc:"Exit nonzero when the cache hit rate falls below \
                   $(docv) (0..1); warm CI re-sweeps pass 0.95.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the summary.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Design-space exploration: re-time every kernel and architecture \
          over a FIFO/LSQ capacity grid. The functional execution runs \
          once per (kernel, arch) and each configuration only replays the \
          stored traces; results are memoized on disk, so a warm re-sweep \
          is pure cache lookups. Exits 1 on any cross-check failure, \
          sizing violation or missed --min-hit-rate.")
    Term.(
      const run $ suite_arg $ kernels_arg $ archs_arg $ grid_arg
      $ hierarchy_term $ jobs_arg $ no_cache_arg $ cache_dir_arg $ check_arg
      $ no_sizing_check_arg $ expect_arg $ min_hit_rate_arg $ quiet_arg)

(* --- cache --------------------------------------------------------------------- *)

let cache_cmd =
  let run action cache_dir =
    let cache = Dae_sim.Cache.create ~dir:cache_dir () in
    match action with
    | `Stats ->
      let d = Dae_sim.Cache.disk_stats cache in
      Fmt.pr "dir:     %s@.engine:  %s@.entries: %d@.bytes:   %d@."
        cache_dir Dae_sim.Cache.version d.Dae_sim.Cache.entries
        d.Dae_sim.Cache.bytes;
      (* prepared-plan stamps and re-timed hierarchy points are cheap and
         plentiful; fused sweep points are the expensive ones — report the
         populations separately *)
      List.iter
        (fun (kind, (n, b)) ->
          Fmt.pr "  %-14s %d entr%s, %d bytes@." kind n
            (if n = 1 then "y" else "ies")
            b)
        d.Dae_sim.Cache.by_kind
    | `Clear ->
      let n = Dae_sim.Cache.clear cache in
      Fmt.pr "removed %d entr%s@." n (if n = 1 then "y" else "ies")
  in
  let action_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("stats", `Stats); ("clear", `Clear) ])) None
      & info [] ~docv:"ACTION" ~doc:"stats or clear.")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect (stats) or empty (clear) the on-disk re-timing result \
          cache used by `daec sweep'. Entries are content-addressed and \
          versioned by the timing-engine stamp, so clearing is never \
          required for correctness.")
    Term.(const run $ action_arg $ cache_dir_arg)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let info =
    Cmd.info "daec" ~version:"1.0.0"
      ~doc:"Speculative decoupled access/execute compiler and simulator."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; analyze_cmd; compile_cmd; run_cmd; stats_cmd;
            trace_cmd; check_cmd; leak_cmd; size_cmd; partition_cmd;
            sweep_cmd; cache_cmd ]))
