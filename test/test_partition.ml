(* The static address-stream partitioner, held to its contract:

   - the forced 2-way partition (Decouple.trivial) is invisible — same
     slices, same sizing, same traces, same cycles and stall partitions
     as today's partition-less compile, as a qcheck property over the §6
     randomized kernel generator;
   - every test-suite kernel's inferred N-way DAG compiles, passes the
     generalized soundness checker with no errors, and simulates to the
     kernel's reference result with exact per-unit stall partitions;
   - on a >= 3-unit DAG (mm) the sizing analyzer's minimum depths are
     safe under Retime.simulate and one step below any channel class's
     minimum is the deadlock boundary: statically stuck, and dynamically
     deadlocked or no faster. *)

open Dae_workloads
module G = Gen
module M = Dae_sim.Machine
module R = Dae_sim.Retime
module S = Dae_sim.Stats
module P = Dae_core.Pipeline
module D = Dae_core.Decouple
module Pt = Dae_analysis.Partition
module Sz = Dae_analysis.Sizing
module Ch = Dae_analysis.Channel
module Diag = Dae_analysis.Diag

let tc = Alcotest.test_case
let check = Alcotest.check
let cfg0 = Dae_sim.Config.default

let prepare ?partition (k : Kernels.t) =
  R.prepare
    (R.plan ?partition M.Dae (k.Kernels.build ()))
    ~invocations:(k.Kernels.invocations ())
    ~mem:(k.Kernels.init_mem ())

(* --- every kernel: infer, verify, simulate the N-way DAG --------------------- *)

let test_suite_nway () =
  List.iter
    (fun (k : Kernels.t) ->
      let name = k.Kernels.name in
      let pa = Pt.analyze (k.Kernels.build ()) in
      (* deterministic report *)
      check Alcotest.string (name ^ " deterministic")
        (Fmt.str "%a" Pt.pp pa)
        (Fmt.str "%a" Pt.pp (Pt.analyze (k.Kernels.build ())));
      (* single ownership: every array in exactly one cluster *)
      let owned = List.concat_map (fun c -> c.Pt.cl_arrays) pa.Pt.clusters in
      check Alcotest.int (name ^ " arrays owned once") pa.Pt.n_arrays
        (List.length (List.sort_uniq compare owned));
      (* edges stay inside the emitted unit range, never self-loops *)
      let n = List.length pa.Pt.clusters in
      check Alcotest.int (name ^ " n_access") n
        pa.Pt.assignment.D.n_access;
      List.iter
        (fun (e : Pt.edge) ->
          check Alcotest.bool (name ^ " edge in range") true
            (e.Pt.e_src >= 0 && e.Pt.e_src < n && e.Pt.e_dst >= 0
           && e.Pt.e_dst < n && e.Pt.e_src <> e.Pt.e_dst))
        pa.Pt.edges;
      (* the generalized checker accepts the DAG *)
      let p =
        P.compile ~mode:P.Dae ~partition:pa.Pt.assignment
          (k.Kernels.build ())
      in
      let ds = Dae_analysis.Checker.run p in
      check Alcotest.int (name ^ " checker errors") 0 (Diag.errors ds);
      (* the N-way pipeline simulates to the reference result (prepare
         itself golden-checks the functional run) *)
      let r = R.simulate ~cfg:cfg0 (prepare ~partition:pa.Pt.assignment k) in
      (match k.Kernels.check r.M.memory with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e);
      List.iter
        (fun (u, c) ->
          check Alcotest.int (name ^ " " ^ u ^ " partitions") r.M.cycles
            (S.total c))
        r.M.stats)
    (Kernels.test_suite ())

(* --- mm: a >= 3-unit DAG with the deadlock boundary on every class ----------- *)

let test_mm_dag_boundary () =
  let k =
    match Kernels.by_name (Kernels.test_suite ()) "mm" with
    | Some k -> k
    | None -> Alcotest.fail "mm not in test suite"
  in
  let pa = Pt.analyze (k.Kernels.build ()) in
  check Alcotest.bool "mm has >= 3 units" true
    (List.length pa.Pt.clusters >= 3);
  check Alcotest.bool "mm DAG has edges" true (pa.Pt.edges <> []);
  let p =
    P.compile ~mode:P.Dae ~partition:pa.Pt.assignment (k.Kernels.build ())
  in
  match Sz.analyze ~cfg:cfg0 p with
  | Error _ -> Alcotest.fail "mm: segment budget exceeded"
  | Ok sz ->
    check Alcotest.bool "mm deadlock-free at defaults" false
      (Sz.deadlocks sz);
    let prepared = prepare ~partition:pa.Pt.assignment k in
    let rmin = R.simulate ~collect:true ~cfg:sz.Sz.min_cfg prepared in
    (match k.Kernels.check rmin.M.memory with
    | Ok () -> ()
    | Error e -> Alcotest.failf "mm at min depths: %s" e);
    check Alcotest.bool "mm cycles within bound" true
      (rmin.M.cycles <= Sz.bound_of_timelines sz rmin.M.timelines);
    (* one step below any class minimum is the boundary *)
    let knobs =
      List.sort_uniq compare
        (List.map (fun (s : Sz.sized) -> Ch.knob s.Sz.sz_chan.Ch.kind)
           sz.Sz.channels)
    in
    check Alcotest.bool "mm uses several channel classes" true
      (List.length knobs >= 2);
    List.iter
      (fun knob ->
        let s =
          List.find
            (fun (s : Sz.sized) -> Ch.knob s.Sz.sz_chan.Ch.kind = knob)
            sz.Sz.channels
        in
        let kind = s.Sz.sz_chan.Ch.kind in
        let m = Ch.capacity sz.Sz.min_cfg kind in
        let probe = Ch.with_capacity sz.Sz.min_cfg kind (m - 1) in
        (* statically stuck: some composition no longer completes *)
        (match Sz.analyze ~cfg:probe p with
        | Ok sz' ->
          check Alcotest.bool (knob ^ " static deadlock at min-1") true
            (Sz.deadlocks sz')
        | Error _ -> Alcotest.failf "%s: segment budget exceeded" knob);
        if m - 1 = 0 then begin
          (match Dae_sim.Config.validate probe with
          | () -> Alcotest.failf "%s: capacity 0 passed validate" knob
          | exception Invalid_argument _ -> ());
          match R.simulate ~validate:false ~cfg:probe prepared with
          | (_ : M.result) ->
            Alcotest.failf "%s: expected a dynamic deadlock at min-1" knob
          | exception Dae_sim.Timing.Deadlock _ -> ()
        end
        else
          match R.simulate ~validate:false ~cfg:probe prepared with
          | r' ->
            check Alcotest.bool (knob ^ " min-1 no faster") true
              (r'.M.cycles >= rmin.M.cycles)
          | exception Dae_sim.Timing.Deadlock _ -> ())
      knobs

(* --- qcheck: the forced 2-way partition is invisible ------------------------- *)

let stats_list (r : M.result) =
  List.map (fun (u, c) -> (u, S.to_list c)) r.M.stats

let gen_trivial_identical (g : G.t) =
  match P.compile ~mode:P.Dae (Dae_ir.Func.clone g.G.func) with
  | exception P.Compile_error _ -> true
  | p0 ->
    let p1 =
      P.compile ~mode:P.Dae ~partition:D.trivial
        (Dae_ir.Func.clone g.G.func)
    in
    let pr f = Fmt.str "%a" Dae_ir.Printer.pp_func f in
    (* identical slices, no extra units *)
    pr p0.P.agu = pr p1.P.agu
    && pr p0.P.cu = pr p1.P.cu
    && p1.P.aus = []
    (* identical sizing *)
    && (match (Sz.analyze ~cfg:cfg0 p0, Sz.analyze ~cfg:cfg0 p1) with
       | Ok s0, Ok s1 ->
         let key (s : Sz.sized) =
           ( Ch.name s.Sz.sz_chan.Ch.kind,
             s.Sz.sz_configured,
             s.Sz.sz_min,
             s.Sz.sz_matched )
         in
         List.map key s0.Sz.channels = List.map key s1.Sz.channels
         && s0.Sz.verdict = s1.Sz.verdict
         && s0.Sz.bound_per_event = s1.Sz.bound_per_event
         && s0.Sz.bound_fill = s1.Sz.bound_fill
       | Error _, Error _ -> true
       | _ -> false)
    &&
    (* identical plans, traces, cycles and stall partitions *)
    let pl0 = R.plan M.Dae (Dae_ir.Func.clone g.G.func)
    and pl1 =
      R.plan ~partition:D.trivial M.Dae (Dae_ir.Func.clone g.G.func)
    in
    R.plan_digest pl0 = R.plan_digest pl1
    &&
    let prep pl =
      R.prepare pl ~invocations:[ g.G.args ] ~mem:(g.G.mem ())
    in
    let pr0 = prep pl0 and pr1 = prep pl1 in
    R.trace_digest pr0 = R.trace_digest pr1
    &&
    let r0 = R.simulate ~cfg:cfg0 pr0 and r1 = R.simulate ~cfg:cfg0 pr1 in
    r0.M.cycles = r1.M.cycles && stats_list r0 = stats_list r1

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"forced 2-way partition is bit-identical" ~count:30
      small_nat
      (fun seed -> gen_trivial_identical (Fixtures.gen_cfg ~seed));
    Test.make ~name:"same, with stores on several arrays" ~count:10 small_nat
      (fun seed ->
        gen_trivial_identical
          (Fixtures.gen_cfg_multi ~inner_loops:false ~seed ()));
  ]

let () =
  Alcotest.run "partition"
    [
      ( "nway",
        [
          tc "suite DAGs verify and simulate" `Quick test_suite_nway;
          tc "mm DAG sizing boundary" `Quick test_mm_dag_boundary;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
