(* IR substrate tests: types, instructions, CFG surgery, builder shapes,
   the verifier, the interpreter, DCE and CFG simplification. *)

open Dae_ir

let check = Alcotest.check
let tc = Alcotest.test_case

(* --- instruction semantics ------------------------------------------------ *)

let test_eval_binop () =
  check Alcotest.int "add" 7 (Instr.eval_binop Instr.Add 3 4);
  check Alcotest.int "sub" (-1) (Instr.eval_binop Instr.Sub 3 4);
  check Alcotest.int "mul" 12 (Instr.eval_binop Instr.Mul 3 4);
  check Alcotest.int "sdiv" 2 (Instr.eval_binop Instr.Sdiv 9 4);
  check Alcotest.int "sdiv by zero" 0 (Instr.eval_binop Instr.Sdiv 9 0);
  check Alcotest.int "srem" 1 (Instr.eval_binop Instr.Srem 9 4);
  check Alcotest.int "srem by zero" 0 (Instr.eval_binop Instr.Srem 9 0);
  check Alcotest.int "and" 0b100 (Instr.eval_binop Instr.And 0b110 0b101);
  check Alcotest.int "or" 0b111 (Instr.eval_binop Instr.Or 0b110 0b101);
  check Alcotest.int "xor" 0b011 (Instr.eval_binop Instr.Xor 0b110 0b101);
  check Alcotest.int "shl" 24 (Instr.eval_binop Instr.Shl 3 3);
  check Alcotest.int "ashr" 3 (Instr.eval_binop Instr.Ashr 24 3);
  check Alcotest.int "ashr negative" (-2) (Instr.eval_binop Instr.Ashr (-8) 2);
  check Alcotest.int "smin" 3 (Instr.eval_binop Instr.Smin 3 4);
  check Alcotest.int "smax" 4 (Instr.eval_binop Instr.Smax 3 4)

let test_eval_cmp () =
  let t = Alcotest.bool in
  check t "eq" true (Instr.eval_cmp Instr.Eq 4 4);
  check t "ne" true (Instr.eval_cmp Instr.Ne 4 5);
  check t "slt" true (Instr.eval_cmp Instr.Slt (-1) 0);
  check t "sle" true (Instr.eval_cmp Instr.Sle 4 4);
  check t "sgt" false (Instr.eval_cmp Instr.Sgt 4 4);
  check t "sge" true (Instr.eval_cmp Instr.Sge 4 4)

let test_operands_and_map () =
  let i =
    { Instr.id = 9;
      kind = Instr.Store { arr = "a"; idx = Types.Var 1; value = Types.Var 2;
                           mem = 0 } }
  in
  check Alcotest.int "store reads two operands" 2
    (List.length (Instr.operands i));
  let j =
    Instr.map_operands
      (function Types.Var v -> Types.Var (v + 10) | c -> c)
      i
  in
  (match j.Instr.kind with
  | Instr.Store { idx = Types.Var 11; value = Types.Var 12; _ } -> ()
  | _ -> Alcotest.fail "map_operands did not rewrite the store");
  check Alcotest.bool "store has side effect" true (Instr.has_side_effect i);
  check Alcotest.bool "store produces no value" false (Instr.produces_value i);
  check (Alcotest.option Alcotest.int) "mem id" (Some 0) (Instr.mem_id i)

(* --- builder / CFG ----------------------------------------------------- *)

(* for i < n: if a[i] > 0 then a[i] <- 0 — the paper's Figure 1(b) shape *)
let fig1b () =
  let b = Builder.create ~name:"fig1b" ~params:[ "n" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let v = Builder.load b "a" i in
        let c = Builder.cmp b Instr.Sgt v (Builder.int 0) in
        Builder.if_ b c
          ~then_:(fun b -> Builder.store b "a" ~idx:i ~value:(Builder.int 0))
          ();
        [])
  in
  Builder.seal b

let test_builder_canonical_loop () =
  let f = fig1b () in
  Verify.check_exn f;
  let loops = Loops.compute f in
  check Alcotest.int "one loop" 1 (List.length loops.Loops.loops);
  (match Loops.check_canonical loops with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "reducible" true (Loops.is_reducible f)

let test_builder_carried_values () =
  (* sum = Σ b[i] via a carried accumulator, checked through the interp *)
  let b = Builder.create ~name:"sum" ~params:[ "n" ] in
  let final =
    Builder.counted_loop b ~n:(Builder.param b "n")
      ~carried:[ (Types.I32, Builder.int 0) ]
      (fun b ~i ~carried ->
        match carried with
        | [ acc ] -> [ Builder.add b acc (Builder.load b "b" i) ]
        | _ -> assert false)
  in
  (match final with
  | [ acc ] -> Builder.ret b (Some acc)
  | _ -> assert false);
  let f = Builder.seal b in
  Verify.check_exn f;
  let mem = Interp.Memory.create [ ("b", [| 3; 5; 7; 11 |]) ] in
  let r = Interp.run f ~args:[ ("n", Types.Vint 4) ] ~mem in
  (match r.Interp.ret with
  | Some (Types.Vint 26) -> ()
  | Some v -> Alcotest.failf "wrong sum: %a" Types.pp_value v
  | None -> Alcotest.fail "no return value")

let test_split_edge_preserves_ssa () =
  let f = fig1b () in
  (* split the loop backedge-adjacent edge: latch -> header has φs *)
  let loops = Loops.compute f in
  let l = List.hd loops.Loops.loops in
  let nb = Func.split_edge f ~src:l.Loops.latch ~dst:l.Loops.header in
  check Alcotest.bool "new block exists" true
    (Func.mem_block f nb.Block.bid);
  Verify.check_exn f

let test_switch_successors () =
  let b = Block.create ~term:(Block.Switch (Types.Var 0, [ 1; 2; 1; 3 ])) 0 in
  check (Alcotest.list Alcotest.int) "dedup successors" [ 1; 2; 3 ]
    (Block.successors b);
  check (Alcotest.list Alcotest.int) "raw edges" [ 1; 2; 1; 3 ]
    (Block.successor_edges b)

(* --- verifier ----------------------------------------------------------- *)

let test_verify_catches_undefined_use () =
  let b = Builder.create ~name:"bad" ~params:[] in
  let (_ : Types.operand) =
    Builder.add b (Types.Var 999) (Builder.int 1)
  in
  Builder.ret b None;
  match Verify.check (Builder.seal b) with
  | Ok () -> Alcotest.fail "verifier accepted an undefined use"
  | Error _ -> ()

let test_verify_catches_missing_block () =
  let b = Builder.create ~name:"bad2" ~params:[] in
  Builder.br b 12345;
  match Verify.check (Builder.seal b) with
  | Ok () -> Alcotest.fail "verifier accepted a dangling branch"
  | Error _ -> ()

let test_verify_catches_phi_mismatch () =
  let f =
    Parser.parse
      {|
      func bad3(n: %0) {
      bb0:
        br bb1
      bb1:
        %1 = phi i32 [bb0: 0], [bb9: 1]
        ret
      }
      |}
  in
  match Verify.check f with
  | Ok () -> Alcotest.fail "verifier accepted inconsistent phi predecessors"
  | Error _ -> ()

let test_verify_catches_duplicate_def () =
  let f =
    Parser.parse
      {|
      func bad4(n: %0) {
      bb0:
        %1 = add %0, 1
        %1 = add %0, 2
        ret
      }
      |}
  in
  match Verify.check f with
  | Ok () -> Alcotest.fail "verifier accepted a duplicate definition"
  | Error _ -> ()

let test_verify_use_before_def_across_blocks () =
  let f =
    Parser.parse
      {|
      func bad5(n: %0) {
      bb0:
        br %1, bb1, bb2
      bb1:
        %1 = cmp slt %0, 3
        br bb2
      bb2:
        ret
      }
      |}
  in
  match Verify.check f with
  | Ok () -> Alcotest.fail "verifier accepted a non-dominating use"
  | Error _ -> ()

(* The error [where] must point at the offending site — the checker and
   the pass boundary reports both render it, so a drifting location makes
   every downstream diagnostic lie. *)

let contains s frag =
  let n = String.length s and m = String.length frag in
  let rec at i = i + m <= n && (String.sub s i m = frag || at (i + 1)) in
  at 0

let assert_where name expected_where what_frag = function
  | Ok () -> Alcotest.failf "%s: verifier accepted malformed IR" name
  | Error errs ->
    if
      not
        (List.exists
           (fun (e : Verify.error) ->
             e.Verify.where = expected_where
             && contains e.Verify.what what_frag)
           errs)
    then
      Alcotest.failf "%s: no error at %S mentioning %S; got: %s" name
        expected_where what_frag
        (String.concat "; "
           (List.map (Fmt.str "%a" Verify.pp_error) errs))

let test_verify_where_phi_mismatch () =
  let f =
    Parser.parse
      {|
      func w1(n: %0) {
      bb0:
        br bb1
      bb1:
        %1 = phi i32 [bb0: 0], [bb9: 1]
        ret
      }
      |}
  in
  assert_where "phi mismatch" "bb1" "do not match predecessors"
    (Verify.check f)

let test_verify_where_non_dominating_use () =
  let f =
    Parser.parse
      {|
      func w2(n: %0) {
      bb0:
        %1 = cmp slt %0, 3
        br %1, bb1, bb2
      bb1:
        %2 = add %0, 1
        br bb2
      bb2:
        %3 = add %2, 1
        ret
      }
      |}
  in
  assert_where "non-dominating use" "bb2 %3" "does not dominate"
    (Verify.check f)

let test_verify_where_dangling_target () =
  let b = Builder.create ~name:"w3" ~params:[] in
  Builder.br b 12345;
  let f = Builder.seal b in
  assert_where "dangling target"
    (Fmt.str "bb%d" f.Func.entry)
    "missing block 12345" (Verify.check f)

(* --- interpreter --------------------------------------------------------- *)

let test_interp_fig1b () =
  let f = fig1b () in
  let mem = Interp.Memory.create [ ("a", [| 4; -2; 0; 9 |]) ] in
  let r = Interp.run f ~args:[ ("n", Types.Vint 4) ] ~mem in
  check (Alcotest.array Alcotest.int) "thresholded" [| 0; -2; 0; 0 |]
    (Interp.Memory.array mem "a");
  check Alcotest.int "two stores traced" 2 (List.length (Interp.stores r));
  check Alcotest.int "four loads traced" 4 (List.length (Interp.loads r))

let test_interp_fuel () =
  let b = Builder.create ~name:"inf" ~params:[] in
  let loop = Builder.new_block b in
  Builder.br b loop;
  Builder.set_cur b loop;
  Builder.br b loop;
  let f = Builder.seal b in
  match Interp.run ~fuel:100 f ~args:[] ~mem:(Interp.Memory.create []) with
  | exception Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected Out_of_fuel"

let test_interp_rejects_channel_ops () =
  let f =
    Parser.parse
      {|
      func chan() {
      bb0:
        poison a !mem0
        ret
      }
      |}
  in
  match Interp.run f ~args:[] ~mem:(Interp.Memory.create []) with
  | exception Interp.Channel_op_in_sequential_code _ -> ()
  | _ -> Alcotest.fail "expected rejection of channel op"

let test_memory_bounds () =
  let mem = Interp.Memory.create [ ("a", [| 1; 2 |]) ] in
  (match Interp.Memory.get mem "a" 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds error");
  match Interp.Memory.get mem "nope" 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unknown-array error"

(* --- DCE / simplify ------------------------------------------------------- *)

let test_dce_removes_dead_keeps_effects () =
  let b = Builder.create ~name:"dce" ~params:[ "n" ] in
  let n = Builder.param b "n" in
  let (_ : Types.operand) = Builder.add b n (Builder.int 1) in
  (* dead *)
  let (_ : Types.operand) = Builder.load b "a" n in
  (* dead load: removable *)
  Builder.store b "a" ~idx:(Builder.int 0) ~value:n;
  (* kept *)
  Builder.ret b None;
  let f = Builder.seal b in
  let removed = Dce.run_to_fixpoint f in
  check Alcotest.int "two dead instrs removed" 2 removed;
  check Alcotest.int "store survives" 1 (Func.fold_instrs f (fun n _ -> n + 1) 0)

let test_simplify_folds_constant_branch () =
  let f =
    Parser.parse
      {|
      func cb(n: %0) {
      bb0:
        br true, bb1, bb2
      bb1:
        store a[0], 1 !mem0
        ret
      bb2:
        store a[0], 2 !mem1
        ret
      }
      |}
  in
  Simplify.run f;
  Verify.check_exn f;
  check Alcotest.bool "dead arm removed" false (Func.mem_block f 2);
  check Alcotest.int "blocks merged" 1 (List.length f.Func.layout)

let test_simplify_preserves_loop_latch () =
  let f = fig1b () in
  Dce.run_to_fixpoint f |> ignore;
  Simplify.run f;
  Verify.check_exn f;
  let loops = Loops.compute f in
  match Loops.check_canonical loops with
  | Ok () -> ()
  | Error e -> Alcotest.failf "loop form broken: %s" e

let test_simplify_bypasses_empty_diamond () =
  let f =
    Parser.parse
      {|
      func dia(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        br bb3
      bb2:
        br bb3
      bb3:
        ret
      }
      |}
  in
  Dce.run_to_fixpoint f |> ignore;
  Simplify.run f;
  Dce.run_to_fixpoint f |> ignore;
  Simplify.run f;
  Verify.check_exn f;
  check Alcotest.int "diamond collapsed to one block" 1
    (List.length f.Func.layout)

(* --- property tests -------------------------------------------------------- *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"smin/smax are min/max" ~count:500
      (pair small_signed_int small_signed_int)
      (fun (a, b) ->
        Instr.eval_binop Instr.Smin a b = min a b
        && Instr.eval_binop Instr.Smax a b = max a b);
    Test.make ~name:"cmp trichotomy" ~count:500
      (pair small_signed_int small_signed_int)
      (fun (a, b) ->
        let lt = Instr.eval_cmp Instr.Slt a b in
        let eq = Instr.eval_cmp Instr.Eq a b in
        let gt = Instr.eval_cmp Instr.Sgt a b in
        List.length (List.filter (fun x -> x) [ lt; eq; gt ]) = 1);
    Test.make ~name:"map_operands identity preserves operands" ~count:200
      (pair small_nat small_nat)
      (fun (a, b) ->
        let i =
          { Instr.id = 0;
            kind = Instr.Binop (Instr.Add, Types.Var a, Types.Var b) }
        in
        Instr.operands (Instr.map_operands (fun o -> o) i) = Instr.operands i);
    Test.make ~name:"interp is deterministic on random kernels" ~count:40
      small_nat
      (fun seed ->
        let g = Dae_workloads.Gen.generate ~seed () in
        let run () =
          let mem = g.Dae_workloads.Gen.mem () in
          ignore
            (Interp.run g.Dae_workloads.Gen.func
               ~args:g.Dae_workloads.Gen.args ~mem);
          mem
        in
        Interp.Memory.equal (run ()) (run ()));
    Test.make ~name:"verifier accepts every generated kernel" ~count:60
      small_nat
      (fun seed ->
        let g = Dae_workloads.Gen.generate ~seed () in
        match Verify.check g.Dae_workloads.Gen.func with
        | Ok () -> true
        | Error _ -> false);
    Test.make ~name:"DCE never removes stores" ~count:40 small_nat
      (fun seed ->
        let g = Dae_workloads.Gen.generate ~seed () in
        let f = g.Dae_workloads.Gen.func in
        let count_stores f =
          Func.fold_instrs f
            (fun n (i : Instr.t) ->
              match i.Instr.kind with Instr.Store _ -> n + 1 | _ -> n)
            0
        in
        let before = count_stores f in
        ignore (Dce.run_to_fixpoint f);
        count_stores f = before);
  ]

let () =
  Alcotest.run "ir"
    [
      ( "instr",
        [
          tc "eval_binop" `Quick test_eval_binop;
          tc "eval_cmp" `Quick test_eval_cmp;
          tc "operands and map" `Quick test_operands_and_map;
        ] );
      ( "builder",
        [
          tc "canonical loop" `Quick test_builder_canonical_loop;
          tc "carried values" `Quick test_builder_carried_values;
          tc "split edge keeps SSA" `Quick test_split_edge_preserves_ssa;
          tc "switch successors" `Quick test_switch_successors;
        ] );
      ( "verify",
        [
          tc "undefined use" `Quick test_verify_catches_undefined_use;
          tc "missing block" `Quick test_verify_catches_missing_block;
          tc "phi mismatch" `Quick test_verify_catches_phi_mismatch;
          tc "duplicate def" `Quick test_verify_catches_duplicate_def;
          tc "non-dominating use" `Quick test_verify_use_before_def_across_blocks;
          tc "phi mismatch location" `Quick test_verify_where_phi_mismatch;
          tc "non-dominating use location" `Quick
            test_verify_where_non_dominating_use;
          tc "dangling target location" `Quick test_verify_where_dangling_target;
        ] );
      ( "interp",
        [
          tc "fig1b semantics" `Quick test_interp_fig1b;
          tc "fuel" `Quick test_interp_fuel;
          tc "rejects channel ops" `Quick test_interp_rejects_channel_ops;
          tc "memory bounds" `Quick test_memory_bounds;
        ] );
      ( "opt",
        [
          tc "dce" `Quick test_dce_removes_dead_keeps_effects;
          tc "fold constant branch" `Quick test_simplify_folds_constant_branch;
          tc "loop latch preserved" `Quick test_simplify_preserves_loop_latch;
          tc "empty diamond" `Quick test_simplify_bypasses_empty_diamond;
        ] );
      ("props", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
