(* Engine-equivalence fixture: the exact cycle counts of the seed
   (cycle-polling) timing engine, recorded before the event-driven
   rewrite. The rewrite is required to be bit-identical — same visited
   cycles, same retire order, same stats — so these are equalities, not
   tolerances. If an engine change is *meant* to shift cycle counts, it
   must re-record this table and say so in its PR.

   Also covers the Runner domain pool: a parallel map must agree with a
   serial one job-for-job, and map_keyed must dedup by key. *)

open Dae_workloads

let tc = Alcotest.test_case
let check = Alcotest.check

(* (kernel, STA, DAE, SPEC, ORACLE) — seed engine, default config *)
let paper_fixture =
  [
    ("bfs", 409172, 1022856, 204630, 204619);
    ("bc", 409188, 1022856, 342390, 306919);
    ("sssp", 767184, 2415600, 350772, 313912);
    ("hist", 4007, 8007, 1161, 1155);
    ("thr", 4006, 8002, 1011, 1009);
    ("mm", 8009, 20236, 4585, 4025);
    ("fw", 5506, 10010, 3177, 3015);
    ("sort", 5607, 6472, 1701, 1648);
    ("spmv", 649, 1284, 377, 367);
  ]

(* (depth, STA, DAE, SPEC, ORACLE) — Synthetic.workload ~n:400 *)
let depth_fixture =
  [
    (1, 1607, 3205, 411, 411);
    (2, 1608, 3578, 811, 768);
    (3, 1610, 3960, 1211, 1163);
    (4, 1611, 4346, 1612, 1543);
    (5, 2013, 4729, 2014, 1931);
    (6, 2414, 5113, 2416, 2321);
    (7, 2816, 5494, 2818, 2701);
    (8, 3217, 5890, 3220, 3095);
  ]

(* (kernel, DAE (killed, committed), SPEC (killed, committed)) — from
   Exec, so independent of the timing engine; ORACLE replays the same
   execution as SPEC and must report the same counts. misspec_rate is
   checked as killed/(killed+committed) of the pinned integers. *)
let store_fixture =
  [
    ("bfs", (0, 1004), (101280, 1004));
    ("bc", (0, 4887), (301965, 4887));
    ("sssp", (0, 5948), (147478, 5948));
    ("hist", (0, 960), (40, 960));
    ("thr", (0, 31), (969, 31));
    ("mm", (0, 364), (3636, 364));
    ("fw", (0, 76), (924, 76));
    ("sort", (0, 620), (724, 620));
    ("spmv", (0, 72), (88, 72));
  ]

let sim arch (k : Kernels.t) =
  Dae_sim.Machine.simulate arch
    (k.Kernels.build ())
    ~invocations:(k.Kernels.invocations ())
    ~mem:(k.Kernels.init_mem ())

let cycles arch k = (sim arch k).Dae_sim.Machine.cycles

let check_stores name (r : Dae_sim.Machine.result) (killed, committed) =
  let label what =
    Printf.sprintf "%s/%s %s" name (Dae_sim.Machine.arch_name r.Dae_sim.Machine.arch) what
  in
  check Alcotest.int (label "killed") killed r.Dae_sim.Machine.killed_stores;
  check Alcotest.int (label "committed") committed
    r.Dae_sim.Machine.committed_stores;
  let expect_rate =
    if killed + committed = 0 then 0.0
    else float_of_int killed /. float_of_int (killed + committed)
  in
  check (Alcotest.float 1e-12) (label "misspec_rate") expect_rate
    r.Dae_sim.Machine.misspec_rate

let check_kernel ?stores name k (sta, dae, spec, oracle) =
  check Alcotest.int (name ^ "/STA") sta (cycles Dae_sim.Machine.Sta k);
  let r_dae = sim Dae_sim.Machine.Dae k in
  let r_spec = sim Dae_sim.Machine.Spec k in
  let r_oracle = sim Dae_sim.Machine.Oracle k in
  check Alcotest.int (name ^ "/DAE") dae r_dae.Dae_sim.Machine.cycles;
  check Alcotest.int (name ^ "/SPEC") spec r_spec.Dae_sim.Machine.cycles;
  check Alcotest.int (name ^ "/ORACLE") oracle r_oracle.Dae_sim.Machine.cycles;
  match stores with
  | None -> ()
  | Some (dae_st, spec_st) ->
    check_stores name r_dae dae_st;
    check_stores name r_spec spec_st;
    (* ORACLE only filters the timing replay, not the execution *)
    check_stores name r_oracle spec_st

(* the long graph kernels get their own cases so a failure names them *)
let test_paper_kernel name () =
  let expected =
    List.find (fun (n, _, _, _, _) -> n = name) paper_fixture
    |> fun (_, a, b, c, d) -> (a, b, c, d)
  in
  let stores =
    List.find (fun (n, _, _) -> n = name) store_fixture
    |> fun (_, d, s) -> (d, s)
  in
  match Kernels.by_name (Kernels.paper_suite ()) name with
  | Some k -> check_kernel ~stores name k expected
  | None -> Alcotest.failf "kernel %s not in paper suite" name

let test_depth_sweep () =
  List.iter
    (fun (depth, sta, dae, spec, oracle) ->
      check_kernel
        (Printf.sprintf "nest%d" depth)
        (Synthetic.workload ~n:400 ~depth ())
        (sta, dae, spec, oracle))
    depth_fixture

(* --- capacity-1 stress: every FIFO at its minimal legal depth ------------------ *)

(* The channel-sizing analyzer (test_sizing) proves depth 1 safe for the
   suite; here the engine itself is held to that: at request/value/
   store-value capacity 1 every kernel still completes with the right
   memory image and never runs faster than at the default depths. No
   exact cycle pins — depth-1 counts may legitimately move with engine
   changes; the deadlock-freedom and monotonicity are the contract. *)
let stress_cfg =
  {
    Dae_sim.Config.default with
    Dae_sim.Config.request_fifo_capacity = 1;
    Dae_sim.Config.value_fifo_capacity = 1;
    Dae_sim.Config.store_value_fifo_capacity = 1;
  }

let test_capacity1_stress () =
  List.iter
    (fun (k : Kernels.t) ->
      List.iter
        (fun arch ->
          let label what =
            Printf.sprintf "%s/%s %s" k.Kernels.name
              (Dae_sim.Machine.arch_name arch)
              what
          in
          let r =
            Dae_sim.Machine.simulate ~cfg:stress_cfg arch
              (k.Kernels.build ())
              ~invocations:(k.Kernels.invocations ())
              ~mem:(k.Kernels.init_mem ())
          in
          (match k.Kernels.check r.Dae_sim.Machine.memory with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: %s" (label "reference check") msg);
          check Alcotest.bool
            (label "no faster than default depths")
            true
            (r.Dae_sim.Machine.cycles >= cycles arch k))
        [ Dae_sim.Machine.Dae; Dae_sim.Machine.Spec; Dae_sim.Machine.Oracle ])
    (Kernels.test_suite ())

(* --- Runner ------------------------------------------------------------------- *)

let test_runner_map_matches_serial () =
  let jobs = Array.init 37 (fun i -> i) in
  let f i = (i * i * 7919) mod 1231 in
  let serial = Array.map f jobs in
  List.iter
    (fun domains ->
      let par = Dae_sim.Runner.map ~domains ~f jobs in
      check
        Alcotest.(array int)
        (Printf.sprintf "map d=%d" domains)
        serial par)
    [ 1; 2; 4 ]

let test_runner_parallel_sim_matches_serial () =
  (* real simulation jobs through the pool: same cycles as direct calls *)
  let reqs =
    List.concat_map
      (fun arch -> [ (arch, 1); (arch, 2) ])
      [ Dae_sim.Machine.Sta; Dae_sim.Machine.Spec ]
  in
  let f (arch, depth) = cycles arch (Synthetic.workload ~n:64 ~depth ()) in
  let serial = List.map f reqs in
  let par = Dae_sim.Runner.map_list ~domains:4 ~f reqs in
  check Alcotest.(list int) "pool == serial" serial par

let test_runner_map_keyed_dedups () =
  let jobs = [ "a"; "b"; "a"; "c"; "b"; "a" ] in
  let calls = Atomic.make 0 in
  let out =
    Dae_sim.Runner.map_keyed ~domains:2
      ~key:(fun j -> j)
      ~f:(fun j ->
        Atomic.incr calls;
        String.uppercase_ascii j)
      jobs
  in
  check
    Alcotest.(list (pair string string))
    "distinct keys, first-appearance order"
    [ ("a", "A"); ("b", "B"); ("c", "C") ]
    out;
  check Alcotest.int "each distinct job ran once" 3 (Atomic.get calls)

let test_runner_propagates_errors () =
  let f i = if i = 5 then failwith "boom" else i in
  match Dae_sim.Runner.map ~domains:2 ~f (Array.init 8 (fun i -> i)) with
  | _ -> Alcotest.fail "expected the job's exception to propagate"
  | exception Failure m -> check Alcotest.string "first error wins" "boom" m

let () =
  Alcotest.run "timing_equiv"
    [
      ( "paper-suite",
        List.map
          (fun (name, _, _, _, _) ->
            let speed =
              (* the graph kernels run hundreds of thousands of cycles *)
              if List.mem name [ "bfs"; "bc"; "sssp" ] then `Slow else `Quick
            in
            tc name speed (test_paper_kernel name))
          paper_fixture );
      ("synthetic", [ tc "depth sweep n=400" `Quick test_depth_sweep ]);
      ( "capacity-1 stress",
        [ tc "suite completes at minimal FIFO depths" `Quick
            test_capacity1_stress ] );
      ( "runner",
        [
          tc "map matches serial" `Quick test_runner_map_matches_serial;
          tc "parallel sim == serial sim" `Quick
            test_runner_parallel_sim_matches_serial;
          tc "map_keyed dedups" `Quick test_runner_map_keyed_dedups;
          tc "errors propagate" `Quick test_runner_propagates_errors;
        ] );
    ]
