(* The micro-op lowering, held to bit-identical equivalence with the
   pre-lowering tree-walking co-simulator it replaced (Exec.Reference):
   for randomized kernels from the §6 generator, in both decoupled modes,
   the lowered fast path must produce the same final memory, the same
   per-array commit sequence, the same compact channel traces event for
   event (Trace.equal covers tags, interned array ids, mem ids, iteration
   and depth indices, payloads, and the control-synchronization flag), and
   the same store kill/commit counters — so every downstream consumer
   (timing replay, stall attribution, trace export, sizing) is untouched
   by the lowering. *)

open Dae_workloads
module G = Gen
module P = Dae_core.Pipeline
module E = Dae_sim.Exec
module Tr = Dae_sim.Trace

let tc = Alcotest.test_case
let check = Alcotest.check
let modes = [ ("dae", P.Dae); ("spec", P.Spec) ]

let same_run label (a : E.result) (b : E.result) =
  check Alcotest.bool (label ^ ": final memory") true
    (Dae_ir.Interp.Memory.equal a.E.memory b.E.memory);
  check Alcotest.bool (label ^ ": AGU trace") true
    (Tr.equal a.E.agu_trace b.E.agu_trace);
  check Alcotest.bool (label ^ ": CU trace") true
    (Tr.equal a.E.cu_trace b.E.cu_trace);
  check
    (Alcotest.list
       (Alcotest.triple Alcotest.string Alcotest.int Alcotest.int))
    (label ^ ": commit order")
    (List.map (fun c -> (c.E.c_arr, c.E.c_addr, c.E.c_value)) a.E.commits)
    (List.map (fun c -> (c.E.c_arr, c.E.c_addr, c.E.c_value)) b.E.commits);
  check Alcotest.int (label ^ ": killed stores") a.E.killed_stores
    b.E.killed_stores;
  check Alcotest.int (label ^ ": committed stores") a.E.committed_stores
    b.E.committed_stores;
  check Alcotest.int (label ^ ": loads served") a.E.loads_served
    b.E.loads_served

(* --- the paper suite, both modes, full invocation sequences --------------- *)

let test_kernel name () =
  let k =
    match Kernels.by_name (Kernels.test_suite ()) name with
    | Some k -> k
    | None -> Alcotest.failf "kernel %s not in test suite" name
  in
  List.iter
    (fun (mname, mode) ->
      let p = P.compile ~mode (k.Kernels.build ()) in
      let lowered = Dae_sim.Lower.compile p in
      let mem_fast = k.Kernels.init_mem () in
      let mem_ref = k.Kernels.init_mem () in
      List.iter
        (fun args ->
          let fast = E.run_lowered lowered ~args ~mem:mem_fast in
          let reference = E.Reference.run p ~args ~mem:mem_ref in
          same_run (Printf.sprintf "%s/%s" name mname) fast reference)
        (k.Kernels.invocations ()))
    modes

(* --- qcheck: the same statement over the randomized generator ------------- *)

let gen_lowering_equiv (g : G.t) =
  List.for_all
    (fun (_, mode) ->
      match P.compile ~mode (Dae_ir.Func.clone g.G.func) with
      | exception P.Compile_error _ -> true
      | p -> (
        let run f =
          let mem = g.G.mem () in
          let r = f ~args:g.G.args ~mem in
          (r, mem)
        in
        match run (E.run_lowered (Dae_sim.Lower.compile p)) with
        | exception (E.Deadlock _ | E.Stream_mismatch _ | E.Desync _) ->
          (* then the reference path must refuse it the same way *)
          (match run (E.Reference.run p) with
          | (_ : E.result * Dae_ir.Interp.Memory.t) -> false
          | exception (E.Deadlock _ | E.Stream_mismatch _ | E.Desync _) ->
            true)
        | fast, fast_mem -> (
          match run (E.Reference.run p) with
          | exception (E.Deadlock _ | E.Stream_mismatch _ | E.Desync _) ->
            false
          | reference, ref_mem ->
            Dae_ir.Interp.Memory.equal fast_mem ref_mem
            && Tr.equal fast.E.agu_trace reference.E.agu_trace
            && Tr.equal fast.E.cu_trace reference.E.cu_trace
            && List.map
                 (fun c -> (c.E.c_arr, c.E.c_addr, c.E.c_value))
                 fast.E.commits
               = List.map
                   (fun c -> (c.E.c_arr, c.E.c_addr, c.E.c_value))
                   reference.E.commits
            && fast.E.killed_stores = reference.E.killed_stores
            && fast.E.committed_stores = reference.E.committed_stores
            && fast.E.loads_served = reference.E.loads_served)))
    modes

let qcheck_props =
  let open QCheck in
  let gen_seed = small_nat in
  [
    Test.make ~name:"lowered fast path == tree-walking reference" ~count:120
      gen_seed
      (fun seed -> gen_lowering_equiv (G.generate ~seed ()));
    Test.make ~name:"same, with stores on several arrays and inner loops"
      ~count:40 gen_seed
      (fun seed ->
        gen_lowering_equiv
          (G.generate ~seed ~stored:2 ~max_stmts:14 ~inner_loops:true ()));
  ]

let () =
  Alcotest.run "lower"
    [
      ( "test-suite kernels",
        List.map
          (fun (k : Kernels.t) ->
            tc k.Kernels.name `Quick (test_kernel k.Kernels.name))
          (Kernels.test_suite ()) );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
