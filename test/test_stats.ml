(* The stall-attribution observability layer, held to its invariant: for
   every unit the per-cause counters partition its total simulated cycles
   exactly — no cycle double-counted, none dropped. Checked as a qcheck
   property over randomized structured kernels (the §6 generator) for all
   four architectures, and exhaustively over every kernel×arch pair of
   the paper suite.

   Also pins the timeline exporter: `daec trace` output for a small
   kernel is byte-stable (fixed digest, repeated runs, and independent of
   the runner's domain count), and Stats merging across the domain pool
   is associative — aggregating per-job counters at --jobs 1 and --jobs 4
   gives identical totals. *)

open Dae_workloads
module G = Gen
module M = Dae_sim.Machine
module S = Dae_sim.Stats

let tc = Alcotest.test_case
let check = Alcotest.check
let archs = [ M.Sta; M.Dae; M.Spec; M.Oracle ]

let sim ?collect arch (k : Kernels.t) =
  M.simulate ?collect arch
    (k.Kernels.build ())
    ~invocations:(k.Kernels.invocations ())
    ~mem:(k.Kernels.init_mem ())

(* the invariant: every unit's causes sum to the run's total cycles *)
let partition_exact (r : M.result) =
  r.M.stats <> []
  && List.for_all (fun (_, c) -> S.total c = r.M.cycles) r.M.stats

(* --- qcheck: partition on randomized structured CFGs ------------------------- *)

let gen_partition ?cfg (g : G.t) =
  List.for_all
    (fun arch ->
      let r =
        M.simulate ?cfg arch g.G.func ~invocations:[ g.G.args ]
          ~mem:(g.G.mem ())
      in
      partition_exact r)
    archs

(* minimal legal FIFO depths: the partition must survive the far heavier
   fifo_full/fifo_empty traffic, with no spurious deadlock *)
let stress_cfg =
  {
    Dae_sim.Config.default with
    Dae_sim.Config.request_fifo_capacity = 1;
    Dae_sim.Config.value_fifo_capacity = 1;
    Dae_sim.Config.store_value_fifo_capacity = 1;
  }

(* the memory hierarchy adds the Mshr_full/Dram_bank causes; the
   partition invariant must hold with them in play, both at the baseline
   cache point and at a starved one (1 MSHR, 1 DRAM bank) that actually
   exercises the new counters *)
let hier_cfg =
  {
    Dae_sim.Config.default with
    Dae_sim.Config.hierarchy =
      Dae_sim.Config.Hierarchy Dae_sim.Config.default_geom;
  }

let hier_tight_cfg =
  {
    Dae_sim.Config.default with
    Dae_sim.Config.hierarchy =
      Dae_sim.Config.Hierarchy
        {
          Dae_sim.Config.banks = 1;
          sets = 2;
          ways = 1;
          line_words = 2;
          hit_latency = 1;
          mshrs = 1;
          dram =
            {
              Dae_sim.Config.dram_banks = 1;
              row_words = 4;
              t_row_hit = 6;
              t_row_miss = 15;
              t_bus = 2;
            };
        };
  }

let qcheck_props =
  let open QCheck in
  let gen_seed = small_nat in
  [
    Test.make ~name:"stall counters partition cycles (default gen, 4 archs)"
      ~count:80 gen_seed
      (fun seed -> gen_partition (G.generate ~seed ()));
    Test.make ~name:"same, three stored arrays / deep bodies" ~count:30
      gen_seed
      (fun seed ->
        gen_partition (G.generate ~seed ~stored:3 ~index:2 ~max_stmts:20 ()));
    Test.make ~name:"same, with nested inner loops (partial decoupling)"
      ~count:30 gen_seed
      (fun seed ->
        gen_partition (G.generate ~seed ~inner_loops:true ~max_stmts:16 ()));
    Test.make ~name:"same, at capacity-1 FIFOs (no spurious deadlock)"
      ~count:40 gen_seed
      (fun seed -> gen_partition ~cfg:stress_cfg (G.generate ~seed ()));
    Test.make ~name:"same, under the cache+DRAM hierarchy" ~count:40 gen_seed
      (fun seed -> gen_partition ~cfg:hier_cfg (G.generate ~seed ()));
    Test.make ~name:"same, starved hierarchy (1 MSHR, 1 DRAM bank)" ~count:30
      gen_seed
      (fun seed -> gen_partition ~cfg:hier_tight_cfg (G.generate ~seed ()));
  ]

(* --- suite-wide: every kernel×arch pair of the paper suite ------------------- *)

let test_suite_partition name () =
  match Kernels.by_name (Kernels.paper_suite ()) name with
  | None -> Alcotest.failf "kernel %s not in paper suite" name
  | Some k ->
    List.iter
      (fun arch ->
        let r = sim arch k in
        let label u = Printf.sprintf "%s/%s %s" name (M.arch_name arch) u in
        List.iter
          (fun (u, c) ->
            check Alcotest.int (label u ^ " partitions") r.M.cycles
              (S.total c))
          r.M.stats;
        match arch with
        | M.Sta ->
          check Alcotest.int "STA is one always-busy unit" r.M.cycles
            (S.get (List.assoc "STA" r.M.stats) S.Busy)
        | _ ->
          check Alcotest.bool (label "has AGU+CU counters") true
            (List.mem_assoc "AGU" r.M.stats && List.mem_assoc "CU" r.M.stats))
      archs

(* under the starved hierarchy, sum the causes explicitly —
   Mshr_full/Dram_bank included — rather than through S.total, so a
   future cause added to the type but dropped from the partition cannot
   hide; small test-suite instances keep this fast *)
let test_suite_partition_hier name () =
  match Kernels.by_name (Kernels.test_suite ()) name with
  | None -> Alcotest.failf "kernel %s not in test suite" name
  | Some k ->
    List.iter
      (fun arch ->
        let r =
          M.simulate ~cfg:hier_tight_cfg arch
            (k.Kernels.build ())
            ~invocations:(k.Kernels.invocations ())
            ~mem:(k.Kernels.init_mem ())
        in
        List.iter
          (fun (u, c) ->
            let explicit =
              List.fold_left (fun a cause -> a + S.get c cause) 0 S.all_causes
            in
            check Alcotest.int
              (Printf.sprintf "%s/%s %s: all causes sum to cycles" name
                 (M.arch_name arch) u)
              r.M.cycles explicit)
          r.M.stats)
      [ M.Dae; M.Spec; M.Oracle ]

(* --- golden trace: byte-stable exporter -------------------------------------- *)

(* `daec trace --kernel thr --arch spec` output, pinned. Any engine or
   exporter change that moves this digest must re-record it and say so. *)
let thr_trace_md5 = "c4411cc617b8ce9fb7f2d91f89303054"
let thr_trace_bytes = 522356

let thr_trace () =
  let k =
    match Kernels.by_name (Kernels.paper_suite ()) "thr" with
    | Some k -> k
    | None -> Alcotest.fail "thr not in paper suite"
  in
  Dae_sim.Trace_export.to_string ~kernel:"thr" (sim ~collect:true M.Spec k)

let test_trace_golden () =
  let s = thr_trace () in
  check Alcotest.int "trace size" thr_trace_bytes (String.length s);
  check Alcotest.string "trace md5" thr_trace_md5
    (Digest.to_hex (Digest.string s))

let test_trace_stable_across_runs_and_jobs () =
  let direct = thr_trace () in
  check Alcotest.string "second run is byte-identical" (Digest.string direct)
    (Digest.string (thr_trace ()));
  (* same export from inside the domain pool, at two pool widths *)
  List.iter
    (fun domains ->
      Dae_sim.Runner.map_list ~domains
        ~f:(fun () -> thr_trace ())
        [ (); () ]
      |> List.iter (fun s ->
             check Alcotest.string
               (Printf.sprintf "domains=%d matches direct" domains)
               (Digest.string direct) (Digest.string s)))
    [ 1; 4 ]

(* --- runner: counter merging is associative / pool-width independent --------- *)

let merge_jobs =
  List.concat_map
    (fun name -> List.map (fun arch -> (name, arch)) [ M.Dae; M.Spec; M.Oracle ])
    [ "thr"; "hist"; "spmv" ]

let stats_of (name, arch) =
  match Kernels.by_name (Kernels.paper_suite ()) name with
  | Some k -> (sim arch k).M.stats
  | None -> Alcotest.failf "kernel %s not in paper suite" name

let aggregate outs = List.fold_left S.merge_keyed [] outs

let test_runner_merge_associative () =
  let serial = Dae_sim.Runner.map_list ~domains:1 ~f:stats_of merge_jobs in
  let par = Dae_sim.Runner.map_list ~domains:4 ~f:stats_of merge_jobs in
  (* job-for-job: the pool changes nothing *)
  List.iter2
    (fun a b -> check Alcotest.bool "per-job stats equal" true (S.equal_keyed a b))
    serial par;
  (* aggregated: any fold order gives the same totals *)
  let agg = aggregate serial in
  check Alcotest.bool "--jobs 1 == --jobs 4 aggregate" true
    (S.equal_keyed agg (aggregate par));
  check Alcotest.bool "fold order is immaterial" true
    (S.equal_keyed agg (aggregate (List.rev serial)));
  (* and ((a+b)+c) = (a+(b+c)) on the raw merge *)
  (match serial with
  | a :: b :: c :: _ ->
    check Alcotest.bool "merge_keyed associates" true
      (S.equal_keyed
         (S.merge_keyed (S.merge_keyed a b) c)
         (S.merge_keyed a (S.merge_keyed b c)))
  | _ -> Alcotest.fail "expected at least three jobs")

let () =
  Alcotest.run "stats"
    [
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "paper-suite partition",
        List.map
          (fun (k : Kernels.t) ->
            let name = k.Kernels.name in
            let speed =
              if List.mem name [ "bfs"; "bc"; "sssp" ] then `Slow else `Quick
            in
            tc name speed (test_suite_partition name))
          (Kernels.paper_suite ()) );
      ( "hierarchy partition (explicit cause sum)",
        List.map
          (fun (k : Kernels.t) ->
            let name = k.Kernels.name in
            tc name `Quick (test_suite_partition_hier name))
          (Kernels.test_suite ()) );
      ( "trace golden",
        [
          tc "thr SPEC trace digest" `Quick test_trace_golden;
          tc "byte-stable across runs and pool widths" `Quick
            test_trace_stable_across_runs_and_jobs;
        ] );
      ( "runner merge",
        [ tc "associative, pool-width independent" `Quick
            test_runner_merge_associative ] );
    ]
