(* Speculative-leakage analyzer: static taint verdicts on the
   killed-store gadget and its non-speculative twin, dynamic
   interference-witness confirmation through the re-timing engine
   (scratchpad and cache hierarchy points), and the soundness property
   over randomized generator CFGs — a static "clean" verdict must imply
   no interference witness exists, i.e. every dynamic divergence the
   search finds is statically taint-flagged. *)

open Dae_workloads
module M = Dae_sim.Machine
module R = Dae_sim.Retime
module Cfg = Dae_sim.Config
module E = Dae_sim.Exec
module P = Dae_core.Pipeline
module Taint = Dae_analysis.Taint
module Leak = Dae_analysis.Leak

let tc = Alcotest.test_case
let check = Alcotest.check

(* a deliberately small, contention-prone hierarchy point: one
   direct-mapped bank with 2 MSHRs over the default DRAM *)
let cache_small =
  {
    Cfg.default with
    Cfg.hierarchy =
      Cfg.Hierarchy
        { Cfg.default_geom with Cfg.banks = 1; sets = 8; ways = 1; mshrs = 2 };
  }

let points = [ ("scratchpad", Cfg.default); ("cache", cache_small) ]

let taint_of mode f = Taint.analyze (P.compile ~mode ~check:true f)

(* --- the killed-store gadget and its twin (taint × poison kills) ---------- *)

let gadget_flagged () =
  let t = taint_of P.Spec (Fixtures.leak_gadget ()) in
  check Alcotest.bool "hoisted load sources present" true
    (t.Taint.sources <> []);
  check Alcotest.bool "killed store's secret-dependent address flagged" true
    (List.exists
       (fun (s : Taint.site) ->
         s.Taint.s_kind = Taint.Store_addr && s.Taint.s_speculative)
       t.Taint.sites)

let twin_clean () =
  let t = taint_of P.Spec (Fixtures.leak_gadget_twin ()) in
  check Alcotest.bool "twin has no speculative sources" true
    (t.Taint.sources = []);
  check Alcotest.bool "twin is clean" true (Taint.clean t)

let gadget_dae_clean () =
  let t = taint_of P.Dae (Fixtures.leak_gadget ()) in
  check Alcotest.bool "dae mode hoists nothing" true (t.Taint.sources = []);
  check Alcotest.bool "dae mode is clean" true (Taint.clean t)

let gadget_witness () =
  let r =
    Leak.search ~points M.Spec (Fixtures.leak_gadget ())
      ~invocations:[ Fixtures.leak_gadget_args ]
      ~mem:(Fixtures.leak_gadget_mem ())
  in
  check Alcotest.bool "architecturally dead cells exist" true
    (r.Leak.l_candidates > 0);
  check Alcotest.bool "interference witness found" true (Leak.found r);
  (* the witness the search found is statically taint-flagged *)
  let t = taint_of P.Spec (Fixtures.leak_gadget ()) in
  check Alcotest.bool "witness implies taint sites" true
    (not (Taint.clean t))

let twin_no_witness () =
  let r =
    Leak.search ~points M.Spec (Fixtures.leak_gadget_twin ())
      ~invocations:[ Fixtures.leak_gadget_args ]
      ~mem:(Fixtures.leak_gadget_mem ())
  in
  check Alcotest.int "twin reads only architectural cells" 0
    r.Leak.l_candidates;
  check Alcotest.bool "twin yields no witness" true (not (Leak.found r))

let gadget_dae_no_witness () =
  let r =
    Leak.search ~points M.Dae (Fixtures.leak_gadget ())
      ~invocations:[ Fixtures.leak_gadget_args ]
      ~mem:(Fixtures.leak_gadget_mem ())
  in
  check Alcotest.int "dae reads only architectural cells" 0
    r.Leak.l_candidates;
  check Alcotest.bool "dae yields no witness" true (not (Leak.found r))

(* --- kernel suite ---------------------------------------------------------- *)

let suite_dae_clean () =
  List.iter
    (fun (k : Kernels.t) ->
      let t = taint_of P.Dae (k.Kernels.build ()) in
      check Alcotest.bool
        (Fmt.str "%s dae-mode clean" k.Kernels.name)
        true (Taint.clean t))
    (Kernels.test_suite ())

let spmv_speculative_load_addr () =
  let k =
    match Kernels.by_name (Kernels.test_suite ()) "spmv" with
    | Some k -> k
    | None -> Alcotest.fail "spmv not in test suite"
  in
  let t = taint_of P.Spec (k.Kernels.build ()) in
  check Alcotest.bool
    "spmv: speculative load address depends on a speculative load" true
    (List.exists
       (fun (s : Taint.site) ->
         s.Taint.s_kind = Taint.Load_addr && s.Taint.s_speculative)
       t.Taint.sites)

let spmv_witness_under_cache () =
  let k =
    match Kernels.by_name (Kernels.test_suite ()) "spmv" with
    | Some k -> k
    | None -> Alcotest.fail "spmv not in test suite"
  in
  let r =
    Leak.search ~points M.Spec (k.Kernels.build ())
      ~invocations:(k.Kernels.invocations ())
      ~mem:(k.Kernels.init_mem ())
  in
  check Alcotest.bool "spmv: witness found" true (Leak.found r);
  check Alcotest.bool "spmv: some divergence is a timing divergence" true
    (List.exists (fun w -> w.Leak.w_divs <> []) r.Leak.l_witnesses)

(* --- qcheck soundness over randomized CFGs -------------------------------- *)

(* Every dynamic divergence must be statically taint-flagged; a clean
   verdict forbids witnesses. Dae additionally performs no speculative
   reads at all, so its candidate set is empty by construction. *)
let gen_sound (g : Gen.t) =
  List.for_all
    (fun (mode, arch) ->
      match P.compile ~mode (Dae_ir.Func.clone g.Gen.func) with
      | exception P.Compile_error _ -> true
      | p -> (
        let t = Taint.analyze p in
        match
          Leak.search ~budget:3 ~masks:[ 1 ] ~points arch
            (Dae_ir.Func.clone g.Gen.func)
            ~invocations:[ g.Gen.args ] ~mem:(g.Gen.mem ())
        with
        | exception
            ( M.Check_failed _ | R.Check_failed _ | E.Deadlock _
            | E.Stream_mismatch _ | E.Desync _ ) ->
          true (* the program itself is rejected either way *)
        | r ->
          let sound = (not (Leak.found r)) || not (Taint.clean t) in
          let dae_empty =
            arch <> M.Dae || (r.Leak.l_candidates = 0 && not (Leak.found r))
          in
          sound && dae_empty))
    [ (P.Dae, M.Dae); (P.Spec, M.Spec) ]

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"clean verdict forbids witnesses, randomized CFGs"
      ~count:15 small_nat
      (fun seed -> gen_sound (Fixtures.gen_cfg ~seed));
    Test.make ~name:"same, multi-array stores and inner loops" ~count:8
      small_nat
      (fun seed -> gen_sound (Fixtures.gen_cfg_multi ~seed ()));
  ]

let () =
  Alcotest.run "leak"
    [
      ( "killed-store gadget",
        [
          tc "secret-dependent killed-store address flagged" `Quick
            gadget_flagged;
          tc "non-speculative twin is clean" `Quick twin_clean;
          tc "dae mode is clean" `Quick gadget_dae_clean;
          tc "gadget yields an interference witness" `Quick gadget_witness;
          tc "twin yields no witness" `Quick twin_no_witness;
          tc "dae arch yields no witness" `Quick gadget_dae_no_witness;
        ] );
      ( "kernel suite",
        [
          tc "every kernel is clean in dae mode" `Quick suite_dae_clean;
          tc "spmv speculative load-address site" `Quick
            spmv_speculative_load_addr;
          tc "spmv witness under the cache hierarchy" `Quick
            spmv_witness_under_cache;
        ] );
      ("soundness", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
