(* Every checked compile in this suite is also protocol-checked. *)
let () = Dae_analysis.Checker.install ()

(* Architecture simulator: FIFOs, functional co-simulation, LSQ behaviour,
   the timing engine's serialization mechanics, the STA model and the area
   model. *)

open Dae_ir
open Dae_sim

let tc = Alcotest.test_case
let check = Alcotest.check

(* --- FIFO ------------------------------------------------------------------- *)

let test_fifo_latency_and_capacity () =
  let f = Timing.Fifo.create ~capacity:2 ~latency:3 in
  check Alcotest.bool "space" true (Timing.Fifo.has_space f);
  Timing.Fifo.push f ~now:0 'a';
  Timing.Fifo.push f ~now:0 'b';
  check Alcotest.bool "full" false (Timing.Fifo.has_space f);
  (match Timing.Fifo.push f ~now:1 'c' with
  | exception Timing.Timing_error _ -> ()
  | () -> Alcotest.fail "push into full FIFO succeeded");
  check (Alcotest.option Alcotest.char) "not arrived at t=2" None
    (Timing.Fifo.peek f ~now:2);
  check (Alcotest.option Alcotest.char) "arrived at t=3" (Some 'a')
    (Timing.Fifo.peek f ~now:3);
  check Alcotest.char "pop order" 'a' (Timing.Fifo.pop f);
  check Alcotest.char "pop order 2" 'b' (Timing.Fifo.pop f);
  check Alcotest.bool "empty" true (Timing.Fifo.is_empty f)

(* --- functional co-simulation -------------------------------------------------- *)

let fig1_pipeline mode =
  Dae_core.Pipeline.compile ~check:true ~mode (Fixtures.fig1 ())

let test_exec_misspec_rate () =
  (* 3 of 8 values positive → 5 of 8 stores poisoned *)
  let p = fig1_pipeline Dae_core.Pipeline.Spec in
  let mem = Interp.Memory.create [ ("A", [| 1; -1; 2; -5; -2; 3; -9; 0 |]) ] in
  let r = Exec.run p ~args:[ ("n", Types.Vint 8) ] ~mem in
  check Alcotest.int "killed" 5 r.Exec.killed_stores;
  check Alcotest.int "committed" 3 r.Exec.committed_stores;
  check Alcotest.int "loads served" 8 r.Exec.loads_served;
  check (Alcotest.float 0.001) "rate" 0.625 (Exec.misspeculation_rate r)

let test_exec_traces_have_gates_only_when_synchronized () =
  let count_gates (tr : Trace.unit_trace) =
    let n = ref 0 in
    for k = 0 to Trace.length tr - 1 do
      if Trace.tag tr k = Trace.t_gate then incr n
    done;
    !n
  in
  let mem () = Interp.Memory.create [ ("A", Array.make 8 1) ] in
  let run mode =
    Exec.run (fig1_pipeline mode) ~args:[ ("n", Types.Vint 8) ] ~mem:(mem ())
  in
  let dae = run Dae_core.Pipeline.Dae in
  let spec = run Dae_core.Pipeline.Spec in
  check Alcotest.bool "DAE AGU gated" true (count_gates dae.Exec.agu_trace > 0);
  check Alcotest.int "SPEC AGU gate-free" 0 (count_gates spec.Exec.agu_trace);
  check Alcotest.bool "DAE AGU control-synchronized" true
    dae.Exec.agu_trace.Trace.control_synchronized;
  check Alcotest.bool "SPEC AGU free-running" false
    spec.Exec.agu_trace.Trace.control_synchronized

let test_exec_commit_order_matches_golden () =
  let p = fig1_pipeline Dae_core.Pipeline.Spec in
  let a0 = [| 5; -3; 2; 0; 7; -1 |] in
  let mem = Interp.Memory.create [ ("A", a0) ] in
  let golden_mem = Interp.Memory.create [ ("A", a0) ] in
  let golden =
    Interp.run p.Dae_core.Pipeline.original
      ~args:[ ("n", Types.Vint 6) ]
      ~mem:golden_mem
  in
  let r = Exec.run p ~args:[ ("n", Types.Vint 6) ] ~mem in
  match Exec.check_against_golden ~golden_mem ~golden r with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* --- timing: serialization mechanics ---------------------------------------- *)

let run_arch ?cfg arch (k : Dae_workloads.Kernels.t) =
  Machine.simulate ?cfg arch
    (k.Dae_workloads.Kernels.build ())
    ~invocations:(k.Dae_workloads.Kernels.invocations ())
    ~mem:(k.Dae_workloads.Kernels.init_mem ())

let test_dae_serializes_spec_streams () =
  let k = Dae_workloads.Kernels.hist ~n:400 ~buckets:16 ~cap:50 () in
  let dae = run_arch Machine.Dae k in
  let spec = run_arch Machine.Spec k in
  let sta = run_arch Machine.Sta k in
  (* DAE pays a round trip per iteration: much slower than STA; SPEC
     streams at II≈1: faster than STA *)
  check Alcotest.bool "DAE ≫ STA" true
    (dae.Machine.cycles > sta.Machine.cycles * 3 / 2);
  check Alcotest.bool "SPEC < STA" true
    (spec.Machine.cycles < sta.Machine.cycles);
  check Alcotest.bool "SPEC ≈ II 1" true
    (spec.Machine.cycles < 400 * 2)

let test_fifo_latency_increases_dae_round_trip () =
  let k = Dae_workloads.Kernels.thr ~n:200 () in
  let cycles latency =
    (run_arch ~cfg:{ Config.default with Config.fifo_latency = latency }
       Machine.Dae k)
      .Machine.cycles
  in
  check Alcotest.bool "longer FIFOs, longer DAE round trip" true
    (cycles 8 > cycles 1)

let test_spec_insensitive_to_fifo_latency () =
  let k = Dae_workloads.Kernels.thr ~n:200 () in
  let cycles latency =
    (run_arch ~cfg:{ Config.default with Config.fifo_latency = latency }
       Machine.Spec k)
      .Machine.cycles
  in
  (* runahead hides channel latency: only the pipeline fill grows *)
  check Alcotest.bool "SPEC hides FIFO latency" true
    (cycles 8 - cycles 1 < 100)

let test_store_queue_pressure () =
  (* §8.2.1: with a deep mis-speculating pipeline, a tiny store queue fills
     with doomed allocations and stalls the load stream *)
  let g = Dae_workloads.Graph.small ~nodes:32 ~edges:160 () in
  let k = Dae_workloads.Kernels.bfs ~graph:g () in
  let cycles sq =
    (run_arch ~cfg:{ Config.default with Config.store_queue_size = sq }
       Machine.Spec k)
      .Machine.cycles
  in
  check Alcotest.bool "SQ=1 slower than SQ=32" true (cycles 1 > cycles 32)

let test_oracle_filter_drops_kills () =
  let p = fig1_pipeline Dae_core.Pipeline.Spec in
  let mem = Interp.Memory.create [ ("A", [| 1; -1; 2; -5 |]) ] in
  let r = Exec.run p ~args:[ ("n", Types.Vint 4) ] ~mem in
  let agu', cu' = Timing.oracle_filter r.Exec.agu_trace r.Exec.cu_trace in
  let count sel (tr : Trace.unit_trace) =
    let n = ref 0 in
    for k = 0 to Trace.length tr - 1 do
      if sel (Trace.ev tr k) then incr n
    done;
    !n
  in
  check Alcotest.int "kills removed" 0
    (count (function Trace.Kill _ -> true | _ -> false) cu');
  check Alcotest.int "2 store sends remain (2 real stores)" 2
    (count (function Trace.Send_st _ -> true | _ -> false) agu');
  check Alcotest.int "produces kept" 2
    (count (function Trace.Produce _ -> true | _ -> false) cu')

(* --- STA model ----------------------------------------------------------------- *)

let test_sta_ii_hist () =
  let k = Dae_workloads.Kernels.hist () in
  let a = Sta.analyze (k.Dae_workloads.Kernels.build ()) in
  (* ld hist (lat 2) → cmp/add chain (1) → store: II = 4 with defaults *)
  check Alcotest.int "dependence II" 4 a.Sta.ii_dependence;
  check Alcotest.int "resource II" 1 a.Sta.ii_resource;
  check Alcotest.int "II" 4 a.Sta.ii

let test_sta_control_dependence_counted () =
  (* thr's store has no data dependence on the load — only control — and
     the II must still reflect the serialization *)
  let k = Dae_workloads.Kernels.thr () in
  let a = Sta.analyze (k.Dae_workloads.Kernels.build ()) in
  check Alcotest.bool "II > 1 via control chain" true (a.Sta.ii > 1)

let test_sta_no_dependence_means_ii_1 () =
  (* streaming copy without RAW hazard: b[i] = c[i] *)
  let b = Builder.create ~name:"copy" ~params:[ "n" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let v = Builder.load b "c" i in
        Builder.store b "b" ~idx:i ~value:v;
        [])
  in
  let f = Builder.seal b in
  let a = Sta.analyze f in
  check Alcotest.int "II = 1" 1 a.Sta.ii

let test_sta_cycles_scale_with_iterations () =
  let cycles n =
    let k = Dae_workloads.Kernels.thr ~n () in
    (run_arch Machine.Sta k).Machine.cycles
  in
  let c100 = cycles 100 and c200 = cycles 200 in
  check Alcotest.bool "roughly linear" true
    (abs ((2 * c100) - c200) < c100)

(* --- area model ------------------------------------------------------------------ *)

let test_area_relationships () =
  let k = Dae_workloads.Kernels.hist ~n:100 ~buckets:8 ~cap:10 () in
  let sta = run_arch Machine.Sta k in
  let dae = run_arch Machine.Dae k in
  let spec = run_arch Machine.Spec k in
  let oracle = run_arch Machine.Oracle k in
  let total (r : Machine.result) = r.Machine.area.Area.total in
  check Alcotest.bool "STA smallest" true (total sta < total dae);
  check Alcotest.bool "SPEC ≥ DAE (poison logic)" true
    (total spec >= total dae - 500);
  check Alcotest.bool "ORACLE ≤ SPEC" true (total oracle <= total spec);
  check Alcotest.bool "decoupled breakdown populated" true
    (spec.Machine.area.Area.agu > 0
    && spec.Machine.area.Area.cu > 0
    && spec.Machine.area.Area.du > 0)

let test_area_grows_with_lsq_size () =
  let k = Dae_workloads.Kernels.hist ~n:50 ~buckets:8 ~cap:10 () in
  let area sq =
    (run_arch ~cfg:{ Config.default with Config.store_queue_size = sq }
       Machine.Spec k)
      .Machine.area.Area.total
  in
  check Alcotest.bool "bigger SQ, bigger DU" true (area 64 > area 8)

let () =
  Alcotest.run "sim"
    [
      ("fifo", [ tc "latency and capacity" `Quick test_fifo_latency_and_capacity ]);
      ( "exec",
        [
          tc "misspec rate" `Quick test_exec_misspec_rate;
          tc "gates only when synchronized" `Quick
            test_exec_traces_have_gates_only_when_synchronized;
          tc "commit order matches golden" `Quick
            test_exec_commit_order_matches_golden;
        ] );
      ( "timing",
        [
          tc "DAE serializes, SPEC streams" `Quick
            test_dae_serializes_spec_streams;
          tc "FIFO latency hurts DAE" `Quick
            test_fifo_latency_increases_dae_round_trip;
          tc "FIFO latency hidden by SPEC" `Quick
            test_spec_insensitive_to_fifo_latency;
          tc "store-queue pressure (§8.2.1)" `Quick test_store_queue_pressure;
          tc "oracle filter" `Quick test_oracle_filter_drops_kills;
        ] );
      ( "sta",
        [
          tc "hist II" `Quick test_sta_ii_hist;
          tc "control-dependence II" `Quick test_sta_control_dependence_counted;
          tc "no hazard → II 1" `Quick test_sta_no_dependence_means_ii_1;
          tc "linear in iterations" `Quick test_sta_cycles_scale_with_iterations;
        ] );
      ( "area",
        [
          tc "relationships" `Quick test_area_relationships;
          tc "LSQ size" `Quick test_area_grows_with_lsq_size;
        ] );
    ]
