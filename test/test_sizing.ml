(* The static channel-sizing analyzer, held to its acceptance contract:
   for every kernel of the reduced test suite in both decoupled modes it
   must (a) prove the default configuration deadlock-free and name a
   critical channel, (b) emit per-channel minimum depths at which the
   simulator really does complete — within the analyzer's predicted cycle
   bound and with the stall partition intact — and (c) place the deadlock
   boundary exactly: one step below the critical channel's minimum the
   simulator either trips its dynamic deadlock detector (capacity 0,
   which Config.validate would reject up front) or runs no faster than at
   the minimum. The same soundness statement is a qcheck property over
   the §6 randomized kernel generator. *)

open Dae_workloads
module G = Gen
module M = Dae_sim.Machine
module S = Dae_sim.Stats
module P = Dae_core.Pipeline
module Sz = Dae_analysis.Sizing
module Ch = Dae_analysis.Channel

let tc = Alcotest.test_case
let check = Alcotest.check
let modes = [ ("dae", P.Dae, M.Dae); ("spec", P.Spec, M.Spec) ]

let sim ?(validate = true) ?(collect = false) ~cfg arch (k : Kernels.t) =
  M.simulate ~cfg ~validate ~collect arch
    (k.Kernels.build ())
    ~invocations:(k.Kernels.invocations ())
    ~mem:(k.Kernels.init_mem ())

(* --- per-kernel: analyze, rerun at the minimum, probe the boundary ----------- *)

let test_kernel name () =
  let k =
    match Kernels.by_name (Kernels.test_suite ()) name with
    | Some k -> k
    | None -> Alcotest.failf "kernel %s not in test suite" name
  in
  List.iter
    (fun (mname, mode, arch) ->
      let label what = Printf.sprintf "%s/%s %s" name mname what in
      let p = P.compile ~mode (k.Kernels.build ()) in
      match Sz.analyze ~cfg:Dae_sim.Config.default p with
      | Error _ -> Alcotest.failf "%s: segment budget exceeded" (label "analyze")
      | Ok sz ->
        (* the default config is proven deadlock-free, channels are sized *)
        check Alcotest.bool (label "deadlock-free at defaults") false
          (Sz.deadlocks sz);
        check Alcotest.bool (label "has channels") true (sz.Sz.channels <> []);
        check Alcotest.bool (label "names a critical channel") true
          (sz.Sz.critical <> None);
        List.iter
          (fun (s : Sz.sized) ->
            let n = Ch.name s.Sz.sz_chan.Ch.kind in
            check Alcotest.bool (label (n ^ " min >= 1")) true (s.Sz.sz_min >= 1);
            check Alcotest.bool
              (label (n ^ " matched >= min"))
              true
              (s.Sz.sz_matched >= s.Sz.sz_min))
          sz.Sz.channels;
        (* the simulator completes at the minimum depths, inside the bound,
           with the correct result and an exact stall partition *)
        let r = sim ~collect:true ~cfg:sz.Sz.min_cfg arch k in
        (match k.Kernels.check r.M.memory with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "%s: %s" (label "reference check") msg);
        let bound = Sz.bound_of_timelines sz r.M.timelines in
        check Alcotest.bool
          (label (Printf.sprintf "cycles %d within bound %d" r.M.cycles bound))
          true (r.M.cycles <= bound);
        List.iter
          (fun (u, c) ->
            check Alcotest.int (label (u ^ " partitions")) r.M.cycles
              (S.total c))
          r.M.stats;
        (* one below the critical channel's minimum is the boundary *)
        (match Sz.critical_decrement sz with
        | None -> Alcotest.failf "%s: no critical channel" (label "probe")
        | Some (kind, probe_cfg) ->
          let cname = Ch.name kind in
          if Ch.capacity probe_cfg kind = 0 then begin
            (* validation rejects the config... *)
            (match Dae_sim.Config.validate probe_cfg with
            | () ->
              Alcotest.failf "%s: capacity 0 passed Config.validate"
                (label cname)
            | exception Invalid_argument _ -> ());
            (* ...the analyzer proves the deadlock statically... *)
            (match Sz.analyze ~cfg:probe_cfg p with
            | Ok sz' ->
              check Alcotest.bool
                (label (cname ^ " static deadlock at min-1"))
                true (Sz.deadlocks sz')
            | Error _ ->
              Alcotest.failf "%s: segment budget exceeded" (label "reanalyze"));
            (* ...and the engine's dynamic detector agrees *)
            match sim ~validate:false ~cfg:probe_cfg arch k with
            | (_ : M.result) ->
              Alcotest.failf "%s: expected a dynamic deadlock at min-1"
                (label cname)
            | exception Dae_sim.Timing.Deadlock _ -> ()
          end
          else
            (* still feasible: strictly fewer slots can only stall harder *)
            match sim ~validate:false ~cfg:probe_cfg arch k with
            | r' ->
              check Alcotest.bool
                (label (cname ^ " min-1 is no faster"))
                true
                (r'.M.cycles >= r.M.cycles)
            | exception Dae_sim.Timing.Deadlock _ -> ()))
    modes

(* --- Config.validate: the satellite contract --------------------------------- *)

let test_config_validate () =
  let d = Dae_sim.Config.default in
  Dae_sim.Config.validate d;
  let bad =
    [
      ("load_queue_size", { d with Dae_sim.Config.load_queue_size = 0 });
      ("store_queue_size", { d with Dae_sim.Config.store_queue_size = -1 });
      ( "request_fifo_capacity",
        { d with Dae_sim.Config.request_fifo_capacity = 0 } );
      ("value_fifo_capacity", { d with Dae_sim.Config.value_fifo_capacity = 0 });
      ( "store_value_fifo_capacity",
        { d with Dae_sim.Config.store_value_fifo_capacity = -3 } );
      ("fifo_latency", { d with Dae_sim.Config.fifo_latency = 0 });
      ("memory_load_latency", { d with Dae_sim.Config.memory_load_latency = 0 });
      ( "memory_store_latency",
        { d with Dae_sim.Config.memory_store_latency = 0 } );
      ("forward_latency", { d with Dae_sim.Config.forward_latency = 0 });
      ("alu_latency", { d with Dae_sim.Config.alu_latency = 0 });
      ("branch_latency", { d with Dae_sim.Config.branch_latency = -2 });
      ("unit_ii", { d with Dae_sim.Config.unit_ii = 0 });
      ("vector_width", { d with Dae_sim.Config.vector_width = 0 });
    ]
  in
  List.iter
    (fun (what, cfg) ->
      match Dae_sim.Config.validate cfg with
      | () -> Alcotest.failf "%s: expected Invalid_argument" what
      | exception Invalid_argument msg ->
        let contains s sub =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        check Alcotest.bool
          (Printf.sprintf "%s named in %S" what msg)
          true (contains msg what))
    bad

let test_entry_points_validate () =
  let k =
    match Kernels.by_name (Kernels.test_suite ()) "thr" with
    | Some k -> k
    | None -> Alcotest.fail "thr not in test suite"
  in
  let cfg = { Dae_sim.Config.default with Dae_sim.Config.fifo_latency = 0 } in
  (match sim ~cfg M.Spec k with
  | (_ : M.result) -> Alcotest.fail "Machine.simulate accepted fifo_latency 0"
  | exception Invalid_argument _ -> ());
  let tr u = Dae_sim.Trace.empty u in
  match
    Dae_sim.Timing.run ~cfg ~subscribers:[]
      (tr Dae_sim.Trace.Agu) (tr Dae_sim.Trace.Cu)
  with
  | (_ : Dae_sim.Timing.result) ->
    Alcotest.fail "Timing.run accepted fifo_latency 0"
  | exception Invalid_argument _ -> ()

(* --- qcheck: the same soundness statement on randomized kernels --------------- *)

let gen_sizing_sound (g : G.t) =
  List.for_all
    (fun (_, mode, arch) ->
      match P.compile ~mode (Dae_ir.Func.clone g.G.func) with
      | exception P.Compile_error _ -> true
      | p -> (
        match Sz.analyze ~cfg:Dae_sim.Config.default p with
        | Error _ -> true (* analyzer declines past its segment budget *)
        | Ok sz ->
          let simulate ?(validate = true) cfg =
            M.simulate ~cfg ~validate ~collect:true arch g.G.func
              ~invocations:[ g.G.args ] ~mem:(g.G.mem ())
          in
          (not (Sz.deadlocks sz))
          && (sz.Sz.channels = [] || sz.Sz.critical <> None)
          &&
          let r = simulate sz.Sz.min_cfg in
          r.M.cycles <= Sz.bound_of_timelines sz r.M.timelines
          &&
          (match Sz.critical_decrement sz with
          | None -> sz.Sz.channels = []
          | Some (kind, probe_cfg) ->
            if Ch.capacity probe_cfg kind = 0 then
              match simulate ~validate:false probe_cfg with
              | (_ : M.result) -> false (* min-1 must not complete *)
              | exception Dae_sim.Timing.Deadlock _ -> true
            else
              (* a tighter-but-legal critical channel never speeds us up *)
              match simulate ~validate:false probe_cfg with
              | r' -> r'.M.cycles >= r.M.cycles
              | exception Dae_sim.Timing.Deadlock _ -> true)))
    modes

let qcheck_props =
  let open QCheck in
  let gen_seed = small_nat in
  [
    Test.make ~name:"analyzer minimums are safe, min-1 is the boundary"
      ~count:40 gen_seed
      (fun seed -> gen_sizing_sound (Fixtures.gen_cfg ~seed));
    Test.make ~name:"same, with stores on several arrays" ~count:15 gen_seed
      (fun seed ->
        gen_sizing_sound (Fixtures.gen_cfg_multi ~inner_loops:false ~seed ()));
  ]

let () =
  Alcotest.run "sizing"
    [
      ( "config validate",
        [
          tc "rejects non-positive knobs by name" `Quick test_config_validate;
          tc "enforced at the Machine/Timing entry points" `Quick
            test_entry_points_validate;
        ] );
      ( "test-suite kernels",
        List.map
          (fun (k : Kernels.t) ->
            tc k.Kernels.name `Quick (test_kernel k.Kernels.name))
          (Kernels.test_suite ()) );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
