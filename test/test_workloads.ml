(* Every checked compile in this suite is also protocol-checked. *)
let () = Dae_analysis.Checker.install ()

(* Workloads: graph generators, reference algorithms, all nine benchmark
   kernels across all four architectures, the §8.3.1 synthetic template,
   and the Table-2 mis-speculation instrumentation. *)

open Dae_workloads

let tc = Alcotest.test_case
let check = Alcotest.check

(* --- graphs ------------------------------------------------------------------- *)

let test_graph_determinism () =
  let a = Graph.email_eu_core_like () in
  let b = Graph.email_eu_core_like () in
  check Alcotest.int "nodes" 1005 a.Graph.nodes;
  check Alcotest.int "edges" 25571 (Graph.edges a);
  check Alcotest.bool "deterministic" true
    (a.Graph.src = b.Graph.src && a.Graph.dst = b.Graph.dst
   && a.Graph.weight = b.Graph.weight)

let test_graph_bounds () =
  let g = Graph.small () in
  Array.iter
    (fun u -> check Alcotest.bool "src in range" true (u >= 0 && u < g.Graph.nodes))
    g.Graph.src;
  Array.iter
    (fun v -> check Alcotest.bool "dst in range" true (v >= 0 && v < g.Graph.nodes))
    g.Graph.dst;
  Array.iter
    (fun w -> check Alcotest.bool "weight positive" true (w > 0))
    g.Graph.weight

let test_bfs_reference_properties () =
  let g = Graph.small () in
  let dist, levels = Graph.bfs_reference g ~source:0 in
  check Alcotest.int "source at distance 0" 0 dist.(0);
  check Alcotest.bool "levels positive" true (levels > 0);
  (* every edge relaxes: dist(v) ≤ dist(u)+1 when both reached *)
  for e = 0 to Graph.edges g - 1 do
    let du = dist.(g.Graph.src.(e)) and dv = dist.(g.Graph.dst.(e)) in
    if du >= 0 then
      check Alcotest.bool "bfs edge condition" true (dv >= 0 && dv <= du + 1)
  done

let test_sssp_reference_vs_bfs () =
  (* with all weights forced to 1, sssp distances equal bfs distances *)
  let g = Graph.small () in
  let g1 = { g with Graph.weight = Array.make (Graph.edges g) 1 } in
  let bfs_dist, _ = Graph.bfs_reference g1 ~source:0 in
  let sssp_dist, _ = Graph.sssp_reference g1 ~source:0 in
  Array.iteri
    (fun v d ->
      let expected = if d < 0 then Graph.inf else d in
      check Alcotest.int (Fmt.str "node %d" v) expected sssp_dist.(v))
    bfs_dist

let test_bc_reference_sigma_source () =
  let g = Graph.small () in
  let _, sigma, _ = Graph.bc_reference g ~source:0 in
  check Alcotest.int "σ(source) = 1" 1 sigma.(0)

(* --- all kernels × all architectures --------------------------------------------- *)

let test_kernel_all_archs (k : Kernels.t) () =
  let f = k.Kernels.build () in
  List.iter
    (fun arch ->
      let r =
        Dae_sim.Machine.simulate arch f
          ~invocations:(k.Kernels.invocations ())
          ~mem:(k.Kernels.init_mem ())
      in
      match k.Kernels.check r.Dae_sim.Machine.memory with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s/%s: %s" k.Kernels.name
          (Dae_sim.Machine.arch_name arch)
          msg)
    [ Dae_sim.Machine.Sta; Dae_sim.Machine.Dae; Dae_sim.Machine.Spec;
      Dae_sim.Machine.Oracle ]

let kernel_cases =
  List.map
    (fun (k : Kernels.t) ->
      tc (Fmt.str "%s × 4 architectures" k.Kernels.name) `Quick
        (test_kernel_all_archs k))
    (Kernels.test_suite ())

let test_speedup_shape_on_loD_kernels () =
  (* the headline claim at small scale: DAE loses decoupling and SPEC
     restores it *)
  List.iter
    (fun (k : Kernels.t) ->
      let f = k.Kernels.build () in
      let run arch =
        (Dae_sim.Machine.simulate arch f
           ~invocations:(k.Kernels.invocations ())
           ~mem:(k.Kernels.init_mem ()))
          .Dae_sim.Machine.cycles
      in
      let dae = run Dae_sim.Machine.Dae in
      let spec = run Dae_sim.Machine.Spec in
      let oracle = run Dae_sim.Machine.Oracle in
      check Alcotest.bool (k.Kernels.name ^ ": SPEC beats DAE") true
        (spec < dae);
      check Alcotest.bool (k.Kernels.name ^ ": ORACLE bounds SPEC") true
        (oracle <= spec))
    [ Kernels.hist ~n:200 ~buckets:16 ~cap:20 (); Kernels.thr ~n:200 () ]

(* --- synthetic nested template (§8.3.1) -------------------------------------------- *)

let test_synthetic_poison_counts () =
  List.iter
    (fun depth ->
      let k = Synthetic.workload ~n:50 ~depth () in
      let p =
        Dae_core.Pipeline.compile ~check:true ~mode:Dae_core.Pipeline.Spec
          (k.Kernels.build ())
      in
      (* paper: n poison blocks and n(n+1)/2 poison calls *)
      check Alcotest.int
        (Fmt.str "depth %d: n(n+1)/2 poison calls" depth)
        (depth * (depth + 1) / 2)
        (Dae_core.Pipeline.poison_call_count p))
    [ 1; 2; 3; 4; 5 ]

let test_synthetic_correct_all_archs () =
  List.iter
    (fun depth -> test_kernel_all_archs (Synthetic.workload ~n:60 ~depth ()) ())
    [ 1; 2; 4 ]

let test_synthetic_area_grows_with_depth () =
  let cu_area depth =
    let k = Synthetic.workload ~n:50 ~depth () in
    let r =
      Dae_sim.Machine.simulate Dae_sim.Machine.Spec (k.Kernels.build ())
        ~invocations:(k.Kernels.invocations ())
        ~mem:(k.Kernels.init_mem ())
    in
    r.Dae_sim.Machine.area.Dae_sim.Area.cu
  in
  check Alcotest.bool "CU area grows with nesting" true
    (cu_area 6 > cu_area 2)

(* --- Table 2 instrumentation --------------------------------------------------------- *)

let test_misspec_rates_hit_targets () =
  List.iter
    (fun rate ->
      let k = Misspec.thr ~n:800 ~rate_percent:rate () in
      let r =
        Dae_sim.Machine.simulate Dae_sim.Machine.Spec (k.Kernels.build ())
          ~invocations:(k.Kernels.invocations ())
          ~mem:(k.Kernels.init_mem ())
      in
      (match k.Kernels.check r.Dae_sim.Machine.memory with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      let measured = 100. *. r.Dae_sim.Machine.misspec_rate in
      check Alcotest.bool
        (Fmt.str "thr rate %d%% (measured %.0f%%)" rate measured)
        true
        (abs_float (measured -. float_of_int rate) < 8.))
    [ 0; 20; 40; 60; 80; 100 ]

let test_misspec_cost_is_flat () =
  (* Table 2's claim: SPEC cycles do not correlate with the rate *)
  let cycles rate =
    let k = Misspec.hist ~n:500 ~rate_percent:rate () in
    (Dae_sim.Machine.simulate Dae_sim.Machine.Spec (k.Kernels.build ())
       ~invocations:(k.Kernels.invocations ())
       ~mem:(k.Kernels.init_mem ()))
      .Dae_sim.Machine.cycles
  in
  let cs = List.map cycles [ 0; 50; 100 ] in
  let mx = List.fold_left max 0 cs and mn = List.fold_left min max_int cs in
  check Alcotest.bool
    (Fmt.str "flat cycles %a" Fmt.(list ~sep:(any ",") int) cs)
    true
    (float_of_int mx /. float_of_int mn < 1.25)

let () =
  Alcotest.run "workloads"
    [
      ( "graphs",
        [
          tc "determinism and scale" `Quick test_graph_determinism;
          tc "bounds" `Quick test_graph_bounds;
          tc "bfs reference" `Quick test_bfs_reference_properties;
          tc "sssp vs bfs on unit weights" `Quick test_sssp_reference_vs_bfs;
          tc "bc sigma" `Quick test_bc_reference_sigma_source;
        ] );
      ("kernels", kernel_cases);
      ( "shapes",
        [ tc "SPEC beats DAE; ORACLE bounds SPEC" `Quick
            test_speedup_shape_on_loD_kernels ] );
      ( "synthetic",
        [
          tc "poison call formula n(n+1)/2" `Quick test_synthetic_poison_counts;
          tc "correct at depths 1,2,4" `Quick test_synthetic_correct_all_archs;
          tc "area grows with depth" `Quick test_synthetic_area_grows_with_depth;
        ] );
      ( "misspec",
        [
          tc "rates hit targets" `Quick test_misspec_rates_hit_targets;
          tc "cost flat across rates" `Quick test_misspec_cost_is_flat;
        ] );
    ]
