(* Every checked compile in this suite is also protocol-checked. *)
let () = Dae_analysis.Checker.install ()

(* The §7 application backends: the DeSC prefetcher ISA lowering (§7.1)
   and the stream-dataflow CGRA lowering (§7.2). *)

open Dae_core

let tc = Alcotest.test_case
let check = Alcotest.check

let spec_pipeline () =
  Pipeline.compile ~check:true ~mode:Pipeline.Spec (Fixtures.fig1 ())

let dae_pipeline () = Pipeline.compile ~check:true ~mode:Pipeline.Dae (Fixtures.fig1 ())

(* --- DeSC (§7.1) --------------------------------------------------------------- *)

let test_desc_opcode_mapping () =
  let l = Desc_backend.lower (spec_pipeline ()) in
  (* supply slice: one load_produce + one store_addr per iteration *)
  check Alcotest.int "load_produce in supply" 1
    (Desc_backend.count_opcode l.Desc_backend.supply "load_produce");
  check Alcotest.int "store_addr in supply" 1
    (Desc_backend.count_opcode l.Desc_backend.supply "store_addr");
  (* compute slice: consume, complete, invalidate *)
  check Alcotest.int "load_consume in compute" 1
    (Desc_backend.count_opcode l.Desc_backend.compute "load_consume");
  check Alcotest.int "store_val in compute" 1
    (Desc_backend.count_opcode l.Desc_backend.compute "store_val");
  check Alcotest.int "store_inv in compute" 1
    (Desc_backend.count_opcode l.Desc_backend.compute "store_inv");
  check Alcotest.bool "compute slice speculates" true
    (Desc_backend.uses_speculation l.Desc_backend.compute);
  check Alcotest.bool "supply slice does not invalidate" false
    (Desc_backend.uses_speculation l.Desc_backend.supply)

let test_desc_dae_has_no_store_inv () =
  let l = Desc_backend.lower (dae_pipeline ()) in
  check Alcotest.bool "no store_inv without speculation" false
    (Desc_backend.uses_speculation l.Desc_backend.compute);
  (* the DAE supply slice consumes — the paper's LoD synchronization *)
  check Alcotest.bool "supply consumes under LoD" true
    (Desc_backend.count_opcode l.Desc_backend.supply "load_consume" > 0)

let test_desc_listing_structure () =
  let l = Desc_backend.lower (spec_pipeline ()) in
  let has_labels li =
    List.exists
      (fun (i : Desc_backend.instruction) -> i.Desc_backend.label <> None)
      li.Desc_backend.instructions
  in
  check Alcotest.bool "supply has block labels" true (has_labels l.Desc_backend.supply);
  check Alcotest.bool "rendering succeeds" true
    (String.length (Fmt.str "%a" Desc_backend.pp l) > 0);
  (* every block contributes a terminator: at least one ret in each slice *)
  check Alcotest.bool "supply returns" true
    (Desc_backend.count_opcode l.Desc_backend.supply "ret" >= 1)

let test_desc_poison_count_matches_pipeline () =
  let p =
    Pipeline.compile ~check:true ~mode:Pipeline.Spec (Fixtures.fig4 ())
  in
  let l = Desc_backend.lower p in
  check Alcotest.int "store_inv = poison calls"
    (Pipeline.poison_call_count p)
    (Desc_backend.count_opcode l.Desc_backend.compute "store_inv")

(* --- CGRA (§7.2) ---------------------------------------------------------------- *)

let test_cgra_spec_streams_unconditional () =
  let t = Cgra_backend.lower (spec_pipeline ()) in
  check Alcotest.bool "streams fully decoupled after speculation" true
    t.Cgra_backend.fully_decoupled;
  check Alcotest.int "one clean port (the poison)" 1 t.Cgra_backend.clean_ports;
  check Alcotest.int "two stream commands" 2
    (List.length t.Cgra_backend.streams)

let test_cgra_dae_streams_predicated () =
  let t = Cgra_backend.lower (dae_pipeline ()) in
  (* without speculation the store stream is predicated on the loaded
     value — decoupling is lost *)
  check Alcotest.bool "store stream predicated" false
    t.Cgra_backend.fully_decoupled;
  check Alcotest.int "no clean ports" 0 t.Cgra_backend.clean_ports

let test_cgra_clean_ports_match_poisons () =
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Spec (Fixtures.fig4 ()) in
  let t = Cgra_backend.lower p in
  check Alcotest.int "clean ports = poison calls"
    (Pipeline.poison_call_count p)
    t.Cgra_backend.clean_ports;
  check Alcotest.bool "rendering succeeds" true
    (String.length (Fmt.str "%a" Cgra_backend.pp t) > 0)

let test_cgra_predicates_cover_blocks () =
  let f = Fixtures.fig4 () in
  let preds = Cgra_backend.block_predicates f in
  List.iter
    (fun bid ->
      check Alcotest.bool (Fmt.str "bb%d has a predicate" bid) true
        (Hashtbl.mem preds bid))
    f.Dae_ir.Func.layout;
  (* the loop header is unconditional; a switch arm is not *)
  check Alcotest.string "header predicate" "1" (Hashtbl.find preds 1);
  check Alcotest.bool "switch arm predicated" true (Hashtbl.find preds 5 <> "1")

let backend_props =
  let open QCheck in
  [
    Test.make ~name:"DeSC lowering total over generated kernels" ~count:40
      small_nat
      (fun seed ->
        let g = Dae_workloads.Gen.generate ~seed () in
        let p =
          Pipeline.compile ~check:true ~mode:Pipeline.Spec g.Dae_workloads.Gen.func
        in
        let l = Desc_backend.lower p in
        (* every poison lowered, nothing lost *)
        Desc_backend.count_opcode l.Desc_backend.compute "store_inv"
        = Pipeline.poison_call_count p);
    Test.make ~name:"CGRA clean ports equal poisons on generated kernels"
      ~count:40 small_nat
      (fun seed ->
        let g = Dae_workloads.Gen.generate ~seed () in
        let p =
          Pipeline.compile ~check:true ~mode:Pipeline.Spec g.Dae_workloads.Gen.func
        in
        (Cgra_backend.lower p).Cgra_backend.clean_ports
        = Pipeline.poison_call_count p);
  ]

let () =
  Alcotest.run "backends"
    [
      ( "desc (§7.1)",
        [
          tc "opcode mapping" `Quick test_desc_opcode_mapping;
          tc "DAE has no store_inv" `Quick test_desc_dae_has_no_store_inv;
          tc "listing structure" `Quick test_desc_listing_structure;
          tc "fig4 poison count" `Quick test_desc_poison_count_matches_pipeline;
        ] );
      ( "cgra (§7.2)",
        [
          tc "SPEC streams unconditional" `Quick
            test_cgra_spec_streams_unconditional;
          tc "DAE streams predicated" `Quick test_cgra_dae_streams_predicated;
          tc "clean ports = poisons" `Quick test_cgra_clean_ports_match_poisons;
          tc "predicates cover blocks" `Quick test_cgra_predicates_cover_blocks;
        ] );
      ("props", List.map QCheck_alcotest.to_alcotest backend_props);
    ]
