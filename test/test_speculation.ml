(* Every checked compile in this suite is also protocol-checked. *)
let () = Dae_analysis.Checker.install ()

(* The paper's transformations: decoupling (§3.2), Algorithm 1 (hoisting),
   Algorithms 2+3 (poison placement), §5.3 merging, §5.4 speculative loads
   — unit-tested on the paper's running examples (Figures 1, 3, 4). *)

open Dae_ir
open Dae_core

let tc = Alcotest.test_case
let check = Alcotest.check

(* --- decoupling ------------------------------------------------------------- *)

let count_kind f pred =
  Func.fold_instrs f (fun n (i : Instr.t) -> if pred i.Instr.kind then n + 1 else n) 0

let test_decouple_fig1 () =
  let f = Fixtures.fig1 () in
  let s = Decouple.run f in
  (* pre-cleanup, both slices share the original block structure *)
  check (Alcotest.list Alcotest.int) "same layout"
    s.Decouple.agu.Func.layout s.Decouple.cu.Func.layout;
  check Alcotest.int "AGU: one ld send" 1
    (count_kind s.Decouple.agu (function Instr.Send_ld_addr _ -> true | _ -> false));
  check Alcotest.int "AGU: one st send" 1
    (count_kind s.Decouple.agu (function Instr.Send_st_addr _ -> true | _ -> false));
  check Alcotest.int "CU: one consume" 1
    (count_kind s.Decouple.cu (function Instr.Consume_val _ -> true | _ -> false));
  check Alcotest.int "CU: one produce" 1
    (count_kind s.Decouple.cu (function Instr.Produce_val _ -> true | _ -> false));
  check Alcotest.int "CU: no raw memory ops" 0
    (count_kind s.Decouple.cu (function
      | Instr.Load _ | Instr.Store _ -> true
      | _ -> false))

let test_decouple_dae_keeps_synchronizing_consume () =
  (* In plain DAE mode the AGU still consumes the branch value — the
     loss-of-decoupling of Figure 1(b). *)
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Dae (Fixtures.fig1 ()) in
  check Alcotest.bool "AGU consumes" true
    (count_kind p.Pipeline.agu (function Instr.Consume_val _ -> true | _ -> false)
     > 0);
  (* the load value is broadcast to both units *)
  match p.Pipeline.load_subscribers with
  | [ (_, subs) ] ->
    check Alcotest.int "two subscribers" 2 (List.length subs)
  | other ->
    Alcotest.failf "expected one load channel, got %d" (List.length other)

let test_spec_fully_decouples_fig1 () =
  (* After speculation the AGU has no consumes, no branches besides the
     loop, and the CU poisons — Figure 1(c). *)
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Spec (Fixtures.fig1 ()) in
  check Alcotest.int "AGU consume-free" 0
    (count_kind p.Pipeline.agu (function Instr.Consume_val _ -> true | _ -> false));
  check Alcotest.int "CU has a poison" 1
    (count_kind p.Pipeline.cu (function Instr.Poison _ -> true | _ -> false));
  (* AGU control flow reduced to the bare counted loop: 4 blocks
     (entry, header, body, exit) at most *)
  check Alcotest.bool "AGU slimmed" true
    (List.length p.Pipeline.agu.Func.layout <= 4);
  match p.Pipeline.spec with
  | None -> Alcotest.fail "speculation did not apply"
  | Some s ->
    check Alcotest.int "one spec head" 1 (List.length s.Pipeline.hoist.Hoist.spec_req_map)

(* --- Algorithm 1 on Figure 4 ------------------------------------------------ *)

let spec_info p =
  match p.Pipeline.spec with
  | Some s -> s
  | None -> Alcotest.fail "expected speculation to apply"

let test_hoist_fig4 () =
  let f = Fixtures.fig4 () in
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Spec f in
  let s = spec_info p in
  let map = s.Pipeline.hoist.Hoist.spec_req_map in
  (* chain heads are paper blocks 2 (bb3) and 3 (bb4) *)
  check (Alcotest.list Alcotest.int) "heads" [ 3; 4 ]
    (List.sort compare (List.map fst map));
  let stores_of head =
    List.filter_map
      (fun (r : Hoist.spec_req) ->
        if r.Hoist.is_store then Some r.Hoist.mem else None)
      (Hoist.spec_requests s.Pipeline.hoist head)
  in
  (* paper: b and e (mem5, mem7) are speculated from block 2 *)
  check (Alcotest.list Alcotest.int) "block 2 speculates b,e" [ 5; 7 ]
    (List.sort compare (stores_of 3));
  (* paper: c, b, d, e from block 3 *)
  check (Alcotest.list Alcotest.int) "block 3 speculates c,b,d,e"
    [ 3; 4; 5; 7 ]
    (List.sort compare (stores_of 4));
  (* request a (mem0) is never speculated *)
  List.iter
    (fun (_, reqs) ->
      check Alcotest.bool "a not speculated" false
        (List.exists (fun (r : Hoist.spec_req) -> r.Hoist.mem = 0) reqs))
    map;
  (* order property: speculation order is a topological order — for every
     pair (r1 before r2) there is no CFG path from r2's block to r1's *)
  let reach = Reach.create f in
  List.iter
    (fun (_, reqs) ->
      let rec pairs = function
        | [] -> ()
        | (r1 : Hoist.spec_req) :: rest ->
          List.iter
            (fun (r2 : Hoist.spec_req) ->
              if r1.Hoist.true_bb <> r2.Hoist.true_bb then
                check Alcotest.bool
                  (Fmt.str "topological: bb%d before bb%d" r1.Hoist.true_bb
                     r2.Hoist.true_bb)
                  false
                  (Reach.strictly_reachable reach ~src:r2.Hoist.true_bb
                     ~dst:r1.Hoist.true_bb))
            rest;
          pairs rest
      in
      pairs reqs)
    map

let test_hoist_order_b_before_e_from_block2 () =
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Spec (Fixtures.fig4 ()) in
  let s = spec_info p in
  let reqs = Hoist.spec_requests s.Pipeline.hoist 3 in
  let stores =
    List.filter_map
      (fun (r : Hoist.spec_req) ->
        if r.Hoist.is_store then Some r.Hoist.mem else None)
      reqs
  in
  check (Alcotest.list Alcotest.int) "b precedes e" [ 5; 7 ] stores

(* §5.1.3: hoisting c before b from block 3 (b's trueBB is after c's). *)
let test_hoist_c_before_b_from_block3 () =
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Spec (Fixtures.fig4 ()) in
  let s = spec_info p in
  let stores =
    List.filter_map
      (fun (r : Hoist.spec_req) ->
        if r.Hoist.is_store then Some r.Hoist.mem else None)
      (Hoist.spec_requests s.Pipeline.hoist 4)
  in
  let pos m =
    let rec go i = function
      | [] -> -1
      | x :: _ when x = m -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 stores
  in
  check Alcotest.bool "c (mem3) before b (mem5)" true (pos 3 < pos 5);
  check Alcotest.bool "b (mem5) before e (mem7)" true (pos 5 < pos 7)

(* --- Algorithms 2+3 on Figure 4 ---------------------------------------------- *)

let test_poison_stats_fig4 () =
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Spec (Fixtures.fig4 ()) in
  let s = spec_info p in
  let st = s.Pipeline.poison_stats in
  check Alcotest.bool "poison calls inserted" true (st.Poison.poison_calls > 0);
  (* store d is speculated only at paper block 3 which does not dominate
     block 5: the paper's case-2 steering must appear *)
  check Alcotest.bool "steering used (case 2)" true (st.Poison.steer_blocks > 0);
  check Alcotest.bool "steering φs created" true (st.Poison.steer_phis > 0)

(* End-to-end semantics on Figure 4 over many inputs: this is the real
   assertion — the AGU/CU streams match (checked inside Exec), memory and
   commit order equal the sequential interpreter. *)
let test_fig4_end_to_end () =
  let f = Fixtures.fig4 () in
  List.iter
    (fun seed ->
      List.iter
        (fun arch ->
          let r =
            Dae_sim.Machine.simulate arch f
              ~invocations:[ Fixtures.fig4_args 32 ]
              ~mem:(Fixtures.fig4_mem ~seed ())
          in
          ignore r)
        [ Dae_sim.Machine.Dae; Dae_sim.Machine.Spec; Dae_sim.Machine.Oracle ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- §5.3 merging ------------------------------------------------------------ *)

let test_merge_identical_poison_blocks () =
  let f =
    Parser.parse
      {|
      func m(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        poison A !mem0
        poison A !mem1
        br bb3
      bb2:
        poison A !mem0
        poison A !mem1
        br bb3
      bb3:
        ret
      }
      |}
  in
  let merged = Merge.run f in
  check Alcotest.int "one merge" 1 merged;
  Verify.check_exn f;
  check Alcotest.int "three blocks remain" 3 (List.length f.Func.layout)

let test_merge_respects_differing_content () =
  let f =
    Parser.parse
      {|
      func m2(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        poison A !mem0
        br bb3
      bb2:
        poison A !mem1
        br bb3
      bb3:
        ret
      }
      |}
  in
  check Alcotest.int "no merge" 0 (Merge.run f)

let test_merge_respects_phi_values () =
  let f =
    Parser.parse
      {|
      func m3(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        poison A !mem0
        br bb3
      bb2:
        poison A !mem0
        br bb3
      bb3:
        %2 = phi i32 [bb1: 1], [bb2: 2]
        ret %2
      }
      |}
  in
  check Alcotest.int "no merge when φ values differ" 0 (Merge.run f)

let test_merge_applied_in_pipeline () =
  (* mm's two parallel poison sites merge (the paper notes mm's two poison
     blocks merged into one) *)
  let k = Dae_workloads.Kernels.mm ~left:8 ~right:8 ~m:30 () in
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Spec (k.Dae_workloads.Kernels.build ()) in
  let s = spec_info p in
  check Alcotest.bool "pipeline merged poison blocks" true
    (s.Pipeline.merged_blocks >= 0)

(* --- §5.4 speculative loads --------------------------------------------------- *)

let test_spec_load_consume_moved () =
  (* bfs: the CU's consume of dist[edst[e]] moves to the chain head *)
  let k = Dae_workloads.Kernels.bfs ~graph:(Dae_workloads.Graph.small ()) () in
  let f = k.Dae_workloads.Kernels.build () in
  let lod = Lod.analyze f in
  let head = List.hd lod.Lod.chain_heads in
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Spec f in
  let s = spec_info p in
  check Alcotest.bool "consumes were moved" true
    (s.Pipeline.load_stats.Spec_load.moved_consumes > 0);
  (* in the CU, the consume for the speculated load now sits in the head *)
  let cu_head = Func.block p.Pipeline.cu head in
  let has_consume =
    List.exists
      (fun (i : Instr.t) ->
        match i.Instr.kind with Instr.Consume_val _ -> true | _ -> false)
      cu_head.Block.instrs
  in
  check Alcotest.bool "consume in head block" true has_consume

(* --- §2 motivating property ---------------------------------------------------- *)

(* The naive strategy (poison where the request becomes unreachable)
   produces out-of-order streams; our Algorithm 2 must not. We assert the
   positive side dynamically: on every fig4 input the store-value stream
   matched the request stream (Exec would raise Stream_mismatch). The
   negative side — that ordering genuinely matters — is witnessed by the
   AGU emitting requests from *both* parallel arms (b and e plus c, d). *)
let test_agu_emits_parallel_arm_requests () =
  let p = Pipeline.compile ~check:true ~mode:Pipeline.Spec (Fixtures.fig4 ()) in
  let r =
    Dae_sim.Exec.run p
      ~args:(Fixtures.fig4_args 16)
      ~mem:(Fixtures.fig4_mem ())
  in
  check Alcotest.bool "some stores killed" true (r.Dae_sim.Exec.killed_stores > 0);
  check Alcotest.bool "some stores committed" true
    (r.Dae_sim.Exec.committed_stores > 0)

let () =
  Alcotest.run "speculation"
    [
      ( "decouple",
        [
          tc "fig1 slices" `Quick test_decouple_fig1;
          tc "DAE keeps synchronizing consume" `Quick
            test_decouple_dae_keeps_synchronizing_consume;
          tc "SPEC decouples fig1 fully" `Quick test_spec_fully_decouples_fig1;
        ] );
      ( "hoist (Alg 1)",
        [
          tc "fig4 spec map" `Quick test_hoist_fig4;
          tc "b before e from block 2" `Quick
            test_hoist_order_b_before_e_from_block2;
          tc "c before b from block 3 (§5.1.3)" `Quick
            test_hoist_c_before_b_from_block3;
        ] );
      ( "poison (Alg 2+3)",
        [
          tc "fig4 stats (steering)" `Quick test_poison_stats_fig4;
          tc "fig4 end-to-end, 8 inputs × 3 archs" `Quick
            test_fig4_end_to_end;
          tc "parallel arms both speculated" `Quick
            test_agu_emits_parallel_arm_requests;
        ] );
      ( "merge (§5.3)",
        [
          tc "identical blocks merge" `Quick test_merge_identical_poison_blocks;
          tc "different content kept" `Quick test_merge_respects_differing_content;
          tc "φ values respected" `Quick test_merge_respects_phi_values;
          tc "pipeline integration" `Quick test_merge_applied_in_pipeline;
        ] );
      ( "spec loads (§5.4)",
        [ tc "consume moved to head" `Quick test_spec_load_consume_moved ] );
    ]
