(* Every checked compile in this suite is also protocol-checked. *)
let () = Dae_analysis.Checker.install ()

(* The dynamic counterpart of the paper's §6 proof, as properties over
   randomized structured kernels:

   - sequential consistency: final memory and per-array commit order of the
     decoupled machine equal the sequential interpreter's (checked inside
     Machine.simulate on every run);
   - Lemma 6.1: the CU's store-value/kill stream matches the AGU's request
     stream mem-id by mem-id (Exec raises Stream_mismatch otherwise);
   - deadlock freedom: the co-simulation always terminates (Exec raises
     Deadlock on global non-progress);
   - the timing replay also terminates and ORACLE never loses to SPEC. *)

open Dae_workloads
module G = Gen

let archs =
  [ Dae_sim.Machine.Dae; Dae_sim.Machine.Spec; Dae_sim.Machine.Oracle ]

let simulate arch (g : Gen.t) =
  Dae_sim.Machine.simulate arch g.G.func ~invocations:[ g.G.args ]
    ~mem:(g.G.mem ())

let qcheck_props =
  let open QCheck in
  let gen_seed = small_nat in
  [
    Test.make ~name:"seq consistency + lemma 6.1 + no deadlock (default gen)"
      ~count:120 gen_seed
      (fun seed ->
        let g = G.generate ~seed () in
        List.for_all (fun arch -> ignore (simulate arch g); true) archs);
    Test.make ~name:"same, single-array kernels" ~count:60 gen_seed
      (fun seed ->
        let g = G.generate ~seed ~stored:1 ~index:1 ~max_stmts:8 () in
        List.for_all (fun arch -> ignore (simulate arch g); true) archs);
    Test.make ~name:"same, three stored arrays / deep bodies" ~count:40
      gen_seed
      (fun seed ->
        let g = G.generate ~seed ~stored:3 ~index:2 ~max_stmts:20 () in
        List.for_all (fun arch -> ignore (simulate arch g); true) archs);
    Test.make
      ~name:"same, with nested inner loops (Algorithm 1 must not enter them)"
      ~count:40 gen_seed
      (fun seed ->
        let g = G.generate ~seed ~inner_loops:true ~max_stmts:16 () in
        List.for_all (fun arch -> ignore (simulate arch g); true) archs);
    Test.make ~name:"ORACLE is at least as fast as SPEC" ~count:50 gen_seed
      (fun seed ->
        let g = G.generate ~seed () in
        let spec = simulate Dae_sim.Machine.Spec g in
        let oracle = simulate Dae_sim.Machine.Oracle g in
        oracle.Dae_sim.Machine.cycles <= spec.Dae_sim.Machine.cycles);
    Test.make ~name:"SPEC commits exactly the golden store count" ~count:60
      gen_seed
      (fun seed ->
        let g = G.generate ~seed () in
        let golden_mem = g.G.mem () in
        let golden =
          Dae_ir.Interp.run g.G.func ~args:g.G.args ~mem:golden_mem
        in
        let r = simulate Dae_sim.Machine.Spec g in
        r.Dae_sim.Machine.committed_stores
        = List.length (Dae_ir.Interp.stores golden));
    Test.make
      ~name:"speculation never changes architected state (Spec = Dae memory)"
      ~count:60 gen_seed
      (fun seed ->
        let g = G.generate ~seed () in
        let dae = simulate Dae_sim.Machine.Dae g in
        let spec = simulate Dae_sim.Machine.Spec g in
        Dae_ir.Interp.Memory.equal dae.Dae_sim.Machine.memory
          spec.Dae_sim.Machine.memory);
    Test.make ~name:"transformed slices stay verifier-clean" ~count:60
      gen_seed
      (fun seed ->
        let g = G.generate ~seed () in
        (* compile calls Verify.check_exn internally with check:true *)
        let p =
          Dae_core.Pipeline.compile ~check:true ~mode:Dae_core.Pipeline.Spec g.G.func
        in
        ignore p;
        true);
    Test.make ~name:"mis-speculation rate is a valid probability" ~count:40
      gen_seed
      (fun seed ->
        let g = G.generate ~seed () in
        let r = simulate Dae_sim.Machine.Spec g in
        r.Dae_sim.Machine.misspec_rate >= 0.
        && r.Dae_sim.Machine.misspec_rate <= 1.);
    Test.make ~name:"DAE mode never kills stores" ~count:40 gen_seed
      (fun seed ->
        let g = G.generate ~seed () in
        let r = simulate Dae_sim.Machine.Dae g in
        r.Dae_sim.Machine.killed_stores = 0);
  ]

(* Determinism: the same kernel and inputs give the same cycle count. *)
let test_cycle_determinism () =
  let g = G.generate ~seed:5 () in
  let a = simulate Dae_sim.Machine.Spec g in
  let b = simulate Dae_sim.Machine.Spec g in
  Alcotest.(check int) "deterministic cycles" a.Dae_sim.Machine.cycles
    b.Dae_sim.Machine.cycles

(* A data-LoD op (the paper's A[f(A[i])]) is not speculated: the compile
   succeeds, but the op stays synchronized — the AGU keeps a consume — and
   the whole thing still executes sequentially consistently. *)
let test_data_lod_unhoistable () =
  let f =
    Dae_ir.Parser.parse
      {|
      func dl(n: %0) {
      bb0:
        br bb1
      bb1:
        %1 = phi i32 [bb0: 0], [bb5: %2]
        %3 = cmp slt %1, %0
        br %3, bb2, bb3
      bb2:
        %4 = load A[%1] !mem0
        %5 = cmp sgt %4, 3
        %2 = add %1, 1
        br %5, bb4, bb5
      bb4:
        %6 = and %4, 7
        store A[%6], 1 !mem1
        br bb5
      bb5:
        br bb1
      bb3:
        ret
      }
      |}
  in
  (* store address %6 depends on the loaded value %4 *)
  let lod = Dae_core.Lod.analyze f in
  Alcotest.(check bool) "data LoD detected" true (Dae_core.Lod.has_data_lod lod);
  let p = Dae_core.Pipeline.compile ~check:true ~mode:Dae_core.Pipeline.Spec f in
  (* the op was not speculated: the AGU keeps the synchronizing consume *)
  let agu_consumes =
    Dae_ir.Func.fold_instrs p.Dae_core.Pipeline.agu
      (fun n (i : Dae_ir.Instr.t) ->
        match i.Dae_ir.Instr.kind with
        | Dae_ir.Instr.Consume_val _ -> n + 1
        | _ -> n)
      0
  in
  Alcotest.(check bool) "AGU still synchronized" true (agu_consumes > 0);
  (* and the decoupled execution remains sequentially consistent *)
  let mem =
    Dae_ir.Interp.Memory.create
      [ ("A", Array.init 16 (fun k -> (k * 5) mod 11)) ]
  in
  ignore
    (Dae_sim.Machine.simulate Dae_sim.Machine.Spec f
       ~invocations:[ [ ("n", Dae_ir.Types.Vint 16) ] ]
       ~mem)

let () =
  Alcotest.run "consistency"
    [
      ( "determinism",
        [
          Alcotest.test_case "cycles deterministic" `Quick
            test_cycle_determinism;
          Alcotest.test_case "data LoD rejected" `Quick
            test_data_lod_unhoistable;
        ] );
      ("props", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
