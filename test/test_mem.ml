(* Differential memory-model harness (the hierarchy PR's headline test).

   Three statements, each checked over the kernel test suite and over
   randomized generator CFGs × hierarchy configurations:

   (a) Scratchpad mode is bit-identical to the pre-hierarchy engine:
       cycles, stall partitions and kill/commit counters are unchanged by
       the hierarchy plumbing, recording the memory event log does not
       perturb timing, and the hierarchy-only stall causes stay zero.

   (b) The committed order is sequentially consistent under variable
       latency: every event log the engine records replays cleanly
       against the operational LSQ model in Mem_model (store lifecycle
       and program-order exits, forwarding observers, memory loads seeing
       exactly the program-order prefix of committed stores). WAR timing
       reorders are out of the model's scope — the memory is age-ordered,
       see mem_model.mli.

   (c) Retime ≡ Machine with the hierarchy enabled: the trace-driven
       re-timing path reproduces cycles, full partitions and counters for
       hierarchy configs too (cache/DRAM state is per-run, so the seam
       still holds).

   Every simulated point runs under a cycle budget: a hang becomes a
   failure naming the kernel × config point instead of wedging
   `dune runtest`. *)

open Dae_workloads
module M = Dae_sim.Machine
module R = Dae_sim.Retime
module Cfg = Dae_sim.Config
module Stats = Dae_sim.Stats
module Timing = Dae_sim.Timing
module Model = Dae_sim.Mem_model
module E = Dae_sim.Exec
module G = Gen

let tc = Alcotest.test_case
let check = Alcotest.check

(* Generous for kernels this size, small enough to fail fast on a hang. *)
let cycle_budget = 2_000_000

(* Two contrasted hierarchy points (the acceptance floor), plus a
   pathological third for the randomized sweep: a direct-mapped 2-set
   cache with a single MSHR and one DRAM bank maximizes MSHR backpressure,
   conflict misses and bank serialization. *)
let geom_tight =
  {
    Cfg.banks = 1;
    sets = 2;
    ways = 1;
    line_words = 2;
    hit_latency = 1;
    mshrs = 1;
    dram =
      {
        Cfg.dram_banks = 1;
        row_words = 4;
        t_row_hit = 6;
        t_row_miss = 15;
        t_bus = 2;
      };
  }

let geom_baseline = Cfg.default_geom

let geom_wide =
  {
    Cfg.banks = 4;
    sets = 32;
    ways = 4;
    line_words = 8;
    hit_latency = 2;
    mshrs = 8;
    dram =
      {
        Cfg.dram_banks = 8;
        row_words = 512;
        t_row_hit = 12;
        t_row_miss = 30;
        t_bus = 2;
      };
  }

let hier_cfgs =
  [
    { Cfg.default with Cfg.hierarchy = Cfg.Hierarchy geom_baseline };
    { Cfg.default with Cfg.hierarchy = Cfg.Hierarchy geom_tight };
    { Cfg.default with Cfg.hierarchy = Cfg.Hierarchy geom_wide };
    (* floor channel capacities × a contended hierarchy: the widest gap
       between issue admissibility and buffer space *)
    {
      Cfg.default with
      Cfg.hierarchy = Cfg.Hierarchy geom_tight;
      request_fifo_capacity = 1;
      value_fifo_capacity = 1;
      store_value_fifo_capacity = 1;
      load_queue_size = 2;
      store_queue_size = 2;
    };
  ]

let archs = [ M.Sta; M.Dae; M.Spec; M.Oracle ]
let dec_archs = [ M.Dae; M.Spec; M.Oracle ]

let point_label ?(kernel = "?") arch cfg =
  Fmt.str "%s/%s@%s" kernel (M.arch_name arch) (Cfg.key cfg)

let simulate ?record_mem ~label arch func ~invocations ~mem cfg =
  match
    M.simulate ~cfg ?record_mem ~max_cycles:cycle_budget arch func ~invocations
      ~mem
  with
  | r -> r
  | exception Timing.Timing_error msg ->
    Alcotest.failf "cycle budget blown at %s: %s" label msg

(* --- (a) scratchpad bit-equivalence --------------------------------------- *)

(* The hierarchy plumbing must be invisible in Scratchpad mode. The
   absolute numbers are pinned elsewhere (bench_quick.expected,
   test_stats's golden trace digest); here we pin the invariants the
   plumbing could break: observability off == observability on, and the
   hierarchy-only causes never fire. *)
let scratchpad_invisible (k : Kernels.t) () =
  let invocations = k.Kernels.invocations () in
  List.iter
    (fun arch ->
      let label = point_label ~kernel:k.Kernels.name arch Cfg.default in
      let plain =
        simulate ~label arch (k.Kernels.build ()) ~invocations
          ~mem:(k.Kernels.init_mem ()) Cfg.default
      in
      let recorded =
        simulate ~record_mem:true ~label arch (k.Kernels.build ())
          ~invocations ~mem:(k.Kernels.init_mem ()) Cfg.default
      in
      check Alcotest.int (label ^ " cycles unperturbed by record_mem")
        plain.M.cycles recorded.M.cycles;
      check Alcotest.bool (label ^ " stats unperturbed by record_mem") true
        (Stats.equal_keyed plain.M.stats recorded.M.stats);
      List.iter
        (fun (unit, t) ->
          check Alcotest.int
            (Fmt.str "%s %s: no mshr_full in scratchpad" label unit)
            0
            (Stats.get t Stats.Mshr_full);
          check Alcotest.int
            (Fmt.str "%s %s: no dram_bank in scratchpad" label unit)
            0
            (Stats.get t Stats.Dram_bank))
        plain.M.stats;
      (* the SC oracle must admit the scratchpad logs too *)
      match Model.check_run recorded.M.mem_events with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "%s: scratchpad SC violation: %a" label
          Model.pp_violation v)
    archs

(* --- (b) + (c): hierarchy points ------------------------------------------- *)

let partition_exact ~label (r : M.result) =
  List.iter
    (fun (unit, t) ->
      check Alcotest.int
        (Fmt.str "%s %s: causes partition cycles" label unit)
        r.M.cycles (Stats.total t))
    r.M.stats

let sc_clean ~label (r : M.result) =
  match Model.check_run r.M.mem_events with
  | [] -> ()
  | vs ->
    Alcotest.failf "%s: %d SC violation(s), first: %a" label (List.length vs)
      Model.pp_violation (List.hd vs)

let export_stats keyed =
  List.map
    (fun (unit, t) ->
      ( unit,
        List.map (fun c -> (Stats.cause_name c, Stats.get t c)) Stats.all_causes
      ))
    keyed

let hierarchy_kernel (k : Kernels.t) () =
  let invocations = k.Kernels.invocations () in
  List.iter
    (fun arch ->
      let plan = R.plan arch (k.Kernels.build ()) in
      let prepared =
        R.prepare plan ~invocations ~mem:(k.Kernels.init_mem ())
      in
      List.iter
        (fun cfg ->
          let label = point_label ~kernel:k.Kernels.name arch cfg in
          let fused =
            simulate ~record_mem:true ~label arch (k.Kernels.build ())
              ~invocations ~mem:(k.Kernels.init_mem ()) cfg
          in
          partition_exact ~label fused;
          sc_clean ~label fused;
          let retimed =
            match
              R.simulate ~record_mem:true ~max_cycles:cycle_budget ~cfg
                prepared
            with
            | r -> r
            | exception Timing.Timing_error msg ->
              Alcotest.failf "cycle budget blown re-timing %s: %s" label msg
          in
          check Alcotest.int (label ^ " retime == machine cycles")
            fused.M.cycles retimed.M.cycles;
          check Alcotest.bool (label ^ " retime == machine stats") true
            (Stats.equal_keyed fused.M.stats retimed.M.stats);
          check Alcotest.bool (label ^ " retime == machine event logs") true
            (fused.M.mem_events = retimed.M.mem_events);
          sc_clean ~label:(label ^ " (retimed)") retimed)
        hier_cfgs)
    (if k.Kernels.name = "mm" then archs else dec_archs)

(* The hierarchy must actually bite: under the tight geometry at least one
   kernel × arch point records misses (Mshr_full or Dram_bank cycles) —
   otherwise the whole harness is vacuously green. *)
let hierarchy_bites () =
  let hit = ref false in
  List.iter
    (fun (k : Kernels.t) ->
      let invocations = k.Kernels.invocations () in
      List.iter
        (fun arch ->
          let cfg =
            { Cfg.default with Cfg.hierarchy = Cfg.Hierarchy geom_tight }
          in
          let label = point_label ~kernel:k.Kernels.name arch cfg in
          let r =
            simulate ~label arch (k.Kernels.build ()) ~invocations
              ~mem:(k.Kernels.init_mem ()) cfg
          in
          List.iter
            (fun (_, t) ->
              if
                Stats.get t Stats.Mshr_full > 0
                || Stats.get t Stats.Dram_bank > 0
              then hit := true)
            r.M.stats)
        dec_archs)
    (Kernels.test_suite ());
  check Alcotest.bool
    "tight hierarchy produces mshr_full/dram_bank stalls somewhere" true !hit

(* --- qcheck: randomized kernels × hierarchy configs ------------------------ *)

(* Every generated point replays the event log against the operational
   model and re-times it; with 3 configs × (25 + 15) seeds this sweeps
   ≥ 100 kernel × hierarchy points (the acceptance floor is 50). *)
let qcheck_cfgs = List.filteri (fun i _ -> i < 3) hier_cfgs

let gen_point_ok (g : G.t) =
  List.for_all
    (fun arch ->
      let invocations = [ g.G.args ] in
      match R.plan arch (Dae_ir.Func.clone g.G.func) with
      | exception Dae_core.Pipeline.Compile_error _ -> true
      | plan -> (
        match R.prepare plan ~invocations ~mem:(g.G.mem ()) with
        | exception
            ( E.Deadlock _ | E.Stream_mismatch _ | E.Desync _
            | R.Check_failed _ ) ->
          true (* the functional half refuses the program: nothing to time *)
        | prepared ->
          List.for_all
            (fun cfg ->
              let label = point_label ~kernel:"gen" arch cfg in
              let fused =
                match
                  M.simulate ~cfg ~record_mem:true ~max_cycles:cycle_budget
                    arch g.G.func ~invocations ~mem:(g.G.mem ())
                with
                | r -> r
                | exception Timing.Timing_error msg ->
                  QCheck.Test.fail_reportf
                    "cycle budget blown at seed %d, %s: %s" g.G.seed label msg
              in
              (match Model.check_run fused.M.mem_events with
              | [] -> ()
              | v :: _ ->
                QCheck.Test.fail_reportf "SC violation at seed %d, %s: %a"
                  g.G.seed label Model.pp_violation v);
              List.iter
                (fun (unit, t) ->
                  if Stats.total t <> fused.M.cycles then
                    QCheck.Test.fail_reportf
                      "partition broken at seed %d, %s, unit %s: %d <> %d"
                      g.G.seed label unit (Stats.total t) fused.M.cycles)
                fused.M.stats;
              let retimed =
                match
                  R.simulate ~record_mem:true ~max_cycles:cycle_budget ~cfg
                    prepared
                with
                | r -> r
                | exception Timing.Timing_error msg ->
                  QCheck.Test.fail_reportf
                    "cycle budget blown re-timing seed %d, %s: %s" g.G.seed
                    label msg
              in
              if
                fused.M.cycles <> retimed.M.cycles
                || (not (Stats.equal_keyed fused.M.stats retimed.M.stats))
                || fused.M.mem_events <> retimed.M.mem_events
              then
                QCheck.Test.fail_reportf
                  "retime <> machine at seed %d, %s: %d vs %d cycles (stats \
                   %s)"
                  g.G.seed label fused.M.cycles retimed.M.cycles
                  (if export_stats fused.M.stats = export_stats retimed.M.stats
                   then "equal"
                   else "differ");
              true)
            qcheck_cfgs))
    dec_archs

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"SC oracle + retime equiv, randomized kernels" ~count:25
      small_nat
      (fun seed -> gen_point_ok (Fixtures.gen_cfg ~seed));
    Test.make ~name:"same, multi-array stores and inner loops" ~count:15
      small_nat
      (fun seed -> gen_point_ok (Fixtures.gen_cfg_multi ~seed ()));
  ]

let () =
  let suite = Kernels.test_suite () in
  Alcotest.run "mem"
    [
      ( "scratchpad bit-equivalence",
        List.map
          (fun (k : Kernels.t) ->
            tc k.Kernels.name `Quick (scratchpad_invisible k))
          suite );
      ( "hierarchy: SC + retime equivalence",
        tc "stalls observed" `Quick hierarchy_bites
        :: List.map
             (fun (k : Kernels.t) ->
               tc k.Kernels.name `Quick (hierarchy_kernel k))
             suite );
      ( "randomized kernels × hierarchy",
        List.map QCheck_alcotest.to_alcotest qcheck_props );
    ]
