(* Every checked compile in this suite is also protocol-checked. *)
let () = Dae_analysis.Checker.install ()

(* Constant folding, φ→select conversion, and the §10 vector-width timing
   extension. *)

open Dae_ir

let tc = Alcotest.test_case
let check = Alcotest.check

(* --- constant folding -------------------------------------------------------- *)

let interp_same (f : Func.t) ~args ~mem_spec transform =
  let mem1 = Interp.Memory.create mem_spec in
  let mem2 = Interp.Memory.create mem_spec in
  let r1 = Interp.run f ~args ~mem:mem1 in
  transform f;
  Verify.check_exn f;
  let r2 = Interp.run f ~args ~mem:mem2 in
  check Alcotest.bool "same memory" true (Interp.Memory.equal mem1 mem2);
  check Alcotest.bool "same result" true (r1.Interp.ret = r2.Interp.ret)

let test_fold_arithmetic () =
  let f =
    Parser.parse
      {|
      func cf(n: %0) {
      bb0:
        %1 = add 2, 3
        %2 = mul %1, 1
        %3 = add %2, 0
        %4 = sub %3, %3
        %5 = add %4, %0
        ret %5
      }
      |}
  in
  let folds = Const_fold.run f in
  check Alcotest.bool "folded several" true (folds >= 4);
  Verify.check_exn f;
  let r =
    Interp.run f ~args:[ ("n", Types.Vint 7) ] ~mem:(Interp.Memory.create [])
  in
  (* the whole chain folds to %0 *)
  check Alcotest.bool "value preserved" true (r.Interp.ret = Some (Types.Vint 7));
  check Alcotest.int "no instructions left" 0
    (Func.fold_instrs f (fun n _ -> n + 1) 0)

let test_fold_enables_branch_simplification () =
  let f =
    Parser.parse
      {|
      func cb(n: %0) {
      bb0:
        %1 = cmp slt 2, 5
        br %1, bb1, bb2
      bb1:
        store a[0], 1 !mem0
        ret
      bb2:
        store a[0], 2 !mem1
        ret
      }
      |}
  in
  ignore (Const_fold.run f);
  Simplify.run f;
  Verify.check_exn f;
  check Alcotest.int "collapsed to one block" 1 (List.length f.Func.layout)

let test_fold_identity_phi () =
  let f =
    Parser.parse
      {|
      func ip(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        br bb3
      bb2:
        br bb3
      bb3:
        %2 = phi i32 [bb1: %0], [bb2: %0]
        store a[0], %2 !mem0
        ret
      }
      |}
  in
  let folds = Const_fold.run f in
  check Alcotest.bool "φ folded" true (folds >= 1);
  Verify.check_exn f

let fold_preserves_semantics =
  QCheck.Test.make ~name:"const_fold preserves interpreter semantics"
    ~count:60 QCheck.small_nat
    (fun seed ->
      let g = Dae_workloads.Gen.generate ~seed () in
      let f = g.Dae_workloads.Gen.func in
      let mem1 = g.Dae_workloads.Gen.mem () in
      let mem2 = g.Dae_workloads.Gen.mem () in
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem1);
      ignore (Const_fold.run f);
      (match Verify.check f with
      | Ok () -> ()
      | Error _ -> QCheck.Test.fail_report "verifier rejected folded IR");
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem2);
      Interp.Memory.equal mem1 mem2)

(* --- φ → select ---------------------------------------------------------------- *)

let test_phi_to_select_diamond () =
  let f =
    Parser.parse
      {|
      func d(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        %2 = add %0, 10
        %3 = add %0, 20
        br %1, bb1, bb2
      bb1:
        br bb3
      bb2:
        br bb3
      bb3:
        %4 = phi i32 [bb1: %2], [bb2: %3]
        ret %4
      }
      |}
  in
  interp_same f ~args:[ ("n", Types.Vint 3) ] ~mem_spec:[] (fun f ->
      check Alcotest.int "one conversion" 1 (Phi_to_select.run f));
  (* now with the other input *)
  let r =
    Interp.run f ~args:[ ("n", Types.Vint 9) ] ~mem:(Interp.Memory.create [])
  in
  check Alcotest.bool "false arm selected" true
    (r.Interp.ret = Some (Types.Vint 29))

let test_phi_to_select_triangle () =
  let f =
    Parser.parse
      {|
      func t(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        %2 = add %0, 100
        br %1, bb1, bb2
      bb1:
        br bb2
      bb2:
        %3 = phi i32 [bb0: %0], [bb1: %2]
        ret %3
      }
      |}
  in
  interp_same f ~args:[ ("n", Types.Vint 2) ] ~mem_spec:[] (fun f ->
      check Alcotest.int "one conversion" 1 (Phi_to_select.run f))

let test_phi_to_select_skips_unavailable () =
  (* the incoming value is computed inside an arm: not available at the
     join, conversion must not fire *)
  let f =
    Parser.parse
      {|
      func u(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        %2 = load a[%0] !mem0
        br bb3
      bb2:
        br bb3
      bb3:
        %3 = phi i32 [bb1: %2], [bb2: 0]
        store b[0], %3 !mem1
        ret
      }
      |}
  in
  check Alcotest.int "no conversion" 0 (Phi_to_select.run f)

let test_phi_to_select_skips_loop_header () =
  let f = Fixtures.fig1 () in
  let before = Printer.func_to_string f in
  let n = Phi_to_select.run f in
  check Alcotest.int "loop header φ untouched" 0 n;
  check Alcotest.string "unchanged" before (Printer.func_to_string f)

let select_preserves_semantics =
  QCheck.Test.make ~name:"phi_to_select preserves interpreter semantics"
    ~count:60 QCheck.small_nat
    (fun seed ->
      let g = Dae_workloads.Gen.generate ~seed () in
      let f = g.Dae_workloads.Gen.func in
      let mem1 = g.Dae_workloads.Gen.mem () in
      let mem2 = g.Dae_workloads.Gen.mem () in
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem1);
      ignore (Phi_to_select.run f);
      (match Verify.check f with
      | Ok () -> ()
      | Error _ -> QCheck.Test.fail_report "verifier rejected converted IR");
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem2);
      Interp.Memory.equal mem1 mem2)

(* --- partial if-conversion -------------------------------------------------------- *)

let test_if_convert_pure_diamond () =
  let f =
    Parser.parse
      {|
      func ic(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        %2 = add %0, 10
        br bb3
      bb2:
        %3 = mul %0, 2
        br bb3
      bb3:
        %4 = phi i32 [bb1: %2], [bb2: %3]
        ret %4
      }
      |}
  in
  interp_same f ~args:[ ("n", Types.Vint 3) ] ~mem_spec:[] (fun f ->
      check Alcotest.int "one diamond flattened" 1 (If_convert.run f));
  check Alcotest.int "two blocks remain" 2 (List.length f.Func.layout);
  let r =
    Interp.run f ~args:[ ("n", Types.Vint 9) ] ~mem:(Interp.Memory.create [])
  in
  check Alcotest.bool "false arm value" true (r.Interp.ret = Some (Types.Vint 18))

let test_if_convert_triangle () =
  let f =
    Parser.parse
      {|
      func ict(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        %2 = add %0, 100
        br bb2
      bb2:
        %3 = phi i32 [bb0: %0], [bb1: %2]
        ret %3
      }
      |}
  in
  interp_same f ~args:[ ("n", Types.Vint 2) ] ~mem_spec:[] (fun f ->
      check Alcotest.int "triangle flattened" 1 (If_convert.run f))

let test_if_convert_keeps_effectful_arms () =
  let f =
    Parser.parse
      {|
      func ice(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        store a[0], 1 !mem0
        br bb2
      bb2:
        ret
      }
      |}
  in
  check Alcotest.int "store arm untouched" 0 (If_convert.run f)

let if_convert_preserves_semantics =
  QCheck.Test.make ~name:"if_convert preserves interpreter semantics"
    ~count:60 QCheck.small_nat
    (fun seed ->
      let g = Dae_workloads.Gen.generate ~seed () in
      let f = g.Dae_workloads.Gen.func in
      let mem1 = g.Dae_workloads.Gen.mem () in
      let mem2 = g.Dae_workloads.Gen.mem () in
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem1);
      ignore (If_convert.run f);
      (match Verify.check f with
      | Ok () -> ()
      | Error _ -> QCheck.Test.fail_report "verifier rejected if-converted IR");
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem2);
      Interp.Memory.equal mem1 mem2)

(* --- loop-invariant code motion ---------------------------------------------------- *)

let test_licm_hoists_fw_address_part () =
  (* fw's innermost loop computes i*n and i*n+k every iteration: both are
     invariant in j and must move out *)
  let k = Dae_workloads.Kernels.fw ~n:4 () in
  let f = k.Dae_workloads.Kernels.build () in
  let mem1 = k.Dae_workloads.Kernels.init_mem () in
  let mem2 = k.Dae_workloads.Kernels.init_mem () in
  ignore (Interp.run f ~args:[ ("n", Types.Vint 4) ] ~mem:mem1);
  let moved = Licm.run f in
  check Alcotest.bool "moved invariants" true (moved >= 2);
  Verify.check_exn f;
  ignore (Interp.run f ~args:[ ("n", Types.Vint 4) ] ~mem:mem2);
  check Alcotest.bool "semantics preserved" true (Interp.Memory.equal mem1 mem2)

let test_licm_leaves_variant_code () =
  let f = Fixtures.fig1 () in
  (* fig1's loop body has nothing invariant (everything depends on i) *)
  check Alcotest.int "nothing to move" 0 (Licm.run f)

let test_licm_never_moves_memory_ops () =
  let k = Dae_workloads.Kernels.fw ~n:4 () in
  let f = k.Dae_workloads.Kernels.build () in
  let mem_ops_in_loops f =
    let loops = Loops.compute f in
    List.fold_left
      (fun acc (l : Loops.loop) ->
        acc
        + List.fold_left
            (fun acc bid ->
              List.fold_left
                (fun acc (i : Instr.t) ->
                  match i.Instr.kind with
                  | Instr.Load _ | Instr.Store _ -> acc + 1
                  | _ -> acc)
                acc (Func.block f bid).Block.instrs)
            0 l.Loops.body)
      0 loops.Loops.loops
  in
  let before = mem_ops_in_loops f in
  ignore (Licm.run f);
  check Alcotest.bool "memory ops did not decrease below innermost count" true
    (mem_ops_in_loops f >= before - 0)

let licm_preserves_semantics =
  QCheck.Test.make ~name:"licm preserves interpreter semantics" ~count:60
    QCheck.small_nat
    (fun seed ->
      let g = Dae_workloads.Gen.generate ~seed ~inner_loops:true () in
      let f = g.Dae_workloads.Gen.func in
      let mem1 = g.Dae_workloads.Gen.mem () in
      let mem2 = g.Dae_workloads.Gen.mem () in
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem1);
      ignore (Licm.run f);
      (match Verify.check f with
      | Ok () -> ()
      | Error _ -> QCheck.Test.fail_report "verifier rejected LICM output");
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem2);
      Interp.Memory.equal mem1 mem2)

(* --- CSE ------------------------------------------------------------------------------ *)

let test_cse_eliminates_duplicates () =
  let f =
    Parser.parse
      {|
      func c(n: %0) {
      bb0:
        %1 = mul %0, 3
        %2 = mul %0, 3
        %3 = mul 3, %0
        %4 = add %1, %2
        %5 = add %4, %3
        ret %5
      }
      |}
  in
  let n = Cse.run f in
  check Alcotest.int "two duplicates (incl. commuted) eliminated" 2 n;
  Verify.check_exn f;
  let r =
    Interp.run f ~args:[ ("n", Types.Vint 5) ] ~mem:(Interp.Memory.create [])
  in
  check Alcotest.bool "value preserved (45)" true
    (r.Interp.ret = Some (Types.Vint 45))

let test_cse_respects_dominance_scope () =
  (* the same expression in two sibling arms must NOT be unified: neither
     dominates the other *)
  let f =
    Parser.parse
      {|
      func s(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        %2 = add %0, 7
        store a[0], %2 !mem0
        br bb3
      bb2:
        %3 = add %0, 7
        store a[1], %3 !mem1
        br bb3
      bb3:
        ret
      }
      |}
  in
  check Alcotest.int "sibling expressions kept" 0 (Cse.run f);
  Verify.check_exn f

let test_cse_cleans_fw_after_licm () =
  let k = Dae_workloads.Kernels.fw ~n:4 () in
  let f = k.Dae_workloads.Kernels.build () in
  let mem1 = k.Dae_workloads.Kernels.init_mem () in
  let mem2 = k.Dae_workloads.Kernels.init_mem () in
  ignore (Interp.run f ~args:[ ("n", Types.Vint 4) ] ~mem:mem1);
  ignore (Licm.run f);
  let n = Cse.run f in
  check Alcotest.bool "fw's duplicated i*n unified" true (n >= 1);
  Verify.check_exn f;
  ignore (Interp.run f ~args:[ ("n", Types.Vint 4) ] ~mem:mem2);
  check Alcotest.bool "semantics preserved" true (Interp.Memory.equal mem1 mem2)

let cse_preserves_semantics =
  QCheck.Test.make ~name:"cse preserves interpreter semantics" ~count:60
    QCheck.small_nat
    (fun seed ->
      let g = Dae_workloads.Gen.generate ~seed ~inner_loops:true () in
      let f = g.Dae_workloads.Gen.func in
      let mem1 = g.Dae_workloads.Gen.mem () in
      let mem2 = g.Dae_workloads.Gen.mem () in
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem1);
      ignore (Cse.run f);
      (match Verify.check f with
      | Ok () -> ()
      | Error _ -> QCheck.Test.fail_report "verifier rejected CSE output");
      ignore (Interp.run f ~args:g.Dae_workloads.Gen.args ~mem:mem2);
      Interp.Memory.equal mem1 mem2)

(* --- DOT export --------------------------------------------------------------------- *)

let test_dot_export_structure () =
  let p = Dae_core.Pipeline.compile ~check:true ~mode:Dae_core.Pipeline.Spec (Fixtures.fig4 ()) in
  let dot = Dot.to_string p.Dae_core.Pipeline.cu in
  check Alcotest.bool "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  (* every block appears as a node *)
  List.iter
    (fun bid ->
      let needle = Fmt.str "bb%d [" bid in
      let found =
        let n = String.length dot and m = String.length needle in
        let rec go i = i + m <= n && (String.sub dot i m = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool (Fmt.str "node bb%d present" bid) true found)
    p.Dae_core.Pipeline.cu.Func.layout

(* --- vectorized speculation (§10) ----------------------------------------------- *)

let run_spec ?cfg (k : Dae_workloads.Kernels.t) =
  Dae_sim.Machine.simulate ?cfg Dae_sim.Machine.Spec
    (k.Dae_workloads.Kernels.build ())
    ~invocations:(k.Dae_workloads.Kernels.invocations ())
    ~mem:(k.Dae_workloads.Kernels.init_mem ())

let test_vector_width_helps_multi_request_kernels () =
  (* bc pushes several sigma-channel requests per iteration: a wider
     request vector lifts the per-channel port limit *)
  let g = Dae_workloads.Graph.small ~nodes:48 ~edges:300 () in
  let k = Dae_workloads.Kernels.bc ~graph:g () in
  let cycles w =
    (run_spec ~cfg:{ Dae_sim.Config.default with Dae_sim.Config.vector_width = w } k)
      .Dae_sim.Machine.cycles
  in
  check Alcotest.bool "width 4 beats width 1" true (cycles 4 < cycles 1)

let test_vector_width_preserves_correctness () =
  List.iter
    (fun (k : Dae_workloads.Kernels.t) ->
      let r =
        run_spec
          ~cfg:{ Dae_sim.Config.default with Dae_sim.Config.vector_width = 8 }
          k
      in
      match k.Dae_workloads.Kernels.check r.Dae_sim.Machine.memory with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s @ width 8: %s" k.Dae_workloads.Kernels.name m)
    (Dae_workloads.Kernels.test_suite ())

let test_vector_width_never_slower =
  (* not strictly monotone: wider acceptance shifts LSQ occupancy patterns
     by a few cycles — the claim is "no meaningful regression" *)
  QCheck.Test.make ~name:"wider vectors never meaningfully slow SPEC down"
    ~count:25 QCheck.small_nat
    (fun seed ->
      let g = Dae_workloads.Gen.generate ~seed () in
      let sim w =
        (Dae_sim.Machine.simulate
           ~cfg:{ Dae_sim.Config.default with Dae_sim.Config.vector_width = w }
           Dae_sim.Machine.Spec g.Dae_workloads.Gen.func
           ~invocations:[ g.Dae_workloads.Gen.args ]
           ~mem:(g.Dae_workloads.Gen.mem ()))
          .Dae_sim.Machine.cycles
      in
      let w1 = sim 1 and w4 = sim 4 in
      w4 <= w1 + (w1 / 20) + 20)

let () =
  Alcotest.run "passes"
    [
      ( "const-fold",
        [
          tc "arithmetic chains" `Quick test_fold_arithmetic;
          tc "exposes branch folding" `Quick
            test_fold_enables_branch_simplification;
          tc "identity φ" `Quick test_fold_identity_phi;
        ] );
      ( "phi-to-select",
        [
          tc "diamond" `Quick test_phi_to_select_diamond;
          tc "triangle" `Quick test_phi_to_select_triangle;
          tc "unavailable value skipped" `Quick
            test_phi_to_select_skips_unavailable;
          tc "loop header untouched" `Quick test_phi_to_select_skips_loop_header;
        ] );
      ( "if-convert",
        [
          tc "pure diamond" `Quick test_if_convert_pure_diamond;
          tc "triangle" `Quick test_if_convert_triangle;
          tc "effectful arm kept" `Quick test_if_convert_keeps_effectful_arms;
        ] );
      ( "licm",
        [
          tc "hoists fw address parts" `Quick test_licm_hoists_fw_address_part;
          tc "leaves variant code" `Quick test_licm_leaves_variant_code;
          tc "memory ops stay" `Quick test_licm_never_moves_memory_ops;
        ] );
      ( "cse",
        [
          tc "duplicates eliminated" `Quick test_cse_eliminates_duplicates;
          tc "dominance scope respected" `Quick
            test_cse_respects_dominance_scope;
          tc "fw after licm" `Quick test_cse_cleans_fw_after_licm;
        ] );
      ("dot", [ tc "export structure" `Quick test_dot_export_structure ]);
      ( "vector (§10)",
        [
          tc "width helps multi-request kernels" `Quick
            test_vector_width_helps_multi_request_kernels;
          tc "width 8 stays correct on all kernels" `Quick
            test_vector_width_preserves_correctness;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ fold_preserves_semantics; select_preserves_semantics;
            if_convert_preserves_semantics; licm_preserves_semantics;
            cse_preserves_semantics; test_vector_width_never_slower ] );
    ]
