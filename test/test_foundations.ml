(* Every checked compile in this suite is also protocol-checked. *)
let () = Dae_analysis.Checker.install ()

(* Deeper unit coverage of the analysis substrate: traversal orders,
   dominance properties, dominance frontiers, SSA repair, and the steering
   flag network of Algorithm 3 case 2. *)

open Dae_ir
open Dae_core

let tc = Alcotest.test_case
let check = Alcotest.check

(* --- traversal orders --------------------------------------------------------- *)

let test_rpo_starts_at_entry () =
  let f = Fixtures.fig4 () in
  (match Order.rpo f with
  | entry :: _ -> check Alcotest.int "entry first" f.Func.entry entry
  | [] -> Alcotest.fail "empty rpo");
  check Alcotest.int "rpo covers reachable blocks"
    (List.length f.Func.layout)
    (List.length (Order.rpo f))

let test_rpo_is_topological_on_loop_dag () =
  let f = Fixtures.fig4 () in
  let loops = Loops.compute f in
  let order =
    Order.rpo_ignoring_backedges f ~backedges:loops.Loops.backedges 1
  in
  (* for every forward edge (u,v) inside the order, u precedes v *)
  let pos b =
    let rec go i = function
      | [] -> -1
      | x :: _ when x = b -> i
      | _ :: r -> go (i + 1) r
    in
    go 0 order
  in
  List.iter
    (fun (u, v) ->
      if
        (not (Loops.is_backedge loops ~src:u ~dst:v))
        && pos u >= 0 && pos v >= 0
      then
        check Alcotest.bool (Fmt.str "edge %d->%d respects order" u v) true
          (pos u < pos v))
    (Func.edges f)

let test_postorder_skip () =
  let f = Fixtures.fig4 () in
  let order =
    Order.postorder ~skip:(fun ~src:_ ~dst -> dst = 6) ~succs:(Func.successors f) 1
  in
  check Alcotest.bool "skipped subtree absent" false (List.mem 6 order)

(* --- dominance properties ------------------------------------------------------ *)

let dominance_is_partial_order =
  QCheck.Test.make ~name:"dominance is reflexive, antisymmetric, transitive"
    ~count:40 QCheck.small_nat
    (fun seed ->
      let g = Dae_workloads.Gen.generate ~seed ~max_stmts:10 () in
      let f = g.Dae_workloads.Gen.func in
      let dom = Dom.compute f in
      let blocks = f.Func.layout in
      List.for_all (fun b -> Dom.dominates dom b b) blocks
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 (not (Dom.dominates dom a b && Dom.dominates dom b a))
                 || a = b)
               blocks)
           blocks
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 List.for_all
                   (fun c ->
                     (not (Dom.dominates dom a b && Dom.dominates dom b c))
                     || Dom.dominates dom a c)
                   blocks)
               blocks)
           blocks)

let idom_strictly_dominates =
  QCheck.Test.make ~name:"idom strictly dominates its node" ~count:40
    QCheck.small_nat
    (fun seed ->
      let g = Dae_workloads.Gen.generate ~seed ~max_stmts:10 () in
      let f = g.Dae_workloads.Gen.func in
      let dom = Dom.compute f in
      List.for_all
        (fun b ->
          b = f.Func.entry
          ||
          match Dom.idom dom b with
          | Some p -> p = b || Dom.strictly_dominates dom p b
          | None -> true)
        f.Func.layout)

let test_dominance_frontier_diamond () =
  let f =
    Parser.parse
      {|
      func df(n: %0) {
      bb0:
        %1 = cmp slt %0, 5
        br %1, bb1, bb2
      bb1:
        br bb3
      bb2:
        br bb3
      bb3:
        ret
      }
      |}
  in
  let dom = Dom.compute f in
  let df = Ssa_repair.dominance_frontier f dom in
  let frontier b = try List.sort compare (Hashtbl.find df b) with Not_found -> [] in
  check (Alcotest.list Alcotest.int) "DF(bb1) = {bb3}" [ 3 ] (frontier 1);
  check (Alcotest.list Alcotest.int) "DF(bb2) = {bb3}" [ 3 ] (frontier 2);
  check (Alcotest.list Alcotest.int) "DF(bb0) empty" [] (frontier 0)

(* --- SSA repair ------------------------------------------------------------------ *)

let test_ssa_repair_inserts_phi_at_join () =
  let f =
    Parser.parse
      {|
      func sr(n: %0) {
      bb0:
        %1 = add %0, 1
        %9 = cmp slt %0, 5
        br %9, bb1, bb2
      bb1:
        br bb3
      bb2:
        br bb3
      bb3:
        store a[0], %1 !mem0
        ret
      }
      |}
  in
  (* pretend %1 now has distinct definitions at the ends of bb1 and bb2 *)
  let d1 = Func.fresh_vid f in
  let d2 = Func.fresh_vid f in
  Block.append_instr (Func.block f 1)
    { Instr.id = d1; kind = Instr.Binop (Instr.Add, Types.Var 0, Types.Cst (Types.Int 10)) };
  Block.append_instr (Func.block f 2)
    { Instr.id = d2; kind = Instr.Binop (Instr.Add, Types.Var 0, Types.Cst (Types.Int 20)) };
  Block.remove_instr (Func.block f 0) ~id:1;
  Ssa_repair.rewrite_uses f ~old_vid:1
    ~defs:[ (1, Types.Var d1); (2, Types.Var d2) ]
    ~ty:Types.I32 ();
  Verify.check_exn f;
  check Alcotest.int "φ inserted at the join" 1
    (List.length (Func.block f 3).Block.phis);
  (* semantics: n=3 takes bb1 → store 13; n=9 takes bb2 → store 29 *)
  let run n =
    let mem = Interp.Memory.create [ ("a", [| 0 |]) ] in
    ignore (Interp.run f ~args:[ ("n", Types.Vint n) ] ~mem);
    (Interp.Memory.array mem "a").(0)
  in
  check Alcotest.int "true path" 13 (run 3);
  check Alcotest.int "false path" 29 (run 9)

let test_ssa_repair_dominating_def_needs_no_phi () =
  let f =
    Parser.parse
      {|
      func sd(n: %0) {
      bb0:
        %1 = add %0, 1
        br bb1
      bb1:
        store a[0], %1 !mem0
        ret
      }
      |}
  in
  let d = Func.fresh_vid f in
  Block.append_instr (Func.block f 0)
    { Instr.id = d; kind = Instr.Binop (Instr.Mul, Types.Var 0, Types.Cst (Types.Int 2)) };
  Block.remove_instr (Func.block f 0) ~id:1;
  Ssa_repair.rewrite_uses f ~old_vid:1 ~defs:[ (0, Types.Var d) ]
    ~ty:Types.I32 ();
  Verify.check_exn f;
  check Alcotest.int "no φ needed" 0 (List.length (Func.block f 1).Block.phis)

(* --- steering flags (Algorithm 3, case 2) ---------------------------------------- *)

let test_steer_flag_values () =
  (* fig4: flag for spec_bb = paper block 3 (bb4), queried at block 5 (bb6):
     the φ network must yield true on paths through bb4 and false through
     bb3. We check it semantically: build the flag, then interpret the
     function and record the flag value per iteration. *)
  let f = Fixtures.fig4 () in
  let steer = Steer.create f in
  let flag = Steer.flag_at steer ~spec_bb:4 ~block:6 in
  (match flag with
  | Types.Var _ -> () (* must be a φ, not a constant: both path kinds exist *)
  | Types.Cst _ -> Alcotest.fail "flag should not be constant at bb6");
  (* store the flag to a scratch array at bb6 so the interpreter exposes it *)
  let b6 = Func.block f 6 in
  let flag_int = Func.fresh_vid f in
  Block.append_instr b6
    { Instr.id = flag_int;
      kind = Instr.Select (flag, Types.Cst (Types.Int 1), Types.Cst (Types.Int 0)) };
  Block.append_instr b6
    { Instr.id = Func.fresh_vid f;
      kind =
        Instr.Store
          { arr = "flags"; idx = Types.Var 1; value = Types.Var flag_int;
            mem = Func.fresh_mem f } };
  Verify.check_exn f;
  let n = 16 in
  let mem =
    Interp.Memory.create
      [ ("A", Array.init n (fun k -> (k * 7) mod 30));
        ("flags", Array.make n (-1)) ]
  in
  let r = Interp.run f ~args:[ ("n", Types.Vint n) ] ~mem in
  (* reconstruct expected flags from the dynamic block path: iteration i
     starts at the (i+1)-th visit of the header (bb1) *)
  let flags = Interp.Memory.array mem "flags" in
  let iter = ref (-1) in
  let saw4 = ref false in
  let checked = ref 0 in
  Array.iter
    (fun bid ->
      match bid with
      | 1 ->
        incr iter;
        saw4 := false
      | 4 -> saw4 := true
      | 6 ->
        if !iter >= 0 && !iter < n then begin
          incr checked;
          check Alcotest.int
            (Fmt.str "flag at iteration %d" !iter)
            (if !saw4 then 1 else 0)
            flags.(!iter)
        end
      | _ -> ())
    r.Interp.block_trace;
  check Alcotest.bool "some iterations reached bb6" true (!checked > 0)

(* --- channel accounting ------------------------------------------------------------ *)

let test_load_subscribers_spec_vs_dae () =
  let f = Fixtures.fig1 () in
  let dae = Pipeline.compile ~check:true ~mode:Pipeline.Dae f in
  let spec = Pipeline.compile ~check:true ~mode:Pipeline.Spec f in
  let subs (p : Pipeline.t) =
    List.concat_map (fun (_, s) -> s) p.Pipeline.load_subscribers
  in
  check Alcotest.int "DAE: AGU and CU subscribe" 2 (List.length (subs dae));
  check Alcotest.int "SPEC: only the CU subscribes" 1
    (List.length (subs spec))

let () =
  Alcotest.run "foundations"
    [
      ( "orders",
        [
          tc "rpo from entry" `Quick test_rpo_starts_at_entry;
          tc "rpo is topological" `Quick test_rpo_is_topological_on_loop_dag;
          tc "postorder skip" `Quick test_postorder_skip;
        ] );
      ( "dominance",
        [ tc "frontier of a diamond" `Quick test_dominance_frontier_diamond ]
        @ List.map QCheck_alcotest.to_alcotest
            [ dominance_is_partial_order; idom_strictly_dominates ] );
      ( "ssa-repair",
        [
          tc "φ at join" `Quick test_ssa_repair_inserts_phi_at_join;
          tc "dominating def, no φ" `Quick
            test_ssa_repair_dominating_def_needs_no_phi;
        ] );
      ("steer", [ tc "flag network semantics" `Quick test_steer_flag_values ]);
      ( "channels",
        [ tc "subscribers reflect decoupling" `Quick
            test_load_subscribers_spec_vs_dae ] );
    ]
