(* The incremental event-wheel scheduler, held to bit-identical
   equivalence with the seed's rescan-everything calendar it replaced:
   for every kernel of the test suite and for randomized generator CFGs,
   across all four architectures and a spread of configurations —
   scratchpad, capacity floors, two memory-hierarchy points (the default
   cache and a starved 1-bank/2-MSHR geometry over a slow DRAM) and
   invalid capacity-0 boundary probes run with validation off —
   [Machine.simulate ~scheduler:Event_wheel] must reproduce
   [~scheduler:Seed_calendar]'s cycle counts, complete stall partitions,
   kill/commit counters and deadlock verdicts (message included)
   exactly. *)

open Dae_workloads
module M = Dae_sim.Machine
module Cfg = Dae_sim.Config
module Stats = Dae_sim.Stats
module Timing = Dae_sim.Timing
module E = Dae_sim.Exec
module G = Gen

let tc = Alcotest.test_case
let check = Alcotest.check
let archs = [ M.Sta; M.Dae; M.Spec; M.Oracle ]

let starved_geom =
  {
    Cfg.default_geom with
    Cfg.banks = 1;
    ways = 1;
    mshrs = 2;
    dram =
      {
        Cfg.dram_banks = 2;
        row_words = 128;
        t_row_hit = 30;
        t_row_miss = 80;
        t_bus = 8;
      };
  }

(* default; capacity floors; the two hierarchy points; two invalid
   capacity-0 boundary probes (one of them under the cache hierarchy,
   pushing the deadlock path through the wheel's bank/MSHR buckets) *)
let cfgs =
  [
    Cfg.default;
    {
      Cfg.default with
      Cfg.request_fifo_capacity = 1;
      value_fifo_capacity = 1;
      store_value_fifo_capacity = 1;
      load_queue_size = 1;
      store_queue_size = 2;
    };
    { Cfg.default with Cfg.hierarchy = Cfg.Hierarchy Cfg.default_geom };
    { Cfg.default with Cfg.hierarchy = Cfg.Hierarchy starved_geom };
    { Cfg.default with Cfg.request_fifo_capacity = 0 };
    {
      Cfg.default with
      Cfg.hierarchy = Cfg.Hierarchy Cfg.default_geom;
      value_fifo_capacity = 0;
      store_queue_size = 2;
    };
  ]

let export_stats keyed =
  List.map
    (fun (unit, t) ->
      ( unit,
        List.map (fun c -> (Stats.cause_name c, Stats.get t c)) Stats.all_causes
      ))
    keyed

type verdict =
  | Done of int * (string * (string * int) list) list * int * int
  | Dead of string  (** deadlock, message included: verdicts must agree *)
  | Refused  (** the functional half itself rejects the program *)

let verdict ~scheduler arch func ~invocations ~mem cfg =
  match
    M.simulate ~cfg ~validate:false ~scheduler arch (Dae_ir.Func.clone func)
      ~invocations ~mem
  with
  | r ->
    Done
      ( r.M.cycles,
        export_stats r.M.stats,
        r.M.killed_stores,
        r.M.committed_stores )
  | exception Timing.Deadlock msg -> Dead msg
  | exception (E.Deadlock _ | E.Stream_mismatch _ | E.Desync _) -> Refused
  | exception M.Check_failed _ -> Refused
  | exception Dae_core.Pipeline.Compile_error _ -> Refused

let pp_verdict ppf = function
  | Done (c, _, k, m) -> Fmt.pf ppf "done(%d cyc, %d killed, %d committed)" c k m
  | Dead msg -> Fmt.pf ppf "deadlock(%s)" msg
  | Refused -> Fmt.pf ppf "refused"

let verdict_t = Alcotest.testable pp_verdict ( = )

(* --- test-suite kernels: every arch, every config, both schedulers ------- *)

let test_kernel name () =
  let k =
    match Kernels.by_name (Kernels.test_suite ()) name with
    | Some k -> k
    | None -> Alcotest.failf "kernel %s not in test suite" name
  in
  let invocations = k.Kernels.invocations () in
  List.iter
    (fun arch ->
      List.iter
        (fun cfg ->
          let label =
            Fmt.str "%s/%s@%s" name (M.arch_name arch) (Cfg.key cfg)
          in
          let run scheduler =
            verdict ~scheduler arch (k.Kernels.build ()) ~invocations
              ~mem:(k.Kernels.init_mem ()) cfg
          in
          check verdict_t label
            (run Timing.Seed_calendar)
            (run Timing.Event_wheel))
        cfgs)
    archs

(* --- qcheck: the same statement over randomized generator CFGs ----------- *)

let gen_wheel_equiv (g : G.t) =
  List.for_all
    (fun arch ->
      let invocations = [ g.G.args ] in
      List.for_all
        (fun cfg ->
          let run scheduler =
            verdict ~scheduler arch g.G.func ~invocations ~mem:(g.G.mem ())
              cfg
          in
          run Timing.Seed_calendar = run Timing.Event_wheel)
        cfgs)
    archs

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"wheel == seed calendar, randomized CFGs" ~count:40
      small_nat (fun seed -> gen_wheel_equiv (Fixtures.gen_cfg ~seed));
    Test.make ~name:"same, stores on several arrays and inner loops" ~count:20
      small_nat (fun seed -> gen_wheel_equiv (Fixtures.gen_cfg_multi ~seed ()));
  ]

let () =
  let kernel_cases =
    List.map
      (fun (k : Kernels.t) ->
        tc k.Kernels.name `Quick (test_kernel k.Kernels.name))
      (Kernels.test_suite ())
  in
  Alcotest.run "wheel"
    [
      ("test-suite kernels", kernel_cases);
      ("randomized CFGs", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
