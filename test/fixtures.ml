(* Shared test fixtures: the paper's running examples as parseable IR,
   plus the temp-directory scaffolding for tests that touch the on-disk
   result cache. *)

open Dae_ir

(* Run [f dir] against a fresh cache directory under the system temp dir
   and remove it afterwards, whatever happens — cache tests must never
   dirty the working tree's _daec_cache. *)
let with_cache_dir f =
  let dir = Filename.temp_file "daec_cache" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rm_rf () =
    let cache = Dae_sim.Cache.create ~dir () in
    ignore (Dae_sim.Cache.clear cache);
    Array.iter
      (fun s ->
        let p = Filename.concat dir s in
        if Sys.is_directory p then Sys.rmdir p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  in
  Fun.protect ~finally:rm_rf (fun () -> f dir)

(* Figure 4(a): paper block 1 = bb2, 2 = bb3 (request a, LoD source),
   3 = bb4 (LoD source, 3-way switch), 4 = bb5 (request c),
   5 = bb6 (request b, LoD source), 6 = bb7 (request d), 7 = bb8 (request e),
   latch = bb9. Requests: a=mem0, c=mem3, d=mem4, b=mem5, e=mem7. *)
let fig4_src =
  {|
  func fig4(n: %0) {
  bb0:
    br bb1
  bb1:
    %1 = phi i32 [bb0: 0], [bb9: %2]
    %3 = cmp slt %1, %0
    br %3, bb2, bb10
  bb2:
    %4 = and %1, 1
    %5 = cmp eq %4, 0
    br %5, bb3, bb4
  bb3:
    store A[%1], 7 !mem0
    %6 = load A[%1] !mem1
    %7 = cmp sgt %6, 10
    br %7, bb6, bb9
  bb4:
    %8 = load A[%1] !mem2
    %9 = srem %8, 3
    switch %9, bb5, bb6, bb7
  bb5:
    store A[%1], 8 !mem3
    br bb6
  bb7:
    store A[%1], 9 !mem4
    br bb9
  bb6:
    store A[%1], 10 !mem5
    %10 = load A[%1] !mem6
    %11 = cmp sgt %10, 20
    br %11, bb8, bb9
  bb8:
    store A[%1], 11 !mem7
    br bb9
  bb9:
    %2 = add %1, 1
    br bb1
  bb10:
    ret
  }
  |}

let fig4 () =
  let f = Parser.parse fig4_src in
  Verify.check_exn f;
  f

(* An input memory for fig4: values chosen so different iterations take
   different paths through all three LoD branches. *)
let fig4_mem ?(n = 32) ?(seed = 3) () =
  let rng = Dae_workloads.Rng.create seed in
  Interp.Memory.create
    [ ("A", Array.init n (fun _ -> Dae_workloads.Rng.int rng 30)) ]

let fig4_args n = [ ("n", Types.Vint n) ]

(* The randomized-CFG generator profiles shared by the qcheck properties
   in test_retime, test_mem, test_sizing and test_leak — one place to
   widen the envelope for every differential property at once. [gen_cfg]
   is the default kernel; [gen_cfg_multi] stores to several arrays with
   longer bodies and (by default) small inner loops, whose requests stay
   synchronized — partial decoupling the properties must survive. *)
let gen_cfg ~seed = Dae_workloads.Gen.generate ~seed ()

let gen_cfg_multi ?(inner_loops = true) ~seed () =
  Dae_workloads.Gen.generate ~seed ~stored:2 ~max_stmts:14 ~inner_loops ()

(* Speculative-leakage gadget for the taint/poison interplay tests: the
   guard loads the stored array (an LoD source), so speculation hoists
   both the secret load b[i] and the store whose *address* is computed
   from that secret. On iterations where the guard is false the store is
   poison-killed — but its request, secret-dependent address and all,
   already reached the request channel, and b[i] was read even though the
   golden execution never touches it. *)
let leak_gadget () =
  let b = Builder.create ~name:"gadget" ~params:[ "n" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let g = Builder.load b "a" i in
        let c = Builder.cmp b Instr.Sgt g (Builder.int 0) in
        Builder.if_ b c
          ~then_:(fun b ->
            let s = Builder.load b "b" i in
            let idx = Builder.binop b Instr.And s (Builder.int 7) in
            Builder.store b "a" ~idx ~value:(Builder.int 1))
          ();
        [])
  in
  Builder.seal b

(* The non-speculative twin: same secret-dependent store address, but no
   guard — nothing is hoisted, every read is architectural, so the taint
   pass must call it clean and the witness search must come up empty. *)
let leak_gadget_twin () =
  let b = Builder.create ~name:"gadget_twin" ~params:[ "n" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let s = Builder.load b "b" i in
        let idx = Builder.binop b Instr.And s (Builder.int 7) in
        Builder.store b "a" ~idx ~value:(Builder.int 1);
        [])
  in
  Builder.seal b

let leak_gadget_n = 24

(* a: mostly non-positive guards (plenty of kills); b: the secrets *)
let leak_gadget_mem ?(seed = 11) () =
  let rng = Dae_workloads.Rng.create seed in
  Interp.Memory.create
    [
      ( "a",
        Array.init leak_gadget_n (fun _ ->
            if Dae_workloads.Rng.int rng 4 = 0 then 1 else 0) );
      ( "b",
        Array.init leak_gadget_n (fun _ -> Dae_workloads.Rng.int rng 1000) );
    ]

let leak_gadget_args = [ ("n", Types.Vint leak_gadget_n) ]

(* Figure 1(b)/(c): the running example `if (A[i] > 0) A[i] = 0`. *)
let fig1 () =
  let b = Builder.create ~name:"fig1" ~params:[ "n" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let v = Builder.load b "A" i in
        let c = Builder.cmp b Instr.Sgt v (Builder.int 0) in
        Builder.if_ b c
          ~then_:(fun b -> Builder.store b "A" ~idx:i ~value:(Builder.int 0))
          ();
        [])
  in
  Builder.seal b
