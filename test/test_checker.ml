(* Validation of the inter-slice soundness checker (lib/analysis).

   The mutation harness compiles Figure 4 cleanly, injects one protocol
   bug into the pre-cleanup snapshots (or the final AGU), and asserts the
   checker flags it with a correctly-located diagnostic — one test per
   bug class. The qcheck property closes the other direction: randomly
   generated kernels compile checker-clean in both modes, so the
   diagnostics above are signal, not noise. *)

open Dae_ir
module Pipeline = Dae_core.Pipeline
module Poison = Dae_core.Poison
module Hoist = Dae_core.Hoist
module Checker = Dae_analysis.Checker
module Diag = Dae_analysis.Diag
module G = Dae_workloads.Gen
module Kernels = Dae_workloads.Kernels

let check = Alcotest.check

let compile_fig4 () = Pipeline.compile ~mode:Pipeline.Spec (Fixtures.fig4 ())

let spec_info (p : Pipeline.t) =
  match p.Pipeline.spec with
  | Some s -> s
  | None -> Alcotest.fail "expected speculation to apply"

(* First instruction of [f] satisfying [pred], with its block. *)
let find_instr (f : Func.t) pred =
  let found = ref None in
  List.iter
    (fun (b : Block.t) ->
      if !found = None then
        List.iter
          (fun (i : Instr.t) ->
            if !found = None && pred i then found := Some (b, i))
          b.Block.instrs)
    (Func.blocks_in_layout f);
  match !found with
  | Some x -> x
  | None -> Alcotest.fail "mutation target not found"

let has ?block ?mem ~analysis ~sev diags =
  List.exists
    (fun (d : Diag.t) ->
      d.Diag.analysis = analysis
      && d.Diag.sev = sev
      && (match block with None -> true | Some b -> d.Diag.block = Some b)
      && match mem with None -> true | Some m -> d.Diag.mem = Some m)
    diags

let assert_flagged name ?block ?mem ~analysis p =
  let diags = Checker.run p in
  if not (has ?block ?mem ~analysis ~sev:Diag.Error diags) then
    Alcotest.failf "%s: expected a located %s error, got:@.%a" name
      (Diag.analysis_name analysis)
      Diag.pp_report diags

(* Baseline: the unmutated compile is diagnostic-free, so every flag
   below is caused by its injected bug alone. *)
let test_fig4_clean () =
  check Alcotest.int "clean compile has no diagnostics" 0
    (List.length (Checker.run (compile_fig4 ())))

(* Bug 1: the AGU never requests a store the CU resolves. *)
let test_mut_drop_agu_send () =
  let p = compile_fig4 () in
  let b, i =
    find_instr p.Pipeline.snap_agu (fun i ->
        match i.Instr.kind with
        | Instr.Send_st_addr { mem = 0; _ } -> true
        | _ -> false)
  in
  Block.remove_instr b ~id:i.Instr.id;
  assert_flagged "drop AGU send" ~analysis:Diag.Balance p

(* Bug 2: the CU never produces a value the AGU requested. *)
let test_mut_drop_cu_produce () =
  let p = compile_fig4 () in
  let b, i =
    find_instr p.Pipeline.snap_cu (fun i ->
        match i.Instr.kind with
        | Instr.Produce_val { mem = 3; _ } -> true
        | _ -> false)
  in
  Block.remove_instr b ~id:i.Instr.id;
  assert_flagged "drop CU produce" ~analysis:Diag.Balance p

(* Bug 3: a mis-speculated path leaves one request unresolved. *)
let test_mut_drop_poison () =
  let p = compile_fig4 () in
  let b, i =
    find_instr p.Pipeline.snap_cu (fun i ->
        match i.Instr.kind with Instr.Poison _ -> true | _ -> false)
  in
  let mem =
    match i.Instr.kind with Instr.Poison { mem; _ } -> mem | _ -> assert false
  in
  let spec_bb =
    let si = spec_info p in
    match
      List.find_opt
        (fun (pl : Poison.placement) -> pl.Poison.p_instr = i.Instr.id)
        si.Pipeline.poison.Poison.placements
    with
    | Some pl -> pl.Poison.p_decision.Poison.spec_bb
    | None -> Alcotest.fail "poison has no placement record"
  in
  Block.remove_instr b ~id:i.Instr.id;
  assert_flagged "drop poison" ~block:spec_bb ~mem
    ~analysis:Diag.Poison_coverage p

(* Bug 4: the same request is poisoned twice on one path. *)
let test_mut_duplicate_poison () =
  let p = compile_fig4 () in
  let b, i =
    find_instr p.Pipeline.snap_cu (fun i ->
        match i.Instr.kind with Instr.Poison _ -> true | _ -> false)
  in
  let mem =
    match i.Instr.kind with Instr.Poison { mem; _ } -> mem | _ -> assert false
  in
  Block.append_instr b i;
  assert_flagged "duplicate poison" ~mem ~analysis:Diag.Poison_coverage p

(* Bug 5: a poison no Algorithm 2 decision justifies. *)
let test_mut_rogue_poison () =
  let p = compile_fig4 () in
  let b, _ =
    find_instr p.Pipeline.snap_cu (fun i ->
        match i.Instr.kind with Instr.Poison _ -> true | _ -> false)
  in
  Block.prepend_instr b
    {
      Instr.id = Func.fresh_vid p.Pipeline.snap_cu;
      kind = Instr.Poison { arr = "A"; mem = 5 };
    };
  assert_flagged "rogue poison" ~block:b.Block.bid
    ~analysis:Diag.Poison_coverage p

(* Bug 6: two groups' poisons swapped — kills run against speculation
   order (fig4's bb17-analogue hosts kills for two store groups). *)
let test_mut_swap_poisons () =
  let p = compile_fig4 () in
  let host =
    List.find_opt
      (fun (b : Block.t) ->
        let mems =
          List.filter_map
            (fun (i : Instr.t) ->
              match i.Instr.kind with
              | Instr.Poison { mem; _ } -> Some mem
              | _ -> None)
            b.Block.instrs
        in
        List.length (List.sort_uniq compare mems) >= 2)
      (Func.blocks_in_layout p.Pipeline.snap_cu)
  in
  match host with
  | None -> Alcotest.fail "no block hosts two groups' poisons"
  | Some b ->
    let poisons, rest =
      List.partition
        (fun (i : Instr.t) ->
          match i.Instr.kind with Instr.Poison _ -> true | _ -> false)
        b.Block.instrs
    in
    b.Block.instrs <- rest @ List.rev poisons;
    assert_flagged "swap poisons" ~analysis:Diag.Poison_coverage p

(* Bug 7: a consume of a hoisted load survives in the final AGU. *)
let test_mut_residual_consume () =
  let p = compile_fig4 () in
  let si = spec_info p in
  let mem =
    match si.Pipeline.hoist.Hoist.hoisted_mems with
    | m :: _ -> m
    | [] -> Alcotest.fail "nothing was hoisted"
  in
  let b = List.hd (Func.blocks_in_layout p.Pipeline.agu) in
  Block.append_instr b
    {
      Instr.id = Func.fresh_vid p.Pipeline.agu;
      kind = Instr.Consume_val { arr = "A"; mem };
    };
  assert_flagged "residual consume" ~block:b.Block.bid ~mem
    ~analysis:Diag.Lod_residue p

(* Bug 8: the CU drops a load consume and starves the channel. *)
let test_mut_drop_cu_consume () =
  let p = compile_fig4 () in
  let survives id =
    let s = ref false in
    Func.iter_instrs p.Pipeline.cu (fun i -> if i.Instr.id = id then s := true);
    !s
  in
  let b, i =
    find_instr p.Pipeline.snap_cu (fun i ->
        match i.Instr.kind with
        | Instr.Consume_val _ -> survives i.Instr.id
        | _ -> false)
  in
  let mem =
    match i.Instr.kind with
    | Instr.Consume_val { mem; _ } -> mem
    | _ -> assert false
  in
  Block.remove_instr b ~id:i.Instr.id;
  (* the snapshot mutation alone is invisible to the survivor filter; the
     event stream shrinks only once the final CU drops the id too *)
  (let fb, _ =
     find_instr p.Pipeline.cu (fun fi -> fi.Instr.id = i.Instr.id)
   in
   Block.remove_instr fb ~id:i.Instr.id);
  assert_flagged "drop CU consume" ~mem ~analysis:Diag.Balance p

(* --- checker-clean properties ------------------------------------------- *)

let () = Checker.install ()

let modes = [ Pipeline.Dae; Pipeline.Spec ]

let qcheck_props =
  let open QCheck in
  [
    Test.make
      ~name:"generated kernels compile checker-clean (both modes, ±inner loops)"
      ~count:30 small_nat
      (fun seed ->
        List.for_all
          (fun inner ->
            List.for_all
              (fun mode ->
                let g = G.generate ~seed ~inner_loops:inner () in
                let p =
                  Pipeline.compile ~check:true ~mode (Func.clone g.G.func)
                in
                Checker.run p = [])
              modes)
          [ false; true ]);
  ]

let test_paper_kernels_clean () =
  List.iter
    (fun (k : Kernels.t) ->
      List.iter
        (fun mode ->
          let p = Pipeline.compile ~check:true ~mode (k.Kernels.build ()) in
          check Alcotest.int
            (Fmt.str "%s is diagnostic-free" k.Kernels.name)
            0
            (List.length (Checker.run p)))
        modes)
    (Kernels.paper_suite ())

(* --- Poison.all_paths budget boundary ------------------------------------ *)

let test_all_paths_budget () =
  let f = Fixtures.fig4 () in
  let loops = Loops.compute f in
  let head = 4 in
  (match Poison.all_paths f loops head with
  | Ok paths -> check Alcotest.bool "default budget suffices" true (paths <> [])
  | Error _ -> Alcotest.fail "default budget exceeded on fig4");
  let rec minimal m =
    if m > 10_000 then Alcotest.fail "no finite budget re-enumerates fig4"
    else
      match Poison.all_paths ~limit:m f loops head with
      | Ok _ -> m
      | Error _ -> minimal (m + 1)
  in
  let m = minimal 1 in
  (match Poison.all_paths ~limit:(m - 1) f loops head with
  | Ok _ -> Alcotest.fail "limit below the boundary must fail"
  | Error (b : Poison.path_budget) ->
    check Alcotest.int "budget src" head b.Poison.src;
    check Alcotest.int "budget limit" (m - 1) b.Poison.limit;
    check Alcotest.bool "explored exceeds limit" true
      (b.Poison.explored > b.Poison.limit));
  match Poison.all_paths_exn ~limit:(m - 1) f loops head with
  | _ -> Alcotest.fail "all_paths_exn must raise below the boundary"
  | exception Poison.Poison_error _ -> ()

let () =
  Alcotest.run "checker"
    [
      ( "mutations",
        [
          Alcotest.test_case "clean baseline" `Quick test_fig4_clean;
          Alcotest.test_case "dropped AGU store request" `Quick
            test_mut_drop_agu_send;
          Alcotest.test_case "dropped CU produce" `Quick
            test_mut_drop_cu_produce;
          Alcotest.test_case "dropped poison" `Quick test_mut_drop_poison;
          Alcotest.test_case "duplicated poison" `Quick
            test_mut_duplicate_poison;
          Alcotest.test_case "unjustified poison" `Quick test_mut_rogue_poison;
          Alcotest.test_case "poisons against speculation order" `Quick
            test_mut_swap_poisons;
          Alcotest.test_case "residual hoisted consume" `Quick
            test_mut_residual_consume;
          Alcotest.test_case "dropped CU consume" `Quick
            test_mut_drop_cu_consume;
        ] );
      ( "clean",
        Alcotest.test_case "paper kernels, both modes" `Quick
          test_paper_kernels_clean
        :: List.map QCheck_alcotest.to_alcotest qcheck_props );
      ( "budget",
        [ Alcotest.test_case "all_paths boundary" `Quick test_all_paths_budget ]
      );
    ]
