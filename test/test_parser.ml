(* Every checked compile in this suite is also protocol-checked. *)
let () = Dae_analysis.Checker.install ()

(* Textual IR parser: hand-written grammar cases, error reporting, and the
   print→parse→print round-trip property over random generated kernels and
   over every compiled slice of the benchmark suite. *)

open Dae_ir

let tc = Alcotest.test_case
let check = Alcotest.check

let roundtrip_equal (f : Func.t) =
  let s1 = Printer.func_to_string f in
  let f2 = Parser.parse s1 in
  let s2 = Printer.func_to_string f2 in
  (s1 = s2, s1, s2)

let assert_roundtrip f =
  let ok, s1, s2 = roundtrip_equal f in
  if not ok then
    Alcotest.failf "round trip differs@.first:@.%s@.second:@.%s" s1 s2

let test_every_instruction_form () =
  let src =
    {|
    func all(n: %0, m: %1) {
    bb0:
      %2 = add %0, %1
      %3 = sub %2, 1
      %4 = mul %3, %3
      %5 = sdiv %4, 3
      %6 = srem %5, 7
      %7 = and %6, 15
      %8 = or %7, 1
      %9 = xor %8, %2
      %10 = shl %9, 2
      %11 = ashr %10, 1
      %12 = smin %11, %0
      %13 = smax %12, %1
      %14 = cmp slt %13, 100
      %15 = select %14, %13, 0
      %16 = not %14
      %17 = load a[%15] !mem0
      store a[%15], %17 !mem1
      send_ld_addr a[%15] !mem2
      send_st_addr a[%15] !mem3
      %18 = consume_val a !mem2
      produce_val a, %18 !mem3
      poison a !mem3
      br %16, bb1, bb2
    bb1:
      switch %15, bb2, bb1, bb2
    bb2:
      ret %15
    }
    |}
  in
  let f = Parser.parse src in
  assert_roundtrip f;
  check Alcotest.int "three blocks" 3 (List.length f.Func.layout)

let test_phi_parsing () =
  let src =
    {|
    func p(n: %0) {
    bb0:
      br bb1
    bb1:
      %1 = phi i32 [bb0: 0], [bb1: %2]
      %3 = phi i1 [bb0: true], [bb1: false]
      %2 = add %1, 1
      %4 = cmp slt %2, %0
      br %4, bb1, bb2
    bb2:
      ret %1
    }
    |}
  in
  let f = Parser.parse src in
  assert_roundtrip f;
  let b1 = Func.block f 1 in
  check Alcotest.int "two phis" 2 (List.length b1.Block.phis)

let test_negative_constants_and_comments () =
  let f =
    Parser.parse
      {|
      ; leading comment
      func neg() {
      bb0: ; trailing comment
        %0 = add -5, -1
        ret %0
      }
      |}
  in
  assert_roundtrip f;
  let r = Interp.run f ~args:[] ~mem:(Interp.Memory.create []) in
  match r.Interp.ret with
  | Some (Types.Vint -6) -> ()
  | _ -> Alcotest.fail "negative constants mis-parsed"

let expect_error src =
  match Parser.parse_result src with
  | Ok _ -> Alcotest.failf "expected parse error for %s" src
  | Error _ -> ()

let test_errors () =
  expect_error "func f() { }";
  (* no blocks *)
  expect_error "func f() { bb0: }";
  (* no terminator *)
  expect_error "func f() { bb0: frobnicate a, b\n ret }";
  expect_error "func f() { bb0: ret ret }";
  expect_error "func f() { bb0: %1 = cmp weird %0, 1\n ret }";
  expect_error "func f() { bb0: store a[0] 1 !mem0\n ret }" (* missing comma *)

let test_fresh_ids_after_parse () =
  let f =
    Parser.parse
      {|
      func fr(n: %0) {
      bb0:
        %7 = add %0, 1
        store a[%7], %7 !mem4
        ret
      }
      |}
  in
  Alcotest.(check bool) "fresh vid above max" true (Func.fresh_vid f > 7);
  Alcotest.(check bool) "fresh mem above max" true (Func.fresh_mem f > 4)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"print/parse round trip on generated kernels" ~count:80
      small_nat
      (fun seed ->
        let g = Dae_workloads.Gen.generate ~seed () in
        let ok, _, _ = roundtrip_equal g.Dae_workloads.Gen.func in
        ok);
    Test.make ~name:"round trip on compiled AGU/CU slices" ~count:25 small_nat
      (fun seed ->
        let g = Dae_workloads.Gen.generate ~seed () in
        let p =
          Dae_core.Pipeline.compile ~check:true ~mode:Dae_core.Pipeline.Spec
            g.Dae_workloads.Gen.func
        in
        let ok1, _, _ = roundtrip_equal p.Dae_core.Pipeline.agu in
        let ok2, _, _ = roundtrip_equal p.Dae_core.Pipeline.cu in
        ok1 && ok2);
    Test.make ~name:"parsed kernel interprets identically" ~count:40 small_nat
      (fun seed ->
        let g = Dae_workloads.Gen.generate ~seed () in
        let f2 =
          Parser.parse (Printer.func_to_string g.Dae_workloads.Gen.func)
        in
        let mem1 = g.Dae_workloads.Gen.mem () in
        let mem2 = g.Dae_workloads.Gen.mem () in
        ignore
          (Interp.run g.Dae_workloads.Gen.func ~args:g.Dae_workloads.Gen.args
             ~mem:mem1);
        ignore (Interp.run f2 ~args:g.Dae_workloads.Gen.args ~mem:mem2);
        Interp.Memory.equal mem1 mem2);
  ]

let () =
  Alcotest.run "parser"
    [
      ( "grammar",
        [
          tc "every instruction form" `Quick test_every_instruction_form;
          tc "phis" `Quick test_phi_parsing;
          tc "negatives and comments" `Quick test_negative_constants_and_comments;
          tc "errors" `Quick test_errors;
          tc "fresh ids" `Quick test_fresh_ids_after_parse;
        ] );
      ("props", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
