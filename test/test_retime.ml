(* Trace-driven re-timing, held to bit-identical equivalence with the
   fused simulation path it factored apart: for every kernel of the test
   suite and for randomized generator CFGs, across all four architectures
   and a spread of configurations (including invalid capacity-0 boundary
   probes run with validation off), Retime.prepare-once/simulate-many must
   reproduce Machine.simulate's cycle counts, complete stall partitions,
   kill/commit counters and deadlock verdicts exactly. Plus the on-disk
   result cache: a warm sweep serves identical points without a single
   functional execution, and a corrupted entry is detected, discarded and
   recomputed — never trusted. *)

open Dae_workloads
module M = Dae_sim.Machine
module R = Dae_sim.Retime
module C = Dae_sim.Cache
module Cfg = Dae_sim.Config
module Stats = Dae_sim.Stats
module Timing = Dae_sim.Timing
module E = Dae_sim.Exec
module Sweep = Dae_dse.Sweep
module G = Gen

let tc = Alcotest.test_case
let check = Alcotest.check
let archs = [ M.Sta; M.Dae; M.Spec; M.Oracle ]

(* default; every capacity at its floor; an invalid boundary probe *)
let cfgs =
  [
    Cfg.default;
    {
      Cfg.default with
      Cfg.request_fifo_capacity = 1;
      value_fifo_capacity = 1;
      store_value_fifo_capacity = 1;
      load_queue_size = 1;
      store_queue_size = 2;
    };
    { Cfg.default with Cfg.request_fifo_capacity = 0 };
    { Cfg.default with Cfg.value_fifo_capacity = 0; store_queue_size = 2 };
  ]

let export_stats keyed =
  List.map
    (fun (unit, t) ->
      ( unit,
        List.map (fun c -> (Stats.cause_name c, Stats.get t c)) Stats.all_causes
      ))
    keyed

type verdict =
  | Done of int * (string * (string * int) list) list * int * int
  | Dead
  | Refused  (** the functional half itself rejects the program *)

let fused_verdict arch func ~invocations ~mem cfg =
  match
    M.simulate ~cfg ~validate:false arch (Dae_ir.Func.clone func) ~invocations
      ~mem
  with
  | r ->
    Done
      ( r.M.cycles,
        export_stats r.M.stats,
        r.M.killed_stores,
        r.M.committed_stores )
  | exception Timing.Deadlock _ -> Dead
  | exception (E.Deadlock _ | E.Stream_mismatch _ | E.Desync _) -> Refused
  | exception M.Check_failed _ -> Refused

let retimed_verdict prepared cfg =
  match R.simulate ~validate:false ~cfg prepared with
  | r ->
    Done
      ( r.M.cycles,
        export_stats r.M.stats,
        r.M.killed_stores,
        r.M.committed_stores )
  | exception Timing.Deadlock _ -> Dead

let pp_verdict ppf = function
  | Done (c, _, k, m) -> Fmt.pf ppf "done(%d cyc, %d killed, %d committed)" c k m
  | Dead -> Fmt.pf ppf "deadlock"
  | Refused -> Fmt.pf ppf "refused"

let verdict_t = Alcotest.testable pp_verdict ( = )

(* --- test-suite kernels: every arch, every config, one prepare ------------ *)

let test_kernel name () =
  let k =
    match Kernels.by_name (Kernels.test_suite ()) name with
    | Some k -> k
    | None -> Alcotest.failf "kernel %s not in test suite" name
  in
  let invocations = k.Kernels.invocations () in
  List.iter
    (fun arch ->
      let plan = R.plan arch (k.Kernels.build ()) in
      let prepared =
        R.prepare plan ~invocations ~mem:(k.Kernels.init_mem ())
      in
      List.iter
        (fun cfg ->
          let label =
            Fmt.str "%s/%s@%s" name (M.arch_name arch) (Cfg.key cfg)
          in
          check verdict_t label
            (fused_verdict arch (k.Kernels.build ()) ~invocations
               ~mem:(k.Kernels.init_mem ()) cfg)
            (retimed_verdict prepared cfg))
        cfgs)
    archs

(* --- qcheck: the same statement over randomized generator CFGs ----------- *)

let gen_retime_equiv (g : G.t) =
  List.for_all
    (fun arch ->
      let invocations = [ g.G.args ] in
      let retimed =
        match R.plan arch (Dae_ir.Func.clone g.G.func) with
        | exception Dae_core.Pipeline.Compile_error _ -> None
        | plan -> (
          match R.prepare plan ~invocations ~mem:(g.G.mem ()) with
          | prepared -> Some (fun cfg -> retimed_verdict prepared cfg)
          | exception
              ( E.Deadlock _ | E.Stream_mismatch _ | E.Desync _
              | R.Check_failed _ ) ->
            Some (fun _ -> Refused))
      in
      match retimed with
      | None -> true (* undecouplable either way *)
      | Some retimed ->
        List.for_all
          (fun cfg ->
            fused_verdict arch g.G.func ~invocations ~mem:(g.G.mem ()) cfg
            = retimed cfg)
          cfgs)
    archs

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"re-timed == fused, randomized CFGs" ~count:60 small_nat
      (fun seed -> gen_retime_equiv (Fixtures.gen_cfg ~seed));
    Test.make ~name:"same, stores on several arrays and inner loops" ~count:30
      small_nat (fun seed ->
        gen_retime_equiv (Fixtures.gen_cfg_multi ~seed ()));
  ]

(* --- cache round-trip ------------------------------------------------------ *)

let with_cache_dir = Fixtures.with_cache_dir

let cache_roundtrip () =
  with_cache_dir (fun dir ->
      let cache = C.create ~dir () in
      let k = C.key [ "alpha"; "beta" ] in
      check Alcotest.bool "miss before store" true (C.find cache k = None);
      C.store cache k (42, "payload", [ 1; 2; 3 ]);
      check
        (Alcotest.option
           (Alcotest.triple Alcotest.int Alcotest.string
              (Alcotest.list Alcotest.int)))
        "hit after store"
        (Some (42, "payload", [ 1; 2; 3 ]))
        (C.find cache k);
      (* component boundaries must matter *)
      check Alcotest.bool "length-prefixed key components" true
        (C.key [ "ab"; "c" ] <> C.key [ "a"; "bc" ]))

let strip p = { p with Sweep.pt_cached = false }

let sweep_points dir =
  let cache = C.create ~dir () in
  let wl =
    match Kernels.by_name (Kernels.test_suite ()) "hist" with
    | Some k -> Sweep.workload_of_kernel ~suite:"quick" k
    | None -> Alcotest.fail "hist not in test suite"
  in
  let r =
    Sweep.run ~cache ~axes:Sweep.quick_axes ~archs:[ M.Dae; M.Spec ] [ wl ]
  in
  (List.map strip r.Sweep.points, r.Sweep.summary)

let cache_cold_warm () =
  with_cache_dir (fun dir ->
      let cold, cold_s = sweep_points dir in
      check Alcotest.bool "cold pass misses" true
        (cold_s.Sweep.sm_cache.C.misses > 0
        && cold_s.Sweep.sm_cache.C.hits = 0);
      check Alcotest.bool "cold pass executes" true
        (cold_s.Sweep.sm_prepares > 0);
      let warm, warm_s = sweep_points dir in
      check Alcotest.bool "cold == warm points" true (cold = warm);
      check Alcotest.int "warm pass never executes" 0 warm_s.Sweep.sm_prepares;
      check (Alcotest.float 1e-9) "warm pass all hits" 1.0
        warm_s.Sweep.sm_hit_rate;
      check Alcotest.int "no cross-check failures" 0
        (List.length cold_s.Sweep.sm_check_failures
        + List.length warm_s.Sweep.sm_check_failures))

let cache_corruption () =
  with_cache_dir (fun dir ->
      let cold, _ = sweep_points dir in
      (* flip the last byte of every entry's payload *)
      let corrupted = ref 0 in
      Array.iter
        (fun shard ->
          let sdir = Filename.concat dir shard in
          if Sys.is_directory sdir then
            Array.iter
              (fun file ->
                let path = Filename.concat sdir file in
                let ic = open_in_bin path in
                let raw = really_input_string ic (in_channel_length ic) in
                close_in ic;
                let b = Bytes.of_string raw in
                let last = Bytes.length b - 1 in
                Bytes.set b last
                  (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
                let oc = open_out_bin path in
                output_bytes oc b;
                close_out oc;
                incr corrupted)
              (Sys.readdir sdir))
        (Sys.readdir dir);
      check Alcotest.bool "entries were corrupted" true (!corrupted > 0);
      let again, s = sweep_points dir in
      check Alcotest.bool "corruption detected, never trusted" true
        (s.Sweep.sm_cache.C.corrupt = !corrupted);
      check Alcotest.bool "every point recomputed" true
        (s.Sweep.sm_cache.C.hits = 0 && s.Sweep.sm_prepares > 0);
      check Alcotest.bool "recomputed results identical" true (cold = again))

let entry_files dir =
  Array.fold_left
    (fun acc shard ->
      let sdir = Filename.concat dir shard in
      if Sys.is_directory sdir then
        Array.fold_left
          (fun acc f -> Filename.concat sdir f :: acc)
          acc (Sys.readdir sdir)
      else acc)
    [] (Sys.readdir dir)

(* a crashed writer can leave a zero-length or header-truncated entry;
   both must read as a miss, be counted corrupt, be deleted, and leave
   the slot storable again *)
let cache_damaged_entries () =
  with_cache_dir (fun dir ->
      let cache = C.create ~dir () in
      let k_zero = C.key [ "zero-length" ] in
      let k_trunc = C.key [ "truncated-header" ] in
      C.store cache k_zero "payload-zero";
      C.store cache k_trunc "payload-truncated";
      let path_of k =
        match
          List.find_opt
            (fun f -> Filename.basename f = k ^ ".entry")
            (entry_files dir)
        with
        | Some p -> p
        | None -> Alcotest.failf "no entry file for %s" k
      in
      let pz = path_of k_zero and pt = path_of k_trunc in
      close_out (open_out_bin pz);
      let raw =
        let ic = open_in_bin pt in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      (* cut inside the one-line header, before its newline *)
      let oc = open_out_bin pt in
      output_string oc (String.sub raw 0 5);
      close_out oc;
      check Alcotest.bool "zero-length entry misses" true
        ((C.find cache k_zero : string option) = None);
      check Alcotest.bool "truncated entry misses" true
        ((C.find cache k_trunc : string option) = None);
      check Alcotest.int "both counted corrupt" 2 (C.counters cache).C.corrupt;
      check Alcotest.bool "damaged entries deleted" true
        (not (Sys.file_exists pz) && not (Sys.file_exists pt));
      C.store cache k_zero "payload-zero";
      check
        (Alcotest.option Alcotest.string)
        "slot recovers after re-store" (Some "payload-zero")
        (C.find cache k_zero))

(* two runner domains hammering the same key: temp-file + rename means a
   reader only ever observes whole entries — some valid payload, never a
   torn one, never a spurious miss *)
let cache_concurrent_writers () =
  with_cache_dir (fun dir ->
      let k = C.key [ "contended" ] in
      let rounds = 200 in
      let results =
        Dae_sim.Runner.map_list ~domains:2
          ~f:(fun id ->
            let cache = C.create ~dir () in
            let bad = ref 0 in
            for i = 1 to rounds do
              C.store cache k (id, i);
              match (C.find cache k : (int * int) option) with
              | Some (w, j) when (w = 0 || w = 1) && j >= 1 && j <= rounds ->
                ()
              | Some _ | None -> incr bad
            done;
            (!bad, (C.counters cache).C.corrupt))
          [ 0; 1 ]
      in
      List.iter
        (fun (bad, corrupt) ->
          check Alcotest.int "every read is a whole valid entry" 0 bad;
          check Alcotest.int "no torn entries observed" 0 corrupt)
        results)

let () =
  let kernel_cases =
    List.map
      (fun (k : Kernels.t) ->
        tc k.Kernels.name `Quick (test_kernel k.Kernels.name))
      (Kernels.test_suite ())
  in
  Alcotest.run "retime"
    [
      ("test-suite kernels", kernel_cases);
      ( "randomized CFGs",
        List.map QCheck_alcotest.to_alcotest qcheck_props );
      ( "result cache",
        [
          tc "store/find round-trip" `Quick cache_roundtrip;
          tc "cold sweep == warm sweep" `Quick cache_cold_warm;
          tc "corrupted entries recomputed" `Quick cache_corruption;
          tc "zero-length and truncated entries" `Quick cache_damaged_entries;
          tc "concurrent writers, one key" `Quick cache_concurrent_writers;
        ] );
    ]
