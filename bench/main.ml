(* Evaluation harness: regenerates every table and figure of the paper's
   §8 from the simulator, plus the ablations DESIGN.md calls out and a set
   of Bechamel micro-benchmarks of the compiler passes themselves.

     dune exec bench/main.exe                       # everything
     dune exec bench/main.exe -- fig6 table1        # some sections
     dune exec bench/main.exe -- --section fig6 --section table1   # same
     dune exec bench/main.exe -- --jobs 4 --json out.json fig6
     dune exec bench/main.exe -- --quick            # fig6 on small kernels
     sections: fig6 table1 table2 fig7 ablation sizing leak sweep mem mlp
     micro smoke

   Every section first *declares* its simulation jobs (kernel × arch ×
   config); the distinct jobs are fanned out once over a work-stealing
   domain pool (Dae_sim.Runner) with a per-domain memoized
   compile+simulate cache, so sections that share points (fig6 and
   table1 use the same paper-suite runs) pay for them once. The
   per-job results — cycles, mis-speculation rate, area, wall-clock,
   GC pressure, the pool's own scheduling statistics (per-domain
   utilization, steal counts), and the channel-sizing analyzer's
   per-channel minimum depths and deadlock verdict — are written to
   BENCH_10.json (with per-section job counts and wall-clocks) so the
   perf trajectory is machine-readable from PR 1 onward. The leak
   section adds the static speculative-leakage census (taint sources and
   leak sites per kernel and mode; `daec leak`'s verdicts). The mlp
   section re-runs DAE on the graph/irregular kernels under the cache
   hierarchy at 1, 2 and the partitioner's natural N access units (jobs
   keyed with a `#uN` suffix). Memory-hierarchy jobs (the mem and mlp
   sections) ride the trace-driven re-timing engine: one functional
   execution per kernel × arch × partition, each cache/DRAM point a
   cheap replay, and the replayed verdicts memoized in the on-disk
   result cache (--cache-dir / --no-cache) so a warm bench re-times
   nothing. The sweep section additionally runs the re-timing DSE engine
   cold and warm — over both the capacity grid and the hierarchy grid —
   and records every pass's throughput and hit rate (the hierarchy warm
   pass must hit on at least 95% of its points).

   --quick swaps the paper suite for the small test-suite instances and
   runs fig6 only: a seconds-long sweep whose cycle counts are pinned
   byte-for-byte by the @ci bench-quick rule (bench/bench_quick.expected),
   so any accidental timing-model change fails the build.

   Cycle counts are this repository's simulator, not the paper's ModelSim
   runs; EXPERIMENTS.md records the side-by-side comparison of shapes. *)

open Dae_workloads

let archs =
  [ Dae_sim.Machine.Sta; Dae_sim.Machine.Dae; Dae_sim.Machine.Spec;
    Dae_sim.Machine.Oracle ]

(* --quick: the small test-suite kernel instances instead of the paper
   sizes, fig6 only — deterministic cycle counts in seconds, pinned by the
   @ci bench-quick rule. *)
let quick = ref false

let bench_suite () =
  if !quick then Kernels.test_suite () else Kernels.paper_suite ()

(* --- simulation jobs -------------------------------------------------------- *)

type sim_out = {
  o_kernel : string; (* kernel instance id, e.g. "hist" or "nest4~n400" *)
  o_arch : string;
  o_cfg : string;
  o_cycles : int;
  o_misspec : float;
  o_area_total : int;
  o_area_cu : int;
  o_area_agu : int;
  o_pblk : int;
  o_pcall : int;
  o_killed : int;
  o_committed : int;
  o_stats : Dae_sim.Stats.keyed; (* per-unit cycle attribution *)
  o_check_errors : int; (* soundness-checker diagnostics on the compile *)
  o_check_warnings : int;
  o_min_depths : (string * int) list; (* sizing analyzer minimum per channel *)
  o_sizing_verdict : string; (* deadlock-free | deadlock | skipped | n/a *)
  o_wall_s : float;
  (* GC pressure of this job (Gc.quick_stat deltas around the run) *)
  o_gc_minor_words : float;
  o_gc_major_words : float;
  o_gc_minor_collections : int;
  o_gc_major_collections : int;
}

type sim_req = {
  r_key : string;
  r_kernel : string;
  r_arch : Dae_sim.Machine.arch;
  r_cfg : Dae_sim.Config.t;
  r_partition : Dae_core.Decouple.assignment option; (* N-way access DAG *)
  r_mk : unit -> Kernels.t; (* built fresh in the worker domain *)
}

let req ?(cfg = Dae_sim.Config.default) ?partition ~kernel ~arch mk =
  {
    r_key =
      Printf.sprintf "%s:%s:%s%s" kernel
        (Dae_sim.Machine.arch_name arch)
        (Dae_sim.Config.key cfg)
        (match partition with
        | None -> ""
        | Some (a : Dae_core.Decouple.assignment) ->
          Printf.sprintf "#u%d" a.Dae_core.Decouple.n_access);
    r_kernel = kernel;
    r_arch = arch;
    r_cfg = cfg;
    r_partition = partition;
    r_mk = mk;
  }

(* config-dependent but simulation-free derivations shared by the fused
   and re-timed paths *)
let pipeline_facts ~cfg (p : Dae_core.Pipeline.t option) =
  let pblk, pcall =
    match p with
    | Some p ->
      (Dae_core.Pipeline.poison_block_count p,
       Dae_core.Pipeline.poison_call_count p)
    | None -> (0, 0)
  in
  let check_errors, check_warnings =
    match p with
    | Some p ->
      let ds = Dae_analysis.Checker.run p in
      (Dae_analysis.Diag.errors ds, Dae_analysis.Diag.warnings ds)
    | None -> (0, 0)
  in
  let min_depths, sizing_verdict =
    match p with
    | None -> ([], "n/a")
    | Some p -> (
      match Dae_analysis.Sizing.analyze ~cfg p with
      | Error _ -> ([], "skipped")
      | Ok sz ->
        ( List.map
            (fun (s : Dae_analysis.Sizing.sized) ->
              ( Dae_analysis.Channel.name
                  s.Dae_analysis.Sizing.sz_chan.Dae_analysis.Channel.kind,
                s.Dae_analysis.Sizing.sz_min ))
            sz.Dae_analysis.Sizing.channels,
          if Dae_analysis.Sizing.deadlocks sz then "deadlock"
          else "deadlock-free" ))
  in
  (pblk, pcall, check_errors, check_warnings, min_depths, sizing_verdict)

let run_req_fused (r : sim_req) : sim_out =
  let t0 = Unix.gettimeofday () in
  let g0 = Gc.quick_stat () in
  let k = r.r_mk () in
  let res =
    Dae_sim.Machine.simulate ~cfg:r.r_cfg ?partition:r.r_partition r.r_arch
      (k.Kernels.build ())
      ~invocations:(k.Kernels.invocations ())
      ~mem:(k.Kernels.init_mem ())
  in
  (match k.Kernels.check res.Dae_sim.Machine.memory with
  | Ok () -> ()
  | Error msg ->
    Fmt.failwith "%s/%s failed its reference check: %s" k.Kernels.name
      (Dae_sim.Machine.arch_name r.r_arch)
      msg);
  let pblk, pcall, check_errors, check_warnings, min_depths, sizing_verdict =
    pipeline_facts ~cfg:r.r_cfg res.Dae_sim.Machine.pipeline
  in
  let g1 = Gc.quick_stat () in
  {
    o_kernel = r.r_kernel;
    o_arch = Dae_sim.Machine.arch_name r.r_arch;
    o_cfg = Dae_sim.Config.key r.r_cfg;
    o_cycles = res.Dae_sim.Machine.cycles;
    o_misspec = res.Dae_sim.Machine.misspec_rate;
    o_area_total = res.Dae_sim.Machine.area.Dae_sim.Area.total;
    o_area_cu = res.Dae_sim.Machine.area.Dae_sim.Area.cu;
    o_area_agu = res.Dae_sim.Machine.area.Dae_sim.Area.agu;
    o_pblk = pblk;
    o_pcall = pcall;
    o_killed = res.Dae_sim.Machine.killed_stores;
    o_committed = res.Dae_sim.Machine.committed_stores;
    o_stats = res.Dae_sim.Machine.stats;
    o_check_errors = check_errors;
    o_check_warnings = check_warnings;
    o_min_depths = min_depths;
    o_sizing_verdict = sizing_verdict;
    o_wall_s = Unix.gettimeofday () -. t0;
    o_gc_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    o_gc_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    o_gc_minor_collections =
      g1.Gc.minor_collections - g0.Gc.minor_collections;
    o_gc_major_collections =
      g1.Gc.major_collections - g0.Gc.major_collections;
  }

(* --- hierarchy jobs ride the re-timing engine -------------------------------- *)

(* Every memory-hierarchy job (mem and mlp sections: Hierarchy config,
   decoupled arch) is one kernel × arch functionally executed under
   several cache/DRAM points. Route them through Retime — one prepare per
   (kernel, arch, partition) per domain, each point a cheap trace replay —
   and memoize the replayed verdicts in the on-disk result cache, so a
   warm bench run re-times nothing. Retime.simulate is cycle- and
   partition-identical to the fused Machine.simulate (pinned by
   test/test_retime.ml), so the "key cycles" goldens cannot drift. *)

(* set by the driver from --no-cache / --cache-dir before the pool runs *)
let bench_cache = ref (Dae_sim.Cache.disabled ())

let retimeable (r : sim_req) =
  r.r_arch <> Dae_sim.Machine.Sta
  && match r.r_cfg.Dae_sim.Config.hierarchy with
     | Dae_sim.Config.Hierarchy _ -> true
     | Dae_sim.Config.Scratchpad -> false

(* one plan/prepare per (kernel, arch, partition) — the config is not
   part of the identity *)
let plan_key (r : sim_req) =
  Printf.sprintf "%s:%s%s" r.r_kernel
    (Dae_sim.Machine.arch_name r.r_arch)
    (match r.r_partition with
    | None -> ""
    | Some (a : Dae_core.Decouple.assignment) ->
      Printf.sprintf "#u%d" a.Dae_core.Decouple.n_access)

(* representative request per plan key; filled (then read-only) by the
   driver before the pool fans out *)
let prep_reqs : (string, sim_req) Hashtbl.t = Hashtbl.create 32

let plan_for =
  Dae_sim.Runner.memoize (fun pkey ->
      let r = Hashtbl.find prep_reqs pkey in
      let k = r.r_mk () in
      (k, Dae_sim.Retime.plan ?partition:r.r_partition r.r_arch
            (k.Kernels.build ())))

let prepared_for =
  Dae_sim.Runner.memoize (fun pkey ->
      let k, plan = plan_for pkey in
      let prepared =
        Dae_sim.Retime.prepare plan
          ~invocations:(k.Kernels.invocations ())
          ~mem:(k.Kernels.init_mem ())
      in
      (* reference-check the functional execution once; every re-timed
         point shares this memory, exactly as the fused path's per-point
         check would see it *)
      (match k.Kernels.check (Dae_sim.Retime.final_memory prepared) with
      | Ok () -> ()
      | Error msg ->
        Fmt.failwith "%s failed its reference check: %s" pkey msg);
      (* observability stamp: `daec cache stats` counts prepared plans *)
      Dae_sim.Cache.store ~kind:"plan" !bench_cache
        (Dae_sim.Cache.key
           [ Dae_sim.Cache.version; "plan-stamp/1";
             Dae_sim.Retime.plan_digest plan ])
        (Dae_sim.Retime.plan_digest plan);
      prepared)

(* on-disk payload of one re-timed hierarchy point; the key pins engine
   version, plan digest, workload instance and configuration *)
type retime_point = {
  rt_cycles : int;
  rt_killed : int;
  rt_committed : int;
  rt_stats : Dae_sim.Stats.keyed;
}

let suite_tag () = if !quick then "quick/" else "paper/"

let run_req_retimed (r : sim_req) : sim_out =
  let t0 = Unix.gettimeofday () in
  let g0 = Gc.quick_stat () in
  let cache = !bench_cache in
  let _, plan = plan_for (plan_key r) in
  let key =
    Dae_sim.Cache.key
      [
        Dae_sim.Cache.version;
        "retime-point/1";
        Dae_sim.Retime.plan_digest plan;
        suite_tag () ^ r.r_kernel;
        Dae_sim.Config.key r.r_cfg;
      ]
  in
  let rt =
    match (Dae_sim.Cache.find cache key : retime_point option) with
    | Some rt -> rt
    | None ->
      let res =
        Dae_sim.Retime.simulate ~cfg:r.r_cfg (prepared_for (plan_key r))
      in
      let rt =
        {
          rt_cycles = res.Dae_sim.Machine.cycles;
          rt_killed = res.Dae_sim.Machine.killed_stores;
          rt_committed = res.Dae_sim.Machine.committed_stores;
          rt_stats = res.Dae_sim.Machine.stats;
        }
      in
      Dae_sim.Cache.store ~kind:"retime" cache key rt;
      rt
  in
  (* everything else is simulation-free: compile-level facts from the
     plan, area from the configuration *)
  let pipeline = Dae_sim.Retime.pipeline plan in
  let p =
    match pipeline with Some p -> p | None -> assert false (* not STA *)
  in
  let area =
    match r.r_arch with
    | Dae_sim.Machine.Oracle ->
      Dae_sim.Area.decoupled ~cfg:r.r_cfg ~ignore_poison:true p
    | _ -> Dae_sim.Area.decoupled ~cfg:r.r_cfg p
  in
  let pblk, pcall, check_errors, check_warnings, min_depths, sizing_verdict =
    pipeline_facts ~cfg:r.r_cfg pipeline
  in
  let total = rt.rt_killed + rt.rt_committed in
  let g1 = Gc.quick_stat () in
  {
    o_kernel = r.r_kernel;
    o_arch = Dae_sim.Machine.arch_name r.r_arch;
    o_cfg = Dae_sim.Config.key r.r_cfg;
    o_cycles = rt.rt_cycles;
    o_misspec =
      (if total = 0 then 0.0
       else float_of_int rt.rt_killed /. float_of_int total);
    o_area_total = area.Dae_sim.Area.total;
    o_area_cu = area.Dae_sim.Area.cu;
    o_area_agu = area.Dae_sim.Area.agu;
    o_pblk = pblk;
    o_pcall = pcall;
    o_killed = rt.rt_killed;
    o_committed = rt.rt_committed;
    o_stats = rt.rt_stats;
    o_check_errors = check_errors;
    o_check_warnings = check_warnings;
    o_min_depths = min_depths;
    o_sizing_verdict = sizing_verdict;
    o_wall_s = Unix.gettimeofday () -. t0;
    o_gc_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    o_gc_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    o_gc_minor_collections =
      g1.Gc.minor_collections - g0.Gc.minor_collections;
    o_gc_major_collections =
      g1.Gc.major_collections - g0.Gc.major_collections;
  }

let run_req (r : sim_req) : sim_out =
  if retimeable r then run_req_retimed r else run_req_fused r

(* Filled once by the pool; sections read it through [get]. *)
let table : (string, sim_out) Hashtbl.t = Hashtbl.create 128

let get r =
  match Hashtbl.find_opt table r.r_key with
  | Some o -> o
  | None -> Fmt.failwith "bench: job %s was not scheduled" r.r_key

let harmonic_mean xs =
  let xs = List.filter (fun x -> x > 0.) xs in
  float_of_int (List.length xs) /. List.fold_left (fun a x -> a +. (1. /. x)) 0. xs

(* --- Figure 6 / Table 1: the paper suite over all four architectures ------- *)

let suite_reqs () =
  List.concat_map
    (fun (k : Kernels.t) ->
      List.map
        (fun arch ->
          req ~kernel:k.Kernels.name ~arch (fun () ->
              match Kernels.by_name (bench_suite ()) k.Kernels.name with
              | Some k -> k
              | None -> assert false))
        archs)
    (bench_suite ())

let suite_req name arch =
  req ~kernel:name ~arch (fun () ->
      match Kernels.by_name (bench_suite ()) name with
      | Some k -> k
      | None -> assert false)

let fig6_print () =
  Fmt.pr "@.== Figure 6: performance normalized to STA (higher is better) ==@.";
  Fmt.pr "%-6s %10s %10s %10s@." "kernel" "DAE" "SPEC" "ORACLE";
  let speedups = ref [] in
  List.iter
    (fun (k : Kernels.t) ->
      let cycles arch =
        float_of_int (get (suite_req k.Kernels.name arch)).o_cycles
      in
      let sta = cycles Dae_sim.Machine.Sta in
      let norm arch = sta /. cycles arch in
      let spec = norm Dae_sim.Machine.Spec in
      speedups := spec :: !speedups;
      Fmt.pr "%-6s %9.2fx %9.2fx %9.2fx@." k.Kernels.name
        (norm Dae_sim.Machine.Dae) spec
        (norm Dae_sim.Machine.Oracle))
    (bench_suite ());
  Fmt.pr "SPEC harmonic-mean speedup over STA: %.2fx (paper: 1.9x avg, up to 3x)@."
    (harmonic_mean !speedups)

let table1_print () =
  Fmt.pr "@.== Table 1: absolute performance and area ==@.";
  Fmt.pr "%-6s %6s %6s %8s | %10s %10s %10s %10s | %7s %7s %7s %7s@."
    "kernel" "pblk" "pcall" "misspec" "STA" "DAE" "SPEC" "ORACLE" "aSTA"
    "aDAE" "aSPEC" "aORA";
  let ratios = ref ([], [], [], [], [], []) in
  List.iter
    (fun (k : Kernels.t) ->
      let out arch = get (suite_req k.Kernels.name arch) in
      let cycles a = (out a).o_cycles in
      let area a = (out a).o_area_total in
      let spec = out Dae_sim.Machine.Spec in
      Fmt.pr "%-6s %6d %6d %7.0f%% | %10d %10d %10d %10d | %7d %7d %7d %7d@."
        k.Kernels.name spec.o_pblk spec.o_pcall
        (100. *. spec.o_misspec)
        (cycles Dae_sim.Machine.Sta) (cycles Dae_sim.Machine.Dae)
        (cycles Dae_sim.Machine.Spec) (cycles Dae_sim.Machine.Oracle)
        (area Dae_sim.Machine.Sta) (area Dae_sim.Machine.Dae)
        (area Dae_sim.Machine.Spec) (area Dae_sim.Machine.Oracle);
      let f = float_of_int in
      let c0 = f (cycles Dae_sim.Machine.Sta) in
      let a0 = f (area Dae_sim.Machine.Sta) in
      let cd, cs, co, ad, as_, ao = !ratios in
      ratios :=
        ( (f (cycles Dae_sim.Machine.Dae) /. c0) :: cd,
          (f (cycles Dae_sim.Machine.Spec) /. c0) :: cs,
          (f (cycles Dae_sim.Machine.Oracle) /. c0) :: co,
          (f (area Dae_sim.Machine.Dae) /. a0) :: ad,
          (f (area Dae_sim.Machine.Spec) /. a0) :: as_,
          (f (area Dae_sim.Machine.Oracle) /. a0) :: ao ))
    (bench_suite ());
  let cd, cs, co, ad, as_, ao = !ratios in
  Fmt.pr
    "Harmonic means vs STA — cycles: DAE %.2f SPEC %.2f ORACLE %.2f; area: \
     DAE %.2f SPEC %.2f ORACLE %.2f@."
    (harmonic_mean cd) (harmonic_mean cs) (harmonic_mean co)
    (harmonic_mean ad) (harmonic_mean as_) (harmonic_mean ao);
  Fmt.pr "(paper: cycles 3.2 / 0.51 / 0.48; area 1.16 / 1.42 / 1.36)@."

(* --- Table 2: mis-speculation cost ------------------------------------------- *)

let table2_variants =
  [
    ("hist", fun rate -> Misspec.hist ~rate_percent:rate ());
    ("thr", fun rate -> Misspec.thr ~rate_percent:rate ());
    ("mm", fun rate -> Misspec.mm ~rate_percent:rate ());
  ]

let table2_req name variant rate =
  req
    ~kernel:(Printf.sprintf "%s~r%d" name rate)
    ~arch:Dae_sim.Machine.Spec
    (fun () -> variant rate)

let table2_reqs () =
  List.concat_map
    (fun (name, variant) ->
      List.map (fun rate -> table2_req name variant rate) Misspec.rates)
    table2_variants

let table2_print () =
  Fmt.pr "@.== Table 2: SPEC cycles as the mis-speculation rate changes ==@.";
  Fmt.pr "%-6s" "kernel";
  List.iter (fun r -> Fmt.pr " %8d%%" r) Misspec.rates;
  Fmt.pr " %8s@." "sigma";
  List.iter
    (fun (name, variant) ->
      Fmt.pr "%-6s" name;
      let cycles =
        List.map
          (fun rate ->
            float_of_int (get (table2_req name variant rate)).o_cycles)
          Misspec.rates
      in
      List.iter (fun c -> Fmt.pr " %9.0f" c) cycles;
      let n = float_of_int (List.length cycles) in
      let mean = List.fold_left ( +. ) 0. cycles /. n in
      let sigma =
        sqrt
          (List.fold_left (fun a c -> a +. ((c -. mean) ** 2.)) 0. cycles /. n)
      in
      Fmt.pr " %8.0f@." sigma)
    table2_variants;
  Fmt.pr "(paper: no correlation between rate and cycles; sigma 16-21)@."

(* --- Figure 7: nested control flow overhead ----------------------------------- *)

let fig7_depths = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let fig7_req depth arch =
  req
    ~kernel:(Printf.sprintf "nest%d~n400" depth)
    ~arch
    (fun () -> Synthetic.workload ~n:400 ~depth ())

let fig7_reqs () =
  List.concat_map
    (fun d -> [ fig7_req d Dae_sim.Machine.Spec; fig7_req d Dae_sim.Machine.Oracle ])
    fig7_depths

let fig7_print () =
  Fmt.pr
    "@.== Figure 7: SPEC overhead over ORACLE vs poison blocks (nested ifs) \
     ==@.";
  Fmt.pr "%-6s %6s %6s %10s %10s %10s@." "depth" "pblk" "pcall" "perf-ovh"
    "CU-area" "AGU-area";
  List.iter
    (fun depth ->
      let spec = get (fig7_req depth Dae_sim.Machine.Spec) in
      let oracle = get (fig7_req depth Dae_sim.Machine.Oracle) in
      let pct a b = 100. *. (float_of_int a /. float_of_int b -. 1.) in
      Fmt.pr "%-6d %6d %6d %9.1f%% %9.1f%% %9.1f%%@." depth spec.o_pblk
        spec.o_pcall
        (pct spec.o_cycles oracle.o_cycles)
        (pct spec.o_area_cu oracle.o_area_cu)
        (pct spec.o_area_agu oracle.o_area_agu))
    fig7_depths;
  Fmt.pr
    "(paper: perf overhead ~0%%; CU area grows <5%% per poison block, <25%% \
     at depth 8; AGU ~0%%)@."

(* --- ablations ------------------------------------------------------------------ *)

let ablation_sqs = [ 2; 4; 8; 16; 32; 64 ]
let ablation_lats = [ 1; 2; 4; 8 ]
let ablation_widths = [ 1; 2; 4; 8 ]

let ablation_sq_req sq =
  let cfg = { Dae_sim.Config.default with Dae_sim.Config.store_queue_size = sq } in
  req ~cfg ~kernel:"bfs~g128e1200" ~arch:Dae_sim.Machine.Spec (fun () ->
      Kernels.bfs ~graph:(Graph.small ~nodes:128 ~edges:1200 ()) ())

let ablation_lat_req arch l =
  let cfg = { Dae_sim.Config.default with Dae_sim.Config.fifo_latency = l } in
  req ~cfg ~kernel:"hist" ~arch (fun () -> Kernels.hist ())

let ablation_vw_kernels =
  [
    ("thr", "thr", fun () -> Kernels.thr ());
    (* six mostly-killed store requests per iteration on one channel:
       exactly the "vector of speculative requests + store mask" shape
       §10 sketches — kills need no memory port, so the channel and kill
       bandwidth are the whole story *)
    ( "nest6", "nest6~n500p15",
      fun () -> Synthetic.workload ~n:500 ~depth:6 ~pass_percent:15 () );
    ( "bc", "bc~g64e400",
      fun () -> Kernels.bc ~graph:(Graph.small ~nodes:64 ~edges:400 ()) () );
  ]

let ablation_vw_req (_, id, mk) v =
  let cfg = { Dae_sim.Config.default with Dae_sim.Config.vector_width = v } in
  req ~cfg ~kernel:id ~arch:Dae_sim.Machine.Spec mk

let ablation_reqs () =
  List.map ablation_sq_req ablation_sqs
  @ List.concat_map
      (fun l ->
        [ ablation_lat_req Dae_sim.Machine.Dae l;
          ablation_lat_req Dae_sim.Machine.Spec l ])
      ablation_lats
  @ List.concat_map
      (fun k -> List.map (ablation_vw_req k) ablation_widths)
      ablation_vw_kernels

let ablation_print () =
  Fmt.pr "@.== Ablation: store queue size vs SPEC cycles (§8.2.1) ==@.";
  Fmt.pr "%-6s" "SQ";
  List.iter (fun sq -> Fmt.pr " %8d" sq) ablation_sqs;
  Fmt.pr "@.%-6s" "cycles";
  List.iter
    (fun sq -> Fmt.pr " %8d" (get (ablation_sq_req sq)).o_cycles)
    ablation_sqs;
  Fmt.pr
    "@.(mis-speculated allocations fill a small SQ and stall later loads — \
     the bfs/bc SPEC-vs-ORACLE gap)@.";

  Fmt.pr "@.== Ablation: FIFO latency vs DAE round trip ==@.";
  Fmt.pr "%-10s" "fifo lat";
  List.iter (fun l -> Fmt.pr " %8d" l) ablation_lats;
  Fmt.pr "@.%-10s" "DAE";
  List.iter
    (fun l ->
      Fmt.pr " %8d" (get (ablation_lat_req Dae_sim.Machine.Dae l)).o_cycles)
    ablation_lats;
  Fmt.pr "@.%-10s" "SPEC";
  List.iter
    (fun l ->
      Fmt.pr " %8d" (get (ablation_lat_req Dae_sim.Machine.Spec l)).o_cycles)
    ablation_lats;
  Fmt.pr
    "@.(the synchronized DAE AGU pays every extra cycle of channel latency \
     per iteration; the speculative AGU hides it)@.";

  Fmt.pr "@.== Ablation: poison-block merging (§5.3) on CU area ==@.";
  Fmt.pr "%-8s %12s %12s %8s@." "kernel" "merged-area" "unmerged" "saved";
  List.iter
    (fun depth ->
      let k = Synthetic.workload ~n:100 ~depth () in
      let area merge =
        let p =
          Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec ~merge
            (k.Kernels.build ())
        in
        (Dae_sim.Area.decoupled p).Dae_sim.Area.cu
      in
      let m = area true and u = area false in
      Fmt.pr "%-8s %12d %12d %7.1f%%@."
        (Fmt.str "nest%d" depth)
        m u
        (100. *. (1. -. (float_of_int m /. float_of_int u))))
    [ 2; 4; 6 ];
  let k = Kernels.mm ~left:40 ~right:40 ~m:200 () in
  let area merge =
    let p =
      Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec ~merge
        (k.Kernels.build ())
    in
    (Dae_sim.Area.decoupled p).Dae_sim.Area.cu
  in
  Fmt.pr "%-8s %12d %12d %7.1f%%@." "mm" (area true) (area false)
    (100. *. (1. -. (float_of_int (area true) /. float_of_int (area false))));

  Fmt.pr "@.== Ablation: vectorized speculative requests (paper §10) ==@.";
  Fmt.pr "%-8s" "width";
  List.iter (fun v -> Fmt.pr " %8d" v) ablation_widths;
  Fmt.pr "@.";
  List.iter
    (fun ((name, _, _) as k) ->
      Fmt.pr "%-8s" name;
      List.iter
        (fun v -> Fmt.pr " %8d" (get (ablation_vw_req k v)).o_cycles)
        ablation_widths;
      Fmt.pr "@.")
    ablation_vw_kernels;
  Fmt.pr
    "(a vector of requests per cycle with a CU store mask lifts the \
     per-channel port and kill limits; the SRAM ports stay scalar — \
     load-port-bound kernels like thr are unaffected)@.";

  Fmt.pr "@.== Ablation: partial if-conversion (§9) ==@.";
  (* a branchy elementwise max: its diamond is pure, so if-conversion
     flattens it to a select and drops two scheduler states *)
  let branchy_max () =
    let open Dae_ir in
    let b = Builder.create ~name:"vmax" ~params:[ "n" ] in
    let (_ : Dae_ir.Types.operand list) =
      Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
          let x = Builder.load b "xa" i in
          let y = Builder.load b "ya" i in
          let c = Builder.cmp b Instr.Sgt x y in
          let m =
            match
              Builder.if_values b c ~tys:[ Dae_ir.Types.I32 ]
                ~then_:(fun _ -> [ x ])
                ~else_:(fun _ -> [ y ])
            with
            | [ m ] -> m
            | _ -> assert false
          in
          Builder.store b "out" ~idx:i ~value:m;
          [])
    in
    Builder.seal b
  in
  let f = branchy_max () in
  let before_blocks = List.length f.Dae_ir.Func.layout in
  let sta_before = Dae_sim.Sta.analyze f in
  let flattened = Dae_ir.If_convert.run f in
  ignore (Dae_ir.Const_fold.run f);
  Dae_ir.Simplify.run f;
  Dae_ir.Verify.check_exn f;
  let sta_after = Dae_sim.Sta.analyze f in
  Fmt.pr
    "vmax: %d -> %d blocks (%d diamond flattened); STA pipeline depth %d -> \
     %d; area %d -> %d@."
    before_blocks
    (List.length f.Dae_ir.Func.layout)
    flattened sta_before.Dae_sim.Sta.pipeline_depth
    sta_after.Dae_sim.Sta.pipeline_depth
    (Dae_sim.Area.sta (branchy_max ())).Dae_sim.Area.total
    (Dae_sim.Area.sta f).Dae_sim.Area.total

(* --- channel-sizing sweep: the static analyzer vs the simulator -------------- *)

(* For every paper-suite kernel in both decoupled modes: run the sizing
   analyzer at the default config, re-simulate at the analyzer's minimum
   safe depths (must complete deadlock-free within the predicted cycle
   bound), then decrement the critical channel's class knob below its
   minimum and confirm the simulator either trips its dynamic deadlock
   detector or degrades rather than completing faster. *)
let sizing_print () =
  Fmt.pr "@.== Channel sizing: static minimums cross-validated in the sim ==@.";
  Fmt.pr "%-6s %-5s %4s %8s %-14s %10s %12s  %s@." "kernel" "mode" "min"
    "matched" "critical" "cyc@min" "bound" "critical at min-1";
  List.iter
    (fun (k : Kernels.t) ->
      List.iter
        (fun (mname, mode, arch) ->
          match
            Dae_core.Pipeline.compile ~mode
              (Dae_ir.Func.clone ((k.Kernels.build) ()))
          with
          | exception Dae_core.Pipeline.Compile_error e ->
            Fmt.pr "%-6s %-5s compile error: %s@." k.Kernels.name mname e
          | p -> (
            match
              Dae_analysis.Sizing.analyze ~cfg:Dae_sim.Config.default p
            with
            | Error _ ->
              Fmt.pr "%-6s %-5s (segment budget exceeded, skipped)@."
                k.Kernels.name mname
            | Ok sz ->
              let fold f init =
                List.fold_left f init sz.Dae_analysis.Sizing.channels
              in
              let min_max =
                fold (fun a s -> max a s.Dae_analysis.Sizing.sz_min) 1
              in
              let matched_max =
                fold (fun a s -> max a s.Dae_analysis.Sizing.sz_matched) 1
              in
              (* one functional execution; both the minimum-depth run and
                 the boundary probe only replay its stored traces *)
              let prepared =
                Dae_sim.Retime.prepare
                  (Dae_sim.Retime.plan arch (k.Kernels.build ()))
                  ~invocations:(k.Kernels.invocations ())
                  ~mem:(k.Kernels.init_mem ())
              in
              let simulate ?(validate = true) cfg =
                Dae_sim.Retime.simulate ~validate ~collect:true ~cfg prepared
              in
              let r = simulate sz.Dae_analysis.Sizing.min_cfg in
              let bound =
                Dae_analysis.Sizing.bound_of_timelines sz
                  r.Dae_sim.Machine.timelines
              in
              if r.Dae_sim.Machine.cycles > bound then
                Fmt.failwith
                  "%s (%s): %d cycles at the analyzer's minimum depths \
                   exceed the predicted bound %d"
                  k.Kernels.name mname r.Dae_sim.Machine.cycles bound;
              let critical, probe =
                match Dae_analysis.Sizing.critical_decrement sz with
                | None -> ("-", "no critical channel")
                | Some (kind, probe_cfg) -> (
                  let cname = Dae_analysis.Channel.name kind in
                  match simulate ~validate:false probe_cfg with
                  | r' ->
                    ( cname,
                      Printf.sprintf "%d cycles (%+.1f%% vs min)"
                        r'.Dae_sim.Machine.cycles
                        (100.
                        *. (float_of_int r'.Dae_sim.Machine.cycles
                            /. float_of_int r.Dae_sim.Machine.cycles
                           -. 1.)) )
                  | exception Dae_sim.Timing.Deadlock _ ->
                    (cname, "dynamic deadlock (as predicted)")
                  | exception Invalid_argument _ ->
                    (cname, "rejected by Config.validate"))
              in
              Fmt.pr "%-6s %-5s %4d %8d %-14s %10d %12d  %s@." k.Kernels.name
                mname min_max matched_max critical r.Dae_sim.Machine.cycles
                bound probe))
        [
          ("dae", Dae_core.Pipeline.Dae, Dae_sim.Machine.Dae);
          ("spec", Dae_core.Pipeline.Spec, Dae_sim.Machine.Spec);
        ])
    (Kernels.paper_suite ());
  Fmt.pr
    "(analyzer minimums keep every kernel deadlock-free; one step below \
     the critical channel's minimum is the deadlock boundary)@."

(* --- leak: static speculative-leakage census over the suite ------------------ *)

(* Kept for the JSON emitter: (kernel, mode, taint verdict) rows. *)
let leak_rows : (string * string * Dae_analysis.Taint.t) list ref = ref []

(* Pure static analysis — no simulation jobs to declare; the dynamic
   witness confirmation lives in `daec leak --witness` and the @ci
   leak-quick golden, where its budget is controlled. *)
let leak_print () =
  Fmt.pr "@.== Speculative leakage: taint verdicts (daec leak) ==@.";
  Fmt.pr "%-6s %-5s %8s %6s %6s %6s %6s  %s@." "kernel" "mode" "sources"
    "sites" "ld-a" "st-a" "ctrl" "verdict";
  let rows = ref [] in
  List.iter
    (fun (k : Kernels.t) ->
      List.iter
        (fun (mode, mname) ->
          match Dae_core.Pipeline.compile ~mode (k.Kernels.build ()) with
          | exception Dae_core.Pipeline.Compile_error e ->
            Fmt.pr "%-6s %-5s compile error: %s@." k.Kernels.name mname e
          | p ->
            let t = Dae_analysis.Taint.analyze p in
            let count kind =
              List.length
                (List.filter
                   (fun (s : Dae_analysis.Taint.site) ->
                     s.Dae_analysis.Taint.s_kind = kind)
                   t.Dae_analysis.Taint.sites)
            in
            Fmt.pr "%-6s %-5s %8d %6d %6d %6d %6d  %s@." k.Kernels.name mname
              (List.length t.Dae_analysis.Taint.sources)
              (List.length t.Dae_analysis.Taint.sites)
              (count Dae_analysis.Taint.Load_addr)
              (count Dae_analysis.Taint.Store_addr)
              (count Dae_analysis.Taint.Control)
              (if Dae_analysis.Taint.clean t then "clean" else "LEAKY");
            rows := (k.Kernels.name, mname, t) :: !rows)
        [ (Dae_core.Pipeline.Dae, "dae"); (Dae_core.Pipeline.Spec, "spec") ])
    (bench_suite ());
  Fmt.pr
    "(sources = values loaded by hoisted pre-guard requests; a kernel is \
     clean when no tainted address, branch or produced value exists)@.";
  leak_rows := List.rev !rows

(* --- sweep: the trace-driven re-timing DSE engine, cold and warm ------------- *)

(* Parsed before the sections run; the sweep section reuses the pool
   bound. *)
let pool_jobs = ref (Dae_sim.Runner.default_domains ())

(* Kept for the JSON emitter: (label, summary) for the cold and warm
   passes. *)
let sweep_summaries : (string * Dae_dse.Sweep.summary) list ref = ref []

(* Quick-suite kernels × {DAE, SPEC, ORACLE} × the default capacity grid
   (648 configurations each): one functional execution per kernel and
   architecture, everything else is timing replay. Run twice over a fresh
   cache directory — the cold pass measures the re-timing engine, the
   warm pass measures the memoization (it must execute nothing and hit on
   every point). STA is excluded: its cycles do not depend on the swept
   capacities, so every axis collapses to one point. *)
let sweep_print () =
  Fmt.pr "@.== Design-space sweep: re-timed, memoized (daec sweep) ==@.";
  let dir = Filename.concat "_daec_cache" "bench" in
  let cache () = Dae_sim.Cache.create ~dir () in
  ignore (Dae_sim.Cache.clear (cache ()));
  let workloads =
    List.map
      (Dae_dse.Sweep.workload_of_kernel ~suite:"quick")
      (Kernels.test_suite ())
  in
  let sweep () =
    Dae_dse.Sweep.run ~domains:!pool_jobs ~cache:(cache ())
      ~axes:Dae_dse.Sweep.default_axes
      ~archs:
        [ Dae_sim.Machine.Dae; Dae_sim.Machine.Spec; Dae_sim.Machine.Oracle ]
      workloads
  in
  let cold = sweep () in
  let warm = sweep () in
  Fmt.pr "-- cold --@.%a@." Dae_dse.Sweep.pp_summary cold.Dae_dse.Sweep.summary;
  Fmt.pr "-- warm --@.%a@." Dae_dse.Sweep.pp_summary warm.Dae_dse.Sweep.summary;
  let cs = cold.Dae_dse.Sweep.summary and ws = warm.Dae_dse.Sweep.summary in
  Fmt.pr
    "warm re-sweep: %.1fx faster, %.1f%% hit rate, %d functional \
     executions@."
    (cs.Dae_dse.Sweep.sm_wall_s /. ws.Dae_dse.Sweep.sm_wall_s)
    (100. *. ws.Dae_dse.Sweep.sm_hit_rate)
    ws.Dae_dse.Sweep.sm_prepares;
  if cs.Dae_dse.Sweep.sm_check_failures <> []
     || ws.Dae_dse.Sweep.sm_check_failures <> []
  then
    Fmt.failwith "sweep cross-checks failed: %s"
      (String.concat "; "
         (cs.Dae_dse.Sweep.sm_check_failures
         @ ws.Dae_dse.Sweep.sm_check_failures));
  if cs.Dae_dse.Sweep.sm_sizing_violations <> [] then
    Fmt.failwith "sweep sizing violations: %s"
      (String.concat "; " cs.Dae_dse.Sweep.sm_sizing_violations);
  (* the hierarchy-axis grid, cold and warm: same memoization story over
     the memory-system dimensions (banks × ways × MSHRs × DRAM). The warm
     pass is this PR's acceptance anchor — at least 95% of its points
     must come from the cache. *)
  let hier_sweep () =
    Dae_dse.Sweep.run ~domains:!pool_jobs ~cache:(cache ())
      ~axes:Dae_dse.Sweep.hierarchy_axes
      ~archs:
        [ Dae_sim.Machine.Dae; Dae_sim.Machine.Spec; Dae_sim.Machine.Oracle ]
      workloads
  in
  let hcold = hier_sweep () in
  let hwarm = hier_sweep () in
  let hcs = hcold.Dae_dse.Sweep.summary
  and hws = hwarm.Dae_dse.Sweep.summary in
  Fmt.pr "-- hierarchy cold --@.%a@." Dae_dse.Sweep.pp_summary hcs;
  Fmt.pr "-- hierarchy warm --@.%a@." Dae_dse.Sweep.pp_summary hws;
  Fmt.pr
    "hierarchy warm re-sweep: %.1fx faster, %.1f%% hit rate, %d functional \
     executions@."
    (hcs.Dae_dse.Sweep.sm_wall_s /. hws.Dae_dse.Sweep.sm_wall_s)
    (100. *. hws.Dae_dse.Sweep.sm_hit_rate)
    hws.Dae_dse.Sweep.sm_prepares;
  if hcs.Dae_dse.Sweep.sm_check_failures <> []
     || hws.Dae_dse.Sweep.sm_check_failures <> []
  then
    Fmt.failwith "hierarchy sweep cross-checks failed: %s"
      (String.concat "; "
         (hcs.Dae_dse.Sweep.sm_check_failures
         @ hws.Dae_dse.Sweep.sm_check_failures));
  if hws.Dae_dse.Sweep.sm_hit_rate < 0.95 then
    Fmt.failwith
      "hierarchy warm re-sweep hit rate %.1f%% below the required 95%%"
      (100. *. hws.Dae_dse.Sweep.sm_hit_rate);
  sweep_summaries :=
    [ ("cold", cs); ("warm", ws); ("hier_cold", hcs); ("hier_warm", hws) ]

(* --- mem: fig6/table1 re-run under the banked-cache + DRAM hierarchy --------- *)

(* Two hierarchy points: the CLI's --mem cache baseline and a deliberately
   starved one (direct-mapped single bank, 2 MSHRs, slow narrow DRAM) that
   pushes the Mshr_full/Dram_bank partitions into the attribution. STA is
   left out of the hierarchy tables — its analytic in-order model prices
   loads at the scratchpad latency, so normalizing against it under a
   cache would be meaningless; the fig6 half instead normalizes SPEC and
   ORACLE to DAE (the latency-tolerance claim), and each point also
   reports SPEC's slowdown against its own scratchpad run. *)
let mem_points =
  [
    ("cache-base", Dae_sim.Config.default_geom);
    ( "cache-small",
      {
        Dae_sim.Config.banks = 1;
        sets = 8;
        ways = 1;
        line_words = 4;
        hit_latency = 2;
        mshrs = 2;
        dram =
          {
            Dae_sim.Config.dram_banks = 2;
            row_words = 128;
            t_row_hit = 30;
            t_row_miss = 80;
            t_bus = 8;
          };
      } );
  ]

let mem_archs =
  [ Dae_sim.Machine.Dae; Dae_sim.Machine.Spec; Dae_sim.Machine.Oracle ]

let mem_cfg geom =
  {
    Dae_sim.Config.default with
    Dae_sim.Config.hierarchy = Dae_sim.Config.Hierarchy geom;
  }

let mem_req geom name arch =
  req ~cfg:(mem_cfg geom) ~kernel:name ~arch (fun () ->
      match Kernels.by_name (bench_suite ()) name with
      | Some k -> k
      | None -> assert false)

let mem_reqs () =
  List.concat_map
    (fun (k : Kernels.t) ->
      (* the scratchpad SPEC point anchors the slowdown column; dedup by
         key merges it with fig6/table1's identical job *)
      suite_req k.Kernels.name Dae_sim.Machine.Spec
      :: List.concat_map
           (fun (_, geom) ->
             List.map (mem_req geom k.Kernels.name) mem_archs)
           mem_points)
    (bench_suite ())

let mem_print () =
  List.iter
    (fun (pname, geom) ->
      Fmt.pr "@.== Memory hierarchy %s: %a ==@." pname
        Dae_sim.Config.pp_hierarchy
        (Dae_sim.Config.Hierarchy geom);
      Fmt.pr "%-6s %10s %10s %10s %9s %9s %11s@." "kernel" "DAE" "SPEC"
        "ORACLE" "SPEC/DAE" "ORA/DAE" "vs-scratch";
      let spec_norms = ref [] and slowdowns = ref [] in
      List.iter
        (fun (k : Kernels.t) ->
          let cycles arch =
            float_of_int (get (mem_req geom k.Kernels.name arch)).o_cycles
          in
          let dae = cycles Dae_sim.Machine.Dae in
          let spec = cycles Dae_sim.Machine.Spec in
          let oracle = cycles Dae_sim.Machine.Oracle in
          let scratch_spec =
            float_of_int
              (get (suite_req k.Kernels.name Dae_sim.Machine.Spec)).o_cycles
          in
          spec_norms := (dae /. spec) :: !spec_norms;
          slowdowns := (spec /. scratch_spec) :: !slowdowns;
          Fmt.pr "%-6s %10.0f %10.0f %10.0f %8.2fx %8.2fx %10.2fx@."
            k.Kernels.name dae spec oracle (dae /. spec) (dae /. oracle)
            (spec /. scratch_spec))
        (bench_suite ());
      Fmt.pr
        "SPEC harmonic-mean speedup over DAE: %.2fx; harmonic-mean SPEC \
         slowdown vs scratchpad: %.2fx@."
        (harmonic_mean !spec_norms)
        (harmonic_mean !slowdowns))
    mem_points

(* --- mlp: N-way access-unit scaling on the graph/irregular kernels --------- *)

(* The static partitioner's case for more than one access unit: under the
   cache hierarchy (cache-base geometry), re-run DAE with the address
   streams split across 1 (classic AGU), 2, and the inferred natural N
   access units. Independent streams in their own units issue their
   misses concurrently instead of serializing behind one AGU's blocked
   loads, so the MLP — and with it the cycle count — should improve on
   the kernels whose partition DAG is wider than the classic split. The
   1-unit point is partition-free and dedups with the mem section's
   cache-base DAE job. *)
let mlp_kernels = [ "bfs"; "bc"; "sssp"; "mm"; "spmv" ]

let mlp_units name =
  match Kernels.by_name (bench_suite ()) name with
  | None -> []
  | Some k ->
    let natural =
      Dae_analysis.Partition.analyze (k.Kernels.build ())
    in
    let n = natural.Dae_analysis.Partition.assignment.Dae_core.Decouple.n_access in
    List.sort_uniq compare [ 1; min 2 n; n ]

let mlp_req name units =
  let mk () =
    match Kernels.by_name (bench_suite ()) name with
    | Some k -> k
    | None -> assert false
  in
  let partition =
    if units <= 1 then None
    else
      let k = mk () in
      Some
        (Dae_analysis.Partition.analyze ~max_units:units (k.Kernels.build ()))
          .Dae_analysis.Partition.assignment
  in
  req
    ~cfg:(mem_cfg Dae_sim.Config.default_geom)
    ?partition ~kernel:name ~arch:Dae_sim.Machine.Dae mk

let mlp_reqs () =
  List.concat_map
    (fun name -> List.map (mlp_req name) (mlp_units name))
    mlp_kernels

let mlp_print () =
  Fmt.pr
    "@.== MLP scaling: DAE cycles vs access-unit count (cache-base) ==@.";
  Fmt.pr "%-6s %6s %10s %10s %10s %9s %9s@." "kernel" "units" "1-unit"
    "2-unit" "N-unit" "2u/1u" "Nu/2u";
  List.iter
    (fun name ->
      match mlp_units name with
      | [] -> ()
      | units ->
        let cycles u = float_of_int (get (mlp_req name u)).o_cycles in
        let n = List.fold_left max 1 units in
        let c1 = cycles 1 in
        let c2 = if List.mem 2 units then cycles 2 else c1 in
        let cn = cycles n in
        Fmt.pr "%-6s %6d %10.0f %10.0f %10.0f %8.2fx %8.2fx@." name n c1 c2
          cn (c1 /. c2) (c2 /. cn))
    mlp_kernels

(* --- smoke: tiny sweep exercising the pool and the JSON emitter ------------- *)

let smoke_reqs () =
  List.map
    (fun arch -> req ~kernel:"hist~n128" ~arch (fun () -> Kernels.hist ~n:128 ()))
    archs
  @ [
      req ~kernel:"nest2~n32" ~arch:Dae_sim.Machine.Spec (fun () ->
          Synthetic.workload ~n:32 ~depth:2 ());
    ]

let smoke_print () =
  Fmt.pr "@.== Smoke: tiny kernels through the job pool ==@.";
  List.iter
    (fun r ->
      let o = get r in
      Fmt.pr "%-12s %-7s %8d cycles  misspec %5.1f%%  area %6d@." o.o_kernel
        o.o_arch o.o_cycles (100. *. o.o_misspec) o.o_area_total)
    (smoke_reqs ())

(* --- Bechamel micro-benchmarks of the compiler passes --------------------------- *)

let micro () =
  Fmt.pr "@.== Compiler pass micro-benchmarks (Bechamel) ==@.";
  let open Bechamel in
  let open Toolkit in
  let fig6_kernel () = (Kernels.hist ()).Kernels.build () in
  let fig4 () =
    (* the running example used throughout: parse cost included once *)
    (Synthetic.workload ~n:10 ~depth:4 ()).Kernels.build ()
  in
  let tests =
    [
      (* one Test.make per experiment id: the compile work behind each *)
      Test.make ~name:"fig6-spec-compile"
        (Staged.stage (fun () ->
             ignore
               (Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec
                  (fig6_kernel ()))));
      Test.make ~name:"table1-lod-analysis"
        (Staged.stage (fun () -> ignore (Dae_core.Lod.analyze (fig6_kernel ()))));
      Test.make ~name:"table2-dae-compile"
        (Staged.stage (fun () ->
             ignore
               (Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Dae
                  (fig6_kernel ()))));
      Test.make ~name:"fig7-nested-spec-compile"
        (Staged.stage (fun () ->
             ignore
               (Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec
                  (fig4 ()))));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = benchmark (Test.make_grouped ~name:"passes" ~fmt:"%s %s" tests) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "%-32s %12.1f ns/run@." name est
      | _ -> Fmt.pr "%-32s (no estimate)@." name)
    results

(* --- JSON emitter ------------------------------------------------------------ *)

(* Perf-trajectory denominators, all measured on this host at --jobs 1:
   the seed cycle-polling engine (PR 1), the BENCH_4 event-driven engine
   with the tree-walking co-simulator, and the BENCH_5 lowered micro-op
   engine immediately before this PR's trace-driven re-timing — whose 93
   fused jobs in 45.455 s are the sweep section's points-per-second
   baseline. *)
let seed_fig6_table1_wall_s = 142.5
let bench4_fig6_table1_wall_s = 26.626
let bench4_suite_wall_s = 87.390
let bench5_suite_wall_s = 45.455
let bench5_suite_jobs = 93

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pool_json (s : Dae_sim.Runner.pool_stats) =
  Printf.sprintf
    "{ \"domains\": %d, \"wall_s\": %.3f, \"utilization\": %.4f, \
     \"steals\": %d, \"workers\": [%s] }"
    s.Dae_sim.Runner.p_domains s.Dae_sim.Runner.p_wall_s
    (Dae_sim.Runner.utilization s)
    (Dae_sim.Runner.total_steals s)
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun (w : Dae_sim.Runner.worker_stats) ->
               Printf.sprintf
                 "{ \"jobs\": %d, \"steals\": %d, \"busy_s\": %.3f }"
                 w.Dae_sim.Runner.w_jobs w.Dae_sim.Runner.w_steals
                 w.Dae_sim.Runner.w_busy_s)
             s.Dae_sim.Runner.p_workers)))

let sweep_json (label, (s : Dae_dse.Sweep.summary)) =
  Printf.sprintf
    "\"%s\": { \"points\": %d, \"deadlocked\": %d, \"wall_s\": %.3f, \
     \"points_per_s\": %.0f, \"functional_executions\": %d, \"cache\": { \
     \"hits\": %d, \"misses\": %d, \"stores\": %d, \"corrupt\": %d, \
     \"hit_rate\": %.4f }, \"cross_checks\": %d, \"cross_check_failures\": \
     %d, \"sizing_jobs_validated\": %d, \"sizing_violations\": %d, \
     \"pool\": %s }"
    label s.Dae_dse.Sweep.sm_points s.Dae_dse.Sweep.sm_deadlocked
    s.Dae_dse.Sweep.sm_wall_s
    (if s.Dae_dse.Sweep.sm_wall_s > 0. then
       float_of_int s.Dae_dse.Sweep.sm_points /. s.Dae_dse.Sweep.sm_wall_s
     else 0.)
    s.Dae_dse.Sweep.sm_prepares s.Dae_dse.Sweep.sm_cache.Dae_sim.Cache.hits
    s.Dae_dse.Sweep.sm_cache.Dae_sim.Cache.misses
    s.Dae_dse.Sweep.sm_cache.Dae_sim.Cache.stores
    s.Dae_dse.Sweep.sm_cache.Dae_sim.Cache.corrupt
    s.Dae_dse.Sweep.sm_hit_rate s.Dae_dse.Sweep.sm_checks
    (List.length s.Dae_dse.Sweep.sm_check_failures)
    s.Dae_dse.Sweep.sm_sizing_checked
    (List.length s.Dae_dse.Sweep.sm_sizing_violations)
    (pool_json s.Dae_dse.Sweep.sm_pool)

let write_json ~path ~sections ~domains ~wall_s ~pool ~section_stats
    (outs : (string * sim_out) list) =
  let oc =
    try open_out path
    with Sys_error msg ->
      Fmt.epr "cannot write %s: %s@." path msg;
      exit 1
  in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"dae-bench/1\",\n";
  p "  \"sections\": [%s],\n"
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) sections));
  p "  \"domains\": %d,\n" domains;
  p "  \"jobs\": %d,\n" (List.length outs);
  p "  \"wall_s\": %.3f,\n" wall_s;
  p "  \"pool\": %s,\n" (pool_json pool);
  (* per-section accounting: distinct simulation jobs, the sum of their
     per-job walls, and the render's own wall — the perf trajectory of
     each table/figure is machine-readable, not just the whole run's *)
  p "  \"section_stats\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun (name, jobs, sim_s, print_s) ->
            Printf.sprintf
              "{ \"section\": \"%s\", \"jobs\": %d, \"sim_wall_s\": %.3f, \
               \"print_wall_s\": %.3f }"
              (json_escape name) jobs sim_s print_s)
          section_stats));
  (match !sweep_summaries with
  | [] -> ()
  | summaries ->
    p
      "  \"sweep\": { \"grid\": \"default+hierarchy\", \"suite\": \
       \"quick\", %s },\n"
      (String.concat ", " (List.map sweep_json summaries)));
  (match !leak_rows with
  | [] -> ()
  | rows ->
    p "  \"leak\": [%s],\n"
      (String.concat ", "
         (List.map
            (fun (kernel, mode, (t : Dae_analysis.Taint.t)) ->
              Printf.sprintf
                "{ \"kernel\": \"%s\", \"mode\": \"%s\", \"sources\": %d, \
                 \"sites\": %d, \"speculative_sites\": %d, \"clean\": %b }"
                (json_escape kernel) (json_escape mode)
                (List.length t.Dae_analysis.Taint.sources)
                (List.length t.Dae_analysis.Taint.sites)
                (List.length
                   (List.filter
                      (fun (s : Dae_analysis.Taint.site) ->
                        s.Dae_analysis.Taint.s_speculative)
                      t.Dae_analysis.Taint.sites))
                (Dae_analysis.Taint.clean t))
            rows)));
  p
    "  \"baseline\": { \"bench\": \"BENCH_5.json\", \"engine\": \
     \"lowered micro-op co-sim, fused exec+timing per point\", \
     \"suite_wall_s\": %.3f, \"suite_jobs\": %d, \
     \"fig6_table1_wall_s_bench4\": %.3f, \"suite_wall_s_bench4\": %.3f, \
     \"seed_fig6_table1_wall_s\": %.1f },\n"
    bench5_suite_wall_s bench5_suite_jobs bench4_fig6_table1_wall_s
    bench4_suite_wall_s seed_fig6_table1_wall_s;
  let stats_json (stats : Dae_sim.Stats.keyed) =
    (* nonzero causes only: the full 11-row vector is mostly zeros *)
    String.concat ", "
      (List.map
         (fun (unit, c) ->
           Printf.sprintf "\"%s\": { %s }" (json_escape unit)
             (String.concat ", "
                (List.filter_map
                   (fun (cause, n) ->
                     if n = 0 then None
                     else Some (Printf.sprintf "\"%s\": %d" cause n))
                   (Dae_sim.Stats.to_list c))))
         stats)
  in
  p "  \"results\": [\n";
  List.iteri
    (fun i (key, o) ->
      p
        "    { \"key\": \"%s\", \"kernel\": \"%s\", \"arch\": \"%s\", \
         \"cfg\": \"%s\", \"cycles\": %d, \"misspec_rate\": %.6f, \
         \"area\": %d, \"area_cu\": %d, \"area_agu\": %d, \"pblk\": %d, \
         \"pcall\": %d, \"killed_stores\": %d, \"committed_stores\": %d, \
         \"check_errors\": %d, \"check_warnings\": %d, \
         \"sizing_verdict\": \"%s\", \"min_depths\": { %s }, \
         \"stats\": { %s }, \"gc\": { \"minor_words\": %.0f, \
         \"major_words\": %.0f, \"minor_collections\": %d, \
         \"major_collections\": %d }, \"wall_s\": %.6f }%s\n"
        (json_escape key) (json_escape o.o_kernel) (json_escape o.o_arch)
        (json_escape o.o_cfg) o.o_cycles o.o_misspec o.o_area_total
        o.o_area_cu o.o_area_agu o.o_pblk o.o_pcall o.o_killed o.o_committed
        o.o_check_errors o.o_check_warnings
        (json_escape o.o_sizing_verdict)
        (String.concat ", "
           (List.map
              (fun (n, d) -> Printf.sprintf "\"%s\": %d" (json_escape n) d)
              o.o_min_depths))
        (stats_json o.o_stats) o.o_gc_minor_words o.o_gc_major_words
        o.o_gc_minor_collections o.o_gc_major_collections o.o_wall_s
        (if i = List.length outs - 1 then "" else ","))
    outs;
  p "  ]\n}\n";
  close_out oc

(* --- driver ------------------------------------------------------------------ *)

type section = {
  s_name : string;
  s_reqs : unit -> sim_req list;
  s_print : unit -> unit;
}

let sections_all =
  [
    { s_name = "fig6"; s_reqs = suite_reqs; s_print = fig6_print };
    { s_name = "table1"; s_reqs = suite_reqs; s_print = table1_print };
    { s_name = "table2"; s_reqs = table2_reqs; s_print = table2_print };
    { s_name = "fig7"; s_reqs = fig7_reqs; s_print = fig7_print };
    { s_name = "ablation"; s_reqs = ablation_reqs; s_print = ablation_print };
    { s_name = "sizing"; s_reqs = (fun () -> []); s_print = sizing_print };
    { s_name = "leak"; s_reqs = (fun () -> []); s_print = leak_print };
    { s_name = "sweep"; s_reqs = (fun () -> []); s_print = sweep_print };
    { s_name = "mem"; s_reqs = mem_reqs; s_print = mem_print };
    { s_name = "mlp"; s_reqs = mlp_reqs; s_print = mlp_print };
    { s_name = "micro"; s_reqs = (fun () -> []); s_print = micro };
    { s_name = "smoke"; s_reqs = smoke_reqs; s_print = smoke_print };
  ]

let default_section_names =
  [ "fig6"; "table1"; "table2"; "fig7"; "ablation"; "sizing"; "leak";
    "sweep"; "mem"; "mlp"; "micro" ]

let () =
  let jobs = pool_jobs in
  let json_path = ref "BENCH_10.json" in
  let expect_path = ref None in
  let no_cache = ref false in
  let cache_dir = ref Dae_sim.Cache.default_dir in
  let names = ref [] in
  let add_section s =
    if List.exists (fun sec -> sec.s_name = s) sections_all then
      names := s :: !names
    else begin
      Fmt.epr "unknown section %s (sections: %s)@." s
        (String.concat " " (List.map (fun sec -> sec.s_name) sections_all));
      exit 2
    end
  in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> jobs := n
      | _ ->
        Fmt.epr "--jobs expects a positive integer, got %s@." n;
        exit 2);
      parse rest
    | "--json" :: p :: rest ->
      json_path := p;
      parse rest
    | "--section" :: s :: rest ->
      add_section s;
      parse rest
    | "--expect" :: p :: rest ->
      expect_path := Some p;
      parse rest
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--cache-dir" :: p :: rest ->
      cache_dir := p;
      parse rest
    | ("--jobs" | "--json" | "--section" | "--expect" | "--cache-dir") :: []
      ->
      Fmt.epr "missing argument@.";
      exit 2
    | s :: rest ->
      add_section s;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* the hierarchy-job memoization cache; --no-cache re-times every
     point, --cache-dir isolates runs (the CI mem-quick rule does both
     passes against a sandbox-local directory) *)
  bench_cache :=
    (if !no_cache then Dae_sim.Cache.disabled ()
     else Dae_sim.Cache.create ~dir:!cache_dir ());
  let names =
    if !names <> [] then List.rev !names
    else if !quick then [ "fig6" ]
    else default_section_names
  in
  let selected =
    List.filter_map
      (fun n -> List.find_opt (fun s -> s.s_name = n) sections_all)
      names
  in
  let t0 = Unix.gettimeofday () in
  (* gather every section's jobs, dedup by key, fan out over the pool *)
  let reqs = List.concat_map (fun s -> s.s_reqs ()) selected in
  let by_key : (string, sim_req) Hashtbl.t = Hashtbl.create 128 in
  List.iter
    (fun r -> if not (Hashtbl.mem by_key r.r_key) then Hashtbl.add by_key r.r_key r)
    reqs;
  (* register one representative request per (kernel, arch, partition)
     before the fan-out: prep_reqs is read-only once workers start *)
  Hashtbl.iter
    (fun _ r ->
      if retimeable r && not (Hashtbl.mem prep_reqs (plan_key r)) then
        Hashtbl.add prep_reqs (plan_key r) r)
    by_key;
  let compute =
    Dae_sim.Runner.memoize (fun key -> run_req (Hashtbl.find by_key key))
  in
  let results, pool =
    Dae_sim.Runner.map_keyed_stats ~domains:!jobs
      ~key:(fun r -> r.r_key)
      ~f:(fun r -> compute r.r_key)
      reqs
  in
  List.iter (fun (key, o) -> Hashtbl.replace table key o) results;
  (* render each section, accounting its distinct jobs, their summed
     per-job simulation walls and the render's own wall *)
  let section_stats =
    List.map
      (fun s ->
        let keys =
          List.sort_uniq String.compare
            (List.map (fun r -> r.r_key) (s.s_reqs ()))
        in
        let sim_s =
          List.fold_left
            (fun acc k -> acc +. (Hashtbl.find table k).o_wall_s)
            0. keys
        in
        let p0 = Unix.gettimeofday () in
        s.s_print ();
        (s.s_name, List.length keys, sim_s, Unix.gettimeofday () -. p0))
      selected
  in
  let wall = Unix.gettimeofday () -. t0 in
  write_json ~path:!json_path ~sections:names ~domains:!jobs ~wall_s:wall
    ~pool ~section_stats results;
  (* --expect: a timing-free "key cycles" table, sorted by key — the
     deterministic artifact the @ci bench-quick rule diffs against its
     committed expectation *)
  (match !expect_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    List.iter
      (fun (key, o) -> Printf.fprintf oc "%s %d\n" key o.o_cycles)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) results);
    close_out oc);
  Fmt.pr
    "@.[bench] %d jobs on %d domain(s) in %.1fs (%.0f%% utilization, %d \
     steals) -> %s@."
    (List.length results) !jobs wall
    (100. *. Dae_sim.Runner.utilization pool)
    (Dae_sim.Runner.total_steals pool)
    !json_path
