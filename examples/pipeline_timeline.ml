(* Pipeline timelines (the paper's Figure 2): when does each channel event
   of each iteration retire, with and without speculation?

   Figure 2(a): decoupled address generation — the AGU streams requests,
   one iteration per cycle. Figure 2(b): non-decoupled — the AGU must wait
   for each iteration's load value before it can decide whether to send
   the store address, so iterations serialize on the round trip.

   The runs go through [Machine.simulate ~collect:true], so besides the
   ASCII art each variant also gets a Perfetto/chrome://tracing JSON
   timeline (fig2_dae.json / fig2_spec.json, via Trace_export) and a
   stall-attribution table.

     dune exec examples/pipeline_timeline.exe *)

open Dae_ir
open Dae_sim

let fig2 () =
  let b = Builder.create ~name:"fig2" ~params:[ "n" ] in
  (* `if (A[i] > 0) A[i] = 0` over 6 elements *)
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let v = Builder.load b "A" i in
        let c = Builder.cmp b Instr.Sgt v (Builder.int 0) in
        Builder.if_ b c
          ~then_:(fun b -> Builder.store b "A" ~idx:i ~value:(Builder.int 0))
          ();
        [])
  in
  Builder.seal b

let timeline arch =
  let mem = Interp.Memory.create [ ("A", [| 3; -1; 4; -1; 5; -9 |]) ] in
  let r =
    Machine.simulate ~collect:true arch (fig2 ())
      ~invocations:[ [ ("n", Types.Vint 6) ] ]
      ~mem
  in
  match r.Machine.timelines with
  | [ tl ] -> (r, tl)
  | _ -> assert false

let show name (tr : Trace.unit_trace) (retire : int array) ~width =
  Fmt.pr "%s@." name;
  for k = 0 to Trace.length tr - 1 do
    let cycle = retire.(k) in
    let bar =
      String.concat "" (List.init (min cycle width) (fun _ -> ".")) ^ "#"
    in
    Fmt.pr "  i%-2d %-24s |%-*s| t=%d@." (Trace.iter tr k)
      (Fmt.str "%a" Trace.pp_ev (Trace.ev tr k))
      (width + 1) bar cycle
  done

let export path (r : Machine.result) =
  Trace_export.write_file ~path ~kernel:"fig2" r;
  Fmt.pr "  timeline JSON -> %s (open in ui.perfetto.dev)@." path

let () =
  Fmt.pr
    "== Figure 2(b): DAE without speculation — the AGU serializes on the \
     value round trip ==@.";
  let r, tl = timeline Machine.Dae in
  show "AGU" tl.Machine.t_agu tl.Machine.t_timing.Timing.agu_retire ~width:60;
  Fmt.pr "  total: %d cycles for 6 iterations@." r.Machine.cycles;
  Fmt.pr "%a" Machine.pp_stats r;
  export "fig2_dae.json" r;
  Fmt.pr "@.";

  Fmt.pr
    "== Figure 2(a)/1(c): with speculation — requests stream at II=1 ==@.";
  let r, tl = timeline Machine.Spec in
  show "AGU" tl.Machine.t_agu tl.Machine.t_timing.Timing.agu_retire ~width:60;
  show "CU" tl.Machine.t_cu tl.Machine.t_timing.Timing.cu_retire ~width:60;
  Fmt.pr "  total: %d cycles for 6 iterations@." r.Machine.cycles;
  Fmt.pr "%a" Machine.pp_stats r;
  export "fig2_spec.json" r
