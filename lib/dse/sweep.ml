(* Memoized design-space sweep over the re-timing engine (see sweep.mli).

   Shape: one pool job per (workload, arch). Inside a job the grid loop
   consults the cache per configuration and lazily runs the functional
   execution (Retime.prepare) on the first miss — a fully warm job never
   executes a single instruction, and a fully cold job executes each
   invocation exactly once for the whole grid. Points carry their full
   stall partition so cached results remain cross-checkable bit-for-bit
   against a fresh fused simulation. *)

open Dae_ir
module Machine = Dae_sim.Machine
module Config = Dae_sim.Config
module Cache = Dae_sim.Cache
module Retime = Dae_sim.Retime
module Runner = Dae_sim.Runner
module Stats = Dae_sim.Stats
module Timing = Dae_sim.Timing
module Kernels = Dae_workloads.Kernels

(* --- grid ----------------------------------------------------------------- *)

type axes = {
  req_fifo : int list;
  val_fifo : int list;
  stv_fifo : int list;
  lq : int list;
  sq : int list;
  hier : Config.hierarchy list; (* [] = keep the base hierarchy *)
}

let default_axes =
  {
    req_fifo = [ 0; 1; 2; 4; 8; 16 ];
    val_fifo = [ 0; 1; 2; 8 ];
    stv_fifo = [ 0; 1; 4 ];
    lq = [ 1; 2; 4 ];
    sq = [ 2; 8; 32 ];
    hier = [];
  }

let quick_axes =
  {
    req_fifo = [ 0; 1; 16 ];
    val_fifo = [ 1; 16 ];
    stv_fifo = [ 16 ];
    lq = [ 4 ];
    sq = [ 4; 32 ];
    hier = [];
  }

(* The hierarchy grid holds capacities at the capacity grid's maxima (no
   deadlock boundary to chart — every point is valid) and sweeps the
   memory system instead: scratchpad anchor, then banks × ways × MSHRs
   crossed with a healthy and a starved DRAM. *)
let hierarchy_axes =
  let g = Config.default_geom in
  let starved_dram =
    { Config.dram_banks = 2; row_words = 128; t_row_hit = 30; t_row_miss = 80; t_bus = 8 }
  in
  let geoms =
    List.concat_map
      (fun banks ->
        List.concat_map
          (fun ways ->
            List.concat_map
              (fun mshrs ->
                List.map
                  (fun dram -> Config.Hierarchy { g with banks; ways; mshrs; dram })
                  [ g.Config.dram; starved_dram ])
              [ 2; 4; 8 ])
          [ 1; 2 ])
      [ 1; 2 ]
  in
  {
    req_fifo = [ 16 ];
    val_fifo = [ 16 ];
    stv_fifo = [ 16 ];
    lq = [ 4 ];
    sq = [ 32 ];
    hier = Config.Scratchpad :: geoms;
  }

let grid ?(base = Config.default) (a : axes) : Config.t list =
  (* hierarchy innermost, defaulting to the base hierarchy alone, so
     grids over the original five axes stay byte-identical in order and
     content to pre-hierarchy versions *)
  let hiers =
    match a.hier with [] -> [ base.Config.hierarchy ] | hs -> hs
  in
  List.concat_map
    (fun rf ->
      List.concat_map
        (fun vf ->
          List.concat_map
            (fun svf ->
              List.concat_map
                (fun lq ->
                  List.concat_map
                    (fun sq ->
                      List.map
                        (fun hier ->
                          {
                            base with
                            Config.request_fifo_capacity = rf;
                            value_fifo_capacity = vf;
                            store_value_fifo_capacity = svf;
                            load_queue_size = lq;
                            store_queue_size = sq;
                            hierarchy = hier;
                          })
                        hiers)
                    a.sq)
                a.lq)
            a.stv_fifo)
        a.val_fifo)
    a.req_fifo

(* --- workloads ------------------------------------------------------------- *)

type workload = {
  w_name : string;
  w_instance : string;
  w_func : Func.t;
  w_invocations : Machine.invocation list;
  w_mem : Interp.Memory.t;
}

let workload_of_kernel ~suite (k : Kernels.t) =
  {
    w_name = k.Kernels.name;
    w_instance = suite ^ "/" ^ k.Kernels.name;
    w_func = k.Kernels.build ();
    w_invocations = k.Kernels.invocations ();
    w_mem = k.Kernels.init_mem ();
  }

(* --- points ---------------------------------------------------------------- *)

type status = Cycles of int | Deadlock

type point = {
  pt_workload : string;
  pt_arch : Machine.arch;
  pt_cfg : string;
  pt_status : status;
  pt_killed : int;
  pt_committed : int;
  pt_stats : (string * (string * int) list) list;
  pt_cached : bool;
}

(* The complete partition, all causes in declaration order — a canonical
   form two independent simulations can be compared on bit-for-bit. *)
let export_stats (keyed : Stats.keyed) =
  List.map
    (fun (unit, t) ->
      ( unit,
        List.map (fun c -> (Stats.cause_name c, Stats.get t c)) Stats.all_causes
      ))
    keyed

(* On-disk payload. The key already pins workload instance, plan digest,
   configuration and engine version; the payload is just the result. *)
type cached_point = {
  cp_status : status;
  cp_killed : int;
  cp_committed : int;
  cp_stats : (string * (string * int) list) list;
}

let payload_tag = "sweep-point/1"

type summary = {
  sm_points : int;
  sm_deadlocked : int;
  sm_wall_s : float;
  sm_prepares : int;
  sm_cache : Cache.counters;
  sm_hit_rate : float;
  sm_pool : Runner.pool_stats;
  sm_checks : int;
  sm_check_failures : string list;
  sm_sizing_checked : int;
  sm_sizing_violations : string list;
}

type t = { points : point list; summary : summary }

(* --- one (workload, arch) job ---------------------------------------------- *)

type job_out = {
  j_points : (Config.t * point) list;
  j_prepares : int;
  j_checks : int;
  j_check_failures : string list;
  j_sizing_checked : int;
  j_sizing_violations : string list;
}

let point_of_cached w arch cfg_key (cp : cached_point) ~cached =
  {
    pt_workload = w.w_name;
    pt_arch = arch;
    pt_cfg = cfg_key;
    pt_status = cp.cp_status;
    pt_killed = cp.cp_killed;
    pt_committed = cp.cp_committed;
    pt_stats = cp.cp_stats;
    pt_cached = cached;
  }

(* Replay one swept point through the fused Machine.simulate and compare
   verdict, cycles, kill/commit counts and the whole stall partition. *)
let cross_check w (cfg, (pt : point)) =
  let full =
    match
      Machine.simulate ~cfg ~validate:false pt.pt_arch w.w_func
        ~invocations:w.w_invocations ~mem:w.w_mem
    with
    | r ->
      {
        cp_status = Cycles r.Machine.cycles;
        cp_killed = r.Machine.killed_stores;
        cp_committed = r.Machine.committed_stores;
        cp_stats = export_stats r.Machine.stats;
      }
    | exception Timing.Deadlock _ ->
      { cp_status = Deadlock; cp_killed = 0; cp_committed = 0; cp_stats = [] }
  in
  let where =
    Fmt.str "%s/%s@%s" w.w_name (Machine.arch_name pt.pt_arch) pt.pt_cfg
  in
  match (pt.pt_status, full.cp_status) with
  | Deadlock, Deadlock -> Ok ()
  | Cycles a, Cycles b when a <> b ->
    Error (Fmt.str "%s: re-timed %d cycles, fused %d" where a b)
  | Cycles _, Cycles _ ->
    if pt.pt_killed <> full.cp_killed || pt.pt_committed <> full.cp_committed
    then Error (Fmt.str "%s: kill/commit counts diverge" where)
    else if pt.pt_stats <> full.cp_stats then
      Error (Fmt.str "%s: stall partitions diverge" where)
    else Ok ()
  | Cycles c, Deadlock ->
    Error (Fmt.str "%s: re-timed %d cycles, fused deadlocks" where c)
  | Deadlock, Cycles c ->
    Error (Fmt.str "%s: re-timed deadlocks, fused runs %d cycles" where c)

let capacities (c : Config.t) =
  ( c.Config.request_fifo_capacity,
    c.Config.value_fifo_capacity,
    c.Config.store_value_fifo_capacity,
    c.Config.load_queue_size,
    c.Config.store_queue_size )

let covers ~(min : Config.t) (c : Config.t) =
  let r, v, s, l, q = capacities c and mr, mv, ms, ml, mq = capacities min in
  r >= mr && v >= mv && s >= ms && l >= ml && q >= mq

let run_job ~cache ~base ~check ~sizing_check ~cfgs (w, arch) : job_out =
  let plan = Retime.plan arch w.w_func in
  let prepares = ref 0 in
  let prepared =
    lazy
      (incr prepares;
       Retime.prepare plan ~invocations:w.w_invocations ~mem:w.w_mem)
  in
  let points =
    List.map
      (fun cfg ->
        let cfg_key = Config.key cfg in
        let key =
          Cache.key
            [
              Cache.version;
              payload_tag;
              Retime.plan_digest plan;
              w.w_instance;
              cfg_key;
            ]
        in
        match (Cache.find cache key : cached_point option) with
        | Some cp -> (cfg, point_of_cached w arch cfg_key cp ~cached:true)
        | None ->
          let cp =
            match
              Retime.simulate ~validate:false ~cfg (Lazy.force prepared)
            with
            | r ->
              {
                cp_status = Cycles r.Machine.cycles;
                cp_killed = r.Machine.killed_stores;
                cp_committed = r.Machine.committed_stores;
                cp_stats = export_stats r.Machine.stats;
              }
            | exception Timing.Deadlock _ ->
              {
                cp_status = Deadlock;
                cp_killed = 0;
                cp_committed = 0;
                cp_stats = [];
              }
          in
          Cache.store ~kind:"sweep-point" cache key cp;
          (cfg, point_of_cached w arch cfg_key cp ~cached:false))
      cfgs
  in
  (* Sampled equivalence audit: [check] points spread over the grid,
     cached or not — a poisoned cache entry fails the same comparison a
     wrong replay would. *)
  let samples =
    if check <= 0 then []
    else
      let n = List.length points in
      let step = max 1 (n / check) in
      List.filteri (fun i _ -> i mod step = 0) points
      |> List.filteri (fun i _ -> i < check)
  in
  let failures =
    List.filter_map
      (fun s -> match cross_check w s with Ok () -> None | Error e -> Some e)
      samples
  in
  (* Deadlock-boundary cross-validation against the static analyzer: a
     deadlock at capacities at or above the analyzer's minima would
     disprove the sizing proof. *)
  let sizing_checked, sizing_violations =
    match (sizing_check, Retime.pipeline plan) with
    | false, _ | _, None -> (0, [])
    | true, Some p -> (
      match Dae_analysis.Sizing.analyze ~cfg:base p with
      | Error _ -> (0, [])
      | Ok sz ->
        let min = sz.Dae_analysis.Sizing.min_cfg in
        ( 1,
          List.filter_map
            (fun (cfg, pt) ->
              match pt.pt_status with
              | Deadlock when covers ~min cfg ->
                Some
                  (Fmt.str
                     "%s/%s@%s: deadlock at capacities >= sizing minima (%s)"
                     w.w_name (Machine.arch_name arch) pt.pt_cfg
                     (Config.key min))
              | _ -> None)
            points ))
  in
  {
    j_points = points;
    j_prepares = !prepares;
    j_checks = List.length samples;
    j_check_failures = failures;
    j_sizing_checked = sizing_checked;
    j_sizing_violations = sizing_violations;
  }

let counters_diff (a : Cache.counters) (b : Cache.counters) : Cache.counters =
  {
    Cache.hits = b.Cache.hits - a.Cache.hits;
    misses = b.Cache.misses - a.Cache.misses;
    corrupt = b.Cache.corrupt - a.Cache.corrupt;
    stores = b.Cache.stores - a.Cache.stores;
  }

let run ?domains ?(base = Config.default) ?(check = 1) ?(sizing_check = true)
    ~cache ~axes ~(archs : Machine.arch list) (workloads : workload list) : t =
  let cfgs = grid ~base axes in
  let before = Cache.counters cache in
  let jobs =
    Array.of_list
      (List.concat_map (fun w -> List.map (fun a -> (w, a)) archs) workloads)
  in
  let outs, pool =
    Runner.map_stats ?domains
      ~f:(run_job ~cache ~base ~check ~sizing_check ~cfgs)
      jobs
  in
  let after = Cache.counters cache in
  let cache_delta = counters_diff before after in
  let points =
    List.concat_map (fun j -> List.map snd j.j_points) (Array.to_list outs)
  in
  let sum f = Array.fold_left (fun acc j -> acc + f j) 0 outs in
  let gather f =
    List.concat_map f (Array.to_list outs)
  in
  {
    points;
    summary =
      {
        sm_points = List.length points;
        sm_deadlocked =
          List.length
            (List.filter (fun p -> p.pt_status = Deadlock) points);
        sm_wall_s = pool.Runner.p_wall_s;
        sm_prepares = sum (fun j -> j.j_prepares);
        sm_cache = cache_delta;
        sm_hit_rate = Cache.hit_rate cache_delta;
        sm_pool = pool;
        sm_checks = sum (fun j -> j.j_checks);
        sm_check_failures = gather (fun j -> j.j_check_failures);
        sm_sizing_checked = sum (fun j -> j.j_sizing_checked);
        sm_sizing_violations = gather (fun j -> j.j_sizing_violations);
      };
  }

(* --- rendering ------------------------------------------------------------- *)

let pp_point ppf (p : point) =
  Fmt.pf ppf "%s %s %s %s" p.pt_workload
    (Machine.arch_name p.pt_arch)
    p.pt_cfg
    (match p.pt_status with
    | Cycles c -> Fmt.str "cycles:%d killed:%d committed:%d" c p.pt_killed p.pt_committed
    | Deadlock -> "deadlock")

let pp_summary ppf (s : summary) =
  Fmt.pf ppf
    "@[<v>points: %d (%d deadlocked)@,\
     wall: %.3f s (%.0f points/s)@,\
     functional executions: %d@,\
     cache: %d hits / %d misses (%.1f%% hit rate), %d stored, %d corrupt@,\
     pool: %d domains, %.0f%% utilization, %d steals@,\
     cross-checks: %d run, %d failed@,\
     sizing: %d jobs validated, %d violations@]"
    s.sm_points s.sm_deadlocked s.sm_wall_s
    (if s.sm_wall_s > 0. then float_of_int s.sm_points /. s.sm_wall_s else 0.)
    s.sm_prepares s.sm_cache.Cache.hits s.sm_cache.Cache.misses
    (100. *. s.sm_hit_rate)
    s.sm_cache.Cache.stores s.sm_cache.Cache.corrupt s.sm_pool.Runner.p_domains
    (100. *. Runner.utilization s.sm_pool)
    (Runner.total_steals s.sm_pool)
    s.sm_checks
    (List.length s.sm_check_failures)
    s.sm_sizing_checked
    (List.length s.sm_sizing_violations)
