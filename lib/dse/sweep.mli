(** Design-space exploration: a memoized configuration sweep over the
    re-timing engine.

    One sweep point is (workload × architecture × configuration). Points
    sharing a workload and architecture share their functional execution:
    the engine builds one {!Dae_sim.Retime.plan} per (workload, arch) job,
    {!Dae_sim.Retime.prepare}s lazily on the first cache miss, and re-times
    every configuration of the grid against the stored traces. Results are
    memoized in a content-addressed on-disk cache ({!Dae_sim.Cache}) keyed
    by plan digest × workload instance × configuration × engine version, so
    a warm re-sweep touches neither {!Dae_sim.Exec} nor
    {!Dae_sim.Timing} — it is pure cache lookups.

    Jobs fan out over the {!Dae_sim.Runner} work-stealing pool (one job
    per workload×arch; the grid loop runs inside the job, keeping cache
    and trace locality per domain).

    Trust, but verify: [check] samples per job re-run the full fused
    {!Dae_sim.Machine.simulate} at swept configurations and compare
    cycles, kill/commit counts and the complete stall partition
    bit-for-bit; [sizing_check] cross-validates the static sizing
    analyzer's minimum-depth verdict against the sweep's observed deadlock
    boundary (a deadlock at capacities at or above the analyzer's minima
    would disprove the analyzer). Both report violations in the summary
    rather than raising. *)

open Dae_ir
module Machine = Dae_sim.Machine
module Config = Dae_sim.Config
module Cache = Dae_sim.Cache

(** {1 Grid} *)

type axes = {
  req_fifo : int list;
  val_fifo : int list;
  stv_fifo : int list;
  lq : int list;
  sq : int list;
  hier : Config.hierarchy list;
      (** memory-hierarchy axis; [[]] keeps the base hierarchy, making
          five-axis grids byte-identical to pre-hierarchy versions *)
}
(** Capacity axes (plus the hierarchy axis); every other knob keeps the
    base configuration's value. [0] capacity entries are deliberately
    invalid configurations ({!Config.validate} rejects them): the sweep
    runs those with validation off to chart the deadlock boundary the
    static sizing analyzer predicts. *)

val default_axes : axes
(** 6×4×3×3×3 = 648 configurations per (workload, arch):
    req [0;1;2;4;8;16], val [0;1;2;8], stv [0;1;4], lq [1;2;4],
    sq [2;8;32]; base hierarchy. *)

val quick_axes : axes
(** 3×2×1×1×2 = 12 configurations — the CI grid; base hierarchy. *)

val hierarchy_axes : axes
(** The memory-hierarchy grid ([daec sweep --grid hierarchy]): capacities
    pinned at the capacity grid's maxima (16/16/16, lq 4, sq 32) and 25
    hierarchy points — the scratchpad anchor plus
    {!Config.default_geom} varied over banks [1;2] × ways [1;2] ×
    MSHRs [2;4;8] × \{default DRAM; a starved 2-bank slow DRAM\}. Every
    point shares its job's single functional execution, so the whole
    grid costs one prepare plus 25 re-times per (workload, arch). *)

val grid : ?base:Config.t -> axes -> Config.t list
(** All combinations, in a deterministic order (req outermost, then
    val/stv/lq/sq, hierarchy innermost). *)

(** {1 Workloads} *)

type workload = {
  w_name : string;
  w_instance : string;
      (** cache identity of the workload {e instance}: name alone is not
          enough (the quick and paper suites reuse kernel names at
          different sizes), so callers tag the suite or fold input
          parameters in *)
  w_func : Func.t;
  w_invocations : Machine.invocation list;
  w_mem : Dae_ir.Interp.Memory.t;
}

val workload_of_kernel : suite:string -> Dae_workloads.Kernels.t -> workload
(** Builds the kernel's IR, memory image and invocation list;
    [w_instance] is ["<suite>/<name>"]. *)

(** {1 Points and results} *)

type status = Cycles of int | Deadlock
(** A point either completes in a cycle count or deadlocks (possible only
    at capacity-0 axes or, if the sizing analyzer is wrong, above them). *)

type point = {
  pt_workload : string;
  pt_arch : Machine.arch;
  pt_cfg : string;  (** {!Config.key} *)
  pt_status : status;
  pt_killed : int;
  pt_committed : int;
  pt_stats : (string * (string * int) list) list;
      (** unit -> stall cause -> cycles; the complete partition *)
  pt_cached : bool;  (** served from the on-disk cache *)
}

type summary = {
  sm_points : int;
  sm_deadlocked : int;
  sm_wall_s : float;
  sm_prepares : int;  (** functional executions actually run *)
  sm_cache : Cache.counters;
  sm_hit_rate : float;
  sm_pool : Dae_sim.Runner.pool_stats;
  sm_checks : int;  (** sampled full-simulation cross-checks run *)
  sm_check_failures : string list;
  sm_sizing_checked : int;
  sm_sizing_violations : string list;
}

type t = { points : point list; summary : summary }
(** [points] are in deterministic order: workloads × archs in argument
    order, configurations in {!grid} order — cold and warm sweeps of the
    same request produce byte-identical renderings. *)

val run :
  ?domains:int ->
  ?base:Config.t ->
  ?check:int ->
  ?sizing_check:bool ->
  cache:Cache.t ->
  axes:axes ->
  archs:Machine.arch list ->
  workload list ->
  t
(** Sweep the full grid. [check] (default 1) samples that many completed
    points per (workload, arch) job and replays them through the fused
    {!Machine.simulate}, comparing cycles, kills/commits and stall
    partitions exactly; cached points are checked the same way, so a
    poisoned cache entry cannot hide. [sizing_check] (default true) runs
    the static sizing analyzer per decoupled job and flags any swept
    deadlock at capacities ≥ the analyzer's minima. *)

val pp_point : Format.formatter -> point -> unit
(** One line: [workload arch cfg status] — the `--expect` rendering the
    CI cold/warm diff pins. *)

val pp_summary : Format.formatter -> summary -> unit
