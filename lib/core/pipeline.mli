(** End-to-end compilation pipeline:

    {v
    original ─ Lod.analyze ─► Decouple (§3.2) ─► AGU + CU clones
                 [Spec] Hoist (Alg. 1, AGU)
                 [Spec] Poison (Alg. 2+3, CU)
                 [Spec] Spec_load (§5.4, CU)
                 [Spec] Merge (§5.3, CU, after CU cleanup)
              ─► per-slice DCE + CFG simplification ─► verify
    v} *)

open Dae_ir

type mode =
  | Dae  (** decoupling only — the paper's LoD-suffering baseline *)
  | Spec  (** with the paper's speculation support *)

type spec_info = {
  hoist : Hoist.t;
  poison : Poison.t;  (** decisions + placements, for the checker *)
  poison_stats : Poison.stats;
  merged_blocks : int;
  load_stats : Spec_load.stats;
}

type t = {
  mode : mode;
  original : Func.t;
  lod : Lod.t;
  agu : Func.t;
  aus : Func.t list;
      (** extra access units 1 .. n-1 of an N-way partition; [] for the
          classic 2-way split (always [] under [Spec]) *)
  cu : Func.t;
  snap_agu : Func.t;
      (** AGU snapshot after the speculation passes but before cleanup:
          every original block id is still present, so the checker can
          replay original CFG paths over it *)
  snap_aus : Func.t list;  (** pre-cleanup snapshots of [aus], in order *)
  snap_cu : Func.t;  (** CU snapshot, same stage *)
  cu_inserted_from : int;
      (** CU blocks with [bid >= cu_inserted_from] were inserted by the
          poison pass (hosts, dispatches, joins), not cloned from the
          original *)
  channels : Decouple.channel_use list;
  load_subscribers : (Instr.mem_id * [ `Agu | `Cu | `Au of int ] list) list;
  partition : Decouple.assignment;
  spec : spec_info option;  (** [None] when nothing was speculated *)
}

val n_access : t -> int
(** Access units in the pipeline (1 for the classic split). *)

exception Compile_error of string

(** Called on the finished pipeline whenever [compile ~check:true]
    succeeds. The static soundness checker ([Dae_analysis.Checker], which
    depends on this library) installs itself here so every checked compile
    is also protocol-checked. *)
val post_check_hook : (t -> unit) ref

(** [merge] toggles §5.3 poison-block merging (ablations); [check] runs the
    IR verifier on the input, after each speculation pass (naming the
    offending pass in the {!Compile_error}), and on both final slices —
    then invokes {!post_check_hook}. [partition] slices along an N-way
    address-stream assignment ({!Decouple.run_n}); it requires [mode = Dae]
    (the speculation passes assume the 2-way split) and defaults to the
    classic split. *)
val compile :
  ?mode:mode ->
  ?policy:Lod.policy ->
  ?merge:bool ->
  ?check:bool ->
  ?partition:Decouple.assignment ->
  Func.t ->
  t

(** CU blocks that exist purely to poison, post-merge (Table 1's "Poison
    Blocks"). *)
val poison_block_count : t -> int

val poison_call_count : t -> int
val pp_summary : Format.formatter -> t -> unit
