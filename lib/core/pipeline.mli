(** End-to-end compilation pipeline:

    {v
    original ─ Lod.analyze ─► Decouple (§3.2) ─► AGU + CU clones
                 [Spec] Hoist (Alg. 1, AGU)
                 [Spec] Poison (Alg. 2+3, CU)
                 [Spec] Spec_load (§5.4, CU)
                 [Spec] Merge (§5.3, CU, after CU cleanup)
              ─► per-slice DCE + CFG simplification ─► verify
    v} *)

open Dae_ir

type mode =
  | Dae  (** decoupling only — the paper's LoD-suffering baseline *)
  | Spec  (** with the paper's speculation support *)

type spec_info = {
  hoist : Hoist.t;
  poison : Poison.t;  (** decisions + placements, for the checker *)
  poison_stats : Poison.stats;
  merged_blocks : int;
  load_stats : Spec_load.stats;
}

type t = {
  mode : mode;
  original : Func.t;
  lod : Lod.t;
  agu : Func.t;
  cu : Func.t;
  snap_agu : Func.t;
      (** AGU snapshot after the speculation passes but before cleanup:
          every original block id is still present, so the checker can
          replay original CFG paths over it *)
  snap_cu : Func.t;  (** CU snapshot, same stage *)
  cu_inserted_from : int;
      (** CU blocks with [bid >= cu_inserted_from] were inserted by the
          poison pass (hosts, dispatches, joins), not cloned from the
          original *)
  channels : Decouple.channel_use list;
  load_subscribers : (Instr.mem_id * [ `Agu | `Cu ] list) list;
  spec : spec_info option;  (** [None] when nothing was speculated *)
}

exception Compile_error of string

(** Called on the finished pipeline whenever [compile ~check:true]
    succeeds. The static soundness checker ([Dae_analysis.Checker], which
    depends on this library) installs itself here so every checked compile
    is also protocol-checked. *)
val post_check_hook : (t -> unit) ref

(** [merge] toggles §5.3 poison-block merging (ablations); [check] runs the
    IR verifier on the input, after each speculation pass (naming the
    offending pass in the {!Compile_error}), and on both final slices —
    then invokes {!post_check_hook}. *)
val compile :
  ?mode:mode -> ?policy:Lod.policy -> ?merge:bool -> ?check:bool -> Func.t -> t

(** CU blocks that exist purely to poison, post-merge (Table 1's "Poison
    Blocks"). *)
val poison_block_count : t -> int

val poison_call_count : t -> int
val pp_summary : Format.formatter -> t -> unit
