(** The standard DAE decoupling transformation (paper §3.2).

    Both slices start as clones of the original (same block ids — the
    speculation passes rely on this): the AGU gets [send_ld_addr] /
    [send_st_addr] (plus a [consume_val] when its own slice needs a load's
    value — a surviving AGU consume is precisely a loss-of-decoupling
    synchronization), the CU gets [consume_val] / [produce_val]. *)

open Dae_ir

type channel_use = { mem : Instr.mem_id; arr : string; is_store : bool }

(** An N-way partition of the address streams: every array is owned by
    exactly one access unit (so each array's request stream stays
    single-producer and the per-array Lemma 6.1 pairing is preserved),
    unit 0 being the classic AGU. Arrays absent from [owner] default to
    unit 0. *)
type assignment = {
  n_access : int;  (** access units, >= 1 *)
  owner : (string * int) list;  (** array -> owning access unit *)
}

val trivial : assignment
(** One access unit owning everything — the classic 2-way split. *)

val owner_of : assignment -> string -> int

type t = {
  original : Func.t;
  agu : Func.t;  (** access unit 0 *)
  aus : Func.t list;  (** access units 1 .. n_access-1, in order *)
  cu : Func.t;
  channels : channel_use list;  (** one per decoupled memory op *)
  assignment : assignment;
}

(** Rewrite memory ops into channel ops; no cleanup yet. *)
val run : Func.t -> t

(** N-way decoupling along [assign]: access unit [j] sends the requests
    of the arrays it owns; foreign loads degrade to value consumes
    (removed by slice DCE when unused), foreign stores vanish. The CU is
    unchanged: it consumes the load values it uses and produces every
    store value. [run_n ~assign:trivial] is bit-identical to {!run}. *)
val run_n : Func.t -> assign:assignment -> t

(** The liveness relation behind {!dce_slice}: a value is live when it
    transitively feeds a root (a side-effecting instruction other than
    [consume_val], or a terminator). The soundness checker uses the same
    definition to predict which pre-cleanup consumes survive. *)
val live_values : Func.t -> (int, unit) Hashtbl.t

(** Slice DCE in which [consume_val] is not a root: consumes survive only
    if the slice uses their value. *)
val dce_slice : Func.t -> unit

(** (DCE; CFG simplification) to a fixed point — a branch condition dies
    only after its branch folds, and a branch folds only after its arms
    empty. *)
val cleanup : Func.t -> unit

(** Which units consume each load's value after cleanup (the DU broadcasts
    to all subscribers), in dense unit order (AGU, CU, AU1, ...). *)
val load_subscribers :
  t -> (Instr.mem_id * [ `Agu | `Cu | `Au of int ] list) list
