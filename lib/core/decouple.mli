(** The standard DAE decoupling transformation (paper §3.2).

    Both slices start as clones of the original (same block ids — the
    speculation passes rely on this): the AGU gets [send_ld_addr] /
    [send_st_addr] (plus a [consume_val] when its own slice needs a load's
    value — a surviving AGU consume is precisely a loss-of-decoupling
    synchronization), the CU gets [consume_val] / [produce_val]. *)

open Dae_ir

type channel_use = { mem : Instr.mem_id; arr : string; is_store : bool }

type t = {
  original : Func.t;
  agu : Func.t;
  cu : Func.t;
  channels : channel_use list;  (** one per decoupled memory op *)
}

(** Rewrite memory ops into channel ops; no cleanup yet. *)
val run : Func.t -> t

(** The liveness relation behind {!dce_slice}: a value is live when it
    transitively feeds a root (a side-effecting instruction other than
    [consume_val], or a terminator). The soundness checker uses the same
    definition to predict which pre-cleanup consumes survive. *)
val live_values : Func.t -> (int, unit) Hashtbl.t

(** Slice DCE in which [consume_val] is not a root: consumes survive only
    if the slice uses their value. *)
val dce_slice : Func.t -> unit

(** (DCE; CFG simplification) to a fixed point — a branch condition dies
    only after its branch folds, and a branch folds only after its arms
    empty. *)
val cleanup : Func.t -> unit

(** Which units consume each load's value after cleanup (the DU broadcasts
    to all subscribers). *)
val load_subscribers : t -> (Instr.mem_id * [ `Agu | `Cu ] list) list
