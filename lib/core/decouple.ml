(* The standard DAE decoupling transformation (paper §3.2).

   Both slices start as clones of the original function (same block ids —
   the speculation passes rely on this), with memory operations rewritten:

     AGU:  load  -> send_ld_addr  +  consume_val (kept only if the AGU
                                     slice itself needs the value; a
                                     surviving consume is precisely a
                                     loss-of-decoupling synchronization)
           store -> send_st_addr
     CU:   load  -> consume_val
           store -> produce_val

   Cleanup (slice DCE + CFG simplification) is NOT performed here: the
   speculation passes must run on the un-simplified slices first. Call
   [cleanup] afterwards (Pipeline does). *)

open Dae_ir

type channel_use = { mem : Instr.mem_id; arr : string; is_store : bool }

type t = {
  original : Func.t;
  agu : Func.t;
  cu : Func.t;
  channels : channel_use list; (* one per decoupled memory op *)
}

(* Rewrite one slice. [keep_value_as] says whether the rewritten load keeps
   a value-producing consume carrying the original instruction id. *)
let rewrite_slice (f : Func.t) ~(mode : [ `Agu | `Cu ]) : unit =
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      b.Block.instrs <-
        List.concat_map
          (fun (i : Instr.t) ->
            match i.Instr.kind, mode with
            | Instr.Load { arr; idx; mem }, `Agu ->
              (* The send gets a fresh id; the consume keeps the load's id so
                 that AGU-side uses (branch conditions, address chains) still
                 resolve. Slice DCE removes the consume when unused. *)
              [
                { Instr.id = Func.fresh_vid f;
                  kind = Instr.Send_ld_addr { arr; idx; mem } };
                { Instr.id = i.Instr.id; kind = Instr.Consume_val { arr; mem } };
              ]
            | Instr.Load { arr; mem; _ }, `Cu ->
              [ { Instr.id = i.Instr.id; kind = Instr.Consume_val { arr; mem } } ]
            | Instr.Store { arr; idx; mem; _ }, `Agu ->
              [ { i with Instr.kind = Instr.Send_st_addr { arr; idx; mem } } ]
            | Instr.Store { arr; value; mem; _ }, `Cu ->
              [ { i with Instr.kind = Instr.Produce_val { arr; value; mem } } ]
            | ( ( Instr.Binop _ | Instr.Cmp _ | Instr.Select _ | Instr.Not _
                | Instr.Send_ld_addr _ | Instr.Send_st_addr _
                | Instr.Consume_val _ | Instr.Produce_val _ | Instr.Poison _ ),
                _ ) ->
              [ i ])
          b.Block.instrs)
    f.Func.layout

let run (f : Func.t) : t =
  let channels =
    List.map
      (fun (m : Lod.mem_op) ->
        { mem = m.Lod.mem; arr = m.Lod.arr; is_store = m.Lod.is_store })
      (Lod.collect_mem_ops f)
  in
  let agu = Func.clone ~name:(f.Func.name ^ ".agu") f in
  let cu = Func.clone ~name:(f.Func.name ^ ".cu") f in
  rewrite_slice agu ~mode:`Agu;
  rewrite_slice cu ~mode:`Cu;
  { original = f; agu; cu; channels }

(* The liveness DCE works from: a value is live when it transitively feeds
   a root (a side-effecting instruction other than [Consume_val], or a
   terminator). Exposed because the soundness checker needs the same
   definition to predict which pre-cleanup consumes survive. *)
let live_values (f : Func.t) : (int, unit) Hashtbl.t =
  let live = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let mark v =
    if not (Hashtbl.mem live v) then begin
      Hashtbl.replace live v ();
      Queue.add v worklist
    end
  in
  let mark_operands ops =
    List.iter (function Types.Var v -> mark v | Types.Cst _ -> ()) ops
  in
  let is_root (i : Instr.t) =
    match i.Instr.kind with
    | Instr.Consume_val _ -> false
    | _ -> Instr.has_side_effect i
  in
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter
        (fun (i : Instr.t) ->
          if is_root i then begin
            mark i.Instr.id;
            mark_operands (Instr.operands i)
          end)
        b.Block.instrs;
      mark_operands (Block.terminator_operands b))
    f.Func.layout;
  let du = Defuse.compute f in
  while not (Queue.is_empty worklist) do
    let v = Queue.pop worklist in
    match Defuse.def_site du v with
    | None | Some (Defuse.Param _) -> ()
    | Some (Defuse.Instruction _) ->
      (match Defuse.find_instr du v with
      | None -> ()
      | Some i -> mark_operands (Instr.operands i))
    | Some (Defuse.Phi _) ->
      (match Defuse.find_phi du v with
      | None -> ()
      | Some (p, _) -> mark_operands (List.map snd p.Block.incoming))
  done;
  live

(* DCE where [Consume_val] is not a root: a consume survives only when its
   value feeds something live in the slice (an address chain, a branch, a
   produce). This is how a slice sheds the loads it does not need. *)
let dce_slice (f : Func.t) : unit =
  let live = live_values f in
  let is_root (i : Instr.t) =
    match i.Instr.kind with
    | Instr.Consume_val _ -> false
    | _ -> Instr.has_side_effect i
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bid ->
        let b = Func.block f bid in
        let keep_i (i : Instr.t) = is_root i || Hashtbl.mem live i.Instr.id in
        let keep_p (p : Block.phi) = Hashtbl.mem live p.Block.pid in
        if
          List.exists (fun i -> not (keep_i i)) b.Block.instrs
          || List.exists (fun p -> not (keep_p p)) b.Block.phis
        then begin
          b.Block.instrs <- List.filter keep_i b.Block.instrs;
          b.Block.phis <- List.filter keep_p b.Block.phis;
          changed := true
        end)
      f.Func.layout
  done

(* DCE can make a branch condition dead only after Simplify folds the
   branch, and Simplify can fold a branch only after DCE empties its arms —
   so the pair runs to a fixed point. *)
let cleanup (f : Func.t) : unit =
  let shape () =
    ( List.length f.Func.layout,
      Func.fold_instrs f (fun n _ -> n + 1) 0,
      List.fold_left
        (fun n bid -> n + List.length (Func.block f bid).Block.phis)
        0 f.Func.layout )
  in
  let prev = ref (-1, -1, -1) in
  while shape () <> !prev do
    prev := shape ();
    dce_slice f;
    Simplify.run f
  done

(* Which units consume each load's value, after cleanup. *)
let load_subscribers (t : t) :
    (Instr.mem_id * [ `Agu | `Cu ] list) list =
  let consumes f =
    Func.fold_instrs f
      (fun acc (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Consume_val { mem; _ } -> mem :: acc
        | _ -> acc)
      []
  in
  let agu_c = consumes t.agu and cu_c = consumes t.cu in
  List.filter_map
    (fun c ->
      if c.is_store then None
      else
        Some
          ( c.mem,
            (if List.mem c.mem agu_c then [ `Agu ] else [])
            @ if List.mem c.mem cu_c then [ `Cu ] else [] ))
    t.channels
