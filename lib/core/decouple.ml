(* The standard DAE decoupling transformation (paper §3.2).

   Both slices start as clones of the original function (same block ids —
   the speculation passes rely on this), with memory operations rewritten:

     AGU:  load  -> send_ld_addr  +  consume_val (kept only if the AGU
                                     slice itself needs the value; a
                                     surviving consume is precisely a
                                     loss-of-decoupling synchronization)
           store -> send_st_addr
     CU:   load  -> consume_val
           store -> produce_val

   Cleanup (slice DCE + CFG simplification) is NOT performed here: the
   speculation passes must run on the un-simplified slices first. Call
   [cleanup] afterwards (Pipeline does). *)

open Dae_ir

type channel_use = { mem : Instr.mem_id; arr : string; is_store : bool }

(* An N-way partition of the address streams: every array is owned by
   exactly one access unit (single-producer request streams keep the
   per-array Lemma 6.1 pairing), unit 0 being the classic AGU. Arrays
   absent from [owner] default to unit 0, so [trivial] reproduces the
   2-way split exactly. *)
type assignment = {
  n_access : int; (* access units, >= 1 *)
  owner : (string * int) list; (* array -> owning access unit *)
}

let trivial = { n_access = 1; owner = [] }

let owner_of (a : assignment) (arr : string) : int =
  match List.assoc_opt arr a.owner with Some u -> u | None -> 0

let validate_assignment (a : assignment) =
  if a.n_access < 1 then
    Fmt.invalid_arg "Decouple: assignment needs >= 1 access units, got %d"
      a.n_access;
  List.iter
    (fun (arr, u) ->
      if u < 0 || u >= a.n_access then
        Fmt.invalid_arg "Decouple: array %s assigned to unit %d of %d" arr u
          a.n_access)
    a.owner

type t = {
  original : Func.t;
  agu : Func.t; (* access unit 0 *)
  aus : Func.t list; (* access units 1 .. n_access-1, in order *)
  cu : Func.t;
  channels : channel_use list; (* one per decoupled memory op *)
  assignment : assignment;
}

(* Rewrite one slice. Access unit [j] keeps the sends of the arrays it
   owns; foreign loads degrade to a value consume (slice DCE removes it
   when the unit does not use the value — a surviving one is a
   cross-unit synchronization) and foreign stores vanish (the CU
   produces every store value; only the owner sends the address). With
   the trivial assignment [`Access 0] is byte-for-byte the classic AGU
   rewrite, including the fresh-id sequence. *)
let rewrite_slice (f : Func.t) ~(assign : assignment)
    ~(mode : [ `Access of int | `Cu ]) : unit =
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      b.Block.instrs <-
        List.concat_map
          (fun (i : Instr.t) ->
            match i.Instr.kind, mode with
            | Instr.Load { arr; idx; mem }, `Access j
              when owner_of assign arr = j ->
              (* The send gets a fresh id; the consume keeps the load's id so
                 that unit-side uses (branch conditions, address chains) still
                 resolve. Slice DCE removes the consume when unused. *)
              [
                { Instr.id = Func.fresh_vid f;
                  kind = Instr.Send_ld_addr { arr; idx; mem } };
                { Instr.id = i.Instr.id; kind = Instr.Consume_val { arr; mem } };
              ]
            | Instr.Load { arr; mem; _ }, (`Access _ | `Cu) ->
              [ { Instr.id = i.Instr.id; kind = Instr.Consume_val { arr; mem } } ]
            | Instr.Store { arr; idx; mem; _ }, `Access j
              when owner_of assign arr = j ->
              [ { i with Instr.kind = Instr.Send_st_addr { arr; idx; mem } } ]
            | Instr.Store _, `Access _ -> []
            | Instr.Store { arr; value; mem; _ }, `Cu ->
              [ { i with Instr.kind = Instr.Produce_val { arr; value; mem } } ]
            | ( ( Instr.Binop _ | Instr.Cmp _ | Instr.Select _ | Instr.Not _
                | Instr.Send_ld_addr _ | Instr.Send_st_addr _
                | Instr.Consume_val _ | Instr.Produce_val _ | Instr.Poison _ ),
                _ ) ->
              [ i ])
          b.Block.instrs)
    f.Func.layout

let run_n (f : Func.t) ~(assign : assignment) : t =
  validate_assignment assign;
  let channels =
    List.map
      (fun (m : Lod.mem_op) ->
        { mem = m.Lod.mem; arr = m.Lod.arr; is_store = m.Lod.is_store })
      (Lod.collect_mem_ops f)
  in
  let agu = Func.clone ~name:(f.Func.name ^ ".agu") f in
  let aus =
    List.init (assign.n_access - 1) (fun k ->
        Func.clone ~name:(Fmt.str "%s.au%d" f.Func.name (k + 1)) f)
  in
  let cu = Func.clone ~name:(f.Func.name ^ ".cu") f in
  rewrite_slice agu ~assign ~mode:(`Access 0);
  List.iteri (fun k au -> rewrite_slice au ~assign ~mode:(`Access (k + 1))) aus;
  rewrite_slice cu ~assign ~mode:`Cu;
  { original = f; agu; aus; cu; channels; assignment = assign }

let run (f : Func.t) : t = run_n f ~assign:trivial

(* The liveness DCE works from: a value is live when it transitively feeds
   a root (a side-effecting instruction other than [Consume_val], or a
   terminator). Exposed because the soundness checker needs the same
   definition to predict which pre-cleanup consumes survive. *)
let live_values (f : Func.t) : (int, unit) Hashtbl.t =
  let live = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let mark v =
    if not (Hashtbl.mem live v) then begin
      Hashtbl.replace live v ();
      Queue.add v worklist
    end
  in
  let mark_operands ops =
    List.iter (function Types.Var v -> mark v | Types.Cst _ -> ()) ops
  in
  let is_root (i : Instr.t) =
    match i.Instr.kind with
    | Instr.Consume_val _ -> false
    | _ -> Instr.has_side_effect i
  in
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter
        (fun (i : Instr.t) ->
          if is_root i then begin
            mark i.Instr.id;
            mark_operands (Instr.operands i)
          end)
        b.Block.instrs;
      mark_operands (Block.terminator_operands b))
    f.Func.layout;
  let du = Defuse.compute f in
  while not (Queue.is_empty worklist) do
    let v = Queue.pop worklist in
    match Defuse.def_site du v with
    | None | Some (Defuse.Param _) -> ()
    | Some (Defuse.Instruction _) ->
      (match Defuse.find_instr du v with
      | None -> ()
      | Some i -> mark_operands (Instr.operands i))
    | Some (Defuse.Phi _) ->
      (match Defuse.find_phi du v with
      | None -> ()
      | Some (p, _) -> mark_operands (List.map snd p.Block.incoming))
  done;
  live

(* DCE where [Consume_val] is not a root: a consume survives only when its
   value feeds something live in the slice (an address chain, a branch, a
   produce). This is how a slice sheds the loads it does not need. *)
let dce_slice (f : Func.t) : unit =
  let live = live_values f in
  let is_root (i : Instr.t) =
    match i.Instr.kind with
    | Instr.Consume_val _ -> false
    | _ -> Instr.has_side_effect i
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bid ->
        let b = Func.block f bid in
        let keep_i (i : Instr.t) = is_root i || Hashtbl.mem live i.Instr.id in
        let keep_p (p : Block.phi) = Hashtbl.mem live p.Block.pid in
        if
          List.exists (fun i -> not (keep_i i)) b.Block.instrs
          || List.exists (fun p -> not (keep_p p)) b.Block.phis
        then begin
          b.Block.instrs <- List.filter keep_i b.Block.instrs;
          b.Block.phis <- List.filter keep_p b.Block.phis;
          changed := true
        end)
      f.Func.layout
  done

(* DCE can make a branch condition dead only after Simplify folds the
   branch, and Simplify can fold a branch only after DCE empties its arms —
   so the pair runs to a fixed point. *)
let cleanup (f : Func.t) : unit =
  let shape () =
    ( List.length f.Func.layout,
      Func.fold_instrs f (fun n _ -> n + 1) 0,
      List.fold_left
        (fun n bid -> n + List.length (Func.block f bid).Block.phis)
        0 f.Func.layout )
  in
  let prev = ref (-1, -1, -1) in
  while shape () <> !prev do
    prev := shape ();
    dce_slice f;
    Simplify.run f
  done

(* Which units consume each load's value, after cleanup. Units are listed
   in dense index order (AGU, CU, AU1, ...), matching Trace.unit_index. *)
let load_subscribers (t : t) :
    (Instr.mem_id * [ `Agu | `Cu | `Au of int ] list) list =
  let consumes f =
    Func.fold_instrs f
      (fun acc (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Consume_val { mem; _ } -> mem :: acc
        | _ -> acc)
      []
  in
  let agu_c = consumes t.agu and cu_c = consumes t.cu in
  let aus_c = List.map consumes t.aus in
  List.filter_map
    (fun c ->
      if c.is_store then None
      else
        Some
          ( c.mem,
            (if List.mem c.mem agu_c then [ `Agu ] else [])
            @ (if List.mem c.mem cu_c then [ `Cu ] else [])
            @ List.concat
                (List.mapi
                   (fun k cs ->
                     if List.mem c.mem cs then [ `Au (k + 1) ] else [])
                   aus_c) ))
    t.channels
