(** Algorithms 2 and 3: poisoning mis-speculated stores in the CU (§5.2).

    Phase 1 (Algorithm 2) maps poison calls to CFG edges: along every DAG
    path from a speculation block to the loop latch, the pending request
    groups are tracked in speculation order; a group is poisoned on the
    first edge from which its true-block is unreachable — but only once
    every earlier group has been used or poisoned (skipping the edge
    otherwise), which is what keeps the store-value stream in request order
    (the §2 counterexample).

    Phase 2 (Algorithm 3) materialises each decision: appended to a
    single-successor source, prepended to a single-predecessor destination,
    hosted in a (reused) block split on the edge — or, when the speculation
    block does not dominate the edge, guarded by a steering flag φ network
    ({!Steer}) so the poison fires only on paths that actually
    speculated. *)

open Dae_ir

type decision = {
  edge : int * int;
  spec_bb : int;
  true_bb : int;
  requests : Hoist.spec_req list;  (** the group's stores, in order *)
}

type stats = {
  mutable poison_calls : int;
  mutable poison_blocks : int;
  mutable steer_blocks : int;
  mutable steer_phis : int;
}

(** A poison call materialised by Phase 2, tied back to its Phase 1
    decision — the record the static soundness checker uses to attribute
    every poison instruction in the CU. *)
type placement = {
  p_instr : int;  (** the poison instruction's SSA id *)
  p_mem : Instr.mem_id;
  p_host : int;  (** block hosting the instruction *)
  p_steered : bool;  (** guarded by a steering-flag dispatch (case 2) *)
  p_decision : decision;
}

type t = {
  decisions : decision list;
  placements : placement list;
  dispatches : (int * int) list;
      (** steered dispatch blocks: (dispatch bid, spec_bb guarding it) *)
  stats : stats;
}

exception Poison_error of string

(** The typed path-explosion overrun: how many blocks the enumeration had
    visited when it crossed [limit], starting from [src]. *)
type path_budget = { src : int; limit : int; explored : int }

val default_path_limit : int

(** All DAG paths (edge lists) from a block to its loop latch (or function
    exits), or the budget record when the enumeration exceeds [limit]
    (default {!default_path_limit}). Loops nested inside the block's own
    loop are contracted: a path takes the edge onto the inner header and
    resumes at the inner loop's exit edges, so consecutive edges need not
    be adjacent and no edge interior to a nested loop ever carries an
    Algorithm 2 decision. *)
val all_paths :
  ?limit:int ->
  Func.t ->
  Loops.t ->
  int ->
  ((int * int) list list, path_budget) result

(** [all_paths] with the historical raising behavior.
    @raise Poison_error on path explosion. *)
val all_paths_exn : ?limit:int -> Func.t -> Loops.t -> int -> (int * int) list list

val group_by_true_bb :
  Hoist.spec_req list -> (int * Hoist.spec_req list) list

(** Phase 1 — runs on the unmodified CU CFG.
    @raise Poison_error on path explosion. *)
val map_to_edges : ?limit:int -> Func.t -> Hoist.t -> decision list

type placed = {
  pl_stats : stats;
  pl_placements : placement list;
  pl_dispatches : (int * int) list;
}

(** Phase 2 — mutates the CU. *)
val place : Func.t -> decision list -> placed

val run : ?limit:int -> Func.t -> Hoist.t -> t
