(* Algorithm 1: control-flow hoisting of AGU memory requests (paper §5.1).

   For every LoD chain head [srcBB], traverse the CFG region from [srcBB]
   to its loop latch in reverse post-order (the topological order of the
   region's DAG — ignoring backedges and never entering loops other than
   the innermost loop containing [srcBB]); every request with a LoD control
   dependency on [srcBB] is moved to the end of [srcBB], in traversal
   order. A request may be hoisted to several chain heads (paper Figure 4:
   requests b and e land in both block 2 and block 3); the original
   instruction is removed and a copy placed at each head.

   Hoisting also clones the request's address computation when it does not
   dominate the head (pure chains only — anything else is a data LoD the
   analysis already rejected). *)

open Dae_ir

type spec_req = {
  mem : Instr.mem_id;
  is_store : bool;
  arr : string;
  true_bb : int; (* block the request originally lived in *)
}

type t = {
  (* chain head -> requests speculated there, in speculation order *)
  spec_req_map : (int * spec_req list) list;
  hoisted_mems : Instr.mem_id list; (* all speculated ops *)
  head_consume_ids : int list;
  (* consumes this pass placed at chain heads (address-chain relocations
     plus §5.4-on-the-AGU relocations): the only AGU consumes of a hoisted
     load that are legitimate after speculation *)
}

exception Unhoistable of string

(* Clone the pure computation chain producing [op] so that it is available
   at the end of [head]. [memo] caches clones per head so shared
   subexpressions are materialised once.

   A chain may cross a [Consume_val] — the address of a speculated request
   depending on the value of another speculated *load* (e.g. the paper's
   A[idx[i]] where idx[i] is itself decoupled). Such a consume is
   *relocated*: a fresh consume is placed at the head (after the
   corresponding hoisted send — the load was visited earlier in topological
   order, so its send copy is already there), recorded in [relocated] so
   the caller can remove the original and SSA-repair its remaining uses.
   [may_relocate mem] says whether that load is speculated at this head —
   relocating a consume whose request stays conditional would desync the
   channel. Returns the operand to use. *)
let rec materialize_operand (agu : Func.t) (dom : Dom.t) ~head ~memo
    ~(du : Defuse.t) ~may_relocate ~relocated (op : Types.operand) :
    Types.operand =
  match op with
  | Types.Cst _ -> op
  | Types.Var v -> (
    match Hashtbl.find_opt memo v with
    | Some cached -> cached
    | None ->
      let def_bid =
        match Defuse.def_site du v with
        | Some (Defuse.Param _) -> None (* params dominate everything *)
        | Some (Defuse.Phi b) | Some (Defuse.Instruction b) -> Some b
        | None ->
          raise
            (Unhoistable (Fmt.str "operand %%%d has no definition site" v))
      in
      (match def_bid with
      | None -> op
      | Some d when d = head || Dom.strictly_dominates dom d head -> op
      | Some _ -> (
        match Defuse.find_instr du v with
        | None ->
          raise
            (Unhoistable
               (Fmt.str
                  "address chain of a speculated request crosses a φ (%%%d); \
                   this is a data dependency speculation cannot remove"
                  v))
        | Some i -> (
          match i.Instr.kind with
          | Instr.Binop _ | Instr.Cmp _ | Instr.Select _ | Instr.Not _ ->
            let cloned_kind =
              (Instr.map_operands
                 (fun o ->
                   materialize_operand agu dom ~head ~memo ~du ~may_relocate
                     ~relocated o)
                 i)
                .Instr.kind
            in
            let id = Func.fresh_vid agu in
            Block.append_instr (Func.block agu head)
              { Instr.id; kind = cloned_kind };
            let res = Types.Var id in
            Hashtbl.replace memo v res;
            res
          | Instr.Consume_val { arr; mem } when may_relocate mem ->
            let id = Func.fresh_vid agu in
            Block.append_instr (Func.block agu head)
              { Instr.id; kind = Instr.Consume_val { arr; mem } };
            let res = Types.Var id in
            Hashtbl.replace memo v res;
            relocated := (v, head, res) :: !relocated;
            res
          | _ ->
            raise
              (Unhoistable
                 (Fmt.str "address chain instruction %%%d is not pure" v))))))

(* The blocks visited by Algorithm 1's traversal from [src], in reverse
   post-order: follow forward edges only, and do not enter loops other than
   the innermost loop containing [src].

   Membership never crosses a nested loop (a block reachable from [src]
   only through one stays outside the region), but the ORDER must: the
   speculation order is the order the AGU emits hoisted requests in, and
   the CU resolves them in program order, so it has to be a topological
   order of the region under the real CFG — including the precedence a
   nested loop induces between the block before it and the blocks after
   it. Dropping those edges (as a plain skip-based RPO does) can order a
   request whose true-block feeds a nested loop AFTER one that follows the
   loop, and the streams then mismatch on every path through the former.
   The RPO therefore runs over the contracted graph — a nested loop is
   replaced by edges from its header to its exit targets — and the result
   is filtered back to the skip-based membership. *)
let traversal_order (f : Func.t) (loops : Loops.t) src : int list =
  let own_loop = Loops.innermost loops src in
  let own_header =
    match own_loop with Some l -> Some l.Loops.header | None -> None
  in
  let in_scope dst =
    match own_loop with Some l -> List.mem dst l.Loops.body | None -> true
  in
  let foreign_loop s =
    if Loops.is_header loops s && Some s <> own_header then
      Loops.loop_of_header loops s
    else None
  in
  (* Blocks actually entered when a forward edge lands on [s]: [s] itself,
     or — when [s] heads a nested loop — whatever its exit edges land on,
     expanded recursively (forward edges form a DAG, so this terminates). *)
  let rec expand s =
    if not (in_scope s) then []
    else
      match foreign_loop s with
      | None -> [ s ]
      | Some l' ->
        List.concat_map
          (fun b ->
            Func.successors f b
            |> List.filter (fun v ->
                   (not (List.mem v l'.Loops.body))
                   && not (Loops.is_backedge loops ~src:b ~dst:v))
            |> List.concat_map expand)
          l'.Loops.body
  in
  let contracted_succs u =
    Func.successors f u
    |> List.filter (fun s -> not (Loops.is_backedge loops ~src:u ~dst:s))
    |> List.concat_map expand
  in
  let member =
    let skip ~src:u ~dst =
      Loops.is_backedge loops ~src:u ~dst
      || (Loops.is_header loops dst && Some dst <> own_header)
      || not (in_scope dst)
    in
    Order.reverse_postorder ~skip ~succs:(Func.successors f) src
  in
  List.filter
    (fun b -> List.mem b member)
    (Order.reverse_postorder ~succs:contracted_succs src)

let run (agu : Func.t) (lod : Lod.t) : t =
  let loops = Loops.compute agu in
  (match Loops.check_canonical loops with
  | Ok () -> ()
  | Error msg -> raise (Unhoistable ("non-canonical loops: " ^ msg)));
  (* Chain heads that a given op's sources resolve to. *)
  (* Ops with a data LoD (§4, Definition 4.1) are never speculated: the
     paper's speculation recovers control dependencies only. They stay in
     place, conditional, and the AGU keeps the synchronizing consume. *)
  let data_blocked = Lod.data_blocked lod in
  let heads_of_mem m =
    if List.mem m data_blocked then []
    else
      match List.assoc_opt m lod.Lod.control_lod with
      | None -> []
      | Some sources ->
        List.filter (fun s -> List.mem s lod.Lod.chain_heads) sources
  in
  (* Store-order safety (pre-pass). Hoisting a store to array X makes the
     AGU emit X's request at the head while the CU resolves it as late as
     the poison edges; any other X-store the hoist cannot carry along that
     can execute between those two points splits X's request and value
     streams out of order (the §2 failure, re-created by the compiler).
     Only a store that can execute while the group is pending is a
     hazard: it must be forward-reachable from the head (backedges
     excluded — every group resolves by the end of its iteration, the
     kills sit on edges into the latch at the latest). The head itself
     and the latch are exempt: a pair in the head completes before the
     appended hoisted sends, and every resolution precedes the latch.
     What remains (typically a store inside or beyond a nested loop,
     which the traversal cannot reach) blocks speculation of that
     array's stores from this head. *)
  let dom0 = Dom.compute agu in
  let reach0 =
    Reach.create_with_backedges agu ~backedges:loops.Loops.backedges
  in
  let blocked_store_arrays : (int, string list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun head ->
      let candidate_ids = Hashtbl.create 16 in
      List.iter
        (fun fromBB ->
          if fromBB <> head then
            List.iter
              (fun (i : Instr.t) ->
                match i.Instr.kind with
                | Instr.Send_st_addr { mem; _ }
                  when List.mem head (heads_of_mem mem) ->
                  Hashtbl.replace candidate_ids i.Instr.id ()
                | _ -> ())
              (Func.block agu fromBB).Block.instrs)
        (traversal_order agu loops head);
      let scope_blocks, latch =
        match Loops.innermost loops head with
        | Some l -> (l.Loops.body, Some l.Loops.latch)
        | None -> (List.map (fun b -> b.Block.bid) (Func.blocks_in_layout agu), None)
      in
      let blocked = ref [] in
      List.iter
        (fun bid ->
          List.iter
            (fun (i : Instr.t) ->
              match i.Instr.kind with
              | Instr.Send_st_addr { arr; _ }
                when (not (Hashtbl.mem candidate_ids i.Instr.id))
                     && Reach.reachable reach0 ~src:head ~dst:bid
                     && (not (Dom.dominates dom0 bid head))
                     && Some bid <> latch
                     && not (List.mem arr !blocked) ->
                blocked := arr :: !blocked
              | _ -> ())
            (Func.block agu bid).Block.instrs)
        scope_blocks;
      Hashtbl.replace blocked_store_arrays head !blocked)
    lod.Lod.chain_heads;
  let store_blocked head arr =
    match Hashtbl.find_opt blocked_store_arrays head with
    | Some arrs -> List.mem arr arrs
    | None -> false
  in
  let hoisted_mems = ref [] in
  let removals : (int * int) list ref = ref [] in
  (* (block, instr id) *)
  (* Ids of request copies appended at heads: skipped when scanning for
     requests on behalf of a later head, so a copy is never re-hoisted. *)
  let copies = Hashtbl.create 16 in
  (* consumes relocated into heads: (original vid, head, new operand) *)
  let relocated : (int * int * Types.operand) list ref = ref [] in
  let spec_req_map =
    List.filter_map
      (fun head ->
        let order = traversal_order agu loops head in
        let du = Defuse.compute agu in
        let dom = Dom.compute agu in
        let memo = Hashtbl.create 16 in
        let reqs = ref [] in
        List.iter
          (fun fromBB ->
            if fromBB <> head then
              List.iter
                (fun (i : Instr.t) ->
                  match i.Instr.kind with
                  | Instr.Send_ld_addr { arr; idx; mem }
                  | Instr.Send_st_addr { arr; idx; mem }
                    when List.mem head (heads_of_mem mem)
                         && (not (Hashtbl.mem copies i.Instr.id))
                         && (match i.Instr.kind with
                            | Instr.Send_st_addr { arr; _ } ->
                              not (store_blocked head arr)
                            | _ -> true) ->
                    let is_store =
                      match i.Instr.kind with
                      | Instr.Send_st_addr _ -> true
                      | _ -> false
                    in
                    (* Materialise the address at the head and append a
                       copy of the request there. *)
                    let idx' =
                      materialize_operand agu dom ~head ~memo ~du
                        ~may_relocate:(fun m ->
                          List.mem head (heads_of_mem m))
                        ~relocated idx
                    in
                    let kind =
                      if is_store then
                        Instr.Send_st_addr { arr; idx = idx'; mem }
                      else Instr.Send_ld_addr { arr; idx = idx'; mem }
                    in
                    let copy_id = Func.fresh_vid agu in
                    Hashtbl.replace copies copy_id ();
                    Block.append_instr (Func.block agu head)
                      { Instr.id = copy_id; kind };
                    reqs :=
                      { mem; is_store; arr; true_bb = fromBB } :: !reqs;
                    if not (List.mem mem !hoisted_mems) then
                      hoisted_mems := mem :: !hoisted_mems;
                    if not (List.mem (fromBB, i.Instr.id) !removals) then
                      removals := (fromBB, i.Instr.id) :: !removals
                  | _ -> ())
                (Func.block agu fromBB).Block.instrs)
          order;
        match List.rev !reqs with
        | [] -> None
        | rs -> Some (head, rs))
      lod.Lod.chain_heads
  in
  (* §5.4 applied to the AGU itself: a speculated load whose value the AGU
     still consumes — e.g. feeding a branch that stays, as when the loop
     condition is data-dependent through a φ — must have that consume
     relocated to the speculation block(s) as well, or the request and
     value channel counts desync on the paths where only the send was
     hoisted. Consumes already relocated through address chains are left
     alone. *)
  let created_consumes =
    List.filter_map
      (fun (_, _, op) -> match op with Types.Var v -> Some v | _ -> None)
      !relocated
  in
  let already_relocated = List.map (fun (v, _, _) -> v) !relocated in
  let heads_of_hoisted_load : (Instr.mem_id, int list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (head, reqs) ->
      List.iter
        (fun (r : spec_req) ->
          if not r.is_store then begin
            let cur =
              try Hashtbl.find heads_of_hoisted_load r.mem with Not_found -> []
            in
            if not (List.mem head cur) then
              Hashtbl.replace heads_of_hoisted_load r.mem (cur @ [ head ])
          end)
        reqs)
    spec_req_map;
  Hashtbl.iter
    (fun mem heads ->
      let original_consume =
        List.find_map
          (fun bid ->
            List.find_map
              (fun (i : Instr.t) ->
                match i.Instr.kind with
                | Instr.Consume_val { arr; mem = m }
                  when m = mem
                       && (not (List.mem i.Instr.id created_consumes))
                       && (not (List.mem i.Instr.id already_relocated))
                       && not (List.mem bid heads) ->
                  Some (i.Instr.id, arr)
                | _ -> None)
              (Func.block agu bid).Block.instrs)
          agu.Func.layout
      in
      match original_consume with
      | None -> ()
      | Some (old_id, arr) ->
        List.iter
          (fun head ->
            let id = Func.fresh_vid agu in
            Block.append_instr (Func.block agu head)
              { Instr.id; kind = Instr.Consume_val { arr; mem } };
            relocated := (old_id, head, Types.Var id) :: !relocated)
          heads)
    heads_of_hoisted_load;
  (* Remove the original (now speculated) requests from their blocks. *)
  List.iter
    (fun (bid, id) -> Block.remove_instr (Func.block agu bid) ~id)
    !removals;
  (* Relocated consumes: remove the originals and SSA-repair any remaining
     uses of their values against the per-head copies. *)
  let by_vid =
    List.sort_uniq compare (List.map (fun (v, _, _) -> v) !relocated)
  in
  List.iter
    (fun old_vid ->
      (match Func.block_of_instr agu ~id:old_vid with
      | Some b -> Block.remove_instr b ~id:old_vid
      | None -> ());
      let defs =
        List.filter_map
          (fun (v, head, op) -> if v = old_vid then Some (head, op) else None)
          !relocated
      in
      Ssa_repair.rewrite_uses agu ~old_vid ~defs ~ty:Types.I32 ())
    by_vid;
  let head_consume_ids =
    List.filter_map
      (fun (_, _, op) -> match op with Types.Var v -> Some v | _ -> None)
      !relocated
  in
  { spec_req_map; hoisted_mems = List.rev !hoisted_mems; head_consume_ids }

let spec_requests (t : t) head =
  match List.assoc_opt head t.spec_req_map with Some rs -> rs | None -> []

let pp ppf (t : t) =
  List.iter
    (fun (head, rs) ->
      Fmt.pf ppf "bb%d: %a@." head
        Fmt.(
          list ~sep:(any ", ") (fun ppf r ->
              pf ppf "%s mem%d (bb%d)"
                (if r.is_store then "st" else "ld")
                r.mem r.true_bb))
        rs)
    t.spec_req_map
