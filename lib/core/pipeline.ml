(* End-to-end compilation pipeline.

      original ──Lod.analyze──► decouple (§3.2)
                                  │ AGU: sends (+consume where synchronized)
                                  │ CU:  consumes / produces
             [Spec only]          │
         Hoist.run (Alg. 1, AGU) ─┤
         Poison.run (Alg. 2+3, CU)┤
         Spec_load.run (§5.4, CU) ┤
         Merge.run (§5.3, CU)     │
                                  ▼
                       per-slice DCE + CFG simplification
                                  ▼
                               verify

   The [Dae] mode stops after decoupling (the paper's state-of-the-art
   baseline, which suffers LoD); [Spec] applies the paper's contribution. *)

open Dae_ir

type mode = Dae | Spec

type spec_info = {
  hoist : Hoist.t;
  poison : Poison.t;
  poison_stats : Poison.stats;
  merged_blocks : int;
  load_stats : Spec_load.stats;
}

type t = {
  mode : mode;
  original : Func.t;
  lod : Lod.t;
  agu : Func.t;
  aus : Func.t list;
  cu : Func.t;
  snap_agu : Func.t;
  snap_aus : Func.t list;
  snap_cu : Func.t;
  cu_inserted_from : int;
  channels : Decouple.channel_use list;
  load_subscribers : (Instr.mem_id * [ `Agu | `Cu | `Au of int ] list) list;
  partition : Decouple.assignment;
  spec : spec_info option;
}

let n_access (t : t) = 1 + List.length t.aus

exception Compile_error of string

(* Installed by the soundness checker (lib/analysis depends on this
   library, so the dependency runs through a hook): called on the finished
   pipeline whenever [compile ~check:true] succeeds. *)
let post_check_hook : (t -> unit) ref = ref (fun _ -> ())

(* Per-pass verification: a speculation pass that corrupts the IR is named
   in the failure instead of surfacing at the end of the pipeline. *)
let verify_stage ~check ~stage (f : Func.t) =
  if check then
    match Verify.check f with
    | Ok () -> ()
    | Error es ->
      raise
        (Compile_error
           (Fmt.str "%s: IR verification failed after %s:@.%a" f.Func.name
              stage
              Fmt.(list ~sep:(any "@.") Verify.pp_error)
              es))

let compile ?(mode = Spec) ?(policy = Lod.Raw_hazard_loads)
    ?(merge = true) ?(check = true) ?(partition = Decouple.trivial)
    (original : Func.t) : t =
  if partition.Decouple.n_access > 1 && mode <> Dae then
    raise
      (Compile_error
         (Fmt.str
            "%s: N-way partitions require mode Dae (speculation assumes the \
             2-way split)"
            original.Func.name));
  if check then Verify.check_exn original;
  (* front-end normalization (§3.2): irreducible control flow is made
     reducible by node splitting, and multi-latch loops get a combined
     latch, so the speculation passes can assume canonical form *)
  if not (Loops.is_reducible original) then begin
    let splits = Node_split.run original in
    Logs.info (fun m ->
        m "%s: made reducible with %d node split(s)" original.Func.name splits)
  end;
  (match Loops.check_canonical (Loops.compute original) with
  | Ok () -> ()
  | Error _ ->
    let added = Loop_canon.run original in
    Logs.info (fun m ->
        m "%s: canonicalized loops with %d combined latch(es)"
          original.Func.name added));
  if check then Verify.check_exn original;
  let lod = Lod.analyze ~policy original in
  let slices = Decouple.run_n original ~assign:partition in
  let agu = slices.Decouple.agu and cu = slices.Decouple.cu in
  let aus = slices.Decouple.aus in
  (* Blocks with ids at or past this point are speculation-pass inserts
     (poison hosts, steering dispatch/join blocks) rather than clones of
     original blocks — the boundary the checker's path replay keys on. *)
  let cu_inserted_from = cu.Func.next_bid in
  (* Pre-cleanup snapshot of the CU: captured after the last CU speculation
     pass but before DCE/simplification erases the original block ids. *)
  let cu_snapshot = ref None in
  let spec =
    match mode with
    | Dae -> None
    | Spec ->
      if Lod.has_data_lod lod then
        Logs.warn (fun m ->
            m "%s: data LoD on mem ops %a — speculation cannot recover these"
              original.Func.name
              Fmt.(list ~sep:(any ", ") int)
              (Lod.data_blocked lod));
      let hoist =
        try Hoist.run agu lod
        with Hoist.Unhoistable msg -> raise (Compile_error msg)
      in
      verify_stage ~check ~stage:"hoist (Algorithm 1)" agu;
      if hoist.Hoist.spec_req_map = [] then None
      else begin
        let poison = Poison.run cu hoist in
        verify_stage ~check ~stage:"poison (Algorithms 2+3)" cu;
        let load_stats = Spec_load.run cu hoist in
        verify_stage ~check ~stage:"spec_load (§5.4)" cu;
        cu_snapshot := Some (Func.clone cu);
        (* merge after CFG cleanup: simplification collapses the empty join
           blocks between a poison block and the latch, exposing poison
           blocks with identical successors (the paper's mm example merges
           only then) *)
        Decouple.cleanup cu;
        let merged_blocks = if merge then Merge.run cu else 0 in
        verify_stage ~check ~stage:"merge (§5.3)" cu;
        Some
          {
            hoist;
            poison;
            poison_stats = poison.Poison.stats;
            merged_blocks;
            load_stats;
          }
      end
  in
  let snap_agu = Func.clone agu in
  let snap_aus = List.map Func.clone aus in
  let snap_cu =
    match !cu_snapshot with Some c -> c | None -> Func.clone cu
  in
  Decouple.cleanup agu;
  List.iter Decouple.cleanup aus;
  Decouple.cleanup cu;
  if check then begin
    Verify.check_exn agu;
    List.iter Verify.check_exn aus;
    Verify.check_exn cu
  end;
  let t =
    {
      mode;
      original;
      lod;
      agu;
      aus;
      cu;
      snap_agu;
      snap_aus;
      snap_cu;
      cu_inserted_from;
      channels = slices.Decouple.channels;
      load_subscribers =
        Decouple.load_subscribers
          { slices with Decouple.agu; Decouple.aus; Decouple.cu };
      partition = slices.Decouple.assignment;
      spec;
    }
  in
  if check then !post_check_hook t;
  t

(* Number of CU blocks that exist purely to poison (post-merge), the
   quantity Table 1 reports. *)
let poison_block_count (t : t) : int =
  List.length
    (List.filter
       (fun bid ->
         match Merge.poison_signature (Func.block t.cu bid) with
         | Some _ -> true
         | None -> false)
       t.cu.Func.layout)

let poison_call_count (t : t) : int =
  Func.fold_instrs t.cu
    (fun acc (i : Instr.t) ->
      match i.Instr.kind with Instr.Poison _ -> acc + 1 | _ -> acc)
    0

let pp_summary ppf (t : t) =
  Fmt.pf ppf "%s [%s]: agu %d blocks, cu %d blocks, %d channels"
    t.original.Func.name
    (match t.mode with Dae -> "dae" | Spec -> "spec")
    (List.length t.agu.Func.layout)
    (List.length t.cu.Func.layout)
    (List.length t.channels);
  if t.aus <> [] then
    Fmt.pf ppf " | %d access units (%a blocks)" (n_access t)
      Fmt.(list ~sep:(any "+") int)
      (List.map (fun au -> List.length au.Func.layout) t.aus);
  match t.spec with
  | None -> Fmt.pf ppf " (no speculation applied)"
  | Some s ->
    Fmt.pf ppf " | spec: %d poison calls, %d poison blocks (%d merged)"
      s.poison_stats.Poison.poison_calls s.poison_stats.Poison.poison_blocks
      s.merged_blocks
