(* Algorithms 2 and 3: poisoning mis-speculated stores in the CU (§5.2).

   Phase 1 (Algorithm 2) runs on the *unmodified* CU CFG and maps poison
   calls to CFG edges. For every speculation block and every DAG path from
   it to the loop latch, the pending speculative requests are tracked in
   speculation order (grouped by the block where they become true). At each
   edge of the path:

     - if the edge destination IS the head group's true-block, the group is
       used there (its produce_val executes) — resolved, next edge;
     - else if the head group's true-block is no longer reachable (forward
       edges only) from the edge destination, the group is poisoned on this
       edge and the next group is examined on the same edge;
     - else the head is still reachable: the edge is skipped entirely —
       poisoning a later group now would break the AGU/CU stream order
       (the paper's §2 counterexample).

   Phase 2 (Algorithm 3) materialises each (edge, group) decision:

     - if the speculation block dominates the edge source, the poison fires
       whenever the edge is taken: append to the edge source when it has a
       single successor, prepend to the destination when it has a single
       predecessor, otherwise split the edge with a poison block (reused by
       later decisions on the same edge);
     - otherwise the edge is reachable on paths that never speculated, and
       the poison must be *steered*: a φ network (Steer) carries a "passed
       the speculation block" flag, and a dispatch block on the edge
       branches to the poison block only when the flag is set. *)

open Dae_ir

type decision = {
  edge : int * int;
  spec_bb : int;
  true_bb : int;
  requests : Hoist.spec_req list; (* the group's store requests, in order *)
}

type stats = {
  mutable poison_calls : int;
  mutable poison_blocks : int; (* blocks created to host poison calls *)
  mutable steer_blocks : int; (* dispatch blocks for steered poisons *)
  mutable steer_phis : int;
}

(* A poison call materialised by Phase 2, tied back to its Phase 1
   decision: what the static checker needs to attribute every poison
   instruction in the CU to the (spec_bb, true_bb, edge) that justified
   it. *)
type placement = {
  p_instr : int;
  p_mem : Instr.mem_id;
  p_host : int;
  p_steered : bool;
  p_decision : decision;
}

type t = {
  decisions : decision list;
  placements : placement list;
  dispatches : (int * int) list;
  stats : stats;
}

exception Poison_error of string

type path_budget = { src : int; limit : int; explored : int }

let default_path_limit = 200_000

(* All DAG paths (as edge lists) from [src] to the latch of its innermost
   loop (or to function exits when [src] is not in a loop). Loop-exit edges
   terminate a path: every group still pending there is out of reach and
   gets poisoned on that edge.

   Loops nested inside the scope are stepped OVER, not into: the path takes
   the edge onto the inner header and resumes at each of the inner loop's
   exit edges. Descending into the body would dead-end at the inner latch
   (its only forward-filtered successor is the backedge), and Phase 1 would
   then poison every pending group on an edge that re-executes on every
   inner iteration. Contracting keeps every decision on a once-per-episode
   edge; that is sound because Algorithm 1 never speculates a request out
   of or into a nested loop, so no true-block lies inside one, and a
   header's ≥2 predecessors (entry + backedge) stop Algorithm 3 from ever
   prepending a poison into a block the inner loop re-executes. *)
let all_paths ?(limit = default_path_limit) (f : Func.t) (loops : Loops.t) src
    : ((int * int) list list, path_budget) result =
  let own_loop = Loops.innermost loops src in
  let own_header =
    match own_loop with Some l -> Some l.Loops.header | None -> None
  in
  let in_scope dst =
    match own_loop with Some l -> List.mem dst l.Loops.body | None -> true
  in
  let foreign_loop s =
    if Loops.is_header loops s && Some s <> own_header then
      Loops.loop_of_header loops s
    else None
  in
  let exit_edges (l : Loops.loop) =
    List.concat_map
      (fun u ->
        Func.successors f u
        |> List.filter (fun v ->
               (not (List.mem v l.Loops.body))
               && not (Loops.is_backedge loops ~src:u ~dst:v))
        |> List.map (fun v -> (u, v)))
      l.Loops.body
  in
  let terminal bid =
    match own_loop with
    | Some l -> bid = l.Loops.latch
    | None -> Func.successors f bid = []
  in
  let count = ref 0 in
  let paths = ref [] in
  let exception Exceeded in
  let record acc = paths := List.rev acc :: !paths in
  let rec go bid acc =
    incr count;
    if !count > limit then raise Exceeded;
    if terminal bid then record acc
    else begin
      let succs =
        List.filter
          (fun s -> not (Loops.is_backedge loops ~src:bid ~dst:s))
          (Func.successors f bid)
      in
      if succs = [] then record acc
      else
        List.iter
          (fun s ->
            if in_scope s then continue_to (bid, s) acc
            else
              (* loop-exit edge: terminal for poisoning purposes *)
              record ((bid, s) :: acc))
          succs
    end
  and continue_to ((_, v) as edge) acc =
    incr count;
    if !count > limit then raise Exceeded;
    let acc = edge :: acc in
    match foreign_loop v with
    | None -> go v acc
    | Some l' -> (
      match exit_edges l' with
      | [] -> record acc (* the nested loop never exits: the path ends here *)
      | exits ->
        List.iter
          (fun ((_, v') as e) ->
            if in_scope v' then continue_to e acc else record (e :: acc))
          exits)
  in
  match go src [] with
  | () -> Ok (List.rev !paths)
  | exception Exceeded -> Error { src; limit; explored = !count }

let all_paths_exn ?limit f loops src =
  match all_paths ?limit f loops src with
  | Ok paths -> paths
  | Error b ->
    raise
      (Poison_error
         (Fmt.str
            "path explosion in Algorithm 2: %d blocks explored from bb%d \
             exceed the limit of %d (CFG too irregular)"
            b.explored b.src b.limit))

(* Group consecutive requests by their true block, preserving order. *)
let group_by_true_bb (reqs : Hoist.spec_req list) :
    (int * Hoist.spec_req list) list =
  List.fold_left
    (fun acc (r : Hoist.spec_req) ->
      match acc with
      | (bb, group) :: rest when bb = r.Hoist.true_bb ->
        (bb, group @ [ r ]) :: rest
      | _ -> (r.Hoist.true_bb, [ r ]) :: acc)
    [] reqs
  |> List.rev

(* --- Phase 1: map poisons to edges (Algorithm 2) ------------------------- *)

let map_to_edges ?limit (cu : Func.t) (hoist : Hoist.t) : decision list =
  let loops = Loops.compute cu in
  let reach = Reach.create_with_backedges cu ~backedges:loops.Loops.backedges in
  let decisions = ref [] in
  let seen = Hashtbl.create 32 in
  (* (edge, true_bb, spec_bb) dedup: Algorithm 3 runs once per tuple *)
  List.iter
    (fun (spec_bb, spec_requests) ->
      let store_groups =
        group_by_true_bb
          (List.filter (fun (r : Hoist.spec_req) -> r.Hoist.is_store)
             spec_requests)
      in
      if store_groups <> [] then
        List.iter
          (fun path ->
            let pending = ref store_groups in
            List.iter
              (fun ((_, dst) as edge) ->
                let rec resolve () =
                  match !pending with
                  | [] -> ()
                  | (true_bb, group) :: rest ->
                    if dst = true_bb then
                      (* used at dst; stop processing this edge *)
                      pending := rest
                    else if not (Reach.reachable reach ~src:dst ~dst:true_bb)
                    then begin
                      let key = (edge, true_bb, spec_bb) in
                      if not (Hashtbl.mem seen key) then begin
                        Hashtbl.replace seen key ();
                        decisions :=
                          { edge; spec_bb; true_bb; requests = group }
                          :: !decisions
                      end;
                      pending := rest;
                      resolve ()
                    end
                    (* still reachable: skip the rest of this edge *)
                in
                resolve ())
              path)
          (all_paths_exn ?limit cu loops spec_bb))
    hoist.Hoist.spec_req_map;
  List.rev !decisions

(* --- Phase 2: place poisons into blocks (Algorithm 3) -------------------- *)

let poison_instrs (cu : Func.t) (group : Hoist.spec_req list) : Instr.t list =
  List.map
    (fun (r : Hoist.spec_req) ->
      { Instr.id = Func.fresh_vid cu;
        kind = Instr.Poison { arr = r.Hoist.arr; mem = r.Hoist.mem } })
    group

type placed = {
  pl_stats : stats;
  pl_placements : placement list;
  pl_dispatches : (int * int) list;
}

let place (cu : Func.t) (decisions : decision list) : placed =
  let stats =
    { poison_calls = 0; poison_blocks = 0; steer_blocks = 0; steer_phis = 0 }
  in
  let placements = ref [] in
  let dispatches = ref [] in
  let record ~host ~steered d (instrs : Instr.t list) =
    List.iter2
      (fun (i : Instr.t) (r : Hoist.spec_req) ->
        placements :=
          {
            p_instr = i.Instr.id;
            p_mem = r.Hoist.mem;
            p_host = host;
            p_steered = steered;
            p_decision = d;
          }
          :: !placements)
      instrs d.requests
  in
  let dom = Dom.compute cu in
  let steer = Steer.create cu in
  let phi_count (f : Func.t) =
    List.fold_left
      (fun acc bid -> acc + List.length (Func.block f bid).Block.phis)
      0 f.Func.layout
  in
  (* Group decisions per edge, preserving order: a dynamic execution taking
     the edge must encounter the poison stations in decision order. *)
  let edges =
    List.fold_left
      (fun acc d -> if List.mem d.edge acc then acc else acc @ [ d.edge ])
      [] decisions
  in
  List.iter
    (fun ((src, dst) as edge) ->
      let ds = List.filter (fun d -> d.edge = edge) decisions in
      (* The chain grows between [tail] and [dst]; [tail] always has [dst]
         as its unique remaining link for this edge. [last_plain] is a
         reusable unconditional host at the chain's end. *)
      let tail = ref src in
      let last_plain : Block.t option ref = ref None in
      let fresh_plain () =
        let nb = Func.split_edge cu ~src:!tail ~dst in
        stats.poison_blocks <- stats.poison_blocks + 1;
        tail := nb.Block.bid;
        last_plain := Some nb;
        nb
      in
      let all_unsteered =
        List.for_all (fun d -> Dom.dominates dom d.spec_bb src) ds
      in
      (* Paper's case-3 shortcuts, valid when nothing on this edge needs
         steering: append to a single-successor source (block 6 killing
         store e) or prepend to a single-predecessor destination. *)
      let src_single_succ =
        match Block.successors (Func.block cu src) with
        | [ s ] -> s = dst
        | _ -> false
      in
      let dst_preds =
        List.filter (fun p -> List.mem dst (Func.successors cu p)) cu.Func.layout
      in
      if all_unsteered && src_single_succ then begin
        List.iter
          (fun d ->
            let instrs = poison_instrs cu d.requests in
            stats.poison_calls <- stats.poison_calls + List.length instrs;
            record ~host:src ~steered:false d instrs;
            List.iter (Block.append_instr (Func.block cu src)) instrs)
          ds
      end
      else if all_unsteered && dst_preds = [ src ] then begin
        let instrs =
          List.concat_map
            (fun d ->
              let instrs = poison_instrs cu d.requests in
              record ~host:dst ~steered:false d instrs;
              instrs)
            ds
        in
        stats.poison_calls <- stats.poison_calls + List.length instrs;
        List.iter (Block.prepend_instr (Func.block cu dst)) (List.rev instrs)
      end
      else
        List.iter
          (fun d ->
            let instrs = poison_instrs cu d.requests in
            stats.poison_calls <- stats.poison_calls + List.length instrs;
            if Dom.dominates dom d.spec_bb src then begin
              (* Unconditional: reuse the plain host at the chain end if the
                 previous station was plain, else open a new one (case 1
                 with poisonBlockReuse). *)
              let host =
                match !last_plain with Some b -> b | None -> fresh_plain ()
              in
              record ~host:host.Block.bid ~steered:false d instrs;
              List.iter (Block.append_instr host) instrs
            end
            else begin
              (* Steered (case 2): dispatch → poison → join, all spliced at
                 the chain end. The join keeps the chain's tail a single
                 block with a unique successor. *)
              let phis_before = phi_count cu in
              let flag = Steer.flag_at steer ~spec_bb:d.spec_bb ~block:src in
              stats.steer_phis <- stats.steer_phis + (phi_count cu - phis_before);
              let dispatch = Func.split_edge cu ~src:!tail ~dst in
              let join = Func.split_edge cu ~src:dispatch.Block.bid ~dst in
              let poison_bb =
                Func.add_block ~after:dispatch.Block.bid cu
                  ~term:(Block.Br join.Block.bid)
              in
              dispatch.Block.term <-
                Block.Cond_br (flag, poison_bb.Block.bid, join.Block.bid);
              dispatches := (dispatch.Block.bid, d.spec_bb) :: !dispatches;
              record ~host:poison_bb.Block.bid ~steered:true d instrs;
              List.iter (Block.append_instr poison_bb) instrs;
              stats.poison_blocks <- stats.poison_blocks + 1;
              stats.steer_blocks <- stats.steer_blocks + 2;
              tail := join.Block.bid;
              last_plain := None
            end)
          ds)
    edges;
  {
    pl_stats = stats;
    pl_placements = List.rev !placements;
    pl_dispatches = List.rev !dispatches;
  }

let run ?limit (cu : Func.t) (hoist : Hoist.t) : t =
  let decisions = map_to_edges ?limit cu hoist in
  let placed = place cu decisions in
  {
    decisions;
    placements = placed.pl_placements;
    dispatches = placed.pl_dispatches;
    stats = placed.pl_stats;
  }
