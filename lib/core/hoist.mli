(** Algorithm 1: control-flow hoisting of AGU memory requests (§5.1).

    For every LoD chain head, the CFG region from the head to its loop
    latch is traversed in reverse post-order (the topological order of the
    region's DAG — never entering other loops), and every request with an
    LoD control dependency on the head is moved to the head's end in
    traversal order. A request may be hoisted to several heads (paper
    Figure 4's b and e). Address chains that do not dominate the head are
    cloned (pure ops), and chains crossing another speculated load's
    [consume_val] relocate that consume to the head, with SSA repair of its
    remaining uses. Data-LoD requests are skipped (speculation cannot
    recover them, §4). *)

open Dae_ir

type spec_req = {
  mem : Instr.mem_id;
  is_store : bool;
  arr : string;
  true_bb : int;  (** block the request originally lived in *)
}

type t = {
  spec_req_map : (int * spec_req list) list;
      (** chain head -> requests in speculation order (the paper's
          SpecReqMap) *)
  hoisted_mems : Instr.mem_id list;
  head_consume_ids : int list;
      (** [Consume_val] instruction ids this pass placed at chain heads —
          the only AGU consumes of a hoisted load that are legitimate after
          speculation (everything else is an LoD residue) *)
}

exception Unhoistable of string

(** Mutates the AGU slice. @raise Unhoistable on address chains that cross
    a φ or a non-relocatable impure definition. *)
val run : Func.t -> Lod.t -> t

(** The blocks Algorithm 1's traversal visits from a chain head, in
    reverse post-order: forward edges only, never leaving the head's
    innermost loop and never entering a nested one. Exposed so the static
    checker can reproduce the exact region a hoist could have reached. *)
val traversal_order : Func.t -> Loops.t -> int -> int list

val spec_requests : t -> int -> spec_req list
val pp : Format.formatter -> t -> unit
