(** Sequential reference interpreter — the golden model.

    Executes original (non-decoupled) IR against a memory image and records
    the dynamic memory trace. The decoupled machine's final memory and
    per-array commit order must match this interpreter on every run
    (sequential consistency, paper §6). *)

module Memory : sig
  type t

  val create : (string * int array) list -> t
  val copy : t -> t

  (** @raise Invalid_argument for an unknown array. *)
  val array : t -> string -> int array

  (** @raise Invalid_argument when out of bounds. *)
  val get : t -> string -> int -> int

  (** Non-trapping read for speculative loads: out-of-bounds yields 0
      (the paper's discarded mis-speculated values, §3.1). *)
  val get_speculative : t -> string -> int -> int

  val set : t -> string -> int -> int -> unit
  val names : t -> string list
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

type event =
  | Eload of { mem : Instr.mem_id; arr : string; idx : int; value : int }
  | Estore of { mem : Instr.mem_id; arr : string; idx : int; value : int }

(** Compact program-order memory trace: an unboxed int encoding with a
    per-run interned array-name table, so recording a golden run allocates
    no per-event blocks. Decode one event with {!event}. *)
type trace

val trace_length : trace -> int

(** Decoded view of event [k], [0 <= k < trace_length]. *)
val event : trace -> int -> event

val t_is_store : trace -> int -> bool
val t_arr : trace -> int -> string
val t_mem : trace -> int -> Instr.mem_id
val t_idx : trace -> int -> int
val t_value : trace -> int -> int

type result = {
  ret : Types.value option;
  trace : trace;  (** program-order memory events *)
  steps : int;
  block_trace : int array;  (** dynamic block path, entry first *)
}

exception Out_of_fuel
exception Channel_op_in_sequential_code of string

(** @raise Out_of_fuel beyond [fuel] dynamic steps (default 10M).
    @raise Channel_op_in_sequential_code if the IR was already decoupled. *)
val run :
  ?fuel:int ->
  Func.t ->
  args:(string * Types.value) list ->
  mem:Memory.t ->
  result

(** The store sub-trace, in program order: (mem id, array, index, value). *)
val stores : result -> (Instr.mem_id * string * int * int) list

val loads : result -> (Instr.mem_id * string * int * int) list
