(* Sequential reference interpreter — the golden model.

   Executes original (non-decoupled) IR against a memory image and records
   the dynamic trace of memory operations. The decoupled machine's final
   memory must match this interpreter's on every run (sequential
   consistency, paper §6), and the recorded store trace is what Lemma 6.1's
   dynamic check compares the AGU/CU streams against. *)

open Types

module Memory = struct
  type t = (string, int array) Hashtbl.t

  let create (arrays : (string * int array) list) : t =
    let t = Hashtbl.create 8 in
    List.iter (fun (name, a) -> Hashtbl.replace t name (Array.copy a)) arrays;
    t

  let copy (t : t) : t =
    let c = Hashtbl.create (Hashtbl.length t) in
    Hashtbl.iter (fun k v -> Hashtbl.replace c k (Array.copy v)) t;
    c

  let array (t : t) name =
    match Hashtbl.find_opt t name with
    | Some a -> a
    | None -> Fmt.invalid_arg "Interp.Memory: unknown array %s" name

  let get (t : t) name idx =
    let a = array t name in
    if idx < 0 || idx >= Array.length a then
      Fmt.invalid_arg "Interp.Memory: %s[%d] out of bounds (len %d)" name idx
        (Array.length a)
    else a.(idx)

  (* Non-trapping read for speculative loads: a mis-speculated address may
     be out of bounds; on-chip SRAM returns garbage (modelled as 0) rather
     than faulting, and the value is discarded anyway (paper §3.1). *)
  let get_speculative (t : t) name idx =
    let a = array t name in
    if idx < 0 || idx >= Array.length a then 0 else a.(idx)

  let set (t : t) name idx v =
    let a = array t name in
    if idx < 0 || idx >= Array.length a then
      Fmt.invalid_arg "Interp.Memory: %s[%d] out of bounds (len %d)" name idx
        (Array.length a)
    else a.(idx) <- v

  let names (t : t) = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

  let equal (a : t) (b : t) =
    names a = names b
    && List.for_all (fun n -> array a n = array b n) (names a)

  let pp ppf (t : t) =
    List.iter
      (fun n ->
        Fmt.pf ppf "%s = [%a]@." n
          Fmt.(array ~sep:(any "; ") int)
          (array t n))
      (names t)
end

type event =
  | Eload of { mem : Instr.mem_id; arr : string; idx : int; value : int }
  | Estore of { mem : Instr.mem_id; arr : string; idx : int; value : int }

(* The memory trace, compact: four int words per event (word 0 packs the
   store bit and a dense array id interned per run), so recording a golden
   run allocates no per-event blocks and the live trace is a GC leaf. *)
type trace = {
  tdata : int array; (* 4 words per event *)
  tn : int; (* number of events *)
  tarrays : string array; (* dense array id -> name *)
}

let t_stride = 4

let trace_length (tr : trace) = tr.tn
let[@inline] t_is_store (tr : trace) k = tr.tdata.(k * t_stride) land 1 = 1
let[@inline] t_arr (tr : trace) k = tr.tarrays.(tr.tdata.(k * t_stride) lsr 1)
let[@inline] t_mem (tr : trace) k = tr.tdata.((k * t_stride) + 1)
let[@inline] t_idx (tr : trace) k = tr.tdata.((k * t_stride) + 2)
let[@inline] t_value (tr : trace) k = tr.tdata.((k * t_stride) + 3)

let event (tr : trace) k : event =
  let mem = t_mem tr k and arr = t_arr tr k in
  let idx = t_idx tr k and value = t_value tr k in
  if t_is_store tr k then Estore { mem; arr; idx; value }
  else Eload { mem; arr; idx; value }

type result = {
  ret : value option;
  trace : trace; (* program-order memory events *)
  steps : int; (* dynamic instruction count *)
  block_trace : int array; (* dynamic block path, entry first *)
}

exception Out_of_fuel
exception Channel_op_in_sequential_code of string

let run ?(fuel = 10_000_000) (f : Func.t) ~(args : (string * value) list)
    ~(mem : Memory.t) : result =
  (* Value and block ids are allocated densely (Func.fresh_vid /
     Func.add_block), so the environment and the block table flatten into
     arrays; [undef] is a shared sentinel block, distinguished by physical
     equality from any value the program itself constructs. *)
  let undef = Vint min_int in
  let env : value array = Array.make (max 1 f.Func.next_vid) undef in
  List.iter
    (fun (name, vid) ->
      match List.assoc_opt name args with
      | Some v -> env.(vid) <- v
      | None -> Fmt.invalid_arg "Interp.run: missing argument %s" name)
    f.Func.params;
  let blocks =
    Array.init (max 1 f.Func.next_bid) (fun bid ->
        Hashtbl.find_opt f.Func.blocks bid)
  in
  let block bid =
    if bid < 0 || bid >= Array.length blocks then Func.block f bid
    else
      match blocks.(bid) with Some b -> b | None -> Func.block f bid
  in
  (* Load/store instructions name their array by string; resolve each once
     per run, keyed by the (dense) instruction id. Memory.set mutates
     elements in place, never rebinds the array, so cached refs stay
     valid. The empty array is the shared atom, usable as a free slot
     marker. *)
  let arr_cache : int array array = Array.make (max 1 f.Func.next_vid) [||] in
  let resolve_arr id name =
    let a = arr_cache.(id) in
    if a != [||] then a
    else begin
      let a = Memory.array mem name in
      arr_cache.(id) <- a;
      a
    end
  in
  (* Array-name interning for the compact trace, memoized per instruction
     id alongside [arr_cache] so the hot path never hashes a string. *)
  let intern : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let names_rev = ref [] in
  let n_names = ref 0 in
  let arr_ids : int array = Array.make (max 1 f.Func.next_vid) (-1) in
  let arr_id_of id name =
    let i = arr_ids.(id) in
    if i >= 0 then i
    else
      let i =
        match Hashtbl.find_opt intern name with
        | Some i -> i
        | None ->
          let i = !n_names in
          Hashtbl.replace intern name i;
          incr n_names;
          names_rev := name :: !names_rev;
          i
      in
      arr_ids.(id) <- i;
      i
  in
  let tdata = ref (Array.make (256 * t_stride) 0) in
  let tn = ref 0 in
  let push_tev ~store ~aid ~m ~idx ~v =
    let base = !tn * t_stride in
    if base + t_stride > Array.length !tdata then begin
      let bigger = Array.make (2 * Array.length !tdata) 0 in
      Array.blit !tdata 0 bigger 0 base;
      tdata := bigger
    end;
    let d = !tdata in
    d.(base) <- (aid lsl 1) lor (if store then 1 else 0);
    d.(base + 1) <- m;
    d.(base + 2) <- idx;
    d.(base + 3) <- v;
    incr tn
  in
  let bdata = ref (Array.make 256 0) in
  let bn = ref 0 in
  let push_block bid =
    if !bn >= Array.length !bdata then begin
      let bigger = Array.make (2 * Array.length !bdata) 0 in
      Array.blit !bdata 0 bigger 0 !bn;
      bdata := bigger
    end;
    !bdata.(!bn) <- bid;
    incr bn
  in
  let value_of = function
    | Cst c -> value_of_const c
    | Var v ->
      let x = env.(v) in
      if x == undef then
        Fmt.invalid_arg "Interp.run: read of undefined %%%d" v
      else x
  in
  (* Specialized coercions: constant operands skip the value boxing, with
     the same errors as [int_of_value] / [bool_of_value] on a type clash. *)
  let int_of = function
    | Cst (Int n) -> n
    | Cst (Bool _) -> invalid_arg "Types.int_of_value: boolean value"
    | Var _ as op -> (
      match value_of op with
      | Vint n -> n
      | Vbool _ -> invalid_arg "Types.int_of_value: boolean value")
  in
  let bool_of = function
    | Cst (Bool b) -> b
    | Cst (Int _) -> invalid_arg "Types.bool_of_value: integer value"
    | Var _ as op -> (
      match value_of op with
      | Vbool b -> b
      | Vint _ -> invalid_arg "Types.bool_of_value: integer value")
  in
  let steps = ref 0 in
  let tick () =
    incr steps;
    if !steps > fuel then raise Out_of_fuel
  in
  let exec_instr (i : Instr.t) =
    tick ();
    match i.Instr.kind with
    | Instr.Binop (op, a, b) ->
      env.(i.Instr.id) <- Vint (Instr.eval_binop op (int_of a) (int_of b))
    | Instr.Cmp (op, a, b) ->
      env.(i.Instr.id) <- Vbool (Instr.eval_cmp op (int_of a) (int_of b))
    | Instr.Select (c, a, b) ->
      env.(i.Instr.id) <- (if bool_of c then value_of a else value_of b)
    | Instr.Not a -> env.(i.Instr.id) <- Vbool (not (bool_of a))
    | Instr.Load { arr; idx; mem = m } ->
      let a = resolve_arr i.Instr.id arr in
      let idx = int_of idx in
      if idx < 0 || idx >= Array.length a then
        Fmt.invalid_arg "Interp.Memory: %s[%d] out of bounds (len %d)" arr idx
          (Array.length a);
      let v = a.(idx) in
      push_tev ~store:false ~aid:(arr_id_of i.Instr.id arr) ~m ~idx ~v;
      env.(i.Instr.id) <- Vint v
    | Instr.Store { arr; idx; value; mem = m } ->
      let a = resolve_arr i.Instr.id arr in
      let idx = int_of idx in
      let v = int_of value in
      if idx < 0 || idx >= Array.length a then
        Fmt.invalid_arg "Interp.Memory: %s[%d] out of bounds (len %d)" arr idx
          (Array.length a);
      push_tev ~store:true ~aid:(arr_id_of i.Instr.id arr) ~m ~idx ~v;
      a.(idx) <- v
    | Instr.Send_ld_addr _ | Instr.Send_st_addr _ | Instr.Consume_val _
    | Instr.Produce_val _ | Instr.Poison _ ->
      raise
        (Channel_op_in_sequential_code (Printer.instr_to_string i))
  in
  (* φs of a block are evaluated simultaneously on entry from [pred]. *)
  let exec_phis (b : Block.t) ~pred =
    match b.Block.phis with
    | [] -> ()
    | phis ->
      let resolved =
        List.map
          (fun (p : Block.phi) ->
            match List.assoc_opt pred p.Block.incoming with
            | Some op -> (p.Block.pid, value_of op)
            | None ->
              Fmt.invalid_arg
                "Interp.run: phi %%%d in bb%d has no entry for bb%d"
                p.Block.pid b.Block.bid pred)
          phis
      in
      List.iter (fun (pid, v) -> env.(pid) <- v) resolved
  in
  let rec exec_block bid ~pred =
    tick ();
    push_block bid;
    let b = block bid in
    (match pred with Some p -> exec_phis b ~pred:p | None -> ());
    List.iter exec_instr b.Block.instrs;
    match b.Block.term with
    | Block.Br t -> exec_block t ~pred:(Some bid)
    | Block.Cond_br (c, t, fl) ->
      exec_block (if bool_of c then t else fl) ~pred:(Some bid)
    | Block.Switch (c, ts) ->
      let n = List.length ts in
      let k = int_of c in
      let k = if k < 0 then 0 else if k >= n then n - 1 else k in
      exec_block (List.nth ts k) ~pred:(Some bid)
    | Block.Ret v -> Option.map value_of v
  in
  let ret = exec_block f.Func.entry ~pred:None in
  {
    ret;
    trace =
      {
        tdata = Array.sub !tdata 0 (!tn * t_stride);
        tn = !tn;
        tarrays = Array.of_list (List.rev !names_rev);
      };
    steps = !steps;
    block_trace = Array.sub !bdata 0 !bn;
  }

(* Convenience: the store sub-trace, in program order. *)
let stores (r : result) =
  let acc = ref [] in
  for k = trace_length r.trace - 1 downto 0 do
    if t_is_store r.trace k then
      acc :=
        (t_mem r.trace k, t_arr r.trace k, t_idx r.trace k, t_value r.trace k)
        :: !acc
  done;
  !acc

let loads (r : result) =
  let acc = ref [] in
  for k = trace_length r.trace - 1 downto 0 do
    if not (t_is_store r.trace k) then
      acc :=
        (t_mem r.trace k, t_arr r.trace k, t_idx r.trace k, t_value r.trace k)
        :: !acc
  done;
  !acc
