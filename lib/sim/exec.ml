(* Functional co-simulation of the decoupled machine.

   The AGU and CU slices run as round-robin small-step interpreters over
   unbounded FIFOs; the DU is modelled functionally per array: it serves
   the request stream in order, fills pending store allocations with
   (value, poison) tags from the CU and commits or drops them in
   allocation order.

   This is where the paper's §6 guarantees are *checked dynamically*:

   - Lemma 6.1: the store-value/kill stream per array must match the store
     request stream mem-id by mem-id ([Stream_mismatch] otherwise);
   - sequential consistency: the final memory (and the per-array commit
     order) must equal the sequential interpreter's;
   - deadlock freedom: a global round with no progress raises [Deadlock].

   As a side effect the run produces the per-unit channel traces the
   timing engine replays.

   The fast path ([run_lowered]) interprets the dense micro-op form of
   {!Lower}: flat slot arrays instead of Hashtbl environments, int-indexed
   ring queues instead of string-keyed Queue tables, and compact trace
   append. [Reference] keeps the original tree-walking interpreter — the
   qcheck equivalence property in test/test_lower.ml holds the two to
   identical results, commit orders and traces. *)

open Dae_ir

exception Deadlock of string
exception Stream_mismatch of string
exception Desync of string

type commit = { c_arr : string; c_addr : int; c_value : int }

type result = {
  memory : Interp.Memory.t;
  agu_trace : Trace.unit_trace;
  au_traces : Trace.unit_trace array;
      (* extra access units 1 .. n-1 of an N-way partition; [||] for 2-way *)
  cu_trace : Trace.unit_trace;
  commits : commit list; (* program order per array *)
  killed_stores : int;
  committed_stores : int;
  loads_served : int;
  agu_steps : int;
  cu_steps : int;
}

(* All unit traces in dense Trace.unit_index order. *)
let traces (r : result) : Trace.unit_trace array =
  Array.append [| r.agu_trace; r.cu_trace |] r.au_traces

type step_result = Progress | Blocked | Finished

exception Blocked_on_value

(* --- unboxed ring queues ------------------------------------------------- *)

(* Growable circular int queue; capacity stays a power of two. Multi-word
   channel entries are pushed/popped as consecutive words. *)
module Iq = struct
  type t = { mutable buf : int array; mutable head : int; mutable len : int }

  let create () = { buf = Array.make 16 0; head = 0; len = 0 }
  let[@inline] is_empty q = q.len = 0

  let[@inline never] grow q =
    let cap = Array.length q.buf in
    let bigger = Array.make (2 * cap) 0 in
    for i = 0 to q.len - 1 do
      bigger.(i) <- q.buf.((q.head + i) land (cap - 1))
    done;
    q.buf <- bigger;
    q.head <- 0

  (* ring indices are masked to the power-of-two capacity: in range *)
  let[@inline] push q x =
    if q.len = Array.length q.buf then grow q;
    Array.unsafe_set q.buf ((q.head + q.len) land (Array.length q.buf - 1)) x;
    q.len <- q.len + 1

  (* caller checks [is_empty] *)
  let[@inline] pop q =
    let x = Array.unsafe_get q.buf q.head in
    q.head <- (q.head + 1) land (Array.length q.buf - 1);
    q.len <- q.len - 1;
    x

  let[@inline] peek q = Array.unsafe_get q.buf q.head
end

(* Same ring, for consume cells. *)
module Rq = struct
  type 'a t = {
    mutable buf : 'a array;
    mutable head : int;
    mutable len : int;
    dummy : 'a;
  }

  let create dummy = { buf = Array.make 16 dummy; head = 0; len = 0; dummy }
  let[@inline] is_empty q = q.len = 0

  let[@inline never] grow q =
    let cap = Array.length q.buf in
    let bigger = Array.make (2 * cap) q.dummy in
    for i = 0 to q.len - 1 do
      bigger.(i) <- q.buf.((q.head + i) land (cap - 1))
    done;
    q.buf <- bigger;
    q.head <- 0

  let[@inline] push q x =
    if q.len = Array.length q.buf then grow q;
    q.buf.((q.head + q.len) land (Array.length q.buf - 1)) <- x;
    q.len <- q.len + 1

  let[@inline] pop q =
    let x = q.buf.(q.head) in
    q.buf.(q.head) <- q.dummy;
    q.head <- (q.head + 1) land (Array.length q.buf - 1);
    q.len <- q.len - 1;
    x
end

(* --- lowered interpreter state ------------------------------------------- *)

(* A lazily-issued consume: the value lands here when the DU responds.
   φ-nodes and selects copy slots (a mux does not force its input), so a
   pending consume can flow through joins without blocking the unit; only a
   computational *use* forces it. Cells per channel fill in FIFO order. *)
type cell = { mutable full : bool; mutable cv : int }

let dummy_cell = { full = false; cv = 0 }

(* Inter-unit channels, one ring per dense array id. Request entries are
   (mem lsl 1) lor is_store, then the address; store-value entries are
   (mem lsl 1) lor poisoned, then the value. All rings exist from the
   start — no lazy creation on the hot path. *)
type channels = { requests : Iq.t array; store_values : Iq.t array }

type urt = {
  prog : Lower.uprog;
  vals : int array; (* slot -> value (booleans 0/1) *)
  pend : cell option array; (* slot -> unforced consume cell, if any *)
  ldv : Iq.t array; (* load mem -> values the DU delivered to this unit *)
  promises : cell Rq.t array; (* load mem -> outstanding cells, pop order *)
  last_consume : int array; (* dense consume id -> last trace index *)
  scratch_v : int array; (* φ copies are simultaneous: read all, *)
  scratch_p : cell option array; (* then write all *)
  tb : Trace.Builder.t;
  mutable cur : int; (* dense block id *)
  mutable came_from : int; (* dense block id, -1 before entry *)
  mutable phase : int; (* -1 φs | k in [0,n) uop k | n pre-term | n+1 term *)
  mutable finished : bool;
  mutable iter : int; (* becomes 0 on first hot-header entry *)
  mutable depth : int;
  mutable steps : int;
}

let[@inline] int_of_arg = function
  | Types.Vint n -> n
  | Types.Vbool b -> if b then 1 else 0

let make_urt (prog : Lower.uprog) ~n_mems ~(args : (string * Types.value) list)
    : urt =
  let vals = Array.make (max prog.Lower.n_slots 1) 0 in
  let pend = Array.make (max prog.Lower.n_slots 1) None in
  List.iter
    (fun (name, s) ->
      match List.assoc_opt name args with
      | Some v -> vals.(s) <- int_of_arg v
      | None -> Fmt.invalid_arg "Exec: missing argument %s" name)
    prog.Lower.params;
  {
    prog;
    vals;
    pend;
    ldv = Array.init (max n_mems 1) (fun _ -> Iq.create ());
    promises = Array.init (max n_mems 1) (fun _ -> Rq.create dummy_cell);
    last_consume = Array.make (max prog.Lower.n_consumes 1) (-1);
    scratch_v = Array.make (max prog.Lower.max_phis 1) 0;
    scratch_p = Array.make (max prog.Lower.max_phis 1) None;
    tb = Trace.Builder.create ();
    cur = prog.Lower.entry;
    came_from = -1;
    phase = -1;
    finished = false;
    iter = -1;
    depth = 0;
    steps = 0;
  }

(* Force a slot: resolve a filled cell in place, block on an unfilled one.
   Slots are assigned densely by Lower, so accesses are in range. *)
let[@inline] force (u : urt) s =
  match Array.unsafe_get u.pend s with
  | None -> Array.unsafe_get u.vals s
  | Some c ->
    if c.full then begin
      Array.unsafe_set u.vals s c.cv;
      Array.unsafe_set u.pend s None;
      c.cv
    end
    else raise Blocked_on_value

let[@inline] read (u : urt) = function
  | Lower.Imm n -> n
  | Lower.Slot s -> force u s

(* Copy a slot without forcing it. *)
let[@inline] copy_to (u : urt) dst = function
  | Lower.Imm n ->
    u.vals.(dst) <- n;
    u.pend.(dst) <- None
  | Lower.Slot s ->
    u.vals.(dst) <- u.vals.(s);
    u.pend.(dst) <- u.pend.(s)

let[@inline] push_ev (u : urt) ~meta ~payload =
  Trace.Builder.push u.tb ~meta
    ~iter:(if u.iter >= 0 then u.iter else 0)
    ~depth:u.depth ~payload

let gate_meta = Trace.pack_meta ~tag:Trace.t_gate ~ctrl:false ~arr:0 ~mem:0

let apply_phis (u : urt) (phis : (int * Lower.copy array) array) =
  let copies = ref [||] in
  (let found = ref false in
   Array.iter
     (fun (pred, cs) ->
       if (not !found) && pred = u.came_from then begin
         found := true;
         copies := cs
       end)
     phis;
   if not !found then
     Fmt.invalid_arg "Exec(%s): bb%d entered from unexpected bb%d"
       (Trace.unit_name u.prog.Lower.u_unit)
       u.prog.Lower.blocks.(u.cur).Lower.orig_bid
       u.prog.Lower.blocks.(u.came_from).Lower.orig_bid);
  let copies = !copies in
  let n = Array.length copies in
  for i = 0 to n - 1 do
    match copies.(i).Lower.c_src with
    | Lower.Imm k ->
      u.scratch_v.(i) <- k;
      u.scratch_p.(i) <- None
    | Lower.Slot s ->
      u.scratch_v.(i) <- u.vals.(s);
      u.scratch_p.(i) <- u.pend.(s)
  done;
  for i = 0 to n - 1 do
    let c = copies.(i) in
    u.vals.(c.Lower.c_dst) <- u.scratch_v.(i);
    u.pend.(c.Lower.c_dst) <- u.scratch_p.(i)
  done

let[@inline] advance (u : urt) =
  u.phase <- u.phase + 1;
  u.depth <- u.depth + 1;
  u.steps <- u.steps + 1;
  Progress

let exec_uop (ch : channels) (u : urt) (uop : Lower.uop) : step_result =
  match uop with
  | Lower.Ubinop { dst; op; a; b } ->
    let r = Instr.eval_binop op (read u a) (read u b) in
    u.vals.(dst) <- r;
    u.pend.(dst) <- None;
    advance u
  | Lower.Ucmp { dst; op; a; b } ->
    let r = Instr.eval_cmp op (read u a) (read u b) in
    u.vals.(dst) <- (if r then 1 else 0);
    u.pend.(dst) <- None;
    advance u
  | Lower.Uselect { dst; c; a; b } ->
    copy_to u dst (if read u c <> 0 then a else b);
    advance u
  | Lower.Unot { dst; a } ->
    u.vals.(dst) <- (if read u a <> 0 then 0 else 1);
    u.pend.(dst) <- None;
    advance u
  | Lower.Usend_ld { arr; idx; mem; meta } ->
    let addr = read u idx in
    let q = ch.requests.(arr) in
    Iq.push q (mem lsl 1);
    Iq.push q addr;
    push_ev u ~meta ~payload:addr;
    advance u
  | Lower.Usend_st { arr; idx; mem; meta } ->
    let addr = read u idx in
    let q = ch.requests.(arr) in
    Iq.push q ((mem lsl 1) lor 1);
    Iq.push q addr;
    push_ev u ~meta ~payload:addr;
    advance u
  | Lower.Uconsume { dst; mem; cid; meta } ->
    let q = u.ldv.(mem) in
    let pq = u.promises.(mem) in
    (if Iq.is_empty q || not (Rq.is_empty pq) then begin
       (* channel empty (or earlier pops still pending): issue the pop
          lazily and keep going — only a use of the value blocks *)
       let c = { full = false; cv = 0 } in
       u.pend.(dst) <- Some c;
       Rq.push pq c
     end
     else begin
       u.vals.(dst) <- Iq.pop q;
       u.pend.(dst) <- None
     end);
    push_ev u ~meta ~payload:0;
    u.last_consume.(cid) <- Trace.Builder.length u.tb - 1;
    advance u
  | Lower.Uproduce { arr; value; mem; meta } ->
    let v = read u value in
    let q = ch.store_values.(arr) in
    Iq.push q (mem lsl 1);
    Iq.push q v;
    push_ev u ~meta ~payload:v;
    advance u
  | Lower.Upoison { arr; mem; meta } ->
    let q = ch.store_values.(arr) in
    Iq.push q ((mem lsl 1) lor 1);
    Iq.push q 0;
    push_ev u ~meta ~payload:0;
    advance u

let exec_term (u : urt) (b : Lower.blk) : step_result =
  (* evaluate the branch first: a blocked condition must not record the
     gate or advance any state *)
  let target =
    match b.Lower.term with
    | Lower.Tbr t -> t
    | Lower.Tcond (c, t, e) -> if read u c <> 0 then t else e
    | Lower.Tswitch (c, ts) ->
      let n = Array.length ts in
      let k = read u c in
      ts.(if k < 0 then 0 else if k >= n then n - 1 else k)
    | Lower.Tret -> -1
  in
  u.steps <- u.steps + 1;
  let g = b.Lower.gate in
  if Array.length g > 0 then begin
    let dep = ref (-1) in
    for i = 0 to Array.length g - 1 do
      let d = u.last_consume.(g.(i)) in
      if d > !dep then dep := d
    done;
    push_ev u ~meta:gate_meta ~payload:!dep
  end;
  if target >= 0 then begin
    if u.prog.Lower.blocks.(target).Lower.is_hot then begin
      u.iter <- u.iter + 1;
      u.depth <- 0
    end;
    u.came_from <- u.cur;
    u.cur <- target;
    u.phase <- -1;
    Progress
  end
  else begin
    u.finished <- true;
    Finished
  end

let step_inner (ch : channels) (u : urt) : step_result =
  if u.finished then Finished
  else begin
    let b = u.prog.Lower.blocks.(u.cur) in
    let ph = u.phase in
    if ph = -1 then begin
      if u.came_from >= 0 && Array.length b.Lower.phis > 0 then
        apply_phis u b.Lower.phis;
      u.phase <- 0;
      u.steps <- u.steps + 1;
      Progress
    end
    else begin
      let n = Array.length b.Lower.uops in
      if ph < n then exec_uop ch u b.Lower.uops.(ph)
      else if ph = n then begin
        u.phase <- n + 1;
        Progress
      end
      else exec_term u b
    end
  end

(* Fill outstanding consume cells from their channels, FIFO per channel.
   Returns true on progress. *)
let fulfill (u : urt) : bool =
  let progress = ref false in
  for m = 0 to Array.length u.promises - 1 do
    let pq = u.promises.(m) in
    if not (Rq.is_empty pq) then begin
      let q = u.ldv.(m) in
      while (not (Rq.is_empty pq)) && not (Iq.is_empty q) do
        let c = Rq.pop pq in
        c.cv <- Iq.pop q;
        c.full <- true;
        progress := true
      done
    end
  done;
  !progress

(* --- functional DU ------------------------------------------------------- *)

type du_state = {
  names : string array; (* dense array id -> name *)
  memory : Interp.Memory.t;
  marr : int array option array; (* dense array id -> backing store *)
  pending : Iq.t array; (* per array: (mem, addr) stores awaiting value *)
  ldvs : Iq.t array array; (* unit index -> per-mem delivered load values *)
  mutable commits : commit list; (* reverse order *)
  mutable killed : int;
  mutable committed : int;
  mutable loads_served : int;
}

let[@inline] arr_data (du : du_state) a =
  match du.marr.(a) with
  | Some d -> d
  | None ->
    let d = Interp.Memory.array du.memory du.names.(a) in
    du.marr.(a) <- Some d;
    d

(* Same bounds behaviour as Interp.Memory.set / get_speculative: a store to
   an out-of-range address is an error, a speculative read returns 0. *)
let mem_set (du : du_state) a idx v =
  let d = arr_data du a in
  if idx < 0 || idx >= Array.length d then
    Fmt.invalid_arg "Interp.Memory: %s[%d] out of bounds (len %d)" du.names.(a)
      idx (Array.length d)
  else d.(idx) <- v

let[@inline] mem_get_spec (du : du_state) a idx =
  let d = arr_data du a in
  if idx < 0 || idx >= Array.length d then 0 else d.(idx)

(* Drain store values into pending allocations (checking Lemma 6.1), commit
   or drop resolved heads, and serve load requests whose earlier stores are
   all resolved. Returns true if any progress was made. Arrays are visited
   in dense-id order — the same sorted-name order the pre-lowering DU
   established — so the global commit interleaving is unchanged. *)
let du_pump (l : Lower.t) (ch : channels) (du : du_state) : bool =
  let progress = ref false in
  for a = 0 to Array.length du.names - 1 do
    let reqs = ch.requests.(a) in
    let vals = ch.store_values.(a) in
    let pend = du.pending.(a) in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      (* resolve the pending head with an arrived value *)
      if (not (Iq.is_empty pend)) && not (Iq.is_empty vals) then begin
        let p_mem = Iq.pop pend in
        let p_addr = Iq.pop pend in
        let tagw = Iq.pop vals in
        let value = Iq.pop vals in
        let t_mem = tagw lsr 1 in
        if t_mem <> p_mem then
          raise
            (Stream_mismatch
               (Fmt.str
                  "array %s: store request stream has mem%d at head but \
                   value stream delivered mem%d — AGU/CU order mismatch"
                  du.names.(a) p_mem t_mem));
        if tagw land 1 = 1 then du.killed <- du.killed + 1
        else begin
          mem_set du a p_addr value;
          du.commits <-
            { c_arr = du.names.(a); c_addr = p_addr; c_value = value }
            :: du.commits;
          du.committed <- du.committed + 1
        end;
        progress := true;
        continue_ := true
      end;
      (* serve the request head *)
      if not (Iq.is_empty reqs) then begin
        let w0 = Iq.peek reqs in
        if w0 land 1 = 1 then begin
          (* store allocation *)
          ignore (Iq.pop reqs);
          let addr = Iq.pop reqs in
          Iq.push pend (w0 lsr 1);
          Iq.push pend addr;
          progress := true;
          continue_ := true
        end
        else if Iq.is_empty pend then begin
          (* strict in-order disambiguation: a load waits until every
             earlier store of this array is resolved *)
          ignore (Iq.pop reqs);
          let addr = Iq.pop reqs in
          let m = w0 lsr 1 in
          (* speculative request: the address may be out of bounds on a
             mis-speculated path; the read must not trap *)
          let v = mem_get_spec du a addr in
          let subs = l.Lower.subscribers.(m) in
          for i = 0 to Array.length subs - 1 do
            Iq.push du.ldvs.(subs.(i)).(m) v
          done;
          du.loads_served <- du.loads_served + 1;
          progress := true;
          continue_ := true
        end
      end
    done
  done;
  !progress

(* --- co-simulation driver ------------------------------------------------ *)

let finalize_trace ~(arrays : string array) (u : urt) : Trace.unit_trace =
  Trace.Builder.finalize u.tb ~unit:u.prog.Lower.u_unit ~arrays
    ~iterations:(u.iter + 1)
    ~control_synchronized:u.prog.Lower.control_synchronized

let run_lowered ?(fuel = 50_000_000) (l : Lower.t)
    ~(args : (string * Types.value) list) ~(mem : Interp.Memory.t) : result =
  let n_arr = Array.length l.Lower.arrays in
  let ch =
    {
      requests = Array.init n_arr (fun _ -> Iq.create ());
      store_values = Array.init n_arr (fun _ -> Iq.create ());
    }
  in
  let units =
    Array.map
      (fun p -> make_urt p ~n_mems:l.Lower.n_mems ~args)
      (Lower.units l)
  in
  let agu = units.(0) and cu = units.(1) in
  let du =
    {
      names = l.Lower.arrays;
      memory = mem;
      marr = Array.make (max n_arr 1) None;
      pending = Array.init n_arr (fun _ -> Iq.create ());
      ldvs = Array.map (fun u -> u.ldv) units;
      commits = [];
      killed = 0;
      committed = 0;
      loads_served = 0;
    }
  in
  let total_steps = ref 0 in
  (* Run one unit as far as it can go this round; a block on an unfulfilled
     consume retries after draining the unit's channels. The handler is
     installed once per blocked episode, not once per micro-op: a raise of
     [Blocked_on_value] happens before the micro-op has any side effect, so
     re-entering [step_inner] after a successful [fulfill] replays it. *)
  let run_unit u ~progress =
    let go = ref true in
    while !go do
      match
        while not u.finished do
          match step_inner ch u with
          | Progress ->
            progress := true;
            incr total_steps;
            if !total_steps > fuel then raise (Deadlock "out of fuel")
          | Finished | Blocked -> ()
        done
      with
      | () -> go := false
      | exception Blocked_on_value -> if not (fulfill u) then go := false
    done
  in
  let all_finished () = Array.for_all (fun u -> u.finished) units in
  let running = ref true in
  while !running do
    let progress = ref false in
    Array.iter (fun u -> run_unit u ~progress) units;
    if du_pump l ch du then progress := true;
    if all_finished () then begin
      (* final drain: let the DU retire trailing stores and fulfill any
         consumes that were issued lazily and never used *)
      while
        du_pump l ch du || Array.exists (fun u -> fulfill u) units
      do
        ()
      done;
      running := false
    end
    else if not !progress then
      raise
        (Deadlock
           (Fmt.str "no progress: %s"
              (String.concat ", "
                 (Array.to_list
                    (Array.map
                       (fun u ->
                         Fmt.str "%s %s at bb%d"
                           (Trace.unit_name u.prog.Lower.u_unit)
                           (if u.finished then "finished" else "blocked")
                           u.prog.Lower.blocks.(u.cur).Lower.orig_bid)
                       units)))))
  done;
  (* post-run invariants: every channel must be fully drained *)
  for a = 0 to n_arr - 1 do
    if not (Iq.is_empty ch.requests.(a)) then
      raise
        (Desync (Fmt.str "unserved requests remain for array %s" du.names.(a)));
    if not (Iq.is_empty ch.store_values.(a)) then
      raise
        (Desync
           (Fmt.str "unmatched store values remain for array %s" du.names.(a)));
    if not (Iq.is_empty du.pending.(a)) then
      raise
        (Desync
           (Fmt.str "store allocations never resolved for array %s"
              du.names.(a)))
  done;
  Array.iter
    (fun u ->
      Array.iteri
        (fun m q ->
          if not (Iq.is_empty q) then
            raise
              (Desync
                 (Fmt.str "load values for mem%d never consumed by %s" m
                    (Trace.unit_name u.prog.Lower.u_unit))))
        u.ldv)
    units;
  {
    memory = mem;
    agu_trace = finalize_trace ~arrays:l.Lower.arrays agu;
    au_traces =
      Array.map
        (fun u -> finalize_trace ~arrays:l.Lower.arrays u)
        (Array.sub units 2 (Array.length units - 2));
    cu_trace = finalize_trace ~arrays:l.Lower.arrays cu;
    commits = List.rev du.commits;
    killed_stores = du.killed;
    committed_stores = du.committed;
    loads_served = du.loads_served;
    agu_steps = agu.steps;
    cu_steps = cu.steps;
  }

let run ?fuel (p : Dae_core.Pipeline.t) ~(args : (string * Types.value) list)
    ~(mem : Interp.Memory.t) : result =
  run_lowered ?fuel (Lower.compile p) ~args ~mem

(* Mis-speculation rate: fraction of store requests whose value was a kill. *)
let misspeculation_rate (r : result) : float =
  let total = r.killed_stores + r.committed_stores in
  if total = 0 then 0.0 else float_of_int r.killed_stores /. float_of_int total

(* Check a decoupled execution against the sequential golden model: same
   final memory, and the same per-array sequence of committed stores. *)
let check_against_golden ~(golden_mem : Interp.Memory.t)
    ~(golden : Interp.result) (r : result) : (unit, string) Stdlib.result =
  if not (Interp.Memory.equal golden_mem r.memory) then
    Error
      (Fmt.str "final memory differs@.golden:@.%a@.decoupled:@.%a"
         Interp.Memory.pp golden_mem Interp.Memory.pp r.memory)
  else begin
    (* group stores per array in one pass over each trace (the golden trace
       is long; walking it once per array was the old cost) *)
    let group seq =
      let tbl : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
      seq (fun arr p ->
          match Hashtbl.find_opt tbl arr with
          | Some r -> r := p :: !r
          | None -> Hashtbl.replace tbl arr (ref [ p ]));
      tbl
    in
    let golden_tbl =
      group (fun emit ->
          let tr = golden.Interp.trace in
          for k = 0 to Interp.trace_length tr - 1 do
            if Interp.t_is_store tr k then
              emit (Interp.t_arr tr k) (Interp.t_idx tr k, Interp.t_value tr k)
          done)
    in
    let sim_tbl =
      group (fun emit ->
          List.iter (fun c -> emit c.c_arr (c.c_addr, c.c_value)) r.commits)
    in
    let arrays =
      List.sort_uniq compare (List.map (fun c -> c.c_arr) r.commits)
    in
    let stores_of tbl arr =
      match Hashtbl.find_opt tbl arr with
      | Some l -> List.rev !l
      | None -> []
    in
    let mismatch =
      List.find_map
        (fun arr ->
          let golden_stores = stores_of golden_tbl arr in
          let sim_stores = stores_of sim_tbl arr in
          if golden_stores <> sim_stores then
            Some
              (Fmt.str
                 "commit order for %s differs: golden %d stores, sim %d stores"
                 arr
                 (List.length golden_stores)
                 (List.length sim_stores))
          else None)
        arrays
    in
    match mismatch with None -> Ok () | Some m -> Error m
  end

(* --- pre-lowering reference interpreter ---------------------------------- *)

(* The original tree-walking co-simulator, kept as the oracle for the
   lowering equivalence property (test/test_lower.ml): Hashtbl value
   environments, string-keyed channel tables, lazy queue creation. Only the
   trace recording was ported to the compact encoding (over the same
   interned array table as the fast path) so the two results compare with
   Trace.equal. *)
module Reference = struct
  type request =
    | Rld of { mem : int; addr : int }
    | Rst of { mem : int; addr : int }

  type store_tag = { tag_mem : int; value : int; poisoned : bool }

  type ref_channels = {
    requests : (string, request Queue.t) Hashtbl.t;
    store_values : (string, store_tag Queue.t) Hashtbl.t;
    load_values : (int * Trace.unit_id, int Queue.t) Hashtbl.t;
    subscribers : (int, Trace.unit_id list) Hashtbl.t; (* load mem -> units *)
  }

  let get_queue tbl key =
    match Hashtbl.find_opt tbl key with
    | Some q -> q
    | None ->
      let q = Queue.create ()
      in
      Hashtbl.replace tbl key q;
      q

  type phase = Phis | At of int (* instruction index *) | Term

  (* A value slot: either a materialised value or a cell a lazily-issued
     consume will fill when the DU responds. *)
  type slot = Ready of Types.value | Cell of Types.value option ref

  type ustate = {
    uid : Trace.unit_id;
    func : Func.t;
    arr_id : (string, int) Hashtbl.t;
    env : (int, slot) Hashtbl.t;
    mutable cur : int;
    mutable came_from : int option;
    mutable phase : phase;
    mutable finished : bool;
    mutable iter : int;
    mutable depth : int;
    mutable steps : int;
    tb : Trace.Builder.t;
    promise_queues : (int, Types.value option ref Queue.t) Hashtbl.t;
    hot_header : int option;
    control_consumes : (int, unit) Hashtbl.t;
    serializing_terms : (int, int list) Hashtbl.t;
    last_consume_idx : (int, int) Hashtbl.t; (* consume id -> trace index *)
  }

  let make_ustate uid (f : Func.t) ~arr_id
      ~(args : (string * Types.value) list) : ustate =
    let env = Hashtbl.create 64 in
    List.iter
      (fun (name, vid) ->
        match List.assoc_opt name args with
        | Some v -> Hashtbl.replace env vid (Ready v)
        | None -> Fmt.invalid_arg "Exec: missing argument %s" name)
      f.Func.params;
    {
      uid;
      func = f;
      arr_id;
      env;
      cur = f.Func.entry;
      came_from = None;
      phase = Phis;
      finished = false;
      iter = -1;
      depth = 0;
      steps = 0;
      tb = Trace.Builder.create ();
      hot_header = Lower.hot_header f;
      control_consumes = Lower.control_consume_ids f;
      serializing_terms = Lower.serializing_terminators f;
      last_consume_idx = Hashtbl.create 8;
      promise_queues = Hashtbl.create 8;
    }

  (* The slot an operand denotes, without forcing it. *)
  let slot_of (u : ustate) = function
    | Types.Cst c -> Ready (Types.value_of_const c)
    | Types.Var v -> (
      match Hashtbl.find_opt u.env v with
      | Some s -> s
      | None ->
        Fmt.invalid_arg "Exec(%s): read of undefined %%%d in %s"
          (Trace.unit_name u.uid) v u.func.Func.name)

  let value_of (u : ustate) op =
    match slot_of u op with
    | Ready v -> v
    | Cell r -> ( match !r with Some v -> v | None -> raise Blocked_on_value)

  let fulfill_promises (ch : ref_channels) (u : ustate) : bool =
    let progress = ref false in
    Hashtbl.iter
      (fun mem q ->
        let data = get_queue ch.load_values (mem, u.uid) in
        while (not (Queue.is_empty q)) && not (Queue.is_empty data) do
          let cell = Queue.pop q in
          let v = Queue.pop data in
          cell := Some (Types.Vint v);
          progress := true
        done)
      u.promise_queues;
    !progress

  let int_of u op = Types.int_of_value (value_of u op)
  let bool_of u op = Types.bool_of_value (value_of u op)

  let record (u : ustate) ~tag ~ctrl ~arr ~mem ~payload =
    let arr = Hashtbl.find u.arr_id arr in
    Trace.Builder.push u.tb
      ~meta:(Trace.pack_meta ~tag ~ctrl ~arr ~mem)
      ~iter:(max u.iter 0) ~depth:u.depth ~payload

  let enter_block (u : ustate) bid =
    (match u.hot_header with
    | Some h when bid = h ->
      u.iter <- u.iter + 1;
      u.depth <- 0
    | _ -> ());
    u.came_from <- Some u.cur;
    u.cur <- bid;
    u.phase <- Phis

  let step (ch : ref_channels) (u : ustate) : step_result =
    if u.finished then Finished
    else begin
      let b = Func.block u.func u.cur in
      match u.phase with
      | Phis ->
        (match u.came_from with
        | None -> ()
        | Some pred ->
          (* φs copy slots, not values: a pending consume flows through the
             join and only blocks a later computational use *)
          let resolved =
            List.map
              (fun (p : Block.phi) ->
                match List.assoc_opt pred p.Block.incoming with
                | Some op -> (p.Block.pid, slot_of u op)
                | None ->
                  Fmt.invalid_arg
                    "Exec(%s): phi %%%d in bb%d lacks entry for bb%d"
                    (Trace.unit_name u.uid) p.Block.pid b.Block.bid pred)
              b.Block.phis
          in
          List.iter (fun (pid, s) -> Hashtbl.replace u.env pid s) resolved);
        u.phase <- At 0;
        u.steps <- u.steps + 1;
        Progress
      | At k when k >= List.length b.Block.instrs ->
        u.phase <- Term;
        Progress
      | At k -> (
        let i = List.nth b.Block.instrs k in
        let advance () =
          u.phase <- At (k + 1);
          u.depth <- u.depth + 1;
          u.steps <- u.steps + 1;
          Progress
        in
        match i.Instr.kind with
        | Instr.Binop (op, a, b') ->
          Hashtbl.replace u.env i.Instr.id
            (Ready
               (Types.Vint (Instr.eval_binop op (int_of u a) (int_of u b'))));
          advance ()
        | Instr.Cmp (op, a, b') ->
          Hashtbl.replace u.env i.Instr.id
            (Ready
               (Types.Vbool (Instr.eval_cmp op (int_of u a) (int_of u b'))));
          advance ()
        | Instr.Select (c, a, b') ->
          Hashtbl.replace u.env i.Instr.id
            (if bool_of u c then slot_of u a else slot_of u b');
          advance ()
        | Instr.Not a ->
          Hashtbl.replace u.env i.Instr.id
            (Ready (Types.Vbool (not (bool_of u a))));
          advance ()
        | Instr.Load _ | Instr.Store _ ->
          Fmt.invalid_arg "Exec(%s): raw memory op survived decoupling: %s"
            (Trace.unit_name u.uid)
            (Printer.instr_to_string i)
        | Instr.Send_ld_addr { arr; idx; mem } ->
          let addr = int_of u idx in
          Queue.add (Rld { mem; addr }) (get_queue ch.requests arr);
          record u ~tag:Trace.t_send_ld ~ctrl:false ~arr ~mem ~payload:addr;
          advance ()
        | Instr.Send_st_addr { arr; idx; mem } ->
          let addr = int_of u idx in
          Queue.add (Rst { mem; addr }) (get_queue ch.requests arr);
          record u ~tag:Trace.t_send_st ~ctrl:false ~arr ~mem ~payload:addr;
          advance ()
        | Instr.Consume_val { arr; mem } ->
          let q = get_queue ch.load_values (mem, u.uid) in
          let pq =
            match Hashtbl.find_opt u.promise_queues mem with
            | Some pq -> pq
            | None ->
              let pq = Queue.create () in
              Hashtbl.replace u.promise_queues mem pq;
              pq
          in
          (if Queue.is_empty q || not (Queue.is_empty pq) then begin
             (* channel empty (or earlier pops still pending): issue the
                pop lazily and keep going — only a use of the value blocks *)
             let cell = ref None in
             Hashtbl.replace u.env i.Instr.id (Cell cell);
             Queue.add cell pq
           end
           else begin
             let v = Queue.pop q in
             Hashtbl.replace u.env i.Instr.id (Ready (Types.Vint v))
           end);
          record u ~tag:Trace.t_consume
            ~ctrl:(Hashtbl.mem u.control_consumes i.Instr.id)
            ~arr ~mem ~payload:0;
          Hashtbl.replace u.last_consume_idx i.Instr.id
            (Trace.Builder.length u.tb - 1);
          advance ()
        | Instr.Produce_val { arr; value; mem } ->
          let v = int_of u value in
          Queue.add
            { tag_mem = mem; value = v; poisoned = false }
            (get_queue ch.store_values arr);
          record u ~tag:Trace.t_produce ~ctrl:false ~arr ~mem ~payload:v;
          advance ()
        | Instr.Poison { arr; mem } ->
          Queue.add
            { tag_mem = mem; value = 0; poisoned = true }
            (get_queue ch.store_values arr);
          record u ~tag:Trace.t_kill ~ctrl:false ~arr ~mem ~payload:0;
          advance ())
      | Term ->
        (* evaluate the branch first: a blocked condition must not record
           the gate or advance any state *)
        let target =
          match b.Block.term with
          | Block.Br t -> Some t
          | Block.Cond_br (c, t, f) -> Some (if bool_of u c then t else f)
          | Block.Switch (c, ts) ->
            let n = List.length ts in
            let k = int_of u c in
            let k = if k < 0 then 0 else if k >= n then n - 1 else k in
            Some (List.nth ts k)
          | Block.Ret _ -> None
        in
        u.steps <- u.steps + 1;
        (match Hashtbl.find_opt u.serializing_terms u.cur with
        | Some consume_ids ->
          let dep =
            List.fold_left
              (fun acc c ->
                match Hashtbl.find_opt u.last_consume_idx c with
                | Some idx -> max acc idx
                | None -> acc)
              (-1) consume_ids
          in
          Trace.Builder.push u.tb ~meta:gate_meta ~iter:(max u.iter 0)
            ~depth:u.depth ~payload:dep
        | None -> ());
        (match target with
        | Some t ->
          enter_block u t;
          Progress
        | None ->
          u.finished <- true;
          Finished)
    end

  let step ch u : step_result =
    match step ch u with r -> r | exception Blocked_on_value -> Blocked

  type du_state = {
    pending : (string, (int * int) Queue.t) Hashtbl.t; (* (mem, addr) *)
    mutable commits : commit list; (* reverse order *)
    mutable killed : int;
    mutable committed : int;
    mutable loads_served : int;
  }

  let du_create () =
    {
      pending = Hashtbl.create 8;
      commits = [];
      killed = 0;
      committed = 0;
      loads_served = 0;
    }

  let du_pump (du : du_state) (ch : ref_channels) (mem : Interp.Memory.t) :
      bool =
    let progress = ref false in
    let arrays =
      Hashtbl.fold (fun arr _ acc -> arr :: acc) ch.requests []
      @ Hashtbl.fold (fun arr _ acc -> arr :: acc) ch.store_values []
      |> List.sort_uniq compare
    in
    List.iter
      (fun arr ->
        let reqs = get_queue ch.requests arr in
        let vals = get_queue ch.store_values arr in
        let pend = get_queue du.pending arr in
        let continue_ = ref true in
        while !continue_ do
          continue_ := false;
          if (not (Queue.is_empty pend)) && not (Queue.is_empty vals) then begin
            let p_mem, p_addr = Queue.pop pend in
            let tag = Queue.pop vals in
            if tag.tag_mem <> p_mem then
              raise
                (Stream_mismatch
                   (Fmt.str
                      "array %s: store request stream has mem%d at head but \
                       value stream delivered mem%d — AGU/CU order mismatch"
                      arr p_mem tag.tag_mem));
            if tag.poisoned then du.killed <- du.killed + 1
            else begin
              Interp.Memory.set mem arr p_addr tag.value;
              du.commits <-
                { c_arr = arr; c_addr = p_addr; c_value = tag.value }
                :: du.commits;
              du.committed <- du.committed + 1
            end;
            progress := true;
            continue_ := true
          end;
          if not (Queue.is_empty reqs) then begin
            match Queue.peek reqs with
            | Rst { mem = m; addr } ->
              ignore (Queue.pop reqs);
              Queue.add (m, addr) pend;
              progress := true;
              continue_ := true
            | Rld { mem = m; addr } ->
              if Queue.is_empty pend then begin
                ignore (Queue.pop reqs);
                let v = Interp.Memory.get_speculative mem arr addr in
                let subs =
                  match Hashtbl.find_opt ch.subscribers m with
                  | Some s -> s
                  | None -> []
                in
                List.iter
                  (fun unit ->
                    Queue.add v (get_queue ch.load_values (m, unit)))
                  subs;
                du.loads_served <- du.loads_served + 1;
                progress := true;
                continue_ := true
              end
          end
        done)
      arrays;
    !progress

  let finalize_trace ~(arrays : string array) (u : ustate) : Trace.unit_trace
      =
    Trace.Builder.finalize u.tb ~unit:u.uid ~arrays ~iterations:(u.iter + 1)
      ~control_synchronized:(Hashtbl.length u.control_consumes > 0)

  let run ?(fuel = 50_000_000) (p : Dae_core.Pipeline.t)
      ~(args : (string * Types.value) list) ~(mem : Interp.Memory.t) : result
      =
    let arrays = Lower.array_table p in
    let arr_id = Hashtbl.create 16 in
    Array.iteri (fun i name -> Hashtbl.replace arr_id name i) arrays;
    let ch =
      {
        requests = Hashtbl.create 8;
        store_values = Hashtbl.create 8;
        load_values = Hashtbl.create 16;
        subscribers = Hashtbl.create 16;
      }
    in
    List.iter
      (fun (m, subs) ->
        Hashtbl.replace ch.subscribers m
          (List.map
             (function
               | `Agu -> Trace.Agu
               | `Cu -> Trace.Cu
               | `Au k -> Trace.Au k)
             subs))
      p.Dae_core.Pipeline.load_subscribers;
    let agu = make_ustate Trace.Agu p.Dae_core.Pipeline.agu ~arr_id ~args in
    let cu = make_ustate Trace.Cu p.Dae_core.Pipeline.cu ~arr_id ~args in
    let aus =
      List.mapi
        (fun k f -> make_ustate (Trace.Au (k + 1)) f ~arr_id ~args)
        p.Dae_core.Pipeline.aus
    in
    (* dense Trace.unit_index order *)
    let units = agu :: cu :: aus in
    let du = du_create () in
    let total_steps = ref 0 in
    let finished () = List.for_all (fun u -> u.finished) units in
    let running = ref true in
    while !running do
      let progress = ref false in
      List.iter
        (fun u ->
          if fulfill_promises ch u then progress := true;
          let go = ref true in
          while !go do
            match step ch u with
            | Progress ->
              progress := true;
              incr total_steps;
              if !total_steps > fuel then raise (Deadlock "out of fuel");
              if fulfill_promises ch u then ()
            | Blocked | Finished -> go := false
          done)
        units;
      if du_pump du ch mem then progress := true;
      if finished () then begin
        while
          du_pump du ch mem
          || List.exists (fun u -> fulfill_promises ch u) units
        do
          ()
        done;
        running := false
      end
      else if not !progress then
        raise
          (Deadlock
             (Fmt.str "no progress: %s"
                (String.concat ", "
                   (List.map
                      (fun u ->
                        Fmt.str "%s %s at bb%d" (Trace.unit_name u.uid)
                          (if u.finished then "finished" else "blocked")
                          u.cur)
                      units))))
    done;
    Hashtbl.iter
      (fun arr q ->
        if not (Queue.is_empty q) then
          raise (Desync (Fmt.str "unserved requests remain for array %s" arr)))
      ch.requests;
    Hashtbl.iter
      (fun arr q ->
        if not (Queue.is_empty q) then
          raise
            (Desync (Fmt.str "unmatched store values remain for array %s" arr)))
      ch.store_values;
    Hashtbl.iter
      (fun arr q ->
        if not (Queue.is_empty q) then
          raise
            (Desync
               (Fmt.str "store allocations never resolved for array %s" arr)))
      du.pending;
    Hashtbl.iter
      (fun (m, unit) q ->
        if not (Queue.is_empty q) then
          raise
            (Desync
               (Fmt.str "load values for mem%d never consumed by %s" m
                  (Trace.unit_name unit))))
      ch.load_values;
    {
      memory = mem;
      agu_trace = finalize_trace ~arrays agu;
      au_traces =
        Array.of_list (List.map (fun u -> finalize_trace ~arrays u) aus);
      cu_trace = finalize_trace ~arrays cu;
      commits = List.rev du.commits;
      killed_stores = du.killed;
      committed_stores = du.committed;
      loads_served = du.loads_served;
      agu_steps = agu.steps;
      cu_steps = cu.steps;
    }
end
