(** Content-addressed on-disk result cache.

    `daec sweep` (and the re-timed [size --validate] path) memoize timing
    results across processes: a cache key digests everything the result
    depends on — the lowered program ({!Lower.digest}), the workload
    instance, the architecture, the configuration ({!Config.key}) and the
    engine version — so equal keys are interchangeable results and stale
    entries are impossible by construction. Bumping {!version} (any change
    to Exec/Timing/Lower semantics) retires every prior entry without a
    migration.

    Entries live under [dir]/[k₀k₁]/[key].entry where [k₀k₁] are the first
    two hex digits of the key (sharding keeps directories small). Each
    entry is a one-line header [daec-cache/1 <payload-md5> <len> <kind>]
    followed by a [Marshal] payload; {!find} verifies the length and
    digest before trusting a byte, deletes anything that fails, and
    reports it as corrupt — a damaged cache degrades to recomputation,
    never to wrong answers. The [kind] token classifies the entry for
    [daec cache stats] ({!disk_stats.by_kind}: re-timed hierarchy points,
    sweep points, prepared-plan stamps, …); headers written before kinds
    existed have three tokens and read back as {!default_kind}.

    Writes go to a temp file in the same directory and are published with
    [Sys.rename], so concurrent writers (pool domains, parallel CI jobs)
    race benignly: last rename wins and readers only ever see whole
    entries. *)

val version : string
(** Timing-engine version stamp, part of every key. Bump when Exec,
    Timing, Lower or the cached payload representation changes
    observably. *)

val default_dir : string
(** ["_daec_cache"], resolved relative to the working directory. *)

type t
(** A cache handle: directory + hit/miss/corruption counters. A disabled
    handle ({!disabled}, or [daec sweep --no-cache]) misses every lookup
    and drops every store, so callers never branch. *)

val create : ?dir:string -> unit -> t
(** Handle rooted at [dir] (default {!default_dir}). The directory is
    created lazily on first store. *)

val disabled : unit -> t

val is_enabled : t -> bool

val dir : t -> string option

val key : string list -> string
(** Digest a list of key components into a 32-hex-char key. Components
    are length-prefixed before hashing, so [["ab"; "c"]] and [["a";
    "bc"]] collide only if MD5 does. *)

val find : t -> string -> 'a option
(** [find t k] returns the payload stored under key [k], or [None] on a
    miss or a corrupt/truncated entry (which is counted and removed).

    The payload is [Marshal]led: the type ['a] is {e not} checked at
    read time, so every distinct payload type must fold a distinguishing
    tag into its key (the sweep engine folds {!version} plus a
    per-payload format tag). *)

val default_kind : string
(** ["result"] — the kind recorded when {!store} is not given one, and
    the kind legacy three-token headers read back as. *)

val store : ?kind:string -> t -> string -> 'a -> unit
(** Atomically persist a payload under key [k]. [kind] (default
    {!default_kind}) labels the entry in {!disk_stats} — one short token,
    no spaces. Errors (disk full, permissions) are swallowed: the cache
    is an accelerator, not a store of record.
    @raise Invalid_argument on a [kind] containing a space or newline. *)

(** {1 Introspection} *)

type counters = {
  hits : int;
  misses : int;
  corrupt : int;  (** failed verification; removed and recomputed *)
  stores : int;
}

val counters : t -> counters
(** This handle's lookup/store counters (cumulative, domain-safe). *)

val hit_rate : counters -> float
(** [hits / (hits + misses)]; 0 when no lookups happened. *)

type disk_stats = {
  entries : int;
  bytes : int;
  by_kind : (string * (int * int)) list;
      (** kind -> (entries, bytes), sorted by kind — separates re-timed
          hierarchy points and prepared-plan stamps from sweep points *)
}

val disk_stats : t -> disk_stats
(** Walk the cache directory: entry count and total payload bytes, plus
    the per-kind breakdown read from each entry's header line.
    For [daec cache stats]. *)

val clear : t -> int
(** Remove every entry (and the shard directories); returns how many
    entries were deleted. For [daec cache clear]. *)
