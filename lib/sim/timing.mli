(** Cycle-level timing simulation of the DAE architecture template (paper
    Figure 1): pipelined AGU/CU loop engines replaying their channel
    traces, bounded latency-carrying FIFOs, a per-array LSQ with separate
    load/store request channels, disambiguation by program-order tags,
    store-to-load forwarding and poison kill, and dual-ported SRAM.

    A unit retires events out of order across channels but in order per
    channel (one op per channel per cycle), no earlier than
    [iteration × unit_ii + depth], and never past an unresolved {!Trace.ev}
    [Gate] — which is what serializes the non-speculative DAE AGU. A
    mis-speculated store occupies its store-queue slot from allocation to
    kill: the paper's §8.2.1 cost mechanism. *)

type lsq_stats = {
  mutable alloc_stall_cycles : int;
  mutable raw_wait_cycles : int;
  mutable forwards : int;
  mutable kills : int;
  mutable commits : int;
  mutable loads : int;
}

(** Committed-order LSQ/memory events, recorded under [run ~record_mem] in
    execution order — the trace the {!Mem_model} SC/ordering oracle
    replays. [seq] is the per-array program-order tag the AGU assigned;
    [older_sts] on a load is the number of same-array stores preceding it
    in program order. *)
type mem_event =
  | Ev_st_alloc of { arr : string; seq : int; addr : int; t : int }
  | Ev_st_resolve of { arr : string; seq : int; poisoned : bool; t : int }
  | Ev_st_commit of { arr : string; seq : int; addr : int; t : int }
  | Ev_st_kill of { arr : string; seq : int; t : int }
  | Ev_ld_issue of {
      arr : string;
      seq : int;
      addr : int;
      older_sts : int;
      forwarded : bool;
      t : int;
      complete_at : int;
    }

type result = {
  cycles : int;
  agu_finish : int;
  cu_finish : int;
  au_finish : int array;
      (** finish cycles of the extra access units of an N-way partition,
          in trace order; [[||]] for the classic 2-way split *)
  lsq : (string * lsq_stats) list;
  agu_retire : int array;
      (** per-event retire cycles, index-aligned with the trace entries —
          for pipeline timeline views (the paper's Figure 2) *)
  cu_retire : int array;
  au_retire : int array array;  (** extra access units, trace order *)
  stats : Stats.keyed;
      (** cycle attribution per unit, keyed ["AGU"], ["CU"], ["AU<k>"],
          ["DU:<arr>"];
          for every unit [Stats.total] equals [cycles] exactly — the
          engine classifies each unit once per visited cycle-span, and
          between visited cycles the blocking state is frozen (the same
          invariant that makes the calendar jump sound) *)
  depth_samples : (int * string * int) array;
      (** [(cycle, channel, depth)] occupancy samples, emitted on change
          in cycle order; empty unless [run ~record_depths:true]. Channels
          are ["<arr>.req_ld"], ["<arr>.req_st"], ["<arr>.stv"],
          ["<arr>.sq"], ["<arr>.lq"] and ["ldv<mem>.<unit>"]. *)
  mem_events : mem_event array;
      (** execution-order memory event log; empty unless
          [run ~record_mem:true] *)
}

exception Timing_error of string

exception Deadlock of string
(** The dynamic deadlock detector's verdict: no unit can make progress and
    no future calendar wake exists. Distinct from {!Timing_error} (engine
    misuse, cycle overrun) so deadlock-boundary probes can discriminate. *)

exception Unsupported of string
(** A config axis the key/validate layer accepts but the timing model does
    not implement yet — today, heterogeneous
    {!Config.t.unit_clock_ratios}. Typed so sweeps and probes can tell an
    unsupported point from a modelled deadlock. *)

(** Stall-path scheduler. {!Event_wheel} (the default) keeps one sorted
    wake-candidate bucket per unit and DU array and recomputes a bucket
    only when that component's state changed — O(1) amortized per clean
    component per stall. {!Seed_calendar} is the seed's
    rescan-everything-per-stall reference path; both produce bit-identical
    results (pinned by the equivalence suite and a CI diff). *)
type scheduler = Event_wheel | Seed_calendar

val scan_window : int
(** Per-unit out-of-order retirement scan depth; the static sizing
    analyzer's abstract causality replay mirrors it. *)

(** Bounded FIFO whose entries become visible [latency] cycles after the
    push. *)
module Fifo : sig
  type 'a t

  val create : capacity:int -> latency:int -> 'a t
  val has_space : 'a t -> bool

  (** @raise Timing_error when full. *)
  val push : 'a t -> now:int -> 'a -> unit

  (** The head, if it has arrived by [now]. *)
  val peek : 'a t -> now:int -> 'a option

  val pop : 'a t -> 'a
  val is_empty : 'a t -> bool
end

(** Replay a pair of unit traces to completion. [record_depths] (default
    false) additionally records channel-occupancy samples for the timeline
    exporter; [record_mem] (default false) records the committed-order
    memory event log; neither ever affects scheduling or cycle counts.
    [validate] (default true) runs {!Config.validate} first;
    deadlock-boundary probes pass [~validate:false] to simulate a rejected
    configuration. In [Config.Hierarchy] mode loads consult a fresh {!Mem}
    instance (cold caches per run); in [Scratchpad] mode the pre-hierarchy
    fixed-latency path runs unchanged.
    @raise Invalid_argument on an invalid configuration.
    @raise Deadlock on a modelled deadlock.
    @raise Timing_error on a cycle overrun. *)
val run :
  ?cfg:Config.t ->
  ?validate:bool ->
  ?max_cycles:int ->
  ?record_depths:bool ->
  ?record_mem:bool ->
  ?scheduler:scheduler ->
  subscribers:(int * Trace.unit_id list) list ->
  Trace.unit_trace ->
  Trace.unit_trace ->
  result

val run_units :
  ?cfg:Config.t ->
  ?validate:bool ->
  ?max_cycles:int ->
  ?record_depths:bool ->
  ?record_mem:bool ->
  ?scheduler:scheduler ->
  subscribers:(int * Trace.unit_id list) list ->
  Trace.unit_trace array ->
  result
(** Replay any number of unit traces (dense {!Trace.unit_index} order
    \[agu; cu; au1; ...\]); {!run} is the two-trace special case and
    produces identical results for the same pair. Needs at least two
    traces. *)

(** The ORACLE bound (paper §8.1.1): drop mis-speculated store requests
    from the AGU trace and kills from the CU trace — perfect speculation. *)
val oracle_filter :
  Trace.unit_trace -> Trace.unit_trace -> Trace.unit_trace * Trace.unit_trace
