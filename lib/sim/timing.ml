(* Cycle-level timing simulation of the DAE architecture template
   (paper Figure 1): pipelined AGU and CU loop engines, latency-carrying
   bounded FIFOs, a per-array load-store queue in the DU, and dual-ported
   SRAM.

   The engine replays the channel traces produced by the functional
   co-simulation (Exec). Unit model: events may retire out of order across
   channels but in order per channel, no earlier than
   [iteration × unit_ii + depth] (pipeline shape), and never past an
   unresolved [Gate] — a branch whose condition consumed a value. Gates are
   what serialize the non-speculative DAE AGU (Figure 2(b)); the
   speculation transformation removes them from the AGU and the engine
   then streams requests at II=1.

   DU model per array: requests pop in order (1/cycle) into the LSQ when a
   queue slot is free; store values resolve allocations in order; loads
   issue out of order once every older store is address-disambiguated —
   waiting only on same-address stores (forwarding when the value is
   ready); stores commit in order through the store port; poisoned stores
   are dropped without a port. A mis-speculated store thus occupies its
   store-queue slot from allocation to kill, which is exactly the paper's
   §8.2.1 cost mechanism.

   Engine: event-driven. The main loop visits only cycles at which work can
   retire. After a productive cycle the next wake-up is t+1 (units and DUs
   may have more same-state work: in-order retirement admits one event per
   channel per cycle, the store port one commit per cycle). When a cycle
   makes no progress, the engine jumps straight to the earliest next-wake
   candidate — earliest schedulable event, in-order successor, gate
   resolution, FIFO arrival, load completion, MSHR fill. The production
   scheduler is an incremental event wheel: each unit and DU array owns a
   sorted candidate bucket that is recomputed only when the engine marked
   it dirty (its state changed since the last fill), so a stall costs O(1)
   amortized per clean component instead of a full candidate rescan; the
   seed calendar path (rescan everything per stall) is kept selectable as
   the reference for the equivalence suite. Wake times are monotone (every
   candidate is > t), so cycle counts are exactly those of a naive
   cycle-by-cycle loop; the per-cycle work is O(live state), not
   O(total events). *)

type lsq_stats = {
  mutable alloc_stall_cycles : int; (* request pop blocked on full queue *)
  mutable raw_wait_cycles : int; (* load blocked on unresolved same-addr store *)
  mutable forwards : int;
  mutable kills : int;
  mutable commits : int;
  mutable loads : int;
}

(* Committed-order memory events, recorded only under [run ~record_mem] —
   the input to the Mem_model SC/ordering oracle. List order is execution
   order (the engine is sequential), which the oracle uses to order events
   within one cycle. *)
type mem_event =
  | Ev_st_alloc of { arr : string; seq : int; addr : int; t : int }
  | Ev_st_resolve of { arr : string; seq : int; poisoned : bool; t : int }
  | Ev_st_commit of { arr : string; seq : int; addr : int; t : int }
  | Ev_st_kill of { arr : string; seq : int; t : int }
  | Ev_ld_issue of {
      arr : string;
      seq : int;
      addr : int;
      older_sts : int;
      forwarded : bool;
      t : int;
      complete_at : int;
    }

type result = {
  cycles : int;
  agu_finish : int;
  cu_finish : int;
  au_finish : int array; (* extra access units, trace order; [||] for 2-way *)
  lsq : (string * lsq_stats) list;
  agu_retire : int array; (* per-event retire cycles, for timeline views *)
  cu_retire : int array;
  au_retire : int array array;
  stats : Stats.keyed;
      (* per-unit cycle attribution ("AGU", "CU", "DU:<arr>"); for every
         unit the counters sum exactly to [cycles] — each visited
         cycle-span is classified once, and between visited cycles the
         blocking state is frozen (the same invariant that makes the
         calendar jump sound), so span attribution is exact *)
  depth_samples : (int * string * int) array;
      (* (cycle, channel, depth) — emitted on change, in cycle order, only
         when [run ~record_depths:true]; channels are "<arr>.req_ld",
         "<arr>.req_st", "<arr>.stv", "<arr>.sq", "<arr>.lq" and
         "ldv<mem>.<unit>" *)
  mem_events : mem_event array;
      (* execution-order LSQ/memory event log; empty unless
         [run ~record_mem:true] *)
}

exception Timing_error of string

(* The dynamic deadlock detector's verdict, distinct from Timing_error so
   the sizing analyzer's boundary probes can tell "the model deadlocked"
   from engine misuse or a cycle overrun. *)
exception Deadlock of string

(* A config axis the key/validate layer accepts but the timing model does
   not implement yet (heterogeneous unit clocks) — typed so callers can
   distinguish "unsupported point" from model deadlock or misuse. *)
exception Unsupported of string

(* --- FIFO with arrival latency and bounded capacity ---------------------- *)

module Fifo = struct
  (* Ring buffer: [buf]/[avail] are parallel arrays of the physical
     capacity; [buf] stays [||] until the first push fixes the element
     type's representative. Pushes happen at nondecreasing [now], so
     arrival times are nondecreasing from head to tail. *)
  type 'a t = {
    capacity : int;
    phys : int; (* max capacity 1, the allocated ring size *)
    latency : int;
    mutable buf : 'a array;
    avail : int array; (* available-at cycle per slot *)
    mutable head : int; (* slot index of the oldest entry *)
    mutable size : int; (* pushed, not yet popped *)
  }

  let create ~capacity ~latency =
    let phys = max capacity 1 in
    {
      capacity;
      phys;
      latency;
      buf = [||];
      avail = Array.make phys 0;
      head = 0;
      size = 0;
    }

  let has_space t = t.size < t.capacity
  let is_empty t = t.size = 0

  let push t ~now payload =
    if not (has_space t) then raise (Timing_error "push into full FIFO");
    if Array.length t.buf = 0 then t.buf <- Array.make t.phys payload;
    let slot = (t.head + t.size) mod t.phys in
    t.buf.(slot) <- payload;
    t.avail.(slot) <- now + t.latency;
    t.size <- t.size + 1

  (* Non-allocating head accessors for the engine's hot path. *)
  let ready t ~now = t.size > 0 && t.avail.(t.head) <= now
  let head_avail t = t.avail.(t.head)

  let peek t ~now = if ready t ~now then Some t.buf.(t.head) else None

  let pop t =
    if t.size = 0 then raise (Timing_error "pop from empty FIFO");
    let v = t.buf.(t.head) in
    t.head <- (t.head + 1) mod t.phys;
    t.size <- t.size - 1;
    v
end

(* --- calendar --------------------------------------------------------------- *)

module Calendar = struct
  (* The stall path only ever advances to the *earliest* wake-up candidate,
     so the calendar is a running minimum, not a heap: components push their
     candidates and the engine jumps to [min]. Kept as the seed reference
     scheduler: it rescans every component on every stall, which the event
     wheel below replaces — the equivalence suite runs both. *)
  type t = { mutable min : int }

  let create () = { min = max_int }
  let clear c = c.min <- max_int
  let push c x = if x < c.min then c.min <- x
  let pop_min c = c.min
end

(* --- incremental event wheel ----------------------------------------------- *)

module Wheel = struct
  (* Incremental wake-candidate wheel: each component — replay unit or DU
     array — owns a bucket holding its future wake candidates, sorted
     ascending behind a consume cursor. The engine marks a bucket dirty
     whenever the component's state changes (it made progress, or a unit
     pushed into a DU's input FIFO); at a stall only dirty buckets
     recompute their candidates, clean ones advance their cursor past [t]
     in O(1) amortized. The candidate sets are exactly the ones the seed
     calendar would gather — the wheel only memoizes them between stalls —
     so jump targets, cycle counts and stall spans are bit-identical. *)
  type bucket = {
    mutable cands : int array; (* sorted ascending over [0, len) *)
    mutable len : int;
    mutable cur : int; (* first candidate not yet behind t *)
    mutable dirty : bool;
  }

  let create cap =
    { cands = Array.make (max cap 1) 0; len = 0; cur = 0; dirty = true }

  let reset b =
    b.len <- 0;
    b.cur <- 0

  let push b x =
    if b.len = Array.length b.cands then begin
      let grown = Array.make (2 * b.len) 0 in
      Array.blit b.cands 0 grown 0 b.len;
      b.cands <- grown
    end;
    b.cands.(b.len) <- x;
    b.len <- b.len + 1

  (* Candidate lists are short (bounded by the scan window) and arrive
     nearly sorted, so insertion sort beats a comparator closure. *)
  let seal b =
    let a = b.cands in
    for i = 1 to b.len - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done;
    b.dirty <- false

  (* Earliest cached candidate strictly after [t]; [max_int] when none. *)
  let head b ~t =
    while b.cur < b.len && b.cands.(b.cur) <= t do
      b.cur <- b.cur + 1
    done;
    if b.cur < b.len then b.cands.(b.cur) else max_int
end

(* Stall-path scheduler choice: the event wheel is the production path;
   the seed calendar is kept as the reference the qcheck equivalence
   suite and the CI determinism diff replay against. *)
type scheduler = Event_wheel | Seed_calendar

(* --- LSQ / DU per array --------------------------------------------------- *)

(* Store states, packed as ints in the ring: 0 = awaiting, 1 = ready,
   2 = poisoned. *)
let st_awaiting = 0

let st_ready = 1
let st_poisoned = 2

type load_slot = {
  mutable live : bool;
  mutable pos : int; (* allocation order, monotone per array *)
  mutable ld_seq : int;
  mutable ld_addr : int;
  mutable ld_older_sts : int; (* stores preceding this load in program order *)
  mutable issued : bool;
  mutable complete_at : int; (* valid when issued *)
  mutable delayed : bool; (* hierarchy: DRAM start was pushed by contention *)
  mutable subs : unit Fifo.t array; (* subscriber value FIFOs of its mem *)
}

type ld_request = {
  rq_addr : int;
  rq_seq : int;
  rq_older : int;
  rq_subs : unit Fifo.t array;
}

type st_request = { sq_addr : int; sq_seq : int }

(* Load and store requests travel on separate channels (the paper's LSQ has
   distinct load/store queues with 4/32 entries); program order is carried
   by per-array sequence tags assigned from the AGU trace order.

   The store queue is a ring indexed by absolute allocation number:
   [sq_head_abs, sq_tail_abs) are live, [sq_resolved] is the awaiting-head —
   the next allocation a store value resolves. Store values arrive in
   allocation order and stores pop only at the head, so both pointers are
   O(1) cursors and never scan. RAW disambiguation uses [by_addr]: per
   address, the live store allocation numbers in (ascending) program
   order — a load consults only same-address stores. *)
type du_array = {
  arr : string;
  arr_id : int; (* dense creation-order id — the hierarchy's array key *)
  req_ld : ld_request Fifo.t;
  req_st : st_request Fifo.t;
  stv : bool Fifo.t; (* payload: poisoned? *)
  sq_phys : int;
  sq_seq : int array;
  sq_addr : int array;
  sq_state : int array;
  mutable sq_head_abs : int;
  mutable sq_tail_abs : int; (* = total stores accepted so far *)
  mutable sq_resolved : int; (* awaiting-head: next store-value target *)
  by_addr : (int, int list ref) Hashtbl.t;
  lq : load_slot array;
  mutable lq_live : int;
  mutable lq_unissued : int;
  mutable lq_next_pos : int;
  stats : lsq_stats;
  cstats : Stats.t; (* cycle attribution for this DU array *)
  (* per-cycle condition flags, reset at the top of [step_du] and read by
     the classifier after it; when a whole span of cycles is skipped the
     machine made no progress, so the flags are frozen and span
     attribution stays exact *)
  mutable f_progress : bool;
  mutable f_alloc_block : bool; (* ready request turned away: queue full *)
  mutable f_subs_full : bool; (* issuable load held by full subscriber FIFO *)
  mutable f_extra_adm : bool; (* admissible work beyond the scalar ports *)
  mutable f_mshr_full : bool; (* issuable load turned away: no free MSHR *)
  w_bucket : Wheel.bucket;
      (* this array's wake-candidate bucket; dirtied by [step_du] progress
         and by unit-side pushes into its input FIFOs *)
}

let sq_live a = a.sq_tail_abs - a.sq_head_abs
let sq_slot a abs = abs mod a.sq_phys

(* Pop the (resolved) head store and prune it from its address chain; the
   head is the globally oldest live store, so it is the chain's front. *)
let sq_pop a =
  let s = sq_slot a a.sq_head_abs in
  let addr = a.sq_addr.(s) in
  (match Hashtbl.find_opt a.by_addr addr with
  | Some r -> (
    match !r with
    | x :: tl when x = a.sq_head_abs ->
      if tl = [] then Hashtbl.remove a.by_addr addr else r := tl
    | _ -> ())
  | None -> ());
  a.sq_head_abs <- a.sq_head_abs + 1

(* --- unit replay ---------------------------------------------------------- *)

(* Channel identity packed as an int: (dense id lsl 2) lor kind. Request
   and store-value channels are keyed by array id, load-value channels by
   mem id (per unit by construction). *)
let k_req_ld = 0

let k_req_st = 1
let k_stv = 2
let k_ldv = 3

(* Per-event action with its targets resolved up front: the hot loop never
   hashes an array name or allocates a request payload. *)
type action =
  | Agate of int (* dep *)
  | Asend_ld of du_array * ld_request
  | Asend_st of du_array * st_request
  | Aproduce of du_array
  | Akill of du_array
  | Aconsume of unit Fifo.t

type urep = {
  tr : Trace.unit_trace;
  retire : int array; (* retire cycle per event; -1 = not retired *)
  prev_chan : int array; (* index of previous event on same channel; -1 *)
  sched : int array; (* iteration × unit_ii + depth, precomputed per event *)
  acts : action array;
  mutable n_retired : int;
  mutable scan_from : int; (* first unretired index *)
}

let window = 24

(* --- engine --------------------------------------------------------------- *)

type env = {
  cfg : Config.t;
  vector_width : int;
  branch_latency : int;
  forward_latency : int;
  memory_load_latency : int;
  store_queue_size : int;
  load_queue_size : int;
  arrays : (string, du_array) Hashtbl.t;
  mutable du_list : du_array list; (* creation order; step/idle iteration *)
  ldv : (int * Trace.unit_id, unit Fifo.t) Hashtbl.t;
  mutable ldv_list : unit Fifo.t list;
  mutable ldv_named : (string * unit Fifo.t) list; (* creation order, rev *)
  sub_fifos : (int, unit Fifo.t array) Hashtbl.t;
  mem : Mem.t option; (* None = scratchpad: the pre-hierarchy load path *)
  record_mem : bool;
  mutable mem_log : mem_event list; (* reversed execution order *)
}

let logm env ev = if env.record_mem then env.mem_log <- ev :: env.mem_log

let du_array env arr =
  match Hashtbl.find_opt env.arrays arr with
  | Some a -> a
  | None ->
    let cfg = env.cfg in
    let sq_phys = max cfg.Config.store_queue_size 1 in
    let lq_phys = max cfg.Config.load_queue_size 1 in
    let a =
      {
        arr;
        arr_id = Hashtbl.length env.arrays;
        req_ld =
          Fifo.create ~capacity:cfg.Config.request_fifo_capacity
            ~latency:cfg.Config.fifo_latency;
        req_st =
          Fifo.create ~capacity:cfg.Config.request_fifo_capacity
            ~latency:cfg.Config.fifo_latency;
        stv =
          Fifo.create ~capacity:cfg.Config.store_value_fifo_capacity
            ~latency:cfg.Config.fifo_latency;
        sq_phys;
        sq_seq = Array.make sq_phys 0;
        sq_addr = Array.make sq_phys 0;
        sq_state = Array.make sq_phys st_awaiting;
        sq_head_abs = 0;
        sq_tail_abs = 0;
        sq_resolved = 0;
        by_addr = Hashtbl.create 16;
        lq =
          Array.init lq_phys (fun _ ->
              {
                live = false;
                pos = 0;
                ld_seq = 0;
                ld_addr = 0;
                ld_older_sts = 0;
                issued = false;
                complete_at = 0;
                delayed = false;
                subs = [||];
              });
        lq_live = 0;
        lq_unissued = 0;
        lq_next_pos = 0;
        stats =
          {
            alloc_stall_cycles = 0;
            raw_wait_cycles = 0;
            forwards = 0;
            kills = 0;
            commits = 0;
            loads = 0;
          };
        cstats = Stats.create ();
        f_progress = false;
        f_alloc_block = false;
        f_subs_full = false;
        f_extra_adm = false;
        f_mshr_full = false;
        w_bucket = Wheel.create (3 + lq_phys);
      }
    in
    Hashtbl.replace env.arrays arr a;
    env.du_list <- env.du_list @ [ a ];
    a

let ldv_fifo env key =
  match Hashtbl.find_opt env.ldv key with
  | Some f -> f
  | None ->
    let f =
      Fifo.create ~capacity:env.cfg.Config.value_fifo_capacity
        ~latency:env.cfg.Config.fifo_latency
    in
    Hashtbl.replace env.ldv key f;
    env.ldv_list <- f :: env.ldv_list;
    let mem, u = key in
    env.ldv_named <-
      (Printf.sprintf "ldv%d.%s" mem (Trace.unit_name u), f) :: env.ldv_named;
    f

let make_urep env (tr : Trace.unit_trace) ~unit_ii =
  let n = Trace.length tr in
  let prev_chan = Array.make n (-1) in
  let sched = Array.make n 0 in
  let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let n_arr = Array.length tr.Trace.arrays in
  let seq_counter = Array.make (max n_arr 1) 0 in
  let st_counter = Array.make (max n_arr 1) 0 in
  let subs_of mem =
    match Hashtbl.find_opt env.sub_fifos mem with Some a -> a | None -> [||]
  in
  let acts = Array.make n (Agate (-1)) in
  (* ascending: seq/st counters, DU creation order and prev_chan wiring all
     depend on trace order *)
  for k = 0 to n - 1 do
    sched.(k) <- (Trace.iter tr k * unit_ii) + Trace.depth tr k;
    let tag = Trace.tag tr k in
    let chan = ref (-1) in
    let act =
      if tag = Trace.t_send_ld then begin
        let a = Trace.arr_id tr k in
        let seq = seq_counter.(a) in
        seq_counter.(a) <- seq + 1;
        chan := (a lsl 2) lor k_req_ld;
        Asend_ld
          ( du_array env tr.Trace.arrays.(a),
            { rq_addr = Trace.payload tr k; rq_seq = seq;
              rq_older = st_counter.(a); rq_subs = subs_of (Trace.mem tr k) }
          )
      end
      else if tag = Trace.t_send_st then begin
        let a = Trace.arr_id tr k in
        let seq = seq_counter.(a) in
        seq_counter.(a) <- seq + 1;
        st_counter.(a) <- st_counter.(a) + 1;
        chan := (a lsl 2) lor k_req_st;
        Asend_st
          ( du_array env tr.Trace.arrays.(a),
            { sq_addr = Trace.payload tr k; sq_seq = seq } )
      end
      else if tag = Trace.t_produce then begin
        let a = Trace.arr_id tr k in
        chan := (a lsl 2) lor k_stv;
        Aproduce (du_array env tr.Trace.arrays.(a))
      end
      else if tag = Trace.t_kill then begin
        let a = Trace.arr_id tr k in
        chan := (a lsl 2) lor k_stv;
        Akill (du_array env tr.Trace.arrays.(a))
      end
      else if tag = Trace.t_consume then begin
        let mem = Trace.mem tr k in
        chan := (mem lsl 2) lor k_ldv;
        Aconsume (ldv_fifo env (mem, tr.Trace.unit))
      end
      else Agate (Trace.payload tr k)
    in
    acts.(k) <- act;
    if !chan >= 0 then begin
      (match Hashtbl.find_opt last !chan with
      | Some j -> prev_chan.(k) <- j
      | None -> ());
      Hashtbl.replace last !chan k
    end
  done;
  {
    tr;
    retire = Array.make n (-1);
    prev_chan;
    sched;
    acts;
    n_retired = 0;
    scan_from = 0;
  }

(* Attempt to retire events of [u] at cycle [t]. Returns true on progress. *)
let step_unit env (u : urep) ~t : bool =
  let n = Array.length u.retire in
  let progress = ref false in
  (* earliest unresolved gate index before which everything must retire *)
  let idx = ref u.scan_from in
  let stop = min n (u.scan_from + window) in
  let blocked_by_gate = ref false in
  (* indices are bounded by [stop <= n] and prev_chan/dep entries are -1 or
     earlier in-range indices, so the scan reads unchecked *)
  let retire = u.retire in
  while !idx < stop && not !blocked_by_gate do
    let k = !idx in
    if Array.unsafe_get retire k < 0 then begin
      (* in-order per channel: the previous event on this channel must have
         retired, and at most [vector_width] ops share a cycle on one
         channel (§10's vectorized requests; width 1 = the paper's scalar
         port) *)
      let chan_ok () =
        let w = env.vector_width in
        let p = Array.unsafe_get u.prev_chan k in
        p < 0
        || (let rp = Array.unsafe_get retire p in
            rp >= 0
            &&
            if rp < t then true
            else if w = 1 then false
            else begin
              (* count how many chain predecessors already retired at t *)
              let rec same_cycle p n =
                if p < 0 || Array.unsafe_get retire p < t then n
                else same_cycle (Array.unsafe_get u.prev_chan p) (n + 1)
              in
              same_cycle p 0 < w
            end)
      in
      let retire_now () =
        Array.unsafe_set retire k t;
        u.n_retired <- u.n_retired + 1;
        progress := true
      in
      if Array.unsafe_get u.sched k <= t && chan_ok () then begin
        match Array.unsafe_get u.acts k with
        | Agate dep ->
          let resolved =
            if dep < 0 then true
            else
              let rd = Array.unsafe_get retire dep in
              rd >= 0 && rd + env.branch_latency <= t
          in
          if resolved then retire_now () else blocked_by_gate := true
        | Asend_ld (a, rq) ->
          if Fifo.has_space a.req_ld then begin
            Fifo.push a.req_ld ~now:t rq;
            a.w_bucket.Wheel.dirty <- true;
            retire_now ()
          end
        | Asend_st (a, rq) ->
          if Fifo.has_space a.req_st then begin
            Fifo.push a.req_st ~now:t rq;
            a.w_bucket.Wheel.dirty <- true;
            retire_now ()
          end
        | Aproduce a ->
          if Fifo.has_space a.stv then begin
            Fifo.push a.stv ~now:t false;
            a.w_bucket.Wheel.dirty <- true;
            retire_now ()
          end
        | Akill a ->
          if Fifo.has_space a.stv then begin
            Fifo.push a.stv ~now:t true;
            a.w_bucket.Wheel.dirty <- true;
            retire_now ()
          end
        | Aconsume f ->
          if Fifo.ready f ~now:t then begin
            ignore (Fifo.pop f);
            retire_now ()
          end
      end;
      (* a gate that has not retired blocks everything after it *)
      (match Array.unsafe_get u.acts k with
      | Agate _ when Array.unsafe_get retire k < 0 -> blocked_by_gate := true
      | _ -> ())
    end;
    incr idx
  done;
  while u.scan_from < n && Array.unsafe_get retire u.scan_from >= 0 do
    u.scan_from <- u.scan_from + 1
  done;
  !progress

(* RAW check for one load: every older store must have been *allocated*
   (address known) before the load can be disambiguated at all; then only
   same-address stores hold it. 0 = blocked, 1 = memory, 2 = forward. *)
let can_issue (a : du_array) (l : load_slot) =
  if l.issued then 0
  else if a.sq_tail_abs < l.ld_older_sts then 0
  else
    match Hashtbl.find_opt a.by_addr l.ld_addr with
    | None -> 1
    | Some r ->
      (* chain is in ascending program order: stop at the first younger *)
      let rec scan = function
        | [] -> 1
        | abs :: tl ->
          let s = sq_slot a abs in
          if a.sq_seq.(s) >= l.ld_seq then 1
          else if a.sq_state.(s) = st_awaiting then 0
          else if a.sq_state.(s) = st_ready then
            if scan_rest tl l.ld_seq then 2 else 0
          else scan tl
      and scan_rest lst seq =
        (* saw a ready conflict: the rest must not contain an awaiting one *)
        match lst with
        | [] -> true
        | abs :: tl ->
          let s = sq_slot a abs in
          if a.sq_seq.(s) >= seq then true
          else if a.sq_state.(s) = st_awaiting then false
          else scan_rest tl seq
      in
      scan !r

(* One DU cycle for one array. *)
let step_du env (a : du_array) ~t : bool =
  let w = env.vector_width in
  let progress = ref false in
  a.f_alloc_block <- false;
  a.f_subs_full <- false;
  a.f_extra_adm <- false;
  a.f_mshr_full <- false;
  (* 1. apply store values (up to the vector width) to the oldest awaiting
     allocations — the awaiting-head cursor, no scan *)
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < w do
    if Fifo.ready a.stv ~now:t && a.sq_resolved < a.sq_tail_abs then begin
      let poisoned = Fifo.pop a.stv in
      let s = sq_slot a a.sq_resolved in
      a.sq_state.(s) <- (if poisoned then st_poisoned else st_ready);
      logm env (Ev_st_resolve { arr = a.arr; seq = a.sq_seq.(s); poisoned; t });
      a.sq_resolved <- a.sq_resolved + 1;
      progress := true;
      incr k
    end
    else continue_ := false
  done;
  (* 2. drop poisoned heads (up to the vector width — a store mask kills a
     whole vector, §10) and commit at most one ready head through the
     scalar store port *)
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < w do
    if sq_live a > 0 && a.sq_state.(sq_slot a a.sq_head_abs) = st_poisoned
    then begin
      logm env
        (Ev_st_kill
           { arr = a.arr; seq = a.sq_seq.(sq_slot a a.sq_head_abs); t });
      sq_pop a;
      a.stats.kills <- a.stats.kills + 1;
      progress := true;
      incr k
    end
    else continue_ := false
  done;
  if sq_live a > 0 && a.sq_state.(sq_slot a a.sq_head_abs) = st_ready then begin
    (* store port: one commit per cycle *)
    let s = sq_slot a a.sq_head_abs in
    let st_addr = a.sq_addr.(s) in
    logm env (Ev_st_commit { arr = a.arr; seq = a.sq_seq.(s); addr = st_addr; t });
    (* write-through to the hierarchy: posted, but it occupies the DRAM
       bank and bus, delaying load misses *)
    (match env.mem with
    | Some mem -> Mem.store mem ~now:t ~arr:a.arr_id ~addr:st_addr
    | None -> ());
    sq_pop a;
    a.stats.commits <- a.stats.commits + 1;
    progress := true;
    (* a second ready head wanted the write port this cycle *)
    if sq_live a > 0 && a.sq_state.(sq_slot a a.sq_head_abs) = st_ready then
      a.f_extra_adm <- true
  end;
  (* 3. issue one ready load (out of order within the LQ): the oldest
     unissued load the RAW check admits *)
  if a.lq_unissued > 0 then begin
    let best = ref None in
    let admissible = ref 0 in
    Array.iter
      (fun l ->
        if l.live && not l.issued then begin
          let c = can_issue a l in
          if c <> 0 then begin
            incr admissible;
            match !best with
            | Some (bl, _) when bl.pos < l.pos -> ()
            | _ -> best := Some (l, c)
          end
        end)
      a.lq;
    match !best with
    | Some (l, code) ->
      (* all subscriber FIFOs must have space (reserved at issue) *)
      if Array.for_all Fifo.has_space l.subs then begin
        (* forwarded loads bypass the hierarchy (LSQ-internal); memory
           loads either take the fixed scratchpad latency or consult the
           cache/DRAM model, which may turn them away (MSHR exhaustion) *)
        let outcome =
          if code = 2 then begin
            a.stats.forwards <- a.stats.forwards + 1;
            Mem.Load_done { complete_at = t + env.forward_latency;
                            delayed = false }
          end
          else
            match env.mem with
            | None ->
              Mem.Load_done { complete_at = t + env.memory_load_latency;
                              delayed = false }
            | Some mem -> Mem.load mem ~now:t ~arr:a.arr_id ~addr:l.ld_addr
        in
        match outcome with
        | Mem.Load_mshr_full -> a.f_mshr_full <- true
        | Mem.Load_done { complete_at; delayed } ->
          l.issued <- true;
          l.complete_at <- complete_at;
          l.delayed <- delayed;
          a.lq_unissued <- a.lq_unissued - 1;
          a.stats.loads <- a.stats.loads + 1;
          logm env
            (Ev_ld_issue
               { arr = a.arr; seq = l.ld_seq; addr = l.ld_addr;
                 older_sts = l.ld_older_sts; forwarded = code = 2; t;
                 complete_at });
          Array.iter (fun f -> Fifo.push f ~now:complete_at ()) l.subs;
          progress := true;
          if !admissible >= 2 then a.f_extra_adm <- true
      end
      else a.f_subs_full <- true
    | None -> a.stats.raw_wait_cycles <- a.stats.raw_wait_cycles + 1
  end;
  (* 4. retire completed loads from the LQ *)
  if a.lq_live > a.lq_unissued then
    Array.iter
      (fun l ->
        if l.live && l.issued && l.complete_at <= t then begin
          l.live <- false;
          a.lq_live <- a.lq_live - 1;
          progress := true
        end)
      a.lq;
  (* 5. accept up to [vector_width] store and load requests into the LSQ *)
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < w do
    if Fifo.ready a.req_st ~now:t then
      if sq_live a < env.store_queue_size then begin
        let rq = Fifo.pop a.req_st in
        let s = sq_slot a a.sq_tail_abs in
        a.sq_seq.(s) <- rq.sq_seq;
        a.sq_addr.(s) <- rq.sq_addr;
        a.sq_state.(s) <- st_awaiting;
        logm env
          (Ev_st_alloc { arr = a.arr; seq = rq.sq_seq; addr = rq.sq_addr; t });
        (match Hashtbl.find_opt a.by_addr rq.sq_addr with
        | Some r -> r := !r @ [ a.sq_tail_abs ]
        | None -> Hashtbl.replace a.by_addr rq.sq_addr (ref [ a.sq_tail_abs ]));
        a.sq_tail_abs <- a.sq_tail_abs + 1;
        progress := true;
        incr k
      end
      else begin
        a.stats.alloc_stall_cycles <- a.stats.alloc_stall_cycles + 1;
        a.f_alloc_block <- true;
        continue_ := false
      end
    else continue_ := false
  done;
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ && !k < w do
    if Fifo.ready a.req_ld ~now:t then
      if a.lq_live < env.load_queue_size then begin
        let rq = Fifo.pop a.req_ld in
        let slot = ref None in
        Array.iter
          (fun l -> if (not l.live) && !slot = None then slot := Some l)
          a.lq;
        let l = match !slot with Some l -> l | None -> assert false in
        l.live <- true;
        l.pos <- a.lq_next_pos;
        a.lq_next_pos <- a.lq_next_pos + 1;
        l.ld_seq <- rq.rq_seq;
        l.ld_addr <- rq.rq_addr;
        l.ld_older_sts <- rq.rq_older;
        l.issued <- false;
        l.complete_at <- 0;
        l.subs <- rq.rq_subs;
        a.lq_live <- a.lq_live + 1;
        a.lq_unissued <- a.lq_unissued + 1;
        progress := true;
        incr k
      end
      else begin
        a.stats.alloc_stall_cycles <- a.stats.alloc_stall_cycles + 1;
        a.f_alloc_block <- true;
        continue_ := false
      end
    else continue_ := false
  done;
  !progress

let du_idle (a : du_array) =
  Fifo.is_empty a.req_ld && Fifo.is_empty a.req_st && Fifo.is_empty a.stv
  && sq_live a = 0 && a.lq_live = 0

(* --- cycle attribution ------------------------------------------------------ *)

(* Classify what one unit spent cycle [t] (and, when the engine then jumps,
   every cycle of the frozen span) on. Runs after [step_unit]: when the
   unit made no progress and is not done, the head event [scan_from] is the
   blocker — its in-order channel predecessor retired on an earlier cycle
   (nothing retired at [t]), so the block is its issue slot, its gate, or
   its channel resource. *)
let classify_unit (u : urep) ~progress ~t : Stats.cause =
  if progress then Stats.Busy
  else if u.n_retired = Array.length u.retire then Stats.Drain
  else begin
    let k = u.scan_from in
    if u.sched.(k) > t then Stats.Sched_wait
    else
      match u.acts.(k) with
      | Agate _ -> Stats.Gate_wait
      | Asend_ld _ | Asend_st _ | Aproduce _ | Akill _ -> Stats.Fifo_full
      | Aconsume _ -> Stats.Fifo_empty
  end

(* Classify one DU array's cycle from the flags [step_du] left behind.
   Priority: a request turned away by a full queue is the §8.2.1 cost
   mechanism and outranks everything; then useful work (downgraded to
   port contention when admissible work exceeded the scalar ports); then
   the stall causes. In a no-progress cycle a non-empty store queue means
   its head is still awaiting the CU's value/poison verdict (a ready or
   poisoned head would have progressed). *)
let classify_du (a : du_array) ~progress : Stats.cause =
  if a.f_alloc_block then Stats.Lsq_alloc
  else if progress then
    if a.f_extra_adm then Stats.Port_contention else Stats.Busy
  else if du_idle a then Stats.Drain
  else if sq_live a > 0 then Stats.Poison_wait
  else if a.lq_unissued > 0 then
    if a.f_subs_full then Stats.Fifo_full
    else if a.f_mshr_full then Stats.Mshr_full
    else Stats.Raw_wait
  else if a.lq_live > 0 then
    (* hierarchy only: if an in-flight miss's DRAM access was pushed past
       its allocation cycle by bank/bus contention, the wait is
       contention, not pure latency *)
    if Array.exists (fun l -> l.live && l.issued && l.delayed) a.lq then
      Stats.Dram_bank
    else Stats.Mem_wait
  else Stats.Fifo_empty (* only in-flight tokens on the input channels *)

(* --- next-wake candidates --------------------------------------------------- *)

(* Contribute every cycle at which [u] might retire something: scheduled
   issue slots, in-order successors of retired events, gate resolutions.
   The scan stops at the first unresolved gate, as [step_unit]'s does:
   nothing past it can retire before the gate does, and the gate's own
   resolution candidate is pushed before stopping. *)
let unit_wakes env (u : urep) ~t ~(push : int -> unit) =
  let cand x = if x > t then push x in
  let n = Array.length u.retire in
  let stop = min n (u.scan_from + window) in
  let k = ref u.scan_from in
  let blocked = ref false in
  while !k < stop && not !blocked do
    if u.retire.(!k) < 0 then begin
      cand u.sched.(!k);
      let p = u.prev_chan.(!k) in
      if p >= 0 && u.retire.(p) >= 0 then cand (u.retire.(p) + 1);
      match u.acts.(!k) with
      | Agate dep ->
        if dep >= 0 && u.retire.(dep) >= 0 then
          cand (u.retire.(dep) + env.branch_latency);
        blocked := true
      | _ -> ()
    end;
    incr k
  done

(* FIFO arrivals and load completions of one DU array. *)
let du_wakes (a : du_array) ~t ~(push : int -> unit) =
  let cand x = if x > t then push x in
  if a.req_ld.Fifo.size > 0 then cand (Fifo.head_avail a.req_ld);
  if a.req_st.Fifo.size > 0 then cand (Fifo.head_avail a.req_st);
  if a.stv.Fifo.size > 0 then cand (Fifo.head_avail a.stv);
  Array.iter
    (fun l -> if l.live && l.issued then cand l.complete_at)
    a.lq

(* --- top level ------------------------------------------------------------ *)

let run_units ?(cfg = Config.default) ?(validate = true)
    ?(max_cycles = 50_000_000) ?(record_depths = false)
    ?(record_mem = false) ?(scheduler = Event_wheel)
    ~(subscribers : (int * Trace.unit_id list) list)
    (trs : Trace.unit_trace array) : result =
  if Array.length trs < 2 then
    raise (Timing_error "run_units: need at least AGU and CU traces");
  if validate then Config.validate cfg;
  (* Heterogeneous unit clocks are a plumbed-but-unimplemented config
     axis: the key/validate layer accepts them so sweeps can enumerate
     the axis, but the timing model itself only supports a single clock
     domain — reject anything else with a typed error rather than
     silently mistiming. *)
  if not (Array.for_all (fun r -> r = 1) cfg.Config.unit_clock_ratios) then
    raise
      (Unsupported
         (Fmt.str
            "heterogeneous unit clocks not yet modeled (unit_clock_ratios %s)"
            (String.concat "x"
               (Array.to_list
                  (Array.map string_of_int cfg.Config.unit_clock_ratios)))));
  let env =
    {
      cfg;
      vector_width = cfg.Config.vector_width;
      branch_latency = cfg.Config.branch_latency;
      forward_latency = cfg.Config.forward_latency;
      memory_load_latency = cfg.Config.memory_load_latency;
      store_queue_size = cfg.Config.store_queue_size;
      load_queue_size = cfg.Config.load_queue_size;
      arrays = Hashtbl.create 8;
      du_list = [];
      ldv = Hashtbl.create 16;
      ldv_list = [];
      ldv_named = [];
      sub_fifos = Hashtbl.create 16;
      mem =
        (match cfg.Config.hierarchy with
        | Config.Scratchpad -> None
        | Config.Hierarchy g -> Some (Mem.create g));
      record_mem;
      mem_log = [];
    }
  in
  (* last binding wins for duplicate mems, as with Hashtbl.replace *)
  List.iter
    (fun (m, subs) ->
      Hashtbl.replace env.sub_fifos m
        (Array.of_list (List.map (fun u -> ldv_fifo env (m, u)) subs)))
    subscribers;
  (* units in dense Trace.unit_index order: [agu; cu; au1; ...]. Build in
     order — DU arrays and load-value FIFOs are interned at first
     appearance, and their creation order is observable (stats, samples). *)
  let n_units = Array.length trs in
  let units =
    (* explicit left-to-right loop: Array.init's application order is
       unspecified and interning order must follow trace order *)
    let u0 = make_urep env trs.(0) ~unit_ii:cfg.Config.unit_ii in
    let a = Array.make n_units u0 in
    for i = 1 to n_units - 1 do
      a.(i) <- make_urep env trs.(i) ~unit_ii:cfg.Config.unit_ii
    done;
    a
  in
  let n_ev = Array.map (fun tr -> Trace.length tr) trs in
  let t = ref 0 in
  let finish = Array.make n_units 0 in
  let idle_rounds = ref 0 in
  let calendar = Calendar.create () in
  (* one wake bucket per replay unit (DU buckets live on the arrays) *)
  let ubuckets = Array.init n_units (fun _ -> Wheel.create (3 * window)) in
  let ustats = Array.init n_units (fun _ -> Stats.create ()) in
  let retired_summary () =
    String.concat ", "
      (Array.to_list
         (Array.mapi
            (fun i u ->
              Fmt.str "%s %d/%d"
                (Trace.unit_name u.tr.Trace.unit)
                u.n_retired n_ev.(i))
            units))
  in
  (* depth sampling (only when requested): channel occupancies are
     piecewise constant between visited cycles — size changes only on a
     push or pop, which is machine progress — so sampling at visited
     cycles, emitting on change, is exact *)
  let samples = ref [] in
  let sample_last : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let sample ~t chan depth =
    match Hashtbl.find_opt sample_last chan with
    | Some d when d = depth -> ()
    | _ ->
      Hashtbl.replace sample_last chan depth;
      samples := (t, chan, depth) :: !samples
  in
  let sample_depths ~t =
    List.iter
      (fun a ->
        sample ~t (a.arr ^ ".req_ld") a.req_ld.Fifo.size;
        sample ~t (a.arr ^ ".req_st") a.req_st.Fifo.size;
        sample ~t (a.arr ^ ".stv") a.stv.Fifo.size;
        sample ~t (a.arr ^ ".sq") (sq_live a);
        sample ~t (a.arr ^ ".lq") a.lq_live)
      env.du_list;
    List.iter
      (fun (name, (f : unit Fifo.t)) -> sample ~t name f.Fifo.size)
      (List.rev env.ldv_named)
  in
  (* [make_urep] has resolved every event's targets, so the DU array and
     load-value FIFO sets are final: freeze them for the hot loop. *)
  let dus = Array.of_list env.du_list in
  let n_dus = Array.length dus in
  let ldvs = Array.of_list env.ldv_list in
  let n_ldvs = Array.length ldvs in
  let done_ () =
    (let ok = ref true in
     for i = 0 to n_units - 1 do
       if units.(i).n_retired <> n_ev.(i) then ok := false
     done;
     !ok)
    &&
    let ok = ref true in
    for i = 0 to n_dus - 1 do
      if not (du_idle (Array.unsafe_get dus i)) then ok := false
    done;
    for i = 0 to n_ldvs - 1 do
      if not (Fifo.is_empty (Array.unsafe_get ldvs i)) then ok := false
    done;
    !ok
  in
  while not (done_ ()) do
    if !t > max_cycles then
      raise
        (Timing_error
           (Fmt.str "exceeded %d cycles (%s retired)" max_cycles
              (retired_summary ())));
    let pu = Array.make n_units false in
    for i = 0 to n_units - 1 do
      pu.(i) <- step_unit env units.(i) ~t:!t;
      if pu.(i) then (Array.unsafe_get ubuckets i).Wheel.dirty <- true
    done;
    let p3 = ref false in
    for i = 0 to n_dus - 1 do
      let a = Array.unsafe_get dus i in
      (* a fully drained array is a no-op step: skip it, clearing the
         flags [step_du] would have cleared *)
      let p =
        if du_idle a then begin
          a.f_alloc_block <- false;
          a.f_subs_full <- false;
          a.f_extra_adm <- false;
          a.f_mshr_full <- false;
          false
        end
        else step_du env a ~t:!t
      in
      a.f_progress <- p;
      if p then begin
        p3 := true;
        a.w_bucket.Wheel.dirty <- true
      end
    done;
    let p3 = !p3 in
    for i = 0 to n_units - 1 do
      if units.(i).n_retired = n_ev.(i) && finish.(i) = 0 then
        finish.(i) <- !t
    done;
    let next_t =
      if Array.exists (fun p -> p) pu || p3 then begin
        (* more same-state work may be admissible next cycle (per-channel
           in-order retirement, the scalar store port): wake at t+1 *)
        idle_rounds := 0;
        !t + 1
      end
      else begin
        (* Nothing moved this cycle: find the earliest time-driven
           constraint (FIFO arrival, load completion, scheduled issue,
           gate resolution) and jump to it. If no future time can unblock
           anything, the architecture model has deadlocked. *)
        let wake =
          match scheduler with
          | Seed_calendar ->
            (* reference path: rebuild the full candidate set per stall *)
            Calendar.clear calendar;
            let push x = Calendar.push calendar x in
            Array.iter (fun u -> unit_wakes env u ~t:!t ~push) units;
            for i = 0 to n_dus - 1 do
              du_wakes (Array.unsafe_get dus i) ~t:!t ~push
            done;
            for i = 0 to n_ldvs - 1 do
              let f = Array.unsafe_get ldvs i in
              if f.Fifo.size > 0 then begin
                let avail = Fifo.head_avail f in
                if avail > !t then push avail
              end
            done;
            (match env.mem with
            | Some mem -> (
              match Mem.next_wake mem ~now:!t with
              | Some w -> push w
              | None -> ())
            | None -> ());
            Calendar.pop_min calendar
          | Event_wheel ->
            (* incremental path: only components whose state changed since
               their last fill recompute; clean buckets advance a cursor *)
            let best = ref max_int in
            for i = 0 to n_units - 1 do
              let b = Array.unsafe_get ubuckets i in
              if b.Wheel.dirty then begin
                Wheel.reset b;
                unit_wakes env units.(i) ~t:!t ~push:(fun x ->
                    Wheel.push b x);
                Wheel.seal b
              end;
              let h = Wheel.head b ~t:!t in
              if h < !best then best := h
            done;
            for i = 0 to n_dus - 1 do
              let a = Array.unsafe_get dus i in
              let b = a.w_bucket in
              if b.Wheel.dirty then begin
                Wheel.reset b;
                du_wakes a ~t:!t ~push:(fun x -> Wheel.push b x);
                Wheel.seal b
              end;
              let h = Wheel.head b ~t:!t in
              if h < !best then best := h
            done;
            (* load-value FIFOs and the hierarchy are O(1) per stall
               already (head cursor; cached fill minimum): re-reading
               them beats tracking their cross-component dirtiness *)
            for i = 0 to n_ldvs - 1 do
              let f = Array.unsafe_get ldvs i in
              if f.Fifo.size > 0 then begin
                let avail = Fifo.head_avail f in
                if avail > !t && avail < !best then best := avail
              end
            done;
            (match env.mem with
            | Some mem -> (
              (* an MSHR freeing (its fill completing) can admit a
                 previously turned-away load. The fill time is also the
                 allocating load's complete_at, so this is usually
                 redundant with du_wakes — kept for the frozen-span
                 invariant's sake. *)
              match Mem.next_wake mem ~now:!t with
              | Some w when w < !best -> best := w
              | _ -> ())
            | None -> ());
            !best
        in
        if wake = max_int then begin
          incr idle_rounds;
          if !idle_rounds > 4 then
            raise
              (Deadlock
                 (Fmt.str "timing deadlock at cycle %d (%s retired)" !t
                    (retired_summary ())));
          !t + 1
        end
        else begin
          idle_rounds := 0;
          wake
        end
      end
    in
    (* attribute the whole [t, next_t) span: when the span is longer than
       one cycle no unit progressed, so every classification below is a
       stall state frozen until the earliest calendar wake *)
    let span = next_t - !t in
    for i = 0 to n_units - 1 do
      Stats.add ustats.(i)
        (classify_unit units.(i) ~progress:pu.(i) ~t:!t)
        span
    done;
    Array.iter
      (fun a -> Stats.add a.cstats (classify_du a ~progress:a.f_progress) span)
      dus;
    if record_depths then sample_depths ~t:!t;
    t := next_t
  done;
  {
    cycles = !t;
    agu_finish = finish.(0);
    cu_finish = finish.(1);
    au_finish = Array.sub finish 2 (n_units - 2);
    lsq =
      Hashtbl.fold (fun arr a acc -> (arr, a.stats) :: acc) env.arrays []
      |> List.sort compare;
    agu_retire = units.(0).retire;
    cu_retire = units.(1).retire;
    au_retire = Array.map (fun u -> u.retire) (Array.sub units 2 (n_units - 2));
    stats =
      (Array.to_list
         (Array.mapi
            (fun i u -> (Trace.unit_name u.tr.Trace.unit, ustats.(i)))
            units)
      @ List.map (fun a -> ("DU:" ^ a.arr, a.cstats)) env.du_list)
      |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2);
    depth_samples = Array.of_list (List.rev !samples);
    mem_events = Array.of_list (List.rev env.mem_log);
  }

let run ?cfg ?validate ?max_cycles ?record_depths ?record_mem ?scheduler
    ~subscribers (agu_tr : Trace.unit_trace) (cu_tr : Trace.unit_trace) :
    result =
  run_units ?cfg ?validate ?max_cycles ?record_depths ?record_mem ?scheduler
    ~subscribers [| agu_tr; cu_tr |]

(* The out-of-order scan depth, exposed so the static sizing analyzer's
   abstract causality replay matches the engine's retirement window. *)
let scan_window = window

(* --- ORACLE trace filtering ----------------------------------------------- *)

(* The ORACLE bound (paper §8.1.1) runs the same architecture with perfect
   speculation: mis-speculated store requests never enter the AGU stream
   and the CU never issues kills. Which store requests die is decided by
   matching, per array, the k-th store request against the k-th store value
   tag — exactly the pairing Lemma 6.1 guarantees. *)
let oracle_filter (agu_tr : Trace.unit_trace) (cu_tr : Trace.unit_trace) :
    Trace.unit_trace * Trace.unit_trace =
  (* per array, the kill flags in CU store-value order; both traces share
     one dense array-id table *)
  let n_arr =
    max (Array.length agu_tr.Trace.arrays) (Array.length cu_tr.Trace.arrays)
  in
  let counts = Array.make (max n_arr 1) 0 in
  let n_cu = Trace.length cu_tr in
  for k = 0 to n_cu - 1 do
    let tag = Trace.tag cu_tr k in
    if tag = Trace.t_produce || tag = Trace.t_kill then begin
      let a = Trace.arr_id cu_tr k in
      counts.(a) <- counts.(a) + 1
    end
  done;
  let kill_flags = Array.map (fun c -> Array.make (max c 1) false) counts in
  let fill = Array.make (max n_arr 1) 0 in
  for k = 0 to n_cu - 1 do
    let tag = Trace.tag cu_tr k in
    if tag = Trace.t_produce || tag = Trace.t_kill then begin
      let a = Trace.arr_id cu_tr k in
      kill_flags.(a).(fill.(a)) <- tag = Trace.t_kill;
      fill.(a) <- fill.(a) + 1
    end
  done;
  (* rebuild each trace, dropping killed store sends and kill events, and
     remapping gate dependency indices *)
  let filter_trace (tr : Trace.unit_trace) =
    let n = Trace.length tr in
    let cursor = Array.make (max n_arr 1) 0 in
    let killed a =
      let i = cursor.(a) in
      cursor.(a) <- i + 1;
      i < counts.(a) && kill_flags.(a).(i)
    in
    let keep = Array.make (max n 1) true in
    for i = 0 to n - 1 do
      let tag = Trace.tag tr i in
      if tag = Trace.t_send_st || tag = Trace.t_kill then begin
        if killed (Trace.arr_id tr i) then keep.(i) <- false
      end
      else if tag = Trace.t_produce then
        (* advances the same per-array cursor as kills: the k-th store
           value tag pairs with the k-th store request *)
        ignore (killed (Trace.arr_id tr i))
    done;
    (* new index of the latest kept entry at or before each old index *)
    let before = Array.make (max n 1) (-1) in
    let kept_count = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        before.(i) <- !kept_count;
        incr kept_count
      end
      else before.(i) <- (if i = 0 then -1 else before.(i - 1))
    done;
    let stride = Trace.stride in
    let out = Array.make (!kept_count * stride) 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        Array.blit tr.Trace.data (i * stride) out (!j * stride) stride;
        if Trace.tag tr i = Trace.t_gate then begin
          let dep = Trace.payload tr i in
          out.((!j * stride) + 3) <- (if dep < 0 then -1 else before.(dep))
        end;
        incr j
      end
    done;
    { tr with Trace.data = out; n = !kept_count }
  in
  (filter_trace agu_tr, filter_trace cu_tr)
