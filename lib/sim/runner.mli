(** Work-stealing job pool over OCaml 5 domains.

    Simulation jobs (kernel × architecture × config) are independent:
    every job builds its own IR, memory image and traces, and the
    library keeps no module-level mutable state — so fanning jobs out
    across cores is safe. The pool is bounded by
    {!Domain.recommended_domain_count} and degrades to a plain in-domain
    map when only one domain is available (or useful).

    Jobs are distributed round-robin over per-worker deques; a worker
    pops its own deque from the front and steals from the back of the
    others when it runs dry. Results come back in submission order, so a
    parallel sweep is a drop-in replacement for [List.map] /
    [Array.map]. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], the pool's bound. *)

type worker_stats = {
  w_jobs : int;  (** jobs this worker ran *)
  w_steals : int;  (** of those, how many it stole from a victim's deque *)
  w_busy_s : float;  (** wall-clock spent inside the job function *)
}

type pool_stats = {
  p_domains : int;
  p_wall_s : float;  (** pool wall-clock, distribution to last join *)
  p_workers : worker_stats array;  (** one entry per worker domain *)
}
(** What the pool observed about its own scheduling: the bench JSON and
    `daec sweep` record these so parallel scaling (per-domain utilization,
    steal counts) is visible per run. *)

val utilization : pool_stats -> float
(** Mean busy/wall fraction over the workers, in [0, 1]. *)

val total_steals : pool_stats -> int

val map : ?domains:int -> f:('a -> 'b) -> 'a array -> 'b array
(** [map ~domains ~f jobs] runs [f] over [jobs] on up to [domains]
    worker domains (default {!default_domains}, clamped to the job
    count) and returns the results in order. If any job raises, the
    first exception (in submission order) is re-raised in the caller
    after all workers have drained. *)

val map_stats :
  ?domains:int -> f:('a -> 'b) -> 'a array -> 'b array * pool_stats
(** {!map}, also returning the pool's scheduling statistics. *)

val map_list : ?domains:int -> f:('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)

val map_keyed :
  ?domains:int ->
  key:('a -> string) ->
  f:('a -> 'b) ->
  'a list ->
  (string * 'b) list
(** [map_keyed ~key ~f jobs] deduplicates [jobs] by [key] (first
    occurrence wins), computes each distinct job once via {!map}, and
    returns one [(key, result)] pair per distinct key in first-appearance
    order. This is how the evaluation harness submits every section's
    (kernel, arch, config) jobs at once without re-simulating shared
    points. *)

val map_keyed_stats :
  ?domains:int ->
  key:('a -> string) ->
  f:('a -> 'b) ->
  'a list ->
  (string * 'b) list * pool_stats
(** {!map_keyed}, also returning the pool's scheduling statistics. *)

val memoize : (string -> 'a) -> string -> 'a
(** [memoize f] is [f] with a per-domain cache keyed by the string
    argument (via [Domain.DLS] — no locks, no sharing). Repeated keys
    inside one worker domain hit the cache; distinct domains compute
    independently. *)
