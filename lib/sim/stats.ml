(* Per-unit cycle-attribution counters (see stats.mli).

   A counter set is a flat int array indexed by cause, so merging is a
   pointwise add: associative, commutative, and O(causes) — the properties
   the invocation loop, the bench aggregator and the runner-merge
   regression test all lean on. *)

type cause =
  | Busy
  | Fifo_full
  | Fifo_empty
  | Gate_wait
  | Sched_wait
  | Lsq_alloc
  | Raw_wait
  | Port_contention
  | Poison_wait
  | Mem_wait
  | Drain
  | Mshr_full
  | Dram_bank

let all_causes =
  [
    Busy; Fifo_full; Fifo_empty; Gate_wait; Sched_wait; Lsq_alloc; Raw_wait;
    Port_contention; Poison_wait; Mem_wait; Drain; Mshr_full; Dram_bank;
  ]

(* The legacy causes existed before the memory hierarchy; [to_list] emits
   them unconditionally so scratchpad-mode JSON stays byte-identical, and
   appends the hierarchy-only causes only when nonzero. *)
let legacy_causes =
  [
    Busy; Fifo_full; Fifo_empty; Gate_wait; Sched_wait; Lsq_alloc; Raw_wait;
    Port_contention; Poison_wait; Mem_wait; Drain;
  ]

let n_causes = List.length all_causes

let index = function
  | Busy -> 0
  | Fifo_full -> 1
  | Fifo_empty -> 2
  | Gate_wait -> 3
  | Sched_wait -> 4
  | Lsq_alloc -> 5
  | Raw_wait -> 6
  | Port_contention -> 7
  | Poison_wait -> 8
  | Mem_wait -> 9
  | Drain -> 10
  | Mshr_full -> 11
  | Dram_bank -> 12

let cause_name = function
  | Busy -> "busy"
  | Fifo_full -> "fifo_full"
  | Fifo_empty -> "fifo_empty"
  | Gate_wait -> "gate_wait"
  | Sched_wait -> "sched_wait"
  | Lsq_alloc -> "lsq_alloc"
  | Raw_wait -> "raw_wait"
  | Port_contention -> "port_contention"
  | Poison_wait -> "poison_wait"
  | Mem_wait -> "mem_wait"
  | Drain -> "drain"
  | Mshr_full -> "mshr_full"
  | Dram_bank -> "dram_bank"

type t = int array

let create () = Array.make n_causes 0
let copy = Array.copy

let of_busy cycles =
  let t = create () in
  t.(index Busy) <- cycles;
  t

let add t c span = t.(index c) <- t.(index c) + span
let get t c = t.(index c)
let total t = Array.fold_left ( + ) 0 t

let merge_into ~dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src

let merge a b =
  let t = copy a in
  merge_into ~dst:t b;
  t

let equal (a : t) (b : t) = a = b
let to_list t =
  let legacy = List.map (fun c -> (cause_name c, get t c)) legacy_causes in
  let extra =
    List.filter_map
      (fun c -> if get t c > 0 then Some (cause_name c, get t c) else None)
      [ Mshr_full; Dram_bank ]
  in
  legacy @ extra

type keyed = (string * t) list

let merge_keyed (a : keyed) (b : keyed) : keyed =
  let tbl = Hashtbl.create 8 in
  let feed (k, c) =
    match Hashtbl.find_opt tbl k with
    | Some acc -> merge_into ~dst:acc c
    | None -> Hashtbl.add tbl k (copy c)
  in
  List.iter feed a;
  List.iter feed b;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)

let equal_keyed (a : keyed) (b : keyed) =
  List.length a = List.length b
  && List.for_all2 (fun (k1, c1) (k2, c2) -> k1 = k2 && equal c1 c2) a b

let pp_table ~total_cycles ppf (units : keyed) =
  let pct n =
    if total_cycles <= 0 then 0.
    else 100. *. float_of_int n /. float_of_int total_cycles
  in
  Fmt.pf ppf "%-16s" "cause";
  List.iter (fun (name, _) -> Fmt.pf ppf " %16s" name) units;
  Fmt.pf ppf "@.";
  List.iter
    (fun c ->
      if List.exists (fun (_, t) -> get t c > 0) units then begin
        Fmt.pf ppf "%-16s" (cause_name c);
        List.iter
          (fun (_, t) ->
            Fmt.pf ppf " %9d %5.1f%%" (get t c) (pct (get t c)))
          units;
        Fmt.pf ppf "@."
      end)
    all_causes;
  Fmt.pf ppf "%-16s" "total";
  List.iter (fun (_, t) -> Fmt.pf ppf " %9d %5.1f%%" (total t) (pct (total t))) units;
  Fmt.pf ppf "@."
