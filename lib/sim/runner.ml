(* Work-stealing job pool over OCaml 5 domains (see runner.mli).

   One-shot pools: [map_stats] distributes the jobs up front, spawns the
   workers, and joins them — no job is added while the pool runs, so a
   worker simply exits once its own deque and every victim's deque are
   empty. Each result slot is written by exactly one worker before its
   domain is joined; [Domain.join] publishes the writes to the caller.

   Every worker keeps private counters (jobs run, jobs stolen, wall time
   inside [f]) and publishes them into its own slot of the stats array
   before exiting — the per-domain utilization and steal counts the bench
   JSON and `daec sweep` report come straight from here. *)

let default_domains () = Domain.recommended_domain_count ()

type worker_stats = {
  w_jobs : int; (* jobs this worker ran *)
  w_steals : int; (* of those, how many it stole from a victim's deque *)
  w_busy_s : float; (* wall-clock spent inside [f] *)
}

type pool_stats = {
  p_domains : int;
  p_wall_s : float; (* pool wall-clock, distribution to last join *)
  p_workers : worker_stats array; (* one entry per worker domain *)
}

let utilization (s : pool_stats) =
  if s.p_wall_s <= 0. || Array.length s.p_workers = 0 then 1.
  else
    Array.fold_left (fun a w -> a +. w.w_busy_s) 0. s.p_workers
    /. (s.p_wall_s *. float_of_int (Array.length s.p_workers))

let total_steals (s : pool_stats) =
  Array.fold_left (fun a w -> a + w.w_steals) 0 s.p_workers

(* A deque under a lock: the owner pops the front, thieves pop the back.
   Contention is one mutex per worker, held for O(1) amortized list
   surgery — simulation jobs are orders of magnitude coarser. *)
module Deque = struct
  type 'a t = {
    lock : Mutex.t;
    mutable front : 'a list; (* next owner pops *)
    mutable back : 'a list; (* reversed; next thief pops its head *)
  }

  let create () = { lock = Mutex.create (); front = []; back = [] }

  let push_back t x =
    Mutex.lock t.lock;
    t.back <- x :: t.back;
    Mutex.unlock t.lock

  let pop_front t =
    Mutex.lock t.lock;
    let r =
      match t.front with
      | x :: tl ->
        t.front <- tl;
        Some x
      | [] -> (
        match List.rev t.back with
        | x :: tl ->
          t.back <- [];
          t.front <- tl;
          Some x
        | [] -> None)
    in
    Mutex.unlock t.lock;
    r

  let pop_back t =
    Mutex.lock t.lock;
    let r =
      match t.back with
      | x :: tl ->
        t.back <- tl;
        Some x
      | [] -> (
        match List.rev t.front with
        | x :: tl ->
          t.back <- tl;
          t.front <- [];
          Some x
        | [] -> None)
    in
    Mutex.unlock t.lock;
    r
end

let map_stats (type a b) ?domains ~(f : a -> b) (jobs : a array) :
    b array * pool_stats =
  let n = Array.length jobs in
  let d =
    match domains with
    | Some d -> max 1 (min d n)
    | None -> max 1 (min (default_domains ()) n)
  in
  let t0 = Unix.gettimeofday () in
  if d <= 1 || n <= 1 then begin
    let busy = ref 0. in
    let results =
      Array.map
        (fun j ->
          let j0 = Unix.gettimeofday () in
          let r = f j in
          busy := !busy +. (Unix.gettimeofday () -. j0);
          r)
        jobs
    in
    let wall = Unix.gettimeofday () -. t0 in
    ( results,
      {
        p_domains = 1;
        p_wall_s = wall;
        p_workers = [| { w_jobs = n; w_steals = 0; w_busy_s = !busy } |];
      } )
  end
  else begin
    let deques = Array.init d (fun _ -> Deque.create ()) in
    Array.iteri (fun i _ -> Deque.push_back deques.(i mod d) i) jobs;
    let results : b option array = Array.make n None in
    let errors : (int * exn * Printexc.raw_backtrace) option array =
      Array.make n None
    in
    let stats = Array.make d { w_jobs = 0; w_steals = 0; w_busy_s = 0. } in
    let run_job i =
      match f jobs.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
        errors.(i) <- Some (i, e, Printexc.get_raw_backtrace ())
    in
    let worker w () =
      let jobs_run = ref 0 and steals = ref 0 and busy = ref 0. in
      let timed i =
        let j0 = Unix.gettimeofday () in
        run_job i;
        busy := !busy +. (Unix.gettimeofday () -. j0);
        incr jobs_run
      in
      let continue_ = ref true in
      while !continue_ do
        match Deque.pop_front deques.(w) with
        | Some i -> timed i
        | None ->
          (* own deque dry: sweep the victims' backs once; exit when the
             whole pool is dry (no new jobs appear mid-run) *)
          let stolen = ref None in
          let v = ref 1 in
          while !stolen = None && !v < d do
            stolen := Deque.pop_back deques.((w + !v) mod d);
            incr v
          done;
          (match !stolen with
          | Some i ->
            incr steals;
            timed i
          | None -> continue_ := false)
      done;
      stats.(w) <-
        { w_jobs = !jobs_run; w_steals = !steals; w_busy_s = !busy }
    in
    let workers = Array.init d (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join workers;
    let wall = Unix.gettimeofday () -. t0 in
    (* first failure in submission order wins, as with a serial map *)
    Array.iter
      (function
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    let results =
      Array.map
        (function Some v -> v | None -> invalid_arg "Runner.map: lost job")
        results
    in
    (results, { p_domains = d; p_wall_s = wall; p_workers = stats })
  end

let map ?domains ~f jobs = fst (map_stats ?domains ~f jobs)

let map_list ?domains ~f jobs =
  Array.to_list (map ?domains ~f (Array.of_list jobs))

let map_keyed_stats ?domains ~key ~f jobs =
  let seen = Hashtbl.create 64 in
  let distinct =
    List.filter
      (fun j ->
        let k = key j in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      jobs
  in
  let results, stats = map_stats ?domains ~f (Array.of_list distinct) in
  (List.map2 (fun j r -> (key j, r)) distinct (Array.to_list results), stats)

let map_keyed ?domains ~key ~f jobs =
  fst (map_keyed_stats ?domains ~key ~f jobs)

let memoize (type a) (f : string -> a) : string -> a =
  let dls_key : (string, a) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 16)
  in
  fun s ->
    let tbl = Domain.DLS.get dls_key in
    match Hashtbl.find_opt tbl s with
    | Some v -> v
    | None ->
      let v = f s in
      Hashtbl.replace tbl s v;
      v
