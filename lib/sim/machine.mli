(** Top-level machine: compile a kernel for one of the four evaluated
    architectures and simulate a sequence of invocations (graph kernels run
    once per level/round, threading memory through).

    Every decoupled invocation is checked against the sequential golden
    model (final memory and per-array commit order) and the AGU/CU streams
    are checked against each other — a run that returns has proved its own
    sequential consistency. *)

open Dae_ir

type arch =
  | Sta  (** static HLS baseline *)
  | Dae  (** decoupling without speculation *)
  | Spec  (** the paper's contribution *)
  | Oracle  (** SPEC with mis-speculated requests filtered: an upper bound *)

val arch_name : arch -> string

type invocation = (string * Types.value) list

type timeline = {
  t_invocation : int;  (** 0-based invocation index *)
  t_agu : Trace.unit_trace;  (** as replayed (ORACLE: post-filter) *)
  t_aus : Trace.unit_trace array;
      (** extra access units of an N-way partition; [[||]] for 2-way *)
  t_cu : Trace.unit_trace;
  t_timing : Timing.result;
}
(** One invocation's replay, as consumed by {!Trace_export}. *)

type result = {
  arch : arch;
  cycles : int;
  invocations : int;
  killed_stores : int;
  committed_stores : int;
  misspec_rate : float;
  area : Area.breakdown;
  memory : Interp.Memory.t;  (** final memory, for workload-level checks *)
  pipeline : Dae_core.Pipeline.t option;  (** [None] for {!Sta} *)
  stats : Stats.keyed;
      (** per-unit cycle attribution merged over all invocations; every
          unit's counters sum exactly to [cycles] ({!Sta}: one unit
          ["STA"], all Busy) *)
  timelines : timeline list;
      (** per-invocation replays with channel-depth samples; empty unless
          [simulate ~collect:true] *)
  mem_events : Timing.mem_event array list;
      (** per-invocation committed-order memory event logs for the
          {!Mem_model} oracle; empty unless [simulate ~record_mem:true] *)
}

exception Check_failed of string

(** [collect] (default false) additionally keeps every invocation's traces,
    retire times and channel-depth samples for the timeline exporter — it
    never changes cycles or stats. [validate] (default true) runs
    {!Config.validate} before simulating; deadlock-boundary probes pass
    [~validate:false] to drive the timing engine with a rejected
    configuration. [record_mem] (default false) keeps each invocation's
    memory event log; [max_cycles] caps each invocation's replay (the
    qcheck harness's hang guard — overruns raise {!Timing.Timing_error}).
    [partition] slices the kernel along an N-way address-stream assignment
    ({!Dae_core.Decouple.run_n}); it requires arch {!Dae} (ignored by
    {!Sta}, rejected by the pipeline for {!Spec}/{!Oracle}) and defaults
    to the classic 2-way split. [scheduler] selects the timing engine's
    stall-path scheduler (default {!Timing.Event_wheel}; the seed
    calendar is the bit-identical reference the CI determinism diff
    replays).
    @raise Invalid_argument on an invalid configuration.
    @raise Check_failed when a decoupled run disagrees with the golden
    model. *)
val simulate :
  ?cfg:Config.t ->
  ?validate:bool ->
  ?w:Area.weights ->
  ?collect:bool ->
  ?record_mem:bool ->
  ?max_cycles:int ->
  ?partition:Dae_core.Decouple.assignment ->
  ?scheduler:Timing.scheduler ->
  arch ->
  Func.t ->
  invocations:invocation list ->
  mem:Interp.Memory.t ->
  result

val simulate_all :
  ?cfg:Config.t ->
  ?w:Area.weights ->
  Func.t ->
  invocations:invocation list ->
  mem:Interp.Memory.t ->
  (arch * result) list

val pp_stats : result Fmt.t
(** The stall-attribution breakdown of {!result.stats} as a table (one
    column per unit, one row per nonzero cause, cycles and share). *)
