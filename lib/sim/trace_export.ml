(* Chrome-tracing / Perfetto JSON emitter (see trace_export.mli).

   Event vocabulary used (trace-event format):
   - "M" metadata events name each process (one per invocation) and its
     AGU/CU threads;
   - "X" complete events: one 1-cycle slice per retired channel event,
     tid 1 = AGU, tid 2 = CU;
   - "C" counter events: channel/queue depth tracks from the engine's
     on-change samples.

   Everything is emitted in a fixed order (invocations ascending; within
   one invocation: metadata, AGU slices, CU slices, depth samples in
   recorded order), so the document is byte-stable across runs and across
   runner domain counts. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type emitter = { buf : Buffer.t; mutable first : bool }

let event em fmt =
  if em.first then em.first <- false else Buffer.add_string em.buf ",\n";
  Buffer.add_string em.buf "    ";
  Printf.ksprintf (Buffer.add_string em.buf) fmt

let metadata em ~pid ~tid ~kind ~name =
  event em
    {|{ "name": "%s", "ph": "M", "pid": %d, "tid": %d, "args": { "name": "%s" } }|}
    kind pid tid (escape name)

let slices em ~pid ~tid (tr : Trace.unit_trace) (retire : int array) =
  for k = 0 to Trace.length tr - 1 do
    if retire.(k) >= 0 then
      event em
        {|{ "name": "%s", "cat": "i%d", "ph": "X", "ts": %d, "dur": 1, "pid": %d, "tid": %d }|}
        (escape (Fmt.str "%a" (fun ppf -> Trace.pp_event tr ppf) k))
        (Trace.iter tr k) retire.(k) pid tid
  done

let counters em ~pid (samples : (int * string * int) array) =
  Array.iter
    (fun (t, chan, depth) ->
      event em
        {|{ "name": "%s", "ph": "C", "ts": %d, "pid": %d, "args": { "depth": %d } }|}
        (escape chan) t pid depth)
    samples

let export buf ~kernel (r : Machine.result) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let arch = Machine.arch_name r.Machine.arch in
  p "{\n";
  p "  \"schema\": \"dae-trace/1\",\n";
  p "  \"kernel\": \"%s\",\n" (escape kernel);
  p "  \"arch\": \"%s\",\n" (escape arch);
  p "  \"cycles\": %d,\n" r.Machine.cycles;
  p "  \"displayTimeUnit\": \"ns\",\n";
  (* the stall attribution rides along so a trace file is self-describing *)
  p "  \"stats\": {\n";
  List.iteri
    (fun i (unit, c) ->
      p "    \"%s\": { %s }%s\n" (escape unit)
        (String.concat ", "
           (List.map
              (fun (cause, n) -> Printf.sprintf "\"%s\": %d" cause n)
              (Stats.to_list c)))
        (if i = List.length r.Machine.stats - 1 then "" else ","))
    r.Machine.stats;
  p "  },\n";
  p "  \"traceEvents\": [\n";
  let em = { buf; first = true } in
  List.iter
    (fun (tl : Machine.timeline) ->
      let pid = tl.Machine.t_invocation in
      metadata em ~pid ~tid:0 ~kind:"process_name"
        ~name:(Printf.sprintf "%s/%s inv%d" kernel arch pid);
      metadata em ~pid ~tid:1 ~kind:"thread_name" ~name:"AGU";
      metadata em ~pid ~tid:2 ~kind:"thread_name" ~name:"CU";
      slices em ~pid ~tid:1 tl.Machine.t_agu tl.Machine.t_timing.Timing.agu_retire;
      slices em ~pid ~tid:2 tl.Machine.t_cu tl.Machine.t_timing.Timing.cu_retire;
      counters em ~pid tl.Machine.t_timing.Timing.depth_samples)
    r.Machine.timelines;
  p "\n  ]\n}\n"

let to_string ~kernel r =
  let buf = Buffer.create 65536 in
  export buf ~kernel r;
  Buffer.contents buf

let write_file ~path ~kernel r =
  let s = to_string ~kernel r in
  if path = "-" then print_string s
  else begin
    let oc = open_out path in
    output_string oc s;
    close_out oc
  end
