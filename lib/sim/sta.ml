(* Statically-scheduled accelerator baseline (paper §8.1.1 "STA").

   Models the industry-grade static HLS flow: the loop is modulo-scheduled
   with a fixed initiation interval. Loads that cannot be disambiguated at
   compile time execute in order, so any same-array load→store chain in the
   loop body forms a loop-carried memory dependence cycle whose latency
   bounds the II (Rau '94):

       II ≥ load_latency + |def-use chain from the load to the store| + 1

   Resource constraints (dual-ported SRAM: one load and one store port per
   array and cycle) bound II from below as well. Total cycles follow from
   the golden run's dynamic iteration count plus pipeline fill/drain. *)

open Dae_ir

type analysis = {
  ii : int;
  ii_dependence : int;
  ii_resource : int;
  pipeline_depth : int;
  hot_header : int option;
}

(* Longest def-use distance (in instructions) from value [src] to any
   operand of instruction [dst_instr]; None if unreachable. *)
let chain_length (du : Defuse.t) ~src (dst_instr : Instr.t) : int option =
  let memo : (int, int option) Hashtbl.t = Hashtbl.create 32 in
  let visiting = Hashtbl.create 32 in
  (* distance from [src] to value v, following use-def backwards *)
  let rec dist v =
    if v = src then Some 0
    else
      match Hashtbl.find_opt memo v with
      | Some d -> d
      | None ->
        if Hashtbl.mem visiting v then None (* φ cycle: loop-carried, skip *)
        else begin
          Hashtbl.replace visiting v ();
          let result =
            match Defuse.def_site du v with
            | None | Some (Defuse.Param _) -> None
            | Some (Defuse.Instruction _) ->
              (match Defuse.find_instr du v with
              | None -> None
              | Some i ->
                let ds =
                  List.filter_map
                    (function
                      | Types.Var w -> dist w
                      | Types.Cst _ -> None)
                    (Instr.operands i)
                in
                (match ds with
                | [] -> None
                | ds -> Some (1 + List.fold_left max 0 ds)))
            | Some (Defuse.Phi _) ->
              (match Defuse.find_phi du v with
              | None -> None
              | Some (p, _) ->
                let ds =
                  List.filter_map
                    (function
                      | _, Types.Var w -> dist w
                      | _, Types.Cst _ -> None)
                    p.Block.incoming
                in
                (match ds with
                | [] -> None
                | ds -> Some (List.fold_left max 0 ds)))
          in
          Hashtbl.remove visiting v;
          Hashtbl.replace memo v result;
          result
        end
  in
  let ds =
    List.filter_map
      (function Types.Var w -> dist w | Types.Cst _ -> None)
      (Instr.operands dst_instr)
  in
  match ds with [] -> None | ds -> Some (List.fold_left max 0 ds)

let analyze ?(cfg = Config.default) (f : Func.t) : analysis =
  let loops = Loops.compute f in
  let du = Defuse.compute f in
  (* hot loop: the innermost loop with memory operations *)
  let mem_ops_in body =
    List.concat_map
      (fun bid ->
        List.filter
          (fun (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Load _ | Instr.Store _ -> true
            | _ -> false)
          (Func.block f bid).Block.instrs)
      body
  in
  let candidates =
    List.filter
      (fun (l : Loops.loop) -> mem_ops_in l.Loops.body <> [])
      loops.Loops.loops
  in
  let hot =
    match
      List.sort
        (fun (a : Loops.loop) b -> compare b.Loops.depth a.Loops.depth)
        candidates
    with
    | [] -> None
    | l :: _ -> Some l
  in
  match hot with
  | None ->
    { ii = 1; ii_dependence = 1; ii_resource = 1; pipeline_depth = 4;
      hot_header = None }
  | Some l ->
    let ops = mem_ops_in l.Loops.body in
    let loads =
      List.filter
        (fun (i : Instr.t) ->
          match i.Instr.kind with Instr.Load _ -> true | _ -> false)
        ops
    in
    let stores =
      List.filter
        (fun (i : Instr.t) ->
          match i.Instr.kind with Instr.Store _ -> true | _ -> false)
        ops
    in
    (* dependence II: every same-array (load, store) pair that the static
       scheduler cannot disambiguate serializes the loop. The store depends
       on the load either through data (operand chain) or through control —
       a predicated store cannot commit before the branches guarding it
       resolve, and those conditions chain back to the load. *)
    let cdep = Control_dep.compute f in
    let block_of_instr id =
      match Func.block_of_instr f ~id with
      | Some b -> Some b.Block.bid
      | None -> None
    in
    let control_chain (ld : Instr.t) (st : Instr.t) : int option =
      match block_of_instr st.Instr.id with
      | None -> None
      | Some st_bid ->
        let sources = Control_dep.transitive_sources cdep st_bid in
        List.fold_left
          (fun acc src ->
            match Func.block_opt f src with
            | None -> acc
            | Some sb ->
              List.fold_left
                (fun acc op ->
                  match op with
                  | Types.Cst _ -> acc
                  | Types.Var v -> (
                    let dist =
                      (* distance from the load's value to the branch
                         condition producer *)
                      if v = ld.Instr.id then Some 0
                      else
                        match Defuse.find_instr du v with
                        | Some cond_instr ->
                          Option.map (fun d -> d + 1)
                            (chain_length du ~src:ld.Instr.id cond_instr)
                        | None -> None
                    in
                    match dist, acc with
                    | None, _ -> acc
                    | Some d, None -> Some d
                    | Some d, Some a -> Some (max d a)))
                acc (Block.terminator_operands sb))
          None sources
    in
    let ii_dependence =
      List.fold_left
        (fun acc (ld : Instr.t) ->
          List.fold_left
            (fun acc (st : Instr.t) ->
              if Instr.array_name ld = Instr.array_name st then begin
                let data = chain_length du ~src:ld.Instr.id st in
                let ctrl = control_chain ld st in
                let chain =
                  match data, ctrl with
                  | Some d, Some c -> Some (max d c)
                  | (Some _ as x), None | None, (Some _ as x) -> x
                  | None, None -> None
                in
                match chain with
                | Some chain ->
                  max acc
                    (cfg.Config.memory_load_latency
                    + (chain * cfg.Config.alu_latency)
                    + 1)
                | None -> acc
              end
              else acc)
            acc stores)
        1 loads
    in
    (* resource II: port pressure per array *)
    let count_per_array sel =
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun (i : Instr.t) ->
          if sel i then
            match Instr.array_name i with
            | Some a ->
              Hashtbl.replace tbl a
                (1 + try Hashtbl.find tbl a with Not_found -> 0)
            | None -> ())
        ops;
      Hashtbl.fold (fun _ n acc -> max acc n) tbl 0
    in
    let ii_resource =
      max 1
        (max
           (count_per_array (fun i ->
                match i.Instr.kind with Instr.Load _ -> true | _ -> false))
           (count_per_array (fun i ->
                match i.Instr.kind with Instr.Store _ -> true | _ -> false)))
    in
    let body_instrs =
      List.fold_left
        (fun acc bid ->
          acc + List.length (Func.block f bid).Block.instrs)
        0 l.Loops.body
    in
    {
      ii = max ii_dependence ii_resource;
      ii_dependence;
      ii_resource;
      pipeline_depth =
        cfg.Config.memory_load_latency + (body_instrs / 2) + 2;
      hot_header = Some l.Loops.header;
    }

type result = { cycles : int; ii : int; iterations : int }

(* Cycle count for one invocation, given the golden run's block trace. *)
let cycles_of_run ?(cfg = Config.default) (f : Func.t)
    (golden : Interp.result) : result =
  let a = analyze ~cfg f in
  let iterations =
    match a.hot_header with
    | None -> 0
    | Some h ->
      (* header visits − 1: the final visit fails the loop condition *)
      max 0
        (Array.fold_left
           (fun n b -> if b = h then n + 1 else n)
           0 golden.Interp.block_trace
        - 1)
  in
  { cycles = (a.ii * iterations) + a.pipeline_depth; ii = a.ii; iterations }
