(* Top-level machine: compiles a kernel for one of the four evaluated
   architectures and simulates a sequence of invocations (graph kernels run
   once per BFS level / relaxation round, threading memory through).

   Every decoupled invocation is checked against the sequential golden
   model (final memory + per-array commit order) and the AGU/CU streams
   are checked against each other (Lemma 6.1) — a run that returns is a
   run that proved its own sequential consistency. *)

open Dae_ir

type arch = Sta | Dae | Spec | Oracle

let arch_name = function
  | Sta -> "STA"
  | Dae -> "DAE"
  | Spec -> "SPEC"
  | Oracle -> "ORACLE"

type invocation = (string * Types.value) list (* kernel arguments *)

type timeline = {
  t_invocation : int;
  t_agu : Trace.unit_trace;
  t_aus : Trace.unit_trace array; (* extra access units; [||] for 2-way *)
  t_cu : Trace.unit_trace;
  t_timing : Timing.result;
}

type result = {
  arch : arch;
  cycles : int;
  invocations : int;
  killed_stores : int;
  committed_stores : int;
  misspec_rate : float;
  area : Area.breakdown;
  memory : Interp.Memory.t; (* final memory, for workload-level checks *)
  pipeline : Dae_core.Pipeline.t option;
  stats : Stats.keyed; (* cycle attribution, merged over invocations *)
  timelines : timeline list; (* per invocation; only with ~collect:true *)
  mem_events : Timing.mem_event array list;
      (* per invocation, in order; only with ~record_mem:true *)
}

exception Check_failed of string

let golden_run (f : Func.t) ~args ~mem = Interp.run f ~args ~mem

let simulate ?(cfg = Config.default) ?(validate = true)
    ?(w = Area.default_weights) ?(collect = false) ?(record_mem = false)
    ?max_cycles ?(partition = Dae_core.Decouple.trivial) ?scheduler
    (arch : arch) (f : Func.t) ~(invocations : invocation list)
    ~(mem : Interp.Memory.t) : result =
  if validate then Config.validate cfg;
  match arch with
  | Sta ->
    let mem = Interp.Memory.copy mem in
    let cycles = ref 0 in
    List.iter
      (fun args ->
        let golden = golden_run f ~args ~mem in
        let r = Sta.cycles_of_run ~cfg f golden in
        cycles := !cycles + r.Sta.cycles)
      invocations;
    {
      arch;
      cycles = !cycles;
      invocations = List.length invocations;
      killed_stores = 0;
      committed_stores = 0;
      misspec_rate = 0.0;
      area = Area.sta ~w f;
      memory = mem;
      pipeline = None;
      (* the single statically-scheduled unit is never idle: modulo
         scheduling fills every cycle, so the whole run is Busy *)
      stats = [ ("STA", Stats.of_busy !cycles) ];
      timelines = [];
      mem_events = [];
    }
  | Dae | Spec | Oracle ->
    let mode =
      match arch with
      | Dae -> Dae_core.Pipeline.Dae
      | Spec | Oracle -> Dae_core.Pipeline.Spec
      | Sta -> assert false
    in
    let p = Dae_core.Pipeline.compile ~mode ~partition f in
    let lowered = Lower.compile p in
    let sim_mem = Interp.Memory.copy mem in
    let golden_mem = Interp.Memory.copy mem in
    let cycles = ref 0 in
    let killed = ref 0 and committed = ref 0 in
    let stats = ref [] in
    let timelines = ref [] in
    let mem_events = ref [] in
    let inv_index = ref 0 in
    let subscribers =
      List.map
        (fun (m, subs) ->
          ( m,
            List.map
              (function
                | `Agu -> Trace.Agu
                | `Cu -> Trace.Cu
                | `Au k -> Trace.Au k)
              subs ))
        p.Dae_core.Pipeline.load_subscribers
    in
    List.iter
      (fun args ->
        let golden =
          golden_run p.Dae_core.Pipeline.original ~args ~mem:golden_mem
        in
        let r = Exec.run_lowered lowered ~args ~mem:sim_mem in
        (match Exec.check_against_golden ~golden_mem ~golden r with
        | Ok () -> ()
        | Error msg ->
          raise
            (Check_failed
               (Fmt.str "%s/%s: %s" f.Func.name (arch_name arch) msg)));
        killed := !killed + r.Exec.killed_stores;
        committed := !committed + r.Exec.committed_stores;
        let trs =
          match arch with
          | Oracle ->
            let agu_tr, cu_tr =
              Timing.oracle_filter r.Exec.agu_trace r.Exec.cu_trace
            in
            [| agu_tr; cu_tr |]
          | _ -> Exec.traces r
        in
        let timed =
          Timing.run_units ~cfg ~validate:false ?max_cycles
            ~record_depths:collect ~record_mem ?scheduler ~subscribers trs
        in
        cycles := !cycles + timed.Timing.cycles;
        stats := Stats.merge_keyed !stats timed.Timing.stats;
        if record_mem then
          mem_events := timed.Timing.mem_events :: !mem_events;
        if collect then
          timelines :=
            {
              t_invocation = !inv_index;
              t_agu = trs.(0);
              t_aus = Array.sub trs 2 (Array.length trs - 2);
              t_cu = trs.(1);
              t_timing = timed;
            }
            :: !timelines;
        incr inv_index)
      invocations;
    let total = !killed + !committed in
    {
      arch;
      cycles = !cycles;
      invocations = List.length invocations;
      killed_stores = !killed;
      committed_stores = !committed;
      misspec_rate =
        (if total = 0 then 0.0 else float_of_int !killed /. float_of_int total);
      area =
        (match arch with
        | Oracle -> Area.decoupled ~w ~cfg ~ignore_poison:true p
        | _ -> Area.decoupled ~w ~cfg p);
      memory = sim_mem;
      pipeline = Some p;
      stats = !stats;
      timelines = List.rev !timelines;
      mem_events = List.rev !mem_events;
    }

(* Convenience: run all four architectures on the same kernel/input. *)
let simulate_all ?cfg ?w (f : Func.t) ~invocations ~mem :
    (arch * result) list =
  List.map
    (fun arch -> (arch, simulate ?cfg ?w arch f ~invocations ~mem))
    [ Sta; Dae; Spec; Oracle ]

let pp_stats ppf (r : result) =
  Stats.pp_table ~total_cycles:r.cycles ppf r.stats
