(* Architectural parameters of the simulated DAE template (paper §8.1).

   The paper evaluates accelerators with a deterministic dual-ported
   on-chip SRAM (1 read + 1 write per cycle) and an HLS load-store queue
   with load/store queue sizes 4/32. FIFO latencies model the pipelined
   channel between units. Absolute cycle counts are not expected to match
   ModelSim; the latency ratios are what shapes the results, and every
   knob is exposed for the ablation benches. *)

type t = {
  load_queue_size : int; (* paper: 4 *)
  store_queue_size : int; (* paper: 32 *)
  request_fifo_capacity : int; (* AGU -> DU request channel depth *)
  value_fifo_capacity : int; (* DU -> unit load-value channel depth *)
  store_value_fifo_capacity : int; (* CU -> DU store-value channel depth *)
  fifo_latency : int; (* cycles for a token to traverse a channel *)
  memory_load_latency : int; (* SRAM read latency *)
  memory_store_latency : int; (* SRAM write latency (commit occupancy) *)
  forward_latency : int; (* store-to-load forwarding inside the LSQ *)
  alu_latency : int; (* per simple op, for STA chain estimates *)
  branch_latency : int; (* control resolution for synchronized units *)
  unit_ii : int; (* min initiation interval of a decoupled unit *)
  vector_width : int;
  (* paper §10 (future work): speculative requests are filled into vectors
     of this width — the unit may issue up to this many operations per
     channel per cycle, and the DU accepts/resolves as many requests,
     store-value tags and kills per cycle. Memory ports stay scalar
     (1 load issue + 1 commit per array and cycle): vectorization widens
     runahead and kill bandwidth, not SRAM bandwidth. 1 = the paper's
     evaluated scalar design. *)
}

let default =
  {
    load_queue_size = 4;
    store_queue_size = 32;
    request_fifo_capacity = 16;
    value_fifo_capacity = 16;
    store_value_fifo_capacity = 16;
    fifo_latency = 2;
    memory_load_latency = 2;
    memory_store_latency = 1;
    forward_latency = 1;
    alu_latency = 1;
    branch_latency = 1;
    unit_ii = 1;
    vector_width = 1;
  }

(* Every field is a count of cycles or slots and must be at least 1: the
   timing engine's ring buffers clamp `phys = max capacity 1`, which used
   to mask a zero capacity until the run deadlocked dynamically. Reject
   bad configs at the entry points instead (the sizing analyzer probes
   the deadlock boundary with validation off). *)
let validate (c : t) =
  let need what v =
    if v < 1 then
      invalid_arg
        (Printf.sprintf "Config.validate: %s must be >= 1, got %d" what v)
  in
  need "load_queue_size" c.load_queue_size;
  need "store_queue_size" c.store_queue_size;
  need "request_fifo_capacity" c.request_fifo_capacity;
  need "value_fifo_capacity" c.value_fifo_capacity;
  need "store_value_fifo_capacity" c.store_value_fifo_capacity;
  need "fifo_latency" c.fifo_latency;
  need "memory_load_latency" c.memory_load_latency;
  need "memory_store_latency" c.memory_store_latency;
  need "forward_latency" c.forward_latency;
  need "alu_latency" c.alu_latency;
  need "branch_latency" c.branch_latency;
  need "unit_ii" c.unit_ii;
  need "vector_width" c.vector_width

(* Canonical compact rendering of every field, in declaration order — the
   memoization/dedup key of the evaluation harness's job pool. *)
let key (c : t) =
  Printf.sprintf "lq%d.sq%d.rf%d.vf%d.svf%d.fl%d.ml%d.ms%d.fw%d.al%d.bl%d.ii%d.vw%d"
    c.load_queue_size c.store_queue_size c.request_fifo_capacity
    c.value_fifo_capacity c.store_value_fifo_capacity c.fifo_latency
    c.memory_load_latency c.memory_store_latency c.forward_latency
    c.alu_latency c.branch_latency c.unit_ii c.vector_width

let pp ppf (c : t) =
  Fmt.pf ppf
    "lsq %d/%d, req fifo %d, val fifo %d, fifo lat %d, mem ld/st %d/%d"
    c.load_queue_size c.store_queue_size c.request_fifo_capacity
    c.value_fifo_capacity c.fifo_latency c.memory_load_latency
    c.memory_store_latency
