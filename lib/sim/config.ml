(* Architectural parameters of the simulated DAE template (paper §8.1).

   The paper evaluates accelerators with a deterministic dual-ported
   on-chip SRAM (1 read + 1 write per cycle) and an HLS load-store queue
   with load/store queue sizes 4/32. FIFO latencies model the pipelined
   channel between units. Absolute cycle counts are not expected to match
   ModelSim; the latency ratios are what shapes the results, and every
   knob is exposed for the ablation benches. *)

(* DRAM backend timing: per-bank open-row tracking with a shared data
   bus. A line maps to a bank by its low line bits; the bank's row is
   [line / (row_words / line_words)]. Hitting the open row costs
   [t_row_hit], switching rows [t_row_miss], and every access holds the
   shared bus for [t_bus] cycles — that is where inter-array bank/bus
   contention comes from. *)
type dram = {
  dram_banks : int;
  row_words : int; (* words per DRAM row (row-buffer reach) *)
  t_row_hit : int; (* access latency when the row buffer hits *)
  t_row_miss : int; (* precharge + activate + access on a row switch *)
  t_bus : int; (* data-bus occupancy per transfer *)
}

(* One level of non-blocking banked cache in front of the DRAM. Misses
   allocate an MSHR (merged when the line is already in flight); when the
   pool is exhausted the load port stalls with [Stats.Mshr_full]. *)
type cache_geom = {
  banks : int;
  sets : int; (* sets per bank *)
  ways : int;
  line_words : int;
  hit_latency : int;
  mshrs : int; (* shared miss-status holding registers *)
  dram : dram;
}

type hierarchy =
  | Scratchpad (* deterministic dual-ported SRAM — the seed behavior *)
  | Hierarchy of cache_geom

type t = {
  load_queue_size : int; (* paper: 4 *)
  store_queue_size : int; (* paper: 32 *)
  request_fifo_capacity : int; (* AGU -> DU request channel depth *)
  value_fifo_capacity : int; (* DU -> unit load-value channel depth *)
  store_value_fifo_capacity : int; (* CU -> DU store-value channel depth *)
  fifo_latency : int; (* cycles for a token to traverse a channel *)
  memory_load_latency : int; (* SRAM read latency *)
  memory_store_latency : int; (* SRAM write latency (commit occupancy) *)
  forward_latency : int; (* store-to-load forwarding inside the LSQ *)
  alu_latency : int; (* per simple op, for STA chain estimates *)
  branch_latency : int; (* control resolution for synchronized units *)
  unit_ii : int; (* min initiation interval of a decoupled unit *)
  vector_width : int;
  (* paper §10 (future work): speculative requests are filled into vectors
     of this width — the unit may issue up to this many operations per
     channel per cycle, and the DU accepts/resolves as many requests,
     store-value tags and kills per cycle. Memory ports stay scalar
     (1 load issue + 1 commit per array and cycle): vectorization widens
     runahead and kill bandwidth, not SRAM bandwidth. 1 = the paper's
     evaluated scalar design. *)
  hierarchy : hierarchy;
  (* Scratchpad reproduces the paper's deterministic SRAM bit-identically;
     Hierarchy puts a banked non-blocking cache + DRAM behind the load
     port, making load latency variable (ROADMAP item 1). *)
  unit_clock_ratios : int array;
  (* Per-unit clock dividers in dense unit order [AGU; CU; AU1; ...]
     (the big.LITTLE DAE direction, ROADMAP item 3 leftover): ratio k
     means the unit ticks every k engine cycles. [||] (or all-1) is the
     homogeneous design and renders an empty key suffix, so every
     pre-existing key is unchanged. The axis is plumbed through
     validation and keying only — the timing engine rejects any ratio
     other than 1 with [Timing.Unsupported] until the multi-clock
     retirement rule is modeled. *)
}

let default_dram =
  { dram_banks = 4; row_words = 256; t_row_hit = 18; t_row_miss = 40; t_bus = 4 }

let default_geom =
  {
    banks = 2;
    sets = 16;
    ways = 2;
    line_words = 8;
    hit_latency = 2;
    mshrs = 4;
    dram = default_dram;
  }

let default =
  {
    load_queue_size = 4;
    store_queue_size = 32;
    request_fifo_capacity = 16;
    value_fifo_capacity = 16;
    store_value_fifo_capacity = 16;
    fifo_latency = 2;
    memory_load_latency = 2;
    memory_store_latency = 1;
    forward_latency = 1;
    alu_latency = 1;
    branch_latency = 1;
    unit_ii = 1;
    vector_width = 1;
    hierarchy = Scratchpad;
    unit_clock_ratios = [||];
  }

(* Every field is a count of cycles or slots and must be at least 1: the
   timing engine's ring buffers clamp `phys = max capacity 1`, which used
   to mask a zero capacity until the run deadlocked dynamically. Reject
   bad configs at the entry points instead (the sizing analyzer probes
   the deadlock boundary with validation off). *)
let validate (c : t) =
  let need what v =
    if v < 1 then
      invalid_arg
        (Printf.sprintf "Config.validate: %s must be >= 1, got %d" what v)
  in
  need "load_queue_size" c.load_queue_size;
  need "store_queue_size" c.store_queue_size;
  need "request_fifo_capacity" c.request_fifo_capacity;
  need "value_fifo_capacity" c.value_fifo_capacity;
  need "store_value_fifo_capacity" c.store_value_fifo_capacity;
  need "fifo_latency" c.fifo_latency;
  need "memory_load_latency" c.memory_load_latency;
  need "memory_store_latency" c.memory_store_latency;
  need "forward_latency" c.forward_latency;
  need "alu_latency" c.alu_latency;
  need "branch_latency" c.branch_latency;
  need "unit_ii" c.unit_ii;
  need "vector_width" c.vector_width;
  Array.iteri
    (fun i r -> need (Printf.sprintf "unit_clock_ratios[%d]" i) r)
    c.unit_clock_ratios;
  match c.hierarchy with
  | Scratchpad -> ()
  | Hierarchy g ->
      need "cache banks" g.banks;
      need "cache sets" g.sets;
      need "cache ways" g.ways;
      need "cache line_words" g.line_words;
      need "cache hit_latency" g.hit_latency;
      need "cache mshrs" g.mshrs;
      need "dram banks" g.dram.dram_banks;
      need "dram row_words" g.dram.row_words;
      need "dram t_row_hit" g.dram.t_row_hit;
      need "dram t_row_miss" g.dram.t_row_miss;
      need "dram t_bus" g.dram.t_bus;
      if g.dram.row_words < g.line_words then
        invalid_arg
          (Printf.sprintf
             "Config.validate: dram row_words (%d) must be >= cache \
              line_words (%d)"
             g.dram.row_words g.line_words)

(* Canonical compact rendering of every field, in declaration order — the
   memoization/dedup key of the evaluation harness's job pool. Scratchpad
   mode renders exactly as before the hierarchy existed (the committed
   bench expectations embed these keys); hierarchy mode appends a suffix
   covering every cache/DRAM parameter. *)
let hierarchy_key = function
  | Scratchpad -> ""
  | Hierarchy g ->
      Printf.sprintf ".cb%d.cs%d.cw%d.cl%d.ch%d.cm%d.db%d.dr%d.dh%d.dm%d.du%d"
        g.banks g.sets g.ways g.line_words g.hit_latency g.mshrs
        g.dram.dram_banks g.dram.row_words g.dram.t_row_hit g.dram.t_row_miss
        g.dram.t_bus

(* The homogeneous design ([||] or all-1) renders as "" so every key that
   predates the axis is byte-identical. *)
let clock_key ratios =
  if Array.for_all (fun r -> r = 1) ratios then ""
  else
    ".ck"
    ^ String.concat "x"
        (Array.to_list (Array.map string_of_int ratios))

let key (c : t) =
  Printf.sprintf
    "lq%d.sq%d.rf%d.vf%d.svf%d.fl%d.ml%d.ms%d.fw%d.al%d.bl%d.ii%d.vw%d%s%s"
    c.load_queue_size c.store_queue_size c.request_fifo_capacity
    c.value_fifo_capacity c.store_value_fifo_capacity c.fifo_latency
    c.memory_load_latency c.memory_store_latency c.forward_latency
    c.alu_latency c.branch_latency c.unit_ii c.vector_width
    (hierarchy_key c.hierarchy)
    (clock_key c.unit_clock_ratios)

let pp_hierarchy ppf = function
  | Scratchpad -> Fmt.pf ppf "scratchpad"
  | Hierarchy g ->
      Fmt.pf ppf
        "cache %dx%dset/%dway line %d hit %d mshr %d, dram %db row %d %d/%d \
         bus %d"
        g.banks g.sets g.ways g.line_words g.hit_latency g.mshrs
        g.dram.dram_banks g.dram.row_words g.dram.t_row_hit g.dram.t_row_miss
        g.dram.t_bus

let pp ppf (c : t) =
  Fmt.pf ppf
    "lsq %d/%d, req fifo %d, val fifo %d, fifo lat %d, mem ld/st %d/%d"
    c.load_queue_size c.store_queue_size c.request_fifo_capacity
    c.value_fifo_capacity c.fifo_latency c.memory_load_latency
    c.memory_store_latency;
  match c.hierarchy with
  | Scratchpad -> ()
  | Hierarchy _ -> Fmt.pf ppf ", mem %a" pp_hierarchy c.hierarchy
