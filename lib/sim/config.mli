(** Architectural parameters of the simulated DAE template (paper §8.1):
    LSQ sizes (paper: 4/32), channel depths and latencies, SRAM latencies,
    and the unit initiation interval. Every knob is exposed for the
    ablation benches. *)

type dram = {
  dram_banks : int;  (** independent DRAM banks (line-interleaved) *)
  row_words : int;  (** words per row — the row buffer's reach *)
  t_row_hit : int;  (** access latency on an open-row hit *)
  t_row_miss : int;  (** precharge + activate + access on a row switch *)
  t_bus : int;  (** shared data-bus occupancy per transfer *)
}

type cache_geom = {
  banks : int;
  sets : int;  (** sets per bank *)
  ways : int;
  line_words : int;
  hit_latency : int;
  mshrs : int;  (** shared miss-status holding registers *)
  dram : dram;
}

type hierarchy =
  | Scratchpad
      (** the paper's deterministic dual-ported SRAM; bit-identical to the
          pre-hierarchy simulator *)
  | Hierarchy of cache_geom
      (** banked non-blocking cache + DRAM behind the load port: variable
          load latency, MSHR backpressure, bank/bus contention *)

type t = {
  load_queue_size : int;
  store_queue_size : int;
  request_fifo_capacity : int;
  value_fifo_capacity : int;
  store_value_fifo_capacity : int;
  fifo_latency : int;
  memory_load_latency : int;
  memory_store_latency : int;
  forward_latency : int;
  alu_latency : int;
  branch_latency : int;
  unit_ii : int;
  vector_width : int;
      (** §10 future work: vector of speculative requests per cycle;
          1 = the paper's scalar design *)
  hierarchy : hierarchy;
  unit_clock_ratios : int array;
      (** per-unit clock dividers in dense unit order \[AGU; CU; AU1; ...\]
          (big.LITTLE DAE direction): ratio k = the unit ticks every k
          engine cycles. [[||]] or all-1 is the homogeneous design (empty
          key suffix — pre-existing keys unchanged). Plumbed through
          {!validate} and {!key} only: the timing engine raises
          [Timing.Unsupported] on any ratio other than 1. *)
}

val default : t
(** Scratchpad hierarchy — the seed configuration. *)

val default_dram : dram
val default_geom : cache_geom
(** Baseline cache point used by the CLI's [--mem cache] preset: 2 banks ×
    16 sets × 2 ways × 8-word lines, 4 MSHRs, over {!default_dram}. *)

val validate : t -> unit
(** Reject non-positive capacities, latencies and queue sizes with a
    descriptive [Invalid_argument] naming the offending field. Called by
    the {!Machine}/{!Timing} entry points (the timing engine's ring
    buffers used to clamp [phys = max capacity 1] silently, deferring a
    zero capacity to a dynamic deadlock). *)

val key : t -> string
(** Canonical compact rendering of every field — stable cache/dedup key
    for (kernel × arch × config) simulation jobs. In [Scratchpad] mode the
    key is byte-identical to pre-hierarchy versions; [Hierarchy] appends a
    suffix covering every cache/DRAM parameter. *)

val pp : Format.formatter -> t -> unit
val pp_hierarchy : Format.formatter -> hierarchy -> unit
