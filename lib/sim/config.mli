(** Architectural parameters of the simulated DAE template (paper §8.1):
    LSQ sizes (paper: 4/32), channel depths and latencies, SRAM latencies,
    and the unit initiation interval. Every knob is exposed for the
    ablation benches. *)

type t = {
  load_queue_size : int;
  store_queue_size : int;
  request_fifo_capacity : int;
  value_fifo_capacity : int;
  store_value_fifo_capacity : int;
  fifo_latency : int;
  memory_load_latency : int;
  memory_store_latency : int;
  forward_latency : int;
  alu_latency : int;
  branch_latency : int;
  unit_ii : int;
  vector_width : int;
      (** §10 future work: vector of speculative requests per cycle;
          1 = the paper's scalar design *)
}

val default : t

val validate : t -> unit
(** Reject non-positive capacities, latencies and queue sizes with a
    descriptive [Invalid_argument] naming the offending field. Called by
    the {!Machine}/{!Timing} entry points (the timing engine's ring
    buffers used to clamp [phys = max capacity 1] silently, deferring a
    zero capacity to a dynamic deadlock). *)

val key : t -> string
(** Canonical compact rendering of every field — stable cache/dedup key
    for (kernel × arch × config) simulation jobs. *)

val pp : Format.formatter -> t -> unit
