(** Timeline export: Chrome [chrome://tracing] / Perfetto-compatible JSON.

    Renders a decoupled run — per-unit occupancy (every retired channel
    event of the AGU and CU as a 1-cycle slice, the paper's Figure 2 view)
    plus channel-depth counter tracks (request/value/store-value FIFOs and
    LSQ occupancy) — from the timelines a [Machine.simulate ~collect:true]
    run recorded. One simulated cycle maps to one microsecond of trace
    time; each invocation becomes its own process, so multi-invocation
    kernels (BFS levels, relaxation rounds) stack as parallel tracks.

    The output is deterministic: same kernel, architecture and config give
    byte-identical JSON, independent of the runner's domain count — pinned
    by the golden test in [test/test_stats.ml]. *)

val export : Buffer.t -> kernel:string -> Machine.result -> unit
(** Append the JSON document for [result]'s timelines (empty trace when
    the run was not collected) to the buffer. *)

val to_string : kernel:string -> Machine.result -> string

val write_file : path:string -> kernel:string -> Machine.result -> unit
(** [path] ["-"] writes to stdout. *)
