(** Cycle attribution: where did every simulated cycle of every unit go?

    The timing engine classifies each unit (AGU, CU, and each DU array)
    once per visited cycle-span into exactly one {!cause}, so for every
    unit the per-cause counters partition its total simulated cycles —
    [total c = Timing.result.cycles], no cycle counted twice or dropped.
    That invariant is what the property tests in [test/test_stats.ml]
    assert, and it is what makes a stall breakdown trustworthy: loss of
    decoupling shows up as CU [Fifo_empty] starvation, §8.2.1 store-queue
    pressure as DU [Lsq_alloc] backpressure.

    Counters are plain int arrays: merging across invocations, jobs and
    runner domains is associative and commutative ({!merge_keyed}), which
    the bench harness relies on when aggregating. *)

type cause =
  | Busy  (** retired/served at least one event this cycle *)
  | Fifo_full  (** blocked pushing into a full downstream FIFO *)
  | Fifo_empty
      (** starved: waiting on an empty (or not-yet-arrived) input FIFO *)
  | Gate_wait
      (** serialized behind an unresolved control gate (Figure 2(b)) *)
  | Sched_wait  (** pipeline pacing: next event's issue slot is in the future *)
  | Lsq_alloc  (** DU: a ready request was turned away by a full LQ/SQ *)
  | Raw_wait  (** DU: loads blocked on unresolved older same-address stores *)
  | Port_contention
      (** DU: more admissible memory operations than the scalar port admits *)
  | Poison_wait
      (** DU: store-queue head awaiting its value/poison verdict from the CU *)
  | Mem_wait  (** DU: only in-flight SRAM accesses; nothing else to do *)
  | Drain  (** finished (or empty) while the rest of the machine runs *)
  | Mshr_full
      (** DU (hierarchy mode): an admissible load missed but every MSHR is
          occupied — the non-blocking cache turned it away this cycle *)
  | Dram_bank
      (** DU (hierarchy mode): in-flight misses only, and the oldest one
          was delayed by DRAM bank/bus contention rather than pure latency *)

val all_causes : cause list
(** Every cause, in declaration order — also the canonical render order. *)

val cause_name : cause -> string
(** Stable snake_case identifier, used in JSON and table headers. *)

type t
(** A mutable counter set: one int per {!cause}. *)

val create : unit -> t
val copy : t -> t

val of_busy : int -> t
(** A counter set with [cycles] attributed to {!Busy} — the whole
    attribution of a single-unit statically-scheduled (STA) run. *)

val add : t -> cause -> int -> unit
(** [add t c span] attributes [span] cycles to cause [c]. *)

val get : t -> cause -> int

val total : t -> int
(** Sum over all causes — must equal the unit's total simulated cycles. *)

val merge_into : dst:t -> t -> unit
val merge : t -> t -> t

val equal : t -> t -> bool

val to_list : t -> (string * int) list
(** [(cause_name, count)] in {!all_causes} order. The pre-hierarchy causes
    are always present; [Mshr_full]/[Dram_bank] are appended only when
    nonzero, so scratchpad-mode output is byte-identical to older
    versions. *)

type keyed = (string * t) list
(** Per-unit counter sets, sorted by unit name ("AGU", "CU", "DU:a", …). *)

val merge_keyed : keyed -> keyed -> keyed
(** Key-wise {!merge}; the result is sorted by key. Associative and
    commutative up to the sort, so any fold order over per-job results —
    serial or from the domain pool — aggregates identically. *)

val equal_keyed : keyed -> keyed -> bool

val pp_table : total_cycles:int -> keyed Fmt.t
(** One row per unit: total, then each cause as cycles and percent of
    [total_cycles]. *)
