(** Trace-driven re-timing: functional execution once, timing replay many.

    {!Machine.simulate} entangles two very different costs: the functional
    co-simulation (interpret both slices, serve memory, golden-check) and
    the timing replay (schedule the recorded channel events against bounded
    FIFOs). Only the replay depends on the configuration — {!Exec} takes no
    [Config.t], and for ORACLE the {!Timing.oracle_filter} is likewise
    config-independent — so a design-space sweep that re-runs {!Exec} per
    point does the expensive half of the work [|grid|] times for nothing.

    This module splits the pipeline at that seam:

    + {!plan} compiles a kernel for one architecture (slice, lower, digest)
      without executing anything — enough to form a cache key;
    + {!prepare} runs the functional execution once over the invocation
      sequence, golden-checks every invocation, oracle-filters when the
      plan is for {!Machine.Oracle}, and persists the compact traces;
    + {!simulate} replays the stored traces under an arbitrary
      configuration and returns a {!Machine.result} that is cycle-identical
      (cycles, stall partitions, deadlock verdicts) to a full
      [Machine.simulate] at the same configuration — the equivalence the
      qcheck suite in [test/test_retime.ml] pins across the kernel suite
      and randomized CFGs.

    STA is supported through the same interface: {!prepare} stores the
    golden runs, and {!simulate} re-derives cycles via
    {!Sta.cycles_of_run} (its initiation interval does depend on the
    configuration's port counts).

    One [prepare] costs the same as one [Machine.simulate]; each further
    configuration costs only the replay — on the evaluation suite that is
    the difference between a 9-job smoke run and a 17 000-point sweep in
    the same wall-clock budget. *)

open Dae_ir

type plan
(** A compiled, lowered, digested kernel×architecture — no execution yet. *)

val plan :
  ?partition:Dae_core.Decouple.assignment -> Machine.arch -> Func.t -> plan
(** Compile [f] for [arch]: slice + {!Lower.compile} for the decoupled
    architectures, {!Sta.analyze}-ready for STA. Pure compilation — cheap
    enough to form cache keys for points that will never be simulated.
    [partition] slices along an N-way address-stream assignment (arch
    {!Machine.Dae} only; default: the classic 2-way split). The partition
    is baked into the lowered unit programs, so {!plan_digest} already
    distinguishes N-way plans. *)

val plan_digest : plan -> string
(** Content identity of the plan: architecture name plus
    {!Lower.digest} (decoupled) or a digest of the printed IR (STA).
    Equal digests make {!simulate} results interchangeable for the same
    invocation sequence and initial memory — the result cache's key folds
    this together with a workload-instance id and {!Config.key}. *)

val arch : plan -> Machine.arch

val pipeline : plan -> Dae_core.Pipeline.t option
(** The compiled pipeline ([None] for STA) — the sweep engine feeds it to
    the static sizing analyzer without recompiling. *)

type prepared
(** Executed traces plus everything {!simulate} needs: per-invocation
    trace pairs (post oracle-filter), golden runs (STA), kill/commit
    counts, final memory, load subscribers. *)

exception Check_failed of string
(** Re-raise of {!Machine.Check_failed}: some invocation's functional run
    disagreed with the sequential golden model. *)

val prepare :
  plan ->
  invocations:Machine.invocation list ->
  mem:Interp.Memory.t ->
  prepared
(** Run the functional half once. [mem] is copied, never mutated.
    @raise Check_failed on golden disagreement. *)

val final_memory : prepared -> Interp.Memory.t
(** Final memory after the prepared invocation sequence — what
    {!simulate} returns in [Machine.result.memory]. Lets a cache-hit path
    rebuild a result's memory without a replay; shared, treat as
    read-only. *)

val trace_digest : prepared -> string
(** Digest of the stored per-invocation traces ({!Trace.digest} folded
    over all units, STA: over golden iteration counts). The sweep
    engine's sampled cross-checks compare this against a fresh
    [Machine.simulate ~collect:true] replay to prove the persisted traces
    are the ones a full co-simulation would have produced. *)

val simulate :
  ?validate:bool ->
  ?w:Area.weights ->
  ?collect:bool ->
  ?record_mem:bool ->
  ?max_cycles:int ->
  cfg:Config.t ->
  prepared ->
  Machine.result
(** Re-time the stored traces under [cfg]. Cycle-identical to
    [Machine.simulate ~cfg] on the same kernel/invocations/memory —
    including {!Machine.result.stats} partitions and raised
    {!Timing.Deadlock}s. The returned [memory] field is shared between
    calls on one [prepared] (timing cannot change it); treat it as
    read-only. [validate] defaults to true; deadlock-boundary probes pass
    [~validate:false] to re-time under a rejected configuration.
    @raise Invalid_argument on an invalid configuration (when [validate]).
    @raise Timing.Deadlock when the configuration deadlocks the replay. *)
