(** One-time lowering of compiled slices to a dense micro-op form.

    {!compile} renumbers SSA values to contiguous slots, channel arrays and
    memory ids to small ints, precomputes φ-copy lists per CFG edge, dense
    branch targets, serializing-consume sets and per-event trace metadata —
    everything the co-simulation interpreter ({!Exec}) would otherwise
    recompute per dynamic instruction or per invocation. The result is
    immutable: compile once per pipeline, run every invocation (and domain)
    over it. *)

open Dae_ir

type operand = Slot of int | Imm of int  (** booleans encoded 0/1 *)

type copy = { c_dst : int; c_src : operand }

type uop =
  | Ubinop of { dst : int; op : Instr.binop; a : operand; b : operand }
  | Ucmp of { dst : int; op : Instr.cmp; a : operand; b : operand }
  | Uselect of { dst : int; c : operand; a : operand; b : operand }
  | Unot of { dst : int; a : operand }
  | Usend_ld of { arr : int; idx : operand; mem : int; meta : int }
  | Usend_st of { arr : int; idx : operand; mem : int; meta : int }
  | Uconsume of { dst : int; mem : int; cid : int; meta : int }
  | Uproduce of { arr : int; value : operand; mem : int; meta : int }
  | Upoison of { arr : int; mem : int; meta : int }

type term =
  | Tbr of int
  | Tcond of operand * int * int
  | Tswitch of operand * int array  (** selector clamped to the array *)
  | Tret

type blk = {
  orig_bid : int;  (** for diagnostics *)
  uops : uop array;
  term : term;
  gate : int array;
      (** dense consume indices the terminator transitively depends on;
          [[||]] means not serializing (no Gate event) *)
  phis : (int * copy array) array;
      (** dense predecessor -> simultaneous slot copies, φ order *)
  is_hot : bool;  (** the hot loop header: iteration boundary *)
}

type uprog = {
  u_unit : Trace.unit_id;
  u_name : string;
  entry : int;
  blocks : blk array;
  n_slots : int;
  n_consumes : int;
  max_phis : int;  (** widest φ section, sizes the copy scratch *)
  params : (string * int) list;  (** parameter name -> slot *)
  control_synchronized : bool;
}

type t = {
  agu : uprog;
  aus : uprog array;
      (** extra access units 1 .. n-1 of an N-way partition; [[||]] for the
          classic 2-way split *)
  cu : uprog;
  arrays : string array;  (** dense array id -> name, sorted *)
  n_mems : int;
  subscribers : int array array;
      (** load mem -> unit indices ({!Trace.unit_index}) to fan the value to *)
}

val units : t -> uprog array
(** All unit programs in dense {!Trace.unit_index} order
    \[agu; cu; au1; ...\]. *)

val compile : Dae_core.Pipeline.t -> t

val digest : t -> Digest.t
(** Content digest of the whole lowered program (both units' micro-ops,
    tables and static analyses). Two pipelines with equal digests execute
    and re-time identically, so the on-disk result cache ({!Cache}) keys
    on this — computable without running a single invocation. *)

val array_table : Dae_core.Pipeline.t -> string array
(** The dense array-name table {!compile} interns (sorted union of both
    slices' channel arrays) — exposed so the reference interpreter emits
    traces over the identical table. *)

(** {1 Static analyses}

    Computed once here per pipeline; also used by {!Exec.Reference}. *)

val hot_header : Func.t -> int option
(** The innermost loop header with the most channel operations: the
    iteration boundary for trace purposes. *)

val control_consume_ids : Func.t -> (int, unit) Hashtbl.t
(** Consume instructions whose value transitively reaches a terminator. *)

val serializing_terminators : Func.t -> (int, int list) Hashtbl.t
(** Block id -> consume ids its terminator condition transitively depends
    on (the paper's Figure 2(b) serialization points). *)
