(* Trace-driven re-timing (see retime.mli).

   The seam this module exploits is structural: Exec.run_lowered takes no
   Config.t, and Timing.oracle_filter is likewise config-independent, so
   everything up to and including the recorded traces is identical across
   every point of a configuration sweep. [prepare] does that half once;
   [simulate] is then Timing.run per stored invocation plus the (cheap,
   config-dependent) area model.

   Equivalence with Machine.simulate is not by delegation — Machine keeps
   its own fused loop — but by construction plus the property suite in
   test/test_retime.ml: same compile, same lowering, same per-invocation
   trace threading, same Timing.run arguments, same stats merge order. *)

open Dae_ir

exception Check_failed of string

type decoupled_plan = {
  p_pipeline : Dae_core.Pipeline.t;
  p_lowered : Lower.t;
  p_subscribers : (int * Trace.unit_id list) list;
}

type plan = {
  pl_arch : Machine.arch;
  pl_func : Func.t;
  pl_digest : string;
  pl_dec : decoupled_plan option; (* None for STA *)
}

let plan ?(partition = Dae_core.Decouple.trivial) (arch : Machine.arch)
    (f : Func.t) : plan =
  match arch with
  | Machine.Sta ->
    (* the printed IR is the canonical byte form of a function *)
    let digest =
      Digest.to_hex (Digest.string (Fmt.str "%a" Printer.pp_func f))
    in
    {
      pl_arch = arch;
      pl_func = f;
      pl_digest = "STA:" ^ digest;
      pl_dec = None;
    }
  | Machine.Dae | Machine.Spec | Machine.Oracle ->
    let mode =
      match arch with
      | Machine.Dae -> Dae_core.Pipeline.Dae
      | _ -> Dae_core.Pipeline.Spec
    in
    let p = Dae_core.Pipeline.compile ~mode ~partition f in
    (* the partition is baked into the lowered unit programs, so
       Lower.digest below already distinguishes N-way plans *)
    let lowered = Lower.compile p in
    let subscribers =
      List.map
        (fun (m, subs) ->
          ( m,
            List.map
              (function
                | `Agu -> Trace.Agu
                | `Cu -> Trace.Cu
                | `Au k -> Trace.Au k)
              subs ))
        p.Dae_core.Pipeline.load_subscribers
    in
    {
      pl_arch = arch;
      pl_func = f;
      (* SPEC and ORACLE share a lowering (mode Spec); the arch prefix
         keeps their identities distinct — ORACLE filters its traces *)
      pl_digest =
        Machine.arch_name arch ^ ":" ^ Digest.to_hex (Lower.digest lowered);
      pl_dec =
        Some { p_pipeline = p; p_lowered = lowered; p_subscribers = subscribers };
    }

let plan_digest p = p.pl_digest
let arch p = p.pl_arch

let pipeline p =
  match p.pl_dec with None -> None | Some d -> Some d.p_pipeline

type prepared = {
  pr_plan : plan;
  pr_invocations : int;
  pr_traces : Trace.unit_trace array array;
      (* per invocation, dense unit order [agu; cu; au1; ...], post
         oracle-filter; [||] for STA *)
  pr_golden_runs : Interp.result array;
      (* STA only: cycles are cfg-dependent (port pressure bounds the II),
         so the golden runs are stored and re-derived per configuration *)
  pr_killed : int;
  pr_committed : int;
  pr_memory : Interp.Memory.t; (* final memory after all invocations *)
}

let prepare (plan : plan) ~(invocations : Machine.invocation list)
    ~(mem : Interp.Memory.t) : prepared =
  match plan.pl_dec with
  | None ->
    (* STA: the functional half is the sequence of golden runs; cycles
       are re-derived per configuration from their iteration counts *)
    let mem = Interp.Memory.copy mem in
    let goldens =
      Array.of_list
        (List.map (fun args -> Interp.run plan.pl_func ~args ~mem) invocations)
    in
    {
      pr_plan = plan;
      pr_invocations = List.length invocations;
      pr_traces = [||];
      pr_golden_runs = goldens;
      pr_killed = 0;
      pr_committed = 0;
      pr_memory = mem;
    }
  | Some dec ->
    let p = dec.p_pipeline in
    let sim_mem = Interp.Memory.copy mem in
    let golden_mem = Interp.Memory.copy mem in
    let killed = ref 0 and committed = ref 0 in
    let traces =
      Array.of_list
        (List.map
           (fun args ->
             let golden =
               Interp.run p.Dae_core.Pipeline.original ~args ~mem:golden_mem
             in
             let r = Exec.run_lowered dec.p_lowered ~args ~mem:sim_mem in
             (match Exec.check_against_golden ~golden_mem ~golden r with
             | Ok () -> ()
             | Error msg ->
               raise
                 (Check_failed
                    (Fmt.str "%s/%s: %s" plan.pl_func.Func.name
                       (Machine.arch_name plan.pl_arch)
                       msg)));
             killed := !killed + r.Exec.killed_stores;
             committed := !committed + r.Exec.committed_stores;
             match plan.pl_arch with
             | Machine.Oracle ->
               let agu_tr, cu_tr =
                 Timing.oracle_filter r.Exec.agu_trace r.Exec.cu_trace
               in
               [| agu_tr; cu_tr |]
             | _ -> Exec.traces r)
           invocations)
    in
    {
      pr_plan = plan;
      pr_invocations = Array.length traces;
      pr_traces = traces;
      pr_golden_runs = [||];
      pr_killed = !killed;
      pr_committed = !committed;
      pr_memory = sim_mem;
    }

let final_memory (pr : prepared) = pr.pr_memory

let trace_digest (pr : prepared) =
  match pr.pr_plan.pl_dec with
  | None ->
    Digest.to_hex
      (Digest.string
         (String.concat ";"
            (Array.to_list
               (Array.map
                  (fun (g : Interp.result) -> string_of_int g.Interp.steps)
                  pr.pr_golden_runs))))
  | Some _ ->
    Digest.to_hex
      (Digest.string
         (String.concat ""
            (Array.to_list
               (Array.map
                  (fun trs ->
                    String.concat ""
                      (Array.to_list (Array.map Trace.digest trs)))
                  pr.pr_traces))))

let simulate ?(validate = true) ?(w = Area.default_weights)
    ?(collect = false) ?(record_mem = false) ?max_cycles ~(cfg : Config.t)
    (pr : prepared) : Machine.result =
  if validate then Config.validate cfg;
  let plan = pr.pr_plan in
  match plan.pl_dec with
  | None ->
    let cycles =
      Array.fold_left
        (fun acc golden ->
          acc + (Sta.cycles_of_run ~cfg plan.pl_func golden).Sta.cycles)
        0 pr.pr_golden_runs
    in
    {
      Machine.arch = plan.pl_arch;
      cycles;
      invocations = pr.pr_invocations;
      killed_stores = 0;
      committed_stores = 0;
      misspec_rate = 0.0;
      area = Area.sta ~w plan.pl_func;
      memory = pr.pr_memory;
      pipeline = None;
      stats = [ ("STA", Stats.of_busy cycles) ];
      timelines = [];
      mem_events = [];
    }
  | Some dec ->
    let cycles = ref 0 in
    let stats = ref [] in
    let timelines = ref [] in
    let mem_events = ref [] in
    Array.iteri
      (fun i trs ->
        let timed =
          Timing.run_units ~cfg ~validate:false ?max_cycles
            ~record_depths:collect ~record_mem
            ~subscribers:dec.p_subscribers trs
        in
        cycles := !cycles + timed.Timing.cycles;
        stats := Stats.merge_keyed !stats timed.Timing.stats;
        if record_mem then
          mem_events := timed.Timing.mem_events :: !mem_events;
        if collect then
          timelines :=
            {
              Machine.t_invocation = i;
              t_agu = trs.(0);
              t_aus = Array.sub trs 2 (Array.length trs - 2);
              t_cu = trs.(1);
              t_timing = timed;
            }
            :: !timelines)
      pr.pr_traces;
    let total = pr.pr_killed + pr.pr_committed in
    {
      Machine.arch = plan.pl_arch;
      cycles = !cycles;
      invocations = pr.pr_invocations;
      killed_stores = pr.pr_killed;
      committed_stores = pr.pr_committed;
      misspec_rate =
        (if total = 0 then 0.0
         else float_of_int pr.pr_killed /. float_of_int total);
      area =
        (match plan.pl_arch with
        | Machine.Oracle ->
          Area.decoupled ~w ~cfg ~ignore_poison:true dec.p_pipeline
        | _ -> Area.decoupled ~w ~cfg dec.p_pipeline);
      memory = pr.pr_memory;
      pipeline = Some dec.p_pipeline;
      stats = !stats;
      timelines = List.rev !timelines;
      mem_events = List.rev !mem_events;
    }
