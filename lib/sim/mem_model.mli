(** Executable operational model of the LSQ's memory-ordering rules — the
    specification side of the differential memory-model harness
    (test/test_mem.ml), in the style of Zhang–Vijayaraghavan–Arvind's
    operational framework: every committed load/store event the timing
    engine records ([Timing.run ~record_mem]) is replayed against an
    abstract per-array store-queue machine, and any step the model's rules
    do not admit is a violation.

    The rules checked, per array (program order = the AGU's [seq] tags):

    - store lifecycle: allocate → resolve (ready/poisoned) → commit/kill,
      each phase exactly once, resolves in allocation order, and the queue
      exits (commits {e and} kills) strictly in program order — the
      sequential-consistency lemma's committed-order half (paper §6);
    - a committed store writes the address it allocated;
    - a load never issues before all its program-order-older stores have
      allocated (addresses known — the disambiguation precondition);
    - a {e forwarded} load observes a store: no older same-address store
      may still be awaiting its value, and at least one live older
      same-address store must be resolved ready;
    - a {e memory} load observes main memory: every older same-address
      store must have exited or be resolved poisoned (a poisoned store
      never reaches memory), so memory holds exactly the program-order
      prefix of non-killed same-address stores;
    - load completion is strictly after issue;
    - at end of trace every allocated store has exited (no lost stores).

    {b Scope — the memory is age-ordered.} The model deliberately does
    {e not} flag a younger same-address store committing before an older
    load issues (WAR). The engine permits that reorder: the scalar load
    port serializes issues one per cycle, and load-queue backpressure can
    hold an older load back while younger stores drain — e.g. in the [bc]
    kernel a store commits one cycle before the preceding load reaches
    the port. This is sound because the co-simulation binds every load's
    value in program order on the functional side (cross-checked against
    the golden interpreter): the timing engine models a memory system
    with an age-tagged write buffer, where a read always observes the
    snapshot at its own program-order position, so a WAR timing reorder
    can never surface a future value. The properties that {e are} load
    bearing — and checked above — are the committed-order half of the
    sequential-consistency lemma and the RAW/forwarding admissibility
    rules, which the engine must get right for the age-ordering argument
    to hold at all.

    The model is deliberately independent of the timing engine's
    implementation: it sees only the event log, keeps its own queues, and
    re-derives every admissibility decision. *)

type violation = {
  v_index : int;  (** index of the offending event in the log *)
  v_msg : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check : Timing.mem_event array -> violation list
(** Replay one invocation's event log; returns all violations in event
    order (empty = the log is admitted by the model). *)

val check_run : Timing.mem_event array list -> violation list
(** {!check} over a whole [Machine.result.mem_events] run, one cold model
    per invocation (the engine's LSQ state does not persist across
    invocations either). *)
