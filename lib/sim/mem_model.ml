(* Operational LSQ memory-ordering model (see mem_model.mli).

   State is per array: a growable vector of store records in allocation
   order plus cursors for the resolve and exit fronts — a direct
   transcription of the abstract machine, not of the engine's ring
   buffers. Scans are linear in the store count; the harness's generated
   kernels are small, and clarity is the point of a specification. *)

type violation = { v_index : int; v_msg : string }

let pp_violation ppf v = Fmt.pf ppf "event %d: %s" v.v_index v.v_msg

type phase =
  | P_alloc (* address known, value pending *)
  | P_ready (* value arrived, awaiting the store port *)
  | P_poisoned (* mis-speculated, awaiting the kill *)
  | P_committed
  | P_killed

type store = {
  s_seq : int;
  s_addr : int;
  mutable s_phase : phase;
}

type astate = {
  mutable stores : store array; (* allocation order; first [n_stores] live *)
  mutable n_stores : int;
  mutable resolve_front : int; (* next store to receive a value *)
  mutable exit_front : int; (* next store to commit or be killed *)
  mutable last_alloc_seq : int;
}

let new_astate () =
  {
    stores = [||];
    n_stores = 0;
    resolve_front = 0;
    exit_front = 0;
    last_alloc_seq = -1;
  }

let push_store st s =
  if st.n_stores = Array.length st.stores then begin
    let grown = Array.make (max 8 (2 * st.n_stores)) s in
    Array.blit st.stores 0 grown 0 st.n_stores;
    st.stores <- grown
  end;
  st.stores.(st.n_stores) <- s;
  st.n_stores <- st.n_stores + 1

let check (events : Timing.mem_event array) : violation list =
  let arrays : (string, astate) Hashtbl.t = Hashtbl.create 8 in
  let state arr =
    match Hashtbl.find_opt arrays arr with
    | Some st -> st
    | None ->
      let st = new_astate () in
      Hashtbl.add arrays arr st;
      st
  in
  let violations = ref [] in
  let bad i fmt = Fmt.kstr (fun m -> violations := { v_index = i; v_msg = m } :: !violations) fmt in
  Array.iteri
    (fun i ev ->
      match (ev : Timing.mem_event) with
      | Ev_st_alloc { arr; seq; addr; t = _ } ->
        let st = state arr in
        if seq <= st.last_alloc_seq then
          bad i "%s: store %d allocated out of program order (last %d)" arr
            seq st.last_alloc_seq;
        st.last_alloc_seq <- seq;
        push_store st { s_seq = seq; s_addr = addr; s_phase = P_alloc }
      | Ev_st_resolve { arr; seq; poisoned; t = _ } ->
        let st = state arr in
        if st.resolve_front >= st.n_stores then
          bad i "%s: store value %d arrived with no awaiting allocation" arr
            seq
        else begin
          let s = st.stores.(st.resolve_front) in
          if s.s_seq <> seq then
            bad i
              "%s: store %d resolved out of allocation order (front is %d)"
              arr seq s.s_seq;
          if s.s_phase <> P_alloc then
            bad i "%s: store %d resolved twice" arr seq;
          s.s_phase <- (if poisoned then P_poisoned else P_ready);
          st.resolve_front <- st.resolve_front + 1
        end
      | Ev_st_commit { arr; seq; addr; t = _ } ->
        let st = state arr in
        if st.exit_front >= st.n_stores then
          bad i "%s: store %d committed but was never allocated" arr seq
        else begin
          let s = st.stores.(st.exit_front) in
          if s.s_seq <> seq then
            bad i "%s: store %d committed out of program order (front is %d)"
              arr seq s.s_seq
          else begin
            if s.s_phase <> P_ready then
              bad i "%s: store %d committed without a ready value" arr seq;
            if s.s_addr <> addr then
              bad i "%s: store %d committed to %d but allocated %d" arr seq
                addr s.s_addr;
            s.s_phase <- P_committed;
            st.exit_front <- st.exit_front + 1
          end
        end
      | Ev_st_kill { arr; seq; t = _ } ->
        let st = state arr in
        if st.exit_front >= st.n_stores then
          bad i "%s: store %d killed but was never allocated" arr seq
        else begin
          let s = st.stores.(st.exit_front) in
          if s.s_seq <> seq then
            bad i "%s: store %d killed out of program order (front is %d)"
              arr seq s.s_seq
          else begin
            if s.s_phase <> P_poisoned then
              bad i "%s: store %d killed without a poison verdict" arr seq;
            s.s_phase <- P_killed;
            st.exit_front <- st.exit_front + 1
          end
        end
      | Ev_ld_issue { arr; seq; addr; older_sts; forwarded; t; complete_at }
        ->
        let st = state arr in
        if complete_at <= t then
          bad i "%s: load %d completes at %d, not after issue at %d" arr seq
            complete_at t;
        (* disambiguation precondition: every program-order-older store
           has its address in the queue *)
        if st.n_stores < older_sts then
          bad i
            "%s: load %d issued with %d/%d older stores allocated"
            arr seq st.n_stores older_sts;
        (* classify the program-order-older same-address stores; younger
           stores are out of scope — the memory is age-ordered (see the
           interface), so WAR timing reorders are benign by construction *)
        let awaiting = ref 0 and live_ready = ref 0 in
        for k = 0 to st.n_stores - 1 do
          let s = st.stores.(k) in
          if s.s_addr = addr && s.s_seq < seq then
            match s.s_phase with
            | P_alloc -> incr awaiting
            | P_ready -> incr live_ready
            | P_poisoned | P_committed | P_killed -> ()
        done;
        if !awaiting > 0 then
          bad i
            "%s: load %d issued past %d older same-address store(s) still \
             awaiting their value"
            arr seq !awaiting;
        if forwarded then begin
          if !live_ready = 0 then
            bad i
              "%s: load %d forwarded with no live ready same-address store"
              arr seq
        end
        else if !live_ready > 0 then
          bad i
            "%s: load %d read memory past %d uncommitted ready same-address \
             store(s)"
            arr seq !live_ready)
    events;
  (* end of trace: no store may be left in the queue *)
  Hashtbl.iter
    (fun arr st ->
      for k = st.exit_front to st.n_stores - 1 do
        bad (Array.length events)
          "%s: store %d never exited the queue (phase at end: %s)" arr
          st.stores.(k).s_seq
          (match st.stores.(k).s_phase with
          | P_alloc -> "allocated"
          | P_ready -> "ready"
          | P_poisoned -> "poisoned"
          | P_committed -> "committed"
          | P_killed -> "killed")
      done)
    arrays;
  List.rev !violations

let check_run (runs : Timing.mem_event array list) : violation list =
  List.concat_map check runs
