(* Banked non-blocking cache + DRAM timing model (see mem.mli).

   Determinism is load-bearing: the differential harness replays Machine
   and Retime runs against each other, and the result cache memoizes
   re-timed points by config key. Every structure here is a fixed-size
   array scanned in index order, and the LRU tie-break is a monotonic
   access counter — no hashing, no physical time.

   A line is identified by [(arr lsl 24) lor (addr / line_words)]: array
   ids are dense per-run indices assigned by the timing engine in DU
   creation order, so distinct arrays never alias. Cache bank and DRAM
   bank are both line-interleaved. *)

type mshr = {
  mutable m_line : int; (* line in flight; -1 = never used *)
  mutable m_fill_at : int; (* cycle the fill completes; free iff <= now *)
  mutable m_delayed : bool; (* DRAM start was pushed past allocation time *)
}

type t = {
  geom : Config.cache_geom;
  (* tags.(bank).(set * ways + way) = line id, or -1 when invalid *)
  tags : int array array;
  (* lru.(bank).(set * ways + way) = last-access stamp (monotonic) *)
  lru : int array array;
  mutable stamp : int;
  mshrs : mshr array;
  (* Cached running minimum over the in-flight fills ([max_int] when none
     are in flight), so [next_wake] and the hit fast path never scan the
     pool. Maintained by [refresh]: allocation folds the new fill time
     in; once time passes the minimum, the next call batch-reclaims every
     retired MSHR and recomputes it. *)
  mutable fill_min : int;
  (* Free MSHR indices, lowest index on top ([free_top - 1]), rebuilt by
     the same batched reclaim — popping matches the seed's first-free
     scan choice exactly. *)
  free_stack : int array;
  mutable free_top : int;
  (* DRAM: per-bank open row (-1 = closed) and busy-until times *)
  open_row : int array;
  bank_free_at : int array;
  mutable bus_free_at : int;
}

let create (geom : Config.cache_geom) =
  {
    geom;
    tags =
      Array.init geom.banks (fun _ -> Array.make (geom.sets * geom.ways) (-1));
    lru =
      Array.init geom.banks (fun _ -> Array.make (geom.sets * geom.ways) 0);
    stamp = 0;
    mshrs =
      Array.init geom.mshrs (fun _ ->
          { m_line = -1; m_fill_at = min_int; m_delayed = false });
    fill_min = max_int;
    free_stack = Array.init geom.mshrs (fun i -> geom.mshrs - 1 - i);
    free_top = geom.mshrs;
    open_row = Array.make geom.dram.dram_banks (-1);
    bank_free_at = Array.make geom.dram.dram_banks 0;
    bus_free_at = 0;
  }

(* Lazy batched retirement: fills only leave flight as time advances, so
   the cached minimum goes stale exactly when [now] reaches it. One pass
   then reclaims every retired MSHR at once (free stack, lowest index on
   top) and recomputes the minimum over the fills still in flight. *)
let refresh t ~now =
  if t.fill_min <= now then begin
    let best = ref max_int in
    t.free_top <- 0;
    for i = Array.length t.mshrs - 1 downto 0 do
      let m = t.mshrs.(i) in
      if m.m_fill_at > now then begin
        if m.m_fill_at < !best then best := m.m_fill_at
      end
      else begin
        t.free_stack.(t.free_top) <- i;
        t.free_top <- t.free_top + 1
      end
    done;
    t.fill_min <- !best
  end

type load_outcome =
  | Load_done of { complete_at : int; delayed : bool }
  | Load_mshr_full

let line_of t ~arr ~addr = (arr lsl 24) lor (addr / t.geom.line_words)
let cache_bank t line = line mod t.geom.banks
let cache_set t line = line / t.geom.banks mod t.geom.sets

(* Probe the set for [line]; on hit refresh its LRU stamp. *)
let probe t line =
  let b = cache_bank t line and s = cache_set t line in
  let tags = t.tags.(b) and lru = t.lru.(b) in
  let base = s * t.geom.ways in
  let hit = ref false in
  for w = 0 to t.geom.ways - 1 do
    if tags.(base + w) = line then begin
      hit := true;
      t.stamp <- t.stamp + 1;
      lru.(base + w) <- t.stamp
    end
  done;
  !hit

(* Install [line] into its set, evicting the least-recently-used way.
   Write-through keeps lines clean, so eviction is silent. *)
let install t line =
  let b = cache_bank t line and s = cache_set t line in
  let tags = t.tags.(b) and lru = t.lru.(b) in
  let base = s * t.geom.ways in
  let victim = ref 0 in
  for w = 1 to t.geom.ways - 1 do
    if lru.(base + w) < lru.(base + !victim) then victim := w
  done;
  tags.(base + !victim) <- line;
  t.stamp <- t.stamp + 1;
  lru.(base + !victim) <- t.stamp

(* One DRAM transaction for [line] starting no earlier than [now]:
   open-row hit or row switch on the line's bank, then [t_bus] cycles on
   the shared data bus. Returns (finish time, delayed-start flag). *)
let dram_access t ~now line =
  let d = t.geom.dram in
  let b = line mod d.dram_banks in
  let row = line / max 1 (d.row_words / t.geom.line_words) in
  let start = max now (max t.bank_free_at.(b) t.bus_free_at) in
  let lat = if t.open_row.(b) = row then d.t_row_hit else d.t_row_miss in
  t.open_row.(b) <- row;
  let finish = start + lat + d.t_bus in
  t.bank_free_at.(b) <- finish;
  t.bus_free_at <- finish;
  (finish, start > now)

let load t ~now ~arr ~addr =
  let line = line_of t ~arr ~addr in
  refresh t ~now;
  (* Fresh miss: pop the free stack — the lowest free index, the same
     MSHR the seed's first-free scan would have picked. *)
  let alloc_miss () =
    if t.free_top = 0 then Load_mshr_full
    else begin
      t.free_top <- t.free_top - 1;
      let m = t.mshrs.(t.free_stack.(t.free_top)) in
      let finish, delayed = dram_access t ~now line in
      let complete_at = finish + t.geom.hit_latency in
      m.m_line <- line;
      m.m_fill_at <- complete_at;
      m.m_delayed <- delayed;
      if complete_at < t.fill_min then t.fill_min <- complete_at;
      install t line;
      Load_done { complete_at; delayed }
    end
  in
  if t.fill_min = max_int then
    (* Fast path: nothing in flight — no merge can hit and the whole
       pool is free, so a cache hit completes in two array reads and a
       miss allocates without scanning the MSHRs. *)
    if probe t line then
      Load_done { complete_at = now + t.geom.hit_latency; delayed = false }
    else alloc_miss ()
  else begin
    (* A fill in flight takes precedence over the tag array: the tag is
       installed at allocation, but its data only arrives at m_fill_at. *)
    let merged = ref None in
    Array.iter
      (fun m ->
        if m.m_line = line && m.m_fill_at > now && !merged = None then
          merged := Some m)
      t.mshrs;
    match !merged with
    | Some m -> Load_done { complete_at = m.m_fill_at; delayed = false }
    | None ->
        if probe t line then
          Load_done { complete_at = now + t.geom.hit_latency; delayed = false }
        else alloc_miss ()
  end

let store t ~now ~arr ~addr =
  let line = line_of t ~arr ~addr in
  (* Write-through, no-allocate: refresh LRU on a write hit, never
     install on a write miss. The DRAM transaction is posted — the
     commit port does not wait for it — but it occupies the bank and
     bus, which is how store traffic delays load misses. *)
  ignore (probe t line : bool);
  ignore (dram_access t ~now line : int * bool)

let next_wake t ~now =
  refresh t ~now;
  if t.fill_min = max_int then None else Some t.fill_min
