(* One-time lowering of compiled slices to a dense micro-op form.

   The tree-walking co-simulator paid per *dynamic* instruction for work
   that only depends on the *static* slice: Hashtbl value-environment
   probes, string-keyed channel lookup, `List.nth` instruction fetch,
   φ-incoming association lists, and three whole-function analyses
   (hot header, control-feeding consumes, serializing terminators) redone
   on every invocation. This pass pays all of it once per pipeline:

   - SSA value ids are renumbered to a contiguous slot array, so the
     interpreter's environment is two flat arrays (value + pending cell);
   - channel arrays and memory ids become small dense ints shared by both
     units; the table maps back to names for diagnostics;
   - φ-copy lists are precomputed per CFG edge as (dst slot, src operand)
     arrays, branch targets become dense block indices, and switch target
     lists become arrays;
   - each channel micro-op carries its pre-packed trace word 0
     ({!Trace.pack_meta}), so recording an event is four int stores;
   - serializing-consume sets per terminator are resolved to dense consume
     indices, and the hot loop header is a per-block flag.

   The result is immutable and shared across invocations and domains
   (Machine compiles once, runs many). *)

open Dae_ir

type operand = Slot of int | Imm of int  (* booleans encoded 0/1 *)

type copy = { c_dst : int; c_src : operand }

type uop =
  | Ubinop of { dst : int; op : Instr.binop; a : operand; b : operand }
  | Ucmp of { dst : int; op : Instr.cmp; a : operand; b : operand }
  | Uselect of { dst : int; c : operand; a : operand; b : operand }
  | Unot of { dst : int; a : operand }
  | Usend_ld of { arr : int; idx : operand; mem : int; meta : int }
  | Usend_st of { arr : int; idx : operand; mem : int; meta : int }
  | Uconsume of { dst : int; mem : int; cid : int; meta : int }
  | Uproduce of { arr : int; value : operand; mem : int; meta : int }
  | Upoison of { arr : int; mem : int; meta : int }

type term =
  | Tbr of int
  | Tcond of operand * int * int
  | Tswitch of operand * int array  (* selector clamped to the array *)
  | Tret

type blk = {
  orig_bid : int;  (* for diagnostics *)
  uops : uop array;
  term : term;
  gate : int array;
      (* dense consume indices the terminator transitively depends on;
         [||] means the terminator is not serializing (no Gate event) *)
  phis : (int * copy array) array;
      (* dense predecessor -> simultaneous slot copies, φ order *)
  is_hot : bool;  (* the hot loop header: iteration boundary *)
}

type uprog = {
  u_unit : Trace.unit_id;
  u_name : string;
  entry : int;
  blocks : blk array;
  n_slots : int;
  n_consumes : int;
  max_phis : int;  (* widest φ section, sizes the copy scratch *)
  params : (string * int) list;  (* parameter name -> slot *)
  control_synchronized : bool;
}

type t = {
  agu : uprog;
  aus : uprog array; (* extra access units 1 .. n-1; [||] for 2-way *)
  cu : uprog;
  arrays : string array;  (* dense array id -> name, sorted *)
  n_mems : int;
  subscribers : int array array;
      (* load mem -> unit indices ({!Trace.unit_index}) to fan the value to *)
}

let units (t : t) : uprog array =
  Array.append [| t.agu; t.cu |] t.aus

(* --- static analyses (once per pipeline, shared with Exec.Reference) ----- *)

(* The innermost loop header with the most channel operations: iteration
   boundaries for trace purposes. *)
let hot_header (f : Func.t) : int option =
  let loops = Loops.compute f in
  let channel_ops_in body =
    List.fold_left
      (fun acc bid ->
        acc
        + List.length
            (List.filter
               (fun (i : Instr.t) ->
                 match i.Instr.kind with
                 | Instr.Send_ld_addr _ | Instr.Send_st_addr _
                 | Instr.Consume_val _ | Instr.Produce_val _ | Instr.Poison _
                   ->
                   true
                 | _ -> false)
               (Func.block f bid).Block.instrs))
      0 body
  in
  let candidates =
    List.map
      (fun (l : Loops.loop) -> (l, channel_ops_in l.Loops.body))
      loops.Loops.loops
  in
  let innermost_first =
    List.sort
      (fun ((a : Loops.loop), na) (b, nb) ->
        match compare nb na with
        | 0 -> compare b.Loops.depth a.Loops.depth
        | c -> c)
      candidates
  in
  match innermost_first with
  | (l, n) :: _ when n > 0 -> Some l.Loops.header
  | _ -> None

(* Consume instructions whose value (transitively) reaches a terminator:
   these make the unit control-synchronized. *)
let control_consume_ids (f : Func.t) : (int, unit) Hashtbl.t =
  let du = Defuse.compute f in
  let result = Hashtbl.create 8 in
  let feeds_control v =
    let seen = Hashtbl.create 16 in
    let rec go v =
      (not (Hashtbl.mem seen v))
      && begin
        Hashtbl.replace seen v ();
        Defuse.terminator_users du v <> []
        || List.exists go (Defuse.users du v)
      end
    in
    go v
  in
  Func.iter_instrs f (fun (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Consume_val _ ->
        if feeds_control i.Instr.id then Hashtbl.replace result i.Instr.id ()
      | _ -> ());
  result

(* For each block whose terminator condition transitively depends on
   consumed values: the consume ids it depends on. The unit cannot know its
   downstream FIFO push order before such a branch resolves. *)
let serializing_terminators (f : Func.t) : (int, int list) Hashtbl.t =
  let du = Defuse.compute f in
  let consumes =
    Func.fold_instrs f
      (fun acc (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Consume_val _ -> i.Instr.id :: acc
        | _ -> acc)
      []
  in
  let result = Hashtbl.create 8 in
  if consumes <> [] then
    List.iter
      (fun bid ->
        let b = Func.block f bid in
        let deps =
          List.concat_map
            (fun op ->
              match op with
              | Types.Cst _ -> []
              | Types.Var v ->
                let slice = Defuse.backward_slice du v in
                List.filter (fun c -> Hashtbl.mem slice c) consumes)
            (Block.terminator_operands b)
        in
        if deps <> [] then
          Hashtbl.replace result bid (List.sort_uniq compare deps))
      f.Func.layout;
  result

(* --- array / mem tables -------------------------------------------------- *)

let channel_arrays_and_mems (f : Func.t) =
  Func.fold_instrs f
    (fun ((arrs, mems) as acc) (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Send_ld_addr { arr; mem; _ }
      | Instr.Send_st_addr { arr; mem; _ }
      | Instr.Consume_val { arr; mem }
      | Instr.Produce_val { arr; mem; _ }
      | Instr.Poison { arr; mem } ->
        (arr :: arrs, max mem mems)
      | _ -> acc)
    ([], -1)

(* The dense array-name table all units' traces share: every array named
   by a channel op of any slice, sorted. Iterating it in id order visits
   arrays in the same sorted order the co-simulator's functional DU always
   used, so commit interleaving is unchanged. *)
let array_table (p : Dae_core.Pipeline.t) : string array =
  let a1, _ = channel_arrays_and_mems p.Dae_core.Pipeline.agu in
  let a2, _ = channel_arrays_and_mems p.Dae_core.Pipeline.cu in
  let a3 =
    List.concat_map
      (fun au -> fst (channel_arrays_and_mems au))
      p.Dae_core.Pipeline.aus
  in
  Array.of_list (List.sort_uniq compare (a1 @ a2 @ a3))

(* --- per-unit lowering --------------------------------------------------- *)

let lower_func (uid : Trace.unit_id) (f : Func.t)
    ~(arr_id : (string, int) Hashtbl.t) : uprog =
  let unit = Trace.unit_name uid in
  (* dense block numbering, layout order (layout covers every block) *)
  let bid_of = Hashtbl.create 16 in
  let layout = f.Func.layout in
  List.iteri (fun d bid -> Hashtbl.replace bid_of bid d) layout;
  Hashtbl.iter
    (fun bid _ ->
      if not (Hashtbl.mem bid_of bid) then
        Fmt.invalid_arg "Lower(%s): block bb%d of %s missing from layout" unit
          bid f.Func.name)
    f.Func.blocks;
  let dense bid =
    match Hashtbl.find_opt bid_of bid with
    | Some d -> d
    | None ->
      Fmt.invalid_arg "Lower(%s): branch to unknown bb%d in %s" unit bid
        f.Func.name
  in
  (* slot numbering: params, then φs and value-producing instrs in layout
     order *)
  let slot_of = Hashtbl.create 64 in
  let n_slots = ref 0 in
  let assign vid =
    Hashtbl.replace slot_of vid !n_slots;
    incr n_slots
  in
  List.iter (fun (_, vid) -> assign vid) f.Func.params;
  (* dense consume indices, for gate-dependency tracking *)
  let cid_of = Hashtbl.create 8 in
  let n_consumes = ref 0 in
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter (fun (p : Block.phi) -> assign p.Block.pid) b.Block.phis;
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Binop _ | Instr.Cmp _ | Instr.Select _ | Instr.Not _ ->
            assign i.Instr.id
          | Instr.Consume_val _ ->
            assign i.Instr.id;
            Hashtbl.replace cid_of i.Instr.id !n_consumes;
            incr n_consumes
          | _ -> ())
        b.Block.instrs)
    layout;
  let slot vid =
    match Hashtbl.find_opt slot_of vid with
    | Some s -> s
    | None ->
      Fmt.invalid_arg "Exec(%s): read of undefined %%%d in %s" unit vid
        f.Func.name
  in
  let lower_op : Types.operand -> operand = function
    | Types.Cst (Types.Int n) -> Imm n
    | Types.Cst (Types.Bool b) -> Imm (if b then 1 else 0)
    | Types.Var v -> Slot (slot v)
  in
  let arr name =
    match Hashtbl.find_opt arr_id name with
    | Some a -> a
    | None -> Fmt.invalid_arg "Lower(%s): array %s missing from table" unit name
  in
  let hot = hot_header f in
  let control = control_consume_ids f in
  let serializing = serializing_terminators f in
  let lower_instr (i : Instr.t) : uop =
    match i.Instr.kind with
    | Instr.Binop (op, a, b) ->
      Ubinop { dst = slot i.Instr.id; op; a = lower_op a; b = lower_op b }
    | Instr.Cmp (op, a, b) ->
      Ucmp { dst = slot i.Instr.id; op; a = lower_op a; b = lower_op b }
    | Instr.Select (c, a, b) ->
      Uselect
        { dst = slot i.Instr.id; c = lower_op c; a = lower_op a; b = lower_op b }
    | Instr.Not a -> Unot { dst = slot i.Instr.id; a = lower_op a }
    | Instr.Load _ | Instr.Store _ ->
      Fmt.invalid_arg "Exec(%s): raw memory op survived decoupling: %s" unit
        (Printer.instr_to_string i)
    | Instr.Send_ld_addr { arr = a; idx; mem } ->
      let arr = arr a in
      Usend_ld
        {
          arr;
          idx = lower_op idx;
          mem;
          meta = Trace.pack_meta ~tag:Trace.t_send_ld ~ctrl:false ~arr ~mem;
        }
    | Instr.Send_st_addr { arr = a; idx; mem } ->
      let arr = arr a in
      Usend_st
        {
          arr;
          idx = lower_op idx;
          mem;
          meta = Trace.pack_meta ~tag:Trace.t_send_st ~ctrl:false ~arr ~mem;
        }
    | Instr.Consume_val { arr = a; mem } ->
      let arr = arr a in
      let ctrl = Hashtbl.mem control i.Instr.id in
      Uconsume
        {
          dst = slot i.Instr.id;
          mem;
          cid = Hashtbl.find cid_of i.Instr.id;
          meta = Trace.pack_meta ~tag:Trace.t_consume ~ctrl ~arr ~mem;
        }
    | Instr.Produce_val { arr = a; value; mem } ->
      let arr = arr a in
      Uproduce
        {
          arr;
          value = lower_op value;
          mem;
          meta = Trace.pack_meta ~tag:Trace.t_produce ~ctrl:false ~arr ~mem;
        }
    | Instr.Poison { arr = a; mem } ->
      let arr = arr a in
      Upoison
        { arr; mem; meta = Trace.pack_meta ~tag:Trace.t_kill ~ctrl:false ~arr ~mem }
  in
  let preds = Func.predecessors f in
  let lower_block bid : blk =
    let b = Func.block f bid in
    let phis =
      if b.Block.phis = [] then [||]
      else
        let ps =
          match Hashtbl.find_opt preds bid with Some l -> l | None -> []
        in
        Array.of_list
          (List.map
             (fun pred ->
               ( dense pred,
                 Array.of_list
                   (List.map
                      (fun (p : Block.phi) ->
                        match List.assoc_opt pred p.Block.incoming with
                        | Some op ->
                          { c_dst = slot p.Block.pid; c_src = lower_op op }
                        | None ->
                          Fmt.invalid_arg
                            "Exec(%s): phi %%%d in bb%d lacks entry for bb%d"
                            unit p.Block.pid b.Block.bid pred)
                      b.Block.phis) ))
             ps)
    in
    let term =
      match b.Block.term with
      | Block.Br t -> Tbr (dense t)
      | Block.Cond_br (c, t, e) -> Tcond (lower_op c, dense t, dense e)
      | Block.Switch (c, ts) ->
        Tswitch (lower_op c, Array.of_list (List.map dense ts))
      | Block.Ret _ -> Tret
    in
    let gate =
      match Hashtbl.find_opt serializing bid with
      | Some consume_ids ->
        Array.of_list (List.map (fun c -> Hashtbl.find cid_of c) consume_ids)
      | None -> [||]
    in
    {
      orig_bid = bid;
      uops = Array.of_list (List.map lower_instr b.Block.instrs);
      term;
      gate;
      phis;
      is_hot = (match hot with Some h -> h = bid | None -> false);
    }
  in
  let blocks = Array.of_list (List.map lower_block layout) in
  let max_phis =
    Array.fold_left
      (fun acc b ->
        Array.fold_left (fun acc (_, cs) -> max acc (Array.length cs)) acc b.phis)
      0 blocks
  in
  {
    u_unit = uid;
    u_name = f.Func.name;
    entry = dense f.Func.entry;
    blocks;
    n_slots = !n_slots;
    n_consumes = !n_consumes;
    max_phis;
    params = List.map (fun (name, vid) -> (name, slot vid)) f.Func.params;
    control_synchronized = Hashtbl.length control > 0;
  }

let compile (p : Dae_core.Pipeline.t) : t =
  let arrays = array_table p in
  if Array.length arrays > Trace.max_arr then
    Fmt.invalid_arg "Lower: %d channel arrays exceed the trace encoding"
      (Array.length arrays);
  let arr_id = Hashtbl.create 16 in
  Array.iteri (fun i name -> Hashtbl.replace arr_id name i) arrays;
  let _, m1 = channel_arrays_and_mems p.Dae_core.Pipeline.agu in
  let _, m2 = channel_arrays_and_mems p.Dae_core.Pipeline.cu in
  let m3 =
    List.fold_left
      (fun acc au -> max acc (snd (channel_arrays_and_mems au)))
      (-1) p.Dae_core.Pipeline.aus
  in
  let max_sub_mem =
    List.fold_left
      (fun acc (m, _) -> max acc m)
      (-1) p.Dae_core.Pipeline.load_subscribers
  in
  let n_mems = 1 + max (max m1 m3) (max m2 max_sub_mem) in
  if n_mems > Trace.max_mem then
    Fmt.invalid_arg "Lower: %d memory ids exceed the trace encoding" n_mems;
  let subscribers = Array.make (max n_mems 1) [||] in
  List.iter
    (fun (m, subs) ->
      subscribers.(m) <-
        Array.of_list
          (List.map
             (function
               | `Agu -> Trace.unit_index Trace.Agu
               | `Cu -> Trace.unit_index Trace.Cu
               | `Au k -> Trace.unit_index (Trace.Au k))
             subs))
    p.Dae_core.Pipeline.load_subscribers;
  {
    agu = lower_func Trace.Agu p.Dae_core.Pipeline.agu ~arr_id;
    aus =
      Array.of_list
        (List.mapi
           (fun k au -> lower_func (Trace.Au (k + 1)) au ~arr_id)
           p.Dae_core.Pipeline.aus);
    cu = lower_func Trace.Cu p.Dae_core.Pipeline.cu ~arr_id;
    arrays;
    n_mems;
    subscribers;
  }

(* Content digest of the lowered program. [t] is a closed tree of ints,
   strings, arrays and constant constructors — Marshal gives a canonical
   byte image, and MD5 of that identifies the program's execution and
   re-timing behaviour completely. The result cache keys on this without
   having to run anything. *)
let digest (p : t) = Digest.string (Marshal.to_string p [])
