(** Functional co-simulation of the decoupled machine.

    The AGU and CU slices run as round-robin small-step interpreters over
    unbounded FIFOs; the DU serves each array's request stream in order,
    filling store allocations with (value, poison) tags from the CU and
    committing or dropping them in allocation order. Consumes are issued
    lazily (a value pops when available; only a computational use blocks),
    matching the dataflow CU.

    The fast path interprets the dense micro-op form of {!Lower}; compile
    once with {!Lower.compile} and call {!run_lowered} per invocation.
    {!run} compiles and runs in one go. {!Reference} keeps the original
    tree-walking interpreter as the oracle for the lowering equivalence
    property (test/test_lower.ml).

    The paper's §6 guarantees are checked dynamically on every run:
    {!Stream_mismatch} if the store-value/kill stream ever disagrees with
    the request stream (Lemma 6.1), {!Deadlock} on global non-progress,
    and {!check_against_golden} compares final memory and per-array commit
    order with the sequential interpreter. Diagnostics report unit and
    array {e names}, mapped back from the dense ids. *)

open Dae_ir

exception Deadlock of string
exception Stream_mismatch of string
exception Desync of string

type commit = { c_arr : string; c_addr : int; c_value : int }

type result = {
  memory : Interp.Memory.t;
  agu_trace : Trace.unit_trace;
  au_traces : Trace.unit_trace array;
      (** extra access units 1 .. n-1 of an N-way partition; [[||]] for the
          classic 2-way split *)
  cu_trace : Trace.unit_trace;
  commits : commit list;  (** program order per array *)
  killed_stores : int;
  committed_stores : int;
  loads_served : int;
  agu_steps : int;
  cu_steps : int;
}

val traces : result -> Trace.unit_trace array
(** All unit traces in dense {!Trace.unit_index} order
    \[agu; cu; au1; ...\]. *)

(** [mem] is mutated to the final state.
    @raise Deadlock | Stream_mismatch | Desync as described above. *)
val run_lowered :
  ?fuel:int ->
  Lower.t ->
  args:(string * Types.value) list ->
  mem:Interp.Memory.t ->
  result

(** [Lower.compile] + {!run_lowered}; when running several invocations of
    one pipeline, compile once instead. *)
val run :
  ?fuel:int ->
  Dae_core.Pipeline.t ->
  args:(string * Types.value) list ->
  mem:Interp.Memory.t ->
  result

(** Fraction of store requests whose value was a kill. *)
val misspeculation_rate : result -> float

val check_against_golden :
  golden_mem:Interp.Memory.t ->
  golden:Interp.result ->
  result ->
  (unit, string) Stdlib.result

(** The pre-lowering tree-walking interpreter, unchanged except that it
    records compact traces over the same interned array table — the oracle
    the lowered path is property-tested against. *)
module Reference : sig
  val run :
    ?fuel:int ->
    Dae_core.Pipeline.t ->
    args:(string * Types.value) list ->
    mem:Interp.Memory.t ->
    result
end
