(** Channel-event traces: the functional co-simulation ({!Exec}) records
    each unit's dynamic channel transactions; the timing engine ({!Timing})
    replays them against bounded FIFOs, the LSQ and memory ports without
    re-executing any code.

    Events are stored [stride] unboxed int words apiece in a flat array —
    no per-event allocation when recording, no pointer chasing when
    replaying. Array names are interned into a dense id table shared by
    both units of a pipeline ({!Lower.compile}); {!arr_name} maps ids back
    for diagnostics and export. *)

type unit_id = Agu | Cu | Au of int
(** [Agu] and [Cu] are the classic 2-way pair; [Au k] (k >= 1) is the k-th
    extra access unit of an N-way partition ({!Dae_core.Decouple.run_n}) —
    [Agu] doubles as access unit 0, so the 2-way encoding is unchanged. *)

val unit_name : unit_id -> string

val unit_index : unit_id -> int
(** [Agu] is 0, [Cu] is 1, [Au k] is [k + 1] — for dense per-unit tables.
    The order \[AGU; CU; AU1; ...\] keeps every 2-way table and digest
    bit-identical to the pre-partition encoding. *)

val of_index : int -> unit_id
(** Inverse of {!unit_index}. *)

(** {1 Compact encoding} *)

val t_send_ld : int
val t_send_st : int
val t_consume : int
val t_produce : int
val t_kill : int

val t_gate : int
(** Event tags, [0..5]; the result of {!tag}. *)

val stride : int
(** Words per event in {!unit_trace.data}. *)

val max_arr : int

val max_mem : int
(** Largest dense array id / mem id the word-0 packing can hold. *)

val pack_meta : tag:int -> ctrl:bool -> arr:int -> mem:int -> int
(** Pre-pack an event's word 0 (tag, feeds-control bit, array id, mem id). *)

type unit_trace = {
  unit : unit_id;
  data : int array;  (** [stride] words per event *)
  n : int;  (** number of events *)
  arrays : string array;  (** dense array id -> name, shared per pipeline *)
  iterations : int;  (** hot-loop trips, 0 when the unit never looped *)
  control_synchronized : bool;
      (** some consumed value feeds a branch of this unit *)
}

val length : unit_trace -> int
val tag : unit_trace -> int -> int
val feeds_control : unit_trace -> int -> bool
val arr_id : unit_trace -> int -> int
val mem : unit_trace -> int -> int
val iter : unit_trace -> int -> int
val depth : unit_trace -> int -> int

val payload : unit_trace -> int -> int
(** Address for sends, value for produces, gate dependency (−1 if none)
    for gates. *)

val arr_name : unit_trace -> int -> string
val empty : unit_id -> unit_trace
val equal : unit_trace -> unit_trace -> bool

val digest : unit_trace -> Digest.t
(** Content digest of everything the timing replay can observe (packed
    events, array table, iteration count, synchronization flag): equal
    digests re-time identically under every configuration. The sweep
    engine's sampled cross-checks and the on-disk result cache key on
    this. *)

(** {1 Decoded view (off the hot path)} *)

type ev =
  | Send_ld of { arr : string; mem : int; addr : int }
  | Send_st of { arr : string; mem : int; addr : int }
  | Consume of { arr : string; mem : int; feeds_control : bool }
  | Produce of { arr : string; mem : int; value : int }
  | Kill of { arr : string; mem : int }  (** poison call *)
  | Gate of { dep : int }
      (** a branch depending on consumed values resolved here; [dep] is the
          trace index of the latest consume feeding it (-1 if none). Until
          the gate resolves no later channel op may issue — the FIFO push
          order downstream of the branch is unknown before the decision.
          This is the serialization of the paper's Figure 2(b); speculation
          removes the branch from the AGU and the gate with it. *)

val ev : unit_trace -> int -> ev
(** Decode event [k]; allocates. *)

val fold : ('a -> unit_trace -> int -> 'a) -> 'a -> unit_trace -> 'a
(** [fold f acc tr] folds [f] over event indices [0 .. length tr - 1]. *)

val pp_ev : Format.formatter -> ev -> unit

val pp_event : unit_trace -> Format.formatter -> int -> unit
(** Format event [k] exactly as {!pp_ev} on {!ev}[ tr k] would, without
    decoding. The trace exporter's golden digests pin these bytes. *)

(** {1 Incremental builder} *)

module Builder : sig
  type t

  val create : unit -> t

  val push : t -> meta:int -> iter:int -> depth:int -> payload:int -> unit
  (** [meta] is a pre-packed word 0 ({!pack_meta}). *)

  val length : t -> int
  (** Events pushed so far — gate dependencies index this sequence. *)

  val finalize :
    t ->
    unit:unit_id ->
    arrays:string array ->
    iterations:int ->
    control_synchronized:bool ->
    unit_trace
end
