(* Channel-event traces, compact encoding.

   The functional co-simulation (Exec) records, per unit, the dynamic
   sequence of channel transactions with their loop-iteration index and
   intra-iteration depth; the timing engine (Timing) replays these against
   bounded FIFOs, the LSQ and memory ports. Keeping values/addresses in the
   trace means the timing engine never re-executes code — it only schedules.

   A trace is stored as an unboxed int array, [stride] words per event,
   instead of an array of variant records: the co-sim appends events with
   no per-event allocation and the timing engine reads them with no pointer
   chasing. Array names are interned once per pipeline (see Lower) into a
   dense id table shared by both units' traces; the hot paths deal only in
   small ints and the table maps back to names for diagnostics and
   export. *)

type unit_id = Agu | Cu | Au of int

let unit_name = function
  | Agu -> "AGU"
  | Cu -> "CU"
  | Au k -> "AU" ^ string_of_int k

let unit_index = function Agu -> 0 | Cu -> 1 | Au k -> k + 1
let of_index = function 0 -> Agu | 1 -> Cu | k -> Au (k - 1)

(* Event tags. *)
let t_send_ld = 0

let t_send_st = 1
let t_consume = 2
let t_produce = 3
let t_kill = 4
let t_gate = 5

(* Word 0 packs tag (3 bits), feeds_control (bit 3), array id (20 bits)
   and mem id (the rest); words 1..3 are iter, depth and the payload —
   address for sends, value for produces, gate dependency index (possibly
   -1) for gates. *)
let stride = 4

let ctrl_bit = 8
let arr_shift = 4
let mem_shift = 24
let max_arr = (1 lsl (mem_shift - arr_shift)) - 1
let max_mem = (1 lsl (62 - mem_shift)) - 1

let pack_meta ~tag ~ctrl ~arr ~mem =
  tag
  lor (if ctrl then ctrl_bit else 0)
  lor (arr lsl arr_shift) lor (mem lsl mem_shift)

type unit_trace = {
  unit : unit_id;
  data : int array; (* [stride] words per event *)
  n : int; (* number of events *)
  arrays : string array; (* dense array id -> name, shared per pipeline *)
  iterations : int;
  control_synchronized : bool;
      (* true when some consumed value feeds a branch of this unit: the
         next iteration cannot issue before that consume resolves
         (paper Figure 2(b)'s serialization) *)
}

let length tr = tr.n
let[@inline] tag tr k = tr.data.(k * stride) land 7
let[@inline] feeds_control tr k = tr.data.(k * stride) land ctrl_bit <> 0

let[@inline] arr_id tr k =
  (tr.data.(k * stride) lsr arr_shift) land max_arr

let[@inline] mem tr k = tr.data.(k * stride) lsr mem_shift
let[@inline] iter tr k = tr.data.((k * stride) + 1)
let[@inline] depth tr k = tr.data.((k * stride) + 2)
let[@inline] payload tr k = tr.data.((k * stride) + 3)
let arr_name tr k = tr.arrays.(arr_id tr k)

let empty unit =
  {
    unit;
    data = [||];
    n = 0;
    arrays = [||];
    iterations = 0;
    control_synchronized = false;
  }

(* Content digest of everything the timing engine's replay can observe:
   the packed event words, the interned array table, the iteration count
   and the synchronization flag. Two traces with equal digests re-time to
   identical cycle counts under every configuration — the sweep engine's
   sampled cross-checks and the result cache both key on this. *)
let digest (tr : unit_trace) =
  Digest.string
    (Marshal.to_string
       (unit_index tr.unit, tr.data, tr.arrays, tr.iterations,
        tr.control_synchronized)
       [])

let equal (a : unit_trace) (b : unit_trace) =
  a.unit = b.unit && a.n = b.n && a.iterations = b.iterations
  && a.control_synchronized = b.control_synchronized
  && a.arrays = b.arrays
  &&
  let rec go i = i >= a.n * stride || (a.data.(i) = b.data.(i) && go (i + 1)) in
  go 0

(* --- decoded view, for tests / tools off the hot path -------------------- *)

type ev =
  | Send_ld of { arr : string; mem : int; addr : int }
  | Send_st of { arr : string; mem : int; addr : int }
  | Consume of { arr : string; mem : int; feeds_control : bool }
  | Produce of { arr : string; mem : int; value : int }
  | Kill of { arr : string; mem : int } (* poison call *)
  | Gate of { dep : int }
      (* a branch that depends on consumed values resolved here; [dep] is
         the trace index of the latest consume feeding it (-1 if none
         executed yet). Until the gate resolves, no later channel op of
         this unit may issue — the FIFO push order downstream of the branch
         is unknown before the branch is decided. This is the serialization
         of the paper's Figure 2(b); after speculation the branch is gone
         from the AGU and the gate disappears with it. *)

let ev tr k : ev =
  let m = mem tr k and p = payload tr k in
  match tag tr k with
  | 0 -> Send_ld { arr = arr_name tr k; mem = m; addr = p }
  | 1 -> Send_st { arr = arr_name tr k; mem = m; addr = p }
  | 2 ->
    Consume
      { arr = arr_name tr k; mem = m; feeds_control = feeds_control tr k }
  | 3 -> Produce { arr = arr_name tr k; mem = m; value = p }
  | 4 -> Kill { arr = arr_name tr k; mem = m }
  | 5 -> Gate { dep = p }
  | t -> Fmt.invalid_arg "Trace.ev: corrupt tag %d at event %d" t k

let fold f acc tr =
  let acc = ref acc in
  for k = 0 to tr.n - 1 do
    acc := f !acc tr k
  done;
  !acc

let pp_ev ppf = function
  | Send_ld { arr; mem; addr } -> Fmt.pf ppf "send_ld %s[%d] !%d" arr addr mem
  | Send_st { arr; mem; addr } -> Fmt.pf ppf "send_st %s[%d] !%d" arr addr mem
  | Consume { arr; mem; feeds_control } ->
    Fmt.pf ppf "consume %s !%d%s" arr mem (if feeds_control then " (ctrl)" else "")
  | Produce { arr; mem; value } -> Fmt.pf ppf "produce %s=%d !%d" arr value mem
  | Kill { arr; mem } -> Fmt.pf ppf "kill %s !%d" arr mem
  | Gate { dep } -> Fmt.pf ppf "gate(dep=%d)" dep

(* Format event [k] exactly as [pp_ev] would — the exporter's golden
   digests depend on this byte-for-byte. *)
let pp_event tr ppf k =
  let m = mem tr k and p = payload tr k in
  match tag tr k with
  | 0 -> Fmt.pf ppf "send_ld %s[%d] !%d" (arr_name tr k) p m
  | 1 -> Fmt.pf ppf "send_st %s[%d] !%d" (arr_name tr k) p m
  | 2 ->
    Fmt.pf ppf "consume %s !%d%s" (arr_name tr k) m
      (if feeds_control tr k then " (ctrl)" else "")
  | 3 -> Fmt.pf ppf "produce %s=%d !%d" (arr_name tr k) p m
  | 4 -> Fmt.pf ppf "kill %s !%d" (arr_name tr k) m
  | 5 -> Fmt.pf ppf "gate(dep=%d)" p
  | t -> Fmt.invalid_arg "Trace.pp_event: corrupt tag %d at event %d" t k

(* --- builder -------------------------------------------------------------- *)

module Builder = struct
  type t = { mutable data : int array; mutable n : int (* events *) }

  let create () = { data = Array.make (256 * stride) 0; n = 0 }

  let[@inline never] grow b =
    let bigger = Array.make (2 * Array.length b.data) 0 in
    Array.blit b.data 0 bigger 0 (b.n * stride);
    b.data <- bigger

  (* [meta] is a pre-packed word 0 (see [pack_meta]); lowering precomputes
     it per micro-op so the hot path stores four ints and a bump. *)
  let[@inline] push b ~meta ~iter ~depth ~payload =
    let base = b.n * stride in
    if base + stride > Array.length b.data then grow b;
    let d = b.data in
    (* the grow check above keeps [base + stride <= length d] *)
    Array.unsafe_set d base meta;
    Array.unsafe_set d (base + 1) iter;
    Array.unsafe_set d (base + 2) depth;
    Array.unsafe_set d (base + 3) payload;
    b.n <- b.n + 1

  let length b = b.n

  let finalize b ~unit ~arrays ~iterations ~control_synchronized =
    {
      unit;
      data = Array.sub b.data 0 (b.n * stride);
      n = b.n;
      arrays;
      iterations;
      control_synchronized;
    }
end
