(* Content-addressed on-disk result cache (see cache.mli).

   Correctness story: keys digest every input the payload depends on
   (lowered-program digest, workload instance, arch, Config.key, engine
   version), so a hit is definitionally the same computation. The entry
   format defends against torn or bit-rotted files — a one-line header
   carries the payload's own MD5 and length, and [find] verifies both
   before unmarshalling; anything that fails is deleted and counted, and
   the caller recomputes. Writes are temp-file + rename, so concurrent
   writers and readers only ever observe whole entries. *)

(* Bump whenever Exec/Timing/Lower semantics or any cached payload
   representation changes observably: retires the whole cache without a
   migration. *)
(* Bumped to 2 with the memory hierarchy: Stats gained the
   Mshr_full/Dram_bank causes, which changes the sweep payload shape. *)
let version = "daec-engine-2"

let default_dir = "_daec_cache"

type counters = { hits : int; misses : int; corrupt : int; stores : int }

type t = {
  root : string option; (* None: disabled, all lookups miss *)
  lock : Mutex.t; (* counters only; the fs is safe via rename *)
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable stores : int;
}

let create ?(dir = default_dir) () =
  {
    root = Some dir;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    corrupt = 0;
    stores = 0;
  }

let disabled () =
  {
    root = None;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    corrupt = 0;
    stores = 0;
  }

let is_enabled t = t.root <> None
let dir t = t.root

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let counters t =
  Mutex.lock t.lock;
  let c =
    { hits = t.hits; misses = t.misses; corrupt = t.corrupt; stores = t.stores }
  in
  Mutex.unlock t.lock;
  c

let hit_rate (c : counters) =
  let n = c.hits + c.misses in
  if n = 0 then 0. else float_of_int c.hits /. float_of_int n

(* Length-prefix each component so concatenation is injective, then MD5. *)
let key parts =
  let b = Buffer.create 128 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let entry_path root k =
  let shard = if String.length k >= 2 then String.sub k 0 2 else "xx" in
  Filename.concat (Filename.concat root shard) (k ^ ".entry")

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let magic = "daec-cache/1"

let default_kind = "result"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Header: "daec-cache/1 <payload-md5-hex> <len> <kind>\n", then the
   payload. Entries written before kinds existed have a three-token
   header and read back as [default_kind]. *)
let find (type a) t k : a option =
  match t.root with
  | None ->
    bump t (fun t -> t.misses <- t.misses + 1);
    None
  | Some root -> (
    let path = entry_path root k in
    if not (Sys.file_exists path) then begin
      bump t (fun t -> t.misses <- t.misses + 1);
      None
    end
    else
      let payload =
        match read_file path with
        | exception _ -> None
        | raw -> (
          match String.index_opt raw '\n' with
          | None -> None
          | Some nl -> (
            match String.split_on_char ' ' (String.sub raw 0 nl) with
            | [ m; md5; len ] | [ m; md5; len; _ ]
              when m = magic
                   && (match int_of_string_opt len with
                      | Some l -> String.length raw = nl + 1 + l
                      | None -> false) ->
              let body =
                String.sub raw (nl + 1) (String.length raw - nl - 1)
              in
              if Digest.to_hex (Digest.string body) = md5 then
                (try Some (Marshal.from_string body 0 : a)
                 with _ -> None)
              else None
            | _ -> None))
      in
      match payload with
      | Some v ->
        bump t (fun t -> t.hits <- t.hits + 1);
        Some v
      | None ->
        (* verification failed: never trust it, never keep it *)
        (try Sys.remove path with Sys_error _ -> ());
        bump t (fun t ->
            t.corrupt <- t.corrupt + 1;
            t.misses <- t.misses + 1);
        None)

let store ?(kind = default_kind) t k v =
  match t.root with
  | None -> ()
  | Some root -> (
    try
      if String.exists (fun c -> c = ' ' || c = '\n') kind then
        invalid_arg (Printf.sprintf "Cache.store: malformed kind %S" kind);
      let path = entry_path root k in
      mkdir_p (Filename.dirname path);
      let body = Marshal.to_string v [] in
      let header =
        Printf.sprintf "%s %s %d %s\n" magic
          (Digest.to_hex (Digest.string body))
          (String.length body) kind
      in
      let tmp =
        Filename.temp_file ~temp_dir:(Filename.dirname path) "daec" ".tmp"
      in
      let oc = open_out_bin tmp in
      output_string oc header;
      output_string oc body;
      close_out oc;
      Sys.rename tmp path;
      bump t (fun t -> t.stores <- t.stores + 1)
    with Sys_error _ | Unix.Unix_error _ -> ())

type disk_stats = {
  entries : int;
  bytes : int;
  by_kind : (string * (int * int)) list;
}

(* Read just the one-line header to classify an entry; anything malformed
   counts under default_kind (find will deal with it on next lookup). *)
let entry_kind path =
  match open_in_bin path with
  | exception Sys_error _ -> default_kind
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> default_kind
        | line -> (
          match String.split_on_char ' ' line with
          | [ m; _; _; kind ] when m = magic -> kind
          | _ -> default_kind))

let fold_entries root f acc =
  if not (Sys.file_exists root) then acc
  else
    Array.fold_left
      (fun acc shard ->
        let sdir = Filename.concat root shard in
        if Sys.is_directory sdir then
          Array.fold_left
            (fun acc file ->
              if Filename.check_suffix file ".entry" then
                f acc (Filename.concat sdir file)
              else acc)
            acc (Sys.readdir sdir)
        else acc)
      acc (Sys.readdir root)

let disk_stats t =
  match t.root with
  | None -> { entries = 0; bytes = 0; by_kind = [] }
  | Some root ->
    let kinds : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
    let s =
      fold_entries root
        (fun s path ->
          let bytes =
            match (Unix.stat path).Unix.st_size with
            | sz -> sz
            | exception Unix.Unix_error _ -> 0
          in
          let kind = entry_kind path in
          let n, b =
            Option.value ~default:(0, 0) (Hashtbl.find_opt kinds kind)
          in
          Hashtbl.replace kinds kind (n + 1, b + bytes);
          { s with entries = s.entries + 1; bytes = s.bytes + bytes })
        { entries = 0; bytes = 0; by_kind = [] }
    in
    {
      s with
      by_kind =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []);
    }

let clear t =
  match t.root with
  | None -> 0
  | Some root ->
    let removed =
      fold_entries root
        (fun n path ->
          match Sys.remove path with
          | () -> n + 1
          | exception Sys_error _ -> n)
        0
    in
    (* sweep now-empty shard directories; best-effort *)
    (if Sys.file_exists root then
       Array.iter
         (fun shard ->
           let sdir = Filename.concat root shard in
           if Sys.is_directory sdir then
             try Unix.rmdir sdir with Unix.Unix_error _ -> ())
         (Sys.readdir root));
    removed
