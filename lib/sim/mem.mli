(** Configurable memory hierarchy behind the DU load/store ports
    (ROADMAP item 1).

    A {!t} models one level of N-way banked, set-associative,
    non-blocking cache (shared MSHR pool, miss merging) over a DRAM
    backend with per-bank open-row tracking and a shared data bus. The
    timing engine consults it only in [Config.Hierarchy] mode; in
    [Scratchpad] mode no [t] exists and the engine's pre-hierarchy load
    path runs unchanged — that is the bit-compatibility anchor for every
    golden test.

    All state mutates only inside {!load} and {!store}, and every
    returned completion time is [> now], so the calendar's time jumps
    stay sound: a frozen no-progress span can never miss a memory event
    that was not announced via a completion time or {!next_wake}. *)

type t

val create : Config.cache_geom -> t
(** A cold cache (all ways invalid, all rows closed, all MSHRs free). *)

type load_outcome =
  | Load_done of { complete_at : int; delayed : bool }
      (** The access was accepted. [complete_at > now] is when the value
          arrives at the LSQ. [delayed] marks a miss whose DRAM access
          could not start at allocation time (bank or bus busy) — the
          signal behind the [Stats.Dram_bank] attribution. *)
  | Load_mshr_full
      (** The access missed but every MSHR is occupied; the load port
          must retry later ([Stats.Mshr_full]). *)

val load : t -> now:int -> arr:int -> addr:int -> load_outcome
(** Issue a load for word [addr] of dense array [arr]. Hits complete at
    [now + hit_latency]; misses to an in-flight line merge into its MSHR;
    fresh misses allocate an MSHR and a DRAM access, or report
    {!Load_mshr_full}. *)

val store : t -> now:int -> arr:int -> addr:int -> unit
(** Commit a store: write-through, no-allocate, posted. The commit port
    itself stays single-issue per cycle (as in scratchpad mode); the
    store's DRAM transaction occupies its bank and the shared bus, so
    store traffic delays subsequent load misses. *)

val next_wake : t -> now:int -> int option
(** Earliest in-flight MSHR fill strictly after [now], if any — the
    hierarchy's contribution to a stalled unit's wake candidates. A
    cached running minimum maintained by batched MSHR reclaim, so the
    stall path reads it in O(1) amortized instead of scanning the
    pool. *)
