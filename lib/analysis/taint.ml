(* Static speculative-taint analysis over lowered micro-op programs.

   Sources are the value channels of hoisted loads (Algorithm 1 moved
   their requests above the guarding LoD branch, so the machine reads —
   and fans out — cells the golden execution may never touch). Taint then
   flows through plain dataflow on micro-op slots, φ-edge copies, the
   inter-unit load-value channels and, at array granularity, through
   memory (a tainted Produce marks its array; loads from a marked array
   are tainted). The fixpoint is tiny: slots are SSA (one def each), so
   only the channel/array feedback loops need iteration.

   Sites — tainted request addresses, tainted branch conditions, tainted
   produced values — are exactly the places a secret can reach something
   the timing replay observes (trace payloads, cache/DRAM indexing,
   schedule shape). Leak.search's dynamic witnesses can therefore only
   diverge on taint-flagged programs; test/test_leak.ml pins that. *)

module Lower = Dae_sim.Lower
module Trace = Dae_sim.Trace

type site_kind = Load_addr | Store_addr | Control | Value_channel

type site = {
  s_kind : site_kind;
  s_unit : Trace.unit_id;
  s_block : int;
  s_arr : string;
  s_mem : int;
  s_speculative : bool;
}

type t = {
  sources : int list;
  tainted_mems : int list;
  tainted_arrays : string list;
  sites : site list;
}

let site_kind_name = function
  | Load_addr -> "load-addr"
  | Store_addr -> "store-addr"
  | Control -> "control"
  | Value_channel -> "value-channel"

let clean t = t.sites = []

(* hoisted load mems: the secret sources; all hoisted mems: requests that
   issue before their guard resolves (marks a site as speculative) *)
let spec_sets (p : Dae_core.Pipeline.t) =
  match p.Dae_core.Pipeline.spec with
  | None -> ([], fun _ -> false)
  | Some s ->
    let h = s.Dae_core.Pipeline.hoist in
    let loads =
      List.concat_map
        (fun (_, reqs) ->
          List.filter_map
            (fun (r : Dae_core.Hoist.spec_req) ->
              if r.Dae_core.Hoist.is_store then None
              else Some r.Dae_core.Hoist.mem)
            reqs)
        h.Dae_core.Hoist.spec_req_map
    in
    let sources = List.sort_uniq compare loads in
    let hoisted = h.Dae_core.Hoist.hoisted_mems in
    (sources, fun m -> List.mem m hoisted)

let analyze (p : Dae_core.Pipeline.t) : t =
  let low = Lower.compile p in
  let sources, is_hoisted = spec_sets p in
  let n_arrays = Array.length low.Lower.arrays in
  let mem_tainted = Array.make (max low.Lower.n_mems 1) false in
  let arr_tainted = Array.make (max n_arrays 1) false in
  List.iter (fun m -> mem_tainted.(m) <- true) sources;
  let progs = [ low.Lower.agu; low.Lower.cu ] in
  let slots =
    List.map (fun (u : Lower.uprog) -> Array.make (max u.Lower.n_slots 1) false) progs
  in
  let changed = ref true in
  let op_tainted taint = function
    | Lower.Slot s -> taint.(s)
    | Lower.Imm _ -> false
  in
  let set taint dst v =
    if v && not taint.(dst) then begin
      taint.(dst) <- true;
      changed := true
    end
  in
  (* slots are SSA but the load channels and arrays feed back across both
     units, so iterate the whole pass until nothing moves *)
  while !changed do
    changed := false;
    List.iter2
      (fun (u : Lower.uprog) taint ->
        Array.iter
          (fun (b : Lower.blk) ->
            Array.iter
              (fun (_, copies) ->
                Array.iter
                  (fun (c : Lower.copy) ->
                    set taint c.Lower.c_dst (op_tainted taint c.Lower.c_src))
                  copies)
              b.Lower.phis;
            Array.iter
              (fun (uop : Lower.uop) ->
                match uop with
                | Lower.Ubinop { dst; a; b; _ } ->
                  set taint dst (op_tainted taint a || op_tainted taint b)
                | Lower.Ucmp { dst; a; b; _ } ->
                  set taint dst (op_tainted taint a || op_tainted taint b)
                | Lower.Uselect { dst; c; a; b } ->
                  set taint dst
                    (op_tainted taint c || op_tainted taint a
                   || op_tainted taint b)
                | Lower.Unot { dst; a } -> set taint dst (op_tainted taint a)
                | Lower.Uconsume { dst; mem; _ } ->
                  set taint dst mem_tainted.(mem)
                | Lower.Usend_ld { arr; idx; mem; _ } ->
                  (* the loaded value is secret-dependent when either the
                     array holds tainted data or the address itself is *)
                  if
                    (arr_tainted.(arr) || op_tainted taint idx)
                    && not mem_tainted.(mem)
                  then begin
                    mem_tainted.(mem) <- true;
                    changed := true
                  end
                | Lower.Usend_st _ | Lower.Upoison _ -> ()
                | Lower.Uproduce { arr; value; _ } ->
                  if op_tainted taint value && not arr_tainted.(arr) then begin
                    arr_tainted.(arr) <- true;
                    changed := true
                  end)
              b.Lower.uops)
          u.Lower.blocks)
      progs slots
  done;
  (* site collection: deterministic program order, deduped by identity *)
  let seen = Hashtbl.create 16 in
  let sites = ref [] in
  let add s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      sites := s :: !sites
    end
  in
  List.iter2
    (fun (u : Lower.uprog) taint ->
      Array.iter
        (fun (b : Lower.blk) ->
          Array.iter
            (fun (uop : Lower.uop) ->
              match uop with
              | Lower.Usend_ld { arr; idx; mem; _ }
                when op_tainted taint idx ->
                add
                  {
                    s_kind = Load_addr;
                    s_unit = u.Lower.u_unit;
                    s_block = b.Lower.orig_bid;
                    s_arr = low.Lower.arrays.(arr);
                    s_mem = mem;
                    s_speculative = is_hoisted mem;
                  }
              | Lower.Usend_st { arr; idx; mem; _ }
                when op_tainted taint idx ->
                add
                  {
                    s_kind = Store_addr;
                    s_unit = u.Lower.u_unit;
                    s_block = b.Lower.orig_bid;
                    s_arr = low.Lower.arrays.(arr);
                    s_mem = mem;
                    s_speculative = is_hoisted mem;
                  }
              | Lower.Uproduce { arr; value; mem; _ }
                when op_tainted taint value ->
                add
                  {
                    s_kind = Value_channel;
                    s_unit = u.Lower.u_unit;
                    s_block = b.Lower.orig_bid;
                    s_arr = low.Lower.arrays.(arr);
                    s_mem = mem;
                    s_speculative = is_hoisted mem;
                  }
              | _ -> ())
            b.Lower.uops;
          let ctrl op =
            if op_tainted taint op then
              add
                {
                  s_kind = Control;
                  s_unit = u.Lower.u_unit;
                  s_block = b.Lower.orig_bid;
                  s_arr = "";
                  s_mem = -1;
                  s_speculative = false;
                }
          in
          match b.Lower.term with
          | Lower.Tcond (op, _, _) | Lower.Tswitch (op, _) -> ctrl op
          | Lower.Tbr _ | Lower.Tret -> ())
        u.Lower.blocks)
    progs slots;
  let collect_idx a =
    let r = ref [] in
    Array.iteri (fun i v -> if v then r := i :: !r) a;
    List.rev !r
  in
  {
    sources;
    tainted_mems = collect_idx mem_tainted;
    tainted_arrays =
      List.map (fun i -> low.Lower.arrays.(i)) (collect_idx arr_tainted);
    sites = List.rev !sites;
  }

let unit_slice = function
  | Trace.Agu -> Diag.Agu
  | Trace.Cu -> Diag.Cu
  | Trace.Au k -> Diag.Au k

let diags (t : t) : Diag.t list =
  List.map
    (fun s ->
      let sev =
        match s.s_kind with
        | Load_addr | Store_addr | Control -> Diag.Error
        | Value_channel -> Diag.Warning
      in
      let msg =
        match s.s_kind with
        | Load_addr ->
          Fmt.str
            "load-request address depends on a speculatively-loaded secret%s"
            (if s.s_speculative then
               " (and the request itself issues before its guard resolves)"
             else "")
        | Store_addr ->
          Fmt.str
            "store-request address depends on a speculatively-loaded secret%s"
            (if s.s_speculative then
               " (and the request itself issues before its guard resolves)"
             else "")
        | Control ->
          "branch condition depends on a speculatively-loaded secret: the \
           unit's whole event schedule is secret-dependent"
        | Value_channel ->
          "secret-dependent value enters the store-value channel (it lands \
           in memory, reachable by later tainted loads)"
      in
      let mem = if s.s_mem >= 0 then Some s.s_mem else None in
      let arr = if s.s_arr = "" then None else Some s.s_arr in
      Diag.make ~block:s.s_block ?mem ?arr ~sev ~analysis:Diag.Taint
        ~slice:(unit_slice s.s_unit) msg)
    t.sites

let pp ppf (t : t) =
  if t.sources = [] then
    Fmt.pf ppf "no speculative sources (nothing hoisted): clean@."
  else begin
    Fmt.pf ppf "sources (hoisted load mems): %a@."
      Fmt.(list ~sep:(any ", ") (fun ppf m -> pf ppf "mem%d" m))
      t.sources;
    if t.tainted_arrays <> [] then
      Fmt.pf ppf "tainted arrays: %a@."
        Fmt.(list ~sep:(any ", ") string)
        t.tainted_arrays;
    if clean t then Fmt.pf ppf "0 leak sites: clean@."
    else
      List.iter
        (fun s ->
          Fmt.pf ppf "%s %s bb%d%s%s%s@."
            (site_kind_name s.s_kind)
            (Trace.unit_name s.s_unit)
            s.s_block
            (if s.s_arr = "" then "" else " " ^ s.s_arr)
            (if s.s_mem >= 0 then Fmt.str " mem%d" s.s_mem else "")
            (if s.s_speculative then " (speculative request)" else ""))
        t.sites
  end
