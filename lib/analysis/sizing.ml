(* Static channel sizing and deadlock-freedom.

   The abstract causality replay mirrors exactly the blocking structure of
   Timing.run while erasing time: a unit retires its next events within
   the same out-of-order scan window, in order per channel; a send needs
   channel slack, a consume needs a token; the DU applies store values in
   allocation order, pops resolved heads, admits requests against LSQ
   occupancy and issues the oldest load only when every older same-array
   store is resolved (worst-case address-oblivious RAW — per-array [older]
   counts are monotone in send order, so the oldest unissued load is
   admissible iff any is) and every subscriber value channel has space.
   Latency never blocks forever, so erasing it preserves reachability of
   completion: if the abstract machine finishes, every wait cycle in the
   channel/dependence graph had positive slack and the timed engine
   cannot deadlock on that event order; if it sticks, the frozen state is
   the zero-slack cycle.

   Event orders come from the checker's segment universe. Every dynamic
   trace is a concatenation of segments, and backpressure couples at most
   a bounded window of adjacent iterations, so replaying each segment
   composed with itself (and the whole universe concatenated) covers the
   steady-state shapes; the cross-validation against the simulator in
   test/test_sizing.ml and the bench sweep backs this empirically. *)

module Pipeline = Dae_core.Pipeline
module Config = Dae_sim.Config
module Timing = Dae_sim.Timing

type sized = {
  sz_chan : Channel.chan;
  sz_configured : int;
  sz_min : int;
  sz_matched : int;
  sz_score : int;
}

type verdict = Deadlock_free | Deadlock of string list

type t = {
  channels : sized list;
  verdict : verdict;
  critical : Channel.kind option;
  min_cfg : Config.t;
  bound_per_event : int;
  bound_fill : int;
  graph : Channel.t;
}

(* --- abstract machine ----------------------------------------------------- *)

type afifo = { cap : int; mutable used : int }

let space f = f.used < f.cap

type aload = { al_older : int; al_subs : (string * afifo) list }

type adu = {
  ad_arr : string;
  ad_req_ld : afifo;
  ad_req_ld_q : aload Queue.t; (* payloads of in-flight req_ld tokens *)
  ad_req_st : afifo;
  ad_stv : afifo;
  mutable ad_alloc : int; (* stores accepted into the SQ, cumulative *)
  mutable ad_resolved : int; (* store values applied, <= ad_alloc *)
  mutable ad_popped : int; (* resolved heads retired, <= ad_resolved *)
  ad_lq : aload Queue.t;
  ad_sq_size : int;
  ad_lq_size : int;
}

type aev =
  | A_send_ld of string * adu * aload
  | A_send_st of string * adu
  | A_stv of string * adu (* produce and kill are the same token *)
  | A_consume of string * afifo

type aunit = {
  au_name : string;
  au_evs : aev array;
  au_retired : bool array;
  mutable au_scan : int;
  mutable au_done : int;
}

type machine = { m_units : aunit list; m_dus : adu list }

(* Dense unit indexing [agu; cu; au1; ...], as everywhere else. *)
let tag_of = function 0 -> `Agu | 1 -> `Cu | k -> `Au (k - 1)

let name_of = function
  | 0 -> "AGU"
  | 1 -> "CU"
  | k -> "AU" ^ string_of_int (k - 1)

(* Build one machine for one composed per-unit event-stream array under a
   per-channel capacity assignment. *)
let build ~(caps : Channel.kind -> int) ~lq_size ~sq_size (g : Channel.t)
    (units : Replay.event list array) : machine =
  let dus : (string, adu) Hashtbl.t = Hashtbl.create 8 in
  let du_order = ref [] in
  let du arr =
    match Hashtbl.find_opt dus arr with
    | Some d -> d
    | None ->
      let d =
        {
          ad_arr = arr;
          ad_req_ld = { cap = caps (Channel.Req_ld arr); used = 0 };
          ad_req_ld_q = Queue.create ();
          ad_req_st = { cap = caps (Channel.Req_st arr); used = 0 };
          ad_stv = { cap = caps (Channel.Stv arr); used = 0 };
          ad_alloc = 0;
          ad_resolved = 0;
          ad_popped = 0;
          ad_lq = Queue.create ();
          ad_sq_size = sq_size;
          ad_lq_size = lq_size;
        }
      in
      Hashtbl.replace dus arr d;
      du_order := d :: !du_order;
      d
  in
  let ldvs : (int * [ `Agu | `Cu | `Au of int ], afifo) Hashtbl.t =
    Hashtbl.create 16
  in
  let ldv key =
    match Hashtbl.find_opt ldvs key with
    | Some f -> f
    | None ->
      let mem, u = key in
      let f = { cap = caps (Channel.Ldv (mem, u)); used = 0 } in
      Hashtbl.replace ldvs key f;
      f
  in
  let subs_of mem =
    match List.assoc_opt mem g.Channel.load_subscribers with
    | Some us ->
      List.map
        (fun u -> (Channel.name (Channel.Ldv (mem, u)), ldv (mem, u)))
        us
    | None -> []
  in
  let unit_of tag name evs =
    let st_counter : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let acts =
      List.map
        (fun (e : Replay.event) ->
          match e.Replay.ev_kind with
          | Replay.Send_ld ->
            let d = du e.Replay.ev_arr in
            let older =
              match Hashtbl.find_opt st_counter e.Replay.ev_arr with
              | Some n -> n
              | None -> 0
            in
            A_send_ld
              ( Channel.name (Channel.Req_ld e.Replay.ev_arr),
                d,
                { al_older = older; al_subs = subs_of e.Replay.ev_mem } )
          | Replay.Send_st ->
            let d = du e.Replay.ev_arr in
            let n =
              match Hashtbl.find_opt st_counter e.Replay.ev_arr with
              | Some n -> n
              | None -> 0
            in
            Hashtbl.replace st_counter e.Replay.ev_arr (n + 1);
            A_send_st (Channel.name (Channel.Req_st e.Replay.ev_arr), d)
          | Replay.Produce | Replay.Kill ->
            A_stv
              ( Channel.name (Channel.Stv e.Replay.ev_arr),
                du e.Replay.ev_arr )
          | Replay.Consume ->
            let key = (e.Replay.ev_mem, tag) in
            A_consume
              ( Channel.name (Channel.Ldv (e.Replay.ev_mem, tag)),
                ldv key ))
        evs
    in
    let arr = Array.of_list acts in
    {
      au_name = name;
      au_evs = arr;
      au_retired = Array.make (Array.length arr) false;
      au_scan = 0;
      au_done = 0;
    }
  in
  let m_units =
    (* Array.iteri visits indices in order, so the DU/ldv interning order
       (and hence m_dus order) is the dense unit order, AGU first. *)
    let acc = ref [] in
    Array.iteri
      (fun i evs -> acc := unit_of (tag_of i) (name_of i) evs :: !acc)
      units;
    List.rev !acc
  in
  { m_units; m_dus = List.rev !du_order }

let step_unit (u : aunit) : bool =
  let n = Array.length u.au_evs in
  let progress = ref false in
  let stop = min n (u.au_scan + Timing.scan_window) in
  for k = u.au_scan to stop - 1 do
    if not u.au_retired.(k) then begin
      let retire () =
        u.au_retired.(k) <- true;
        u.au_done <- u.au_done + 1;
        progress := true
      in
      match u.au_evs.(k) with
      | A_send_ld (_, d, l) ->
        if space d.ad_req_ld then begin
          d.ad_req_ld.used <- d.ad_req_ld.used + 1;
          Queue.push l d.ad_req_ld_q;
          retire ()
        end
      | A_send_st (_, d) ->
        if space d.ad_req_st then begin
          d.ad_req_st.used <- d.ad_req_st.used + 1;
          retire ()
        end
      | A_stv (_, d) ->
        if space d.ad_stv then begin
          d.ad_stv.used <- d.ad_stv.used + 1;
          retire ()
        end
      | A_consume (_, f) ->
        if f.used > 0 then begin
          f.used <- f.used - 1;
          retire ()
        end
    end
  done;
  while u.au_scan < n && u.au_retired.(u.au_scan) do
    u.au_scan <- u.au_scan + 1
  done;
  !progress

let sq_live d = d.ad_alloc - d.ad_popped

let step_du (d : adu) : bool =
  let progress = ref false in
  (* store values resolve in allocation order, only against allocations *)
  while d.ad_stv.used > 0 && d.ad_resolved < d.ad_alloc do
    d.ad_stv.used <- d.ad_stv.used - 1;
    d.ad_resolved <- d.ad_resolved + 1;
    progress := true
  done;
  (* resolved heads drain (commit or kill — latency-free here) *)
  while d.ad_popped < d.ad_resolved do
    d.ad_popped <- d.ad_popped + 1;
    progress := true
  done;
  (* admit requests against LSQ occupancy *)
  while d.ad_req_st.used > 0 && sq_live d < d.ad_sq_size do
    d.ad_req_st.used <- d.ad_req_st.used - 1;
    d.ad_alloc <- d.ad_alloc + 1;
    progress := true
  done;
  while d.ad_req_ld.used > 0 && Queue.length d.ad_lq < d.ad_lq_size do
    d.ad_req_ld.used <- d.ad_req_ld.used - 1;
    Queue.push (Queue.pop d.ad_req_ld_q) d.ad_lq;
    progress := true
  done;
  (* issue: the head load, once worst-case RAW-clear, into every
     subscriber channel at once *)
  let continue_ = ref true in
  while !continue_ do
    match Queue.peek_opt d.ad_lq with
    | Some l
      when d.ad_resolved >= l.al_older
           && List.for_all (fun (_, f) -> space f) l.al_subs ->
      ignore (Queue.pop d.ad_lq);
      List.iter (fun (_, f) -> f.used <- f.used + 1) l.al_subs;
      progress := true
    | _ -> continue_ := false
  done;
  !progress

let du_drained d =
  sq_live d = 0 && d.ad_resolved = d.ad_alloc && d.ad_req_ld.used = 0
  && d.ad_req_st.used = 0 && d.ad_stv.used = 0
  && Queue.is_empty d.ad_lq

let describe_stuck (m : machine) : string =
  let unit_part (u : aunit) =
    if u.au_scan >= Array.length u.au_evs then None
    else
      let reason =
        match u.au_evs.(u.au_scan) with
        | A_send_ld (c, d, _) ->
          Fmt.str "send on %s blocked (%d/%d slots, zero slack)" c
            d.ad_req_ld.used d.ad_req_ld.cap
        | A_send_st (c, d) ->
          Fmt.str "send on %s blocked (%d/%d slots, zero slack)" c
            d.ad_req_st.used d.ad_req_st.cap
        | A_stv (c, d) ->
          Fmt.str "produce on %s blocked (%d/%d slots, zero slack)" c
            d.ad_stv.used d.ad_stv.cap
        | A_consume (c, _) -> Fmt.str "consume on %s blocked (channel empty)" c
      in
      Some
        (Fmt.str "%s at event %d/%d: %s" u.au_name u.au_scan
           (Array.length u.au_evs) reason)
  in
  let du_part d =
    if du_drained d then None
    else
      let bits = ref [] in
      if sq_live d >= d.ad_sq_size then
        bits :=
          Fmt.str "store queue full (%d/%d, head awaiting value)" (sq_live d)
            d.ad_sq_size
          :: !bits;
      (match Queue.peek_opt d.ad_lq with
      | Some l when d.ad_resolved < l.al_older ->
        bits :=
          Fmt.str "load head awaits %d unresolved older store(s)"
            (l.al_older - d.ad_resolved)
          :: !bits
      | Some l when not (List.for_all (fun (_, f) -> space f) l.al_subs) ->
        let full =
          List.filter_map
            (fun (n, f) -> if space f then None else Some n)
            l.al_subs
        in
        bits :=
          Fmt.str "load head held by full subscriber channel(s) %a"
            Fmt.(list ~sep:comma string)
            full
          :: !bits
      | _ -> ());
      if d.ad_stv.used > 0 && d.ad_resolved >= d.ad_alloc then
        bits :=
          Fmt.str "%d store value(s) await an allocation" d.ad_stv.used
          :: !bits;
      match !bits with
      | [] -> Some (Fmt.str "DU:%s undrained" d.ad_arr)
      | bs -> Some (Fmt.str "DU:%s %a" d.ad_arr Fmt.(list ~sep:semi string) bs)
  in
  let parts =
    List.filter_map unit_part m.m_units
    @ List.filter_map du_part m.m_dus
  in
  Fmt.str "zero-slack wait cycle: %a"
    Fmt.(list ~sep:(any "; ") string)
    (if parts = [] then [ "(no blocked actor recorded)" ] else parts)

(* Run one composition to the fixpoint. *)
let run_comp ~caps ~lq_size ~sq_size (g : Channel.t)
    (units : Replay.event list array) : (unit, string) result =
  let m = build ~caps ~lq_size ~sq_size g units in
  let rec fix () =
    let p =
      List.fold_left (fun acc u -> step_unit u || acc) false m.m_units
    in
    let p =
      List.fold_left (fun acc d -> step_du d || acc) p m.m_dus
    in
    if p then fix ()
  in
  fix ();
  let complete =
    List.for_all (fun u -> u.au_done = Array.length u.au_evs) m.m_units
    && List.for_all du_drained m.m_dus
  in
  if complete then Ok () else Error (describe_stuck m)

(* Steady-state compositions: each segment against itself (backpressure
   couples adjacent iterations) and the whole universe concatenated. *)
let compositions (g : Channel.t) =
  let rep n (streams : Replay.event list array) =
    Array.map
      (fun evs ->
        let rec go i acc =
          if i = 0 then List.concat (List.rev acc) else go (i - 1) (evs :: acc)
        in
        go n [])
      streams
  in
  let per_seg = List.map (rep 3) g.Channel.seg_raw in
  let all =
    match g.Channel.seg_raw with
    | [] -> [||]
    | first :: _ ->
      rep 2
        (Array.init (Array.length first) (fun i ->
             List.concat_map
               (fun (streams : Replay.event list array) -> streams.(i))
               g.Channel.seg_raw))
  in
  per_seg @ [ all ]

(* --- sizing --------------------------------------------------------------- *)

let big = 1024

let service (cfg : Config.t) = function
  | Channel.Req_ld _ ->
    cfg.Config.fifo_latency + cfg.Config.memory_load_latency
  | Channel.Req_st _ ->
    (* a store slot lives from allocation until its value (or poison)
       makes the full CU round trip back *)
    (2 * cfg.Config.fifo_latency)
    + cfg.Config.memory_store_latency + cfg.Config.alu_latency
  | Channel.Stv _ -> cfg.Config.fifo_latency + 1
  | Channel.Ldv _ -> cfg.Config.fifo_latency + 1

(* Max per-segment demand on any scalar resource: a channel moves one
   token per cycle, each array issues one load and commits one store per
   cycle — the steady-state initiation interval is at least this. *)
let demand (g : Channel.t) =
  let per_chan =
    List.fold_left (fun acc c -> max acc c.Channel.rate.Channel.hi) 0
      g.Channel.chans
  in
  let arr_sum pred =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (c : Channel.chan) ->
        if pred c.Channel.kind then begin
          let cur =
            match Hashtbl.find_opt tbl c.Channel.arr with
            | Some n -> n
            | None -> 0
          in
          Hashtbl.replace tbl c.Channel.arr
            (cur + c.Channel.rate.Channel.hi)
        end)
      g.Channel.chans;
    Hashtbl.fold (fun _ n acc -> max acc n) tbl 0
  in
  let ld_port = arr_sum (function Channel.Req_ld _ -> true | _ -> false) in
  let st_port = arr_sum (function Channel.Stv _ -> true | _ -> false) in
  max 1 (max per_chan (max ld_port st_port))

let analyze ?path_limit ~(cfg : Config.t) (p : Pipeline.t) :
    (t, Segments.budget) result =
  match Channel.of_pipeline ?path_limit p with
  | Error b -> Error b
  | Ok g ->
    let comps = compositions g in
    let lq_size = cfg.Config.load_queue_size
    and sq_size = cfg.Config.store_queue_size in
    let ok caps =
      List.for_all
        (fun c -> run_comp ~caps ~lq_size ~sq_size g c = Ok ())
        comps
    in
    let candidates = [ 1; 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64; 256; big ] in
    let feasible = ok (fun _ -> big) in
    let min_of kind =
      if not feasible then Channel.capacity cfg kind
      else
        let rec try_ = function
          | [] -> big
          | c :: rest ->
            if ok (fun k -> if k = kind then c else big) then c
            else try_ rest
        in
        try_ candidates
    in
    let mins =
      List.map (fun (c : Channel.chan) -> (c.Channel.kind, min_of c.Channel.kind)) g.Channel.chans
    in
    (* the per-channel minima must also hold jointly *)
    let caps_of mins k =
      match List.assoc_opt k mins with Some v -> v | None -> big
    in
    let mins =
      if not feasible then mins
      else
        let rec settle mins n =
          if n > 6 || ok (caps_of mins) then mins
          else
            settle (List.map (fun (k, v) -> (k, min big (2 * v))) mins) (n + 1)
        in
        settle mins 0
    in
    let d = demand g in
    let channels =
      List.map
        (fun (c : Channel.chan) ->
          let mn = caps_of mins c.Channel.kind in
          let s = service cfg c.Channel.kind in
          let r = c.Channel.rate.Channel.hi in
          let matched =
            max mn (((r * s) + d - 1) / d)
          in
          {
            sz_chan = c;
            sz_configured = Channel.capacity cfg c.Channel.kind;
            sz_min = mn;
            sz_matched = matched;
            sz_score = r * s;
          })
        g.Channel.chans
    in
    let critical =
      List.fold_left
        (fun acc sz ->
          if sz.sz_chan.Channel.rate.Channel.hi = 0 then acc
          else
            match acc with
            | None -> Some sz
            | Some best ->
              if
                sz.sz_score > best.sz_score
                || sz.sz_score = best.sz_score
                   && Channel.name sz.sz_chan.Channel.kind
                      < Channel.name best.sz_chan.Channel.kind
              then Some sz
              else acc)
        None channels
      |> Option.map (fun sz -> sz.sz_chan.Channel.kind)
    in
    (* verdict for the analyzed configuration: certain structural zero-
       capacity deadlocks first, then the abstract replay at cfg depths *)
    let structural =
      List.filter_map
        (fun (c : Channel.chan) ->
          let cap = Channel.capacity cfg c.Channel.kind in
          if cap < 1 && c.Channel.rate.Channel.hi > 0 then
            Some
              (Fmt.str
                 "%s has capacity %d but moves up to %d token(s) per \
                  iteration: the first send can never retire (zero slack \
                  on every cycle through the edge)"
                 (Channel.name c.Channel.kind) cap c.Channel.rate.Channel.hi)
          else None)
        g.Channel.chans
    in
    let structural =
      structural
      @ (if
           sq_size < 1
           && List.exists
                (fun (c : Channel.chan) ->
                  match c.Channel.kind with
                  | Channel.Req_st _ -> c.Channel.rate.Channel.hi > 0
                  | _ -> false)
                g.Channel.chans
         then
           [
             Fmt.str
               "store queue size %d admits no allocation but the AGU sends \
                store requests"
               sq_size;
           ]
         else [])
      @
      if
        lq_size < 1
        && List.exists
             (fun (c : Channel.chan) ->
               match c.Channel.kind with
               | Channel.Req_ld _ -> c.Channel.rate.Channel.hi > 0
               | _ -> false)
             g.Channel.chans
      then
        [
          Fmt.str
            "load queue size %d admits no allocation but the AGU sends load \
             requests"
            lq_size;
        ]
      else []
    in
    let verdict =
      if structural <> [] then Deadlock structural
      else begin
        let caps k = Channel.capacity cfg k in
        let stuck =
          List.filter_map
            (fun c ->
              match run_comp ~caps ~lq_size ~sq_size g c with
              | Ok () -> None
              | Error d -> Some d)
            comps
        in
        match stuck with
        | [] -> Deadlock_free
        | ds -> Deadlock (List.sort_uniq compare ds)
      end
    in
    let class_min pred dflt =
      let ms =
        List.filter_map
          (fun sz ->
            if pred sz.sz_chan.Channel.kind then Some sz.sz_min else None)
          channels
      in
      List.fold_left max dflt ms
    in
    let min_cfg =
      {
        cfg with
        Config.request_fifo_capacity =
          class_min
            (function Channel.Req_ld _ | Channel.Req_st _ -> true | _ -> false)
            1;
        value_fifo_capacity =
          class_min (function Channel.Ldv _ -> true | _ -> false) 1;
        store_value_fifo_capacity =
          class_min (function Channel.Stv _ -> true | _ -> false) 1;
      }
    in
    (* Engineering bound on the timed run: every event's retirement is
       separated from its enabling event by a bounded pipeline of channel
       hops, memory services and the unit scheduler; idle loop iterations
       cost unit_ii each (accounted via the iters term). The factor is
       deliberately generous — the point is a static linear certificate,
       cross-validated by the simulator. *)
    let bound_per_event =
      12
      * (cfg.Config.fifo_latency + cfg.Config.memory_load_latency
        + cfg.Config.memory_store_latency + cfg.Config.forward_latency
        + cfg.Config.branch_latency + cfg.Config.alu_latency
        + cfg.Config.unit_ii + 4)
    in
    let bound_fill =
      64 * (cfg.Config.fifo_latency + cfg.Config.memory_load_latency + 4)
    in
    Ok
      {
        channels;
        verdict;
        critical;
        min_cfg;
        bound_per_event;
        bound_fill;
        graph = g;
      }

let bound (t : t) ~events ~iters =
  (t.bound_per_event * events)
  + (t.min_cfg.Config.unit_ii * iters)
  + t.bound_fill

let bound_of_timelines (t : t) (tls : Dae_sim.Machine.timeline list) =
  List.fold_left
    (fun acc (tl : Dae_sim.Machine.timeline) ->
      let events =
        Dae_sim.Trace.length tl.Dae_sim.Machine.t_agu
        + Dae_sim.Trace.length tl.Dae_sim.Machine.t_cu
        + Array.fold_left
            (fun n tr -> n + Dae_sim.Trace.length tr)
            0 tl.Dae_sim.Machine.t_aus
      in
      let iters =
        Array.fold_left
          (fun m (tr : Dae_sim.Trace.unit_trace) ->
            max m tr.Dae_sim.Trace.iterations)
          (max tl.Dae_sim.Machine.t_agu.Dae_sim.Trace.iterations
             tl.Dae_sim.Machine.t_cu.Dae_sim.Trace.iterations)
          tl.Dae_sim.Machine.t_aus
      in
      acc + bound t ~events ~iters)
    0 tls

let deadlocks (t : t) = match t.verdict with Deadlock _ -> true | _ -> false

let critical_decrement (t : t) : (Channel.kind * Config.t) option =
  match t.critical with
  | None -> None
  | Some kind ->
    let class_min = Channel.capacity t.min_cfg kind in
    Some (kind, Channel.with_capacity t.min_cfg kind (class_min - 1))

let pp ppf (t : t) =
  (match t.verdict with
  | Deadlock_free ->
    Fmt.pf ppf
      "verdict: deadlock-free (every wait cycle has positive slack at the \
       analyzed depths)@."
  | Deadlock ds ->
    Fmt.pf ppf "verdict: PROVABLE DEADLOCK@.";
    List.iter (fun d -> Fmt.pf ppf "  %s@." d) ds);
  Fmt.pf ppf "  %-14s %10s %5s %8s %10s@." "channel" "configured" "min"
    "matched" "rate";
  List.iter
    (fun sz ->
      Fmt.pf ppf "  %-14s %10d %5d %8d %10s%s@."
        (Channel.name sz.sz_chan.Channel.kind)
        sz.sz_configured sz.sz_min sz.sz_matched
        (Fmt.str "[%d,%d]" sz.sz_chan.Channel.rate.Channel.lo
           sz.sz_chan.Channel.rate.Channel.hi)
        (if t.critical = Some sz.sz_chan.Channel.kind then
           "  <- critical (expected Fifo_full source)"
         else ""))
    t.channels;
  Fmt.pf ppf
    "  predicted cycle bound: <= %d*events + %d*iters + %d@."
    t.bound_per_event t.min_cfg.Config.unit_ii t.bound_fill
