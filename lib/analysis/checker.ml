(* The inter-slice decoupling soundness checker.

   Three path-sensitive analyses over the pre-cleanup slice snapshots of a
   compiled pipeline, each quantifying over a finite path universe that
   covers every dynamic trace:

   1. Channel balance (§3.2 / Lemma 6.1). Every dynamic trace decomposes
      into segments (Segments); on each segment, replaying both slices
      must yield, per array, identical AGU store-request and CU
      store-value (produce/poison) mem sequences, and per load, matching
      send/consume counts for every subscribing unit. Per-segment balance
      implies whole-trace balance by concatenation.

   2. Poison coverage (§5.2). For every speculation block, every Algorithm
      2 path either reaches a store group's true block (the group commits
      and must not be poisoned) or crosses poison calls killing each of
      the group's requests exactly once, in request order; groups resolve
      in speculation order. This re-derives Algorithms 2+3 — including
      steered placements — from the materialised CU, independently of the
      pass that produced it.

   3. LoD residue (§5.1). After speculation, the only AGU consumes of a
      hoisted load are the ones Algorithm 1 itself relocated to chain
      heads; any other surviving consume re-synchronises the units and
      defeats the speculation. *)

open Dae_ir
module Pipeline = Dae_core.Pipeline
module Hoist = Dae_core.Hoist
module Poison = Dae_core.Poison
module Lod = Dae_core.Lod

let pp_path ppf (blocks : int list) =
  let n = List.length blocks in
  let shown = if n > 12 then List.filteri (fun i _ -> i < 12) blocks else blocks in
  Fmt.pf ppf "%a%s"
    Fmt.(list ~sep:(any "->") (fmt "bb%d"))
    shown
    (if n > 12 then Fmt.str "->...(%d blocks)" n else "")

(* Dense unit indexing [agu; cu; au1; ...] — the same order the simulator
   uses (Trace.unit_index). *)
let dense_of = function `Agu -> 0 | `Cu -> 1 | `Au k -> k + 1

let dense_name = function
  | 0 -> "AGU"
  | 1 -> "CU"
  | k -> "AU" ^ string_of_int (k - 1)

let dense_slice = function
  | 0 -> Diag.Agu
  | 1 -> Diag.Cu
  | k -> Diag.Au (k - 1)

(* Dense index of the access unit owning an array's request stream. *)
let owner_dense (p : Pipeline.t) arr =
  match Dae_core.Decouple.owner_of p.Pipeline.partition arr with
  | 0 -> 0
  | j -> j + 1

(* --- 1. channel balance ------------------------------------------------- *)

let mems_of kind events =
  List.filter_map
    (fun (e : Replay.event) -> if List.mem e.Replay.ev_kind kind then Some e else None)
    events

(* Check one segment of one scope. [keep] filters the replayed events down
   to the ones whose home scope is the segment's scope: block-local events
   by their block's innermost loop, hoisted sends / relocated consumes by
   their head's loop (= the block they now live in), poison calls by their
   decision's speculation block. Events of other scopes that a segment
   passes (a nested loop's header and exit sources, an outer scope's kills
   on an exit chain) are counted by that scope's own segments instead. *)
let check_segment (p : Pipeline.t) (ctxs : Replay.ctx array) ~keep
    (seg : int list) : Diag.t list =
  let outs = Array.map (fun ctx -> Replay.replay ctx seg) ctxs in
  let diags =
    ref
      (List.rev_append outs.(0).Replay.diags
         (List.concat
            (List.map
               (fun (o : Replay.outcome) -> o.Replay.diags)
               (List.tl (Array.to_list outs)))))
  in
  let outs =
    Array.map
      (fun (o : Replay.outcome) ->
        { o with Replay.events = List.filter keep o.Replay.events })
      outs
  in
  let add d = diags := d :: !diags in
  (* Store streams: per array, the owning access unit's request mem
     sequence must equal the CU produce/poison mem sequence (order and
     multiplicity) — otherwise a trace through this segment mispairs a
     store address with another store's value (the paper's §2 failure). *)
  let arrays =
    List.sort_uniq compare
      (List.filter_map
         (fun (c : Dae_core.Decouple.channel_use) ->
           if c.Dae_core.Decouple.is_store then
             Some c.Dae_core.Decouple.arr
           else None)
         p.Pipeline.channels)
  in
  List.iter
    (fun arr ->
      let of_slice kinds (o : Replay.outcome) =
        List.filter
          (fun (e : Replay.event) -> e.Replay.ev_arr = arr)
          (mems_of kinds o.Replay.events)
      in
      let owner = owner_dense p arr in
      let owner_name = dense_name owner in
      let owner_st = of_slice [ Replay.Send_st ] outs.(owner) in
      let cu_st = of_slice [ Replay.Produce; Replay.Kill ] outs.(1) in
      let rec cmp i a c =
        match (a, c) with
        | [], [] -> ()
        | (ae : Replay.event) :: a', (ce : Replay.event) :: c' ->
          if ae.Replay.ev_mem = ce.Replay.ev_mem then cmp (i + 1) a' c'
          else
            add
              (Diag.make ~block:ce.Replay.ev_block ~mem:ce.Replay.ev_mem ~arr
                 ~sev:Diag.Error ~analysis:Diag.Balance ~slice:Diag.Both
                 (Fmt.str
                    "store streams diverge at position %d of segment %a: \
                     the %s requests mem%d but the CU resolves mem%d"
                    i pp_path seg owner_name ae.Replay.ev_mem ce.Replay.ev_mem))
        | (ae : Replay.event) :: _, [] ->
          add
            (Diag.make ~block:ae.Replay.ev_block ~mem:ae.Replay.ev_mem ~arr
               ~sev:Diag.Error ~analysis:Diag.Balance ~slice:Diag.Both
               (Fmt.str
                  "on segment %a the %s sends %d store request(s) for \
                   which the CU never produces or poisons a value \
                   (starting with mem%d) — the store unit deadlocks"
                  pp_path seg owner_name (List.length a) ae.Replay.ev_mem))
        | [], (ce : Replay.event) :: _ ->
          add
            (Diag.make ~block:ce.Replay.ev_block ~mem:ce.Replay.ev_mem ~arr
               ~sev:Diag.Error ~analysis:Diag.Balance ~slice:Diag.Both
               (Fmt.str
                  "on segment %a the CU resolves %d store value(s) the %s \
                   never requested (starting with mem%d)"
                  pp_path seg (List.length c) owner_name ce.Replay.ev_mem))
      in
      cmp 0 owner_st cu_st)
    arrays;
  (* Load channels: every subscribing unit must consume exactly as many
     values as the owning access unit sends requests for, per segment. *)
  List.iter
    (fun (c : Dae_core.Decouple.channel_use) ->
      if not c.Dae_core.Decouple.is_store then begin
        let mem = c.Dae_core.Decouple.mem in
        let subs =
          match List.assoc_opt mem p.Pipeline.load_subscribers with
          | Some s -> s
          | None -> []
        in
        let count kind (o : Replay.outcome) =
          List.length
            (List.filter
               (fun (e : Replay.event) ->
                 e.Replay.ev_kind = kind && e.Replay.ev_mem = mem)
               o.Replay.events)
        in
        let owner = owner_dense p c.Dae_core.Decouple.arr in
        let owner_name = dense_name owner in
        let sends = count Replay.Send_ld outs.(owner) in
        let check unit =
          let d = dense_of unit in
          let slice_tag = dense_slice d in
          let consumed = count Replay.Consume outs.(d) in
          if List.mem unit subs then begin
            if consumed <> sends then
              add
                (Diag.make ~mem ~arr:c.Dae_core.Decouple.arr ~sev:Diag.Error
                   ~analysis:Diag.Balance ~slice:slice_tag
                   (Fmt.str
                      "on segment %a the %s sends %d load request(s) but \
                       the %s consumes %d value(s) — the channel %s"
                      pp_path seg owner_name sends
                      (Diag.slice_name slice_tag)
                      consumed
                      (if consumed < sends then "accumulates stale values"
                       else "deadlocks waiting for a value")))
          end
          else if consumed > 0 then
            add
              (Diag.make ~mem ~arr:c.Dae_core.Decouple.arr ~sev:Diag.Warning
                 ~analysis:Diag.Balance ~slice:slice_tag
                 (Fmt.str
                    "the %s consumes mem%d on segment %a but is not a \
                     recorded subscriber of that load channel"
                    (Diag.slice_name slice_tag)
                    mem pp_path seg))
        in
        (* CU first, then the access units — the 2-way emission order. *)
        check `Cu;
        check `Agu;
        for k = 1 to Pipeline.n_access p - 1 do
          check (`Au k)
        done
      end)
    p.Pipeline.channels;
  List.rev !diags

(* Per-segment event-ownership filter, shared with the channel-sizing
   analyzer. A poison call's home scope is its speculation block's loop,
   not the block hosting it (steered hosts sit on exit chains one block
   past the scope). An unattributed kill has no home: keep it everywhere
   so it cannot hide from the stream comparison. *)
let scope_keep (p : Pipeline.t) =
  let loops = Loops.compute p.Pipeline.original in
  let scope_of_block b =
    match Loops.innermost loops b with
    | Some l -> Some l.Loops.header
    | None -> None
  in
  let kill_scope = Hashtbl.create 32 in
  (match p.Pipeline.spec with
  | None -> ()
  | Some si ->
    List.iter
      (fun (pl : Poison.placement) ->
        Hashtbl.replace kill_scope pl.Poison.p_instr
          (scope_of_block pl.Poison.p_decision.Poison.spec_bb))
      si.Pipeline.poison.Poison.placements);
  fun (sg : Segments.seg) (e : Replay.event) ->
    match e.Replay.ev_kind with
    | Replay.Kill -> (
      match Hashtbl.find_opt kill_scope e.Replay.ev_instr with
      | Some s -> s = sg.Segments.sg_scope
      | None -> true)
    | _ -> scope_of_block e.Replay.ev_block = sg.Segments.sg_scope

let check_balance ~path_limit (p : Pipeline.t) (ctxs : Replay.ctx array) :
    Diag.t list =
  match Segments.segments ~limit:path_limit p.Pipeline.original with
  | Error (b : Segments.budget) ->
    [
      Diag.make ~block:b.Segments.start ~sev:Diag.Warning
        ~analysis:Diag.Balance ~slice:Diag.Both
        (Fmt.str
           "balance analysis skipped: %d blocks explored from bb%d exceed \
            the segment budget of %d"
           b.Segments.explored b.Segments.start b.Segments.limit);
    ]
  | Ok segs ->
    let keep = scope_keep p in
    List.concat_map
      (fun (sg : Segments.seg) ->
        check_segment p ctxs ~keep:(keep sg) sg.Segments.sg_blocks)
      segs

(* --- 2. poison coverage ------------------------------------------------- *)

let check_coverage ~path_limit (p : Pipeline.t) (si : Pipeline.spec_info)
    cu_ctx : Diag.t list =
  let poison = si.Pipeline.poison in
  let loops = Loops.compute p.Pipeline.original in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (head, reqs) ->
      let stores =
        List.filter (fun (r : Hoist.spec_req) -> r.Hoist.is_store) reqs
      in
      if stores <> [] then
        match Poison.all_paths ~limit:path_limit p.Pipeline.original loops head with
        | Error (b : Poison.path_budget) ->
          add
            (Diag.make ~block:head ~sev:Diag.Warning
               ~analysis:Diag.Poison_coverage ~slice:Diag.Cu
               (Fmt.str
                  "poison coverage of speculation block bb%d skipped: %d \
                   blocks explored exceed the path budget of %d"
                  head b.Poison.explored b.Poison.limit))
        | Ok paths ->
          let groups = Poison.group_by_true_bb stores in
          List.iter
            (fun edges ->
              (* Contracted paths jump over nested loops: when an edge's
                 source is not the previous edge's destination, replay must
                 still enter the source so the edge's inserted chain (which
                 may host our poisons) is traversed. *)
              let blocks =
                let rec build last = function
                  | [] -> []
                  | (u, v) :: rest ->
                    if u = last then v :: build v rest
                    else u :: v :: build v rest
                in
                head :: build head edges
              in
              let o = Replay.replay cu_ctx blocks in
              List.iter add o.Replay.diags;
              (* Attribute every poison event to the Algorithm 2 decision
                 that justified it. *)
              let kills =
                List.filter_map
                  (fun (e : Replay.event) ->
                    if e.Replay.ev_kind <> Replay.Kill then None
                    else
                      match
                        List.find_opt
                          (fun (pl : Poison.placement) ->
                            pl.Poison.p_instr = e.Replay.ev_instr)
                          poison.Poison.placements
                      with
                      | Some pl -> Some (e, pl)
                      | None ->
                        add
                          (Diag.make ~block:e.Replay.ev_block
                             ~mem:e.Replay.ev_mem ~arr:e.Replay.ev_arr
                             ~sev:Diag.Error ~analysis:Diag.Poison_coverage
                             ~slice:Diag.Cu
                             (Fmt.str
                                "poison call %%%d in bb%d is not justified \
                                 by any Algorithm 2 decision"
                                e.Replay.ev_instr e.Replay.ev_block));
                        None)
                  o.Replay.events
              in
              let ours =
                List.filter
                  (fun ((_ : Replay.event), (pl : Poison.placement)) ->
                    pl.Poison.p_decision.Poison.spec_bb = head)
                  kills
              in
              (* Per store group: committed on this path, or each request
                 poisoned exactly once, in request order. *)
              let resolution = ref [] in
              List.iteri
                (fun gi (true_bb, group) ->
                  let committed = List.mem true_bb blocks in
                  let gkills =
                    List.filter
                      (fun (_, (pl : Poison.placement)) ->
                        pl.Poison.p_decision.Poison.true_bb = true_bb)
                      ours
                  in
                  let group_mems =
                    List.map (fun (r : Hoist.spec_req) -> r.Hoist.mem) group
                  in
                  let garr =
                    match group with
                    | r :: _ -> Some r.Hoist.arr
                    | [] -> None
                  in
                  if committed then begin
                    (match gkills with
                    | ((e : Replay.event), _) :: _ ->
                      add
                        (Diag.make ~block:e.Replay.ev_block ?arr:garr
                           ~mem:e.Replay.ev_mem ~sev:Diag.Error
                           ~analysis:Diag.Poison_coverage ~slice:Diag.Cu
                           (Fmt.str
                              "store group of bb%d commits on path %a but \
                               is also poisoned %d time(s) — its value \
                               stream gets an extra entry"
                              true_bb pp_path blocks (List.length gkills)))
                    | [] -> ());
                    (* first resolution event: the produce at true_bb *)
                    let pos =
                      let rec find i = function
                        | [] -> None
                        | (e : Replay.event) :: rest ->
                          if
                            e.Replay.ev_kind = Replay.Produce
                            && e.Replay.ev_block = true_bb
                            && List.mem e.Replay.ev_mem group_mems
                          then Some i
                          else find (i + 1) rest
                      in
                      find 0 o.Replay.events
                    in
                    resolution := (gi, true_bb, pos) :: !resolution
                  end
                  else begin
                    let kill_mems =
                      List.map (fun ((e : Replay.event), _) -> e.Replay.ev_mem)
                        gkills
                    in
                    if kill_mems <> group_mems then begin
                      List.iter
                        (fun m ->
                          let n =
                            List.length (List.filter (( = ) m) kill_mems)
                          in
                          if n = 0 then
                            add
                              (Diag.make ~block:head ~mem:m ?arr:garr
                                 ~sev:Diag.Error
                                 ~analysis:Diag.Poison_coverage ~slice:Diag.Cu
                                 (Fmt.str
                                    "store mem%d speculated at bb%d is \
                                     never poisoned on mis-speculated path \
                                     %a — the store unit deadlocks"
                                    m head pp_path blocks))
                          else if n > 1 then
                            add
                              (Diag.make ~block:head ~mem:m ?arr:garr
                                 ~sev:Diag.Error
                                 ~analysis:Diag.Poison_coverage ~slice:Diag.Cu
                                 (Fmt.str
                                    "store mem%d speculated at bb%d is \
                                     poisoned %d times on path %a"
                                    m head n pp_path blocks)))
                        (List.sort_uniq compare group_mems);
                      if
                        List.sort compare kill_mems
                        = List.sort compare group_mems
                      then
                        add
                          (Diag.make ~block:head ?arr:garr ~sev:Diag.Error
                             ~analysis:Diag.Poison_coverage ~slice:Diag.Cu
                             (Fmt.str
                                "poison calls on path %a run [%a] but the \
                                 group speculates [%a] — out of request \
                                 order"
                                pp_path blocks
                                Fmt.(list ~sep:comma (fmt "mem%d"))
                                kill_mems
                                Fmt.(list ~sep:comma (fmt "mem%d"))
                                group_mems))
                    end;
                    let pos =
                      match gkills with
                      | ((e : Replay.event), _) :: _ ->
                        let rec find i = function
                          | [] -> None
                          | (e' : Replay.event) :: rest ->
                            if e' == e then Some i else find (i + 1) rest
                        in
                        find 0 o.Replay.events
                      | [] -> None
                    in
                    resolution := (gi, true_bb, pos) :: !resolution
                  end)
                groups;
              (* Speculation order: group i must resolve (first produce or
                 poison) before group i+1 on every path. *)
              let res = List.rev !resolution in
              let rec order = function
                | (gi1, bb1, Some p1) :: (((gi2, bb2, Some p2) :: _) as rest)
                  ->
                  if p1 > p2 then
                    add
                      (Diag.make ~block:head ~sev:Diag.Error
                         ~analysis:Diag.Poison_coverage ~slice:Diag.Cu
                         (Fmt.str
                            "store groups of bb%d and bb%d (speculated at \
                             bb%d in that order) resolve out of \
                             speculation order on path %a (positions %d \
                             and %d)"
                            bb1 bb2 head pp_path blocks p1 p2));
                  ignore gi1;
                  ignore gi2;
                  order rest
                | _ :: rest -> order rest
                | [] -> ()
              in
              order res)
            paths)
    si.Pipeline.hoist.Hoist.spec_req_map;
  List.rev !diags

(* --- 3. LoD residue ----------------------------------------------------- *)

let check_residue (p : Pipeline.t) : Diag.t list =
  match p.Pipeline.spec with
  | None -> []
  | Some si ->
    let hoist = si.Pipeline.hoist in
    let diags = ref [] in
    let add d = diags := d :: !diags in
    (* Primary rule: in the final AGU, a consume of a hoisted load that is
       not one of the consumes Algorithm 1 itself relocated to a chain
       head is a residue — the hoist was supposed to eliminate it. *)
    Func.iter_instrs p.Pipeline.agu (fun (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Consume_val { arr; mem }
          when List.mem mem hoist.Hoist.hoisted_mems
               && not (List.mem i.Instr.id hoist.Hoist.head_consume_ids) ->
          let block =
            match Func.block_of_instr p.Pipeline.agu ~id:i.Instr.id with
            | Some b -> Some b.Block.bid
            | None -> None
          in
          add
            (Diag.make ?block ~mem ~arr ~sev:Diag.Error
               ~analysis:Diag.Lod_residue ~slice:Diag.Agu
               (Fmt.str
                  "the AGU still consumes hoisted load mem%d outside its \
                   chain head (%%%d) — a loss-of-decoupling \
                   synchronization speculation should have eliminated"
                  mem i.Instr.id))
        | _ -> ());
    (* Secondary (conservative) rule: a load with a control LoD whose
       every source block is a speculation target, sitting inside the
       region Algorithm 1's traversal actually visits from one of those
       heads, should have been hoisted. Blocks outside that region — in a
       nested loop, or reachable from the head only through one — are
       exempt: the traversal never gets there. *)
    let data_blocked = Lod.data_blocked p.Pipeline.lod in
    let loops = Loops.compute p.Pipeline.original in
    let region_memo = Hashtbl.create 8 in
    let in_region ~head b =
      let region =
        match Hashtbl.find_opt region_memo head with
        | Some r -> r
        | None ->
          let r = Hoist.traversal_order p.Pipeline.original loops head in
          Hashtbl.replace region_memo head r;
          r
      in
      b <> head && List.mem b region
    in
    List.iter
      (fun (op : Lod.mem_op) ->
        if
          (not op.Lod.is_store)
          && (not (List.mem op.Lod.mem hoist.Hoist.hoisted_mems))
          && not (List.mem op.Lod.mem data_blocked)
        then
          match List.assoc_opt op.Lod.mem p.Pipeline.lod.Lod.control_lod with
          | Some srcs when srcs <> [] ->
            let heads =
              List.concat_map
                (Lod.heads_for_source p.Pipeline.lod)
                srcs
            in
            if
              List.length heads >= List.length srcs
              && List.exists
                   (fun head -> in_region ~head op.Lod.block)
                   heads
            then
              add
                (Diag.make ~block:op.Lod.block ~mem:op.Lod.mem ~arr:op.Lod.arr
                   ~sev:Diag.Warning ~analysis:Diag.Lod_residue
                   ~slice:Diag.Agu
                   (Fmt.str
                      "load mem%d has a control LoD that speculation \
                       targets (heads %a) yet was not hoisted — residual \
                       synchronization"
                      op.Lod.mem
                      Fmt.(list ~sep:comma (fmt "bb%d"))
                      (List.sort_uniq compare heads)))
          | _ -> ())
      p.Pipeline.lod.Lod.mem_ops;
    List.rev !diags

(* --- entry points ------------------------------------------------------- *)

let dedup (ds : Diag.t list) : Diag.t list =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun d ->
      if Hashtbl.mem seen d then false
      else begin
        Hashtbl.replace seen d ();
        true
      end)
    ds

let unit_contexts (p : Pipeline.t) : Replay.ctx array =
  let dispatches =
    match p.Pipeline.spec with
    | Some si -> si.Pipeline.poison.Poison.dispatches
    | None -> []
  in
  let agu_ctx =
    Replay.create ~orig:p.Pipeline.original ~slice:p.Pipeline.snap_agu
      ~final:p.Pipeline.agu ~slice_tag:Diag.Agu
      ~inserted_from:p.Pipeline.cu_inserted_from ~dispatches:[]
  in
  let cu_ctx =
    Replay.create ~orig:p.Pipeline.original ~slice:p.Pipeline.snap_cu
      ~final:p.Pipeline.cu ~slice_tag:Diag.Cu
      ~inserted_from:p.Pipeline.cu_inserted_from ~dispatches
  in
  let au_ctxs =
    List.mapi
      (fun i (snap, final) ->
        Replay.create ~orig:p.Pipeline.original ~slice:snap ~final
          ~slice_tag:(Diag.Au (i + 1))
          ~inserted_from:p.Pipeline.cu_inserted_from ~dispatches:[])
      (List.combine p.Pipeline.snap_aus p.Pipeline.aus)
  in
  Array.of_list (agu_ctx :: cu_ctx :: au_ctxs)

let contexts (p : Pipeline.t) : Replay.ctx * Replay.ctx =
  let ctxs = unit_contexts p in
  (ctxs.(0), ctxs.(1))

type seg_events = {
  se_seg : Segments.seg;
  se_units : Replay.event list array;
  se_units_raw : Replay.event list array;
}

let segment_events ?(path_limit = Poison.default_path_limit) (p : Pipeline.t)
    : (seg_events list, Segments.budget) result =
  match Segments.segments ~limit:path_limit p.Pipeline.original with
  | Error b -> Error b
  | Ok segs ->
    let ctxs = unit_contexts p in
    let keep = scope_keep p in
    Ok
      (List.map
         (fun (sg : Segments.seg) ->
           let outs =
             Array.map (fun ctx -> Replay.replay ctx sg.Segments.sg_blocks)
               ctxs
           in
           {
             se_seg = sg;
             se_units =
               Array.map
                 (fun (o : Replay.outcome) ->
                   List.filter (keep sg) o.Replay.events)
                 outs;
             se_units_raw =
               Array.map (fun (o : Replay.outcome) -> o.Replay.events) outs;
           })
         segs)

let run ?(path_limit = Poison.default_path_limit) (p : Pipeline.t) :
    Diag.t list =
  let ctxs = unit_contexts p in
  let balance = check_balance ~path_limit p ctxs in
  let coverage =
    match p.Pipeline.spec with
    | Some si -> check_coverage ~path_limit p si ctxs.(1)
    | None -> []
  in
  let residue = check_residue p in
  dedup (balance @ coverage @ residue)

let install () =
  Pipeline.post_check_hook :=
    fun p ->
      let ds = run p in
      if Diag.errors ds > 0 then
        raise
          (Pipeline.Compile_error
             (Fmt.str "%s: decoupling protocol check failed:@.%a"
                p.Pipeline.original.Func.name Diag.pp_report ds))
