(** Static channel sizing and deadlock-freedom over the {!Channel} graph.

    The core is an abstract causality replay: a latency-free mirror of the
    timing engine (same per-unit out-of-order window, in-order retirement
    per channel, per-array LSQ occupancy with store values applied in
    allocation order, worst-case address-oblivious RAW, subscriber-space
    reservation at load issue) run over compositions of the checker's
    per-segment event streams. Completion of every composition under a
    capacity assignment shows each wait cycle of the channel/dependence
    graph has positive slack — the configuration cannot deadlock on any
    covered trace shape; a stuck composition yields the blocked wait cycle
    as a diagnosis. Gates are not replayed (the DAE-mode AGU serialization
    only removes runahead, it adds no tokens); the sim cross-validation in
    the test suite and bench sweep backs the approximation.

    On top of the replay the analyzer computes, per channel: the minimum
    safe depth (smallest capacity whose compositions all complete), a
    slack-matched recommendation for full-rate streaming over the longest
    mismatched reconvergent paths, and a criticality score predicting
    which channel bounds steady-state decoupling (the expected dominant
    [Fifo_full] source). It also emits a static per-event cycle-bound
    coefficient: a completed run at a validated configuration takes at
    most [bound_per_event * events + bound_fill] cycles for a trace of
    [events] entries. *)

module Config = Dae_sim.Config

type sized = {
  sz_chan : Channel.chan;
  sz_configured : int;  (** depth under the analyzed [Config.t] *)
  sz_min : int;  (** minimum safe depth (abstract replay completes) *)
  sz_matched : int;  (** slack-matched recommendation, [>= sz_min] *)
  sz_score : int;  (** criticality: rate × drain service span *)
}

type verdict =
  | Deadlock_free
  | Deadlock of string list
      (** each entry describes one zero-slack wait cycle *)

type t = {
  channels : sized list;
  verdict : verdict;  (** for the analyzed configuration *)
  critical : Channel.kind option;
      (** the predicted dominant [Fifo_full] source; [None] only when the
          pipeline moves no tokens *)
  min_cfg : Config.t;
      (** the analyzed config with each channel-class knob lowered to the
          analyzer's minimum over that class *)
  bound_per_event : int;
  bound_fill : int;
  graph : Channel.t;
}

(** Analyze one compiled pipeline against [cfg]. [Error] propagates the
    segment-budget overrun of the graph extraction. *)
val analyze :
  ?path_limit:int ->
  cfg:Config.t ->
  Dae_core.Pipeline.t ->
  (t, Segments.budget) result

val bound : t -> events:int -> iters:int -> int
(** [bound_per_event * events + unit_ii * iters + bound_fill] — the iters
    term pays for loop iterations that move no tokens (the unit scheduler
    still charges them [unit_ii] cycles each). *)

val bound_of_timelines : t -> Dae_sim.Machine.timeline list -> int
(** Sum of {!bound} over collected per-invocation timelines (a simulation
    run with [~collect:true]): the analyzer's total predicted ceiling for
    that run's [cycles]. *)

val deadlocks : t -> bool

val critical_decrement : t -> (Channel.kind * Config.t) option
(** The boundary probe: [min_cfg] with the critical channel's class knob
    at (class minimum − 1) — the configuration the simulator must either
    refuse ({!Config.validate}), dynamically deadlock on, or slow down on.
    [None] when there is no critical channel. *)

val pp : Format.formatter -> t -> unit
