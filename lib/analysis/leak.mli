(** Dynamic interference-witness search for speculative leakage.

    Complements {!Taint}'s static verdict with concrete counterexamples: a
    witness is a pair of initial memories differing in exactly one
    *architecturally dead* cell — one the speculative machine reads but the
    sequential golden execution never does — whose timing replays diverge.
    Divergence is anything the microarchitecture exposes: cycle counts,
    per-unit stall partitions, or the channel-trace digests (request
    addresses are trace payloads, so a secret-dependent speculative address
    is observable even when the cycle count happens to coincide).

    Candidates are found differentially: run the machine once with traces
    collected, take every load-request address it issued, and subtract the
    golden interpreter's read set over the same invocation sequence.
    Flipping such a cell cannot change any architectural result (the run is
    still golden-checked, as proof), so any divergence is a pure
    microarchitectural information leak. Each candidate is re-prepared
    through {!Dae_sim.Retime} and replayed at every configuration point —
    by default the scratchpad baseline *and* the default cache hierarchy,
    where set/bank/row indexing gives secrets a much wider timing channel. *)

type outcome = Cycles of int | Deadlock

type divergence = {
  d_cfg : string;  (** configuration-point label, e.g. "cache" *)
  d_base : outcome;
  d_flip : outcome;
  d_cycles_differ : bool;
  d_stats_differ : bool;  (** per-unit stall partitions differ *)
}

type witness = {
  w_arr : string;
  w_idx : int;
  w_base : int;  (** the cell's original value *)
  w_flip : int;  (** the flipped secret *)
  w_digest_differs : bool;  (** channel-trace digests diverge (any config) *)
  w_divs : divergence list;  (** configuration points whose timing diverged *)
}

type t = {
  l_arch : Dae_sim.Machine.arch;
  l_reads : int;  (** distinct cells the machine load-requested *)
  l_candidates : int;  (** of those, never read by the golden execution *)
  l_probed : int;
  l_skipped : int;  (** probes that failed to replay or were impure *)
  l_witnesses : witness list;
}

val default_points : (string * Dae_sim.Config.t) list
(** [("scratchpad", default); ("cache", default cache geometry)]. *)

val search :
  ?budget:int ->
  ?masks:int list ->
  ?points:(string * Dae_sim.Config.t) list ->
  Dae_sim.Machine.arch ->
  Dae_ir.Func.t ->
  invocations:Dae_sim.Machine.invocation list ->
  mem:Dae_ir.Interp.Memory.t ->
  t
(** Probe up to [budget] candidate cells (default 8, deterministic order:
    array name then index), xoring each with the [masks] in turn (default
    [[1; 8; 64]] — a neighbour flip, a cross-line flip and a cross-set
    flip for the default geometry). All masks are tried until one yields a
    *timing* divergence; a digest-only witness is kept as the fallback, so
    each cell reports at most one witness, the strongest found. [mem] is
    copied, never mutated. Probes that fail to
    replay (or whose final memories differ beyond the secret cell) are
    counted in [l_skipped], never reported as witnesses.
    @raise Dae_sim.Machine.Check_failed (and the {!Dae_sim.Exec}
    exceptions) when the *base* program itself fails to execute. *)

val found : t -> bool
val pp : Format.formatter -> t -> unit
