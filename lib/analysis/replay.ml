(* Abstract replay of an original-CFG block path over a pre-cleanup slice.

   The decoupler clones the original function, so before cleanup both
   slices still contain every original block id; the speculation passes
   move instructions between those blocks (Hoist, Spec_load) and insert
   fresh blocks on CU edges (Poison's hosts, dispatches and joins — all
   with bid >= [inserted_from]). Replaying a path [b0; b1; ...] therefore
   walks the slice's copy of each bi, collecting its channel events, and
   between bi and b(i+1) traverses whatever inserted chain the poison pass
   spliced onto that edge.

   Steered dispatch blocks branch on an Algorithm 3 steering flag — an SSA
   boolean φ network (Steer) that is true iff the current iteration's path
   passed the speculation block. The replay evaluates the *materialized*
   network: every I1 φ whose incoming value for the actual predecessor is
   a constant or an already-evaluated flag is tracked in an environment,
   and a dispatch branches on the looked-up value. When the environment
   cannot decide (a path entered mid-iteration), the fallback re-derives
   the flag abstractly over the walked prefix with exactly Steer's rules:
   true at the speculation block, false at any loop header, false when not
   forward-reachable from the speculation block, true when dominated by
   it, otherwise carried. *)

open Dae_ir

type ekind = Send_ld | Send_st | Consume | Produce | Kill

type event = {
  ev_block : int;  (** slice block hosting the instruction *)
  ev_instr : int;
  ev_arr : string;
  ev_mem : Instr.mem_id;
  ev_kind : ekind;
}

type ctx = {
  orig : Func.t;
  slice : Func.t;
  slice_tag : Diag.slice;
  inserted_from : int;
  survivors : (int, unit) Hashtbl.t;
  dispatches : (int * int) list;  (** dispatch bid -> guarding spec_bb *)
  loops : Loops.t;  (** of [orig] *)
  dom : Dom.t;  (** of [orig] *)
  reach : Reach.t;  (** of [orig] *)
}

(* Cleanup only ever deletes instructions (ids are never renumbered), so
   "this snapshot consume still executes" is exactly "its id is still in
   the final slice" — more precise than re-running the liveness analysis
   on the snapshot, where a consume can feed a branch that cleanup's
   DCE/simplify fixed point later folds away. *)
let create ~(orig : Func.t) ~(slice : Func.t) ~(final : Func.t) ~slice_tag
    ~inserted_from ~dispatches : ctx =
  let loops = Loops.compute orig in
  let survivors = Hashtbl.create 64 in
  Func.iter_instrs final (fun i -> Hashtbl.replace survivors i.Instr.id ());
  {
    orig;
    slice;
    slice_tag;
    inserted_from;
    survivors;
    dispatches;
    loops;
    dom = Dom.compute orig;
    reach = Reach.create_with_backedges orig ~backedges:loops.Loops.backedges;
  }

type outcome = { events : event list; diags : Diag.t list }

(* Steer's flag for [spec_bb] at the end of a forward path walking
   [prefix] (oldest block first) — the abstract per-path evaluation of the
   φ network Steer materializes. *)
let steer_eval (c : ctx) ~spec_bb (prefix : int list) : bool =
  List.fold_left
    (fun flag b ->
      if b = spec_bb then true
      else if Loops.is_header c.loops b then false
      else if not (Reach.reachable c.reach ~src:spec_bb ~dst:b) then false
      else if Dom.dominates c.dom spec_bb b then true
      else flag)
    false prefix

let replay (c : ctx) (path : int list) : outcome =
  let events = ref [] in
  let diags = ref [] in
  let env : (int, bool) Hashtbl.t = Hashtbl.create 32 in
  let prefix = ref [] in
  (* walked original blocks, newest first *)
  let prev = ref None in
  (* actual slice-level predecessor block *)
  let diag ?block ?edge sev msg =
    diags :=
      Diag.make ?block ?edge ~sev ~analysis:Diag.Structure ~slice:c.slice_tag
        msg
      :: !diags
  in
  let exception Abort in
  let eval_operand = function
    | Types.Cst (Types.Bool b) -> Some b
    | Types.Cst (Types.Int _) -> None
    | Types.Var v -> Hashtbl.find_opt env v
  in
  let enter_block bid =
    match Func.block_opt c.slice bid with
    | None ->
      diag ~block:bid Diag.Error
        (Fmt.str "original block bb%d is missing from the slice snapshot" bid);
      raise Abort
    | Some b ->
      (match !prev with
      | None -> ()
      | Some p ->
        List.iter
          (fun (phi : Block.phi) ->
            if phi.Block.ty = Types.I1 then
              match List.assoc_opt p phi.Block.incoming with
              | Some op -> (
                match eval_operand op with
                | Some v -> Hashtbl.replace env phi.Block.pid v
                | None -> ())
              | None -> ())
          b.Block.phis);
      List.iter
        (fun (i : Instr.t) ->
          let push kind arr mem =
            events :=
              {
                ev_block = bid;
                ev_instr = i.Instr.id;
                ev_arr = arr;
                ev_mem = mem;
                ev_kind = kind;
              }
              :: !events
          in
          match i.Instr.kind with
          | Instr.Send_ld_addr { arr; mem; _ } -> push Send_ld arr mem
          | Instr.Send_st_addr { arr; mem; _ } -> push Send_st arr mem
          | Instr.Consume_val { arr; mem } ->
            (* a consume whose value is dead is removed by slice DCE and
               never executes: replay only the ones cleanup kept *)
            if Hashtbl.mem c.survivors i.Instr.id then push Consume arr mem
          | Instr.Produce_val { arr; mem; _ } -> push Produce arr mem
          | Instr.Poison { arr; mem } -> push Kill arr mem
          | _ -> ())
        b.Block.instrs;
      prev := Some bid
  in
  (* Walk from original block [b] to its original successor [next],
     traversing any inserted chain the poison pass spliced on the edge.
     When (b, next) is not an original edge the step is a contraction gap
     (Segments/Poison.all_paths jump over nested loops): nothing executes
     between the two blocks as far as this scope is concerned, so the walk
     just moves on. *)
  let step b next =
    let ob = Func.block c.orig b in
    let orig_edges = Block.successor_edges ob in
    let arm =
      let rec find j = function
        | [] -> None
        | t :: _ when t = next -> Some j
        | _ :: rest -> find (j + 1) rest
      in
      find 0 orig_edges
    in
    match arm with
    | None -> (* contraction gap *) ()
    | Some j ->
      let sb = Func.block c.slice b in
      let slice_edges = Block.successor_edges sb in
      (match List.nth_opt slice_edges j with
      | None ->
        diag ~block:b Diag.Error
          (Fmt.str
             "slice terminator of bb%d has %d arms where the original has %d"
             b (List.length slice_edges) (List.length orig_edges));
        raise Abort
      | Some first ->
        let cur = ref first in
        let steps = ref 0 in
        while !cur >= c.inserted_from do
          incr steps;
          if !steps > 10_000 then begin
            diag ~edge:(b, next) Diag.Error
              "inserted-block chain does not terminate";
            raise Abort
          end;
          let bid = !cur in
          enter_block bid;
          let ib = Func.block c.slice bid in
          (match ib.Block.term with
          | Block.Br t -> cur := t
          | Block.Cond_br (flag_op, t, f) ->
            let v =
              match eval_operand flag_op with
              | Some v -> Some v
              | None -> (
                match List.assoc_opt bid c.dispatches with
                | Some spec_bb ->
                  Some (steer_eval c ~spec_bb (List.rev !prefix))
                | None -> None)
            in
            (match v with
            | Some true -> cur := t
            | Some false -> cur := f
            | None ->
              diag ~block:bid ~edge:(b, next) Diag.Warning
                "cannot statically evaluate the steering flag of an \
                 inserted dispatch; taking the fall-through arm";
              cur := f)
          | Block.Switch _ | Block.Ret _ ->
            diag ~block:bid ~edge:(b, next) Diag.Error
              "inserted block ends in a switch or return";
            raise Abort)
        done;
        if !cur <> next then begin
          diag ~edge:(b, next) Diag.Error
            (Fmt.str
               "replay diverged: original edge bb%d->bb%d resolves to bb%d \
                in the slice"
               b next !cur);
          raise Abort
        end)
  in
  (try
     match path with
     | [] -> ()
     | b0 :: rest ->
       prefix := [ b0 ];
       enter_block b0;
       List.iter
         (fun next ->
           let b = List.hd !prefix in
           step b next;
           prefix := next :: !prefix;
           enter_block next)
         rest
   with Abort -> ());
  { events = List.rev !events; diags = List.rev !diags }
