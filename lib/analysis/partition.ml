(* Static address-stream partitioning (N-way decoupling).

   The retrospective's lesson — and DAE4HLS's (PAPERS.md) — is that one
   AGU serializes address streams that could run ahead independently:
   memory-level parallelism is bounded by the single unit's issue order.
   This analysis recovers the streams statically:

   + cluster the kernel's memory operations by array (ownership is
     per-array: the request stream of one array must stay single-producer
     so the per-array Lemma 6.1 pairing survives);
   + connect array A to array B when B's address computation (value
     dependence) or B's guarding branch conditions (order dependence)
     transitively read a load of A — both traced with the same
     {!Defuse.backward_slice} the LoD analysis uses, so through-φ
     selection conditions are included;
   + merge strongly connected components: mutually address-dependent
     arrays would only ping-pong values between units, so they share one.
     The quotient is a DAG of clusters;
   + number the clusters in deterministic topological order — cluster 0
     is the classic AGU — and, over [max_units], repeatedly merge the two
     lightest-traffic clusters so the big streams keep their own units.

   The per-unit report estimates traffic (static ops weighted 4^depth by
   loop nesting) and MLP (address streams with load-free address slices —
   the requests a unit can issue arbitrarily far ahead). The emitted
   assignment feeds Decouple.run_n; the generalized checker and sizer
   then prove every new unit boundary sound and sized. *)

open Dae_ir
module Lod = Dae_core.Lod

type edge_kind = Value | Order

type cluster = {
  cl_unit : int;
  cl_arrays : string list;
  cl_loads : int;
  cl_stores : int;
  cl_traffic : int;
  cl_streams : int;
}

type edge = {
  e_src : int;
  e_dst : int;
  e_kind : edge_kind;
  e_src_arr : string;
  e_dst_arr : string;
}

type t = {
  clusters : cluster list;
  edges : edge list;
  assignment : Dae_core.Decouple.assignment;
  n_arrays : int;
}

let edge_kind_name = function Value -> "value" | Order -> "order"

(* 4^depth, capped so deep artificial nests cannot overflow. *)
let depth_weight d = 1 lsl (2 * min d 10)

let analyze ?(max_units = max_int) (f : Func.t) : t =
  let max_units = max 1 max_units in
  let ops = Lod.collect_mem_ops f in
  let du = Defuse.compute f in
  let loops = Loops.compute f in
  let arrays =
    List.sort_uniq compare (List.map (fun (o : Lod.mem_op) -> o.Lod.arr) ops)
  in
  (* SSA id -> array it loads *)
  let load_arr : (int, string) Hashtbl.t = Hashtbl.create 16 in
  Func.iter_instrs f (fun (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Load { arr; _ } -> Hashtbl.replace load_arr i.Instr.id arr
      | _ -> ());
  (* Memoized slices: one backward slice per address/condition variable. *)
  let slice_memo : (int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  let slice_of v =
    match Hashtbl.find_opt slice_memo v with
    | Some s -> s
    | None ->
      let s = Defuse.backward_slice du v in
      Hashtbl.replace slice_memo v s;
      s
  in
  let loads_feeding vars =
    List.concat_map
      (fun v ->
        Hashtbl.fold
          (fun id () acc ->
            match Hashtbl.find_opt load_arr id with
            | Some a -> a :: acc
            | None -> acc)
          (slice_of v) [])
      vars
    |> List.sort_uniq compare
  in
  let cdep = Control_dep.compute f in
  (* array-level dependence edges, deduplicated *)
  let deps : (string * string * edge_kind, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let idx_of (i : Instr.t) =
    match i.Instr.kind with
    | Instr.Load { idx; _ } | Instr.Store { idx; _ } -> Some idx
    | _ -> None
  in
  List.iter
    (fun (o : Lod.mem_op) ->
      let b = o.Lod.arr in
      (match Defuse.find_instr du o.Lod.instr_id with
      | Some i -> (
        match idx_of i with
        | Some idx ->
          List.iter
            (fun a ->
              if a <> b then Hashtbl.replace deps (a, b, Value) ())
            (loads_feeding (Defuse.vars_of_operands [ idx ]))
        | None -> ())
      | None -> ());
      (* order: the op executes only when branches decide so; a branch
         condition reading a load of A orders A before B *)
      List.iter
        (fun src ->
          match Func.block_opt f src with
          | None -> ()
          | Some sb ->
            List.iter
              (fun a ->
                if a <> b && not (Hashtbl.mem deps (a, b, Value)) then
                  Hashtbl.replace deps (a, b, Order) ())
              (loads_feeding
                 (Defuse.vars_of_operands (Block.terminator_operands sb))))
        (Control_dep.transitive_sources cdep o.Lod.block))
    ops;
  let dep_list =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) deps [])
  in
  (* SCCs over the union graph (value ∪ order): mutually dependent arrays
     share a unit, so the cluster quotient is a DAG. Kosaraju on the
     (tiny) array graph. *)
  let succs a =
    List.filter_map
      (fun (x, y, _) -> if x = a then Some y else None)
      dep_list
    |> List.sort_uniq compare
  in
  let preds a =
    List.filter_map
      (fun (x, y, _) -> if y = a then Some x else None)
      dep_list
    |> List.sort_uniq compare
  in
  let order = ref [] in
  let seen = Hashtbl.create 16 in
  let rec dfs1 a =
    if not (Hashtbl.mem seen a) then begin
      Hashtbl.replace seen a ();
      List.iter dfs1 (succs a);
      order := a :: !order
    end
  in
  List.iter dfs1 arrays;
  let comp_of : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let rec dfs2 root a =
    if not (Hashtbl.mem comp_of a) then begin
      Hashtbl.replace comp_of a root;
      List.iter (dfs2 root) (preds a)
    end
  in
  List.iter (fun a -> dfs2 a a) !order;
  let comp a = try Hashtbl.find comp_of a with Not_found -> a in
  let roots = List.sort_uniq compare (List.map comp arrays) in
  let members r = List.filter (fun a -> comp a = r) arrays in
  (* Topological order of the cluster DAG (Kahn, smallest root name
     first) — deterministic, and cluster 0 becomes the classic AGU. *)
  let cedges =
    List.sort_uniq compare
      (List.filter_map
         (fun (a, b, _) ->
           let ca = comp a and cb = comp b in
           if ca <> cb then Some (ca, cb) else None)
         dep_list)
  in
  let topo =
    let remaining = ref roots and out = ref [] in
    while !remaining <> [] do
      let ready =
        List.filter
          (fun r ->
            not
              (List.exists
                 (fun (s, d) -> d = r && List.mem s !remaining)
                 cedges))
          !remaining
      in
      (* cedges is acyclic by construction, so ready is never empty *)
      let pick = List.hd (List.sort compare ready) in
      out := pick :: !out;
      remaining := List.filter (fun r -> r <> pick) !remaining
    done;
    List.rev !out
  in
  (* per-array static metrics *)
  let depth_of b =
    match Loops.innermost loops b with
    | Some l -> l.Loops.depth
    | None -> 0
  in
  let arr_metrics a =
    List.fold_left
      (fun (lds, sts, traffic, streams) (o : Lod.mem_op) ->
        if o.Lod.arr <> a then (lds, sts, traffic, streams)
        else
          let w = depth_weight (depth_of o.Lod.block) in
          if o.Lod.is_store then (lds, sts + 1, traffic + w, streams)
          else
            let streaming =
              match Defuse.find_instr du o.Lod.instr_id with
              | Some i -> (
                match idx_of i with
                | Some idx ->
                  loads_feeding (Defuse.vars_of_operands [ idx ]) = []
                | None -> false)
              | None -> false
            in
            ( lds + 1,
              sts,
              traffic + w,
              if streaming then streams + 1 else streams ))
      (0, 0, 0, 0) ops
  in
  (* mutable proto-clusters in topo order *)
  let protos =
    ref
      (List.mapi
         (fun i r ->
           let arrs = members r in
           let lds, sts, traffic, streams =
             List.fold_left
               (fun (l, s, t, st) a ->
                 let l', s', t', st' = arr_metrics a in
                 (l + l', s + s', t + t', st + st'))
               (0, 0, 0, 0) arrs
           in
           (i, arrs, lds, sts, traffic, streams))
         topo)
  in
  (* over budget: merge the two lightest-traffic clusters (the big
     streams keep their own units); deterministic tie-break on the
     earlier topological index *)
  while List.length !protos > max_units do
    match
      List.sort
        (fun (i1, _, _, _, t1, _) (i2, _, _, _, t2, _) ->
          compare (t1, i1) (t2, i2))
        !protos
    with
    | (i1, a1, l1, s1, t1, m1) :: (i2, a2, l2, s2, t2, m2) :: _ ->
      let merged =
        ( min i1 i2,
          List.sort compare (a1 @ a2),
          l1 + l2,
          s1 + s2,
          t1 + t2,
          m1 + m2 )
      in
      protos :=
        merged
        :: List.filter
             (fun (i, _, _, _, _, _) -> i <> i1 && i <> i2)
             !protos
    | _ -> assert false
  done;
  let protos =
    List.sort (fun (i1, _, _, _, _, _) (i2, _, _, _, _, _) -> compare i1 i2)
      !protos
  in
  let clusters =
    List.mapi
      (fun u (_, arrs, lds, sts, traffic, streams) ->
        {
          cl_unit = u;
          cl_arrays = arrs;
          cl_loads = lds;
          cl_stores = sts;
          cl_traffic = traffic;
          cl_streams = streams;
        })
      protos
  in
  let unit_of_arr a =
    match
      List.find_opt (fun c -> List.mem a c.cl_arrays) clusters
    with
    | Some c -> c.cl_unit
    | None -> 0
  in
  let edges =
    List.filter_map
      (fun (a, b, kind) ->
        let ua = unit_of_arr a and ub = unit_of_arr b in
        if ua = ub then None
        else
          Some
            { e_src = ua; e_dst = ub; e_kind = kind; e_src_arr = a;
              e_dst_arr = b })
      dep_list
    |> List.sort_uniq compare
  in
  {
    clusters;
    edges;
    assignment =
      {
        Dae_core.Decouple.n_access = List.length clusters;
        owner = List.map (fun a -> (a, unit_of_arr a)) arrays;
      };
    n_arrays = List.length arrays;
  }

let unit_name = function 0 -> "AGU" | k -> "AU" ^ string_of_int k

let pp ppf (t : t) =
  let values, orders =
    List.partition (fun e -> e.e_kind = Value) t.edges
  in
  Fmt.pf ppf
    "partition: %d access unit(s) over %d array(s), %d value edge(s), %d \
     order edge(s)@."
    (List.length t.clusters) t.n_arrays (List.length values)
    (List.length orders);
  List.iter
    (fun c ->
      Fmt.pf ppf
        "  unit %d (%-4s) arrays [%s]  loads %d  stores %d  traffic %d  \
         mlp %d@."
        c.cl_unit
        (unit_name c.cl_unit)
        (String.concat "," c.cl_arrays)
        c.cl_loads c.cl_stores c.cl_traffic c.cl_streams)
    t.clusters;
  List.iter
    (fun e ->
      Fmt.pf ppf "  %s -> %s (%s): %s feeds %s@." (unit_name e.e_src)
        (unit_name e.e_dst)
        (edge_kind_name e.e_kind)
        e.e_src_arr e.e_dst_arr)
    t.edges

let pp_dot ppf (t : t) =
  Fmt.pf ppf "digraph partition {@.  rankdir=LR;@.";
  List.iter
    (fun c ->
      Fmt.pf ppf
        "  u%d [shape=box,label=\"%s\\n%s\\nloads %d stores %d\\ntraffic \
         %d mlp %d\"];@."
        c.cl_unit
        (unit_name c.cl_unit)
        (String.concat "," c.cl_arrays)
        c.cl_loads c.cl_stores c.cl_traffic c.cl_streams)
    t.clusters;
  Fmt.pf ppf "  cu [shape=ellipse,label=\"CU\"];@.";
  List.iter
    (fun c -> Fmt.pf ppf "  u%d -> cu [style=dotted];@." c.cl_unit)
    t.clusters;
  List.iter
    (fun e ->
      Fmt.pf ppf "  u%d -> u%d [label=\"%s: %s->%s\"%s];@." e.e_src e.e_dst
        (edge_kind_name e.e_kind)
        e.e_src_arr e.e_dst_arr
        (match e.e_kind with Value -> "" | Order -> ",style=dashed"))
    t.edges;
  Fmt.pf ppf "}@."
