(* Channel dependence graph extraction.

   The edge set comes straight from the compiled pipeline (channel uses +
   load subscribers: exactly the FIFOs Timing.run instantiates). Rates
   come from the checker's segment universe: every dynamic trace is a
   concatenation of segments, so per-edge token counts over the
   scope-owned events of each segment give sound per-iteration rate
   intervals, and the raw per-segment streams (kept in [seg_raw]) are the
   emission orders the sizing analyzer's abstract causality replay
   composes. *)

open Dae_ir
module Pipeline = Dae_core.Pipeline
module Hoist = Dae_core.Hoist
module Config = Dae_sim.Config

type kind =
  | Req_ld of string
  | Req_st of string
  | Stv of string
  | Ldv of Instr.mem_id * [ `Agu | `Cu ]

type rate = { lo : int; hi : int; spec_hi : int; kill_hi : int }
type chan = { kind : kind; arr : string; rate : rate }

type t = {
  chans : chan list;
  sync_consumes : int;
  events_hi : int;
  n_segments : int;
  seg_raw : (Replay.event list * Replay.event list) list;
  load_subscribers : (Instr.mem_id * [ `Agu | `Cu ] list) list;
}

let unit_suffix = function `Agu -> "AGU" | `Cu -> "CU"

let name = function
  | Req_ld arr -> arr ^ ".req_ld"
  | Req_st arr -> arr ^ ".req_st"
  | Stv arr -> arr ^ ".stv"
  | Ldv (mem, u) -> Printf.sprintf "ldv%d.%s" mem (unit_suffix u)

let knob = function
  | Req_ld _ | Req_st _ -> "req-fifo"
  | Ldv _ -> "val-fifo"
  | Stv _ -> "stv-fifo"

let capacity (cfg : Config.t) = function
  | Req_ld _ | Req_st _ -> cfg.Config.request_fifo_capacity
  | Ldv _ -> cfg.Config.value_fifo_capacity
  | Stv _ -> cfg.Config.store_value_fifo_capacity

let with_capacity (cfg : Config.t) kind v =
  match kind with
  | Req_ld _ | Req_st _ -> { cfg with Config.request_fifo_capacity = v }
  | Ldv _ -> { cfg with Config.value_fifo_capacity = v }
  | Stv _ -> { cfg with Config.store_value_fifo_capacity = v }

(* Count the events a segment moves on one edge. The counting functions
   see only the scope-owned events (Checker.seg_events filtering), so the
   interval is per iteration of the edge's own scope. *)
let count_kind kind ~(agu : Replay.event list) ~(cu : Replay.event list) =
  let count pred evs = List.length (List.filter pred evs) in
  match kind with
  | Req_ld arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Send_ld && e.Replay.ev_arr = arr)
      agu
  | Req_st arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Send_st && e.Replay.ev_arr = arr)
      agu
  | Stv arr ->
    count
      (fun (e : Replay.event) ->
        (e.Replay.ev_kind = Replay.Produce || e.Replay.ev_kind = Replay.Kill)
        && e.Replay.ev_arr = arr)
      cu
  | Ldv (mem, u) ->
    let evs = match u with `Agu -> agu | `Cu -> cu in
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Consume && e.Replay.ev_mem = mem)
      evs

let count_spec kind ~hoisted ~(agu : Replay.event list)
    ~(cu : Replay.event list) =
  let count pred evs = List.length (List.filter pred evs) in
  match kind with
  | Req_ld arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Send_ld && e.Replay.ev_arr = arr
        && List.mem e.Replay.ev_mem hoisted)
      agu
  | Req_st arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Send_st && e.Replay.ev_arr = arr
        && List.mem e.Replay.ev_mem hoisted)
      agu
  | Stv arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Kill && e.Replay.ev_arr = arr)
      cu
  | Ldv _ -> 0

let count_kill kind ~(cu : Replay.event list) =
  match kind with
  | Stv arr ->
    List.length
      (List.filter
         (fun (e : Replay.event) ->
           e.Replay.ev_kind = Replay.Kill && e.Replay.ev_arr = arr)
         cu)
  | _ -> 0

let of_pipeline ?path_limit (p : Pipeline.t) : (t, Segments.budget) result =
  match Checker.segment_events ?path_limit p with
  | Error b -> Error b
  | Ok segs ->
    let hoisted =
      match p.Pipeline.spec with
      | Some si -> si.Pipeline.hoist.Hoist.hoisted_mems
      | None -> []
    in
    (* one edge per (class, array) plus one per subscribed load value *)
    let kinds =
      let ld_arrs = ref [] and st_arrs = ref [] in
      List.iter
        (fun (c : Dae_core.Decouple.channel_use) ->
          let tgt = if c.Dae_core.Decouple.is_store then st_arrs else ld_arrs in
          if not (List.mem c.Dae_core.Decouple.arr !tgt) then
            tgt := c.Dae_core.Decouple.arr :: !tgt)
        p.Pipeline.channels;
      let ld_arrs = List.sort compare !ld_arrs
      and st_arrs = List.sort compare !st_arrs in
      List.map (fun a -> Req_ld a) ld_arrs
      @ List.map (fun a -> Req_st a) st_arrs
      @ List.map (fun a -> Stv a) st_arrs
      @ List.concat_map
          (fun (mem, subs) -> List.map (fun u -> Ldv (mem, u)) subs)
          p.Pipeline.load_subscribers
    in
    let arr_of_mem mem =
      match
        List.find_opt
          (fun (c : Dae_core.Decouple.channel_use) ->
            c.Dae_core.Decouple.mem = mem)
          p.Pipeline.channels
      with
      | Some c -> c.Dae_core.Decouple.arr
      | None -> "?"
    in
    let chans =
      List.map
        (fun kind ->
          let arr =
            match kind with
            | Req_ld a | Req_st a | Stv a -> a
            | Ldv (mem, _) -> arr_of_mem mem
          in
          let lo = ref max_int and hi = ref 0 in
          let spec_hi = ref 0 and kill_hi = ref 0 in
          List.iter
            (fun (se : Checker.seg_events) ->
              let n =
                count_kind kind ~agu:se.Checker.se_agu ~cu:se.Checker.se_cu
              in
              if n < !lo then lo := n;
              if n > !hi then hi := n;
              let s =
                count_spec kind ~hoisted ~agu:se.Checker.se_agu
                  ~cu:se.Checker.se_cu
              in
              if s > !spec_hi then spec_hi := s;
              let k = count_kill kind ~cu:se.Checker.se_cu in
              if k > !kill_hi then kill_hi := k)
            segs;
          let lo = if !lo = max_int then 0 else !lo in
          {
            kind;
            arr;
            rate = { lo; hi = !hi; spec_hi = !spec_hi; kill_hi = !kill_hi };
          })
        kinds
    in
    let sync_consumes =
      List.fold_left
        (fun acc (se : Checker.seg_events) ->
          let n =
            List.length
              (List.filter
                 (fun (e : Replay.event) ->
                   e.Replay.ev_kind = Replay.Consume)
                 se.Checker.se_agu)
          in
          max acc n)
        0 segs
    in
    let events_hi =
      List.fold_left
        (fun acc (se : Checker.seg_events) ->
          max acc
            (List.length se.Checker.se_agu + List.length se.Checker.se_cu))
        0 segs
    in
    Ok
      {
        chans;
        sync_consumes;
        events_hi;
        n_segments = List.length segs;
        seg_raw =
          List.map
            (fun (se : Checker.seg_events) ->
              (se.Checker.se_agu_raw, se.Checker.se_cu_raw))
            segs;
        load_subscribers = p.Pipeline.load_subscribers;
      }

let pp ppf (g : t) =
  Fmt.pf ppf
    "channel graph: %d edge(s) over %d segment(s), <=%d events/segment, \
     <=%d synchronizing consume(s)@."
    (List.length g.chans) g.n_segments g.events_hi g.sync_consumes;
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-14s rate [%d,%d]%s%s@." (name c.kind) c.rate.lo
        c.rate.hi
        (if c.rate.spec_hi > 0 then
           Fmt.str " spec<=%d" c.rate.spec_hi
         else "")
        (if c.rate.kill_hi > 0 then
           Fmt.str " kills<=%d" c.rate.kill_hi
         else ""))
    g.chans
