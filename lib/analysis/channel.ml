(* Channel dependence graph extraction.

   The edge set comes straight from the compiled pipeline (channel uses +
   load subscribers: exactly the FIFOs Timing.run instantiates). Rates
   come from the checker's segment universe: every dynamic trace is a
   concatenation of segments, so per-edge token counts over the
   scope-owned events of each segment give sound per-iteration rate
   intervals, and the raw per-segment streams (kept in [seg_raw]) are the
   emission orders the sizing analyzer's abstract causality replay
   composes. *)

open Dae_ir
module Pipeline = Dae_core.Pipeline
module Hoist = Dae_core.Hoist
module Config = Dae_sim.Config

type kind =
  | Req_ld of string
  | Req_st of string
  | Stv of string
  | Ldv of Instr.mem_id * [ `Agu | `Cu | `Au of int ]

type rate = { lo : int; hi : int; spec_hi : int; kill_hi : int }
type chan = { kind : kind; arr : string; rate : rate }

type t = {
  chans : chan list;
  sync_consumes : int;
  events_hi : int;
  n_segments : int;
  seg_raw : Replay.event list array list;
  load_subscribers : (Instr.mem_id * [ `Agu | `Cu | `Au of int ] list) list;
}

let unit_suffix = function
  | `Agu -> "AGU"
  | `Cu -> "CU"
  | `Au k -> "AU" ^ string_of_int k

let dense_of = function `Agu -> 0 | `Cu -> 1 | `Au k -> k + 1

let name = function
  | Req_ld arr -> arr ^ ".req_ld"
  | Req_st arr -> arr ^ ".req_st"
  | Stv arr -> arr ^ ".stv"
  | Ldv (mem, u) -> Printf.sprintf "ldv%d.%s" mem (unit_suffix u)

let knob = function
  | Req_ld _ | Req_st _ -> "req-fifo"
  | Ldv _ -> "val-fifo"
  | Stv _ -> "stv-fifo"

let capacity (cfg : Config.t) = function
  | Req_ld _ | Req_st _ -> cfg.Config.request_fifo_capacity
  | Ldv _ -> cfg.Config.value_fifo_capacity
  | Stv _ -> cfg.Config.store_value_fifo_capacity

let with_capacity (cfg : Config.t) kind v =
  match kind with
  | Req_ld _ | Req_st _ -> { cfg with Config.request_fifo_capacity = v }
  | Ldv _ -> { cfg with Config.value_fifo_capacity = v }
  | Stv _ -> { cfg with Config.store_value_fifo_capacity = v }

(* Count the events a segment moves on one edge. The counting functions
   see only the scope-owned events (Checker.seg_events filtering), so the
   interval is per iteration of the edge's own scope. [units] holds one
   stream per unit in dense order [agu; cu; au1; ...]; per-array single
   ownership means requests for an array appear in exactly one access
   unit's stream, so counting sends over every access-unit stream counts
   the owner's. *)
let access_streams (units : Replay.event list array) =
  List.concat
    (List.filteri
       (fun i _ -> i <> 1)
       (Array.to_list units))

let count_kind kind ~(units : Replay.event list array) =
  let count pred evs = List.length (List.filter pred evs) in
  match kind with
  | Req_ld arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Send_ld && e.Replay.ev_arr = arr)
      (access_streams units)
  | Req_st arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Send_st && e.Replay.ev_arr = arr)
      (access_streams units)
  | Stv arr ->
    count
      (fun (e : Replay.event) ->
        (e.Replay.ev_kind = Replay.Produce || e.Replay.ev_kind = Replay.Kill)
        && e.Replay.ev_arr = arr)
      units.(1)
  | Ldv (mem, u) ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Consume && e.Replay.ev_mem = mem)
      units.(dense_of u)

let count_spec kind ~hoisted ~(units : Replay.event list array) =
  let count pred evs = List.length (List.filter pred evs) in
  match kind with
  | Req_ld arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Send_ld && e.Replay.ev_arr = arr
        && List.mem e.Replay.ev_mem hoisted)
      (access_streams units)
  | Req_st arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Send_st && e.Replay.ev_arr = arr
        && List.mem e.Replay.ev_mem hoisted)
      (access_streams units)
  | Stv arr ->
    count
      (fun (e : Replay.event) ->
        e.Replay.ev_kind = Replay.Kill && e.Replay.ev_arr = arr)
      units.(1)
  | Ldv _ -> 0

let count_kill kind ~(units : Replay.event list array) =
  match kind with
  | Stv arr ->
    List.length
      (List.filter
         (fun (e : Replay.event) ->
           e.Replay.ev_kind = Replay.Kill && e.Replay.ev_arr = arr)
         units.(1))
  | _ -> 0

let of_pipeline ?path_limit (p : Pipeline.t) : (t, Segments.budget) result =
  match Checker.segment_events ?path_limit p with
  | Error b -> Error b
  | Ok segs ->
    let hoisted =
      match p.Pipeline.spec with
      | Some si -> si.Pipeline.hoist.Hoist.hoisted_mems
      | None -> []
    in
    (* one edge per (class, array) plus one per subscribed load value *)
    let kinds =
      let ld_arrs = ref [] and st_arrs = ref [] in
      List.iter
        (fun (c : Dae_core.Decouple.channel_use) ->
          let tgt = if c.Dae_core.Decouple.is_store then st_arrs else ld_arrs in
          if not (List.mem c.Dae_core.Decouple.arr !tgt) then
            tgt := c.Dae_core.Decouple.arr :: !tgt)
        p.Pipeline.channels;
      let ld_arrs = List.sort compare !ld_arrs
      and st_arrs = List.sort compare !st_arrs in
      List.map (fun a -> Req_ld a) ld_arrs
      @ List.map (fun a -> Req_st a) st_arrs
      @ List.map (fun a -> Stv a) st_arrs
      @ List.concat_map
          (fun (mem, subs) -> List.map (fun u -> Ldv (mem, u)) subs)
          p.Pipeline.load_subscribers
    in
    let arr_of_mem mem =
      match
        List.find_opt
          (fun (c : Dae_core.Decouple.channel_use) ->
            c.Dae_core.Decouple.mem = mem)
          p.Pipeline.channels
      with
      | Some c -> c.Dae_core.Decouple.arr
      | None -> "?"
    in
    let chans =
      List.map
        (fun kind ->
          let arr =
            match kind with
            | Req_ld a | Req_st a | Stv a -> a
            | Ldv (mem, _) -> arr_of_mem mem
          in
          let lo = ref max_int and hi = ref 0 in
          let spec_hi = ref 0 and kill_hi = ref 0 in
          List.iter
            (fun (se : Checker.seg_events) ->
              let n = count_kind kind ~units:se.Checker.se_units in
              if n < !lo then lo := n;
              if n > !hi then hi := n;
              let s =
                count_spec kind ~hoisted ~units:se.Checker.se_units
              in
              if s > !spec_hi then spec_hi := s;
              let k = count_kill kind ~units:se.Checker.se_units in
              if k > !kill_hi then kill_hi := k)
            segs;
          let lo = if !lo = max_int then 0 else !lo in
          {
            kind;
            arr;
            rate = { lo; hi = !hi; spec_hi = !spec_hi; kill_hi = !kill_hi };
          })
        kinds
    in
    (* synchronizing back-edges: most load values any segment makes one
       access unit itself consume *)
    let sync_consumes =
      List.fold_left
        (fun acc (se : Checker.seg_events) ->
          let per_unit = ref 0 in
          Array.iteri
            (fun i evs ->
              if i <> 1 then
                per_unit :=
                  max !per_unit
                    (List.length
                       (List.filter
                          (fun (e : Replay.event) ->
                            e.Replay.ev_kind = Replay.Consume)
                          evs)))
            se.Checker.se_units;
          max acc !per_unit)
        0 segs
    in
    let events_hi =
      List.fold_left
        (fun acc (se : Checker.seg_events) ->
          max acc
            (Array.fold_left
               (fun n evs -> n + List.length evs)
               0 se.Checker.se_units))
        0 segs
    in
    Ok
      {
        chans;
        sync_consumes;
        events_hi;
        n_segments = List.length segs;
        seg_raw =
          List.map
            (fun (se : Checker.seg_events) -> se.Checker.se_units_raw)
            segs;
        load_subscribers = p.Pipeline.load_subscribers;
      }

let pp ppf (g : t) =
  Fmt.pf ppf
    "channel graph: %d edge(s) over %d segment(s), <=%d events/segment, \
     <=%d synchronizing consume(s)@."
    (List.length g.chans) g.n_segments g.events_hi g.sync_consumes;
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-14s rate [%d,%d]%s%s@." (name c.kind) c.rate.lo
        c.rate.hi
        (if c.rate.spec_hi > 0 then
           Fmt.str " spec<=%d" c.rate.spec_hi
         else "")
        (if c.rate.kill_hi > 0 then
           Fmt.str " kills<=%d" c.rate.kill_hi
         else ""))
    g.chans
