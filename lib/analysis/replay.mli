(** Abstract replay of an original-CFG block path over a pre-cleanup slice
    snapshot, yielding the ordered stream of channel events the slice
    would emit along that path. Inserted poison blocks (bid >=
    [inserted_from]) are traversed between original blocks; steered
    dispatch branches are resolved from the materialized steering-φ
    network, with an abstract re-derivation of Steer's flag as fallback. *)

open Dae_ir

type ekind = Send_ld | Send_st | Consume | Produce | Kill

type event = {
  ev_block : int;  (** slice block hosting the instruction *)
  ev_instr : int;
  ev_arr : string;
  ev_mem : Instr.mem_id;
  ev_kind : ekind;
}

type ctx

(** [final] is the post-cleanup slice: a snapshot consume emits an event
    only when its instruction id survived into [final] (cleanup deletes
    but never renumbers, so id membership is exact). [dispatches] maps
    inserted dispatch block ids to the speculation block guarding them
    (from [Poison.t.dispatches]); analyses of the original function are
    computed once per context. *)
val create :
  orig:Func.t ->
  slice:Func.t ->
  final:Func.t ->
  slice_tag:Diag.slice ->
  inserted_from:int ->
  dispatches:(int * int) list ->
  ctx

type outcome = { events : event list; diags : Diag.t list }

(** Steer's Algorithm 3 flag for [spec_bb] after walking [prefix] (oldest
    block first); exposed for the poison-coverage analysis. *)
val steer_eval : ctx -> spec_bb:int -> int list -> bool

(** Replay an original block path. Consecutive blocks that are not
    CFG-adjacent are contraction gaps (a jump over a nested loop): the
    walk enters the next block without traversing an inserted chain. A
    structural divergence (missing block, non-terminating inserted chain)
    aborts the walk with an [Error] diagnostic; events collected so far
    are still returned. *)
val replay : ctx -> int list -> outcome
