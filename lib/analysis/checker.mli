(** The inter-slice decoupling soundness checker: three path-sensitive
    analyses over the pre-cleanup slice snapshots of a compiled pipeline.

    - {b Channel balance} (§3.2): on every trace segment, AGU store
      requests and CU store values (produce/poison) form identical per-
      array mem sequences, and every subscribing unit consumes exactly as
      many load values as the AGU requests.
    - {b Poison coverage} (§5.2): on every Algorithm 2 path from a
      speculation block, each store group either commits at its true
      block or has every request poisoned exactly once, in request order,
      with groups resolving in speculation order — re-derived from the
      materialised CU independently of the pass.
    - {b LoD residue} (§5.1): the final AGU retains no consume of a
      hoisted load besides the chain-head consumes Algorithm 1 placed.

    A clean compile returns [[]]. *)

open Dae_core

(** [path_limit] bounds both the segment enumeration and the Algorithm 2
    path enumeration (default {!Poison.default_path_limit}); overruns
    degrade to [Warning] diagnostics, never exceptions. *)
val run : ?path_limit:int -> Pipeline.t -> Diag.t list

val unit_contexts : Pipeline.t -> Replay.ctx array
(** Replay contexts over the pre-cleanup snapshots for every unit, in
    dense order [[agu; cu; au1; ...]], exactly as {!run} builds them —
    shared with the channel-sizing analyzer. *)

val contexts : Pipeline.t -> Replay.ctx * Replay.ctx
(** The (AGU, CU) contexts of {!unit_contexts} — the classic 2-way pair. *)

type seg_events = {
  se_seg : Segments.seg;
  se_units : Replay.event list array;
      (** scope-owned events of the segment, one stream per unit in dense
          order [[agu; cu; au1; ...]] *)
  se_units_raw : Replay.event list array;
      (** the full replayed streams, including events the segment merely
          passes (a nested scope's header sends, an outer scope's kills) —
          the faithful emission order for causality replay *)
}

(** Replay every segment of the path universe on all unit slices: the
    scope-filtered streams drive per-iteration token-rate accounting, the
    raw streams drive the sizing analyzer's abstract causality replay. *)
val segment_events :
  ?path_limit:int -> Pipeline.t -> (seg_events list, Segments.budget) result

(** Install the checker as {!Pipeline.post_check_hook}: every
    [Pipeline.compile ~check:true] then raises {!Pipeline.Compile_error}
    listing the diagnostics whenever the checker finds an [Error]. *)
val install : unit -> unit
