(** Static speculative-taint analysis over lowered micro-op programs.

    The speculation pass (Algorithm 1) hoists memory requests above the
    loss-of-decoupling branch that guards them, so the machine reads cells
    the architectural (golden) execution never touches. The *values* of
    those speculatively-loaded cells are the secrets: this pass marks every
    hoisted load's value channel as a taint source and propagates taint
    through both units' micro-op dataflow — slot arithmetic, φ copies,
    select conditions, inter-unit load channels, and (at array granularity)
    values stored and later reloaded — then flags every program point where
    a tainted value becomes microarchitecturally observable before the
    speculation resolves:

    - a tainted *address* at a load or store request port (the classic
      speculative-leak gadget: cache set/bank, DRAM row and LSQ occupancy
      all key on the address);
    - a tainted *branch condition* (the unit's control path, hence its
      whole event schedule, depends on the secret);
    - a tainted *value* entering the store-value channel (channel occupancy
      is value-blind, but the value lands in memory where a later tainted
      load address can pick it up — kept as a warning-level egress).

    A program with no sites is *clean*: its event streams — the only thing
    the timing replay observes — are independent of every speculatively-read
    cell, so no interference witness ({!Leak}) can exist. The converse is
    deliberately conservative: a flagged site need not be dynamically
    reachable with a secret that diverges (mm's control site, for one,
    never fires because architecturally-dead values are dead in SSA too). *)

type site_kind =
  | Load_addr  (** tainted index reaches a load-request port *)
  | Store_addr  (** tainted index reaches a store-request port *)
  | Control  (** tainted terminator condition *)
  | Value_channel  (** tainted value produced onto the store-value channel *)

type site = {
  s_kind : site_kind;
  s_unit : Dae_sim.Trace.unit_id;
  s_block : int;  (** original block id, for diagnostics *)
  s_arr : string;
  s_mem : int;
  s_speculative : bool;
      (** the flagged request is itself hoisted: it issues, with its
          secret-dependent address, before the guard resolves *)
}

type t = {
  sources : int list;  (** hoisted load mem ids — the secret value channels *)
  tainted_mems : int list;  (** load channels carrying tainted values *)
  tainted_arrays : string list;  (** arrays a tainted value was stored to *)
  sites : site list;  (** deterministic order: AGU then CU, program order *)
}

val analyze : Dae_core.Pipeline.t -> t
(** Lower the pipeline ({!Dae_sim.Lower.compile}) and run the taint
    fixpoint. Dae-mode pipelines (and Spec pipelines where nothing was
    hoisted) have no sources and are vacuously clean. *)

val clean : t -> bool
(** No sites — see the module comment for what that guarantees. *)

val site_kind_name : site_kind -> string

val diags : t -> Diag.t list
(** One diagnostic per site: address and control sites are [Error],
    value-channel egress is [Warning]. *)

val pp : Format.formatter -> t -> unit
