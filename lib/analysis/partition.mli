(** Static address-stream partitioning: the N-way generalization of the
    paper's two-unit split.

    Clusters a kernel's memory operations by array and address-dataflow
    reachability: array [A] feeds array [B] when [B]'s address computation
    ({e value} edge) or the branch conditions guarding [B]'s operations
    ({e order} edge) transitively read a load of [A] — both traced with
    {!Defuse.backward_slice}, so through-φ selection conditions count.
    Mutually dependent arrays (SCCs of the union graph) share a unit; the
    cluster quotient is therefore a DAG, numbered in deterministic
    topological order with cluster 0 playing the classic AGU. Per-array
    single ownership keeps every request stream single-producer, so the
    generalized checker's per-array pairing argument (Lemma 6.1) applies
    to each unit boundary separately.

    The report estimates per-unit traffic (static ops weighted [4^depth]
    by loop nesting) and MLP ({e streams}: loads whose address slices are
    load-free — requests the unit can run arbitrarily far ahead on). *)

open Dae_ir

type edge_kind =
  | Value  (** dst's address computation reads a load of src *)
  | Order  (** dst's guarding branch conditions read a load of src *)

type cluster = {
  cl_unit : int;  (** access-unit number; 0 is the classic AGU *)
  cl_arrays : string list;  (** owned arrays, sorted *)
  cl_loads : int;  (** static loads of owned arrays *)
  cl_stores : int;  (** static stores to owned arrays *)
  cl_traffic : int;  (** 4^depth-weighted static op count *)
  cl_streams : int;  (** loads with load-free address slices (MLP) *)
}

type edge = {
  e_src : int;
  e_dst : int;
  e_kind : edge_kind;
  e_src_arr : string;  (** witness arrays: a load of [e_src_arr] ... *)
  e_dst_arr : string;  (** ... feeds [e_dst_arr]'s address or guard *)
}

type t = {
  clusters : cluster list;  (** in unit order *)
  edges : edge list;  (** inter-cluster, deduplicated, sorted *)
  assignment : Dae_core.Decouple.assignment;
      (** feed to [Pipeline.compile ~partition] / [Decouple.run_n] *)
  n_arrays : int;
}

val analyze : ?max_units:int -> Func.t -> t
(** [max_units] caps the access-unit count (default unlimited): over
    budget, the two lightest-traffic clusters merge repeatedly, so the
    heavy streams keep their own units. [max_units = 1] recovers the
    classic single-AGU split. Deterministic for a given function. *)

val edge_kind_name : edge_kind -> string
val unit_name : int -> string
(** ["AGU"] for unit 0, ["AU<k>"] otherwise — matching the simulator's
    unit naming. *)

val pp : Format.formatter -> t -> unit
val pp_dot : Format.formatter -> t -> unit
(** Graphviz rendering of the cluster DAG (order edges dashed), with the
    CU fan-in dotted. *)
