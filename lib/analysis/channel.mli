(** The inter-unit channel dependence graph of a compiled pipeline.

    Nodes are the units of the architecture template (AGU, CU, one DU per
    array); edges are the bounded FIFOs the timing engine instantiates —
    AGU→DU load/store request channels, CU→DU store-value/poison channels
    and DU→unit load-value channels — plus the synchronizing consumes the
    AGU itself retains (a residual loss of decoupling). Each edge carries
    a per-iteration token-rate interval derived from the checker's segment
    universe: replaying every segment of every scope on both pre-cleanup
    slice snapshots and counting the scope-owned events, with §5.1
    speculated (hoisted) requests and §5.2 poison kills attributed
    separately. The graph is what the {!Sizing} analyzer sizes. *)

open Dae_ir

type kind =
  | Req_ld of string  (** AGU→DU load-request channel of one array *)
  | Req_st of string  (** AGU→DU store-request channel of one array *)
  | Stv of string  (** CU→DU store-value/poison channel of one array *)
  | Ldv of Instr.mem_id * [ `Agu | `Cu | `Au of int ]
      (** DU→unit load-value channel of one subscribed load *)

type rate = {
  lo : int;  (** fewest tokens any segment moves on the edge *)
  hi : int;  (** most tokens any segment moves on the edge *)
  spec_hi : int;  (** of [hi], tokens from §5.1 hoisted (speculated) requests *)
  kill_hi : int;  (** of [hi], §5.2 poison kills (store-value edges only) *)
}

type chan = {
  kind : kind;
  arr : string;  (** the DU endpoint's array *)
  rate : rate;
}

type t = {
  chans : chan list;  (** every channel the compiled pipeline instantiates *)
  sync_consumes : int;
      (** most load values any segment makes one access unit itself
          consume — the synchronizing back-edges that bound runahead
          (§5.1) *)
  events_hi : int;
      (** most scope-owned events on any one segment, summed over units *)
  n_segments : int;
  seg_raw : Replay.event list array list;
      (** per segment, the raw (unfiltered) replay streams of every unit
          in dense order [[agu; cu; au1; ...]], each in emission order —
          the input of the abstract causality replay *)
  load_subscribers : (Instr.mem_id * [ `Agu | `Cu | `Au of int ] list) list;
}

val name : kind -> string
(** The timing engine's channel naming: ["<arr>.req_ld"], ["<arr>.req_st"],
    ["<arr>.stv"], ["ldv<mem>.<AGU|CU|AU<k>>"] — matches
    [Timing.result.depth_samples] and the stall-attribution tables. *)

val knob : kind -> string
(** The [Config] field (and CLI flag) that sets the channel's class:
    ["req-fifo"], ["val-fifo"] or ["stv-fifo"]. *)

val capacity : Dae_sim.Config.t -> kind -> int
(** The configured depth of the channel's class. *)

val with_capacity : Dae_sim.Config.t -> kind -> int -> Dae_sim.Config.t
(** Set the channel's class knob (coarse: the template shares one depth
    per channel class across arrays). *)

(** Extract the channel graph. [Error] propagates the segment-enumeration
    budget overrun, as in {!Checker.segment_events}. *)
val of_pipeline :
  ?path_limit:int -> Dae_core.Pipeline.t -> (t, Segments.budget) result

val pp : Format.formatter -> t -> unit
