(* Structured diagnostics for the inter-slice soundness checker.

   A diagnostic names the analysis that produced it, the slice and program
   point it anchors to, and the channel (mem id / array) it concerns, so a
   report line reads like

     error[balance] cu bb6 (edge bb4->bb6) mem5 A: produce/poison stream
     diverges from the AGU store requests: expected mem5, found mem7

   Severities: [Error] is a protocol violation (the compiled slices can
   deadlock or misalign value streams); [Warning] is a suspicious artifact
   the checker cannot prove wrong (or an analysis it had to skip); [Info]
   is an expected synchronization (Dae mode, data LoD) reported only under
   verbose listing. *)

type severity = Error | Warning | Info

type analysis = Balance | Poison_coverage | Lod_residue | Structure | Taint

type slice = Agu | Cu | Au of int | Both

type t = {
  sev : severity;
  analysis : analysis;
  slice : slice;
  block : int option;  (** block the diagnostic anchors to *)
  edge : (int * int) option;  (** diverging edge, when known *)
  mem : Dae_ir.Instr.mem_id option;
  arr : string option;
  msg : string;
}

let make ?block ?edge ?mem ?arr ~sev ~analysis ~slice msg =
  { sev; analysis; slice; block; edge; mem; arr; msg }

let analysis_name = function
  | Balance -> "balance"
  | Poison_coverage -> "poison"
  | Lod_residue -> "lod-residue"
  | Structure -> "structure"
  | Taint -> "taint"

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let slice_name = function
  | Agu -> "agu"
  | Cu -> "cu"
  | Au k -> "au" ^ string_of_int k
  | Both -> "agu+cu"

let pp ppf (d : t) =
  Fmt.pf ppf "%s[%s] %s" (severity_name d.sev)
    (analysis_name d.analysis)
    (slice_name d.slice);
  (match d.block with Some b -> Fmt.pf ppf " bb%d" b | None -> ());
  (match d.edge with
  | Some (s, t) -> Fmt.pf ppf " (edge bb%d->bb%d)" s t
  | None -> ());
  (match d.mem with Some m -> Fmt.pf ppf " mem%d" m | None -> ());
  (match d.arr with Some a -> Fmt.pf ppf " %s" a | None -> ());
  Fmt.pf ppf ": %s" d.msg

let count sev ds = List.length (List.filter (fun d -> d.sev = sev) ds)
let errors ds = count Error ds
let warnings ds = count Warning ds

let pp_report ppf (ds : t list) =
  if ds = [] then Fmt.pf ppf "0 diagnostics@."
  else begin
    List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds;
    Fmt.pf ppf "%d error(s), %d warning(s), %d info@." (errors ds)
      (warnings ds) (count Info ds)
  end
