(** The path universe the channel-balance analysis quantifies over: every
    dynamic trace decomposes into per-loop iteration chunks, and each
    chunk is covered by a segment of its scope — entry or a loop header,
    forward edges through the scope's body with nested loops stepped over
    (header, then each exit-edge source), ending at a latch about to take
    its backedge, at a return, or one block past a scope-exit edge. An
    event-stream invariant holding, per scope, on every segment of that
    scope holds on every trace. Consecutive blocks of a segment are not
    always CFG-adjacent (the jump over a nested loop); the replayer
    treats non-edge steps as gaps. *)

open Dae_ir

(** Typed enumeration overrun: [explored] blocks visited from segment
    start [start] when the budget [limit] was crossed. *)
type budget = { start : int; limit : int; explored : int }

type seg = {
  sg_scope : int option;  (** header of the scope loop, [None] at top level *)
  sg_blocks : int list;
}

val default_limit : int

val segments : ?limit:int -> Func.t -> (seg list, budget) result
