(* Dynamic interference-witness search: see leak.mli.

   The candidate discovery is the load-bearing idea. The ORACLE trace
   filter can identify killed *stores* (k-th request pairs with k-th
   value/poison), but squashed speculative loads are indistinguishable in
   the event stream — so instead of reconstructing kill reachability we
   diff against the golden interpreter's read set: every cell the machine
   load-requested that the golden run never read is architecturally dead
   by construction, and flipping it provably preserves every golden
   result. Whatever still diverges is leakage. *)

module M = Dae_sim.Machine
module R = Dae_sim.Retime
module Cfg = Dae_sim.Config
module Stats = Dae_sim.Stats
module Trace = Dae_sim.Trace
module Timing = Dae_sim.Timing
module E = Dae_sim.Exec
module Interp = Dae_ir.Interp

type outcome = Cycles of int | Deadlock

type divergence = {
  d_cfg : string;
  d_base : outcome;
  d_flip : outcome;
  d_cycles_differ : bool;
  d_stats_differ : bool;
}

type witness = {
  w_arr : string;
  w_idx : int;
  w_base : int;
  w_flip : int;
  w_digest_differs : bool;
  w_divs : divergence list;
}

type t = {
  l_arch : M.arch;
  l_reads : int;
  l_candidates : int;
  l_probed : int;
  l_skipped : int;
  l_witnesses : witness list;
}

let found t = t.l_witnesses <> []

let default_points =
  [
    ("scratchpad", Cfg.default);
    ( "cache",
      { Cfg.default with Cfg.hierarchy = Cfg.Hierarchy Cfg.default_geom } );
  ]

(* the golden read set over the whole invocation sequence, memory threaded
   through exactly as the machine threads it *)
let golden_reads f ~invocations ~mem =
  let m = Interp.Memory.copy mem in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun args ->
      let r = Interp.run (Dae_ir.Func.clone f) ~args ~mem:m in
      List.iter
        (fun (_, arr, idx, _) -> Hashtbl.replace seen (arr, idx) ())
        (Interp.loads r))
    invocations;
  seen

(* every distinct cell the machine issued a load request for, from the
   collected per-invocation traces (ORACLE: post-filter, loads survive) *)
let machine_reads arch f ~invocations ~mem =
  let r =
    M.simulate ~collect:true arch (Dae_ir.Func.clone f) ~invocations
      ~mem:(Interp.Memory.copy mem)
  in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (tl : M.timeline) ->
      List.iter
        (fun tr ->
          Trace.fold
            (fun () tr k ->
              if Trace.tag tr k = Trace.t_send_ld then
                Hashtbl.replace seen
                  (Trace.arr_name tr k, Trace.payload tr k)
                  ())
            () tr)
        [ tl.M.t_agu; tl.M.t_cu ])
    r.M.timelines;
  seen

let export_stats keyed =
  List.map
    (fun (unit, t) ->
      (unit, List.map (fun c -> Stats.get t c) Stats.all_causes))
    keyed

let replay prepared cfg =
  match R.simulate ~validate:false ~cfg prepared with
  | r -> (Cycles r.M.cycles, Some (export_stats r.M.stats), Some r.M.memory)
  | exception Timing.Deadlock _ -> (Deadlock, None, None)

(* the two final memories must agree everywhere except the flipped cell —
   the dynamic confirmation that the cell really is architecturally dead *)
let pure ~arr ~idx base_mem flip_mem =
  match (base_mem, flip_mem) with
  | Some bm, Some fm ->
    let fm' = Interp.Memory.copy fm in
    (try Interp.Memory.set fm' arr idx (Interp.Memory.get bm arr idx)
     with Invalid_argument _ -> ());
    Interp.Memory.equal bm fm'
  | _ -> true (* a deadlocked point has no final memory to compare *)

let search ?(budget = 8) ?(masks = [ 1; 8; 64 ]) ?(points = default_points) arch
    f ~invocations ~mem =
  let golden = golden_reads f ~invocations ~mem in
  let machine = machine_reads arch f ~invocations ~mem in
  let candidates =
    Hashtbl.fold
      (fun ((arr, idx) as cell) () acc ->
        if Hashtbl.mem golden cell then acc
        else
          (* only in-bounds cells can be flipped in the initial image *)
          match Interp.Memory.array mem arr with
          | a when idx >= 0 && idx < Array.length a -> cell :: acc
          | _ -> acc
          | exception Invalid_argument _ -> acc)
      machine []
    |> List.sort compare
  in
  let plan = R.plan arch (Dae_ir.Func.clone f) in
  let base_prepared =
    R.prepare plan ~invocations ~mem:(Interp.Memory.copy mem)
  in
  let base_digest = R.trace_digest base_prepared in
  let probed = ref 0 and skipped = ref 0 in
  let witnesses = ref [] in
  let probe_mask (arr, idx) mask =
    let base_val = Interp.Memory.get mem arr idx in
    let flip_val = base_val lxor mask in
    let fmem = Interp.Memory.copy mem in
    Interp.Memory.set fmem arr idx flip_val;
    match R.prepare plan ~invocations ~mem:fmem with
    | exception
        ( R.Check_failed _ | E.Deadlock _ | E.Stream_mismatch _ | E.Desync _
        | Invalid_argument _ ) ->
      incr skipped;
      None
    | flip_prepared ->
      let digest_differs = R.trace_digest flip_prepared <> base_digest in
      let divs = ref [] in
      let ok = ref true in
      List.iter
        (fun (label, cfg) ->
          let b_out, b_stats, b_mem = replay base_prepared cfg in
          let f_out, f_stats, f_mem = replay flip_prepared cfg in
          if not (pure ~arr ~idx b_mem f_mem) then ok := false
          else begin
            let cycles_differ = b_out <> f_out in
            let stats_differ =
              match (b_stats, f_stats) with
              | Some a, Some b -> a <> b
              | _ -> b_out <> f_out
            in
            if cycles_differ || stats_differ then
              divs :=
                {
                  d_cfg = label;
                  d_base = b_out;
                  d_flip = f_out;
                  d_cycles_differ = cycles_differ;
                  d_stats_differ = stats_differ;
                }
                :: !divs
          end)
        points;
      if not !ok then begin
        incr skipped;
        None
      end
      else if digest_differs || !divs <> [] then
        Some
          {
            w_arr = arr;
            w_idx = idx;
            w_base = base_val;
            w_flip = flip_val;
            w_digest_differs = digest_differs;
            w_divs = List.rev !divs;
          }
      else None
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  List.iter
    (fun cell ->
      incr probed;
      (* keep trying masks past a digest-only hit: a small flip always
         perturbs the recorded request address, but only a flip that
         crosses a cache line or set can move the timing, and that is the
         stronger witness worth reporting *)
      let rec try_masks best = function
        | [] -> Option.iter (fun w -> witnesses := w :: !witnesses) best
        | mask :: rest -> (
          match probe_mask cell mask with
          | Some w when w.w_divs <> [] -> witnesses := w :: !witnesses
          | Some w -> try_masks (if best = None then Some w else best) rest
          | None -> try_masks best rest)
      in
      try_masks None masks)
    (take budget candidates);
  {
    l_arch = arch;
    l_reads = Hashtbl.length machine;
    l_candidates = List.length candidates;
    l_probed = !probed;
    l_skipped = !skipped;
    l_witnesses = List.rev !witnesses;
  }

let pp_outcome ppf = function
  | Cycles c -> Fmt.pf ppf "%d cycles" c
  | Deadlock -> Fmt.pf ppf "deadlock"

let pp_div ppf d =
  Fmt.pf ppf "%s: %a vs %a%s" d.d_cfg pp_outcome d.d_base pp_outcome d.d_flip
    (if d.d_stats_differ && not d.d_cycles_differ then " (stalls differ)"
     else if d.d_stats_differ then ", stalls differ"
     else "")

let pp ppf (t : t) =
  Fmt.pf ppf
    "witness search (%s): %d cells read, %d architecturally dead, %d \
     probed, %d skipped, %d witness%s@."
    (M.arch_name t.l_arch) t.l_reads t.l_candidates t.l_probed t.l_skipped
    (List.length t.l_witnesses)
    (if List.length t.l_witnesses = 1 then "" else "es");
  List.iter
    (fun w ->
      let parts =
        (if w.w_digest_differs then [ "trace digests diverge" ] else [])
        @ List.map (Fmt.str "%a" pp_div) w.w_divs
      in
      Fmt.pf ppf "  %s[%d] %d->%d: %s@." w.w_arr w.w_idx w.w_base w.w_flip
        (String.concat "; " parts))
    t.l_witnesses
