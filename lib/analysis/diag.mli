(** Structured diagnostics for the inter-slice soundness checker.

    [Error] = protocol violation (deadlock or value-stream misalignment is
    reachable); [Warning] = suspicious artifact or a skipped analysis;
    [Info] = an expected synchronization, reported only in verbose
    listings. *)

type severity = Error | Warning | Info
type analysis = Balance | Poison_coverage | Lod_residue | Structure | Taint
type slice = Agu | Cu | Au of int | Both

type t = {
  sev : severity;
  analysis : analysis;
  slice : slice;
  block : int option;
  edge : (int * int) option;
  mem : Dae_ir.Instr.mem_id option;
  arr : string option;
  msg : string;
}

val make :
  ?block:int ->
  ?edge:int * int ->
  ?mem:Dae_ir.Instr.mem_id ->
  ?arr:string ->
  sev:severity ->
  analysis:analysis ->
  slice:slice ->
  string ->
  t

val analysis_name : analysis -> string
val severity_name : severity -> string
val slice_name : slice -> string
val pp : Format.formatter -> t -> unit
val errors : t list -> int
val warnings : t list -> int

(** One line per diagnostic plus a severity tally (or "0 diagnostics"). *)
val pp_report : Format.formatter -> t list -> unit
