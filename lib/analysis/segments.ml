(* The path universe the channel-balance analysis quantifies over.

   A dynamic trace decomposes into per-loop iteration chunks: each
   execution of a loop body from its header up to the latch (backedge
   taken), an exit edge (one block past the loop), or a return. The
   balance invariant is checked per *scope* — a loop, or the top level —
   on the segments of that scope, counting only the events whose home
   scope matches (the checker filters by scope): an event stream that is
   balanced on every segment of its own scope is balanced on every
   dynamic trace by concatenation of chunks.

   Segments of a scope follow forward edges through the scope's body and
   step OVER nested loops the same way [Poison.all_paths] does: the walk
   enters the inner header, jumps to each exit-edge source and continues
   past the exit edge. Interior inner-loop blocks are covered by the
   inner loop's own segments; the blocks a segment does include from a
   nested loop (header, exit sources, exit chains) carry only block-local
   or inner-scope events there, which the scope filter discards. A
   consequence is that consecutive blocks of a segment are NOT always
   CFG-adjacent (the header -> exit-source jump); the replayer treats a
   non-edge step as a gap and simply does not traverse an inserted chain
   for it.

   The enumeration is exhaustive DFS over the forward-edge DAG; a budget
   bounds the worst case (the same concern as [Poison.all_paths]) with a
   typed overrun instead of an exception, so the checker can degrade to a
   "skipped" warning. *)

open Dae_ir

type budget = { start : int; limit : int; explored : int }

type seg = {
  sg_scope : int option;  (** header of the scope loop, [None] at top level *)
  sg_blocks : int list;
}

let default_limit = 500_000

let segments ?(limit = default_limit) (f : Func.t) : (seg list, budget) result
    =
  let loops = Loops.compute f in
  let headers =
    List.sort_uniq compare
      (List.map (fun l -> l.Loops.header) loops.Loops.loops)
  in
  let starts =
    (f.Func.entry, Loops.innermost loops f.Func.entry)
    :: List.filter_map
         (fun h ->
           if h = f.Func.entry then None
           else Some (h, Loops.loop_of_header loops h))
         headers
  in
  let out = ref [] in
  let count = ref 0 in
  let exception Exceeded of int in
  let walk (start, (scope : Loops.loop option)) =
    let own_header =
      match scope with Some l -> Some l.Loops.header | None -> None
    in
    let in_scope b =
      match scope with Some l -> List.mem b l.Loops.body | None -> true
    in
    let foreign_loop s =
      if Loops.is_header loops s && Some s <> own_header then
        Loops.loop_of_header loops s
      else None
    in
    let exit_edges (l : Loops.loop) =
      List.concat_map
        (fun u ->
          Func.successors f u
          |> List.filter (fun v ->
                 (not (List.mem v l.Loops.body))
                 && not (Loops.is_backedge loops ~src:u ~dst:v))
          |> List.map (fun v -> (u, v)))
        l.Loops.body
    in
    let record acc =
      out := { sg_scope = own_header; sg_blocks = List.rev acc } :: !out
    in
    let tick () =
      incr count;
      if !count > limit then raise (Exceeded start)
    in
    (* [bid] is already in [acc]. A block ends its segment when the
       backedge leaves it (latch) or nothing follows (return); an edge out
       of the scope ends the segment one block past it, so the exit edge's
       inserted chain is still replayed in this scope. *)
    let rec go bid acc =
      tick ();
      let succs = Func.successors f bid in
      if
        succs = []
        || List.exists (fun s -> Loops.is_backedge loops ~src:bid ~dst:s) succs
      then record acc;
      List.iter
        (fun s ->
          if not (Loops.is_backedge loops ~src:bid ~dst:s) then
            if in_scope s then enter s acc
            else record (s :: acc))
        succs
    and enter s acc =
      tick ();
      match foreign_loop s with
      | None -> go s (s :: acc)
      | Some l' -> (
        let acc = s :: acc in
        match exit_edges l' with
        | [] -> record acc (* the nested loop never exits *)
        | exits ->
          List.iter
            (fun (u, v) ->
              let acc = if u = s then acc else u :: acc in
              if in_scope v then enter v acc else record (v :: acc))
            exits)
    in
    go start [ start ]
  in
  match List.iter walk starts with
  | () -> Ok (List.rev !out)
  | exception Exceeded start -> Error { start; limit; explored = !count }
