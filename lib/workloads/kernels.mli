(** The paper's nine benchmark kernels (§8.1.2) as IR builders with OCaml
    reference implementations. Each mirrors the loop structure and the
    loss-of-decoupling control dependencies of the GAP / HLS_Benchmarks C
    originals; where the paper leaves the guard unspecified (hist, spmv),
    a guard loading the stored array is used so the kernel has the LoD
    structure the paper requires of its benchmark set (DESIGN.md). *)

open Dae_ir

type t = {
  name : string;
  description : string;
  build : unit -> Func.t;
  init_mem : unit -> Interp.Memory.t;
  invocations : unit -> Dae_sim.Machine.invocation list;
  check : Interp.Memory.t -> (unit, string) result;
}

(** Raw IR builders (shared by the Table-2 instrumentation). *)

val build_hist : unit -> Func.t
val build_thr : unit -> Func.t
val build_mm : unit -> Func.t
val build_bfs : unit -> Func.t
val build_sssp : unit -> Func.t
val build_bc : unit -> Func.t
val build_fw : unit -> Func.t
val build_sort : unit -> Func.t
val build_spmv : unit -> Func.t

(** Parameterized workloads. *)

val hist : ?n:int -> ?buckets:int -> ?cap:int -> ?seed:int -> unit -> t
val thr :
  ?n:int -> ?threshold:int -> ?above_percent:int -> ?seed:int -> unit -> t
val mm : ?left:int -> ?right:int -> ?m:int -> ?seed:int -> unit -> t
val bfs : ?graph:Graph.t -> ?source:int -> unit -> t
val sssp : ?graph:Graph.t -> ?source:int -> ?max_rounds:int -> unit -> t
val bc : ?graph:Graph.t -> ?source:int -> unit -> t
val fw : ?n:int -> ?seed:int -> unit -> t
val sort : ?n:int -> ?seed:int -> unit -> t
val spmv :
  ?rows:int -> ?cols:int -> ?nnz:int -> ?clamp:int -> ?seed:int -> unit -> t

(** Table 1 / Figure 6 sizes. *)
val paper_suite : unit -> t list

(** Reduced sizes for the test suite. *)
val test_suite : unit -> t list

val by_name : t list -> string -> t option

val suite_iter :
  ?suite:[ `Paper | `Quick ] ->
  ?only:string list ->
  (t -> unit) ->
  (unit, string) result
(** The shared census driver of the CLI's suite-wide subcommands
    ([check]/[size]/[partition] [--all-kernels], the [leak] census):
    apply [f] to each kernel of [suite] (default [`Paper]), restricted to
    the names in [only] when non-empty. [Error] when the selection is
    empty — the caller's usage error. *)
