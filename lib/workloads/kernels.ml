(* The paper's benchmark kernels (§8.1.2), re-expressed as IR builders with
   the same loop structure and the same loss-of-decoupling control
   dependencies as the C originals (GAP / HLS_Benchmarks). Each kernel
   carries an OCaml reference implementation; Machine checks the simulated
   memory against it after every run.

   Where the paper does not spell out the guard (hist, spmv) we use a guard
   that loads the stored array, which is the LoD structure the paper
   requires of its benchmark selection ("codes with LoD control
   dependencies") — hist saturates at a cap, spmv clamps the accumulator.
   These adaptations are documented in DESIGN.md. *)

open Dae_ir

type t = {
  name : string;
  description : string;
  build : unit -> Func.t;
  init_mem : unit -> Interp.Memory.t;
  invocations : unit -> Dae_sim.Machine.invocation list;
  check : Interp.Memory.t -> (unit, string) result;
}

let vint n = Types.Vint n

let check_array mem name expected : (unit, string) result =
  let got = Interp.Memory.array mem name in
  if got = expected then Ok ()
  else
    Error
      (Fmt.str "array %s differs from reference@.expected: [%a]@.got: [%a]"
         name
         Fmt.(array ~sep:(any "; ") int)
         expected
         Fmt.(array ~sep:(any "; ") int)
         got)

(* --- hist: saturating histogram (paper: "similar to Figure 1(b)") --------- *)

(*   for i in 0..n-1:
       b = bucket[i]
       h = hist[b]
       if h < cap: hist[b] = h + 1                 // LoD: guard loads hist *)
let build_hist () =
  let b = Builder.create ~name:"hist" ~params:[ "n"; "cap" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let bucket = Builder.load b "bucket" i in
        let h = Builder.load b "hist" bucket in
        let c = Builder.cmp b Instr.Slt h (Builder.param b "cap") in
        Builder.if_ b c
          ~then_:(fun b ->
            Builder.store b "hist" ~idx:bucket
              ~value:(Builder.add b h (Builder.int 1)))
          ();
        [])
  in
  Builder.seal b

let hist_data ~n ~buckets ~seed =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.skewed rng buckets)

let hist_reference ~bucket ~buckets ~cap =
  let h = Array.make buckets 0 in
  Array.iter (fun b -> if h.(b) < cap then h.(b) <- h.(b) + 1) bucket;
  h

let hist ?(n = 1000) ?(buckets = 64) ?(cap = 40) ?(seed = 7) () : t =
  let bucket = hist_data ~n ~buckets ~seed in
  {
    name = "hist";
    description = "saturating histogram (size 1000)";
    build = build_hist;
    init_mem =
      (fun () ->
        Interp.Memory.create
          [ ("bucket", bucket); ("hist", Array.make buckets 0) ]);
    invocations = (fun () -> [ [ ("n", vint n); ("cap", vint cap) ] ]);
    check =
      (fun mem -> check_array mem "hist" (hist_reference ~bucket ~buckets ~cap));
  }

(* --- thr: threshold pixels (paper: "zeroes RGB pixels above threshold") --- *)

(*   for i in 0..n-1:
       p = pix[i]
       if p > thr: pix[i] = 0                      // LoD: guard loads pix *)
let build_thr () =
  let b = Builder.create ~name:"thr" ~params:[ "n"; "thr" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let p = Builder.load b "pix" i in
        let c = Builder.cmp b Instr.Sgt p (Builder.param b "thr") in
        Builder.if_ b c
          ~then_:(fun b -> Builder.store b "pix" ~idx:i ~value:(Builder.int 0))
          ();
        [])
  in
  Builder.seal b

let thr ?(n = 1000) ?(threshold = 200) ?(above_percent = 3) ?(seed = 11) () : t
    =
  let rng = Rng.create seed in
  let pix =
    Array.init n (fun _ ->
        if Rng.percent rng above_percent then 201 + Rng.int rng 55
        else Rng.int rng 200)
  in
  {
    name = "thr";
    description = "zero pixels above threshold (size 1000)";
    build = build_thr;
    init_mem = (fun () -> Interp.Memory.create [ ("pix", pix) ]);
    invocations = (fun () -> [ [ ("n", vint n); ("thr", vint threshold) ] ]);
    check =
      (fun mem ->
        check_array mem "pix"
          (Array.map (fun p -> if p > threshold then 0 else p) pix));
  }

(* --- mm: maximal matching in a bipartite graph ---------------------------- *)

(*   for e in 0..m-1:
       u = esrc[e]; v = edst[e]
       if mate[u] < 0:
         if mate[v] < 0: { mate[u] = v; mate[v] = u }   // nested LoD chain *)
let build_mm () =
  let b = Builder.create ~name:"mm" ~params:[ "m" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "m") (fun b ~i ~carried:_ ->
        let u = Builder.load b "esrc" i in
        let v = Builder.load b "edst" i in
        let mu = Builder.load b "mate" u in
        let c1 = Builder.cmp b Instr.Slt mu (Builder.int 0) in
        Builder.if_ b c1
          ~then_:(fun b ->
            let mv = Builder.load b "mate" v in
            let c2 = Builder.cmp b Instr.Slt mv (Builder.int 0) in
            Builder.if_ b c2
              ~then_:(fun b ->
                Builder.store b "mate" ~idx:u ~value:v;
                Builder.store b "mate" ~idx:v ~value:u)
              ())
          ();
        [])
  in
  Builder.seal b

let mm ?(left = 200) ?(right = 200) ?(m = 2000) ?(seed = 13) () : t =
  let rng = Rng.create seed in
  let nodes = left + right in
  let esrc = Array.init m (fun _ -> Rng.int rng left) in
  let edst = Array.init m (fun _ -> left + Rng.int rng right) in
  let reference () =
    let mate = Array.make nodes (-1) in
    for e = 0 to m - 1 do
      let u = esrc.(e) and v = edst.(e) in
      if mate.(u) < 0 && mate.(v) < 0 then begin
        mate.(u) <- v;
        mate.(v) <- u
      end
    done;
    mate
  in
  {
    name = "mm";
    description = "maximal matching in a bipartite graph (2000 edges)";
    build = build_mm;
    init_mem =
      (fun () ->
        Interp.Memory.create
          [ ("esrc", esrc); ("edst", edst); ("mate", Array.make nodes (-1)) ]);
    invocations = (fun () -> [ [ ("m", vint m) ] ]);
    check = (fun mem -> check_array mem "mate" (reference ()));
  }

(* --- bfs: level-synchronous breadth-first traversal ----------------------- *)

(*   kernel(m, level):                              // one pass per level
       for e in 0..m-1:
         u = esrc[e]
         if dist[u] == level:                       // LoD source (chain head)
           v = edst[e]
           if dist[v] < 0: dist[v] = level + 1      // nested LoD            *)
let build_bfs () =
  let b = Builder.create ~name:"bfs" ~params:[ "m"; "level" ] in
  let level = Builder.param b "level" in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "m") (fun b ~i ~carried:_ ->
        let u = Builder.load b "esrc" i in
        let du = Builder.load b "dist" u in
        let c1 = Builder.cmp b Instr.Eq du level in
        Builder.if_ b c1
          ~then_:(fun b ->
            let v = Builder.load b "edst" i in
            let dv = Builder.load b "dist" v in
            let c2 = Builder.cmp b Instr.Slt dv (Builder.int 0) in
            Builder.if_ b c2
              ~then_:(fun b ->
                Builder.store b "dist" ~idx:v
                  ~value:(Builder.add b level (Builder.int 1)))
              ())
          ();
        [])
  in
  Builder.seal b

let bfs ?(graph = Graph.email_eu_core_like ()) ?(source = 0) () : t =
  let g = graph in
  let ref_dist, levels = Graph.bfs_reference g ~source in
  let init_dist () =
    let d = Array.make g.Graph.nodes (-1) in
    d.(source) <- 0;
    d
  in
  {
    name = "bfs";
    description =
      Fmt.str "breadth-first traversal (%d nodes, %d edges, %d levels)"
        g.Graph.nodes (Graph.edges g) levels;
    build = build_bfs;
    init_mem =
      (fun () ->
        Interp.Memory.create
          [ ("esrc", g.Graph.src); ("edst", g.Graph.dst);
            ("dist", init_dist ()) ]);
    invocations =
      (fun () ->
        List.init levels (fun l ->
            [ ("m", vint (Graph.edges g)); ("level", vint l) ]));
    check = (fun mem -> check_array mem "dist" ref_dist);
  }

(* --- sssp: Bellman-Ford --------------------------------------------------- *)

(*   kernel(m):                                     // one relaxation round
       for e in 0..m-1:
         du = dist[esrc[e]]
         if du < INF:                               // LoD source
           nd = du + w[e]
           if nd < dist[edst[e]]: dist[edst[e]] = nd // nested LoD           *)
let build_sssp () =
  let b = Builder.create ~name:"sssp" ~params:[ "m"; "inf" ] in
  let inf = Builder.param b "inf" in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "m") (fun b ~i ~carried:_ ->
        let u = Builder.load b "esrc" i in
        let du = Builder.load b "dist" u in
        let c1 = Builder.cmp b Instr.Slt du inf in
        Builder.if_ b c1
          ~then_:(fun b ->
            let w = Builder.load b "ew" i in
            let nd = Builder.add b du w in
            let v = Builder.load b "edst" i in
            let dv = Builder.load b "dist" v in
            let c2 = Builder.cmp b Instr.Slt nd dv in
            Builder.if_ b c2
              ~then_:(fun b -> Builder.store b "dist" ~idx:v ~value:nd)
              ())
          ();
        [])
  in
  Builder.seal b

let sssp ?(graph = Graph.email_eu_core_like ()) ?(source = 0) ?max_rounds () :
    t =
  let g = graph in
  let ref_dist, rounds = Graph.sssp_reference g ~source in
  let rounds = match max_rounds with Some r -> min r rounds | None -> rounds in
  (* with capped rounds, re-derive the reference by running that many
     relaxation passes *)
  let ref_dist =
    if rounds
       = snd (Graph.sssp_reference g ~source)
    then ref_dist
    else begin
      let d = Array.make g.Graph.nodes Graph.inf in
      d.(source) <- 0;
      for _ = 1 to rounds do
        for e = 0 to Graph.edges g - 1 do
          let du = d.(g.Graph.src.(e)) in
          if du < Graph.inf then begin
            let nd = du + g.Graph.weight.(e) in
            if nd < d.(g.Graph.dst.(e)) then d.(g.Graph.dst.(e)) <- nd
          end
        done
      done;
      d
    end
  in
  let init_dist () =
    let d = Array.make g.Graph.nodes Graph.inf in
    d.(source) <- 0;
    d
  in
  {
    name = "sssp";
    description =
      Fmt.str "single-source shortest paths (%d nodes, %d rounds)"
        g.Graph.nodes rounds;
    build = build_sssp;
    init_mem =
      (fun () ->
        Interp.Memory.create
          [ ("esrc", g.Graph.src); ("edst", g.Graph.dst);
            ("ew", g.Graph.weight); ("dist", init_dist ()) ]);
    invocations =
      (fun () ->
        List.init rounds (fun _ ->
            [ ("m", vint (Graph.edges g)); ("inf", vint Graph.inf) ]));
    check = (fun mem -> check_array mem "dist" ref_dist);
  }

(* --- bc: betweenness centrality forward pass. Two stored arrays (dist and
   sigma) mean two LSQs, matching the paper's starred bc entry. ------------- *)

let build_bc () =
  let b = Builder.create ~name:"bc" ~params:[ "m"; "level" ] in
  let level = Builder.param b "level" in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "m") (fun b ~i ~carried:_ ->
        let u = Builder.load b "esrc" i in
        let du = Builder.load b "dist" u in
        let c1 = Builder.cmp b Instr.Eq du level in
        Builder.if_ b c1
          ~then_:(fun b ->
            let v = Builder.load b "edst" i in
            let dv = Builder.load b "dist" v in
            let su = Builder.load b "sigma" u in
            let c2 = Builder.cmp b Instr.Slt dv (Builder.int 0) in
            Builder.if_ b c2
              ~then_:(fun b ->
                Builder.store b "dist" ~idx:v
                  ~value:(Builder.add b level (Builder.int 1));
                let sv = Builder.load b "sigma" v in
                Builder.store b "sigma" ~idx:v ~value:(Builder.add b sv su))
              ~else_:(fun b ->
                let c3 =
                  Builder.cmp b Instr.Eq dv
                    (Builder.add b level (Builder.int 1))
                in
                Builder.if_ b c3
                  ~then_:(fun b ->
                    let sv = Builder.load b "sigma" v in
                    Builder.store b "sigma" ~idx:v
                      ~value:(Builder.add b sv su))
                  ())
              ())
          ();
        [])
  in
  Builder.seal b

let bc ?(graph = Graph.email_eu_core_like ()) ?(source = 0) () : t =
  let g = graph in
  let ref_dist, ref_sigma, levels = Graph.bc_reference g ~source in
  {
    name = "bc";
    description =
      Fmt.str "betweenness centrality forward pass (%d nodes, %d levels)"
        g.Graph.nodes levels;
    build = build_bc;
    init_mem =
      (fun () ->
        let dist = Array.make g.Graph.nodes (-1) in
        dist.(source) <- 0;
        let sigma = Array.make g.Graph.nodes 0 in
        sigma.(source) <- 1;
        Interp.Memory.create
          [ ("esrc", g.Graph.src); ("edst", g.Graph.dst); ("dist", dist);
            ("sigma", sigma) ]);
    invocations =
      (fun () ->
        List.init levels (fun l ->
            [ ("m", vint (Graph.edges g)); ("level", vint l) ]));
    check =
      (fun mem ->
        match check_array mem "dist" ref_dist with
        | Error _ as e -> e
        | Ok () -> check_array mem "sigma" ref_sigma);
  }

(* --- fw: Floyd-Warshall (10×10 dense distance matrix) --------------------- *)

(*   for k: for i: for j:
       s = D[i*n+k] + D[k*n+j]
       if s < D[i*n+j]: D[i*n+j] = s               // LoD in innermost loop *)
let build_fw () =
  let b = Builder.create ~name:"fw" ~params:[ "n" ] in
  let n = Builder.param b "n" in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n (fun b ~i:k ~carried:_ ->
        let (_ : Types.operand list) =
          Builder.counted_loop b ~n (fun b ~i ~carried:_ ->
              let (_ : Types.operand list) =
                Builder.counted_loop b ~n (fun b ~i:j ~carried:_ ->
                    let ik = Builder.add b (Builder.mul b i n) k in
                    let kj = Builder.add b (Builder.mul b k n) j in
                    let ij = Builder.add b (Builder.mul b i n) j in
                    let dik = Builder.load b "d" ik in
                    let dkj = Builder.load b "d" kj in
                    let dij = Builder.load b "d" ij in
                    let s = Builder.add b dik dkj in
                    let c = Builder.cmp b Instr.Slt s dij in
                    Builder.if_ b c
                      ~then_:(fun b -> Builder.store b "d" ~idx:ij ~value:s)
                      ();
                    [])
              in
              [])
        in
        [])
  in
  Builder.seal b

let fw ?(n = 10) ?(seed = 17) () : t =
  let rng = Rng.create seed in
  let big = 10_000 in
  let d0 =
    Array.init (n * n) (fun idx ->
        let i = idx / n and j = idx mod n in
        if i = j then 0
        else if Rng.percent rng 35 then 1 + Rng.int rng 20
        else big)
  in
  let reference () =
    let d = Array.copy d0 in
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let s = d.((i * n) + k) + d.((k * n) + j) in
          if s < d.((i * n) + j) then d.((i * n) + j) <- s
        done
      done
    done;
    d
  in
  {
    name = "fw";
    description = Fmt.str "Floyd-Warshall all-pairs distances (%dx%d)" n n;
    build = build_fw;
    init_mem = (fun () -> Interp.Memory.create [ ("d", d0) ]);
    invocations = (fun () -> [ [ ("n", vint n) ] ]);
    check = (fun mem -> check_array mem "d" (reference ()));
  }

(* --- sort: bitonic mergesort (size 64) ------------------------------------ *)

(*   kernel(n, k, j):                               // one compare-exchange pass
       for i in 0..n-1:
         l = i xor j
         if l > i:                                   // pure control, no LoD
           ai = a[i]; al = a[l]
           if (i and k) == 0:
             if ai > al: { a[i] = al; a[l] = ai }   // LoD sources
           else:
             if ai < al: { a[i] = al; a[l] = ai }                            *)
let build_sort () =
  let b = Builder.create ~name:"sort" ~params:[ "n"; "k"; "j" ] in
  let k = Builder.param b "k" in
  let j = Builder.param b "j" in
  let swap b ~i ~l ~ai ~al =
    Builder.store b "a" ~idx:i ~value:al;
    Builder.store b "a" ~idx:l ~value:ai
  in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let l = Builder.binop b Instr.Xor i j in
        let c0 = Builder.cmp b Instr.Sgt l i in
        Builder.if_ b c0
          ~then_:(fun b ->
            let ai = Builder.load b "a" i in
            let al = Builder.load b "a" l in
            let dir =
              Builder.cmp b Instr.Eq
                (Builder.binop b Instr.And i k)
                (Builder.int 0)
            in
            Builder.if_ b dir
              ~then_:(fun b ->
                let c = Builder.cmp b Instr.Sgt ai al in
                Builder.if_ b c ~then_:(fun b -> swap b ~i ~l ~ai ~al) ())
              ~else_:(fun b ->
                let c = Builder.cmp b Instr.Slt ai al in
                Builder.if_ b c ~then_:(fun b -> swap b ~i ~l ~ai ~al) ())
              ())
          ();
        [])
  in
  Builder.seal b

let sort ?(n = 64) ?(seed = 19) () : t =
  let rng = Rng.create seed in
  let a0 = Array.init n (fun _ -> Rng.int rng 1000) in
  let passes =
    (* bitonic network schedule: k = 2,4,..,n; j = k/2,..,1 *)
    let out = ref [] in
    let k = ref 2 in
    while !k <= n do
      let j = ref (!k / 2) in
      while !j > 0 do
        out := (!k, !j) :: !out;
        j := !j / 2
      done;
      k := !k * 2
    done;
    List.rev !out
  in
  {
    name = "sort";
    description = Fmt.str "bitonic mergesort (size %d, %d passes)" n
        (List.length passes);
    build = build_sort;
    init_mem = (fun () -> Interp.Memory.create [ ("a", a0) ]);
    invocations =
      (fun () ->
        List.map
          (fun (k, j) -> [ ("n", vint n); ("k", vint k); ("j", vint j) ])
          passes);
    check =
      (fun mem ->
        let expected = Array.copy a0 in
        Array.sort compare expected;
        check_array mem "a" expected);
  }

(* --- spmv: sparse matrix-vector accumulate with clamp --------------------- *)

(*   for e in 0..nnz-1:
       r = row[e]; yr = y[r]
       if yr < clamp:                               // LoD: guard loads y
         y[r] = yr + val[e] * x[col[e]]                                     *)
let build_spmv () =
  let b = Builder.create ~name:"spmv" ~params:[ "nnz"; "clamp" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "nnz") (fun b ~i ~carried:_ ->
        let r = Builder.load b "rowi" i in
        let yr = Builder.load b "y" r in
        let c = Builder.cmp b Instr.Slt yr (Builder.param b "clamp") in
        Builder.if_ b c
          ~then_:(fun b ->
            let v = Builder.load b "nz" i in
            let cx = Builder.load b "coli" i in
            let xv = Builder.load b "x" cx in
            Builder.store b "y" ~idx:r
              ~value:(Builder.add b yr (Builder.mul b v xv)))
          ();
        [])
  in
  Builder.seal b

let spmv ?(rows = 20) ?(cols = 20) ?(nnz = 160) ?(clamp = 60) ?(seed = 23) () :
    t =
  let rng = Rng.create seed in
  let rowi = Array.init nnz (fun _ -> Rng.int rng rows) in
  let coli = Array.init nnz (fun _ -> Rng.int rng cols) in
  let nz = Array.init nnz (fun _ -> 1 + Rng.int rng 9) in
  let x = Array.init cols (fun _ -> 1 + Rng.int rng 9) in
  let reference () =
    let y = Array.make rows 0 in
    for e = 0 to nnz - 1 do
      if y.(rowi.(e)) < clamp then
        y.(rowi.(e)) <- y.(rowi.(e)) + (nz.(e) * x.(coli.(e)))
    done;
    y
  in
  {
    name = "spmv";
    description = Fmt.str "sparse matrix-vector accumulate (%dx%d)" rows cols;
    build = build_spmv;
    init_mem =
      (fun () ->
        Interp.Memory.create
          [ ("rowi", rowi); ("coli", coli); ("nz", nz); ("x", x);
            ("y", Array.make rows 0) ]);
    invocations =
      (fun () -> [ [ ("nnz", vint nnz); ("clamp", vint clamp) ] ]);
    check = (fun mem -> check_array mem "y" (reference ()));
  }

(* --- suites ---------------------------------------------------------------- *)

(* Table 1 / Figure 6 sizes. *)
let paper_suite () : t list =
  let g = Graph.email_eu_core_like () in
  [
    bfs ~graph:g ();
    bc ~graph:g ();
    sssp ~graph:g ~max_rounds:6 ();
    hist ();
    thr ();
    mm ();
    fw ();
    sort ();
    spmv ();
  ]

(* Small versions for the test suite. *)
let test_suite () : t list =
  let g = Graph.small () in
  [
    bfs ~graph:g ();
    bc ~graph:g ();
    sssp ~graph:g ~max_rounds:4 ();
    hist ~n:60 ~buckets:8 ~cap:12 ();
    thr ~n:50 ();
    mm ~left:12 ~right:12 ~m:60 ();
    fw ~n:5 ();
    sort ~n:8 ();
    spmv ~rows:6 ~cols:6 ~nnz:30 ~clamp:25 ();
  ]

let by_name suite name = List.find_opt (fun k -> k.name = name) suite

let suite_iter ?(suite = `Paper) ?(only = []) f =
  let ks = match suite with `Paper -> paper_suite () | `Quick -> test_suite () in
  let selected =
    if only = [] then ks else List.filter (fun k -> List.mem k.name only) ks
  in
  if selected = [] then Error "no kernels selected (try `daec list')"
  else begin
    List.iter f selected;
    Ok ()
  end
