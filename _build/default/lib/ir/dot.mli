(** Graphviz (DOT) export of a function's CFG: headers shaded, poison
    blocks highlighted, backedges dashed, channel operations tagged. *)

val pp : Format.formatter -> Func.t -> unit
val to_string : Func.t -> string
