(* Loop canonicalization: merge multiple backedges into a single latch.

   The paper's canonical loop form (§3.2) has one backedge from one latch.
   A loop with several latches (e.g. produced by node splitting, or by a
   `continue`-style CFG) gets a fresh combined latch: every old latch
   branches to it, it branches to the header, and the header's φs are
   re-routed through new φs in the combined latch. *)

open Types

(* Canonicalize one header; returns true if it changed anything. *)
let canonicalize_header (f : Func.t) header : bool =
  let loops = Loops.compute f in
  let latches =
    List.filter_map
      (fun (src, dst) -> if dst = header then Some src else None)
      loops.Loops.backedges
  in
  match latches with
  | [] | [ _ ] -> false
  | latches ->
    let hb = Func.block f header in
    let combined = Func.add_block ~after:(List.hd latches) f
        ~term:(Block.Br header) in
    (* header φs: the entries for the old latches move into a new φ in the
       combined latch *)
    hb.Block.phis <-
      List.map
        (fun (p : Block.phi) ->
          let latch_entries, other_entries =
            List.partition (fun (pr, _) -> List.mem pr latches) p.Block.incoming
          in
          if latch_entries = [] then p
          else begin
            let merged = Func.fresh_vid f in
            Block.add_phi combined
              { Block.pid = merged; ty = p.Block.ty; incoming = latch_entries };
            { p with
              Block.incoming =
                other_entries @ [ (combined.Block.bid, Var merged) ] }
          end)
        hb.Block.phis;
    (* redirect every old latch's backedge to the combined latch *)
    List.iter
      (fun l -> Func.retarget_edge f ~src:l ~old_dst:header
          ~new_dst:combined.Block.bid)
      latches;
    true

(* Canonicalize every loop; returns the number of combined latches added. *)
let run (f : Func.t) : int =
  let added = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let loops = Loops.compute f in
    match
      List.find_opt
        (fun (l : Loops.loop) ->
          List.length
            (List.filter (fun (_, dst) -> dst = l.Loops.header)
               loops.Loops.backedges)
          > 1)
        loops.Loops.loops
    with
    | Some l ->
      if canonicalize_header f l.Loops.header then incr added
      else continue_ := false
    | None -> continue_ := false
  done;
  !added
