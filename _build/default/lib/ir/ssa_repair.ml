(* SSA reconstruction after code motion.

   When the speculative-load pass (§5.4) moves a [consume_val] from its
   original block to one or more speculation blocks, the value's uses must
   be rewritten: a use may now be reached by several copies of the consume,
   requiring φs at join points. This is the classic "multiple definitions
   of one variable" SSA repair: place φs at the iterated dominance frontier
   of the definition blocks, then resolve every use to its reaching
   definition along the dominator tree. *)

open Types

(* Dominance frontier of every block (Cooper–Harvey–Kennedy §4). *)
let dominance_frontier (f : Func.t) (dom : Dom.t) : (int, int list) Hashtbl.t =
  let df = Hashtbl.create 16 in
  let add n b =
    let cur = try Hashtbl.find df n with Not_found -> [] in
    if not (List.mem b cur) then Hashtbl.replace df n (b :: cur)
  in
  let preds_tbl = Func.predecessors f in
  List.iter
    (fun b ->
      let preds = try Hashtbl.find preds_tbl b with Not_found -> [] in
      if List.length preds >= 2 then begin
        let idom_b = Dom.idom dom b in
        List.iter
          (fun p ->
            let rec runner n =
              if Some n <> idom_b && Dom.idom dom n <> None then begin
                add n b;
                match Dom.idom dom n with
                | Some parent when parent <> n -> runner parent
                | Some _ | None -> ()
              end
            in
            runner p)
          preds
      end)
    f.Func.layout;
  df

exception No_reaching_def of { use_block : int; vid : int }

(* Rewrite all uses of [old_vid] given fresh definitions [defs] (block ->
   operand holding the new value; at most one per block, conceptually at
   the block's end). φs of type [ty] are inserted at the iterated dominance
   frontier. [undef] (default: int 0) is used on paths with no reaching
   definition — such paths must never actually read the value (the dynamic
   equivalence check would expose it). *)
let rewrite_uses (f : Func.t) ~(old_vid : int) ~(defs : (int * operand) list)
    ~(ty : ty) ?(undef = Cst (Int 0)) () : unit =
  let dom = Dom.compute f in
  let df = dominance_frontier f dom in
  (* 1. iterated dominance frontier of the def blocks *)
  let phi_blocks = Hashtbl.create 8 in
  let worklist = Queue.create () in
  List.iter (fun (b, _) -> Queue.add b worklist) defs;
  let seen = Hashtbl.create 8 in
  while not (Queue.is_empty worklist) do
    let b = Queue.pop worklist in
    List.iter
      (fun d ->
        if not (Hashtbl.mem phi_blocks d) then begin
          Hashtbl.replace phi_blocks d ();
          if not (Hashtbl.mem seen d) then begin
            Hashtbl.replace seen d ();
            Queue.add d worklist
          end
        end)
      (try Hashtbl.find df b with Not_found -> [])
  done;
  (* 2. allocate φ ids *)
  let phi_ids = Hashtbl.create 8 in
  Hashtbl.iter
    (fun b () -> Hashtbl.replace phi_ids b (Func.fresh_vid f))
    phi_blocks;
  let explicit_defs = Hashtbl.create 8 in
  List.iter (fun (b, op) -> Hashtbl.replace explicit_defs b op) defs;
  (* def available at the end of block [b] *)
  let rec def_out b =
    match Hashtbl.find_opt explicit_defs b with
    | Some op -> Some op
    | None -> def_in b
  and def_in b =
    match Hashtbl.find_opt phi_ids b with
    | Some pid -> Some (Var pid)
    | None -> (
      match Dom.idom dom b with
      | Some p when p <> b -> def_out p
      | Some _ | None -> None)
  in
  let def_out_or_undef b = match def_out b with Some op -> op | None -> undef in
  let def_in_or_undef b = match def_in b with Some op -> op | None -> undef in
  (* 3. install the φs *)
  let preds_tbl = Func.predecessors f in
  Hashtbl.iter
    (fun b pid ->
      let preds = try Hashtbl.find preds_tbl b with Not_found -> [] in
      let incoming = List.map (fun p -> (p, def_out_or_undef p)) preds in
      Block.add_phi (Func.block f b) { Block.pid = pid; ty; incoming })
    phi_ids;
  (* 4. rewrite uses. An instruction use inside a block with an explicit
     def resolves to the def only if the def instruction precedes it; the
     caller places explicit defs at block ends, so instruction uses inside
     a def block resolve to the inherited (entry) value. *)
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      let subst_in op = if op = Var old_vid then def_in_or_undef bid else op in
      b.Block.instrs <-
        List.map (fun i -> Instr.map_operands subst_in i) b.Block.instrs;
      b.Block.term <-
        Block.map_terminator_operands
          (fun op -> if op = Var old_vid then def_out_or_undef bid else op)
          b;
      b.Block.phis <-
        List.map
          (fun (p : Block.phi) ->
            {
              p with
              Block.incoming =
                List.map
                  (fun (pred, op) ->
                    ( pred,
                      if op = Var old_vid then def_out_or_undef pred else op ))
                  p.Block.incoming;
            })
          b.Block.phis)
    f.Func.layout
