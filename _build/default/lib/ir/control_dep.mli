(** Control dependence (Ferrante–Ottenstein–Warren, from the postdominator
    tree): block [b] is control-dependent on block [a] iff [a]'s branch
    decides whether [b] executes. *)

type t

val compute : Func.t -> t

(** Blocks whose branch [b] is directly control-dependent on. *)
val sources : t -> int -> int list

(** Transitive control dependencies — Definition 4.2's LoD source "need
    not be the immediate control dependency". *)
val transitive_sources : t -> int -> int list

val depends : t -> block:int -> on:int -> bool
