(* Dominator and postdominator trees, via the Cooper–Harvey–Kennedy
   iterative algorithm ("A Simple, Fast Dominance Algorithm").

   Postdominance runs the same engine on the reversed CFG rooted at a
   virtual exit node that every [Ret] block feeds; control dependence
   (Dae_core.Control_dep) is computed from the postdominator tree. *)

type t = {
  idom : (int, int) Hashtbl.t; (* immediate dominator; root maps to itself *)
  root : int;
}

(* Generic CHK over an explicit node list in reverse post-order. *)
let compute_generic ~nodes_rpo ~preds ~root =
  let index = Hashtbl.create 32 in
  List.iteri (fun i n -> Hashtbl.replace index n i) nodes_rpo;
  let idom = Hashtbl.create 32 in
  Hashtbl.replace idom root root;
  let intersect a b =
    let rec go a b =
      if a = b then a
      else begin
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
      end
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if n <> root then begin
          let ps =
            List.filter (fun p -> Hashtbl.mem idom p && Hashtbl.mem index p)
              (preds n)
          in
          match ps with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if Hashtbl.find_opt idom n <> Some new_idom then begin
              Hashtbl.replace idom n new_idom;
              changed := true
            end
          end)
      nodes_rpo
  done;
  { idom; root }

let compute (f : Func.t) : t =
  let nodes_rpo = Order.rpo f in
  let preds_tbl = Func.predecessors f in
  let preds n = try Hashtbl.find preds_tbl n with Not_found -> [] in
  compute_generic ~nodes_rpo ~preds ~root:f.entry

(* Virtual exit node used by the postdominator computation. Block ids are
   non-negative, so -1 is free. *)
let virtual_exit = -1

let compute_post (f : Func.t) : t =
  let rets =
    List.filter
      (fun bid ->
        match (Func.block f bid).Block.term with
        | Block.Ret _ -> true
        | Block.Br _ | Block.Cond_br _ | Block.Switch _ -> false)
      f.layout
  in
  (* Successors in the reversed graph = predecessors in the CFG, with the
     virtual exit preceding every Ret block. *)
  let preds_tbl = Func.predecessors f in
  let rev_succs n =
    if n = virtual_exit then rets
    else try Hashtbl.find preds_tbl n with Not_found -> []
  in
  let nodes_rpo =
    Order.reverse_postorder ~succs:rev_succs virtual_exit
  in
  let rev_preds n =
    if n = virtual_exit then []
    else
      let direct = Func.successors f n in
      let to_exit =
        match (Func.block f n).Block.term with
        | Block.Ret _ -> [ virtual_exit ]
        | Block.Br _ | Block.Cond_br _ | Block.Switch _ -> []
      in
      direct @ to_exit
  in
  compute_generic ~nodes_rpo ~preds:rev_preds ~root:virtual_exit

let idom (t : t) n = Hashtbl.find_opt t.idom n

(* Does [a] dominate [b] (reflexively)? *)
let dominates (t : t) a b =
  let rec walk n =
    if n = a then true
    else if n = t.root then a = t.root
    else
      match Hashtbl.find_opt t.idom n with
      | None -> false
      | Some p -> if p = n then a = n else walk p
  in
  walk b

let strictly_dominates (t : t) a b = a <> b && dominates t a b

(* Children of each node in the dominator tree. *)
let children (t : t) : (int, int list) Hashtbl.t =
  let ch = Hashtbl.create 32 in
  Hashtbl.iter
    (fun n p ->
      if n <> p then
        Hashtbl.replace ch p (n :: (try Hashtbl.find ch p with Not_found -> [])))
    t.idom;
  ch
