(** SSA reconstruction after code motion (used by §5.4 speculative load
    consumption and by consume relocation in Algorithm 1): given fresh
    definitions of one value in several blocks, place φs at the iterated
    dominance frontier and rewrite every use to its reaching definition. *)

val dominance_frontier : Func.t -> Dom.t -> (int, int list) Hashtbl.t

exception No_reaching_def of { use_block : int; vid : int }

(** [rewrite_uses f ~old_vid ~defs ~ty ()] — [defs] maps block id to the
    operand holding the new value at that block's end. [undef] (default
    [Cst (Int 0)]) is used on paths with no reaching definition; such paths
    must never actually read the value (the dynamic equivalence checks
    would expose it). *)
val rewrite_uses :
  Func.t ->
  old_vid:int ->
  defs:(int * Types.operand) list ->
  ty:Types.ty ->
  ?undef:Types.operand ->
  unit ->
  unit
