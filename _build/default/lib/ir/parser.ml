(* Textual IR parser.

   Accepts exactly the grammar Printer emits, so that
   [parse (Printer.func_to_string f)] reconstructs [f] up to layout; the
   round trip is property-tested. Useful for writing test CFGs as literal
   strings (the paper's Figure 3/4 examples live in tests this way) and for
   the CLI driver. *)

open Types

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* --- tokenizer ---------------------------------------------------------- *)

type token =
  | Tident of string (* bare word: func, add, bb-less idents, array names *)
  | Tvar of int (* %N *)
  | Tblock of int (* bbN *)
  | Tint of int
  | Tmem of int (* !memN *)
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tcolon
  | Tequal
  | Teof

let tokenize (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || is_digit c || c = '_' || c = '.'
  in
  let read_while p =
    let start = !pos in
    while (match peek () with Some c -> p c | None -> false) do
      advance ()
    done;
    String.sub s start (!pos - start)
  in
  let read_int () =
    let neg = peek () = Some '-' in
    if neg then advance ();
    let digits = read_while is_digit in
    if digits = "" then fail "expected integer at offset %d" !pos;
    let v = int_of_string digits in
    if neg then -v else v
  in
  while !pos < n do
    match s.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> advance ()
    | '(' -> advance (); toks := Tlparen :: !toks
    | ')' -> advance (); toks := Trparen :: !toks
    | '{' -> advance (); toks := Tlbrace :: !toks
    | '}' -> advance (); toks := Trbrace :: !toks
    | '[' -> advance (); toks := Tlbracket :: !toks
    | ']' -> advance (); toks := Trbracket :: !toks
    | ',' -> advance (); toks := Tcomma :: !toks
    | ':' -> advance (); toks := Tcolon :: !toks
    | '=' -> advance (); toks := Tequal :: !toks
    | '%' ->
      advance ();
      toks := Tvar (read_int ()) :: !toks
    | '!' ->
      advance ();
      let word = read_while is_ident_char in
      if String.length word > 3 && String.sub word 0 3 = "mem" then
        toks :=
          Tmem (int_of_string (String.sub word 3 (String.length word - 3)))
          :: !toks
      else fail "unknown metadata !%s" word
    | ';' ->
      (* comment to end of line *)
      while peek () <> None && peek () <> Some '\n' do
        advance ()
      done
    | c when is_digit c || c = '-' -> toks := Tint (read_int ()) :: !toks
    | c when is_ident_char c ->
      let word = read_while is_ident_char in
      if
        String.length word > 2
        && String.sub word 0 2 = "bb"
        && String.for_all is_digit (String.sub word 2 (String.length word - 2))
      then
        toks :=
          Tblock (int_of_string (String.sub word 2 (String.length word - 2)))
          :: !toks
      else toks := Tident word :: !toks
    | c -> fail "unexpected character %C at offset %d" c !pos
  done;
  List.rev (Teof :: !toks)

(* --- parser state ------------------------------------------------------- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t
let next st =
  match st.toks with
  | [] -> Teof
  | t :: rest ->
    st.toks <- rest;
    t

let pp_token ppf = function
  | Tident s -> Fmt.pf ppf "ident %S" s
  | Tvar v -> Fmt.pf ppf "%%%d" v
  | Tblock b -> Fmt.pf ppf "bb%d" b
  | Tint n -> Fmt.pf ppf "int %d" n
  | Tmem m -> Fmt.pf ppf "!mem%d" m
  | Tlparen -> Fmt.string ppf "("
  | Trparen -> Fmt.string ppf ")"
  | Tlbrace -> Fmt.string ppf "{"
  | Trbrace -> Fmt.string ppf "}"
  | Tlbracket -> Fmt.string ppf "["
  | Trbracket -> Fmt.string ppf "]"
  | Tcomma -> Fmt.string ppf ","
  | Tcolon -> Fmt.string ppf ":"
  | Tequal -> Fmt.string ppf "="
  | Teof -> Fmt.string ppf "<eof>"

let expect st tok =
  let t = next st in
  if t <> tok then fail "expected %a, got %a" pp_token tok pp_token t

let expect_ident st =
  match next st with
  | Tident s -> s
  | t -> fail "expected identifier, got %a" pp_token t

let expect_var st =
  match next st with
  | Tvar v -> v
  | t -> fail "expected %%value, got %a" pp_token t

let expect_block st =
  match next st with
  | Tblock b -> b
  | t -> fail "expected bbN, got %a" pp_token t

let expect_mem st =
  match next st with
  | Tmem m -> m
  | t -> fail "expected !memN, got %a" pp_token t

let parse_operand st =
  match next st with
  | Tvar v -> Var v
  | Tint n -> Cst (Int n)
  | Tident "true" -> Cst (Bool true)
  | Tident "false" -> Cst (Bool false)
  | t -> fail "expected operand, got %a" pp_token t

let parse_ty st =
  match next st with
  | Tident "i1" -> I1
  | Tident "i32" -> I32
  | t -> fail "expected type, got %a" pp_token t

let binop_of_string = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "sdiv" -> Some Instr.Sdiv
  | "srem" -> Some Instr.Srem
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "ashr" -> Some Instr.Ashr
  | "smin" -> Some Instr.Smin
  | "smax" -> Some Instr.Smax
  | _ -> None

let cmp_of_string = function
  | "eq" -> Some Instr.Eq
  | "ne" -> Some Instr.Ne
  | "slt" -> Some Instr.Slt
  | "sle" -> Some Instr.Sle
  | "sgt" -> Some Instr.Sgt
  | "sge" -> Some Instr.Sge
  | _ -> None

(* [arr [ idx ]] suffix of memory operations. *)
let parse_indexed st arr =
  expect st Tlbracket;
  let idx = parse_operand st in
  expect st Trbracket;
  (arr, idx)

(* --- per-line parsers ---------------------------------------------------- *)

type parsed_line =
  | Lphi of Block.phi
  | Linstr of Instr.t
  | Lterm of Block.terminator

let parse_phi_body st ~pid =
  let ty = parse_ty st in
  let rec incoming acc =
    expect st Tlbracket;
    let pred = expect_block st in
    expect st Tcolon;
    let v = parse_operand st in
    expect st Trbracket;
    let acc = acc @ [ (pred, v) ] in
    if peek st = Tcomma then begin
      ignore (next st);
      incoming acc
    end
    else acc
  in
  Lphi { Block.pid; ty; incoming = incoming [] }

(* An instruction line that started with [%id =]. *)
let parse_def st ~id =
  let op = expect_ident st in
  match op with
  | "phi" -> parse_phi_body st ~pid:id
  | "cmp" ->
    let c = expect_ident st in
    let cmp =
      match cmp_of_string c with
      | Some c -> c
      | None -> fail "unknown comparison %s" c
    in
    let a = parse_operand st in
    expect st Tcomma;
    let b = parse_operand st in
    Linstr { Instr.id; kind = Instr.Cmp (cmp, a, b) }
  | "select" ->
    let c = parse_operand st in
    expect st Tcomma;
    let a = parse_operand st in
    expect st Tcomma;
    let b = parse_operand st in
    Linstr { Instr.id; kind = Instr.Select (c, a, b) }
  | "not" ->
    let a = parse_operand st in
    Linstr { Instr.id; kind = Instr.Not a }
  | "load" ->
    let arr = expect_ident st in
    let arr, idx = parse_indexed st arr in
    let mem = expect_mem st in
    Linstr { Instr.id; kind = Instr.Load { arr; idx; mem } }
  | "consume_val" ->
    let arr = expect_ident st in
    let mem = expect_mem st in
    Linstr { Instr.id; kind = Instr.Consume_val { arr; mem } }
  | other ->
    (match binop_of_string other with
    | Some bop ->
      let a = parse_operand st in
      expect st Tcomma;
      let b = parse_operand st in
      Linstr { Instr.id; kind = Instr.Binop (bop, a, b) }
    | None -> fail "unknown value-producing operation %s" other)

(* An instruction line that started with a bare identifier. The caller
   passes a fresh-id generator for unit-valued instructions. *)
let parse_effect st ~fresh_id op =
  match op with
  | "store" ->
    let arr = expect_ident st in
    let arr, idx = parse_indexed st arr in
    expect st Tcomma;
    let value = parse_operand st in
    let mem = expect_mem st in
    Linstr { Instr.id = fresh_id (); kind = Instr.Store { arr; idx; value; mem } }
  | "send_ld_addr" ->
    let arr = expect_ident st in
    let arr, idx = parse_indexed st arr in
    let mem = expect_mem st in
    Linstr { Instr.id = fresh_id (); kind = Instr.Send_ld_addr { arr; idx; mem } }
  | "send_st_addr" ->
    let arr = expect_ident st in
    let arr, idx = parse_indexed st arr in
    let mem = expect_mem st in
    Linstr { Instr.id = fresh_id (); kind = Instr.Send_st_addr { arr; idx; mem } }
  | "produce_val" ->
    let arr = expect_ident st in
    expect st Tcomma;
    let value = parse_operand st in
    let mem = expect_mem st in
    Linstr { Instr.id = fresh_id (); kind = Instr.Produce_val { arr; value; mem } }
  | "poison" ->
    let arr = expect_ident st in
    let mem = expect_mem st in
    Linstr { Instr.id = fresh_id (); kind = Instr.Poison { arr; mem } }
  | "br" ->
    (* br bbN  |  br %c, bbN, bbM *)
    (match peek st with
    | Tblock _ -> Lterm (Block.Br (expect_block st))
    | _ ->
      let c = parse_operand st in
      expect st Tcomma;
      let t = expect_block st in
      expect st Tcomma;
      let f = expect_block st in
      Lterm (Block.Cond_br (c, t, f)))
  | "switch" ->
    let c = parse_operand st in
    expect st Tcomma;
    let rec targets acc =
      let t = expect_block st in
      let acc = acc @ [ t ] in
      if peek st = Tcomma then begin
        ignore (next st);
        targets acc
      end
      else acc
    in
    Lterm (Block.Switch (c, targets []))
  | "ret" ->
    (match peek st with
    | Tvar _ | Tint _ | Tident "true" | Tident "false" ->
      Lterm (Block.Ret (Some (parse_operand st)))
    | _ -> Lterm (Block.Ret None))
  | other -> fail "unknown operation %s" other

(* --- function parser ----------------------------------------------------- *)

let parse (src : string) : Func.t =
  let st = { toks = tokenize src } in
  expect st (Tident "func");
  let name = expect_ident st in
  expect st Tlparen;
  let rec params acc =
    match peek st with
    | Trparen ->
      ignore (next st);
      acc
    | _ ->
      let pname = expect_ident st in
      expect st Tcolon;
      let vid = expect_var st in
      let acc = acc @ [ (pname, vid) ] in
      (match peek st with
      | Tcomma ->
        ignore (next st);
        params acc
      | _ ->
        expect st Trparen;
        acc)
  in
  let params = params [] in
  expect st Tlbrace;
  (* Parse block sections. *)
  let max_vid = ref (-1) in
  let max_mem = ref (-1) in
  let note_vid v = if v > !max_vid then max_vid := v in
  let note_mem m = if m > !max_mem then max_mem := m in
  List.iter (fun (_, v) -> note_vid v) params;
  (* We pre-scan nothing; unit instruction ids are assigned after parsing
     from a counter above every %id seen, so parse into an intermediate
     representation first. *)
  let blocks : (int * Block.phi list * (parsed_line list)) list ref = ref [] in
  let rec parse_blocks () =
    match next st with
    | Trbrace -> ()
    | Tblock bid ->
      expect st Tcolon;
      let phis = ref [] in
      let lines = ref [] in
      let rec body () =
        match peek st with
        | Tblock _ | Trbrace -> ()
        | Tvar id ->
          ignore (next st);
          note_vid id;
          expect st Tequal;
          (match parse_def st ~id with
          | Lphi p -> phis := !phis @ [ p ]
          | line -> lines := !lines @ [ line ]);
          body ()
        | Tident op ->
          ignore (next st);
          (* fresh ids for unit instructions patched below: use -1 now *)
          let line = parse_effect st ~fresh_id:(fun () -> -1) op in
          lines := !lines @ [ line ];
          body ()
        | t -> fail "unexpected token %a in block body" pp_token t
      in
      body ();
      blocks := !blocks @ [ (bid, !phis, !lines) ];
      parse_blocks ()
    | t -> fail "expected block label, got %a" pp_token t
  in
  parse_blocks ();
  (match peek st with
  | Teof -> ()
  | t -> fail "trailing input: %a" pp_token t);
  (* Scan for mem ids and the max vid used anywhere. *)
  List.iter
    (fun (_, phis, lines) ->
      List.iter (fun (p : Block.phi) -> note_vid p.Block.pid) phis;
      List.iter
        (function
          | Linstr i ->
            note_vid i.Instr.id;
            (match Instr.mem_id i with Some m -> note_mem m | None -> ());
            List.iter
              (function Var v -> note_vid v | Cst _ -> ())
              (Instr.operands i)
          | Lphi _ | Lterm _ -> ())
        lines)
    !blocks;
  (* Materialize the function. *)
  (match !blocks with
  | [] -> fail "function %s has no blocks" name
  | (entry_bid, _, _) :: _ ->
    let f : Func.t =
      {
        Func.name;
        params;
        entry = entry_bid;
        blocks = Hashtbl.create 16;
        layout = [];
        next_vid = !max_vid + 1;
        next_bid = 1 + List.fold_left (fun a (b, _, _) -> max a b) 0 !blocks;
        next_mem = !max_mem + 1;
      }
    in
    List.iter
      (fun (bid, phis, lines) ->
        let instrs = ref [] in
        let term = ref None in
        List.iter
          (fun line ->
            match line with
            | Linstr i ->
              let i =
                if i.Instr.id = -1 then begin
                  let id = Func.fresh_vid f in
                  { i with Instr.id }
                end
                else i
              in
              instrs := !instrs @ [ i ]
            | Lterm t ->
              (match !term with
              | None -> term := Some t
              | Some _ -> fail "bb%d has two terminators" bid)
            | Lphi _ -> assert false)
          lines;
        let term =
          match !term with
          | Some t -> t
          | None -> fail "bb%d has no terminator" bid
        in
        let b = Block.create ~phis ~instrs:!instrs ~term bid in
        Hashtbl.replace f.Func.blocks bid b;
        f.Func.layout <- f.Func.layout @ [ bid ])
      !blocks;
    f)

let parse_exn = parse

let parse_result (src : string) : (Func.t, string) result =
  match parse src with
  | f -> Ok f
  | exception Parse_error msg -> Error msg
