(* Functions: a named entry block, a block table, and fresh-id counters.

   The block table is mutable (blocks are added by edge splitting and poison
   insertion, removed by CFG simplification); analyses over the CFG are
   recomputed from scratch after mutation — the functions involved are
   kernel-sized, so clarity wins over incrementality. *)

type t = {
  name : string;
  params : (string * int) list; (* parameter name, SSA value id *)
  entry : int;
  blocks : (int, Block.t) Hashtbl.t;
  mutable layout : int list; (* printing / iteration order *)
  mutable next_vid : int;
  mutable next_bid : int;
  mutable next_mem : int;
}

let create ~name ~params =
  let next_vid = ref 0 in
  let params =
    List.map
      (fun p ->
        let id = !next_vid in
        incr next_vid;
        (p, id))
      params
  in
  let entry_bid = 0 in
  let entry = Block.create ~term:(Block.Ret None) entry_bid in
  let blocks = Hashtbl.create 16 in
  Hashtbl.replace blocks entry_bid entry;
  {
    name;
    params;
    entry = entry_bid;
    blocks;
    layout = [ entry_bid ];
    next_vid = !next_vid;
    next_bid = entry_bid + 1;
    next_mem = 0;
  }

let block (f : t) bid =
  match Hashtbl.find_opt f.blocks bid with
  | Some b -> b
  | None -> Fmt.invalid_arg "Func.block: no block %d in %s" bid f.name

let block_opt (f : t) bid = Hashtbl.find_opt f.blocks bid
let mem_block (f : t) bid = Hashtbl.mem f.blocks bid

let blocks_in_layout (f : t) = List.map (block f) f.layout

let entry_block (f : t) = block f f.entry

let fresh_vid (f : t) =
  let id = f.next_vid in
  f.next_vid <- id + 1;
  id

let fresh_mem (f : t) =
  let id = f.next_mem in
  f.next_mem <- id + 1;
  id

(* Create a fresh empty block, terminated by [term], and register it in the
   layout right after [after] when given (purely cosmetic for printing). *)
let add_block ?after (f : t) ~term =
  let bid = f.next_bid in
  f.next_bid <- bid + 1;
  let b = Block.create ~term bid in
  Hashtbl.replace f.blocks bid b;
  (f.layout <-
     match after with
     | None -> f.layout @ [ bid ]
     | Some a ->
       let rec ins = function
         | [] -> [ bid ]
         | x :: rest when x = a -> x :: bid :: rest
         | x :: rest -> x :: ins rest
       in
       ins f.layout);
  b

let remove_block (f : t) bid =
  Hashtbl.remove f.blocks bid;
  f.layout <- List.filter (fun b -> b <> bid) f.layout

let param_vid (f : t) name =
  match List.assoc_opt name f.params with
  | Some id -> id
  | None -> Fmt.invalid_arg "Func.param_vid: no parameter %s in %s" name f.name

(* Deep copy: blocks are fresh records, so mutations of the clone never
   affect the original. Ids (blocks, values, mem ids) are preserved — the
   decoupler relies on the AGU and CU slices sharing the original's block
   ids until their CFGs are simplified. *)
let clone ?name (f : t) : t =
  let blocks = Hashtbl.create (Hashtbl.length f.blocks) in
  Hashtbl.iter
    (fun bid (b : Block.t) ->
      Hashtbl.replace blocks bid
        (Block.create ~phis:b.Block.phis ~instrs:b.Block.instrs
           ~term:b.Block.term bid))
    f.blocks;
  {
    name = (match name with Some n -> n | None -> f.name);
    params = f.params;
    entry = f.entry;
    blocks;
    layout = f.layout;
    next_vid = f.next_vid;
    next_bid = f.next_bid;
    next_mem = f.next_mem;
  }

(* --- CFG structure ------------------------------------------------------ *)

let successors (f : t) bid = Block.successors (block f bid)

(* Predecessor map (with duplicate edges collapsed, mirroring
   Block.successors). *)
let predecessors (f : t) : (int, int list) Hashtbl.t =
  let preds = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace preds bid []) f.layout;
  List.iter
    (fun bid ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          if not (List.mem bid cur) then Hashtbl.replace preds s (cur @ [ bid ]))
        (successors f bid))
    f.layout;
  preds

let edges (f : t) : (int * int) list =
  List.concat_map
    (fun bid -> List.map (fun s -> (bid, s)) (successors f bid))
    f.layout

(* All SSA definitions of the function: parameter ids, φ ids, and ids of
   value-producing instructions. *)
let definitions (f : t) : (int, unit) Hashtbl.t =
  let defs = Hashtbl.create 64 in
  List.iter (fun (_, id) -> Hashtbl.replace defs id ()) f.params;
  List.iter
    (fun bid ->
      let b = block f bid in
      List.iter (fun (p : Block.phi) -> Hashtbl.replace defs p.pid ()) b.phis;
      List.iter
        (fun (i : Instr.t) ->
          if Instr.produces_value i then Hashtbl.replace defs i.Instr.id ())
        b.instrs)
    f.layout;
  defs

(* Names of all arrays (memory regions) touched by the function, in first
   occurrence order. *)
let arrays (f : t) : string list =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun bid ->
      List.iter
        (fun i ->
          match Instr.array_name i with
          | Some a when not (Hashtbl.mem seen a) ->
            Hashtbl.replace seen a ();
            out := a :: !out
          | Some _ | None -> ())
        (block f bid).Block.instrs)
    f.layout;
  List.rev !out

(* --- CFG surgery -------------------------------------------------------- *)

(* Redirect the CFG edge [src -> old_dst] to [src -> new_dst], patching the
   φ-nodes of both destinations: the incoming entry for [src] moves from
   [old_dst]'s φs (removed) — callers that split an edge are expected to
   have installed φs or instructions in [new_dst] as appropriate. *)
let retarget_edge (f : t) ~src ~old_dst ~new_dst =
  Block.replace_successor (block f src) ~old_target:old_dst
    ~new_target:new_dst

(* Split the edge [src -> dst] by inserting a fresh block that jumps to
   [dst]. φ incoming entries of [dst] mentioning [src] are renamed to the
   new block, preserving SSA form. Returns the new block. *)
let split_edge (f : t) ~src ~dst =
  let nb = add_block ~after:src f ~term:(Block.Br dst) in
  retarget_edge f ~src ~old_dst:dst ~new_dst:nb.Block.bid;
  Block.rename_phi_pred (block f dst) ~old_pred:src ~new_pred:nb.Block.bid;
  nb

(* Map over every instruction of the function in place. *)
let iter_instrs (f : t) g =
  List.iter (fun bid -> List.iter g (block f bid).Block.instrs) f.layout

let fold_instrs (f : t) g acc =
  List.fold_left
    (fun acc bid -> List.fold_left g acc (block f bid).Block.instrs)
    acc f.layout

(* Find the block containing the instruction with the given id. *)
let block_of_instr (f : t) ~id : Block.t option =
  List.find_opt
    (fun (b : Block.t) ->
      List.exists (fun (i : Instr.t) -> i.Instr.id = id) b.Block.instrs)
    (blocks_in_layout f)
