(** Scalar types, constants, operands and runtime values of the IR.

    The IR is deliberately small: 32-bit signed integers and booleans cover
    every kernel in the paper's evaluation. Arrays are named memory regions
    addressed by integer index (the target accelerators use statically
    allocated on-chip SRAM). *)

(** Scalar types. *)
type ty = I1 | I32

(** Compile-time constants. *)
type const = Bool of bool | Int of int

(** An instruction operand: an SSA value reference or an immediate. *)
type operand = Var of int | Cst of const

val ty_of_const : const -> ty

val equal_ty : ty -> ty -> bool
val equal_const : const -> const -> bool
val equal_operand : operand -> operand -> bool

val pp_ty : Format.formatter -> ty -> unit
val pp_const : Format.formatter -> const -> unit
val pp_operand : Format.formatter -> operand -> unit

(** Runtime values flowing through the interpreter and the simulator. *)
type value = Vbool of bool | Vint of int

val value_of_const : const -> value
val equal_value : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

(** @raise Invalid_argument on a boolean. *)
val int_of_value : value -> int

(** @raise Invalid_argument on an integer. *)
val bool_of_value : value -> bool
