(** IR well-formedness: layout/table agreement, existing branch targets,
    unique SSA definitions, φ/predecessor consistency, and dominance of
    every use by its definition. Run at pass boundaries — CFG-surgery bugs
    surface here long before they corrupt simulation results. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

val check : Func.t -> (unit, error list) result

(** @raise Invalid_argument with a full report on malformed IR. *)
val check_exn : Func.t -> unit
