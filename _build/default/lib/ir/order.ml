(* CFG traversal orders.

   Reverse post-order of a reducible loop body (with backedges ignored) is a
   topological order of its DAG — the property Algorithm 1 of the paper
   relies on: if block A precedes block B on any path through the loop, then
   A precedes B in reverse post-order. *)

(* Generic DFS postorder from [root] following [succs]; [skip] filters out
   edges (used to ignore loop backedges or headers of other loops). *)
let postorder ?(skip = fun ~src:_ ~dst:_ -> false) ~succs root =
  let visited = Hashtbl.create 32 in
  let order = ref [] in
  let rec go n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter
        (fun s -> if not (skip ~src:n ~dst:s) then go s)
        (succs n);
      order := n :: !order
    end
  in
  go root;
  (* [order] was built by prepending at exit, so it already is reverse
     postorder; return the postorder. *)
  List.rev !order

let reverse_postorder ?skip ~succs root =
  List.rev (postorder ?skip ~succs root)

(* Reverse post-order over the whole function CFG. *)
let rpo (f : Func.t) = reverse_postorder ~succs:(Func.successors f) f.entry

(* Blocks reachable from the entry. *)
let reachable_from_entry (f : Func.t) =
  let set = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace set b ()) (rpo f);
  set

(* Reverse post-order of the DAG obtained by starting at [root] and ignoring
   the given set of backedges (pairs). Used both for topological sorting of
   a loop body and for Algorithm 1's traversal from a LoD source block. *)
let rpo_ignoring_backedges (f : Func.t) ~backedges root =
  let skip ~src ~dst = List.mem (src, dst) backedges in
  reverse_postorder ~skip ~succs:(Func.successors f) root
