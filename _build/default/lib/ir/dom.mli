(** Dominator and postdominator trees (Cooper–Harvey–Kennedy).

    Postdominance runs the same engine on the reversed CFG rooted at a
    virtual exit that every [ret] block feeds; control dependence is
    derived from it. *)

type t = {
  idom : (int, int) Hashtbl.t;  (** immediate dominator; root maps to itself *)
  root : int;
}

val compute : Func.t -> t

(** The virtual exit node id used by {!compute_post} (never a block id). *)
val virtual_exit : int

val compute_post : Func.t -> t

val idom : t -> int -> int option

(** Reflexive dominance. *)
val dominates : t -> int -> int -> bool

val strictly_dominates : t -> int -> int -> bool

(** Children map of the (post)dominator tree. *)
val children : t -> (int, int list) Hashtbl.t
