(* φ → select conversion (paper §5.4: "Alternatively, we can transform φ
   instructions using the load value into select instructions").

   A φ at a two-predecessor join converts to a select when the join's
   immediate dominator ends in a conditional branch whose two arms
   correspond one-to-one to the predecessors, and both incoming values are
   available at the join (their definitions dominate it — constants,
   parameters, or values computed above the branch). The CFG is left
   untouched; only the merge point becomes a data-flow mux, which is what a
   predicated/dataflow backend (§7.2) wants. *)

open Types

(* Does the operand's definition dominate [bid]? *)
let available_at (f : Func.t) (dom : Dom.t) op bid =
  match op with
  | Cst _ -> true
  | Var v -> (
    if List.exists (fun (_, id) -> id = v) f.Func.params then true
    else
      match Func.block_of_instr f ~id:v with
      | Some db ->
        Dom.strictly_dominates dom db.Block.bid bid || db.Block.bid = bid
      | None -> (
        (* maybe a φ *)
        match
          List.find_opt
            (fun b ->
              List.exists
                (fun (p : Block.phi) -> p.Block.pid = v)
                (Func.block f b).Block.phis)
            f.Func.layout
        with
        | Some db -> Dom.strictly_dominates dom db bid
        | None -> false))

(* The branch arm (true/false side) a predecessor of [join] belongs to,
   given the dominating branch block [br] with targets [t]/[fl]. *)
let side_of (dom : Dom.t) ~join ~br ~t ~fl pred =
  if pred = br then
    (* triangle: the branch jumps straight to the join on one side *)
    if t = join && fl <> join then Some `T
    else if fl = join && t <> join then Some `F
    else None
  else if t <> fl && Dom.dominates dom t pred && not (Dom.dominates dom fl pred)
  then Some `T
  else if t <> fl && Dom.dominates dom fl pred && not (Dom.dominates dom t pred)
  then Some `F
  else None

let convertible (f : Func.t) (dom : Dom.t) bid (p : Block.phi) :
    Instr.kind option =
  match p.Block.incoming with
  | [ (p1, v1); (p2, v2) ] -> (
    match Dom.idom dom bid with
    | Some br when br <> bid -> (
      match (Func.block f br).Block.term with
      | Block.Cond_br (c, t, fl) -> (
        match
          ( side_of dom ~join:bid ~br ~t ~fl p1,
            side_of dom ~join:bid ~br ~t ~fl p2 )
        with
        | Some `T, Some `F
          when available_at f dom v1 bid && available_at f dom v2 bid ->
          Some (Instr.Select (c, v1, v2))
        | Some `F, Some `T
          when available_at f dom v1 bid && available_at f dom v2 bid ->
          Some (Instr.Select (c, v2, v1))
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* Convert every eligible φ; returns the number converted. *)
let run (f : Func.t) : int =
  let dom = Dom.compute f in
  let converted = ref 0 in
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      let keep =
        List.filter
          (fun (p : Block.phi) ->
            match convertible f dom bid p with
            | Some kind ->
              Block.prepend_instr b { Instr.id = p.Block.pid; kind };
              incr converted;
              false
            | None -> true)
          b.Block.phis
      in
      b.Block.phis <- keep)
    f.Func.layout;
  !converted
