(* Core scalar types and operands of the IR.

   The IR is deliberately small: 32-bit integers and booleans cover every
   kernel in the paper's evaluation, and arrays are named memory regions
   addressed by integer index (the HLS accelerators the paper targets use
   statically allocated on-chip SRAM, see DESIGN.md). *)

type ty = I1 | I32

type const =
  | Bool of bool
  | Int of int

type operand =
  | Var of int (* SSA value id *)
  | Cst of const

let ty_of_const = function
  | Bool _ -> I1
  | Int _ -> I32

let equal_ty (a : ty) (b : ty) = a = b

let equal_const (a : const) (b : const) =
  match a, b with
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Bool _, Int _ | Int _, Bool _ -> false

let equal_operand (a : operand) (b : operand) =
  match a, b with
  | Var x, Var y -> x = y
  | Cst x, Cst y -> equal_const x y
  | Var _, Cst _ | Cst _, Var _ -> false

let pp_ty ppf = function
  | I1 -> Fmt.string ppf "i1"
  | I32 -> Fmt.string ppf "i32"

let pp_const ppf = function
  | Bool true -> Fmt.string ppf "true"
  | Bool false -> Fmt.string ppf "false"
  | Int n -> Fmt.int ppf n

let pp_operand ppf = function
  | Var v -> Fmt.pf ppf "%%%d" v
  | Cst c -> pp_const ppf c

(* Runtime values flowing through the interpreter and simulator. *)
type value =
  | Vbool of bool
  | Vint of int

let value_of_const = function
  | Bool b -> Vbool b
  | Int n -> Vint n

let equal_value (a : value) (b : value) =
  match a, b with
  | Vbool x, Vbool y -> x = y
  | Vint x, Vint y -> x = y
  | Vbool _, Vint _ | Vint _, Vbool _ -> false

let pp_value ppf = function
  | Vbool b -> Fmt.bool ppf b
  | Vint n -> Fmt.int ppf n

let int_of_value = function
  | Vint n -> n
  | Vbool _ -> invalid_arg "Types.int_of_value: boolean value"

let bool_of_value = function
  | Vbool b -> b
  | Vint _ -> invalid_arg "Types.bool_of_value: integer value"
