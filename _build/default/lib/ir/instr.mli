(** IR instructions.

    Every instruction carries an SSA id (also the unit-producing ones, to
    keep def-use bookkeeping uniform). Memory operations carry a stable
    {!type:mem_id} that survives decoupling: the store [s] of the original
    program becomes [Send_st_addr] with the same id in the AGU slice and
    [Produce_val]/[Poison] with the same id in the CU slice — the id is
    what ties request, value and kill streams together in the simulator. *)

(** Stable identity of a static memory operation across transformation. *)
type mem_id = int

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv  (** division by zero yields 0, as the simulated SRAM datapath *)
  | Srem  (** remainder by zero yields 0 *)
  | And
  | Or
  | Xor
  | Shl  (** shift amounts are masked to 5 bits *)
  | Ashr
  | Smin
  | Smax

type cmp = Eq | Ne | Slt | Sle | Sgt | Sge

type kind =
  | Binop of binop * Types.operand * Types.operand
  | Cmp of cmp * Types.operand * Types.operand
  | Select of Types.operand * Types.operand * Types.operand
      (** [Select (cond, if_true, if_false)] *)
  | Not of Types.operand
  | Load of { arr : string; idx : Types.operand; mem : mem_id }
  | Store of
      { arr : string; idx : Types.operand; value : Types.operand; mem : mem_id }
  | Send_ld_addr of { arr : string; idx : Types.operand; mem : mem_id }
      (** AGU: push a load request to the DU (paper §3.2). *)
  | Send_st_addr of { arr : string; idx : Types.operand; mem : mem_id }
      (** AGU: push a store allocation request to the DU. *)
  | Consume_val of { arr : string; mem : mem_id }
      (** pop a load value from the DU; produces the value *)
  | Produce_val of { arr : string; value : Types.operand; mem : mem_id }
      (** CU: push a store value to the DU *)
  | Poison of { arr : string; mem : mem_id }
      (** CU: kill the pending store allocation (paper §3.1) *)

type t = { id : int; kind : kind }

val eval_binop : binop -> int -> int -> int
val eval_cmp : cmp -> int -> int -> bool

val string_of_binop : binop -> string
val string_of_cmp : cmp -> string

(** Operands read by the instruction, in syntactic order. *)
val operands : t -> Types.operand list

(** Rewrite every operand. *)
val map_operands : (Types.operand -> Types.operand) -> t -> t

(** Does the instruction define a value other instructions may use? *)
val produces_value : t -> bool

(** Instructions DCE must never remove (stores and channel operations; a
    dead on-chip-SRAM load is removable). *)
val has_side_effect : t -> bool

(** The memory id of a memory or channel operation. *)
val mem_id : t -> mem_id option

(** The array touched by a memory or channel operation. *)
val array_name : t -> string option

(** Is this an AGU memory request (what Algorithm 1 hoists)? *)
val is_request : t -> bool

val pp : Format.formatter -> t -> unit
