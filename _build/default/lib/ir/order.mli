(** CFG traversal orders.

    Reverse post-order of a reducible loop body with backedges ignored is a
    topological order of its DAG — the property Algorithm 1 relies on: if
    block A precedes B on any path through the loop, A precedes B in
    reverse post-order. *)

(** DFS postorder from [root]; [skip] filters edges (ignore backedges,
    avoid entering other loops). *)
val postorder :
  ?skip:(src:'a -> dst:'a -> bool) -> succs:('a -> 'a list) -> 'a -> 'a list

val reverse_postorder :
  ?skip:(src:'a -> dst:'a -> bool) -> succs:('a -> 'a list) -> 'a -> 'a list

(** Reverse post-order over the whole function CFG. *)
val rpo : Func.t -> int list

(** Blocks reachable from the entry, as a set. *)
val reachable_from_entry : Func.t -> (int, unit) Hashtbl.t

(** Reverse post-order of the DAG rooted at [root] with the given backedges
    removed. *)
val rpo_ignoring_backedges :
  Func.t -> backedges:(int * int) list -> int -> int list
