(** Loop-invariant code motion: pure instructions in blocks that execute on
    every iteration, with loop-invariant operands, move to the loop
    preheader (innermost loops first). Returns the number of instructions
    moved. Memory/channel operations never move. *)

val preheader : Func.t -> Loops.loop -> int option
val run : Func.t -> int
