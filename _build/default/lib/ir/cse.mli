(** Dominator-scoped common subexpression elimination over pure
    instructions (commutativity-aware). Loads are not value-numbered (a
    store may intervene). Cleans up the duplication introduced by per-head
    address-chain hoisting and LICM. Returns the number of eliminated
    instructions. *)

val run : Func.t -> int
