(* Dead code elimination (paper §3.2 step 3).

   After decoupling, the CU no longer needs address-generation code and the
   AGU no longer needs compute code; a standard mark-and-sweep over the SSA
   graph removes both. Roots are side-effecting instructions (stores,
   channel operations) and branch conditions of live blocks. *)

let run (f : Func.t) : int =
  let live = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let mark v =
    if not (Hashtbl.mem live v) then begin
      Hashtbl.replace live v ();
      Queue.add v worklist
    end
  in
  let mark_operands ops =
    List.iter (function Types.Var v -> mark v | Types.Cst _ -> ()) ops
  in
  (* Roots: side effects and control flow. *)
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter
        (fun (i : Instr.t) ->
          if Instr.has_side_effect i then begin
            mark i.Instr.id;
            mark_operands (Instr.operands i)
          end)
        b.Block.instrs;
      mark_operands (Block.terminator_operands b))
    f.Func.layout;
  (* Propagate through use-def edges. *)
  let du = Defuse.compute f in
  while not (Queue.is_empty worklist) do
    let v = Queue.pop worklist in
    match Defuse.def_site du v with
    | None | Some (Defuse.Param _) -> ()
    | Some (Defuse.Instruction _) ->
      (match Defuse.find_instr du v with
      | None -> ()
      | Some i -> mark_operands (Instr.operands i))
    | Some (Defuse.Phi _) ->
      (match Defuse.find_phi du v with
      | None -> ()
      | Some (p, _) -> mark_operands (List.map snd p.Block.incoming))
  done;
  (* Sweep. *)
  let removed = ref 0 in
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      let keep_i (i : Instr.t) =
        Instr.has_side_effect i || Hashtbl.mem live i.Instr.id
      in
      let keep_p (p : Block.phi) = Hashtbl.mem live p.Block.pid in
      removed :=
        !removed
        + List.length (List.filter (fun i -> not (keep_i i)) b.Block.instrs)
        + List.length (List.filter (fun p -> not (keep_p p)) b.Block.phis);
      b.Block.instrs <- List.filter keep_i b.Block.instrs;
      b.Block.phis <- List.filter keep_p b.Block.phis)
    f.Func.layout;
  !removed

(* Run to a fixed point (a swept φ can make another φ dead). *)
let run_to_fixpoint (f : Func.t) : int =
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let n = run f in
    total := !total + n;
    continue_ := n > 0
  done;
  !total
