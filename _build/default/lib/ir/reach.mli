(** Reachability over the forward-edge (backedge-blind) graph — the query
    Algorithms 2 and 3 ask repeatedly: "is trueBB still reachable from this
    edge destination?" *)

type t

(** Backedges from {!Loops.compute}. *)
val create : Func.t -> t

val create_with_backedges : Func.t -> backedges:(int * int) list -> t

(** Reflexive forward reachability. *)
val reachable : t -> src:int -> dst:int -> bool

(** At least one forward edge must be taken. *)
val strictly_reachable : t -> src:int -> dst:int -> bool
