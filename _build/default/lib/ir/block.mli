(** Basic blocks: a φ section, a straight-line body and one terminator.

    Blocks are mutable because the speculation transformation performs
    heavy CFG surgery (hoisting, edge splitting, steering-φ insertion). *)

type phi = {
  pid : int;  (** SSA value defined by the φ *)
  ty : Types.ty;
  incoming : (int * Types.operand) list;  (** (predecessor block, value) *)
}

type terminator =
  | Br of int
  | Cond_br of Types.operand * int * int  (** cond, if-true, if-false *)
  | Switch of Types.operand * int list
      (** multi-way branch: the i32 selector indexes the target list
          (clamped); needed for the paper's Figure 4 running example *)
  | Ret of Types.operand option

type t = {
  bid : int;
  mutable phis : phi list;
  mutable instrs : Instr.t list;
  mutable term : terminator;
}

val create :
  ?phis:phi list -> ?instrs:Instr.t list -> term:terminator -> int -> t

val dedup : 'a list -> 'a list

(** Successor blocks with duplicate targets collapsed. *)
val successors : t -> int list

(** Raw successor edges, duplicates preserved (a conditional branch with
    equal targets still has two syntactic edges). *)
val successor_edges : t -> int list

val terminator_operands : t -> Types.operand list
val map_terminator_operands : (Types.operand -> Types.operand) -> t -> terminator

(** Redirect every branch to [old_target] onto [new_target]. φs of the
    targets are not adjusted — use {!Func.split_edge} / {!Func.retarget_edge}
    for SSA-preserving surgery. *)
val replace_successor : t -> old_target:int -> new_target:int -> unit

val append_instr : t -> Instr.t -> unit
val prepend_instr : t -> Instr.t -> unit
val remove_instr : t -> id:int -> unit
val add_phi : t -> phi -> unit

(** Rename the predecessor mentioned in φ incoming edges (edge splitting). *)
val rename_phi_pred : t -> old_pred:int -> new_pred:int -> unit

(** Drop φ incoming entries for a removed predecessor. *)
val remove_phi_pred : t -> pred:int -> unit
