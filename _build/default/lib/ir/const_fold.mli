(** Constant folding and algebraic simplification with substitution-based
    copy propagation, to a fixed point. Folds constant binops/compares/
    selects/nots, identities (x+0, x*1, x&x, x-x, ...), and φs whose
    incoming values coincide. Returns the number of folds. *)

val fold_kind : Instr.kind -> Types.operand option
val fold_phi : Block.phi -> Types.operand option
val run : Func.t -> int
