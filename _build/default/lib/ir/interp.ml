(* Sequential reference interpreter — the golden model.

   Executes original (non-decoupled) IR against a memory image and records
   the dynamic trace of memory operations. The decoupled machine's final
   memory must match this interpreter's on every run (sequential
   consistency, paper §6), and the recorded store trace is what Lemma 6.1's
   dynamic check compares the AGU/CU streams against. *)

open Types

module Memory = struct
  type t = (string, int array) Hashtbl.t

  let create (arrays : (string * int array) list) : t =
    let t = Hashtbl.create 8 in
    List.iter (fun (name, a) -> Hashtbl.replace t name (Array.copy a)) arrays;
    t

  let copy (t : t) : t =
    let c = Hashtbl.create (Hashtbl.length t) in
    Hashtbl.iter (fun k v -> Hashtbl.replace c k (Array.copy v)) t;
    c

  let array (t : t) name =
    match Hashtbl.find_opt t name with
    | Some a -> a
    | None -> Fmt.invalid_arg "Interp.Memory: unknown array %s" name

  let get (t : t) name idx =
    let a = array t name in
    if idx < 0 || idx >= Array.length a then
      Fmt.invalid_arg "Interp.Memory: %s[%d] out of bounds (len %d)" name idx
        (Array.length a)
    else a.(idx)

  (* Non-trapping read for speculative loads: a mis-speculated address may
     be out of bounds; on-chip SRAM returns garbage (modelled as 0) rather
     than faulting, and the value is discarded anyway (paper §3.1). *)
  let get_speculative (t : t) name idx =
    let a = array t name in
    if idx < 0 || idx >= Array.length a then 0 else a.(idx)

  let set (t : t) name idx v =
    let a = array t name in
    if idx < 0 || idx >= Array.length a then
      Fmt.invalid_arg "Interp.Memory: %s[%d] out of bounds (len %d)" name idx
        (Array.length a)
    else a.(idx) <- v

  let names (t : t) = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

  let equal (a : t) (b : t) =
    names a = names b
    && List.for_all (fun n -> array a n = array b n) (names a)

  let pp ppf (t : t) =
    List.iter
      (fun n ->
        Fmt.pf ppf "%s = [%a]@." n
          Fmt.(array ~sep:(any "; ") int)
          (array t n))
      (names t)
end

type event =
  | Eload of { mem : Instr.mem_id; arr : string; idx : int; value : int }
  | Estore of { mem : Instr.mem_id; arr : string; idx : int; value : int }

type result = {
  ret : value option;
  trace : event list; (* program-order memory events *)
  steps : int; (* dynamic instruction count *)
  block_trace : int list; (* dynamic block path, entry first *)
}

exception Out_of_fuel
exception Channel_op_in_sequential_code of string

let run ?(fuel = 10_000_000) (f : Func.t) ~(args : (string * value) list)
    ~(mem : Memory.t) : result =
  let env : (int, value) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (name, vid) ->
      match List.assoc_opt name args with
      | Some v -> Hashtbl.replace env vid v
      | None -> Fmt.invalid_arg "Interp.run: missing argument %s" name)
    f.Func.params;
  let value_of = function
    | Cst c -> value_of_const c
    | Var v -> (
      match Hashtbl.find_opt env v with
      | Some x -> x
      | None -> Fmt.invalid_arg "Interp.run: read of undefined %%%d" v)
  in
  let int_of op = int_of_value (value_of op) in
  let bool_of op = bool_of_value (value_of op) in
  let trace = ref [] in
  let block_trace = ref [] in
  let steps = ref 0 in
  let tick () =
    incr steps;
    if !steps > fuel then raise Out_of_fuel
  in
  let exec_instr (i : Instr.t) =
    tick ();
    match i.Instr.kind with
    | Instr.Binop (op, a, b) ->
      Hashtbl.replace env i.Instr.id
        (Vint (Instr.eval_binop op (int_of a) (int_of b)))
    | Instr.Cmp (op, a, b) ->
      Hashtbl.replace env i.Instr.id
        (Vbool (Instr.eval_cmp op (int_of a) (int_of b)))
    | Instr.Select (c, a, b) ->
      Hashtbl.replace env i.Instr.id
        (if bool_of c then value_of a else value_of b)
    | Instr.Not a -> Hashtbl.replace env i.Instr.id (Vbool (not (bool_of a)))
    | Instr.Load { arr; idx; mem = m } ->
      let idx = int_of idx in
      let v = Memory.get mem arr idx in
      trace := Eload { mem = m; arr; idx; value = v } :: !trace;
      Hashtbl.replace env i.Instr.id (Vint v)
    | Instr.Store { arr; idx; value; mem = m } ->
      let idx = int_of idx in
      let v = int_of value in
      trace := Estore { mem = m; arr; idx; value = v } :: !trace;
      Memory.set mem arr idx v
    | Instr.Send_ld_addr _ | Instr.Send_st_addr _ | Instr.Consume_val _
    | Instr.Produce_val _ | Instr.Poison _ ->
      raise
        (Channel_op_in_sequential_code (Printer.instr_to_string i))
  in
  (* φs of a block are evaluated simultaneously on entry from [pred]. *)
  let exec_phis (b : Block.t) ~pred =
    let resolved =
      List.map
        (fun (p : Block.phi) ->
          match List.assoc_opt pred p.Block.incoming with
          | Some op -> (p.Block.pid, value_of op)
          | None ->
            Fmt.invalid_arg "Interp.run: phi %%%d in bb%d has no entry for bb%d"
              p.Block.pid b.Block.bid pred)
        b.Block.phis
    in
    List.iter (fun (pid, v) -> Hashtbl.replace env pid v) resolved
  in
  let rec exec_block bid ~pred =
    tick ();
    block_trace := bid :: !block_trace;
    let b = Func.block f bid in
    (match pred with Some p -> exec_phis b ~pred:p | None -> ());
    List.iter exec_instr b.Block.instrs;
    match b.Block.term with
    | Block.Br t -> exec_block t ~pred:(Some bid)
    | Block.Cond_br (c, t, fl) ->
      exec_block (if bool_of c then t else fl) ~pred:(Some bid)
    | Block.Switch (c, ts) ->
      let n = List.length ts in
      let k = int_of c in
      let k = if k < 0 then 0 else if k >= n then n - 1 else k in
      exec_block (List.nth ts k) ~pred:(Some bid)
    | Block.Ret v -> Option.map value_of v
  in
  let ret = exec_block f.Func.entry ~pred:None in
  { ret; trace = List.rev !trace; steps = !steps;
    block_trace = List.rev !block_trace }

(* Convenience: the store sub-trace, in program order. *)
let stores (r : result) =
  List.filter_map
    (function
      | Estore { mem; arr; idx; value } -> Some (mem, arr, idx, value)
      | Eload _ -> None)
    r.trace

let loads (r : result) =
  List.filter_map
    (function
      | Eload { mem; arr; idx; value } -> Some (mem, arr, idx, value)
      | Estore _ -> None)
    r.trace
