(** SSA def-use chains and backward slicing.

    The LoD analysis (paper §4) traces def-use paths from decoupled loads
    to address computations and branch conditions, looking through φ-nodes;
    per Definition 4.1, crossing a φ also traces the conditions that decide
    which incoming value is selected. *)

type def_site =
  | Param of string
  | Phi of int  (** block containing the φ *)
  | Instruction of int  (** block containing the instruction *)

type t

val vars_of_operands : Types.operand list -> int list

val compute : Func.t -> t

val def_site : t -> int -> def_site option

(** Instruction/φ ids using the value. *)
val users : t -> int -> int list

(** Blocks whose terminator uses the value. *)
val terminator_users : t -> int -> int list

val find_instr : t -> int -> Instr.t option
val find_phi : t -> int -> (Block.phi * int) option

(** Everything the value's computation transitively depends on, including
    (through φs) the branch conditions selecting incoming values. *)
val backward_slice : t -> int -> (int, unit) Hashtbl.t

val depends_on : t -> int -> sources:int list -> bool
