(* Human-readable IR printing. The output grammar is accepted back by
   Parser, and the round trip is property-tested. *)

open Types

let pp_phi ppf (p : Block.phi) =
  Fmt.pf ppf "%%%d = phi %a %a" p.Block.pid pp_ty p.Block.ty
    Fmt.(
      list ~sep:(any ", ")
        (fun ppf (pred, v) -> pf ppf "[bb%d: %a]" pred pp_operand v))
    p.Block.incoming

let pp_terminator ppf = function
  | Block.Br t -> Fmt.pf ppf "br bb%d" t
  | Block.Cond_br (c, t, f) ->
    Fmt.pf ppf "br %a, bb%d, bb%d" pp_operand c t f
  | Block.Switch (c, ts) ->
    Fmt.pf ppf "switch %a, %a" pp_operand c
      Fmt.(list ~sep:(any ", ") (fun ppf t -> pf ppf "bb%d" t))
      ts
  | Block.Ret None -> Fmt.string ppf "ret"
  | Block.Ret (Some v) -> Fmt.pf ppf "ret %a" pp_operand v

let pp_block ppf (b : Block.t) =
  Fmt.pf ppf "bb%d:@." b.Block.bid;
  List.iter (fun p -> Fmt.pf ppf "  %a@." pp_phi p) b.Block.phis;
  List.iter (fun i -> Fmt.pf ppf "  %a@." Instr.pp i) b.Block.instrs;
  Fmt.pf ppf "  %a@." pp_terminator b.Block.term

let pp_func ppf (f : Func.t) =
  Fmt.pf ppf "func %s(%a) {@."
    f.Func.name
    Fmt.(
      list ~sep:(any ", ") (fun ppf (n, id) -> pf ppf "%s: %%%d" n id))
    f.Func.params;
  List.iter (fun bid -> pp_block ppf (Func.block f bid)) f.Func.layout;
  Fmt.pf ppf "}@."

let func_to_string (f : Func.t) = Fmt.str "%a" pp_func f
let block_to_string (b : Block.t) = Fmt.str "%a" pp_block b
let instr_to_string (i : Instr.t) = Fmt.str "%a" Instr.pp i
