(* Control-flow simplification (paper §3.2 step 3: "removes empty blocks
   potentially created by DCE").

   Four rewrites, applied to a fixed point:
     1. remove blocks unreachable from the entry;
     2. fold conditional branches whose condition is constant, and
        normalise conditional branches with identical targets;
     3. bypass empty forwarding blocks (no φs, no instructions, [Br] only);
     4. merge a block into its unique successor when that successor has a
        unique predecessor and no φs. *)

let remove_unreachable (f : Func.t) : bool =
  let reachable = Order.reachable_from_entry f in
  let dead = List.filter (fun b -> not (Hashtbl.mem reachable b)) f.Func.layout in
  List.iter
    (fun bid ->
      (* Remove φ entries in reachable blocks that mention the dead block. *)
      List.iter
        (fun keep ->
          Block.remove_phi_pred (Func.block f keep) ~pred:bid)
        (List.filter (fun b -> Hashtbl.mem reachable b) f.Func.layout);
      Func.remove_block f bid)
    dead;
  dead <> []

let fold_constant_branches (f : Func.t) : bool =
  let changed = ref false in
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      match b.Block.term with
      | Block.Cond_br (Types.Cst (Types.Bool c), t, fl) ->
        let taken, skipped = if c then (t, fl) else (fl, t) in
        b.Block.term <- Block.Br taken;
        if skipped <> taken then
          Block.remove_phi_pred (Func.block f skipped) ~pred:bid;
        changed := true
      | Block.Cond_br (_, t, fl) when t = fl ->
        b.Block.term <- Block.Br t;
        changed := true
      | Block.Switch (Types.Cst (Types.Int k), ts) ->
        let n = List.length ts in
        let k = if k < 0 then 0 else if k >= n then n - 1 else k in
        let taken = List.nth ts k in
        b.Block.term <- Block.Br taken;
        List.iter
          (fun skipped ->
            if skipped <> taken then
              Block.remove_phi_pred (Func.block f skipped) ~pred:bid)
          (Block.dedup ts);
        changed := true
      | Block.Switch (_, ts)
        when (match Block.dedup ts with [ _ ] -> true | _ -> false) ->
        b.Block.term <- Block.Br (List.hd ts);
        changed := true
      | Block.Switch _ | Block.Cond_br _ | Block.Br _ | Block.Ret _ -> ())
    f.Func.layout;
  !changed

(* A block is an empty forwarder if it has no φs, no instructions and ends
   in an unconditional branch. Predecessors are redirected to its target,
   unless doing so would create a duplicate CFG edge into a block with φs
   (which would make the φ incoming list ambiguous). *)
let bypass_empty_blocks (f : Func.t) : bool =
  let changed = ref false in
  let preds_tbl = Func.predecessors f in
  (* Never bypass into a loop header: a unique latch per loop (canonical
     form, §3.2) must be preserved, and redirecting several predecessors of
     an empty latch onto the header would create multiple backedges. *)
  let loops = Loops.compute f in
  List.iter
    (fun bid ->
      if bid <> f.Func.entry then begin
        match Func.block_opt f bid with
        | None -> ()
        | Some b ->
          (match (b.Block.phis, b.Block.instrs, b.Block.term) with
          | [], [], Block.Br target
            when target <> bid && not (Loops.is_header loops target) ->
            (* the table is a snapshot: earlier bypasses in this sweep may
               have removed or redirected predecessors *)
            let preds =
              List.filter
                (fun p ->
                  Func.mem_block f p && List.mem bid (Func.successors f p))
                (try Hashtbl.find preds_tbl bid with Not_found -> [])
            in
            let target_b = Func.block f target in
            let target_preds =
              List.concat_map
                (fun p ->
                  if Func.mem_block f p then
                    List.filter (fun s -> s = target) (Func.successors f p)
                    |> List.map (fun _ -> p)
                  else [])
                f.Func.layout
            in
            ignore target_preds;
            let safe_for p =
              (* Redirecting p -> bid to p -> target must not duplicate an
                 existing p -> target edge when target has φs. *)
              target_b.Block.phis = []
              || not (List.mem target (Func.successors f p))
            in
            if preds <> [] && List.for_all safe_for preds then begin
              List.iter
                (fun p ->
                  Func.retarget_edge f ~src:p ~old_dst:bid ~new_dst:target)
                preds;
              (* φs of target: entries mentioning bid now come from each
                 pred. For a single pred this is a rename; multiple preds
                 each inherit the same incoming value. *)
              target_b.Block.phis <-
                List.map
                  (fun (p : Block.phi) ->
                    let value_from_bid =
                      List.assoc_opt bid p.Block.incoming
                    in
                    match value_from_bid with
                    | None -> p
                    | Some v ->
                      let without =
                        List.filter (fun (q, _) -> q <> bid) p.Block.incoming
                      in
                      let added =
                        List.filter_map
                          (fun q ->
                            if List.mem_assoc q without then None
                            else Some (q, v))
                          preds
                      in
                      { p with incoming = without @ added })
                  target_b.Block.phis;
              Func.remove_block f bid;
              changed := true
            end
          | _ -> ())
      end)
    f.Func.layout;
  !changed

let merge_straightline (f : Func.t) : bool =
  let changed = ref false in
  let try_merge bid =
    match Func.block_opt f bid with
    | None -> false
    | Some b ->
      (match b.Block.term with
      | Block.Br succ when succ <> bid && succ <> f.Func.entry ->
        let preds_tbl = Func.predecessors f in
        let succ_preds =
          try Hashtbl.find preds_tbl succ with Not_found -> []
        in
        let sb = Func.block f succ in
        if succ_preds = [ bid ] && sb.Block.phis = [] then begin
          b.Block.instrs <- b.Block.instrs @ sb.Block.instrs;
          b.Block.term <- sb.Block.term;
          (* successors of succ now see bid as predecessor *)
          List.iter
            (fun s ->
              Block.rename_phi_pred (Func.block f s) ~old_pred:succ
                ~new_pred:bid)
            (Block.successors sb);
          Func.remove_block f succ;
          true
        end
        else false
      | Block.Br _ | Block.Cond_br _ | Block.Switch _ | Block.Ret _ -> false)
  in
  let rec loop bids =
    match bids with
    | [] -> ()
    | bid :: rest ->
      if try_merge bid then begin
        changed := true;
        (* retry the same block: it may now chain into the next *)
        loop (bid :: List.filter (Func.mem_block f) rest)
      end
      else loop rest
  in
  loop f.Func.layout;
  !changed

let run (f : Func.t) : unit =
  let continue_ = ref true in
  while !continue_ do
    let c1 = fold_constant_branches f in
    let c2 = remove_unreachable f in
    let c3 = bypass_empty_blocks f in
    let c4 = merge_straightline f in
    continue_ := c1 || c2 || c3 || c4
  done
