(** φ → select conversion (paper §5.4's alternative to φ rewiring): a φ at
    a two-predecessor join whose immediate dominator's conditional branch
    separates the predecessors, and whose incoming values are available at
    the join, becomes a [select] on the branch condition. Returns the
    number of conversions. *)

val run : Func.t -> int
