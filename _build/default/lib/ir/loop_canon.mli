(** Loop canonicalization: loops with several backedges get a fresh
    combined latch (header φ entries re-routed through new latch φs),
    restoring the single-latch form the speculation passes assume (§3.2).
    Returns the number of latches added. *)

val canonicalize_header : Func.t -> int -> bool
val run : Func.t -> int
