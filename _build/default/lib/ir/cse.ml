(* Dominator-scoped common subexpression elimination.

   Pure instructions with identical (opcode, operands) compute the same
   value; a later occurrence dominated by an earlier one is replaced by it.
   The hoisting pass duplicates address chains per chain head, and LICM
   piles invariants into preheaders — CSE cleans both up (e.g. fw's
   [i*n] recomputed for [d[i*n+k]] and [d[i*n+j]]).

   Implementation: walk the dominator tree with a scoped hash of available
   expressions; matches are substituted and removed. Loads are NOT value-
   numbered (two loads of the same address may straddle a store). *)

open Types

(* A hashable key for a pure computation. *)
type key = string

let key_of (i : Instr.t) : key option =
  let op = function
    | Var v -> Fmt.str "v%d" v
    | Cst (Int n) -> Fmt.str "i%d" n
    | Cst (Bool b) -> Fmt.str "b%b" b
  in
  match i.Instr.kind with
  | Instr.Binop (o, a, b) ->
    (* exploit commutativity where it holds *)
    let a, b =
      match o with
      | Instr.Add | Instr.Mul | Instr.And | Instr.Or | Instr.Xor | Instr.Smin
      | Instr.Smax ->
        if compare a b <= 0 then (a, b) else (b, a)
      | _ -> (a, b)
    in
    Some (Fmt.str "%s(%s,%s)" (Instr.string_of_binop o) (op a) (op b))
  | Instr.Cmp (c, a, b) ->
    Some (Fmt.str "cmp%s(%s,%s)" (Instr.string_of_cmp c) (op a) (op b))
  | Instr.Select (c, a, b) ->
    Some (Fmt.str "sel(%s,%s,%s)" (op c) (op a) (op b))
  | Instr.Not a -> Some (Fmt.str "not(%s)" (op a))
  | _ -> None

let run (f : Func.t) : int =
  let dom = Dom.compute f in
  let children = Dom.children dom in
  let available : (key, int) Hashtbl.t = Hashtbl.create 64 in
  let replacements : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let eliminated = ref 0 in
  let subst op =
    match op with
    | Var v -> (
      match Hashtbl.find_opt replacements v with
      | Some w -> Var w
      | None -> op)
    | Cst _ -> op
  in
  let rec walk bid =
    match Func.block_opt f bid with
    | None -> ()
    | Some b ->
      (* φ incoming operands are rewritten later (they are uses at the end
         of predecessors; a pred's replacement always dominates them) *)
      let added = ref [] in
      b.Block.instrs <-
        List.filter
          (fun (i : Instr.t) ->
            let i' = Instr.map_operands subst i in
            (* map_operands returns a copy: write the rewritten operands
               back by replacing the list element below *)
            match key_of i' with
            | Some k -> (
              match Hashtbl.find_opt available k with
              | Some prior ->
                Hashtbl.replace replacements i.Instr.id prior;
                incr eliminated;
                false
              | None ->
                Hashtbl.replace available k i'.Instr.id;
                added := k :: !added;
                true)
            | None -> true)
          b.Block.instrs;
      b.Block.instrs <- List.map (Instr.map_operands subst) b.Block.instrs;
      b.Block.term <- Block.map_terminator_operands subst b;
      List.iter walk (try Hashtbl.find children bid with Not_found -> []);
      (* pop this block's scope *)
      List.iter (Hashtbl.remove available) !added
  in
  walk f.Func.entry;
  (* φ uses: rewrite everywhere (dominance of the replacement over the
     predecessor end is guaranteed because the replacement dominated the
     replaced definition) *)
  if Hashtbl.length replacements > 0 then
    List.iter
      (fun bid ->
        let b = Func.block f bid in
        b.Block.phis <-
          List.map
            (fun (p : Block.phi) ->
              { p with
                Block.incoming =
                  List.map (fun (pr, v) -> (pr, subst v)) p.Block.incoming })
            b.Block.phis)
      f.Func.layout;
  !eliminated
