(* Natural loop detection.

   The paper assumes canonical loops: a single header and a single backedge
   from the loop latch to the header (§3.2), and reducible control flow.
   Our builders produce exactly that shape; [check_canonical] enforces it
   so the speculation passes can assume it. *)

type loop = {
  header : int;
  latch : int;
  body : int list; (* all blocks of the loop, header first *)
  depth : int; (* 1 = outermost *)
  parent : int option; (* header of the enclosing loop *)
}

type t = {
  loops : loop list; (* outermost-first *)
  backedges : (int * int) list; (* (latch, header) pairs, all loops *)
  loop_of_header : (int, loop) Hashtbl.t;
}

(* Natural loop of backedge latch->header: header plus every block that can
   reach the latch without going through the header. *)
let natural_loop (f : Func.t) ~header ~latch =
  let preds_tbl = Func.predecessors f in
  let preds n = try Hashtbl.find preds_tbl n with Not_found -> [] in
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop header ();
  let rec add n =
    if not (Hashtbl.mem in_loop n) then begin
      Hashtbl.replace in_loop n ();
      List.iter add (preds n)
    end
  in
  add latch;
  let body =
    List.filter (fun b -> Hashtbl.mem in_loop b) f.Func.layout
  in
  header :: List.filter (fun b -> b <> header) body

let compute (f : Func.t) : t =
  let dom = Dom.compute f in
  let backedges =
    List.filter (fun (src, dst) -> Dom.dominates dom dst src) (Func.edges f)
  in
  (* Group backedges by header; canonical form has exactly one latch per
     header, but we aggregate defensively and let check_canonical complain. *)
  let headers =
    List.sort_uniq compare (List.map snd backedges)
  in
  let raw_loops =
    List.map
      (fun header ->
        let latches =
          List.filter_map
            (fun (src, dst) -> if dst = header then Some src else None)
            backedges
        in
        let latch = List.hd latches in
        let body =
          List.fold_left
            (fun acc l ->
              let nl = natural_loop f ~header ~latch:l in
              List.sort_uniq compare (acc @ nl))
            [] latches
        in
        let body = header :: List.filter (fun b -> b <> header) body in
        (header, latch, body))
      headers
  in
  (* Nesting: loop A encloses loop B iff A's body contains B's header and
     they differ. Depth = number of enclosing loops + 1. *)
  let encloses (_, _, body_a) (hb, _, _) = List.mem hb body_a in
  let loops =
    List.map
      (fun ((header, latch, body) as l) ->
        let enclosing =
          List.filter (fun l' -> l' <> l && encloses l' l) raw_loops
        in
        let parent =
          (* The innermost enclosing loop is the one with the smallest body
             among enclosing loops. *)
          match
            List.sort
              (fun (_, _, b1) (_, _, b2) ->
                compare (List.length b1) (List.length b2))
              enclosing
          with
          | [] -> None
          | (h, _, _) :: _ -> Some h
        in
        { header; latch; body; depth = List.length enclosing + 1; parent })
      raw_loops
  in
  let loops = List.sort (fun a b -> compare a.depth b.depth) loops in
  let loop_of_header = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace loop_of_header l.header l) loops;
  { loops; backedges; loop_of_header }

(* The innermost loop containing block [bid], if any. *)
let innermost (t : t) bid =
  let candidates = List.filter (fun l -> List.mem bid l.body) t.loops in
  match List.sort (fun a b -> compare b.depth a.depth) candidates with
  | [] -> None
  | l :: _ -> Some l

let loop_of_header (t : t) header = Hashtbl.find_opt t.loop_of_header header

let is_backedge (t : t) ~src ~dst = List.mem (src, dst) t.backedges

let is_header (t : t) bid = Hashtbl.mem t.loop_of_header bid

(* Canonical-form check: every loop has exactly one backedge (single latch).
   Returns an error message per offending header. *)
let check_canonical (t : t) : (unit, string) result =
  let bad =
    List.filter_map
      (fun l ->
        let latches =
          List.filter (fun (_, dst) -> dst = l.header) t.backedges
        in
        if List.length latches <> 1 then
          Some
            (Fmt.str "loop with header %d has %d backedges" l.header
               (List.length latches))
        else None)
      t.loops
  in
  match bad with
  | [] -> Ok ()
  | msgs -> Error (String.concat "; " msgs)

(* Reducibility check: with all backedges (w.r.t. dominance) removed, the
   remaining forward edges must form a DAG that still reaches every node
   reachable in the full CFG. Irreducible CFGs have "backedges" whose
   target does not dominate the source; removing dominance-backedges then
   leaves a cycle, which we detect. *)
let is_reducible (f : Func.t) : bool =
  let t = compute f in
  let skip ~src ~dst = is_backedge t ~src ~dst in
  (* DFS cycle detection over forward edges. *)
  let color = Hashtbl.create 32 in
  (* 0 = white, 1 = grey, 2 = black *)
  let exception Cycle in
  let rec visit n =
    match Hashtbl.find_opt color n with
    | Some 1 -> raise Cycle
    | Some 2 -> ()
    | _ ->
      Hashtbl.replace color n 1;
      List.iter
        (fun s -> if not (skip ~src:n ~dst:s) then visit s)
        (Func.successors f n);
      Hashtbl.replace color n 2
  in
  try
    visit f.Func.entry;
    true
  with Cycle -> false
