(** Node splitting for irreducible control flow (paper §3.2, after
    Peterson et al.): repeatedly duplicate the target of an irreducible
    retreating edge — SSA-aware (cloned ids, collapsed φs, iterated-
    dominance-frontier repair of twin definitions) — until the CFG is
    reducible. *)

exception Cannot_reduce of string

(** The witness edge (u, v): v is on the DFS stack but does not dominate u. *)
val find_irreducible_edge : Func.t -> (int * int) option

(** Duplicate [v]; the copy takes over the edge [u -> v]. Returns the new
    block id. *)
val split_target : Func.t -> u:int -> v:int -> int

(** Split until reducible; returns the number of duplicated blocks.
    @raise Cannot_reduce when [fuel] (default 64) splits do not suffice. *)
val run : ?fuel:int -> Func.t -> int
