(* Constant folding and algebraic simplification, with substitution-based
   copy propagation: an instruction that folds to a constant or to one of
   its own operands is deleted and its uses rewritten. Runs to a fixed
   point (a fold can expose another). *)

open Types

(* The folded form of an instruction, if any. *)
let fold_kind (k : Instr.kind) : operand option =
  match k with
  | Instr.Binop (op, Cst (Int a), Cst (Int b)) ->
    Some (Cst (Int (Instr.eval_binop op a b)))
  | Instr.Binop (op, x, Cst (Int 0)) -> (
    match op with
    | Instr.Add | Instr.Sub | Instr.Or | Instr.Xor | Instr.Shl | Instr.Ashr ->
      Some x
    | Instr.Mul | Instr.And -> Some (Cst (Int 0))
    | _ -> None)
  | Instr.Binop (op, Cst (Int 0), x) -> (
    match op with
    | Instr.Add | Instr.Or | Instr.Xor -> Some x
    | Instr.Mul | Instr.And -> Some (Cst (Int 0))
    | _ -> None)
  | Instr.Binop (Instr.Mul, x, Cst (Int 1)) -> Some x
  | Instr.Binop (Instr.Mul, Cst (Int 1), x) -> Some x
  | Instr.Binop (Instr.Sdiv, x, Cst (Int 1)) -> Some x
  | Instr.Binop (op, (Var a as x), Var b) when a = b -> (
    match op with
    | Instr.And | Instr.Or | Instr.Smin | Instr.Smax -> Some x
    | Instr.Sub | Instr.Xor -> Some (Cst (Int 0))
    | _ -> None)
  | Instr.Cmp (op, Cst (Int a), Cst (Int b)) ->
    Some (Cst (Bool (Instr.eval_cmp op a b)))
  | Instr.Cmp (op, Var a, Var b) when a = b -> (
    match op with
    | Instr.Eq | Instr.Sle | Instr.Sge -> Some (Cst (Bool true))
    | Instr.Ne | Instr.Slt | Instr.Sgt -> Some (Cst (Bool false)))
  | Instr.Select (Cst (Bool true), x, _) -> Some x
  | Instr.Select (Cst (Bool false), _, x) -> Some x
  | Instr.Select (_, x, y) when equal_operand x y -> Some x
  | Instr.Not (Cst (Bool b)) -> Some (Cst (Bool (not b)))
  | _ -> None

(* φs whose incoming values are all identical (or the φ itself) fold to
   that value. *)
let fold_phi (p : Block.phi) : operand option =
  let values =
    List.filter
      (fun v -> v <> Var p.Block.pid)
      (List.map snd p.Block.incoming)
  in
  match values with
  | [] -> None
  | v :: rest -> if List.for_all (equal_operand v) rest then Some v else None

let substitute (f : Func.t) ~vid ~(with_ : operand) =
  let subst op = if op = Var vid then with_ else op in
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      b.Block.instrs <- List.map (Instr.map_operands subst) b.Block.instrs;
      b.Block.term <- Block.map_terminator_operands subst b;
      b.Block.phis <-
        List.map
          (fun (p : Block.phi) ->
            { p with
              Block.incoming =
                List.map (fun (pr, v) -> (pr, subst v)) p.Block.incoming })
          b.Block.phis)
    f.Func.layout

(* One sweep: collect all folds first, then delete the folded definitions
   and apply the (transitively resolved) substitutions — interleaving
   deletion with substitution would clobber rewrites of instructions
   captured earlier in the traversal. Returns the number of folds. *)
let sweep (f : Func.t) : int =
  let replacements : (int, operand) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter
        (fun (i : Instr.t) ->
          if Instr.produces_value i then
            match fold_kind i.Instr.kind with
            | Some r -> Hashtbl.replace replacements i.Instr.id r
            | None -> ())
        b.Block.instrs;
      List.iter
        (fun (p : Block.phi) ->
          match fold_phi p with
          | Some r -> Hashtbl.replace replacements p.Block.pid r
          | None -> ())
        b.Block.phis)
    f.Func.layout;
  (* resolve replacement chains (%a -> %b -> 3) *)
  let rec resolve seen op =
    match op with
    | Var v when Hashtbl.mem replacements v && not (List.mem v seen) ->
      resolve (v :: seen) (Hashtbl.find replacements v)
    | _ -> op
  in
  let folded = Hashtbl.length replacements in
  if folded > 0 then begin
    List.iter
      (fun bid ->
        let b = Func.block f bid in
        b.Block.instrs <-
          List.filter
            (fun (i : Instr.t) -> not (Hashtbl.mem replacements i.Instr.id))
            b.Block.instrs;
        b.Block.phis <-
          List.filter
            (fun (p : Block.phi) -> not (Hashtbl.mem replacements p.Block.pid))
            b.Block.phis)
      f.Func.layout;
    Hashtbl.iter
      (fun vid r -> substitute f ~vid ~with_:(resolve [ vid ] r))
      replacements
  end;
  folded

let run (f : Func.t) : int =
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let n = sweep f in
    total := !total + n;
    continue_ := n > 0
  done;
  !total
