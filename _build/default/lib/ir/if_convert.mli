(** Partial if-conversion (paper §9's VLIW lineage): diamonds/triangles
    whose arms contain only pure instructions are flattened — arms hoisted
    into the branch block, join φs turned into selects, the branch removed.
    Arms larger than 8 instructions are left alone. Returns the number of
    flattened diamonds. *)

val pure_instr : Instr.t -> bool
val run : Func.t -> int
