(** Dead code elimination (paper §3.2 step 3): mark-and-sweep from
    side-effecting instructions and branch conditions. Returns the number
    of removed instructions/φs. *)

val run : Func.t -> int
val run_to_fixpoint : Func.t -> int
