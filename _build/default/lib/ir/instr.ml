(* IR instructions.

   Every instruction defines an SSA value (unit-producing instructions such
   as [Store] or the DAE channel sends still carry an id so that def-use
   bookkeeping stays uniform). Memory operations additionally carry a stable
   [mem_id] that survives the decoupling transformation: the store [s] of
   the original program becomes [Send_st_addr] with the same id in the AGU
   slice and [Produce_val]/[Poison] with the same id in the CU slice, which
   is how the simulator ties request, value and kill streams together. *)

open Types

type mem_id = int

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Srem
  | And
  | Or
  | Xor
  | Shl
  | Ashr
  | Smin
  | Smax

type cmp = Eq | Ne | Slt | Sle | Sgt | Sge

type kind =
  | Binop of binop * operand * operand
  | Cmp of cmp * operand * operand
  | Select of operand * operand * operand (* cond, if-true, if-false *)
  | Not of operand
  | Load of { arr : string; idx : operand; mem : mem_id }
  | Store of { arr : string; idx : operand; value : operand; mem : mem_id }
  (* DAE channel operations, introduced by Dae_core.Decouple (paper §3.2).
     AGU side: *)
  | Send_ld_addr of { arr : string; idx : operand; mem : mem_id }
  | Send_st_addr of { arr : string; idx : operand; mem : mem_id }
  (* CU (and, for loads the AGU slice itself needs, AGU) side: *)
  | Consume_val of { arr : string; mem : mem_id }
  | Produce_val of { arr : string; value : operand; mem : mem_id }
  | Poison of { arr : string; mem : mem_id }

type t = { id : int; kind : kind }

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Sdiv -> if b = 0 then 0 else a / b
  | Srem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 31)
  | Ashr -> a asr (b land 31)
  | Smin -> min a b
  | Smax -> max a b

let eval_cmp op a b =
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Slt -> a < b
  | Sle -> a <= b
  | Sgt -> a > b
  | Sge -> a >= b

let string_of_binop = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Ashr -> "ashr"
  | Smin -> "smin"
  | Smax -> "smax"

let string_of_cmp = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"

(* Operands read by an instruction, in syntactic order. *)
let operands (i : t) : operand list =
  match i.kind with
  | Binop (_, a, b) | Cmp (_, a, b) -> [ a; b ]
  | Select (c, a, b) -> [ c; a; b ]
  | Not a -> [ a ]
  | Load { idx; _ } -> [ idx ]
  | Store { idx; value; _ } -> [ idx; value ]
  | Send_ld_addr { idx; _ } | Send_st_addr { idx; _ } -> [ idx ]
  | Consume_val _ -> []
  | Produce_val { value; _ } -> [ value ]
  | Poison _ -> []

(* Rewrite every operand of an instruction. *)
let map_operands f (i : t) : t =
  let kind =
    match i.kind with
    | Binop (op, a, b) -> Binop (op, f a, f b)
    | Cmp (op, a, b) -> Cmp (op, f a, f b)
    | Select (c, a, b) -> Select (f c, f a, f b)
    | Not a -> Not (f a)
    | Load l -> Load { l with idx = f l.idx }
    | Store s -> Store { s with idx = f s.idx; value = f s.value }
    | Send_ld_addr l -> Send_ld_addr { l with idx = f l.idx }
    | Send_st_addr s -> Send_st_addr { s with idx = f s.idx }
    | Consume_val _ as k -> k
    | Produce_val p -> Produce_val { p with value = f p.value }
    | Poison _ as k -> k
  in
  { i with kind }

(* Does the instruction produce a value that other instructions may use?
   [Load] and [Consume_val] produce the loaded value; everything effectful
   below is executed only for its side channel. *)
let produces_value (i : t) =
  match i.kind with
  | Binop _ | Cmp _ | Select _ | Not _ | Load _ | Consume_val _ -> true
  | Store _ | Send_ld_addr _ | Send_st_addr _ | Produce_val _ | Poison _ ->
    false

(* Instructions that must never be removed by DCE: they communicate with
   memory or another unit. *)
let has_side_effect (i : t) =
  match i.kind with
  | Store _ | Send_ld_addr _ | Send_st_addr _ | Consume_val _ | Produce_val _
  | Poison _ ->
    true
  | Load _ ->
    (* A dead load is removable in this IR: on-chip SRAM loads cannot
       fault, so a load whose value is unused has no observable effect. *)
    false
  | Binop _ | Cmp _ | Select _ | Not _ -> false

(* The memory id of a memory / channel operation, if any. *)
let mem_id (i : t) =
  match i.kind with
  | Load { mem; _ }
  | Store { mem; _ }
  | Send_ld_addr { mem; _ }
  | Send_st_addr { mem; _ }
  | Consume_val { mem; _ }
  | Produce_val { mem; _ }
  | Poison { mem; _ } ->
    Some mem
  | Binop _ | Cmp _ | Select _ | Not _ -> None

let array_name (i : t) =
  match i.kind with
  | Load { arr; _ }
  | Store { arr; _ }
  | Send_ld_addr { arr; _ }
  | Send_st_addr { arr; _ }
  | Consume_val { arr; _ }
  | Produce_val { arr; _ }
  | Poison { arr; _ } ->
    Some arr
  | Binop _ | Cmp _ | Select _ | Not _ -> None

(* Is this a memory *request* in the AGU sense (paper Algorithm 1 hoists
   these)? *)
let is_request (i : t) =
  match i.kind with
  | Send_ld_addr _ | Send_st_addr _ -> true
  | _ -> false

let pp ppf (i : t) =
  let p fmt = Fmt.pf ppf fmt in
  match i.kind with
  | Binop (op, a, b) ->
    p "%%%d = %s %a, %a" i.id (string_of_binop op) pp_operand a pp_operand b
  | Cmp (op, a, b) ->
    p "%%%d = cmp %s %a, %a" i.id (string_of_cmp op) pp_operand a pp_operand b
  | Select (c, a, b) ->
    p "%%%d = select %a, %a, %a" i.id pp_operand c pp_operand a pp_operand b
  | Not a -> p "%%%d = not %a" i.id pp_operand a
  | Load { arr; idx; mem } ->
    p "%%%d = load %s[%a] !mem%d" i.id arr pp_operand idx mem
  | Store { arr; idx; value; mem } ->
    p "store %s[%a], %a !mem%d" arr pp_operand idx pp_operand value mem
  | Send_ld_addr { arr; idx; mem } ->
    p "send_ld_addr %s[%a] !mem%d" arr pp_operand idx mem
  | Send_st_addr { arr; idx; mem } ->
    p "send_st_addr %s[%a] !mem%d" arr pp_operand idx mem
  | Consume_val { arr; mem } -> p "%%%d = consume_val %s !mem%d" i.id arr mem
  | Produce_val { arr; value; mem } ->
    p "produce_val %s, %a !mem%d" arr pp_operand value mem
  | Poison { arr; mem } -> p "poison %s !mem%d" arr mem
