(** Structured IR construction.

    The builder guarantees the canonical loop shape the speculation passes
    assume (paper §3.2): a single header, a single latch, one backedge,
    reducible control flow. Kernels and the randomized program generator
    build all their functions through it. *)

type t

val create : name:string -> params:string list -> t

(** The function under construction (also available while building). *)
val func : t -> Func.t

(** Finish and return the function. *)
val seal : t -> Func.t

(** Current insertion block. *)
val cur : t -> int

val set_cur : t -> int -> unit
val cur_block : t -> Block.t

(** Operand for a named parameter. *)
val param : t -> string -> Types.operand

(** {1 Instructions} — each appends to the current block and returns the
    defined operand. *)

val binop : t -> Instr.binop -> Types.operand -> Types.operand -> Types.operand
val add : t -> Types.operand -> Types.operand -> Types.operand
val sub : t -> Types.operand -> Types.operand -> Types.operand
val mul : t -> Types.operand -> Types.operand -> Types.operand
val cmp : t -> Instr.cmp -> Types.operand -> Types.operand -> Types.operand
val select :
  t -> Types.operand -> Types.operand -> Types.operand -> Types.operand
val not_ : t -> Types.operand -> Types.operand
val load : t -> string -> Types.operand -> Types.operand
val store : t -> string -> idx:Types.operand -> value:Types.operand -> unit

val int : int -> Types.operand
val bool : bool -> Types.operand

(** {1 Blocks and terminators} *)

val new_block : t -> int
val br : t -> int -> unit
val cond_br : t -> Types.operand -> int -> int -> unit
val switch : t -> Types.operand -> int list -> unit
val ret : t -> Types.operand option -> unit

(** Add a φ to the current block; incoming must match its final
    predecessors. *)
val phi : t -> Types.ty -> (int * Types.operand) list -> Types.operand

(** {1 Structured control flow} *)

(** [if_values b c ~tys ~then_ ~else_]: both arms return values to merge;
    the builder is left in the join block, and the merged φs are returned. *)
val if_values :
  t ->
  Types.operand ->
  tys:Types.ty list ->
  then_:(t -> Types.operand list) ->
  else_:(t -> Types.operand list) ->
  Types.operand list

val if_ :
  t -> Types.operand -> then_:(t -> unit) -> ?else_:(t -> unit) -> unit -> unit

(** Canonical counted loop [for i = 0; i < n; i++] with loop-carried
    scalars: [body] receives the induction variable and the carried values
    and returns their next-iteration values. The builder is left in the
    exit block; the carried φs are returned for use after the loop. *)
val counted_loop :
  t ->
  n:Types.operand ->
  ?carried:(Types.ty * Types.operand) list ->
  (t -> i:Types.operand -> carried:Types.operand list -> Types.operand list) ->
  Types.operand list
