lib/ir/builder.mli: Block Func Instr Types
