lib/ir/licm.mli: Func Loops
