lib/ir/func.mli: Block Hashtbl Instr
