lib/ir/printer.ml: Block Fmt Func Instr List Types
