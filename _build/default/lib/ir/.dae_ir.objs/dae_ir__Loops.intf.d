lib/ir/loops.mli: Func Hashtbl
