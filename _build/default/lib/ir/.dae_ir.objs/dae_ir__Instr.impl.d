lib/ir/instr.ml: Fmt Types
