lib/ir/block.mli: Instr Types
