lib/ir/phi_to_select.ml: Block Dom Func Instr List Types
