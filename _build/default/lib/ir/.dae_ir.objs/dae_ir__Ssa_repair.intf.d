lib/ir/ssa_repair.mli: Dom Func Hashtbl Types
