lib/ir/interp.mli: Format Func Instr Types
