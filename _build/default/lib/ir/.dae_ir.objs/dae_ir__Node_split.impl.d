lib/ir/node_split.ml: Block Dom Fmt Func Hashtbl Instr List Loops Ssa_repair Types
