lib/ir/parser.ml: Block Fmt Func Hashtbl Instr List String Types
