lib/ir/builder.ml: Block Func Instr List Types
