lib/ir/licm.ml: Block Dom Func Hashtbl Instr List Loops Types
