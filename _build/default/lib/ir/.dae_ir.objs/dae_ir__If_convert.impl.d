lib/ir/if_convert.ml: Block Func Instr List Types
