lib/ir/if_convert.mli: Func Instr
