lib/ir/control_dep.ml: Dom Func Hashtbl Lazy List
