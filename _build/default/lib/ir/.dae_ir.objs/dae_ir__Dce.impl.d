lib/ir/dce.ml: Block Defuse Func Hashtbl Instr List Queue Types
