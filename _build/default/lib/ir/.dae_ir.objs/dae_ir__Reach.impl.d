lib/ir/reach.ml: Func Hashtbl List Loops
