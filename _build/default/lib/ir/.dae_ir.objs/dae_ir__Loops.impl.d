lib/ir/loops.ml: Dom Fmt Func Hashtbl List String
