lib/ir/simplify.mli: Func
