lib/ir/dot.mli: Format Func
