lib/ir/phi_to_select.mli: Func
