lib/ir/dom.ml: Block Func Hashtbl List Order
