lib/ir/cse.mli: Func
