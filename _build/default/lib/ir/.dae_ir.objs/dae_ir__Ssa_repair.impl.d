lib/ir/ssa_repair.ml: Block Dom Func Hashtbl Instr List Queue Types
