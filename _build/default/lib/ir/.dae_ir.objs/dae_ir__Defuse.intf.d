lib/ir/defuse.mli: Block Func Hashtbl Instr Types
