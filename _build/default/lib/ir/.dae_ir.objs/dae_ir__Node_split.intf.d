lib/ir/node_split.mli: Func
