lib/ir/defuse.ml: Block Control_dep Func Hashtbl Instr Lazy List Types
