lib/ir/dot.ml: Block Buffer Fmt Func Instr List Loops Printer String
