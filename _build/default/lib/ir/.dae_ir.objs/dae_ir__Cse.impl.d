lib/ir/cse.ml: Block Dom Fmt Func Hashtbl Instr List Types
