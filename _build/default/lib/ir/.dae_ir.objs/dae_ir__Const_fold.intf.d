lib/ir/const_fold.mli: Block Func Instr Types
