lib/ir/const_fold.ml: Block Func Hashtbl Instr List Types
