lib/ir/simplify.ml: Block Func Hashtbl List Loops Order Types
