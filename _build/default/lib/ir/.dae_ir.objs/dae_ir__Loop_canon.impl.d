lib/ir/loop_canon.ml: Block Func List Loops Types
