lib/ir/reach.mli: Func
