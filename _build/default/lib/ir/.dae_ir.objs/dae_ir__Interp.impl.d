lib/ir/interp.ml: Array Block Fmt Func Hashtbl Instr List Option Printer Types
