lib/ir/instr.mli: Format Types
