lib/ir/printer.mli: Block Format Func Instr
