lib/ir/order.ml: Func Hashtbl List
