lib/ir/dom.mli: Func Hashtbl
