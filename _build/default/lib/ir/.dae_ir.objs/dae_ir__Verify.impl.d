lib/ir/verify.ml: Block Dom Fmt Func Hashtbl Instr List Order Printer String Types
