lib/ir/dce.mli: Func
