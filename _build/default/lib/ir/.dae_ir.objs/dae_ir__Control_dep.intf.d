lib/ir/control_dep.mli: Func
