lib/ir/loop_canon.mli: Func
