lib/ir/order.mli: Func Hashtbl
