(** Control-flow simplification (paper §3.2 step 3): remove unreachable
    blocks, fold constant/degenerate branches, bypass empty forwarding
    blocks (without ever destroying a loop's unique latch) and merge
    straight-line chains, to a fixed point. *)

val remove_unreachable : Func.t -> bool
val fold_constant_branches : Func.t -> bool
val bypass_empty_blocks : Func.t -> bool
val merge_straightline : Func.t -> bool
val run : Func.t -> unit
