(* Control dependence (Ferrante–Ottenstein–Warren, computed from the
   postdominator tree as in the paper's §3.2 reference to Ottenstein et
   al.).

   Block B is control-dependent on block A iff A has successors S1, S2 such
   that B postdominates S1 but B does not strictly postdominate A — i.e.
   A's branch decides whether B executes. For every CFG edge (A, S) where S
   is not A's immediate postdominator, every block from S up the
   postdominator tree to (excluding) ipostdom(A) is control-dependent
   on A. *)


type t = {
  direct : (int, int list) Hashtbl.t; (* block -> blocks it is directly cd on *)
  transitive : (int, int list) Hashtbl.t Lazy.t;
}

let add tbl b a =
  let cur = try Hashtbl.find tbl b with Not_found -> [] in
  if not (List.mem a cur) then Hashtbl.replace tbl b (cur @ [ a ])

let compute (f : Func.t) : t =
  let pdom = Dom.compute_post f in
  let direct = Hashtbl.create 16 in
  List.iter
    (fun (a, s) ->
      let stop = Dom.idom pdom a in
      (* Walk the postdominator tree from s upwards until ipostdom(a). *)
      let rec walk n =
        let continue_ =
          match stop with Some st -> n <> st | None -> true
        in
        if continue_ && n <> Dom.virtual_exit then begin
          add direct n a;
          match Dom.idom pdom n with
          | Some p when p <> n -> walk p
          | Some _ | None -> ()
        end
      in
      walk s)
    (Func.edges f);
  let transitive =
    lazy
      (let tr = Hashtbl.create 16 in
       List.iter
         (fun b ->
           let seen = Hashtbl.create 8 in
           let rec go n =
             List.iter
               (fun a ->
                 if not (Hashtbl.mem seen a) then begin
                   Hashtbl.replace seen a ();
                   go a
                 end)
               (try Hashtbl.find direct n with Not_found -> [])
           in
           go b;
           Hashtbl.replace tr b
             (Hashtbl.fold (fun k () acc -> k :: acc) seen []
             |> List.sort compare))
         f.Func.layout;
       tr)
  in
  { direct; transitive }

(* Blocks whose branch [b] is directly control-dependent on. *)
let sources (t : t) b = try Hashtbl.find t.direct b with Not_found -> []

(* Transitive control dependencies of [b] (Definition 4.2's source "need
   not be the immediate control dependency"). *)
let transitive_sources (t : t) b =
  try Hashtbl.find (Lazy.force t.transitive) b with Not_found -> []

let depends (t : t) ~block ~on = List.mem on (transitive_sources t block)
