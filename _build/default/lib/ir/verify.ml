(* IR well-formedness checker.

   Run after every transformation in tests: SSA uniqueness, dominance of
   uses by definitions, φ/CFG consistency, branch target existence.
   Transformation bugs in CFG surgery (edge splitting, steering φs) show up
   here long before they corrupt simulation results. *)

type error = { where : string; what : string }

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

let check (f : Func.t) : (unit, error list) result =
  let errors = ref [] in
  let err where fmt = Fmt.kstr (fun what -> errors := { where; what } :: !errors) fmt in
  try
  (* 1. entry exists and has no predecessors through φs *)
  if not (Func.mem_block f f.Func.entry) then
    err "entry" "entry block %d missing" f.Func.entry;
  (* 2. layout matches the block table *)
  List.iter
    (fun bid ->
      if not (Func.mem_block f bid) then
        err "layout" "layout mentions missing block %d" bid)
    f.Func.layout;
  Hashtbl.iter
    (fun bid _ ->
      if not (List.mem bid f.Func.layout) then
        err "layout" "block %d not in layout" bid)
    f.Func.blocks;
  (* 3. branch targets exist — structural errors below here would make the
     dominance-based checks crash, so bail out early on any *)
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter
        (fun t ->
          if not (Func.mem_block f t) then
            err (Fmt.str "bb%d" bid) "branch to missing block %d" t)
        (Block.successor_edges b))
    f.Func.layout;
  if !errors <> [] then raise Exit;
  (* 4. unique SSA definitions *)
  let defs = Hashtbl.create 64 in
  let define where id =
    if Hashtbl.mem defs id then
      err where "value %%%d defined more than once" id
    else Hashtbl.replace defs id where
  in
  List.iter (fun (n, id) -> define (Fmt.str "param %s" n) id) f.Func.params;
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter
        (fun (p : Block.phi) -> define (Fmt.str "bb%d(phi)" bid) p.Block.pid)
        b.Block.phis;
      List.iter
        (fun (i : Instr.t) ->
          if Instr.produces_value i then
            define (Fmt.str "bb%d" bid) i.Instr.id)
        b.Block.instrs)
    f.Func.layout;
  (* 5. φ incoming lists match CFG predecessors exactly *)
  let preds_tbl = Func.predecessors f in
  let reachable = Order.reachable_from_entry f in
  List.iter
    (fun bid ->
      if Hashtbl.mem reachable bid then begin
        let b = Func.block f bid in
        let preds =
          List.sort_uniq compare
            (List.filter
               (fun p -> Hashtbl.mem reachable p)
               (try Hashtbl.find preds_tbl bid with Not_found -> []))
        in
        List.iter
          (fun (p : Block.phi) ->
            let inc = List.sort_uniq compare (List.map fst p.Block.incoming) in
            if inc <> preds then
              err (Fmt.str "bb%d" bid)
                "phi %%%d incoming blocks [%s] do not match predecessors [%s]"
                p.Block.pid
                (String.concat "," (List.map string_of_int inc))
                (String.concat "," (List.map string_of_int preds)))
          b.Block.phis
      end)
    f.Func.layout;
  (* 6. every used variable is defined, and the definition dominates the
     use (for φ uses: dominates the end of the incoming block). *)
  let dom = Dom.compute f in
  let check_var ~where ~use_bid ?phi_incoming_from v =
    match Hashtbl.find_opt defs v with
    | None -> err where "use of undefined value %%%d" v
    | Some _ ->
      (* Find the defining block. *)
      let def_bid =
        if List.exists (fun (_, id) -> id = v) f.Func.params then
          Some f.Func.entry
        else
          List.find_map
            (fun bid ->
              let b = Func.block f bid in
              if
                List.exists (fun (p : Block.phi) -> p.Block.pid = v) b.Block.phis
                || List.exists
                     (fun (i : Instr.t) ->
                       Instr.produces_value i && i.Instr.id = v)
                     b.Block.instrs
              then Some bid
              else None)
            f.Func.layout
      in
      (match def_bid, phi_incoming_from with
      | Some db, Some from_bid ->
        if Hashtbl.mem reachable from_bid && not (Dom.dominates dom db from_bid)
        then
          err where
            "phi use of %%%d: def in bb%d does not dominate incoming bb%d" v db
            from_bid
      | Some db, None ->
        if
          Hashtbl.mem reachable use_bid && db <> use_bid
          && not (Dom.dominates dom db use_bid)
        then
          err where "use of %%%d: def in bb%d does not dominate use in bb%d" v
            db use_bid
      | None, _ -> ())
  in
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter
        (fun (p : Block.phi) ->
          List.iter
            (fun (pred, op) ->
              match op with
              | Types.Var v ->
                check_var
                  ~where:(Fmt.str "bb%d phi %%%d" bid p.Block.pid)
                  ~use_bid:bid ~phi_incoming_from:pred v
              | Types.Cst _ -> ())
            p.Block.incoming)
        b.Block.phis;
      List.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun op ->
              match op with
              | Types.Var v ->
                check_var ~where:(Fmt.str "bb%d %%%d" bid i.Instr.id)
                  ~use_bid:bid ?phi_incoming_from:None v
              | Types.Cst _ -> ())
            (Instr.operands i))
        b.Block.instrs;
      List.iter
        (fun op ->
          match op with
          | Types.Var v ->
            check_var ~where:(Fmt.str "bb%d term" bid) ~use_bid:bid
              ?phi_incoming_from:None v
          | Types.Cst _ -> ())
        (Block.terminator_operands b))
    f.Func.layout;
  match List.rev !errors with [] -> Ok () | es -> Error es
  with Exit -> Error (List.rev !errors)

(* Raise on malformed IR; used by tests and at pass boundaries. *)
let check_exn (f : Func.t) =
  match check f with
  | Ok () -> ()
  | Error es ->
    Fmt.invalid_arg "IR verification failed for %s:@.%a@.%a" f.Func.name
      Fmt.(list ~sep:(any "@.") pp_error)
      es Printer.pp_func f
