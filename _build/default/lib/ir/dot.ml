(* Graphviz (DOT) export of the CFG, for inspecting transformation output
   (`daec compile --backend dot`, or programmatically from the examples).

   Blocks become record-shaped nodes listing φs and instructions; edge
   styles distinguish loop backedges (dashed) from forward edges; poison
   and channel instructions are visually tagged so the speculation
   machinery stands out in the CU. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '{' | '}' | '<' | '>' | '|' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\l"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let instr_line (i : Instr.t) =
  let text = Printer.instr_to_string i in
  match i.Instr.kind with
  | Instr.Poison _ -> "☠ " ^ text
  | Instr.Send_ld_addr _ | Instr.Send_st_addr _ -> "→ " ^ text
  | Instr.Consume_val _ -> "← " ^ text
  | Instr.Produce_val _ -> "⇒ " ^ text
  | _ -> text

let block_label (b : Block.t) =
  let lines =
    (Fmt.str "bb%d:" b.Block.bid
    :: List.map (fun p -> Fmt.str "%a" Printer.pp_phi p) b.Block.phis)
    @ List.map instr_line b.Block.instrs
    @ [ Fmt.str "%a" Printer.pp_terminator b.Block.term ]
  in
  escape (String.concat "\n" lines) ^ "\\l"

let pp ppf (f : Func.t) =
  let loops = Loops.compute f in
  Fmt.pf ppf "digraph %s {@." (String.map (fun c -> if c = '.' then '_' else c) f.Func.name);
  Fmt.pf ppf "  node [shape=box, fontname=\"monospace\", fontsize=9];@.";
  Fmt.pf ppf "  label=\"%s\";@." f.Func.name;
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      let style =
        if bid = f.Func.entry then ", style=bold"
        else if Loops.is_header loops bid then ", style=filled, fillcolor=\"#eef5ff\""
        else if
          List.exists
            (fun (i : Instr.t) ->
              match i.Instr.kind with Instr.Poison _ -> true | _ -> false)
            b.Block.instrs
        then ", style=filled, fillcolor=\"#ffecec\""
        else ""
      in
      Fmt.pf ppf "  bb%d [label=\"%s\"%s];@." bid (block_label b) style)
    f.Func.layout;
  List.iter
    (fun (src, dst) ->
      let attrs =
        if Loops.is_backedge loops ~src ~dst then
          " [style=dashed, constraint=false]"
        else ""
      in
      Fmt.pf ppf "  bb%d -> bb%d%s;@." src dst attrs)
    (Func.edges f);
  Fmt.pf ppf "}@."

let to_string (f : Func.t) = Fmt.str "%a" pp f
