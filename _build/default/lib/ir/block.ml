(* Basic blocks: a φ-node section, a straight-line instruction body and a
   single terminator. Blocks are mutable because the speculation
   transformation performs heavy CFG surgery (hoisting, edge splitting,
   steering-φ insertion). *)

open Types

type phi = {
  pid : int; (* SSA value id defined by the φ *)
  ty : ty;
  incoming : (int * operand) list; (* predecessor block id, value *)
}

type terminator =
  | Br of int
  | Cond_br of operand * int * int (* cond, if-true target, if-false target *)
  | Switch of operand * int list (* multi-way: i32 selector indexes targets *)
  | Ret of operand option

type t = {
  bid : int;
  mutable phis : phi list;
  mutable instrs : Instr.t list;
  mutable term : terminator;
}

let create ?(phis = []) ?(instrs = []) ~term bid = { bid; phis; instrs; term }

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] xs

let successors (b : t) =
  match b.term with
  | Br t -> [ t ]
  | Cond_br (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Switch (_, ts) -> dedup ts
  | Ret _ -> []

(* Successors with duplicates preserved: a conditional branch where both
   targets coincide still has two CFG edges for φ purposes; we normalise
   such branches away in Simplify instead, so this returns the raw edges. *)
let successor_edges (b : t) =
  match b.term with
  | Br t -> [ t ]
  | Cond_br (_, t, f) -> [ t; f ]
  | Switch (_, ts) -> ts
  | Ret _ -> []

let terminator_operands (b : t) =
  match b.term with
  | Br _ | Ret None -> []
  | Cond_br (c, _, _) -> [ c ]
  | Switch (c, _) -> [ c ]
  | Ret (Some v) -> [ v ]

let map_terminator_operands f (b : t) =
  match b.term with
  | Br _ as t -> t
  | Cond_br (c, x, y) -> Cond_br (f c, x, y)
  | Switch (c, ts) -> Switch (f c, ts)
  | Ret None as t -> t
  | Ret (Some v) -> Ret (Some (f v))

(* Redirect every branch from this block that targets [old_target] to
   [new_target]. φ-nodes of the targets are NOT adjusted here; callers use
   Func.retarget_edge which also patches φ incoming lists. *)
let replace_successor (b : t) ~old_target ~new_target =
  b.term <-
    (match b.term with
    | Br t -> Br (if t = old_target then new_target else t)
    | Cond_br (c, t, f) ->
      let t = if t = old_target then new_target else t in
      let f = if f = old_target then new_target else f in
      Cond_br (c, t, f)
    | Switch (c, ts) ->
      Switch (c, List.map (fun t -> if t = old_target then new_target else t) ts)
    | Ret _ as t -> t)

let append_instr (b : t) (i : Instr.t) = b.instrs <- b.instrs @ [ i ]
let prepend_instr (b : t) (i : Instr.t) = b.instrs <- i :: b.instrs

let remove_instr (b : t) ~id =
  b.instrs <- List.filter (fun (i : Instr.t) -> i.Instr.id <> id) b.instrs

let add_phi (b : t) (p : phi) = b.phis <- b.phis @ [ p ]

(* Rename the predecessor block mentioned in φ incoming edges, used when an
   edge is split by the insertion of a poison block. *)
let rename_phi_pred (b : t) ~old_pred ~new_pred =
  b.phis <-
    List.map
      (fun (p : phi) ->
        {
          p with
          incoming =
            List.map
              (fun (pred, v) -> ((if pred = old_pred then new_pred else pred), v))
              p.incoming;
        })
      b.phis

let remove_phi_pred (b : t) ~pred =
  b.phis <-
    List.map
      (fun (p : phi) ->
        { p with incoming = List.filter (fun (q, _) -> q <> pred) p.incoming })
      b.phis
