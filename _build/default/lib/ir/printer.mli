(** Human-readable IR printing. The grammar is accepted back by {!Parser};
    the round trip is property-tested. *)

val pp_phi : Format.formatter -> Block.phi -> unit
val pp_terminator : Format.formatter -> Block.terminator -> unit
val pp_block : Format.formatter -> Block.t -> unit
val pp_func : Format.formatter -> Func.t -> unit

val func_to_string : Func.t -> string
val block_to_string : Block.t -> string
val instr_to_string : Instr.t -> string
