(* Structured IR construction.

   Kernels (and the randomized program generator used in property tests)
   build functions through this API, which guarantees the canonical loop
   shape the speculation passes assume: one header, one latch, one
   backedge, reducible control flow. *)

open Types

type t = { func : Func.t; mutable cur : int }

let create ~name ~params =
  let func = Func.create ~name ~params in
  { func; cur = func.Func.entry }

let func (b : t) = b.func
let cur (b : t) = b.cur
let seal (b : t) = b.func

let set_cur (b : t) bid = b.cur <- bid
let cur_block (b : t) = Func.block b.func b.cur
let param (b : t) name = Var (Func.param_vid b.func name)

let emit (b : t) kind =
  let id = Func.fresh_vid b.func in
  Block.append_instr (cur_block b) { Instr.id; kind };
  Var id

let binop (b : t) op x y = emit b (Instr.Binop (op, x, y))
let add b x y = binop b Instr.Add x y
let sub b x y = binop b Instr.Sub x y
let mul b x y = binop b Instr.Mul x y
let cmp (b : t) op x y = emit b (Instr.Cmp (op, x, y))
let select (b : t) c x y = emit b (Instr.Select (c, x, y))
let not_ (b : t) x = emit b (Instr.Not x)

let load (b : t) arr idx =
  let mem = Func.fresh_mem b.func in
  emit b (Instr.Load { arr; idx; mem })

let store (b : t) arr ~idx ~value =
  let mem = Func.fresh_mem b.func in
  ignore (emit b (Instr.Store { arr; idx; value; mem }))

let int n = Cst (Int n)
let bool v = Cst (Bool v)

(* --- blocks and terminators --------------------------------------------- *)

let new_block (b : t) =
  (Func.add_block ~after:b.cur b.func ~term:(Block.Ret None)).Block.bid

let br (b : t) target = (cur_block b).Block.term <- Block.Br target

let cond_br (b : t) c t f = (cur_block b).Block.term <- Block.Cond_br (c, t, f)

let switch (b : t) c targets =
  (cur_block b).Block.term <- Block.Switch (c, targets)

let ret (b : t) v = (cur_block b).Block.term <- Block.Ret v

(* Insert a φ into the *current* block. Incoming list must cover exactly the
   block's predecessors once construction is complete. *)
let phi (b : t) ty incoming =
  let pid = Func.fresh_vid b.func in
  Block.add_phi (cur_block b) { Block.pid; ty; incoming };
  Var pid

(* --- structured control flow -------------------------------------------- *)

(* if c then <then_> [else <else_>]; leaves the builder in the join block.
   Each branch body returns the values to merge; the result is the list of
   merged operands (φs in the join block, or the single branch's values when
   the φ would be degenerate). *)
let if_values (b : t) c ~tys ~then_ ~else_ =
  let then_bb = new_block b in
  let else_bb = new_block b in
  let join_bb = new_block b in
  cond_br b c then_bb else_bb;
  set_cur b then_bb;
  let then_vals = then_ b in
  let then_end = b.cur in
  br b join_bb;
  set_cur b else_bb;
  let else_vals = else_ b in
  let else_end = b.cur in
  br b join_bb;
  set_cur b join_bb;
  if List.length then_vals <> List.length tys
     || List.length else_vals <> List.length tys
  then invalid_arg "Builder.if_values: arity mismatch";
  List.map2
    (fun ty (tv, ev) -> phi b ty [ (then_end, tv); (else_end, ev) ])
    tys
    (List.combine then_vals else_vals)

let if_ (b : t) c ~then_ ?else_ () =
  let else_body = match else_ with Some f -> f | None -> fun _ -> () in
  let (_ : operand list) =
    if_values b c ~tys:[]
      ~then_:(fun b ->
        then_ b;
        [])
      ~else_:(fun b ->
        else_body b;
        [])
  in
  ()

(* Canonical counted loop [for i = 0; i < n; i++] with loop-carried scalar
   state. [body] receives the induction variable and the carried values and
   returns their next-iteration values; it may create arbitrary nested
   structured control flow. The builder is left in the exit block; the
   carried values' final φs (at the header) are returned for use after the
   loop. *)
let counted_loop (b : t) ~n ?(carried = []) body =
  let preheader = b.cur in
  let fn = b.func in
  let header = new_block b in
  let body_bb = new_block b in
  let exit_bb = new_block b in
  br b header;
  (* Pre-allocate φ ids so the body can reference them. *)
  let i_pid = Func.fresh_vid fn in
  let carried_pids =
    List.map (fun (ty, init) -> (Func.fresh_vid fn, ty, init)) carried
  in
  set_cur b header;
  let i_op = Var i_pid in
  let carried_ops = List.map (fun (pid, _, _) -> Var pid) carried_pids in
  let c = cmp b Instr.Slt i_op n in
  cond_br b c body_bb exit_bb;
  set_cur b body_bb;
  let next_carried = body b ~i:i_op ~carried:carried_ops in
  if List.length next_carried <> List.length carried then
    invalid_arg "Builder.counted_loop: carried arity mismatch";
  let i_next = add b i_op (int 1) in
  let latch = b.cur in
  br b header;
  (* Install header φs now that the latch and next values are known. *)
  let header_b = Func.block fn header in
  header_b.Block.phis <-
    {
      Block.pid = i_pid;
      ty = I32;
      incoming = [ (preheader, int 0); (latch, i_next) ];
    }
    :: List.map2
         (fun (pid, ty, init) next ->
           { Block.pid; ty; incoming = [ (preheader, init); (latch, next) ] })
         carried_pids next_carried;
  set_cur b exit_bb;
  carried_ops
