(* Node splitting for irreducible control flow (paper §3.2: "Irreducible
   control flow can be made reducible with node splitting", citing
   Peterson et al. '73 / Bahmann et al. '15).

   The speculation passes assume reducible CFGs (backedges form natural
   loops). An irreducible region has a retreating edge (u, v) — v appears
   before u in some DFS but does not dominate u — i.e. a cycle with two
   entries. We repeatedly pick such an edge and split its target: a copy
   v' of v takes over the offending edge, so v is entered from one side
   only. Splitting is SSA-aware:

   - v' clones v's instructions with fresh ids (fresh mem ids too: a
     duplicated static memory op is a distinct request site);
   - v's φs collapse in v' to the single incoming value from u;
   - every value v defines that is used elsewhere gets both definitions
     reconciled by SSA repair (φs at the iterated dominance frontier).

   Splitting can duplicate code exponentially in pathological CFGs; a
   fuel bound guards against that. *)

open Types

exception Cannot_reduce of string

(* A retreating-but-not-backedge: the witness of irreducibility. *)
let find_irreducible_edge (f : Func.t) : (int * int) option =
  let dom = Dom.compute f in
  (* DFS detecting a grey-grey edge whose target does not dominate source *)
  let color = Hashtbl.create 32 in
  let found = ref None in
  let rec visit n =
    if !found = None then begin
      Hashtbl.replace color n 1;
      List.iter
        (fun s ->
          if !found = None then
            match Hashtbl.find_opt color s with
            | Some 1 ->
              if not (Dom.dominates dom s n) then found := Some (n, s)
            | Some _ -> ()
            | None -> visit s)
        (Func.successors f n);
      Hashtbl.replace color n 2
    end
  in
  visit f.Func.entry;
  !found

(* Duplicate block [v]; the copy takes over the single edge [u -> v]. *)
let split_target (f : Func.t) ~u ~v : int =
  let vb = Func.block f v in
  let v' = Func.add_block ~after:v f ~term:vb.Block.term in
  (* instructions: fresh ids (and fresh mem ids) *)
  let id_map = Hashtbl.create 8 in
  let cloned_defs = ref [] in
  v'.Block.instrs <-
    List.map
      (fun (i : Instr.t) ->
        let id = Func.fresh_vid f in
        Hashtbl.replace id_map i.Instr.id id;
        if Instr.produces_value i then
          cloned_defs := (i.Instr.id, id) :: !cloned_defs;
        let kind =
          match i.Instr.kind with
          | Instr.Load { arr; idx; mem = _ } ->
            Instr.Load { arr; idx; mem = Func.fresh_mem f }
          | Instr.Store { arr; idx; value; mem = _ } ->
            Instr.Store { arr; idx; value; mem = Func.fresh_mem f }
          | k -> k
        in
        { Instr.id; kind })
      vb.Block.instrs;
  (* φs of v collapse to the value flowing in from u *)
  let phi_defs = ref [] in
  List.iter
    (fun (p : Block.phi) ->
      match List.assoc_opt u p.Block.incoming with
      | Some incoming_value ->
        (* bind the φ's id to the incoming value inside v' via the map *)
        phi_defs := (p.Block.pid, incoming_value) :: !phi_defs
      | None -> ())
    vb.Block.phis;
  (* rewrite operands inside v': cloned ids and collapsed φs *)
  let subst op =
    match op with
    | Var x -> (
      match Hashtbl.find_opt id_map x with
      | Some y -> Var y
      | None -> (
        match List.assoc_opt x !phi_defs with
        | Some collapsed -> collapsed
        | None -> op))
    | Cst _ -> op
  in
  v'.Block.instrs <- List.map (Instr.map_operands subst) v'.Block.instrs;
  v'.Block.term <- Block.map_terminator_operands subst v';
  (* redirect u's edge; v loses u as predecessor *)
  Func.retarget_edge f ~src:u ~old_dst:v ~new_dst:v'.Block.bid;
  Block.remove_phi_pred vb ~pred:u;
  (* successors of v' see a new predecessor: φ entries duplicate v's *)
  List.iter
    (fun s ->
      let sb = Func.block f s in
      sb.Block.phis <-
        List.map
          (fun (p : Block.phi) ->
            match List.assoc_opt v p.Block.incoming with
            | Some value ->
              { p with
                Block.incoming =
                  p.Block.incoming @ [ (v'.Block.bid, subst value) ] }
            | None -> p)
          sb.Block.phis)
    (Block.dedup (Block.successor_edges v'));
  (* Values defined in v now have a twin definition in v'. Before SSA
     repair, rename each definition inside v to a fresh id (updating v's
     intra-block uses, which must keep referring to the local def — repair
     resolves block-internal uses to the block-entry value); then repair
     all remaining uses of the old id against the two renamed twins. *)
  let rename_def_in_v ~old_id =
    let renamed = Func.fresh_vid f in
    vb.Block.instrs <-
      List.map
        (fun (i : Instr.t) ->
          let i = if i.Instr.id = old_id then { i with Instr.id = renamed } else i in
          Instr.map_operands
            (fun op -> if op = Var old_id then Var renamed else op)
            i)
        vb.Block.instrs;
    vb.Block.phis <-
      List.map
        (fun (p : Block.phi) ->
          if p.Block.pid = old_id then { p with Block.pid = renamed } else p)
        vb.Block.phis;
    vb.Block.term <-
      Block.map_terminator_operands
        (fun op -> if op = Var old_id then Var renamed else op)
        vb;
    renamed
  in
  List.iter
    (fun (old_id, new_id) ->
      let renamed = rename_def_in_v ~old_id in
      Ssa_repair.rewrite_uses f ~old_vid:old_id
        ~defs:[ (v, Var renamed); (v'.Block.bid, Var new_id) ]
        ~ty:I32 ())
    (List.rev !cloned_defs);
  List.iter
    (fun (pid, collapsed) ->
      let renamed = rename_def_in_v ~old_id:pid in
      Ssa_repair.rewrite_uses f ~old_vid:pid
        ~defs:[ (v, Var renamed); (v'.Block.bid, collapsed) ]
        ~ty:I32 ())
    !phi_defs;
  v'.Block.bid

(* Split until reducible. Returns the number of blocks duplicated. *)
let run ?(fuel = 64) (f : Func.t) : int =
  let splits = ref 0 in
  let rec go budget =
    if Loops.is_reducible f then ()
    else if budget = 0 then
      raise
        (Cannot_reduce
           (Fmt.str "%s still irreducible after %d node splits" f.Func.name
              fuel))
    else begin
      match find_irreducible_edge f with
      | Some (u, v) ->
        ignore (split_target f ~u ~v);
        incr splits;
        go (budget - 1)
      | None ->
        raise
          (Cannot_reduce
             "CFG reported irreducible but no irreducible edge found")
    end
  in
  go fuel;
  !splits
