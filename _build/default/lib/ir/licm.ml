(* Loop-invariant code motion.

   Pure instructions whose operands are all defined outside the loop (or
   are themselves invariant) move to the loop preheader — in this IR the
   unique out-of-loop predecessor of the header. Address computations like
   fw's [i*n] in an inner loop are the motivating case: the AGU's address
   chains shrink, and the STA model's pipeline depth with them. Memory and
   channel operations never move (loads would need the §4 analysis to
   prove safety; this pass stays conservative). *)

open Types

(* The unique out-of-loop predecessor of a canonical loop's header. *)
let preheader (f : Func.t) (l : Loops.loop) : int option =
  let preds_tbl = Func.predecessors f in
  let preds =
    try Hashtbl.find preds_tbl l.Loops.header with Not_found -> []
  in
  match List.filter (fun p -> not (List.mem p l.Loops.body)) preds with
  | [ p ] -> Some p
  | _ -> None

let hoistable_kind (k : Instr.kind) =
  match k with
  | Instr.Binop (op, _, _) ->
    (* division by a possibly-zero invariant is still fine here: the IR
       defines x/0 = 0, so speculation cannot trap *)
    ignore op;
    true
  | Instr.Cmp _ | Instr.Select _ | Instr.Not _ -> true
  | _ -> false

(* One pass over one loop; returns the number of instructions moved. *)
let hoist_loop (f : Func.t) (l : Loops.loop) : int =
  match preheader f l with
  | None -> 0
  | Some pre ->
    let defined_in_loop = Hashtbl.create 32 in
    List.iter
      (fun bid ->
        let b = Func.block f bid in
        List.iter
          (fun (p : Block.phi) -> Hashtbl.replace defined_in_loop p.Block.pid ())
          b.Block.phis;
        List.iter
          (fun (i : Instr.t) ->
            if Instr.produces_value i then
              Hashtbl.replace defined_in_loop i.Instr.id ())
          b.Block.instrs)
      l.Loops.body;
    let invariant_op op =
      match op with
      | Cst _ -> true
      | Var v -> not (Hashtbl.mem defined_in_loop v)
    in
    (* Only instructions in blocks that execute on every iteration (blocks
       dominating the latch) may move: hoisting conditional code would
       speculate it, which is the speculation passes' job, not LICM's. *)
    let dom = Dom.compute f in
    let moved = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun bid ->
          if Dom.dominates dom bid l.Loops.latch then begin
            let b = Func.block f bid in
            let stay, move =
              List.partition
                (fun (i : Instr.t) ->
                  not
                    (hoistable_kind i.Instr.kind
                    && List.for_all invariant_op (Instr.operands i)))
                b.Block.instrs
            in
            if move <> [] then begin
              b.Block.instrs <- stay;
              let pre_b = Func.block f pre in
              List.iter
                (fun (i : Instr.t) ->
                  Block.append_instr pre_b i;
                  Hashtbl.remove defined_in_loop i.Instr.id;
                  incr moved)
                move;
              changed := true
            end
          end)
        l.Loops.body
    done;
    !moved

(* Innermost loops first, so invariants bubble outward across nests. *)
let run (f : Func.t) : int =
  let loops = Loops.compute f in
  let by_depth =
    List.sort
      (fun (a : Loops.loop) b -> compare b.Loops.depth a.Loops.depth)
      loops.Loops.loops
  in
  List.fold_left (fun acc l -> acc + hoist_loop f l) 0 by_depth
