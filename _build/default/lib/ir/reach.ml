(* Reachability over the loop-body DAG.

   Algorithms 2 and 3 of the paper repeatedly ask "is block X reachable from
   block Y, ignoring loop backedges?". We precompute the transitive closure
   of the forward-edge graph once per query set; functions are small, so a
   simple DFS per source is plenty. *)

type t = {
  func : Func.t;
  backedges : (int * int) list;
  memo : (int, (int, unit) Hashtbl.t) Hashtbl.t;
}

let create (f : Func.t) =
  let loops = Loops.compute f in
  { func = f; backedges = loops.Loops.backedges; memo = Hashtbl.create 16 }

let create_with_backedges (f : Func.t) ~backedges =
  { func = f; backedges; memo = Hashtbl.create 16 }

let closure_from (t : t) src =
  match Hashtbl.find_opt t.memo src with
  | Some set -> set
  | None ->
    let set = Hashtbl.create 16 in
    let rec go n =
      if not (Hashtbl.mem set n) then begin
        Hashtbl.replace set n ();
        List.iter
          (fun s -> if not (List.mem (n, s) t.backedges) then go s)
          (Func.successors t.func n)
      end
    in
    go src;
    Hashtbl.replace t.memo src set;
    set

(* Is [dst] reachable from [src] following only forward edges (reflexive)? *)
let reachable (t : t) ~src ~dst = Hashtbl.mem (closure_from t src) dst

(* Strict variant: at least one edge must be taken. *)
let strictly_reachable (t : t) ~src ~dst =
  List.exists
    (fun s -> (not (List.mem (src, s) t.backedges)) && reachable t ~src:s ~dst)
    (Func.successors t.func src)
