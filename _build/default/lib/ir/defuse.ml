(* SSA def-use chains.

   The LoD analysis (paper §4) traces def-use paths from decoupled loads to
   address-generating instructions and branch conditions, looking *through*
   φ-nodes — and, per Definition 4.1, when a φ is crossed it additionally
   traces the terminator conditions of the φ's incoming blocks. This module
   provides the raw def-use and use-def indexes those traversals need. *)

type def_site =
  | Param of string
  | Phi of int (* block id containing the φ *)
  | Instruction of int (* block id containing the instruction *)

type t = {
  func : Func.t;
  def_site : (int, def_site) Hashtbl.t; (* vid -> where it is defined *)
  users : (int, int list) Hashtbl.t; (* vid -> vids of instrs/φs using it *)
  term_users : (int, int list) Hashtbl.t; (* vid -> block ids whose terminator uses it *)
}

let vars_of_operands ops =
  List.filter_map
    (function Types.Var v -> Some v | Types.Cst _ -> None)
    ops

let compute (f : Func.t) : t =
  let def_site = Hashtbl.create 64 in
  let users = Hashtbl.create 64 in
  let term_users = Hashtbl.create 16 in
  let add_user tbl v u =
    let cur = try Hashtbl.find tbl v with Not_found -> [] in
    if not (List.mem u cur) then Hashtbl.replace tbl v (cur @ [ u ])
  in
  List.iter (fun (n, id) -> Hashtbl.replace def_site id (Param n)) f.Func.params;
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter
        (fun (p : Block.phi) ->
          Hashtbl.replace def_site p.Block.pid (Phi bid);
          List.iter
            (fun v -> add_user users v p.Block.pid)
            (vars_of_operands (List.map snd p.Block.incoming)))
        b.Block.phis;
      List.iter
        (fun (i : Instr.t) ->
          if Instr.produces_value i then
            Hashtbl.replace def_site i.Instr.id (Instruction bid);
          List.iter
            (fun v -> add_user users v i.Instr.id)
            (vars_of_operands (Instr.operands i)))
        b.Block.instrs;
      List.iter
        (fun v -> add_user term_users v bid)
        (vars_of_operands (Block.terminator_operands b)))
    f.Func.layout;
  { func = f; def_site; users; term_users }

let def_site (t : t) vid = Hashtbl.find_opt t.def_site vid
let users (t : t) vid = try Hashtbl.find t.users vid with Not_found -> []
let terminator_users (t : t) vid =
  try Hashtbl.find t.term_users vid with Not_found -> []

let find_instr (t : t) vid : Instr.t option =
  match def_site t vid with
  | Some (Instruction bid) ->
    List.find_opt
      (fun (i : Instr.t) -> i.Instr.id = vid)
      (Func.block t.func bid).Block.instrs
  | Some (Param _ | Phi _) | None -> None

let find_phi (t : t) vid : (Block.phi * int) option =
  match def_site t vid with
  | Some (Phi bid) ->
    (match
       List.find_opt
         (fun (p : Block.phi) -> p.Block.pid = vid)
         (Func.block t.func bid).Block.phis
     with
    | Some p -> Some (p, bid)
    | None -> None)
  | Some (Param _ | Instruction _) | None -> None

(* Transitive closure of values reachable *backwards* from [vid] along the
   use-def chain, i.e. everything [vid]'s computation depends on. When a
   φ-node is crossed, per Definition 4.1 the conditions deciding which
   incoming value is selected are also traced: the terminators of the φ's
   incoming blocks (the paper's rule) and, because an incoming block may
   end in an unconditional branch with the real decision made further up
   (an empty diamond), the terminators of every block the φ's block is
   control-dependent on. *)
let backward_slice (t : t) vid : (int, unit) Hashtbl.t =
  let cdep = lazy (Control_dep.compute t.func) in
  let seen = Hashtbl.create 32 in
  let rec go v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      match def_site t v with
      | None | Some (Param _) -> ()
      | Some (Instruction _) ->
        (match find_instr t v with
        | None -> ()
        | Some i -> List.iter go (vars_of_operands (Instr.operands i)))
      | Some (Phi _) ->
        (match find_phi t v with
        | None -> ()
        | Some (p, _) ->
          List.iter go
            (vars_of_operands (List.map snd p.Block.incoming));
          let trace_terminator bid =
            match Func.block_opt t.func bid with
            | None -> ()
            | Some pb ->
              List.iter go (vars_of_operands (Block.terminator_operands pb))
          in
          (* which incoming value is selected is decided by the incoming
             blocks' own terminators and by every branch those blocks are
             control-dependent on (the φ's block itself may postdominate
             the decision, e.g. an empty diamond) *)
          List.iter
            (fun (pred, _) ->
              trace_terminator pred;
              List.iter trace_terminator
                (Control_dep.transitive_sources (Lazy.force cdep) pred))
            p.Block.incoming)
    end
  in
  go vid;
  seen

(* Does the computation of [vid] (transitively) depend on any value in
   [sources]? *)
let depends_on (t : t) vid ~sources =
  let slice = backward_slice t vid in
  List.exists (fun s -> Hashtbl.mem slice s) sources
