(** Natural loop detection.

    The paper assumes canonical loops — one header, one latch, one
    backedge (§3.2) — and reducible control flow; {!check_canonical} and
    {!is_reducible} enforce both. *)

type loop = {
  header : int;
  latch : int;
  body : int list;  (** all blocks, header first *)
  depth : int;  (** 1 = outermost *)
  parent : int option;  (** header of the enclosing loop *)
}

type t = {
  loops : loop list;  (** outermost first *)
  backedges : (int * int) list;  (** (latch, header) pairs *)
  loop_of_header : (int, loop) Hashtbl.t;
}

val compute : Func.t -> t

(** The innermost loop containing a block. *)
val innermost : t -> int -> loop option

val loop_of_header : t -> int -> loop option
val is_backedge : t -> src:int -> dst:int -> bool
val is_header : t -> int -> bool

(** Every loop has exactly one backedge. *)
val check_canonical : t -> (unit, string) result

(** Removing dominance-backedges leaves an acyclic forward graph. *)
val is_reducible : Func.t -> bool
