(** Textual IR parser for exactly the grammar {!Printer} emits: [;]
    comments, [func name(p: %0, ...) { bbN: ... }] with the instruction
    forms of {!Instr.pp}, [phi], [br]/[switch]/[ret] terminators. Fresh-id
    counters of the parsed function start above every id in the text. *)

exception Parse_error of string

(** @raise Parse_error on malformed input. *)
val parse : string -> Func.t

val parse_exn : string -> Func.t
val parse_result : string -> (Func.t, string) result
