(* Partial if-conversion: flatten diamonds and triangles whose arms are
   pure (paper §9 — "many algorithms like modulo-scheduling and
   if-conversion originally developed for VLIW [are] directly applicable to
   HLS").

   A conditional branch whose arm blocks contain only pure instructions
   (no memory or channel operations) and reconverge immediately is
   flattened: the arms' instructions are hoisted into the branch block
   (executing them unconditionally is safe — they are pure), the join's φs
   become selects on the branch condition, and the branch becomes an
   unconditional jump. This trades a scheduler state for a mux — the
   trade HLS if-conversion makes — and reduces block counts in the CU.

   Arms are bounded by [max_arm_instrs] so the pass does not speculate
   unbounded work. *)

open Types

let default_max_arm_instrs = 8

let pure_instr (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Binop _ | Instr.Cmp _ | Instr.Select _ | Instr.Not _ -> true
  | _ -> false

(* An arm of the diamond: either the join itself (triangle) or a single
   pure block falling through to the join. *)
type arm = Direct | Through of Block.t

let arm_of (f : Func.t) ~branch ~join target : arm option =
  if target = join then Some Direct
  else
    match Func.block_opt f target with
    | None -> None
    | Some b ->
      let preds_ok =
        (* single predecessor: the branch block *)
        List.for_all
          (fun p ->
            (not (List.mem target (Func.successors f p))) || p = branch)
          f.Func.layout
      in
      (match b.Block.term with
      | Block.Br t
        when t = join && b.Block.phis = [] && preds_ok
             && List.for_all pure_instr b.Block.instrs
             && List.length b.Block.instrs <= default_max_arm_instrs ->
        Some (Through b)
      | _ -> None)

let flatten_one (f : Func.t) bid : bool =
  let b = Func.block f bid in
  match b.Block.term with
  | Block.Cond_br (c, t, fl) when t <> fl -> (
    (* the join is whichever common target the arms reconverge on *)
    let join_candidates =
      match (Func.block_opt f t, Func.block_opt f fl) with
      | Some tb, Some flb -> (
        match (tb.Block.term, flb.Block.term) with
        | Block.Br jt, Block.Br jf when jt = jf -> [ jt ]
        | Block.Br jt, _ when jt = fl -> [ fl ]
        | _, Block.Br jf when jf = t -> [ t ]
        | _ -> [])
      | _ -> []
    in
    match join_candidates with
    | [] -> false
    | join :: _ -> (
      match (arm_of f ~branch:bid ~join t, arm_of f ~branch:bid ~join fl) with
      | Some at, Some af
        when (at <> Direct || af <> Direct) && join <> bid -> begin
        (* the join's φs must only merge this diamond *)
        let jb = Func.block f join in
        let arm_bid = function Direct -> bid | Through blk -> blk.Block.bid in
        let t_pred = arm_bid at and f_pred = arm_bid af in
        let phi_ok =
          List.for_all
            (fun (p : Block.phi) ->
              List.for_all
                (fun (pr, _) -> pr = t_pred || pr = f_pred)
                p.Block.incoming)
            jb.Block.phis
        in
        if not phi_ok || t_pred = f_pred then false
        else begin
          (* hoist arm instructions into the branch block *)
          (match at with
          | Through blk -> b.Block.instrs <- b.Block.instrs @ blk.Block.instrs
          | Direct -> ());
          (match af with
          | Through blk -> b.Block.instrs <- b.Block.instrs @ blk.Block.instrs
          | Direct -> ());
          (* join φs become selects on c *)
          let selects =
            List.map
              (fun (p : Block.phi) ->
                let value_from pr =
                  match List.assoc_opt pr p.Block.incoming with
                  | Some v -> v
                  | None -> Cst (Int 0)
                in
                { Instr.id = p.Block.pid;
                  kind =
                    Instr.Select (c, value_from t_pred, value_from f_pred) })
              jb.Block.phis
          in
          jb.Block.phis <- [];
          jb.Block.instrs <- selects @ jb.Block.instrs;
          b.Block.term <- Block.Br join;
          (* retire the arm blocks *)
          (match at with
          | Through blk -> Func.remove_block f blk.Block.bid
          | Direct -> ());
          (match af with
          | Through blk -> Func.remove_block f blk.Block.bid
          | Direct -> ());
          true
        end
      end
      | _ -> false))
  | _ -> false

(* Flatten to a fixed point; returns the number of flattened diamonds. *)
let run (f : Func.t) : int =
  let flattened = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match List.find_opt (flatten_one f) f.Func.layout with
    | Some _ -> incr flattened
    | None -> continue_ := false
  done;
  !flattened
