(** Functions: a named entry block, a mutable block table and fresh-id
    counters. Analyses are recomputed from scratch after mutation —
    functions are kernel-sized, so clarity wins over incrementality. *)

type t = {
  name : string;
  params : (string * int) list;  (** parameter name, SSA id *)
  entry : int;
  blocks : (int, Block.t) Hashtbl.t;
  mutable layout : int list;  (** printing / iteration order *)
  mutable next_vid : int;
  mutable next_bid : int;
  mutable next_mem : int;
}

(** A fresh function with an empty entry block terminated by [ret]. *)
val create : name:string -> params:string list -> t

(** Deep copy; block/value/mem ids are preserved (the decoupler relies on
    the AGU and CU clones sharing the original's block ids). *)
val clone : ?name:string -> t -> t

(** @raise Invalid_argument when the block does not exist. *)
val block : t -> int -> Block.t

val block_opt : t -> int -> Block.t option
val mem_block : t -> int -> bool
val blocks_in_layout : t -> Block.t list
val entry_block : t -> Block.t

val fresh_vid : t -> int
val fresh_mem : t -> int

(** Create an empty block terminated by [term]; [after] positions it in the
    layout (cosmetic). *)
val add_block : ?after:int -> t -> term:Block.terminator -> Block.t

val remove_block : t -> int -> unit

(** @raise Invalid_argument for an unknown parameter. *)
val param_vid : t -> string -> int

val successors : t -> int -> int list

(** Predecessor map with duplicate edges collapsed. *)
val predecessors : t -> (int, int list) Hashtbl.t

val edges : t -> (int * int) list

(** All SSA definitions: parameters, φs and value-producing instructions. *)
val definitions : t -> (int, unit) Hashtbl.t

(** Arrays touched by the function, in first-occurrence order. *)
val arrays : t -> string list

(** Redirect the edge [src -> old_dst] to [src -> new_dst] (no φ repair). *)
val retarget_edge : t -> src:int -> old_dst:int -> new_dst:int -> unit

(** Split the edge [src -> dst] with a fresh forwarding block; φ incoming
    entries of [dst] are renamed so SSA form is preserved. *)
val split_edge : t -> src:int -> dst:int -> Block.t

val iter_instrs : t -> (Instr.t -> unit) -> unit
val fold_instrs : t -> ('a -> Instr.t -> 'a) -> 'a -> 'a

(** The block containing the instruction with the given id. *)
val block_of_instr : t -> id:int -> Block.t option
