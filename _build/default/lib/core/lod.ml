(* Loss-of-decoupling analysis (paper §4).

   Given the set [A] of loads that cannot be trivially prefetched (by
   default: loads from arrays the function also stores to, i.e. loads with
   potential RAW hazards that require memory disambiguation), find for every
   memory operation:

   - Definition 4.1 (data LoD): a def-use path from some a ∈ A to the
     operation's address computation. Paths through φ-nodes also trace the
     terminator conditions of the φ's incoming blocks (Defuse.backward_slice
     implements exactly that).
   - Definition 4.2 (control LoD): the operation is (transitively)
     control-dependent on a branch whose condition depends on some a ∈ A.
     The blocks housing such branches are the LoD control-dependency
     *sources*.

   §5.1.2: speculation only starts at chain heads — sources that are not
   themselves control-dependent on another source. *)

open Dae_ir

type policy =
  | Raw_hazard_loads (* default: loads from arrays that are also stored *)
  | All_loads
  | Loads_from of string list

type mem_op = {
  instr_id : int;
  mem : Instr.mem_id;
  block : int;
  is_store : bool;
  arr : string;
}

type t = {
  a_values : int list; (* SSA ids of the A-set loads *)
  mem_ops : mem_op list; (* every load/store, in layout order *)
  data_lod : (Instr.mem_id * int) list; (* (op, offending A-load id) *)
  control_lod : (Instr.mem_id * int list) list; (* (op, source blocks) *)
  src_blocks : int list; (* all LoD control-dependency sources *)
  chain_heads : int list; (* §5.1.2 filtered sources *)
  (* For each chain head: the requests to speculate there, resolved by
     Hoist (left empty by analyze). *)
  cdep : Control_dep.t;
}

let collect_mem_ops (f : Func.t) : mem_op list =
  List.concat_map
    (fun bid ->
      List.filter_map
        (fun (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Load { arr; mem; _ } ->
            Some { instr_id = i.Instr.id; mem; block = bid; is_store = false; arr }
          | Instr.Store { arr; mem; _ } ->
            Some { instr_id = i.Instr.id; mem; block = bid; is_store = true; arr }
          | _ -> None)
        (Func.block f bid).Block.instrs)
    f.Func.layout

let a_set (f : Func.t) (policy : policy) : int list =
  let stored_arrays =
    List.sort_uniq compare
      (Func.fold_instrs f
         (fun acc (i : Instr.t) ->
           match i.Instr.kind with
           | Instr.Store { arr; _ } -> arr :: acc
           | _ -> acc)
         [])
  in
  Func.fold_instrs f
    (fun acc (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Load { arr; _ } ->
        let in_a =
          match policy with
          | All_loads -> true
          | Raw_hazard_loads -> List.mem arr stored_arrays
          | Loads_from arrs -> List.mem arr arrs
        in
        if in_a then i.Instr.id :: acc else acc
      | _ -> acc)
    []
  |> List.rev

(* The address operand of a memory operation. *)
let addr_operand (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Load { idx; _ } | Instr.Store { idx; _ } -> Some idx
  | _ -> None

let analyze ?(policy = Raw_hazard_loads) (f : Func.t) : t =
  let du = Defuse.compute f in
  let cdep = Control_dep.compute f in
  let a_values = a_set f policy in
  let mem_ops = collect_mem_ops f in
  let depends_on_a op =
    match op with
    | Types.Cst _ -> false
    | Types.Var v -> Defuse.depends_on du v ~sources:a_values
  in
  (* Data LoD: address computation depends on an A-load. The A-load itself
     trivially "depends" on its own value only if the address uses it, so no
     special-casing is needed. *)
  let instr_of (m : mem_op) =
    List.find_opt
      (fun (i : Instr.t) -> i.Instr.id = m.instr_id)
      (Func.block f m.block).Block.instrs
  in
  let data_lod =
    List.filter_map
      (fun (m : mem_op) ->
        match instr_of m with
        | None -> None
        | Some i ->
          (match addr_operand i with
          | Some (Types.Var v) ->
            let slice = Defuse.backward_slice du v in
            (* any a ∈ A in the slice is a data LoD — including the op's
               own load reached through a loop-carried φ, the paper's
               `if (A[i]) A[i++] = 1` pattern that speculation must not
               touch (§4) *)
            (match List.find_opt (fun a -> Hashtbl.mem slice a) a_values with
            | Some a -> Some (m.mem, a)
            | None -> None)
          | Some (Types.Cst _) | None -> None))
      mem_ops
  in
  (* Control LoD: for each memory op, the transitive control-dependency
     sources whose branch condition depends on an A-load. *)
  let branch_depends_on_a bid =
    let b = Func.block f bid in
    List.exists depends_on_a (Block.terminator_operands b)
  in
  let control_lod =
    List.filter_map
      (fun (m : mem_op) ->
        let sources =
          List.filter branch_depends_on_a
            (Control_dep.transitive_sources cdep m.block)
        in
        if sources = [] then None else Some (m.mem, List.sort compare sources))
      mem_ops
  in
  let src_blocks =
    List.sort_uniq compare (List.concat_map snd control_lod)
  in
  (* §5.1.2: keep only chain heads — sources not control-dependent on
     another source (whose branch also qualifies). *)
  let chain_heads =
    List.filter
      (fun s ->
        not
          (List.exists
             (fun s' -> s' <> s && Control_dep.depends cdep ~block:s ~on:s')
             src_blocks))
      src_blocks
  in
  { a_values; mem_ops; data_lod; control_lod; src_blocks; chain_heads; cdep }

(* Memory ops whose decoupling is blocked by a data LoD (speculation cannot
   recover these, §4). *)
let data_blocked (t : t) = List.map fst t.data_lod

let has_control_lod (t : t) = t.control_lod <> []
let has_data_lod (t : t) = t.data_lod <> []

(* The chain head(s) from which a given source block's requests will
   actually be speculated: the heads that the source depends on (or itself
   if it is a head). *)
let heads_for_source (t : t) src =
  if List.mem src t.chain_heads then [ src ]
  else
    List.filter
      (fun h -> Control_dep.depends t.cdep ~block:src ~on:h)
      t.chain_heads

let pp ppf (t : t) =
  Fmt.pf ppf "A = {%a}@." Fmt.(list ~sep:(any ", ") int) t.a_values;
  Fmt.pf ppf "data LoD: %a@."
    Fmt.(list ~sep:(any ", ") (fun ppf (m, a) -> pf ppf "mem%d<-%%%d" m a))
    t.data_lod;
  Fmt.pf ppf "control LoD: %a@."
    Fmt.(
      list ~sep:(any ", ") (fun ppf (m, srcs) ->
          pf ppf "mem%d<-bb{%a}" m (list ~sep:(any ",") int) srcs))
    t.control_lod;
  Fmt.pf ppf "sources: %a; chain heads: %a@."
    Fmt.(list ~sep:(any ", ") int)
    t.src_blocks
    Fmt.(list ~sep:(any ", ") int)
    t.chain_heads
