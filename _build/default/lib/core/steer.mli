(** Steering flags for Algorithm 3 case 2 (§5.2.2): an SSA boolean that is
    true iff the current iteration's path went through the speculation
    block — the paper's "create ϕ(1, specBB) ... recursively on
    specBB→edge_src paths". *)

open Dae_ir

type ctx

val create : Func.t -> ctx

(** The flag available at the end of [block]; inserts φs as needed. *)
val flag_at : ctx -> spec_bb:int -> block:int -> Types.operand
