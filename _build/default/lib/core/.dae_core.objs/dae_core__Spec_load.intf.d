lib/core/spec_load.mli: Dae_ir Func Hoist
