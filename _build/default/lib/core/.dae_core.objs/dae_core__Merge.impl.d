lib/core/merge.ml: Block Dae_ir Func Hashtbl Instr List
