lib/core/pipeline.ml: Dae_ir Decouple Fmt Func Hoist Instr List Lod Logs Loop_canon Loops Merge Node_split Poison Spec_load Verify
