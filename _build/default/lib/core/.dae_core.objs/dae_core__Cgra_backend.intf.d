lib/core/cgra_backend.mli: Dae_ir Format Hashtbl Pipeline
