lib/core/merge.mli: Block Dae_ir Func Instr
