lib/core/hoist.mli: Dae_ir Format Func Instr Lod
