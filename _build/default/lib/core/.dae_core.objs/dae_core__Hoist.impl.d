lib/core/hoist.ml: Block Dae_ir Defuse Dom Fmt Func Hashtbl Instr List Lod Loops Order Ssa_repair Types
