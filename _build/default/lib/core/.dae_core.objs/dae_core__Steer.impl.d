lib/core/steer.ml: Block Dae_ir Dom Func Hashtbl List Loops Reach Types
