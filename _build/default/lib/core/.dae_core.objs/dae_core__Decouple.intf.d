lib/core/decouple.mli: Dae_ir Func Instr
