lib/core/cgra_backend.ml: Block Dae_ir Fmt Func Hashtbl Instr List Loops Pipeline String Types
