lib/core/poison.ml: Block Dae_ir Dom Func Hashtbl Hoist Instr List Loops Reach Steer
