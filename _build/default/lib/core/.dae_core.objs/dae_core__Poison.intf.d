lib/core/poison.mli: Dae_ir Func Hoist Loops
