lib/core/decouple.ml: Block Dae_ir Defuse Func Hashtbl Instr List Lod Queue Simplify Types
