lib/core/spec_load.ml: Block Dae_ir Func Hashtbl Hoist Instr List Ssa_repair Types
