lib/core/desc_backend.ml: Block Dae_ir Fmt Func Instr List Pipeline String Types
