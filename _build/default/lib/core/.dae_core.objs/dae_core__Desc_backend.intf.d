lib/core/desc_backend.mli: Dae_ir Format Pipeline
