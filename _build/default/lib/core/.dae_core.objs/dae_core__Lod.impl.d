lib/core/lod.ml: Block Control_dep Dae_ir Defuse Fmt Func Hashtbl Instr List Types
