lib/core/steer.mli: Dae_ir Func Types
