lib/core/lod.mli: Control_dep Dae_ir Format Func Instr
