lib/core/pipeline.mli: Dae_ir Decouple Format Func Hoist Instr Lod Poison Spec_load
