(* Steering flags for Algorithm 3, case 2 (paper §5.2.2).

   When a poison block on edge (src, dst) must fire only on paths that
   passed the speculation block, the paper threads a φ network carrying 1
   from [specBB] to [src] ("create ϕ(1, specBB) value in edge_src ...
   create recursively on specBB→edge_src paths"). [flag_at] builds exactly
   that SSA boolean: true iff the current iteration's path went through
   [spec_bb].

   The recursion is over forward (non-backedge) predecessors, so it is
   well-founded on reducible CFGs:
     - at [spec_bb] the flag is true;
     - at a loop header the flag is false (a fresh iteration has not passed
       [spec_bb] yet);
     - at a block not forward-reachable from [spec_bb] it is false;
     - at a block dominated by [spec_bb] it is true;
     - otherwise it is a φ over the predecessors' flags. *)

open Dae_ir

type ctx = {
  func : Func.t;
  dom : Dom.t;
  reach : Reach.t;
  loops : Loops.t;
  memo : (int * int, Types.operand) Hashtbl.t; (* (spec_bb, block) -> flag *)
}

let create (f : Func.t) =
  {
    func = f;
    dom = Dom.compute f;
    reach = Reach.create f;
    loops = Loops.compute f;
    memo = Hashtbl.create 16;
  }

(* The flag value available at the END of [block]. *)
let rec flag_at (c : ctx) ~spec_bb ~block : Types.operand =
  match Hashtbl.find_opt c.memo (spec_bb, block) with
  | Some op -> op
  | None ->
    let result =
      if block = spec_bb then Types.Cst (Types.Bool true)
      else if Loops.is_header c.loops block then Types.Cst (Types.Bool false)
      else if not (Reach.reachable c.reach ~src:spec_bb ~dst:block) then
        Types.Cst (Types.Bool false)
      else if Dom.dominates c.dom spec_bb block then
        Types.Cst (Types.Bool true)
      else begin
        (* φ over forward predecessors. Memoise a placeholder first to cut
           cycles defensively (reducible CFGs cannot hit it, but a malformed
           input should fail loudly rather than loop). *)
        let pid = Func.fresh_vid c.func in
        Hashtbl.replace c.memo (spec_bb, block) (Types.Var pid);
        let preds_tbl = Func.predecessors c.func in
        let preds = try Hashtbl.find preds_tbl block with Not_found -> [] in
        let incoming =
          List.map (fun p -> (p, flag_at c ~spec_bb ~block:p)) preds
        in
        Block.add_phi (Func.block c.func block)
          { Block.pid; ty = Types.I1; incoming };
        Types.Var pid
      end
    in
    Hashtbl.replace c.memo (spec_bb, block) result;
    result
