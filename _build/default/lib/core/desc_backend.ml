(* DeSC-style CPU prefetcher lowering (paper §7.1).

   The prefetcher of Ham et al. (MICRO'15), which most DAE prefetcher work
   builds on, extends the ISA with store_addr, load_produce, store_val,
   load_consume and store_inv instructions — exactly the five names the
   paper's §7.1.1 lists as direct targets for this compiler. This backend
   lowers a compiled pipeline to that ISA as a textual program listing per
   unit (the paper's supply/compute slices), demonstrating the §7 claim
   that the transformation is not HLS-specific.

   Mapping (paper §3.2 / §7.1.1):
     send_ld_addr  ->  load_produce  rA        (supply side issues the load)
     send_st_addr  ->  store_addr    rA        (allocate in the store buffer)
     consume_val   ->  load_consume  rD        (compute side pops the value)
     produce_val   ->  store_val     rD        (complete the allocation)
     poison        ->  store_inv               (kill it — §3.1's poison bit)

   Scalar instructions lower to a generic RISC-flavoured three-address
   form; φs become explicit edge moves on the predecessor side (the
   listing is not SSA). *)

open Dae_ir

type instruction = {
  label : string option; (* block label, on the first instruction *)
  opcode : string;
  operands : string list;
  comment : string option;
}

type listing = {
  unit_name : string; (* "supply" (AGU) or "compute" (CU) *)
  instructions : instruction list;
}

let reg v = Fmt.str "r%d" v

let operand = function
  | Types.Var v -> reg v
  | Types.Cst (Types.Int n) -> Fmt.str "#%d" n
  | Types.Cst (Types.Bool b) -> if b then "#1" else "#0"

let block_label bid = Fmt.str ".bb%d" bid

let lower_instr (i : Instr.t) : instruction list =
  let simple opcode operands =
    [ { label = None; opcode; operands; comment = None } ]
  in
  match i.Instr.kind with
  | Instr.Binop (op, a, b) ->
    simple (Instr.string_of_binop op) [ reg i.Instr.id; operand a; operand b ]
  | Instr.Cmp (c, a, b) ->
    simple
      ("cmp." ^ Instr.string_of_cmp c)
      [ reg i.Instr.id; operand a; operand b ]
  | Instr.Select (c, a, b) ->
    simple "csel" [ reg i.Instr.id; operand c; operand a; operand b ]
  | Instr.Not a -> simple "not" [ reg i.Instr.id; operand a ]
  | Instr.Load { arr; idx; _ } ->
    simple "ld" [ reg i.Instr.id; Fmt.str "%s[%s]" arr (operand idx) ]
  | Instr.Store { arr; idx; value; _ } ->
    simple "st" [ Fmt.str "%s[%s]" arr (operand idx); operand value ]
  | Instr.Send_ld_addr { arr; idx; mem } ->
    [ { label = None;
        opcode = "load_produce";
        operands = [ Fmt.str "%s[%s]" arr (operand idx) ];
        comment = Some (Fmt.str "q%d" mem) } ]
  | Instr.Send_st_addr { arr; idx; mem } ->
    [ { label = None;
        opcode = "store_addr";
        operands = [ Fmt.str "%s[%s]" arr (operand idx) ];
        comment = Some (Fmt.str "q%d" mem) } ]
  | Instr.Consume_val { mem; _ } ->
    [ { label = None;
        opcode = "load_consume";
        operands = [ reg i.Instr.id ];
        comment = Some (Fmt.str "q%d" mem) } ]
  | Instr.Produce_val { value; mem; _ } ->
    [ { label = None;
        opcode = "store_val";
        operands = [ operand value ];
        comment = Some (Fmt.str "q%d" mem) } ]
  | Instr.Poison { mem; _ } ->
    [ { label = None;
        opcode = "store_inv";
        operands = [];
        comment = Some (Fmt.str "q%d" mem) } ]

(* φs lower to moves at the end of each predecessor (before its branch). *)
let phi_moves (f : Func.t) (pred : Block.t) : instruction list =
  List.concat_map
    (fun succ ->
      List.filter_map
        (fun (p : Block.phi) ->
          match List.assoc_opt pred.Block.bid p.Block.incoming with
          | Some op when op <> Types.Var p.Block.pid ->
            Some
              { label = None;
                opcode = "mov";
                operands = [ reg p.Block.pid; operand op ];
                comment = Some "phi" }
          | Some _ | None -> None)
        (Func.block f succ).Block.phis)
    (Block.successors pred)

let lower_terminator (t : Block.terminator) : instruction list =
  match t with
  | Block.Br target ->
    [ { label = None; opcode = "b"; operands = [ block_label target ];
        comment = None } ]
  | Block.Cond_br (c, yes, no) ->
    [ { label = None; opcode = "bnz";
        operands = [ operand c; block_label yes ]; comment = None };
      { label = None; opcode = "b"; operands = [ block_label no ];
        comment = None } ]
  | Block.Switch (c, targets) ->
    List.concat
      (List.mapi
         (fun k target ->
           [ { label = None; opcode = "beq";
               operands = [ operand c; Fmt.str "#%d" k; block_label target ];
               comment = None } ])
         targets)
    @ [ { label = None; opcode = "b";
          operands = [ block_label (List.nth targets (List.length targets - 1)) ];
          comment = Some "switch default" } ]
  | Block.Ret _ ->
    [ { label = None; opcode = "ret"; operands = []; comment = None } ]

let lower_unit ~name (f : Func.t) : listing =
  let instructions =
    List.concat_map
      (fun bid ->
        let b = Func.block f bid in
        let body =
          List.concat_map lower_instr b.Block.instrs
          @ phi_moves f b @ lower_terminator b.Block.term
        in
        match body with
        | first :: rest -> { first with label = Some (block_label bid) } :: rest
        | [] -> [])
      f.Func.layout
  in
  { unit_name = name; instructions }

(* Lower a compiled pipeline to the two DeSC slices. *)
type t = { supply : listing; compute : listing }

let lower (p : Pipeline.t) : t =
  {
    supply = lower_unit ~name:"supply" p.Pipeline.agu;
    compute = lower_unit ~name:"compute" p.Pipeline.cu;
  }

let uses_speculation (l : listing) =
  List.exists (fun i -> i.opcode = "store_inv") l.instructions

let count_opcode (l : listing) opcode =
  List.length (List.filter (fun i -> i.opcode = opcode) l.instructions)

let pp_instruction ppf (i : instruction) =
  (match i.label with
  | Some l -> Fmt.pf ppf "%s:@." l
  | None -> ());
  Fmt.pf ppf "        %-14s %s" i.opcode (String.concat ", " i.operands);
  match i.comment with
  | Some c -> Fmt.pf ppf "    ; %s@." c
  | None -> Fmt.pf ppf "@."

let pp_listing ppf (l : listing) =
  Fmt.pf ppf "; === %s slice (DeSC ISA, Ham et al. MICRO'15) ===@." l.unit_name;
  List.iter (pp_instruction ppf) l.instructions

let pp ppf (t : t) =
  pp_listing ppf t.supply;
  Fmt.pf ppf "@.";
  pp_listing ppf t.compute
