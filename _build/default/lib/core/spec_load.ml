(* Speculative load consumption (paper §5.4).

   For every *load* request hoisted in the AGU, the CU's matching
   [consume_val] is moved to the same speculation block(s), so that the
   number and position of consumes matches the number of speculative
   requests on every path — the CU then either uses the value or discards
   it. Uses of the load value are rewritten by SSA repair (φ insertion at
   join points), which also realises the paper's "update all φ instructions
   that use the load value". *)

open Dae_ir

type stats = { moved_consumes : int; repair_phis : int }

let run (cu : Func.t) (hoist : Hoist.t) : stats =
  (* Collect, per speculated load mem id, the speculation blocks. *)
  let spec_blocks_of_mem : (Instr.mem_id, int list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (head, reqs) ->
      List.iter
        (fun (r : Hoist.spec_req) ->
          if not r.Hoist.is_store then begin
            let cur =
              try Hashtbl.find spec_blocks_of_mem r.Hoist.mem
              with Not_found -> []
            in
            if not (List.mem head cur) then
              Hashtbl.replace spec_blocks_of_mem r.Hoist.mem (cur @ [ head ])
          end)
        reqs)
    hoist.Hoist.spec_req_map;
  let moved = ref 0 in
  let phis_before =
    List.fold_left
      (fun acc bid -> acc + List.length (Func.block cu bid).Block.phis)
      0 cu.Func.layout
  in
  Hashtbl.iter
    (fun mem heads ->
      (* Find the consume for this load in the CU. *)
      let found =
        List.find_map
          (fun bid ->
            List.find_map
              (fun (i : Instr.t) ->
                match i.Instr.kind with
                | Instr.Consume_val { arr; mem = m } when m = mem ->
                  Some (bid, i.Instr.id, arr)
                | _ -> None)
              (Func.block cu bid).Block.instrs)
          cu.Func.layout
      in
      match found with
      | None -> () (* load value unused in CU; nothing to move *)
      | Some (bid, old_id, arr) ->
        Block.remove_instr (Func.block cu bid) ~id:old_id;
        let defs =
          List.map
            (fun head ->
              let id = Func.fresh_vid cu in
              Block.append_instr (Func.block cu head)
                { Instr.id; kind = Instr.Consume_val { arr; mem } };
              incr moved;
              (head, Types.Var id))
            heads
        in
        Ssa_repair.rewrite_uses cu ~old_vid:old_id ~defs ~ty:Types.I32 ())
    spec_blocks_of_mem;
  let phis_after =
    List.fold_left
      (fun acc bid -> acc + List.length (Func.block cu bid).Block.phis)
      0 cu.Func.layout
  in
  { moved_consumes = !moved; repair_phis = phis_after - phis_before }
