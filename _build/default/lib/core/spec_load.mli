(** Speculative load consumption (§5.4): every hoisted load's [consume_val]
    in the CU moves to the same speculation block(s) as its request in the
    AGU, so consumes and requests pair up on every path; uses of the value
    are rewritten by SSA repair (the paper's "update all φ instructions
    that use the load value"). *)

open Dae_ir

type stats = { moved_consumes : int; repair_phis : int }

val run : Func.t -> Hoist.t -> stats
