(** Algorithms 2 and 3: poisoning mis-speculated stores in the CU (§5.2).

    Phase 1 (Algorithm 2) maps poison calls to CFG edges: along every DAG
    path from a speculation block to the loop latch, the pending request
    groups are tracked in speculation order; a group is poisoned on the
    first edge from which its true-block is unreachable — but only once
    every earlier group has been used or poisoned (skipping the edge
    otherwise), which is what keeps the store-value stream in request order
    (the §2 counterexample).

    Phase 2 (Algorithm 3) materialises each decision: appended to a
    single-successor source, prepended to a single-predecessor destination,
    hosted in a (reused) block split on the edge — or, when the speculation
    block does not dominate the edge, guarded by a steering flag φ network
    ({!Steer}) so the poison fires only on paths that actually
    speculated. *)

open Dae_ir

type decision = {
  edge : int * int;
  spec_bb : int;
  true_bb : int;
  requests : Hoist.spec_req list;  (** the group's stores, in order *)
}

type stats = {
  mutable poison_calls : int;
  mutable poison_blocks : int;
  mutable steer_blocks : int;
  mutable steer_phis : int;
}

type t = { decisions : decision list; stats : stats }

exception Poison_error of string

(** All DAG paths (edge lists) from a block to its loop latch (or function
    exits). @raise Poison_error on path explosion. *)
val all_paths : Func.t -> Loops.t -> int -> (int * int) list list

val group_by_true_bb :
  Hoist.spec_req list -> (int * Hoist.spec_req list) list

(** Phase 1 — runs on the unmodified CU CFG. *)
val map_to_edges : Func.t -> Hoist.t -> decision list

(** Phase 2 — mutates the CU. *)
val place : Func.t -> decision list -> stats

val run : Func.t -> Hoist.t -> t
