(* Merging poison blocks (paper §5.3).

   Two blocks can be merged when they contain the same list of poison
   stores (and nothing else), have the same immediate successors, and every
   φ in those successors receives the same value from both blocks. The
   paper applies this iteratively after Algorithms 2 and 3; it is an area
   optimisation (fewer blocks → smaller scheduler in HLS). *)

open Dae_ir

let poison_signature (b : Block.t) : (string * Instr.mem_id) list option =
  if b.Block.phis <> [] then None
  else
    let rec collect acc = function
      | [] -> Some (List.rev acc)
      | ({ Instr.kind = Instr.Poison { arr; mem }; _ } : Instr.t) :: rest ->
        collect ((arr, mem) :: acc) rest
      | _ -> None
    in
    match collect [] b.Block.instrs with
    | Some sig_ when sig_ <> [] -> Some sig_
    | Some _ | None -> None

let mergeable (f : Func.t) (b1 : Block.t) (b2 : Block.t) : bool =
  b1.Block.bid <> b2.Block.bid
  && b1.Block.bid <> f.Func.entry
  && b2.Block.bid <> f.Func.entry
  &&
  match (poison_signature b1, poison_signature b2) with
  | Some s1, Some s2 when s1 = s2 ->
    let succs1 = Block.successors b1 and succs2 = Block.successors b2 in
    succs1 = succs2
    && List.for_all
         (fun s ->
           List.for_all
             (fun (p : Block.phi) ->
               List.assoc_opt b1.Block.bid p.Block.incoming
               = List.assoc_opt b2.Block.bid p.Block.incoming)
             (Func.block f s).Block.phis)
         succs1
  | _ -> false

(* Merge [b2] into [b1]: predecessors of [b2] are redirected to [b1]; φs in
   the successors drop their [b2] entries. Returns the number of merges
   performed over the whole function (applied to a fixed point). *)
let run (f : Func.t) : int =
  let merged = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let candidates =
      List.filter
        (fun bid ->
          match Func.block_opt f bid with
          | Some b -> poison_signature b <> None
          | None -> false)
        f.Func.layout
    in
    let rec try_pairs = function
      | [] -> ()
      | b1_id :: rest ->
        (match
           List.find_opt
             (fun b2_id ->
               mergeable f (Func.block f b1_id) (Func.block f b2_id))
             rest
         with
        | Some b2_id ->
          let preds_tbl = Func.predecessors f in
          let b2_preds =
            try Hashtbl.find preds_tbl b2_id with Not_found -> []
          in
          List.iter
            (fun p ->
              Func.retarget_edge f ~src:p ~old_dst:b2_id ~new_dst:b1_id)
            b2_preds;
          List.iter
            (fun s -> Block.remove_phi_pred (Func.block f s) ~pred:b2_id)
            (Block.successors (Func.block f b2_id));
          Func.remove_block f b2_id;
          incr merged;
          continue_ := true
        | None -> try_pairs rest)
    in
    try_pairs candidates
  done;
  !merged
