(** Stream-dataflow CGRA lowering (paper §7.2, after Nowatzki et al.'s
    stream-dataflow ISA): the AGU becomes stream commands with symbolic
    issue predicates — all [1] once speculation removed the LoD — and the
    CU becomes a predicated dataflow graph in which every poison lowers to
    an [SD_Clean_Port] node. *)

type predicate = string

type stream_command = {
  cmd : string;
  array : string;
  address : string;
  port : int;
  predicate : predicate;
}

type df_node = {
  node_op : string;
  node_dest : string;
  node_args : string list;
  node_pred : predicate;
}

type t = {
  streams : stream_command list;
  dataflow : df_node list;
  clean_ports : int;
  fully_decoupled : bool;
}

(** Symbolic path predicate per block over the loop-body DAG. *)
val block_predicates : Dae_ir.Func.t -> (int, predicate) Hashtbl.t

val lower : Pipeline.t -> t
val pp : Format.formatter -> t -> unit
