(** DeSC-style CPU prefetcher lowering (paper §7.1): emit the AGU as a
    "supply" slice and the CU as a "compute" slice over the five-
    instruction ISA extension of Ham et al. (MICRO'15) — [store_addr],
    [load_produce], [store_val], [load_consume], [store_inv] — which the
    paper's §7.1.1 names as a direct compilation target. Demonstrates that
    the speculation support is not HLS-specific. *)

type instruction = {
  label : string option;
  opcode : string;
  operands : string list;
  comment : string option;
}

type listing = { unit_name : string; instructions : instruction list }

type t = { supply : listing; compute : listing }

val lower_unit : name:string -> Dae_ir.Func.t -> listing
val lower : Pipeline.t -> t

(** Does the listing use predicated-store invalidation? *)
val uses_speculation : listing -> bool

val count_opcode : listing -> string -> int

val pp_listing : Format.formatter -> listing -> unit
val pp : Format.formatter -> t -> unit
