(** Poison-block merging (§5.3): blocks containing the same list of poison
    calls (and nothing else) with the same successors — and agreeing φ
    values in those successors — are merged, to a fixed point. Returns the
    number of merges. *)

open Dae_ir

(** The (array, mem) signature of a poison-only block, if it is one. *)
val poison_signature : Block.t -> (string * Instr.mem_id) list option

val mergeable : Func.t -> Block.t -> Block.t -> bool
val run : Func.t -> int
